package grouptravel

import (
	"bytes"
	"testing"

	"grouptravel/internal/dataset"
	"grouptravel/internal/metrics"
)

// TestFacadeEndToEnd walks the full public API surface exactly as the
// quickstart documents it: city → profiles → group → consensus → package →
// customization → refinement → rebuild.
func TestFacadeEndToEnd(t *testing.T) {
	city, err := GenerateCity(dataset.TestSpec("FacadeCity", 31))
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(city)
	if err != nil {
		t.Fatal(err)
	}

	mkRatings := func(shift int) map[Category][]float64 {
		r := map[Category][]float64{}
		for _, c := range []Category{Acco, Trans, Rest, Attr} {
			dim := city.Schema.Dim(c)
			v := make([]float64, dim)
			for j := range v {
				v[j] = float64((j + shift) % 6)
			}
			r[c] = v
		}
		return r
	}
	alice, err := ProfileFromRatings(city.Schema, mkRatings(0))
	if err != nil {
		t.Fatal(err)
	}
	bob, err := ProfileFromRatings(city.Schema, mkRatings(3))
	if err != nil {
		t.Fatal(err)
	}
	group, err := NewGroup(city.Schema, []*Profile{alice, bob})
	if err != nil {
		t.Fatal(err)
	}
	gp, err := GroupProfile(group, PairwiseDis)
	if err != nil {
		t.Fatal(err)
	}

	tp, err := engine.Build(gp, DefaultQuery(), DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.CIs) != 4 || !tp.Valid() {
		t.Fatal("facade build produced a bad package")
	}

	sess, err := NewSession(city, tp)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Remove(0, 0, tp.CIs[0].Items[0].ID); err != nil {
		t.Fatal(err)
	}
	refined, err := RefineBatch(gp, sess.Log())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RefineIndividual(group, PairwiseDis, sess.Log()); err != nil {
		t.Fatal(err)
	}
	rebuilt, err := engine.Build(refined, DefaultQuery(), DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	if !rebuilt.Valid() {
		t.Fatal("rebuilt package invalid")
	}
}

func TestFacadeCityIO(t *testing.T) {
	city, err := GenerateCity(dataset.TestSpec("IOCity", 32))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := city.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCity(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.POIs.Len() != city.POIs.Len() {
		t.Fatal("round trip changed the city")
	}
}

func TestFacadeQueryAndMethods(t *testing.T) {
	q, err := NewQuery(1, 1, 2, 1, 120)
	if err != nil {
		t.Fatal(err)
	}
	if q.Size() != 5 {
		t.Fatalf("query size = %d", q.Size())
	}
	if len(ConsensusMethods) != 4 {
		t.Fatal("expected the paper's four consensus methods")
	}
	if DefaultQuery().Size() != 6 {
		t.Fatal("default query wrong")
	}
}

func TestFacadeRoutesAndPersistence(t *testing.T) {
	city, err := GenerateCity(dataset.TestSpec("RPCity", 34))
	if err != nil {
		t.Fatal(err)
	}
	engine, _ := NewEngine(city)
	tp, err := engine.Build(nil, DefaultQuery(), DefaultParams(3))
	if err != nil {
		t.Fatal(err)
	}
	plans, err := PlanPackage(tp)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 3 {
		t.Fatalf("got %d plans", len(plans))
	}
	one, err := PlanDay(tp.CIs[0])
	if err != nil {
		t.Fatal(err)
	}
	if one.LengthKm != plans[0].LengthKm {
		t.Fatal("PlanDay and PlanPackage disagree")
	}
	var buf bytes.Buffer
	if err := SavePackage(&buf, tp); err != nil {
		t.Fatal(err)
	}
	tp2, err := LoadPackage(&buf, city)
	if err != nil {
		t.Fatal(err)
	}
	if len(tp2.CIs) != len(tp.CIs) {
		t.Fatal("package round trip lost CIs")
	}
}

func TestFacadeWeightedConsensus(t *testing.T) {
	city, err := GenerateCity(dataset.TestSpec("WCity", 35))
	if err != nil {
		t.Fatal(err)
	}
	a := NewProfile(city.Schema)
	b := NewProfile(city.Schema)
	va := make([]float64, city.Schema.Dim(Attr))
	vb := make([]float64, city.Schema.Dim(Attr))
	va[0], vb[1] = 0.9, 0.9
	_ = a.SetVector(Attr, va)
	_ = b.SetVector(Attr, vb)
	g, err := NewGroup(city.Schema, []*Profile{a, b})
	if err != nil {
		t.Fatal(err)
	}
	gp, err := GroupProfileWeighted(g, AveragePref, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if gp.Vector(Attr)[0] <= gp.Vector(Attr)[1] {
		t.Fatal("weighting ignored")
	}
	// The extension methods are valid and usable.
	if _, err := GroupProfile(g, MostPleasure); err != nil {
		t.Fatal(err)
	}
	if _, err := GroupProfile(g, AvgNoMisery); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMetricsInterop(t *testing.T) {
	city, err := GenerateCity(dataset.TestSpec("MCity", 33))
	if err != nil {
		t.Fatal(err)
	}
	engine, _ := NewEngine(city)
	tp, err := engine.Build(nil, DefaultQuery(), DefaultParams(3))
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Representativity(tp.CIs) <= 0 {
		t.Fatal("facade package not measurable")
	}
}
