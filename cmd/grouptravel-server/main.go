// Command grouptravel-server serves the GroupTravel HTTP API over one
// city — the backend a Figure 3 style map GUI would talk to.
//
// Usage:
//
//	grouptravel-server -city builtin:Paris -addr :8080
//	grouptravel-server -city paris.json
//
// Endpoints (JSON):
//
//	GET  /api/healthz                      liveness + city name
//	GET  /api/city                         schema, POI counts, bounds
//	GET  /api/pois?cat=rest&near=48.85,2.35&k=10
//	POST /api/groups                       {"members":[{"acco":[0-5...],...}]}
//	GET  /api/groups/{id}
//	POST /api/packages                     {"group":1,"consensus":"pairwise","k":5,
//	                                        "query":{"Acco":1,...,"Budget":0},
//	                                        "weights":[2,1,1]}
//	GET  /api/packages/{id}?routes=1
//	POST /api/packages/{id}/ops            {"member":0,"op":"remove|add|replace|generate",
//	                                        "ci":0,"poi":42,"rect":{...}}
//	POST /api/packages/{id}/refine         {"strategy":"batch|individual","rebuild":true}
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"grouptravel/internal/dataset"
	"grouptravel/internal/server"
)

func main() {
	citySpec := flag.String("city", "builtin:Paris", `city: "builtin:<Name>" or a JSON path`)
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	city, err := loadCity(*citySpec)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(city)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grouptravel-server: %s (%d POIs) on %s\n", city.Name, city.POIs.Len(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

func loadCity(spec string) (*dataset.City, error) {
	if name, ok := strings.CutPrefix(spec, "builtin:"); ok {
		return dataset.BuiltinCity(name)
	}
	f, err := os.Open(spec)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.LoadJSON(f)
}
