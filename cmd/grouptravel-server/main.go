// Command grouptravel-server serves the GroupTravel HTTP API — the backend
// a Figure 3 style map GUI would talk to. One process serves many cities:
// requests route to a per-city engine through a city-keyed registry that
// lazily loads datasets from -data-dir, keeps at most -max-cities resident
// (LRU-evicted, never mid-request), and persists every city's groups and
// packages under -snapshot-dir so a restart reconstructs the full state.
//
// Persistence is a per-city write-ahead log plus periodic compaction:
// every mutation appends one record to <key>.wal (fsynced per -wal-sync),
// and the full <key>.state.json snapshot is rewritten only when the log
// crosses -compact-every records (or the byte threshold) or the city is
// evicted. A restart replays snapshot + log; torn log tails are truncated
// and reported on /healthz.
//
// Usage:
//
//	grouptravel-server -city builtin:Paris -addr :8080
//	grouptravel-server -city paris.json -snapshot-dir ./state
//	grouptravel-server -data-dir ./cities -max-cities 4 -snapshot-dir ./state \
//	    -wal-sync 100ms -compact-every 4096 -preload-cities paris,rome
//
// Endpoints (JSON):
//
//	GET  /healthz                          liveness + per-city engine/registry metrics
//	GET  /cities                           known cities + residency
//	GET  /cities/{city}                    schema, POI counts, bounds
//	GET  /cities/{city}/pois?cat=rest&near=48.85,2.35&k=10
//	POST /cities/{city}/groups             {"members":[{"acco":[0-5...],...}]}
//	GET  /cities/{city}/groups/{id}
//	POST /cities/{city}/packages           {"group":1,"consensus":"pairwise","k":5,
//	                                        "query":{"Acco":1,...,"Budget":0},
//	                                        "weights":[2,1,1]}
//	GET  /cities/{city}/packages/{id}?routes=1
//	POST /cities/{city}/packages/{id}/ops  {"member":0,"op":"remove|add|replace|generate",
//	                                        "ci":0,"poi":42,"rect":{...}}
//	POST /cities/{city}/packages/{id}/refine  {"strategy":"batch|individual","rebuild":true}
//
// The legacy single-city routes (/api/city, /api/pois, /api/groups...,
// /api/packages...) remain as aliases for the default city.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"grouptravel/internal/dataset"
	"grouptravel/internal/pprofserve"
	"grouptravel/internal/server"
	"grouptravel/internal/store"
	"grouptravel/internal/telemetry"
)

func main() {
	citySpec := flag.String("city", "", `extra city: "builtin:<Name>" or a JSON path (default builtin:Paris when -data-dir is unset)`)
	dataDir := flag.String("data-dir", "", "directory of <key>.json city datasets to serve")
	snapshotDir := flag.String("snapshot-dir", "", "persist per-city groups/packages here (empty: in-memory only)")
	walSync := flag.String("wal-sync", "always", `write-ahead-log fsync policy: "always", "off", "interval", or a duration like 100ms`)
	compactEvery := flag.Int("compact-every", 0, "compact a city's log into its snapshot after this many records (0: default 1024, <0: off)")
	compactBytes := flag.Int64("compact-bytes", 0, "byte-size compaction trigger (0: default 4MiB, <0: off)")
	preload := flag.String("preload-cities", "", "comma-separated city keys to load at boot (warm-up)")
	maxCities := flag.Int("max-cities", 0, "max cities resident at once, LRU-evicted beyond it (0: unlimited)")
	defaultCity := flag.String("default-city", "", "city key served by the legacy /api routes (default: first key)")
	cacheCap := flag.Int("cluster-cache-cap", 0, "per-engine cluster cache bound (0: default, <0: unbounded)")
	follow := flag.String("follow", "", "run as a read-only follower replicating from the primary at this base URL")
	advertise := flag.String("advertise", "", "base URL peers and routers reach this node at (self-described on /healthz)")
	followPoll := flag.Duration("follow-poll", 0, "replication poll interval (0: default; also the reconnect backoff base when streaming)")
	followMode := flag.String("follow-mode", "stream", `replication transport: "stream" (push: hold ?stream=1 open, apply on commit wakeup) or "poll" (fetch per interval)`)
	followerID := flag.String("follower-id", "", "stable id this follower identifies itself as on the primary's replication slots (default: -advertise)")
	promote := flag.Bool("promote", false, "with -follow: start promoted — serve read-write from the follower's local state (failover boot)")
	addr := flag.String("addr", ":8080", "listen address")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060; empty: off)")
	logFormat := flag.String("log-format", "off", `structured request log: "json", "text", or "off"`)
	logLevel := flag.String("log-level", "info", "minimum request-log level (debug, info, warn, error)")
	flag.Parse()

	syncPolicy, err := store.ParseWALSync(*walSync)
	if err != nil {
		log.Fatal(err)
	}
	accessLog, err := telemetry.NewAccessLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		log.Fatal(err)
	}
	if *promote && *follow == "" {
		log.Fatal("-promote requires -follow (it promotes a follower's local state)")
	}
	opts := server.Options{
		DataDir:        *dataDir,
		SnapshotDir:    *snapshotDir,
		WALSync:        syncPolicy,
		CompactEvery:   *compactEvery,
		CompactBytes:   *compactBytes,
		MaxCities:      *maxCities,
		DefaultCity:    *defaultCity,
		EngineCacheCap: *cacheCap,
		Follow:         *follow,
		FollowPoll:     *followPoll,
		FollowMode:     *followMode,
		FollowerID:     *followerID,
		Advertise:      *advertise,
		AccessLog:      accessLog,
	}
	if *preload != "" {
		for _, key := range strings.Split(*preload, ",") {
			if key = strings.TrimSpace(key); key != "" {
				opts.PreloadCities = append(opts.PreloadCities, key)
			}
		}
	}
	if *citySpec == "" && *dataDir == "" {
		*citySpec = "builtin:Paris"
	}
	if *citySpec != "" {
		city, err := loadCity(*citySpec)
		if err != nil {
			log.Fatal(err)
		}
		opts.Cities = []*dataset.City{city}
	}
	srv, err := server.NewMultiCity(opts)
	if err != nil {
		log.Fatal(err)
	}
	if *promote {
		// Failover boot: serve read-write from the follower's local state
		// without contacting the (presumably dead) primary.
		if err := srv.Promote(); err != nil {
			log.Fatal(err)
		}
	}
	keys := srv.Registry().Keys()
	fmt.Printf("grouptravel-server: %d cities %v (default %s) on %s\n",
		len(keys), keys, srv.DefaultCity(), *addr)
	if *snapshotDir != "" {
		fmt.Printf("grouptravel-server: WAL + snapshots under %s (fsync %s)\n", *snapshotDir, syncPolicy)
	}
	if role := srv.Role(); role != "primary" {
		fmt.Printf("grouptravel-server: role %s (primary %s)\n", role, *follow)
	}
	if *pprofAddr != "" {
		fmt.Printf("grouptravel-server: pprof on %s\n", *pprofAddr)
		pprofserve.Start(*pprofAddr, func(err error) { log.Print(err) })
	}
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

func loadCity(spec string) (*dataset.City, error) {
	if name, ok := strings.CutPrefix(spec, "builtin:"); ok {
		return dataset.BuiltinCity(name)
	}
	f, err := os.Open(spec)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.LoadJSON(f)
}
