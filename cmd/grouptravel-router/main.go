// Command grouptravel-router is the consistent-hash front tier: it
// spreads city keys across backend shards (each one grouptravel-server
// primary plus N followers), sends mutations to each shard's discovered
// primary, and fans reads out to the freshest eligible follower — with
// read-your-writes for any client that presents a session id.
//
// Usage:
//
//	grouptravel-router -topology topology.json -addr :7080
//
// where topology.json lists the shards:
//
//	{
//	  "shards": [
//	    {"name": "s1", "nodes": ["http://10.0.0.1:8080", "http://10.0.0.2:8080"]},
//	    {"name": "s2", "nodes": ["http://10.0.1.1:8080", "http://10.0.1.2:8080"]}
//	  ]
//	}
//
// Node roles are discovered from each node's /healthz, not configured:
// a failover (POST /promote on a follower) reroutes mutations without a
// topology edit. Backends should run with -advertise set to the URL the
// topology lists so X-GT-Primary hints resolve.
//
// Client protocol:
//
//	X-GT-Session: <any opaque id>   reads see all of this session's writes
//	X-GT-Min-Seq: <seq>             explicit freshness floor (manual pinning)
//
// Every mutation response carries X-GT-City/X-GT-Seq (the commit token)
// and every routed response X-GT-Shard/X-GT-Backend (who served it).
// GET /healthz reports per-node views and routing counters; GET /cities
// aggregates the key space across shards.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"grouptravel/internal/pprofserve"
	"grouptravel/internal/router"
	"grouptravel/internal/telemetry"
)

func main() {
	topoPath := flag.String("topology", "", "JSON topology file: shards and their node URLs (required)")
	addr := flag.String("addr", ":7080", "listen address")
	poll := flag.Duration("poll", 0, "node health poll interval (0: default 500ms)")
	shedLag := flag.Int64("shed-lag", 0, "shed a follower from token-less reads when it lags the primary by more than this many records (0: default 1024, <0: never)")
	maxSessions := flag.Int("max-sessions", 0, "read-your-writes session table bound (0: default 65536)")
	failover := flag.Duration("failover", 0, "auto-promote a shard's freshest follower after its primary has been unreachable this long (0: manual failover only)")
	topoReload := flag.Duration("topology-reload", 0, "also re-stat -topology on this interval and reload it when its mtime changes (0: SIGHUP only)")
	edgeCache := flag.Bool("edge-cache", false, "serve hot city-scoped GETs from a seq-validated edge cache (zero proxy hops on a hit)")
	edgeCacheMax := flag.Int("edge-cache-max", 0, "edge-cache entry bound (0: default 4096)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6061; empty: off)")
	logFormat := flag.String("log-format", "off", `structured request log: "json", "text", or "off"`)
	logLevel := flag.String("log-level", "info", "minimum request-log level (debug, info, warn, error)")
	flag.Parse()

	if *topoPath == "" {
		log.Fatal("grouptravel-router: -topology is required")
	}
	topo, err := router.LoadTopology(*topoPath)
	if err != nil {
		log.Fatal(err)
	}
	accessLog, err := telemetry.NewAccessLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := router.New(router.Options{
		Topology:     topo,
		PollInterval: *poll,
		ShedLag:      *shedLag,
		MaxSessions:  *maxSessions,
		AccessLog:    accessLog,
		Failover:     *failover,
		EdgeCache:    *edgeCache,
		EdgeCacheMax: *edgeCacheMax,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	// Warm the health feed before accepting traffic so the first requests
	// already know each shard's primary.
	rt.Poll()

	// Online topology reload: SIGHUP always, plus an optional mtime watch
	// on the file — a promoted node's new role or a shard membership edit
	// propagates without a router restart (a failed load keeps serving
	// the old topology).
	reload := func(why string) {
		t, err := router.LoadTopology(*topoPath)
		if err != nil {
			log.Printf("grouptravel-router: reload (%s) skipped: %v", why, err)
			return
		}
		if err := rt.Reload(t); err != nil {
			log.Printf("grouptravel-router: reload (%s) rejected: %v", why, err)
			return
		}
		rt.Poll()
		log.Printf("grouptravel-router: topology reloaded (%s): %d shards", why, len(t.Shards))
	}
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			reload("SIGHUP")
		}
	}()
	if *topoReload > 0 {
		go func() {
			var lastMod time.Time
			if fi, err := os.Stat(*topoPath); err == nil {
				lastMod = fi.ModTime()
			}
			for range time.Tick(*topoReload) {
				fi, err := os.Stat(*topoPath)
				if err != nil || !fi.ModTime().After(lastMod) {
					continue
				}
				lastMod = fi.ModTime()
				reload("mtime")
			}
		}()
	}

	var names []string
	for _, sh := range topo.Shards {
		names = append(names, fmt.Sprintf("%s(%d nodes)", sh.Name, len(sh.Nodes)))
	}
	fmt.Printf("grouptravel-router: %d shards [%s] on %s\n", len(topo.Shards), strings.Join(names, " "), *addr)
	if *pprofAddr != "" {
		fmt.Printf("grouptravel-router: pprof on %s\n", *pprofAddr)
		pprofserve.Start(*pprofAddr, func(err error) { log.Print(err) })
	}
	srv := &http.Server{Addr: *addr, Handler: rt.Handler(), ReadHeaderTimeout: 10 * time.Second}
	log.Fatal(srv.ListenAndServe())
}
