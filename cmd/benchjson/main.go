// Command benchjson converts `go test -bench -benchmem` output on stdin
// into the machine-readable BENCH_<n>.json trajectory file: a JSON object
// mapping each benchmark name (GOMAXPROCS suffix stripped) to its ns/op,
// B/op and allocs/op. Input lines pass through to stdout unchanged, so
// the converter can sit at the end of a pipe without hiding the run.
//
// Usage:
//
//	go test -bench . -benchmem -run XXX . | go run ./cmd/benchjson -o BENCH_6.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metrics is one benchmark's measured triple. Unmeasured fields stay 0
// (a benchmark without -benchmem reports no B/op or allocs/op).
type metrics struct {
	NsPerOp     float64 `json:"ns/op"`
	BytesPerOp  float64 `json:"B/op"`
	AllocsPerOp float64 `json:"allocs/op"`
}

func main() {
	out := flag.String("o", "", "write the JSON trajectory here (default stdout only)")
	flag.Parse()

	results := map[string]metrics{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		name, m, ok := parseLine(line)
		if ok {
			results[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("benchjson: read stdin: %v", err)
	}
	if len(results) == 0 {
		log.Fatal("benchjson: no benchmark result lines on stdin")
	}
	body, err := marshalSorted(results)
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	if *out == "" {
		fmt.Println(string(body))
		return
	}
	if err := os.WriteFile(*out, body, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(results), *out)
}

// parseLine extracts one `BenchmarkX-8  N  12.3 ns/op  4 B/op  5 allocs/op`
// result row; anything else (headers, PASS, ok lines) is skipped.
func parseLine(line string) (string, metrics, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", metrics{}, false
	}
	var m metrics
	seen := false
	for i := 1; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			m.NsPerOp, seen = v, true
		case "B/op":
			m.BytesPerOp, seen = v, true
		case "allocs/op":
			m.AllocsPerOp, seen = v, true
		}
	}
	if !seen {
		return "", metrics{}, false
	}
	name := fields[0]
	// Strip the -<GOMAXPROCS> suffix so the key is stable across machines.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name, m, true
}

// marshalSorted renders the map with sorted keys and a trailing newline —
// a stable diff when the trajectory file is committed.
func marshalSorted(results map[string]metrics) ([]byte, error) {
	keys := make([]string, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("{\n")
	for i, k := range keys {
		row, err := json.Marshal(results[k])
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "  %q: %s", k, row)
		if i < len(keys)-1 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
	return []byte(b.String()), nil
}
