// Command benchjson converts `go test -bench -benchmem` output on stdin
// into the machine-readable BENCH_<n>.json trajectory file: a JSON object
// mapping each benchmark name (GOMAXPROCS suffix stripped) to its ns/op,
// B/op and allocs/op, stamped with the commit, date, and Go version the
// numbers were measured at (the "_meta" key). Input lines pass through to
// stdout unchanged, so the converter can sit at the end of a pipe without
// hiding the run.
//
// Usage:
//
//	go test -bench . -benchmem -run XXX . | go run ./cmd/benchjson -o BENCH_7.json
//
// Compare mode diffs two trajectory files and exits non-zero when any
// benchmark's ns/op grew beyond the tolerance — the CI regression gate:
//
//	go run ./cmd/benchjson -compare -tolerance 15 BENCH_6.json BENCH_7.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// metrics is one benchmark's measured triple. Unmeasured fields stay 0
// (a benchmark without -benchmem reports no B/op or allocs/op).
type metrics struct {
	NsPerOp     float64 `json:"ns/op"`
	BytesPerOp  float64 `json:"B/op"`
	AllocsPerOp float64 `json:"allocs/op"`
}

// meta stamps a trajectory file with its provenance, so a committed
// BENCH_*.json answers "measured where, when, with what toolchain"
// without archaeology through git blame.
type meta struct {
	Commit string `json:"commit,omitempty"`
	Date   string `json:"date"`
	Go     string `json:"go"`
}

// metaKey sorts before every Benchmark* name, keeping the stamp at the
// top of the committed file.
const metaKey = "_meta"

func main() {
	out := flag.String("o", "", "write the JSON trajectory here (default stdout only)")
	compare := flag.Bool("compare", false, "diff two trajectory files (old new); exit 1 on ns/op regressions beyond -tolerance")
	tolerance := flag.Float64("tolerance", 15, "with -compare: percent ns/op growth allowed before a regression is reported")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			log.Fatal("benchjson: -compare wants exactly two files: old.json new.json (flags go first)")
		}
		if !runCompare(flag.Arg(0), flag.Arg(1), *tolerance) {
			os.Exit(1)
		}
		return
	}

	results := map[string]metrics{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		name, m, ok := parseLine(line)
		if ok {
			results[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("benchjson: read stdin: %v", err)
	}
	if len(results) == 0 {
		log.Fatal("benchjson: no benchmark result lines on stdin")
	}
	body, err := marshalSorted(results, stamp())
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	if *out == "" {
		fmt.Println(string(body))
		return
	}
	if err := os.WriteFile(*out, body, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(results), *out)
}

// stamp collects the provenance triple. The commit is best-effort — a
// tarball build without git still gets date + toolchain.
func stamp() meta {
	m := meta{
		Date: time.Now().UTC().Format(time.RFC3339),
		Go:   runtime.Version(),
	}
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		m.Commit = strings.TrimSpace(string(out))
	}
	return m
}

// parseLine extracts one `BenchmarkX-8  N  12.3 ns/op  4 B/op  5 allocs/op`
// result row; anything else (headers, PASS, ok lines) is skipped.
func parseLine(line string) (string, metrics, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", metrics{}, false
	}
	var m metrics
	seen := false
	for i := 1; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			m.NsPerOp, seen = v, true
		case "B/op":
			m.BytesPerOp, seen = v, true
		case "allocs/op":
			m.AllocsPerOp, seen = v, true
		}
	}
	if !seen {
		return "", metrics{}, false
	}
	name := fields[0]
	// Strip the -<GOMAXPROCS> suffix so the key is stable across machines.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name, m, true
}

// marshalSorted renders the map with the meta stamp first and sorted
// benchmark keys after — a stable diff when the file is committed.
func marshalSorted(results map[string]metrics, st meta) ([]byte, error) {
	keys := make([]string, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("{\n")
	metaRow, err := json.Marshal(st)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "  %q: %s,\n", metaKey, metaRow)
	for i, k := range keys {
		row, err := json.Marshal(results[k])
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "  %q: %s", k, row)
		if i < len(keys)-1 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
	return []byte(b.String()), nil
}

// loadTrajectory reads a BENCH_*.json, skipping the meta stamp (and any
// future non-benchmark key, which never starts with "Benchmark").
func loadTrajectory(path string) (map[string]metrics, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows map[string]json.RawMessage
	if err := json.Unmarshal(raw, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]metrics, len(rows))
	for name, row := range rows {
		if !strings.HasPrefix(name, "Benchmark") {
			continue
		}
		var m metrics
		if err := json.Unmarshal(row, &m); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", path, name, err)
		}
		out[name] = m
	}
	return out, nil
}

// runCompare diffs old -> new ns/op per benchmark and reports true when
// no regression exceeds tolerance percent. Benchmarks present on only one
// side are noted but never fail the gate — suites legitimately grow and
// retire — and a zero old measurement cannot be regressed against.
func runCompare(oldPath, newPath string, tolerance float64) bool {
	oldRes, err := loadTrajectory(oldPath)
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	newRes, err := loadTrajectory(newPath)
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	names := make([]string, 0, len(newRes))
	for name := range newRes {
		names = append(names, name)
	}
	sort.Strings(names)
	ok := true
	compared := 0
	for _, name := range names {
		o, present := oldRes[name]
		if !present {
			fmt.Printf("new       %-48s %12.1f ns/op (no baseline)\n", name, newRes[name].NsPerOp)
			continue
		}
		n := newRes[name]
		if o.NsPerOp <= 0 {
			continue
		}
		compared++
		pct := (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		if pct > tolerance {
			fmt.Printf("REGRESSED %-48s %12.1f -> %12.1f ns/op (%+.1f%% > %.0f%%)\n",
				name, o.NsPerOp, n.NsPerOp, pct, tolerance)
			ok = false
		}
	}
	for name := range oldRes {
		if _, present := newRes[name]; !present {
			fmt.Printf("gone      %-48s (in %s only)\n", name, oldPath)
		}
	}
	if ok {
		fmt.Printf("benchjson: %d benchmarks within %.0f%% of %s\n", compared, tolerance, oldPath)
	}
	return ok
}
