// Command experiments regenerates every table and figure of the paper's
// evaluation section (§4).
//
// Usage:
//
//	experiments -table all            # everything, paper scale (slow)
//	experiments -table 2 -quick       # one table at test scale
//	experiments -table pcc            # §4.3.3 Pearson correlations
//	experiments -table anova          # §4.3.1 ANOVA validation
//	experiments -table dist           # §3.2 distance-approximation claim
//	experiments -table samplesize     # Eq. 5
//	experiments -table 1              # Table 1: sample POIs
//
// Output is a terminal rendering of each table in the paper's layout;
// EXPERIMENTS.md records paper-vs-measured values.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
	"grouptravel/internal/experiments"
	"grouptravel/internal/poi"
)

func main() {
	table := flag.String("table", "all", "1|2|3|4|5|6|7|dist|pcc|anova|samplesize|tension|ext|all")
	quick := flag.Bool("quick", false, "run at reduced scale (small city, fewer groups)")
	seed := flag.Int64("seed", 2019, "experiment seed")
	groups := flag.Int("groups", 0, "override groups per cell (0 = config default)")
	workers := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for the synthetic experiment")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Seed = *seed
	cfg.Parallelism = *workers
	if *groups > 0 {
		cfg.GroupsPerCell = *groups
	}
	if *quick {
		// Small synthetic cities keep the quick path fast.
		var err error
		if cfg.City, err = dataset.Generate(dataset.TestSpec("Paris", 100)); err != nil {
			fail(err)
		}
		spec := dataset.TestSpec("Barcelona", 200)
		spec.Center = dataset.BuiltinCenters["Barcelona"]
		if cfg.SecondCity, err = dataset.Generate(spec); err != nil {
			fail(err)
		}
	}

	want := strings.Split(*table, ",")
	run := func(name string) bool {
		for _, w := range want {
			if w == "all" || w == name {
				return true
			}
		}
		return false
	}

	// One concurrency-safe engine per city serves every table the run
	// touches: clusterings memoized for Table 2 are shared with Tables 3–5
	// and the ablations. Cities and engines are only materialized for the
	// tables actually requested (builtin city generation is not free).
	anyOf := func(names ...string) bool {
		for _, n := range names {
			if run(n) {
				return true
			}
		}
		return false
	}
	if anyOf("1", "2", "3", "4", "5", "6", "7", "pcc", "anova", "tension", "ext") {
		var err error
		if cfg.City == nil {
			if cfg.City, err = dataset.BuiltinCity("Paris"); err != nil {
				fail(err)
			}
		}
		if cfg.Engine, err = core.NewEngine(cfg.City); err != nil {
			fail(err)
		}
	}
	if anyOf("6", "7") {
		var err error
		if cfg.SecondCity == nil {
			if cfg.SecondCity, err = dataset.BuiltinCity("Barcelona"); err != nil {
				fail(err)
			}
		}
		if cfg.SecondEngine, err = core.NewEngine(cfg.SecondCity); err != nil {
			fail(err)
		}
	}

	if run("1") {
		if err := printTable1(&cfg); err != nil {
			fail(err)
		}
	}
	var t2 *experiments.Table2Result
	if run("2") || run("pcc") || run("anova") {
		var err error
		if t2, err = experiments.RunTable2(cfg); err != nil {
			fail(err)
		}
	}
	if run("2") {
		fmt.Println(t2.Render())
	}
	if run("3") {
		t3, err := experiments.RunTable3(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Println(t3.Render())
	}
	if run("4") || run("5") {
		t4, t5, err := experiments.RunTables4And5(cfg)
		if err != nil {
			fail(err)
		}
		if run("4") {
			fmt.Println(t4.Render())
		}
		if run("5") {
			fmt.Println(t5.Render())
		}
	}
	if run("6") || run("7") {
		t6, t7, err := experiments.RunTables6And7(cfg)
		if err != nil {
			fail(err)
		}
		if run("6") {
			fmt.Println(t6.Render())
		}
		if run("7") {
			fmt.Println(t7.Render())
		}
	}
	if run("pcc") {
		pcc, err := t2.PCC()
		if err != nil {
			fail(err)
		}
		fmt.Println(pcc.Render())
	}
	if run("anova") {
		rep, err := t2.ANOVA()
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Render())
	}
	if run("dist") {
		rep, err := experiments.RunDistanceReport(2_000_000, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Render())
	}
	if run("samplesize") {
		rep, err := experiments.RunSampleSizeReport()
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Render())
	}
	if run("tension") {
		rep, err := experiments.RunTensionSweep(cfg, []float64{0, 0.5, 1, 2, 5, 10, 25}, cfg.GroupsPerCell)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Render())
	}
	if run("ext") {
		rep, err := experiments.RunConsensusAblation(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Render())
	}
}

// printTable1 prints a few sample POIs in the layout of the paper's
// Table 1.
func printTable1(cfg *experiments.Config) error {
	if cfg.City == nil {
		city, err := dataset.BuiltinCity("Paris")
		if err != nil {
			return err
		}
		cfg.City = city
	}
	fmt.Println("Table 1: sample Points Of Interest in", cfg.City.Name)
	fmt.Printf("%-4s %-28s %-6s %-22s %-14s %-40s %s\n", "id", "name", "cat", "coordinates", "type", "tags", "cost")
	shown := 0
	for _, cat := range poi.Categories {
		pois := cfg.City.POIs.ByCategory(cat)
		if len(pois) == 0 {
			continue
		}
		p := pois[0]
		tags := p.Tags
		if len(tags) > 38 {
			tags = tags[:38] + ".."
		}
		fmt.Printf("%-4d %-28s %-6s %-22s %-14s %-40s %.2f\n",
			p.ID, p.Name, p.Cat, p.Coord, p.Type, tags, p.Cost)
		shown++
	}
	fmt.Println()
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
