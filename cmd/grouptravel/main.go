// Command grouptravel generates cities and builds customized travel
// packages for groups from the terminal.
//
// Usage:
//
//	grouptravel gen   -name Paris -out paris.json [-scale test]
//	grouptravel build -city builtin:Paris [-k 5] [-acco 1 -trans 1 -rest 1 -attr 3]
//	                  [-budget 0] [-consensus pairwise] [-size 5] [-nonuniform]
//	                  [-seed 1] [-map]
//
// `build` synthesizes a random group of the requested size/uniformity,
// aggregates it with the chosen consensus method, builds a package and
// prints the Figure 1 style day plan (plus an ASCII map with -map).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"grouptravel/internal/consensus"
	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
	"grouptravel/internal/profile"
	"grouptravel/internal/query"
	"grouptravel/internal/render"
	"grouptravel/internal/rng"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "build":
		err = runBuild(os.Args[2:])
	case "convert":
		err = runConvert(os.Args[2:])
	case "customize":
		err = runCustomize(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `grouptravel — customized travel packages for groups (EDBT 2019 reproduction)

subcommands:
  gen        generate a synthetic city dataset and write it as JSON
  build      build a travel package for a synthetic group and print it
  convert    convert a real TourPedia places dump into a city JSON
  customize  build a package and customize it interactively (REPL)

run "grouptravel <subcommand> -h" for flags`)
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	name := fs.String("name", "Paris", "city name (one of the eight TourPedia cities for builtin centers)")
	out := fs.String("out", "", "output JSON path (default <name>.json)")
	scale := fs.String("scale", "paper", `"paper" (~1000 POIs) or "test" (small)`)
	seed := fs.Int64("seed", 1, "generation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var city *dataset.City
	var err error
	switch *scale {
	case "paper":
		center, ok := dataset.BuiltinCenters[*name]
		if !ok {
			return fmt.Errorf("unknown builtin city %q; known: Amsterdam Barcelona Berlin Dubai London Paris Rome Tuscany", *name)
		}
		city, err = dataset.Generate(dataset.DefaultSpec(*name, center, *seed))
	case "test":
		city, err = dataset.Generate(dataset.TestSpec(*name, *seed))
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = strings.ToLower(*name) + ".json"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := city.SaveJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d POIs across %v\n", path, city.POIs.Len(), city.POIs.CategoryCounts())
	return nil
}

func loadCity(spec string, seed int64) (*dataset.City, error) {
	if name, ok := strings.CutPrefix(spec, "builtin:"); ok {
		return dataset.BuiltinCity(name)
	}
	f, err := os.Open(spec)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.LoadJSON(f)
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	citySpec := fs.String("city", "builtin:Paris", `city: "builtin:<Name>" or a JSON path from "gen"`)
	k := fs.Int("k", 5, "number of composite items (days)")
	acco := fs.Int("acco", 1, "accommodations per CI")
	trans := fs.Int("trans", 1, "transportation POIs per CI")
	rest := fs.Int("rest", 1, "restaurants per CI")
	attr := fs.Int("attr", 3, "attractions per CI")
	budget := fs.Float64("budget", 0, "per-CI budget (0 = unlimited)")
	method := fs.String("consensus", "pairwise", "avg | leastmisery | pairwise | variance")
	size := fs.Int("size", 5, "group size")
	nonUniform := fs.Bool("nonuniform", false, "generate a non-uniform group (diverse tastes)")
	seed := fs.Int64("seed", 1, "random seed for the group")
	showMap := fs.Bool("map", false, "print an ASCII map of the package")
	routed := fs.Bool("route", false, "order each day's POIs into a walking route")
	distinct := fs.Bool("distinct", false, "forbid POI repetition across days")
	if err := fs.Parse(args); err != nil {
		return err
	}

	city, err := loadCity(*citySpec, *seed)
	if err != nil {
		return err
	}
	engine, err := core.NewEngine(city)
	if err != nil {
		return err
	}
	b := *budget
	if b == 0 {
		b = math.Inf(1)
	}
	q, err := query.New(*acco, *trans, *rest, *attr, b)
	if err != nil {
		return err
	}

	src := rng.New(*seed)
	var g *profile.Group
	if *nonUniform {
		g, err = profile.GenerateNonUniformGroup(city.Schema, *size, src)
	} else {
		g, err = profile.GenerateUniformGroup(city.Schema, *size, src)
	}
	if err != nil {
		return err
	}
	m, err := methodByName(*method)
	if err != nil {
		return err
	}
	gp, err := consensus.GroupProfile(g, m)
	if err != nil {
		return err
	}

	params := core.DefaultParams(*k)
	params.DistinctItems = *distinct
	tp, err := engine.Build(gp, q, params)
	if err != nil {
		return err
	}
	fmt.Printf("group: %d members, uniformity %.2f, consensus %q\n\n", g.Size(), g.Uniformity(), m.Name)
	if *routed {
		fmt.Print(render.PackageWithRoutes(tp))
	} else {
		fmt.Print(render.Package(tp))
	}
	if *showMap {
		fmt.Println()
		fmt.Print(render.Map(tp, city.POIs.Bounds(), city.POIs.All(), 78))
	}
	return nil
}

func methodByName(name string) (consensus.Method, error) {
	switch strings.ToLower(name) {
	case "avg", "average":
		return consensus.AveragePref, nil
	case "leastmisery", "lm":
		return consensus.LeastMisery, nil
	case "pairwise", "ad":
		return consensus.PairwiseDis, nil
	case "variance", "dv":
		return consensus.VarianceDis, nil
	default:
		return consensus.Method{}, fmt.Errorf("unknown consensus %q (avg|leastmisery|pairwise|variance)", name)
	}
}
