package main

import (
	"flag"
	"fmt"
	"os"

	"grouptravel/internal/consensus"
	"grouptravel/internal/core"
	"grouptravel/internal/profile"
	"grouptravel/internal/query"
	"grouptravel/internal/repl"
	"grouptravel/internal/rng"
	"grouptravel/internal/tourpedia"
)

// runConvert turns a real TourPedia places dump into a city JSON usable by
// every other subcommand.
func runConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "TourPedia places JSON (required)")
	out := fs.String("out", "city.json", "output city JSON path")
	name := fs.String("name", "Converted", "city name")
	topics := fs.Int("topics", 6, "LDA topics for restaurants/attractions")
	seed := fs.Int64("seed", 1, "seed for synthesized attributes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("convert: -in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	city, report, err := tourpedia.Convert(f, tourpedia.Options{
		CityName: *name, Topics: *topics, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Println(report)
	of, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer of.Close()
	if err := city.SaveJSON(of); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d POIs)\n", *out, city.POIs.Len())
	return nil
}

// runCustomize builds a package for a synthetic group and hands it to the
// interactive REPL (the terminal version of the paper's Figure 3 GUI).
func runCustomize(args []string) error {
	fs := flag.NewFlagSet("customize", flag.ExitOnError)
	citySpec := fs.String("city", "builtin:Paris", `city: "builtin:<Name>" or a JSON path`)
	k := fs.Int("k", 3, "number of composite items (days)")
	size := fs.Int("size", 4, "group size")
	member := fs.Int("member", 0, "acting group member index")
	method := fs.String("consensus", "pairwise", "avg | leastmisery | pairwise | variance")
	seed := fs.Int64("seed", 1, "random seed for the group")
	if err := fs.Parse(args); err != nil {
		return err
	}
	city, err := loadCity(*citySpec, *seed)
	if err != nil {
		return err
	}
	engine, err := core.NewEngine(city)
	if err != nil {
		return err
	}
	g, err := profile.GenerateUniformGroup(city.Schema, *size, rng.New(*seed))
	if err != nil {
		return err
	}
	m, err := methodByName(*method)
	if err != nil {
		return err
	}
	gp, err := consensus.GroupProfile(g, m)
	if err != nil {
		return err
	}
	tp, err := engine.Build(gp, query.Default(), core.DefaultParams(*k))
	if err != nil {
		return err
	}
	r, err := repl.New(city, engine, g, m, *member, tp)
	if err != nil {
		return err
	}
	return r.Run(os.Stdin, os.Stdout)
}
