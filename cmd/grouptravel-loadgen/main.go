// grouptravel-loadgen is the macro load generator for the scale-out
// topology: an open-loop arrival-process driver (exponential
// inter-arrivals at a fixed offered rate — arrivals never slow down
// because the system is slow, which is what exposes queueing collapse)
// firing persona scripts at a router fronting a real primary+follower
// shard.
//
// By default it boots the whole topology in-process on loopback — city
// datasets, a persistent primary, streaming followers, and the router
// with its edge cache — so one command measures the full stack with no
// setup. -target points it at an externally running router instead.
//
// Cities are picked from a zipf distribution (hot-city skew is what an
// edge cache lives on), and each arrival runs one persona drawn from the
// interactive loop the paper describes: builders create a group and
// build a package then read it back, collaborators customize an existing
// package, refiners run preference refinement, and readers browse
// token-lessly. Every request is timed and classified with the fleet's
// endpoint-class taxonomy; the run emits per-class p50/p99/p999 and
// throughput, plus the router's edge-cache ledger, and can merge the
// result into a BENCH_*.json trajectory file under the "macro" key
// (cmd/benchjson ignores non-Benchmark keys, so compares stay safe).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"grouptravel/internal/dataset"
	"grouptravel/internal/poi"
	"grouptravel/internal/router"
	"grouptravel/internal/server"
	"grouptravel/internal/telemetry"
)

func main() {
	duration := flag.Duration("duration", 10*time.Second, "measurement window")
	rate := flag.Float64("rate", 120, "offered arrival rate (personas/sec, open loop)")
	nCities := flag.Int("cities", 4, "generated cities (self-contained topology)")
	followers := flag.Int("followers", 1, "follower replicas behind the primary (self-contained topology)")
	zipfS := flag.Float64("zipf", 1.2, "zipf skew for city popularity (> 1)")
	seed := flag.Int64("seed", 42, "deterministic workload seed")
	target := flag.String("target", "", "external router base URL (empty: boot an in-process topology)")
	edgeCache := flag.Bool("edge-cache", true, "enable the router's edge cache (self-contained topology)")
	maxInflight := flag.Int("max-inflight", 512, "in-flight persona bound; arrivals past it are dropped and reported")
	out := flag.String("out", "", "merge results under the \"macro\" key of this BENCH_*.json (preserves Benchmark* keys)")
	maxErrRate := flag.Float64("max-error-rate", 0.01, "exit non-zero when (transport errors + 5xx) / requests exceeds this")
	flag.Parse()

	routerURL := *target
	if routerURL == "" {
		url, cleanup, err := bootTopology(*nCities, *followers, *edgeCache, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: boot:", err)
			os.Exit(1)
		}
		defer cleanup()
		routerURL = url
	}

	cities, err := discoverCities(routerURL)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: discover cities:", err)
		os.Exit(1)
	}

	res := run(routerURL, cities, *duration, *rate, *zipfS, *seed, *maxInflight)
	res.Target = routerURL
	res.EdgeCache = *edgeCache
	res.Cities = len(cities)
	res.Followers = *followers
	res.scrapeRouter(routerURL)

	res.print(os.Stdout)
	if *out != "" {
		if err := res.mergeInto(*out); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: write:", err)
			os.Exit(1)
		}
		fmt.Printf("macro results merged into %s\n", *out)
	}
	if res.Requests == 0 || res.errorRate() > *maxErrRate {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: %d/%d requests errored (rate %.4f > %.4f)\n",
			res.Errors, res.Requests, res.errorRate(), *maxErrRate)
		os.Exit(1)
	}
}

// --- self-contained topology ---

// bootTopology stands up cities, one persistent primary, streaming
// followers, and the router, all on loopback listeners, and returns the
// router's base URL.
func bootTopology(nCities, nFollowers int, edgeCache bool, seed int64) (string, func(), error) {
	var citySet []*dataset.City
	for i := 0; i < nCities; i++ {
		c, err := dataset.Generate(dataset.TestSpec(fmt.Sprintf("Loadcity%02d", i), seed+int64(i)))
		if err != nil {
			return "", nil, err
		}
		citySet = append(citySet, c)
	}
	keys := make([]string, len(citySet))
	for i, c := range citySet {
		keys[i] = strings.ToLower(c.Name)
	}

	var cleanups []func()
	cleanup := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	serve := func(h http.Handler) (string, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		srv := &http.Server{Handler: h}
		go func() { _ = srv.Serve(ln) }()
		cleanups = append(cleanups, func() { _ = srv.Close() })
		return "http://" + ln.Addr().String(), nil
	}
	node := func(opts server.Options) (string, error) {
		// The advertise URL must exist before the server does: listen
		// first, construct second, serve third.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		url := "http://" + ln.Addr().String()
		dir, err := os.MkdirTemp("", "gt-loadgen-*")
		if err != nil {
			ln.Close()
			return "", err
		}
		cleanups = append(cleanups, func() { _ = os.RemoveAll(dir) })
		opts.Cities = citySet
		opts.SnapshotDir = dir
		opts.Advertise = url
		opts.PreloadCities = keys
		s, err := server.NewMultiCity(opts)
		if err != nil {
			ln.Close()
			return "", err
		}
		cleanups = append(cleanups, func() { s.Close() })
		srv := &http.Server{Handler: s.Handler()}
		go func() { _ = srv.Serve(ln) }()
		cleanups = append(cleanups, func() { _ = srv.Close() })
		return url, nil
	}

	primary, err := node(server.Options{})
	if err != nil {
		cleanup()
		return "", nil, err
	}
	nodes := []string{primary}
	for i := 0; i < nFollowers; i++ {
		f, err := node(server.Options{Follow: primary})
		if err != nil {
			cleanup()
			return "", nil, err
		}
		nodes = append(nodes, f)
	}

	rt, err := router.New(router.Options{
		Topology:     &router.Topology{Shards: []router.Shard{{Name: "s1", Nodes: nodes}}},
		PollInterval: 250 * time.Millisecond,
		EdgeCache:    edgeCache,
	})
	if err != nil {
		cleanup()
		return "", nil, err
	}
	cleanups = append(cleanups, rt.Close)
	rt.Poll() // warm role discovery before the first arrival
	url, err := serve(rt.Handler())
	if err != nil {
		cleanup()
		return "", nil, err
	}
	return url, cleanup, nil
}

// --- workload discovery ---

// cityInfo is what a persona needs to write valid requests: the city key
// and the rating-vector dimensions per category.
type cityInfo struct {
	key  string
	dims map[string]int

	mu     sync.Mutex
	groups []int
	pkgs   []int
}

func (ci *cityInfo) addGroup(id int) {
	ci.mu.Lock()
	ci.groups = append(ci.groups, id)
	ci.mu.Unlock()
}

func (ci *cityInfo) addPkg(id int) {
	ci.mu.Lock()
	ci.pkgs = append(ci.pkgs, id)
	ci.mu.Unlock()
}

func (ci *cityInfo) pick(r *rand.Rand) (group, pkg int) {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	group, pkg = -1, -1
	if len(ci.groups) > 0 {
		group = ci.groups[r.Intn(len(ci.groups))]
	}
	if len(ci.pkgs) > 0 {
		pkg = ci.pkgs[r.Intn(len(ci.pkgs))]
	}
	return group, pkg
}

// discoverCities learns the serving cities and their schemas through the
// router — the same path an external client would.
func discoverCities(routerURL string) ([]*cityInfo, error) {
	var rows []struct {
		Key string `json:"key"`
	}
	if err := getJSON(routerURL+"/cities", &rows); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("router reports no cities")
	}
	var cities []*cityInfo
	for _, row := range rows {
		var info struct {
			Schema map[string][]string `json:"schema"`
		}
		if err := getJSON(routerURL+"/cities/"+row.Key, &info); err != nil {
			return nil, fmt.Errorf("city %s: %w", row.Key, err)
		}
		ci := &cityInfo{key: row.Key, dims: map[string]int{}}
		for cat, labels := range info.Schema {
			ci.dims[cat] = len(labels)
		}
		cities = append(cities, ci)
	}
	sort.Slice(cities, func(i, j int) bool { return cities[i].key < cities[j].key })
	return cities, nil
}

func getJSON(url string, out any) error {
	resp, err := httpClient.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// httpClient reuses connections at persona concurrency — the default
// two idle conns per host would thrash sockets under load.
var httpClient = &http.Client{
	Timeout: 30 * time.Second,
	Transport: &http.Transport{
		MaxIdleConns:        1024,
		MaxIdleConnsPerHost: 1024,
	},
}

// --- the open-loop driver ---

type classStats struct {
	Count     int64   `json:"count"`
	Errors    int64   `json:"errors"`
	Rejects   int64   `json:"rejects4xx"`
	P50Ms     float64 `json:"p50Ms"`
	P99Ms     float64 `json:"p99Ms"`
	P999Ms    float64 `json:"p999Ms"`
	latencies []time.Duration
}

type results struct {
	Schema        string                 `json:"schema"`
	Target        string                 `json:"target"`
	DurationSec   float64                `json:"durationSec"`
	OfferedRate   float64                `json:"offeredRate"`
	Zipf          float64                `json:"zipf"`
	Seed          int64                  `json:"seed"`
	Cities        int                    `json:"cities"`
	Followers     int                    `json:"followers"`
	EdgeCache     bool                   `json:"edgeCache"`
	Requests      int64                  `json:"requests"`
	Errors        int64                  `json:"errors"`
	Rejects       int64                  `json:"rejects4xx"`
	Dropped       int64                  `json:"droppedArrivals"`
	ThroughputRPS float64                `json:"throughputRPS"`
	Classes       map[string]*classStats `json:"classes"`
	Router        map[string]int64       `json:"router,omitempty"`

	mu sync.Mutex
}

func (res *results) record(class string, d time.Duration, status int, err error) {
	res.mu.Lock()
	defer res.mu.Unlock()
	cs := res.Classes[class]
	if cs == nil {
		cs = &classStats{}
		res.Classes[class] = cs
	}
	res.Requests++
	switch {
	case err != nil || status >= 500:
		// Transport failures and 5xx are service failures; their
		// latencies (timeouts included) would poison the percentiles.
		res.Errors++
		cs.Errors++
	case status >= 400:
		// 4xx is the service working: an honest 404 from a lagging
		// follower, a rejected op. Counted, and timed like any answer.
		res.Rejects++
		cs.Rejects++
		cs.Count++
		cs.latencies = append(cs.latencies, d)
	default:
		cs.Count++
		cs.latencies = append(cs.latencies, d)
	}
}

func (res *results) errorRate() float64 {
	if res.Requests == 0 {
		return 1
	}
	return float64(res.Errors) / float64(res.Requests)
}

func pctile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}

// run drives the arrival process for the window and reduces the samples.
func run(routerURL string, cities []*cityInfo, window time.Duration, rate, zipfS float64, seed int64, maxInflight int) *results {
	res := &results{
		Schema:      "grouptravel-loadgen/v1",
		DurationSec: window.Seconds(),
		OfferedRate: rate,
		Zipf:        zipfS,
		Seed:        seed,
		Classes:     map[string]*classStats{},
	}
	src := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(src, zipfS, 1, uint64(len(cities)-1))

	sem := make(chan struct{}, maxInflight)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(window)
	next := start
	for n := int64(0); ; n++ {
		// Exponential inter-arrivals: a Poisson arrival process at the
		// offered rate, paced from the schedule — not from completions.
		next = next.Add(time.Duration(src.ExpFloat64() / rate * float64(time.Second)))
		if next.After(deadline) {
			break
		}
		time.Sleep(time.Until(next))
		select {
		case sem <- struct{}{}:
		default:
			res.mu.Lock()
			res.Dropped++ // open loop: never queue unboundedly, report instead
			res.mu.Unlock()
			continue
		}
		wg.Add(1)
		city := cities[zipf.Uint64()]
		go func(n int64, city *cityInfo) {
			defer wg.Done()
			defer func() { <-sem }()
			r := rand.New(rand.NewSource(seed ^ (n+1)*0x5851F42D4C957F2D))
			persona(routerURL, city, r, res, n)
		}(n, city)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total int64
	for _, cs := range res.Classes {
		sort.Slice(cs.latencies, func(i, j int) bool { return cs.latencies[i] < cs.latencies[j] })
		cs.P50Ms = pctile(cs.latencies, 0.50)
		cs.P99Ms = pctile(cs.latencies, 0.99)
		cs.P999Ms = pctile(cs.latencies, 0.999)
		cs.latencies = nil
		total += cs.Count
	}
	res.ThroughputRPS = float64(total) / elapsed.Seconds()
	return res
}

// --- personas ---

// persona runs one scripted visitor: mostly readers (the hot-city
// browsing the edge cache lives on), with builders, collaborators, and
// refiners supplying the mutation stream and the read-your-writes
// read-backs.
func persona(base string, city *cityInfo, r *rand.Rand, res *results, n int64) {
	session := fmt.Sprintf("persona-%d", n)
	switch p := r.Float64(); {
	case p < 0.70:
		reader(base, city, r, res)
	case p < 0.82:
		builder(base, city, r, res, session)
	case p < 0.94:
		collaborator(base, city, r, res, session)
	default:
		refiner(base, city, r, res, session)
	}
}

// do issues one timed, classified request.
func do(res *results, method, url string, body any, session string) (status int, reply []byte) {
	var rd *strings.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			panic(err)
		}
		rd = strings.NewReader(string(b))
	} else {
		rd = strings.NewReader("")
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		panic(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if session != "" {
		req.Header.Set(router.HeaderSession, session)
	}
	class := telemetry.Classify(method, req.URL.Path)
	t0 := time.Now()
	resp, err := httpClient.Do(req)
	d := time.Since(t0)
	if err != nil {
		res.record(class, d, 0, err)
		return 0, nil
	}
	defer resp.Body.Close()
	var buf strings.Builder
	_, rerr := io.Copy(&buf, resp.Body)
	d = time.Since(t0) // the full response, not just the status line
	res.record(class, d, resp.StatusCode, rerr)
	return resp.StatusCode, []byte(buf.String())
}

func reader(base string, city *cityInfo, r *rand.Rand, res *results) {
	group, pkg := city.pick(r)
	for i := 0; i < 3; i++ {
		switch pick := r.Intn(4); {
		case pick == 0:
			do(res, "GET", base+"/cities/"+city.key, nil, "")
		case pick == 1:
			do(res, "GET", fmt.Sprintf("%s/cities/%s/pois?k=%d", base, city.key, 4+r.Intn(5)), nil, "")
		case pick == 2 && group >= 0:
			do(res, "GET", fmt.Sprintf("%s/cities/%s/groups/%d", base, city.key, group), nil, "")
		case pick == 3 && pkg >= 0:
			do(res, "GET", fmt.Sprintf("%s/cities/%s/packages/%d", base, city.key, pkg), nil, "")
		default:
			do(res, "GET", base+"/cities/"+city.key, nil, "")
		}
	}
}

var consensusFns = []string{"avg", "leastmisery", "pairwise", "variance"}

func builder(base string, city *cityInfo, r *rand.Rand, res *results, session string) {
	var members []map[string][]float64
	for m := 0; m < 3; m++ {
		member := map[string][]float64{}
		for _, cat := range poi.Categories {
			v := make([]float64, city.dims[cat.String()])
			for j := range v {
				v[j] = float64(r.Intn(6))
			}
			member[cat.String()] = v
		}
		members = append(members, member)
	}
	var g struct {
		ID int `json:"id"`
	}
	status, body := do(res, "POST", base+"/cities/"+city.key+"/groups", map[string]any{"members": members}, session)
	if status != http.StatusCreated || json.Unmarshal(body, &g) != nil {
		return
	}
	city.addGroup(g.ID)

	var p struct {
		ID int `json:"id"`
	}
	status, body = do(res, "POST", base+"/cities/"+city.key+"/packages", map[string]any{
		"group":     g.ID,
		"consensus": consensusFns[r.Intn(len(consensusFns))],
		"k":         4 + r.Intn(3),
	}, session)
	if status != http.StatusCreated || json.Unmarshal(body, &p) != nil {
		return
	}
	city.addPkg(p.ID)
	// Read-your-writes: the build must be visible to its own session
	// immediately, lag or no lag.
	do(res, "GET", fmt.Sprintf("%s/cities/%s/packages/%d", base, city.key, p.ID), nil, session)
}

func collaborator(base string, city *cityInfo, r *rand.Rand, res *results, session string) {
	_, pkg := city.pick(r)
	if pkg < 0 {
		builder(base, city, r, res, session) // nothing to customize yet
		return
	}
	do(res, "POST", fmt.Sprintf("%s/cities/%s/packages/%d/ops", base, city.key, pkg), map[string]any{
		"member": r.Intn(3), "op": "replace", "ci": 0, "poi": 0,
	}, session)
	do(res, "GET", fmt.Sprintf("%s/cities/%s/packages/%d", base, city.key, pkg), nil, session)
}

func refiner(base string, city *cityInfo, r *rand.Rand, res *results, session string) {
	_, pkg := city.pick(r)
	if pkg < 0 {
		builder(base, city, r, res, session)
		return
	}
	strategy := "batch"
	if r.Intn(2) == 0 {
		strategy = "individual"
	}
	do(res, "POST", fmt.Sprintf("%s/cities/%s/packages/%d/refine", base, city.key, pkg), map[string]any{
		"strategy": strategy, "rebuild": true, "k": 4,
	}, session)
	do(res, "GET", fmt.Sprintf("%s/cities/%s/packages/%d", base, city.key, pkg), nil, session)
}

// --- reporting ---

// scrapeRouter attaches the router's edge-cache ledger to the results.
func (res *results) scrapeRouter(routerURL string) {
	var health struct {
		EdgeEntries int `json:"edgeEntries"`
		Counters    struct {
			ReadsTotal        int64 `json:"readsTotal"`
			ReadsPrimary      int64 `json:"readsPrimary"`
			ReadsFollower     int64 `json:"readsFollower"`
			EdgeHits          int64 `json:"edgeHits"`
			EdgeMisses        int64 `json:"edgeMisses"`
			EdgeCoalesced     int64 `json:"edgeCoalesced"`
			EdgeInvalidations int64 `json:"edgeInvalidations"`
		} `json:"counters"`
	}
	if err := getJSON(routerURL+"/healthz", &health); err != nil {
		return // external routers may firewall /healthz; the run stands alone
	}
	res.Router = map[string]int64{
		"readsTotal":        health.Counters.ReadsTotal,
		"readsPrimary":      health.Counters.ReadsPrimary,
		"readsFollower":     health.Counters.ReadsFollower,
		"edgeHits":          health.Counters.EdgeHits,
		"edgeMisses":        health.Counters.EdgeMisses,
		"edgeCoalesced":     health.Counters.EdgeCoalesced,
		"edgeInvalidations": health.Counters.EdgeInvalidations,
		"edgeEntries":       int64(health.EdgeEntries),
	}
}

func (res *results) print(w *os.File) {
	fmt.Fprintf(w, "loadgen: %s for %.0fs at %.0f arrivals/s over %d cities (zipf %.2f, %d followers, edge cache %v)\n",
		res.Target, res.DurationSec, res.OfferedRate, res.Cities, res.Zipf, res.Followers, res.EdgeCache)
	fmt.Fprintf(w, "  %d requests, %.1f req/s served, %d errors, %d rejects (4xx), %d dropped arrivals\n",
		res.Requests, res.ThroughputRPS, res.Errors, res.Rejects, res.Dropped)
	classes := make([]string, 0, len(res.Classes))
	for c := range res.Classes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		cs := res.Classes[c]
		fmt.Fprintf(w, "  %-7s %7d reqs  p50 %8.2fms  p99 %8.2fms  p999 %8.2fms\n",
			c, cs.Count, cs.P50Ms, cs.P99Ms, cs.P999Ms)
	}
	if res.Router != nil {
		fmt.Fprintf(w, "  router: %d edge hits / %d misses / %d coalesced / %d invalidations (%d entries resident)\n",
			res.Router["edgeHits"], res.Router["edgeMisses"], res.Router["edgeCoalesced"],
			res.Router["edgeInvalidations"], res.Router["edgeEntries"])
	}
}

// mergeInto writes the results under the "macro" key of the trajectory
// file, preserving every other key (cmd/benchjson's Benchmark* entries
// and _meta in particular).
func (res *results) mergeInto(path string) error {
	doc := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s exists but is not a JSON object: %w", path, err)
		}
	}
	macro, err := json.Marshal(res)
	if err != nil {
		return err
	}
	doc["macro"] = macro
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
