package router

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"grouptravel/internal/server"
	"grouptravel/internal/telemetry"
)

// End-to-end observability: the same stack the routing tests run —
// real internal/server backends behind a real router over HTTP — but
// asserting the telemetry contract: one request id visible in both
// tiers' structured logs, and /metrics on both daemons exposing the
// per-class histograms and fleet counters dashboards are built on.

// syncBuffer is a concurrency-safe log sink: httptest serves requests
// on its own goroutines, so the slog handler writes concurrently with
// the test's reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// logLines decodes every JSON log line in the sink.
func logLines(t *testing.T, b *syncBuffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

// findLog returns the first record matching the predicate.
func findLog(recs []map[string]any, pred func(map[string]any) bool) map[string]any {
	for _, r := range recs {
		if pred(r) {
			return r
		}
	}
	return nil
}

// TestRequestIDInBothTiersLogs: a mutation proxied through the router
// appears in the router's and the shard's structured logs under the
// same request id — the cross-fleet correlation the tracing exists for.
func TestRequestIDInBothTiersLogs(t *testing.T) {
	shardLog := &syncBuffer{}
	shardLogger, err := telemetry.NewAccessLogger(shardLog, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.NewMultiCity(server.Options{
		Cities: rtTestCities(t), SnapshotDir: t.TempDir(), AccessLog: shardLogger,
	})
	if err != nil {
		t.Fatal(err)
	}
	backend := httptest.NewServer(s.Handler())
	defer backend.Close()

	routerLog := &syncBuffer{}
	routerLogger, err := telemetry.NewAccessLogger(routerLog, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	rt, ts := newRouter(t, Options{Topology: singleShard(backend.URL), AccessLog: routerLogger})
	rt.Poll()

	city := cityKeyOf(rtTestCities(t)[0])
	var g createdGroup
	hdr := doJSON(t, http.MethodPost, ts.URL+"/cities/"+city+"/groups",
		groupBody(rtTestCities(t)[0]), nil, http.StatusCreated, &g)

	rid := hdr.Get(telemetry.HeaderRequestID)
	if rid == "" {
		t.Fatal("router response carries no X-GT-Request-Id")
	}

	routerRec := findLog(logLines(t, routerLog), func(r map[string]any) bool {
		return r["rid"] == rid
	})
	if routerRec == nil {
		t.Fatalf("request id %q not in router log:\n%s", rid, routerLog.String())
	}
	if routerRec["class"] != telemetry.ClassCollab {
		t.Fatalf("router logged class %v, want %q", routerRec["class"], telemetry.ClassCollab)
	}
	if routerRec["shard"] != "s1" || routerRec["backend"] != backend.URL {
		t.Fatalf("router log names shard=%v backend=%v, want s1 / %s",
			routerRec["shard"], routerRec["backend"], backend.URL)
	}

	shardRec := findLog(logLines(t, shardLog), func(r map[string]any) bool {
		return r["rid"] == rid
	})
	if shardRec == nil {
		t.Fatalf("request id %q not in shard log:\n%s", rid, shardLog.String())
	}
	if shardRec["city"] != city {
		t.Fatalf("shard logged city %v, want %q", shardRec["city"], city)
	}

	// A caller-supplied id is honored, not replaced: the client's own
	// correlation survives the whole fleet hop.
	hdr = doJSON(t, http.MethodGet, ts.URL+"/cities/"+city, nil,
		map[string]string{telemetry.HeaderRequestID: "caller-supplied-1"}, http.StatusOK, nil)
	if got := hdr.Get(telemetry.HeaderRequestID); got != "caller-supplied-1" {
		t.Fatalf("caller-supplied request id replaced with %q", got)
	}
	if rec := findLog(logLines(t, shardLog), func(r map[string]any) bool {
		return r["rid"] == "caller-supplied-1"
	}); rec == nil {
		t.Fatal("caller-supplied request id not in shard log")
	}
}

// TestMetricsEndToEnd: after real traffic, both tiers' /metrics expose
// the per-class latency histograms (with a sane p99), the routing
// counters, and the shard's WAL/byte-cache series.
func TestMetricsEndToEnd(t *testing.T) {
	s, backend := newPrimary(t)
	rt, ts := newRouter(t, Options{Topology: singleShard(backend.URL)})
	rt.Poll()

	city := cityKeyOf(rtTestCities(t)[0])
	var g createdGroup
	doJSON(t, http.MethodPost, ts.URL+"/cities/"+city+"/groups",
		groupBody(rtTestCities(t)[0]), nil, http.StatusCreated, &g)
	for i := 0; i < 5; i++ {
		doJSON(t, http.MethodGet, ts.URL+"/cities/"+city, nil, nil, http.StatusOK, nil)
	}

	// Per-class latency: every read above went through the router's
	// middleware, so the read class histogram must hold them all and
	// report a positive, sane p99.
	snap := rt.HTTPMetrics().Class(telemetry.ClassRead).Snapshot()
	if snap.Count < 5 {
		t.Fatalf("read-class histogram holds %d observations, want >= 5", snap.Count)
	}
	if p99 := snap.Quantile(0.99); p99 <= 0 || p99 > 10 {
		t.Fatalf("read-class p99 = %v s, want within (0, 10]", p99)
	}
	if collab := rt.HTTPMetrics().Class(telemetry.ClassCollab).Snapshot(); collab.Count < 1 {
		t.Fatal("collab-class histogram recorded no mutation")
	}

	routerMetrics := fetchText(t, ts.URL+"/metrics")
	for _, want := range []string{
		`gt_http_request_seconds_bucket{class="read",le="+Inf"}`,
		`gt_http_requests_total{class="collab",code="2xx"} 1`,
		"gt_router_reads_total 5",
		"gt_router_mutations_total 1",
		`gt_router_node_up{node="` + backend.URL + `"} 1`,
		`gt_router_health_poll_seconds_count{node="` + backend.URL + `"}`,
	} {
		if !strings.Contains(routerMetrics, want) {
			t.Errorf("router /metrics missing %q", want)
		}
	}

	shardMetrics := fetchText(t, backend.URL+"/metrics")
	for _, want := range []string{
		`gt_http_request_seconds_bucket{class="collab",le="+Inf"}`,
		"gt_wal_append_seconds_count",
		"gt_wal_fsync_seconds_count",
		`gt_bytecache_hits_total{city="` + city + `"}`,
		`gt_wal_records{city="` + city + `"}`,
	} {
		if !strings.Contains(shardMetrics, want) {
			t.Errorf("shard /metrics missing %q", want)
		}
	}

	// The shard's per-class histogram saw the proxied traffic too.
	if snap := s.HTTPMetrics().Class(telemetry.ClassRead).Snapshot(); snap.Count < 5 {
		t.Fatalf("shard read-class histogram holds %d observations, want >= 5", snap.Count)
	}
}

func fetchText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("GET %s: content type %q", url, ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}
