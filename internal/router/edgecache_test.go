package router

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"grouptravel/internal/server"
)

// --- unit: guard, cookie codec, LRU/floor mechanics ---

func TestEdgeCacheableGuard(t *testing.T) {
	long := make([]byte, maxEdgeKeyQuery+1)
	for i := range long {
		long[i] = 'q'
	}
	cases := []struct {
		rest, query string
		want        bool
	}{
		{"", "", true},
		{"groups/7", "", true},
		{"pois", "k=3", true},
		{"wal", "", false},
		{"wal", "from=3", false},
		{"metrics", "", false},
		{"healthz", "", false},
		{"groups/7", string(long), false},
		{"groups/7", "stream=1", false},
		{"groups/7", "wait", false},
		{"groups/7", "k=3&stream", false},
		{"groups/7", "streamer=1", true}, // prefix is not a match
	}
	for _, c := range cases {
		if got := edgeCacheable(c.rest, c.query); got != c.want {
			t.Fatalf("edgeCacheable(%q, %.20q) = %v, want %v", c.rest, c.query, got, c.want)
		}
	}
}

func TestSessionCookieCodec(t *testing.T) {
	v := cookieToken("", "rhodes", 3)
	if v != "rhodes:3" {
		t.Fatalf("cookieToken fresh = %q", v)
	}
	v = cookieToken(v, "smyrna", 5)
	if cookieFloor(v, "rhodes") != 3 || cookieFloor(v, "smyrna") != 5 {
		t.Fatalf("merged cookie %q lost a floor", v)
	}
	// A racing response must never lower an established floor.
	if v := cookieToken("rhodes:9", "rhodes", 3); cookieFloor(v, "rhodes") != 9 {
		t.Fatalf("stale echo lowered the floor: %q", v)
	}
	// Malformed slices degrade to no floor, never an error.
	for _, bad := range []string{"", "rhodes", "rhodes:", "rhodes:x", ":3", "|||", "rhodes:-2"} {
		if f := cookieFloor(bad, "rhodes"); f != 0 {
			t.Fatalf("cookieFloor(%q) = %d, want 0", bad, f)
		}
	}
	// The cookie value must survive net/http's sanitizer byte for byte.
	raw := cookieToken(cookieToken("", "rhodes", 3), "smyrna", 5)
	rec := httptest.NewRecorder()
	http.SetCookie(rec, &http.Cookie{Name: SessionCookie, Value: raw, Path: "/"})
	cks := rec.Result().Cookies()
	if len(cks) != 1 || cks[0].Value != raw {
		t.Fatalf("cookie value mangled by net/http: %+v", cks)
	}
}

func TestEdgeCacheLRUAndFloors(t *testing.T) {
	rt, _ := newRouter(t, Options{Topology: singleShard("http://127.0.0.1:9"), EdgeCache: true, EdgeCacheMax: 2})
	ec := rt.edge
	put := func(key string, seq int64) {
		ec.put(&edgeEntry{key: key, city: "v", seq: seq, body: []byte(key)})
	}
	put("a", 1)
	put("b", 1)
	put("c", 1) // evicts a (LRU tail)
	if ec.len() != 2 {
		t.Fatalf("len = %d, want cap 2", ec.len())
	}
	if ec.get("a", 0) != nil {
		t.Fatal("evicted entry still served")
	}
	if e := ec.get("b", 0); e == nil || string(e.body) != "b" {
		t.Fatalf("get(b) = %+v", e)
	}
	if ec.get("b", 2) != nil {
		t.Fatal("entry below the caller's floor served")
	}
	ec.invalidate("v", 5)
	if ec.get("b", 0) != nil {
		t.Fatal("entry served after its city's commit floor rose past it")
	}
	put("d", 4) // dead on arrival: below the commit floor
	if ec.get("d", 0) != nil {
		t.Fatal("below-floor put was stored")
	}
	put("d", 5)
	if ec.get("d", 5) == nil {
		t.Fatal("at-floor entry not served")
	}
	// A racing slower fill must not replace a fresher render.
	put("d", 7)
	put("d", 6)
	if e := ec.get("d", 0); e == nil || e.seq != 7 {
		t.Fatalf("older racing fill replaced a fresher entry: %+v", e)
	}
	ec.purgeCity("v")
	if ec.len() != 0 {
		t.Fatalf("purgeCity left %d entries", ec.len())
	}
}

// --- integration: hits, invalidation, freshness over real backends ---

// TestEdgeCacheHitInvalidateRefill walks the cache through its whole
// deterministic life cycle against a real primary+follower shard: miss →
// fill → hit, commit-floor invalidation by a proxied mutation, refill at
// the new sequence from the primary, and hit again once the entry proves
// the floor.
func TestEdgeCacheHitInvalidateRefill(t *testing.T) {
	_, pts := newPrimary(t)
	fsrv, fts := newFollower(t, pts.URL)
	city := rtTestCities(t)[0]
	key := cityKeyOf(city)

	rt, rts := newRouter(t, Options{Topology: singleShard(fts.URL, pts.URL), ShedLag: -1, EdgeCache: true})
	rt.Poll()

	sid := map[string]string{HeaderSession: "edgar"}
	var g createdGroup
	doJSON(t, "POST", rts.URL+"/cities/"+key+"/groups", groupBody(city), sid, http.StatusCreated, &g)
	syncAll(t, fsrv)
	rt.Poll()

	url := fmt.Sprintf("%s/cities/%s/groups/%d", rts.URL, key, g.ID)

	// Miss + fill (served by the freshest follower), then a zero-hop hit.
	hdr := doJSON(t, "GET", url, nil, sid, http.StatusOK, nil)
	if hdr.Get(HeaderEdge) != "" || hdr.Get(HeaderBackend) != fts.URL {
		t.Fatalf("fill not served by the follower: edge=%q backend=%q", hdr.Get(HeaderEdge), hdr.Get(HeaderBackend))
	}
	hdr = doJSON(t, "GET", url, nil, sid, http.StatusOK, nil)
	if hdr.Get(HeaderEdge) != "hit" {
		t.Fatalf("second read not an edge hit: %v", hdr)
	}
	if hdr.Get(HeaderAppliedSeq) != "1" || hdr.Get(HeaderBackend) != "" {
		t.Fatalf("hit headers wrong: seq=%q backend=%q", hdr.Get(HeaderAppliedSeq), hdr.Get(HeaderBackend))
	}
	if n := rt.ctr.edgeHits.Value(); n != 1 {
		t.Fatalf("edgeHits = %d, want 1", n)
	}

	// A proxied mutation invalidates the city immediately — before any
	// health poll or follower sync — so the next read refills from the
	// primary, the only node that can prove the new floor.
	doJSON(t, "POST", rts.URL+"/cities/"+key+"/groups", groupBody(city), sid, http.StatusCreated, nil)
	hdr = doJSON(t, "GET", url, nil, sid, http.StatusOK, nil)
	if hdr.Get(HeaderEdge) == "hit" {
		t.Fatal("stale entry served after the mutation raised the commit floor")
	}
	if hdr.Get(HeaderBackend) != pts.URL {
		t.Fatalf("post-write refill served by %q, want primary %q", hdr.Get(HeaderBackend), pts.URL)
	}
	if hdr.Get(HeaderAppliedSeq) != "2" {
		t.Fatalf("refill stamped %q, want \"2\"", hdr.Get(HeaderAppliedSeq))
	}
	if n := rt.ctr.edgeInvalidations.Value(); n == 0 {
		t.Fatal("edgeInvalidations never moved")
	}

	// The refilled entry proves the floor: hit again, at the new seq.
	hdr = doJSON(t, "GET", url, nil, sid, http.StatusOK, nil)
	if hdr.Get(HeaderEdge) != "hit" || hdr.Get(HeaderAppliedSeq) != "2" {
		t.Fatalf("refilled entry not hit: edge=%q seq=%q", hdr.Get(HeaderEdge), hdr.Get(HeaderAppliedSeq))
	}
}

// TestEdgeCacheNeverServesPreWrite is the freshness-contract proof the
// tentpole hangs on: with a follower frozen mid-lag and the cache warm,
// a mutation's ack must make every pre-write entry unservable — for the
// writer's own session AND for token-less readers — before the writer
// can act on the ack. The token-less reader then gets the follower's
// honest 404 (the eventual-consistency contract), never the cache's
// confident stale 200.
func TestEdgeCacheNeverServesPreWrite(t *testing.T) {
	_, pts := newPrimary(t)
	fsrv, fts := newFollower(t, pts.URL)
	city := rtTestCities(t)[0]
	key := cityKeyOf(city)

	rt, rts := newRouter(t, Options{Topology: singleShard(fts.URL, pts.URL), ShedLag: -1, EdgeCache: true})
	rt.Poll()

	// Warm the cache at seq 1 with everyone in sync.
	sid := map[string]string{HeaderSession: "wanda"}
	var g1 createdGroup
	doJSON(t, "POST", rts.URL+"/cities/"+key+"/groups", groupBody(city), sid, http.StatusCreated, &g1)
	syncAll(t, fsrv)
	rt.Poll()
	g1url := fmt.Sprintf("%s/cities/%s/groups/%d", rts.URL, key, g1.ID)
	doJSON(t, "GET", g1url, nil, nil, http.StatusOK, nil)
	if hdr := doJSON(t, "GET", g1url, nil, nil, http.StatusOK, nil); hdr.Get(HeaderEdge) != "hit" {
		t.Fatal("cache did not warm")
	}

	// The write: a second group commits at seq 2. The follower does NOT
	// sync and the router does NOT poll — the lag window is wide open and
	// only the commit token can save correctness.
	var g2 createdGroup
	doJSON(t, "POST", rts.URL+"/cities/"+key+"/groups", groupBody(city), sid, http.StatusCreated, &g2)

	// The writer's read-back: session floor 2 beats the warm seq-1 entry;
	// the lagging follower can't prove the floor either, so the primary
	// serves — post-write state, not a 404.
	hdr := doJSON(t, "GET", fmt.Sprintf("%s/cities/%s/groups/%d", rts.URL, key, g2.ID), nil, sid, http.StatusOK, nil)
	if hdr.Get(HeaderEdge) == "hit" {
		t.Fatal("writer's read-back served from a pre-write cache entry")
	}
	if hdr.Get(HeaderBackend) != pts.URL {
		t.Fatalf("read-back served by %q, want primary", hdr.Get(HeaderBackend))
	}

	// A token-less reader of the warm key: the commit floor (raised by
	// the ack, no poll needed) kills the seq-1 entry, and the refill from
	// the lagging follower is stamped seq 1 — below the floor — so it is
	// served but NOT re-cached as servable. No pre-write bytes from the
	// cache, ever.
	hdr = doJSON(t, "GET", g1url, nil, nil, http.StatusOK, nil)
	if hdr.Get(HeaderEdge) == "hit" {
		t.Fatal("token-less read served a pre-write cache entry after the ack")
	}
	// The read-back above cached post-write bytes at seq 2 — so a
	// token-less reader of the NEW entity gets a hit *fresher* than the
	// lagging follower could serve. The cache only ever errs forward.
	hdr, err := tryDoJSON("GET", fmt.Sprintf("%s/cities/%s/groups/%d", rts.URL, key, g2.ID), nil, nil, http.StatusOK, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Get(HeaderEdge) != "hit" || hdr.Get(HeaderAppliedSeq) != "2" {
		t.Fatalf("token-less read of the fresh entity: edge=%q seq=%q, want fresh hit", hdr.Get(HeaderEdge), hdr.Get(HeaderAppliedSeq))
	}
	// An uncached key scoped to the new entity has nothing to hit: the
	// lagging follower answers its honest 404 — never a stale 200 and
	// never the cache inventing state.
	hdr, err = tryDoJSON("GET", fmt.Sprintf("%s/cities/%s/groups/%d?fresh=1", rts.URL, key, g2.ID), nil, nil, http.StatusNotFound, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Get(HeaderEdge) == "hit" || hdr.Get(HeaderBackend) != fts.URL {
		t.Fatalf("token-less 404: edge=%q backend=%q, want follower miss", hdr.Get(HeaderEdge), hdr.Get(HeaderBackend))
	}
}

// TestSessionCookieReadYourWrites proves the header-less client contract:
// a client that only replays its cookie jar gets read-your-writes through
// a lagging follower, and floors for different cities merge into one
// cookie.
func TestSessionCookieReadYourWrites(t *testing.T) {
	_, pts := newPrimary(t)
	_, fts := newFollower(t, pts.URL)
	cities := rtTestCities(t)
	key := cityKeyOf(cities[0])

	rt, rts := newRouter(t, Options{Topology: singleShard(fts.URL, pts.URL), ShedLag: -1})
	rt.Poll()

	// A cookie-less mutation: the ack sets gt-session.
	var g createdGroup
	hdr := doJSON(t, "POST", rts.URL+"/cities/"+key+"/groups", groupBody(cities[0]), nil, http.StatusCreated, &g)
	ck := sessionCookieOf(t, hdr)
	if ck != key+":1" {
		t.Fatalf("gt-session = %q, want %q", ck, key+":1")
	}

	// Replaying the cookie pins the read past the lagging follower.
	url := fmt.Sprintf("%s/cities/%s/groups/%d", rts.URL, key, g.ID)
	withCookie := map[string]string{"Cookie": SessionCookie + "=" + ck}
	hdr = doJSON(t, "GET", url, nil, withCookie, http.StatusOK, nil)
	if hdr.Get(HeaderBackend) != pts.URL {
		t.Fatalf("cookie-carrying read served by %q, want primary %q", hdr.Get(HeaderBackend), pts.URL)
	}
	if rt.ctr.readsPinned.Value() == 0 {
		t.Fatal("cookie floor did not pin the read")
	}
	// Without the cookie the same read is token-less: the lagging
	// follower's honest 404.
	if _, err := tryDoJSON("GET", url, nil, nil, http.StatusNotFound, nil); err != nil {
		t.Fatal(err)
	}

	// A write in a second city merges into the same cookie.
	key2 := cityKeyOf(cities[1])
	hdr = doJSON(t, "POST", rts.URL+"/cities/"+key2+"/groups", groupBody(cities[1]), withCookie, http.StatusCreated, nil)
	merged := sessionCookieOf(t, hdr)
	if cookieFloor(merged, key) != 1 || cookieFloor(merged, key2) != 1 {
		t.Fatalf("merged cookie %q lost a city floor", merged)
	}
}

// sessionCookieOf extracts the gt-session value from response headers.
func sessionCookieOf(t *testing.T, hdr http.Header) string {
	t.Helper()
	for _, ck := range (&http.Response{Header: hdr}).Cookies() {
		if ck.Name == SessionCookie {
			return ck.Value
		}
	}
	t.Fatalf("no %s cookie in %v", SessionCookie, hdr)
	return ""
}

// --- coalescing and the route guard, against an instrumented backend ---

// TestEdgeCacheCoalescesConcurrentMisses: N concurrent misses on one key
// cost exactly one upstream request — the singleflight leader's — and
// every waiter still gets the full body.
func TestEdgeCacheCoalescesConcurrentMisses(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	gate := make(chan struct{})
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		mu.Unlock()
		<-gate
		w.Header().Set(server.HeaderAppliedSeq, "1")
		_, _ = w.Write([]byte(`{"hot":true}`))
	}))
	t.Cleanup(backend.Close)
	t.Cleanup(func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
	})

	rt, rts := newRouter(t, Options{Topology: singleShard(backend.URL), EdgeCache: true})

	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(rts.URL + "/cities/ville/groups/1")
			if err != nil {
				errs <- err
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || string(body) != `{"hot":true}` {
				errs <- fmt.Errorf("got %d %q", resp.StatusCode, body)
			}
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the herd pile up behind the gate
	close(gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("herd of %d cost %d upstream requests, want 1", n, calls)
	}
	// Every non-leader either rode the fill (coalesced) or arrived after
	// it finished (hit); nobody paid a second hop.
	if got := rt.ctr.edgeCoalesced.Value() + rt.ctr.edgeHits.Value(); got != n-1 {
		t.Fatalf("coalesced+hits = %d, want %d", got, n-1)
	}
}

// TestEdgeCacheRouteGuard: the replication stream, live gauges, streamed
// responses, and oversized query strings bypass the cache entirely —
// every request reaches the backend even with the cache on and the
// responses stamped cacheable.
func TestEdgeCacheRouteGuard(t *testing.T) {
	var mu sync.Mutex
	calls := map[string]int{}
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls[r.URL.Path]++
		mu.Unlock()
		w.Header().Set(server.HeaderAppliedSeq, "1")
		_, _ = w.Write([]byte("ok"))
	}))
	t.Cleanup(backend.Close)

	_, rts := newRouter(t, Options{Topology: singleShard(backend.URL), EdgeCache: true})

	long := make([]byte, maxEdgeKeyQuery+1)
	for i := range long {
		long[i] = 'z'
	}
	uncacheable := []string{
		"/cities/ville/wal",
		"/cities/ville/metrics",
		"/cities/ville/healthz",
		"/cities/ville/groups/1?stream=1",
		"/cities/ville/groups/1?wait=5s",
		"/cities/ville/groups/1?q=" + string(long),
	}
	for _, path := range uncacheable {
		for i := 0; i < 2; i++ {
			resp, err := http.Get(rts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			drainBody(resp)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: %d", path, resp.StatusCode)
			}
			if resp.Header.Get(HeaderEdge) != "" {
				t.Fatalf("GET %s served from the edge cache", path)
			}
		}
	}
	// Control: a cacheable route collapses to one upstream request.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(rts.URL + "/cities/ville/groups/1")
		if err != nil {
			t.Fatal(err)
		}
		drainBody(resp)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls["/cities/ville/wal"] != 2 || calls["/cities/ville/metrics"] != 2 || calls["/cities/ville/healthz"] != 2 {
		t.Fatalf("guarded routes were cached: %v", calls)
	}
	// The three query-guarded variants share the path with the control:
	// 2+2+2 guarded requests plus exactly 1 control fill.
	if calls["/cities/ville/groups/1"] != 7 {
		t.Fatalf("query-guarded requests were cached (or control was not): %v", calls)
	}
}

func drainBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
