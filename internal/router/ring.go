package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is how many points each shard contributes to the
// ring. More points smooth the key distribution (the stddev of shard
// load shrinks roughly with 1/sqrt(vnodes)) at the cost of a larger
// sorted array; 128 keeps a 16-shard ring under 2k points while holding
// per-shard load within a few percent of even.
const DefaultVirtualNodes = 128

// Ring consistent-hashes city keys across shard names. It is a pure
// function of the shard names and the vnode count — no randomness, no
// construction order, no clock — so two routers (or one router across a
// restart) built from the same topology route every key identically.
// Membership change moves only the keys whose owning arc changed hands:
// removing a shard reassigns exactly the keys it owned, and adding one
// steals only the keys that now fall to the new shard — about K/n of
// them — while every other key keeps its shard.
//
// Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	points []ringPoint
	names  []string // sorted shard names
}

type ringPoint struct {
	hash  uint64
	shard string
}

// hash64 is the ring's hash — FNV-1a, stable across processes and Go
// versions (unlike maphash, which seeds per process and would break
// routing determinism across router restarts).
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// NewRing builds a ring over the given shard names with vnodes points
// per shard (<= 0 selects DefaultVirtualNodes). Names must be non-empty
// and unique.
func NewRing(shards []string, vnodes int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("router: ring needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(shards))
	names := make([]string, 0, len(shards))
	for _, name := range shards {
		if name == "" {
			return nil, fmt.Errorf("router: empty shard name")
		}
		if seen[name] {
			return nil, fmt.Errorf("router: duplicate shard %q", name)
		}
		seen[name] = true
		names = append(names, name)
	}
	sort.Strings(names)
	r := &Ring{names: names, points: make([]ringPoint, 0, len(names)*vnodes)}
	for _, name := range names {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", name, i)), shard: name})
		}
	}
	// Ties (two shards hashing a vnode to the same point) are broken by
	// name so the winner is deterministic, not construction-order luck.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shard returns the shard owning a city key: the first ring point at or
// clockwise-after the key's hash.
func (r *Ring) Shard(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the key sits past the last point
	}
	return r.points[i].shard
}

// Shards returns the shard names, sorted.
func (r *Ring) Shards() []string { return append([]string(nil), r.names...) }

// VirtualNodes reports the points contributed per shard.
func (r *Ring) VirtualNodes() int { return len(r.points) / len(r.names) }
