package router

import (
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"reflect"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"grouptravel/internal/server"
)

// The split-brain chaos test: partition a primary away from the router,
// let the failover lease expire, and verify the full epoch story — the
// freshest follower is auto-promoted, the healed old primary is fenced
// before it can accept a single post-epoch write, and it rejoins as a
// follower of the new primary converging to byte-equal state.

// partitionProxy fronts a backend with a switchable partition: while
// cut, every request answers 503 without touching the backend — the
// router sees a dead node, the node itself keeps running (and keeps
// believing it is primary), which is exactly the split-brain setup.
func partitionProxy(t *testing.T, backend *httptest.Server) (*httptest.Server, *atomic.Bool) {
	t.Helper()
	bu, err := url.Parse(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	rp := httputil.NewSingleHostReverseProxy(bu)
	var cut atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if cut.Load() {
			http.Error(w, "partitioned", http.StatusServiceUnavailable)
			return
		}
		rp.ServeHTTP(w, r)
	}))
	t.Cleanup(proxy.Close)
	return proxy, &cut
}

func TestAutoFailoverFencesDeposedPrimary(t *testing.T) {
	cities := rtTestCities(t)
	key := cityKeyOf(cities[0])
	aDir := t.TempDir()

	// Primary A behind the partitionable proxy — the proxy URL is where
	// the fleet reaches it.
	a, err := server.NewMultiCity(server.Options{Cities: cities, SnapshotDir: aDir})
	if err != nil {
		t.Fatal(err)
	}
	ats := httptest.NewServer(a.Handler())
	proxy, cut := partitionProxy(t, ats)

	// Follower B, advertising its own URL (what the fencing hint and the
	// router's epoch-owner match resolve to after promotion).
	bts := httptest.NewServer(nil)
	b, err := server.NewMultiCity(server.Options{
		Cities: cities, SnapshotDir: t.TempDir(),
		Follow: proxy.URL, FollowPoll: -1, Advertise: bts.URL,
	})
	if err != nil {
		t.Fatal(err)
	}
	bts.Config.Handler = b.Handler()
	t.Cleanup(bts.Close)
	t.Cleanup(b.Close)

	rt, rts := newRouter(t, Options{
		Topology: singleShard(proxy.URL, bts.URL),
		Failover: 10 * time.Millisecond,
	})
	rt.Poll()

	// A pre-partition write lands on A and replicates to B.
	var g1 createdGroup
	hdr := doJSON(t, "POST", rts.URL+"/cities/"+key+"/groups", groupBody(cities[0]), nil, http.StatusCreated, &g1)
	if got := hdr.Get(HeaderBackend); got != proxy.URL {
		t.Fatalf("pre-partition write served by %q, want primary %q", got, proxy.URL)
	}
	syncAll(t, b)
	aHeadBefore := cityHeads(t, proxy.URL)[key]
	if aHeadBefore == 0 {
		t.Fatal("primary head is 0 after a write")
	}

	// Partition. The first poll starts the lease clock; after the lease,
	// the next poll promotes B.
	cut.Store(true)
	rt.Poll()
	if n := rt.ctr.autoPromotions.Value(); n != 0 {
		t.Fatalf("promoted before the lease expired (%d)", n)
	}
	time.Sleep(20 * time.Millisecond)
	rt.Poll()
	if n := rt.ctr.autoPromotions.Value(); n != 1 {
		t.Fatalf("autoPromotions = %d, want 1", n)
	}
	if role := b.Role(); role != "promoted" {
		t.Fatalf("B role = %q, want promoted", role)
	}
	if term, owner := b.Epoch(); term != 1 || owner != bts.URL {
		t.Fatalf("B epoch = %d/%q, want 1/%q", term, owner, bts.URL)
	}

	// Post-epoch writes route to B without a manual topology change.
	var g2 createdGroup
	hdr = doJSON(t, "POST", rts.URL+"/cities/"+key+"/groups", groupBody(cities[0]), nil, http.StatusCreated, &g2)
	if got := hdr.Get(HeaderBackend); got != bts.URL {
		t.Fatalf("post-failover write served by %q, want %q", got, bts.URL)
	}

	// Heal. The very next poll relays term 1 at A, fencing it before any
	// client write can reach it through the fleet.
	cut.Store(false)
	rt.Poll()
	if role := a.Role(); role != "fenced" {
		t.Fatalf("healed old primary role = %q, want fenced", role)
	}

	// The deposed primary rejects every post-epoch write, pointing at B.
	rh, err2 := tryDoJSON("POST", proxy.URL+"/cities/"+key+"/groups", groupBody(cities[0]), nil, http.StatusForbidden, nil)
	if err2 != nil {
		t.Fatal(err2)
	}
	if got := rh.Get(HeaderPrimary); got != bts.URL {
		t.Fatalf("fenced 403 hint = %q, want %q", got, bts.URL)
	}
	// And it applied nothing while deposed: its head never moved.
	if h := cityHeads(t, proxy.URL)[key]; h != aHeadBefore {
		t.Fatalf("deposed primary's head moved %d -> %d (unreplicated writes!)", aHeadBefore, h)
	}

	// Writes routed through the router still land on B (A is fenced, not
	// resurrected as primary).
	doJSON(t, "POST", rts.URL+"/cities/"+key+"/groups", groupBody(cities[0]), nil, http.StatusCreated, nil)

	// Rejoin: restart A's state directory as a follower of B. It must
	// catch up past the failover and converge to B's exact state.
	ats.Close()
	a.Close()
	a2, err := server.NewMultiCity(server.Options{
		Cities: cities, SnapshotDir: aDir,
		Follow: bts.URL, FollowPoll: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a2.Close)
	a2ts := httptest.NewServer(a2.Handler())
	t.Cleanup(a2ts.Close)
	if role := a2.Role(); role != "follower" {
		t.Fatalf("rejoined role = %q, want follower", role)
	}
	syncAll(t, a2)

	for _, path := range []string{
		"/cities/" + key + "/groups/" + strconv.Itoa(g1.ID),
		"/cities/" + key + "/groups/" + strconv.Itoa(g2.ID),
		"/cities",
	} {
		var want, got any
		doJSON(t, "GET", bts.URL+path, nil, nil, http.StatusOK, &want)
		doJSON(t, "GET", a2ts.URL+path, nil, nil, http.StatusOK, &got)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s diverges after rejoin:\nnew primary: %+v\nrejoined:    %+v", path, want, got)
		}
	}
}

// cityHeads reads a node's per-city applied heads off its /cities.
func cityHeads(t *testing.T, base string) map[string]int64 {
	t.Helper()
	var rows []nodeCityRow
	doJSON(t, "GET", base+"/cities", nil, nil, http.StatusOK, &rows)
	heads := make(map[string]int64, len(rows))
	for _, r := range rows {
		heads[r.Key] = r.AppliedSeq
	}
	return heads
}

// TestRouterTopologyReload: swapping a shard's node set online (same
// shard name, new backend) must route subsequent traffic to the new
// node — no restart, in-flight state (sessions, counters) intact.
func TestRouterTopologyReload(t *testing.T) {
	cities := rtTestCities(t)
	key := cityKeyOf(cities[0])
	_, p1ts := newPrimary(t)
	_, p2ts := newPrimary(t)

	rt, rts := newRouter(t, Options{Topology: singleShard(p1ts.URL)})
	rt.Poll()

	hdr := doJSON(t, "POST", rts.URL+"/cities/"+key+"/groups", groupBody(cities[0]), nil, http.StatusCreated, nil)
	if got := hdr.Get(HeaderBackend); got != p1ts.URL {
		t.Fatalf("pre-reload write served by %q, want %q", got, p1ts.URL)
	}

	if err := rt.Reload(singleShard(p2ts.URL)); err != nil {
		t.Fatal(err)
	}
	rt.Poll()

	hdr = doJSON(t, "POST", rts.URL+"/cities/"+key+"/groups", groupBody(cities[0]), nil, http.StatusCreated, nil)
	if got := hdr.Get(HeaderBackend); got != p2ts.URL {
		t.Fatalf("post-reload write served by %q, want %q", got, p2ts.URL)
	}

	// An invalid topology is rejected and the live one keeps serving.
	if err := rt.Reload(&Topology{}); err == nil {
		t.Fatal("empty topology accepted")
	}
	doJSON(t, "POST", rts.URL+"/cities/"+key+"/groups", groupBody(cities[0]), nil, http.StatusCreated, nil)
}
