// Package router is the consistent-hash front tier: a thin HTTP proxy
// that spreads city keys across backend shards (each shard one primary
// plus N followers, wired by log shipping — see internal/replicate) and
// routes every request to a node that can serve it correctly:
//
//   - Mutations (POST) go to the shard's primary — discovered from node
//     health, not configured, so failover changes routing without a
//     topology edit. A 403 from a node that turned out to be a follower
//     is retried transparently at the primary its X-GT-Primary hint
//     names; only if that also fails is the 403 relayed, hint intact.
//   - Reads (GET) fan out to the freshest eligible replica: followers
//     first (freshest applied sequence wins), the primary as the last
//     candidate, with unhealthy and lag-shedded followers skipped and
//     failed candidates retried down the list, so a dying follower costs
//     a failover, not an error.
//   - Read-your-writes: every mutation response carries its committed
//     (city, seq) token; a client that sends a session id (X-GT-Session)
//     has its writes remembered and its subsequent reads pinned to
//     replicas at or past its last written sequence — it can never
//     observe pre-write state through the router, while token-less
//     traffic keeps enjoying follower fan-out.
//
// The routing unit is the city key — the same unit internal/registry
// shards within a process — so the front tier scales the same axis
// horizontally: more shards, bounded key movement (consistent hashing),
// deterministic placement across router restarts.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"grouptravel/internal/replicate"
	"grouptravel/internal/telemetry"
)

// Protocol headers. The X-GT-City/X-GT-Seq commit token and the
// X-GT-Primary hint are stamped by the backend (internal/server); the
// router consumes them and adds its own: the session and explicit-floor
// request headers, and response headers naming which shard/backend
// served — the observability hook the examples and tests read.
const (
	HeaderSeq        = "X-GT-Seq"
	HeaderCity       = "X-GT-City"
	HeaderPrimary    = "X-GT-Primary"
	HeaderSession    = "X-GT-Session"
	HeaderMinSeq     = "X-GT-Min-Seq"
	HeaderShard      = "X-GT-Shard"
	HeaderBackend    = "X-GT-Backend"
	HeaderAppliedSeq = "X-GT-Applied-Seq"
)

// SessionCookie is the client-carried slice of the read-your-writes
// contract: every mutation response echoes its commit token (merged with
// the floors the request's cookie already carried) as a gt-session
// cookie, and any later read presenting the cookie has its floor raised
// to the cookie's sequence for the request's city. A cookie-only client
// — a browser behind any of N routers — therefore keeps read-your-writes
// with zero router-side state, the first slice of the stateless-router
// fleet. The value encodes per-city floors as "city:seq|city:seq" using
// only cookie-safe bytes.
const SessionCookie = "gt-session"

const (
	// DefaultPollInterval is the health feed's refresh cadence. Freshness
	// data half a second stale only delays follower eligibility — session
	// pinning stays correct because a pinned read demands the replica's
	// *reported* sequence reach the token, and reports never run ahead of
	// applied state.
	DefaultPollInterval = 500 * time.Millisecond
	// DefaultShedLag is how many records a follower may trail its primary
	// before token-less reads shed it: far enough behind, serving it is
	// worse than the primary's extra load.
	DefaultShedLag = 1024
	// DefaultMaxSessions bounds the read-your-writes table.
	DefaultMaxSessions = 65536
	// maxBufferedBody bounds a buffered mutation body (bodies must be
	// replayable for the 403/failover retries).
	maxBufferedBody = 16 << 20
)

// Options configures a Router.
type Options struct {
	// Topology is the shard layout. Required.
	Topology *Topology
	// PollInterval is the health feed cadence: 0 selects
	// DefaultPollInterval; < 0 starts no background poller — the embedder
	// calls Poll itself (tests).
	PollInterval time.Duration
	// ShedLag is the max records a follower may lag before token-less
	// reads shed it (0: DefaultShedLag; < 0: never shed).
	ShedLag int64
	// MaxSessions bounds the session table (0: DefaultMaxSessions).
	MaxSessions int
	// HTTP overrides the backend transport; when nil, a keep-alive client
	// with per-phase transport deadlines (dial, response headers, idle) and
	// no overall timeout — the /wal streams proxied for push replication
	// are healthy precisely when they stay open.
	HTTP *http.Client
	// AccessLog, when set, receives one structured record per routed
	// request (request id, endpoint class, city, shard, backend, status,
	// duration). Nil disables access logging.
	AccessLog *slog.Logger
	// Failover is the primary lease: when a shard's writable node stays
	// unreachable this long across health polls while no other writable
	// node appears, the router auto-promotes the shard's freshest healthy
	// follower (POST /promote), bumping the replication epoch that fences
	// the deposed primary. 0 disables automatic failover — promotion
	// stays a manual operation.
	Failover time.Duration
	// EdgeCache enables the router's seq-validated response cache for hot
	// city-scoped GETs (see edgecache.go): zero-hop reads with coalesced
	// fills, read-your-writes floors honored, staleness bounded by the
	// health feed's poll window. Off by default — the cache only works
	// against backends that stamp X-GT-Applied-Seq (persistence on).
	EdgeCache bool
	// EdgeCacheMax bounds the edge cache's entry count
	// (0: DefaultEdgeCacheMax).
	EdgeCacheMax int
}

// counters are the router's routing telemetry, surfaced on /healthz and
// /metrics (same registry-backed series, see telemetry.go) — the
// observable proof of where traffic actually went.
type counters struct {
	readsTotal         *telemetry.Counter
	readsPrimary       *telemetry.Counter
	readsFollower      *telemetry.Counter
	readsPinned        *telemetry.Counter
	readFailovers      *telemetry.Counter
	followersShed      *telemetry.Counter
	mutations          *telemetry.Counter
	mutationRetries403 *telemetry.Counter
	mutationFailovers  *telemetry.Counter
	autoPromotions     *telemetry.Counter
	edgeHits           *telemetry.Counter
	edgeMisses         *telemetry.Counter
	edgeCoalesced      *telemetry.Counter
	edgeInvalidations  *telemetry.Counter
}

// routeTable is one immutable routing generation: the validated
// topology, its hash ring, and the shard index. The router swaps whole
// tables atomically (Reload), so every request routes against exactly
// one consistent generation — never a ring from one topology and a
// shard list from another.
type routeTable struct {
	topo      *Topology
	ring      *Ring
	shards    map[string]*Shard
	nodeShard map[string]string // node URL -> owning shard name
}

func newRouteTable(topo *Topology) (*routeTable, error) {
	names := make([]string, 0, len(topo.Shards))
	shards := make(map[string]*Shard, len(topo.Shards))
	nodeShard := make(map[string]string)
	for i := range topo.Shards {
		sh := &topo.Shards[i]
		names = append(names, sh.Name)
		shards[sh.Name] = sh
		for _, n := range sh.Nodes {
			nodeShard[n] = sh.Name
		}
	}
	ring, err := NewRing(names, topo.VirtualNodes)
	if err != nil {
		return nil, err
	}
	return &routeTable{topo: topo, ring: ring, shards: shards, nodeShard: nodeShard}, nil
}

// Router is the front-tier proxy. Construct with New, serve Handler.
type Router struct {
	table     atomic.Pointer[routeTable]
	health    *healthFeed
	sessions  *sessionTable
	edge      *edgeCache // nil when the edge cache is disabled
	client    *http.Client
	shedLag   int64
	failover  time.Duration
	ctr       counters
	metrics   *telemetry.Registry
	httpM     *telemetry.HTTPMetrics
	accessLog *slog.Logger

	// downSince tracks, per shard, when the supervisor first saw the
	// shard's writable node dark with no replacement — the start of the
	// failover lease countdown. Guarded by superMu; only the supervisor
	// (one pass per poll) touches it.
	superMu   sync.Mutex
	downSince map[string]time.Time

	// baseURLs caches each backend base URL parsed once — forward copies
	// the cached struct per request instead of re-parsing "scheme://host"
	// from scratch on every proxied hop. Keys are the handful of node URLs
	// the topology lists (plus any X-GT-Primary hints), so the map never
	// grows past the fleet size.
	baseURLs sync.Map // string -> *url.URL
}

// defaultProxyClient carries all backend traffic: proxied requests,
// health polls, and — with push replication — /wal streams a follower
// holds open through the router. That last case rules out Client.Timeout
// (it would cut every healthy stream at the mark); instead each phase is
// bounded on the Transport: dial, time-to-headers, idle reuse. The pool
// sizes fit the fan-out shape — a router talks to a handful of backends,
// each carrying many concurrent proxied requests, so per-host idle
// capacity matters more than total.
var defaultProxyClient = &http.Client{Transport: &http.Transport{
	DialContext: (&net.Dialer{
		Timeout:   5 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	MaxIdleConns:          256,
	MaxIdleConnsPerHost:   32,
	IdleConnTimeout:       90 * time.Second,
	ResponseHeaderTimeout: 30 * time.Second,
}}

// New builds a router over a validated topology.
func New(opts Options) (*Router, error) {
	if opts.Topology == nil {
		return nil, fmt.Errorf("router: no topology")
	}
	if err := opts.Topology.Validate(); err != nil {
		return nil, fmt.Errorf("router: topology: %w", err)
	}
	table, err := newRouteTable(opts.Topology)
	if err != nil {
		return nil, err
	}
	client := opts.HTTP
	if client == nil {
		client = defaultProxyClient
	}
	interval := opts.PollInterval
	if interval == 0 {
		interval = DefaultPollInterval
	}
	shedLag := opts.ShedLag
	if shedLag == 0 {
		shedLag = DefaultShedLag
	}
	maxSessions := opts.MaxSessions
	if maxSessions <= 0 {
		maxSessions = DefaultMaxSessions
	}
	reg := telemetry.NewRegistry()
	rt := &Router{
		health:    newHealthFeed(opts.Topology.nodeURLs(), client, interval),
		sessions:  newSessionTable(maxSessions),
		client:    client,
		shedLag:   shedLag,
		failover:  opts.Failover,
		ctr:       newCounters(reg),
		metrics:   reg,
		httpM:     telemetry.NewHTTPMetrics(reg),
		accessLog: opts.AccessLog,
		downSince: make(map[string]time.Time),
	}
	rt.table.Store(table)
	rt.health.instrument(reg)
	rt.health.epochFor = rt.epochForNode
	rt.health.afterPoll = rt.supervise
	reg.GaugeFunc("gt_router_sessions", "Read-your-writes sessions tracked.",
		func() float64 { return float64(rt.sessions.len()) })
	if opts.EdgeCache {
		rt.edge = newEdgeCache(opts.EdgeCacheMax, rt.ctr)
		reg.GaugeFunc("gt_router_edgecache_entries", "Edge-cache entries resident.",
			func() float64 { return float64(rt.edge.len()) })
	}
	rt.health.start()
	return rt, nil
}

// Reload swaps the routing topology in place: the ring, shard index,
// and health-feed node set all move to the new layout atomically while
// requests keep flowing. Views (and so epochs) of surviving nodes are
// kept; in-flight requests finish against the generation they started
// on. Invalid topologies are rejected with the old one untouched.
func (rt *Router) Reload(topo *Topology) error {
	if topo == nil {
		return fmt.Errorf("router: reload: no topology")
	}
	if err := topo.Validate(); err != nil {
		return fmt.Errorf("router: reload: topology: %w", err)
	}
	table, err := newRouteTable(topo)
	if err != nil {
		return fmt.Errorf("router: reload: %w", err)
	}
	rt.table.Store(table)
	rt.health.setNodes(topo.nodeURLs())
	return nil
}

// Poll runs one synchronous health pass over every node (plus the
// failover supervision that rides every pass) — boot warm-up and
// deterministic tests.
func (rt *Router) Poll() { rt.health.pollAll() }

// Close stops the background health poller.
func (rt *Router) Close() { rt.health.stopPolling() }

// Ring exposes the hash ring (tests, placement inspection).
func (rt *Router) Ring() *Ring { return rt.table.Load().ring }

// epochForNode resolves the fencing epoch a health poll of the given
// node should carry: the highest term any node of the same shard has
// reported. Per-shard, never global — shard epochs advance
// independently, and a global maximum would fence other shards'
// legitimate primaries.
func (rt *Router) epochForNode(url string) (int64, string) {
	tab := rt.table.Load()
	name, ok := tab.nodeShard[url]
	if !ok {
		return 0, ""
	}
	return rt.shardEpoch(tab.shards[name])
}

// shardEpoch is the highest replication term any of the shard's nodes
// has reported, and the primary that owns it.
func (rt *Router) shardEpoch(sh *Shard) (int64, string) {
	var term int64
	var owner string
	for _, n := range sh.Nodes {
		if v := rt.health.view(n); v.Epoch > term {
			term, owner = v.Epoch, v.EpochPrimary
		}
	}
	return term, owner
}

// Handler returns the router's HTTP handler: the backend's /cities tree,
// routed per city key, plus the router's own /healthz and /metrics. The
// whole mux runs under the telemetry middleware with Mint on: the router
// is where a request enters the fleet, so it mints X-GT-Request-Id
// (honoring a caller-supplied one) and forward's copyHeader relays it
// across every proxy, 403-retry, and failover hop to the shard.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealth)
	mux.Handle("GET /metrics", rt.metrics.Handler())
	mux.HandleFunc("GET /cities", rt.handleCities)
	mux.HandleFunc("/cities/{city}", rt.handleCityRoute)
	mux.HandleFunc("/cities/{city}/{rest...}", rt.handleCityRoute)
	mw := &telemetry.Middleware{Metrics: rt.httpM, Log: rt.accessLog, Mint: true}
	return mw.Wrap(mux)
}

// handleCityRoute proxies one city-scoped request to its shard.
func (rt *Router) handleCityRoute(w http.ResponseWriter, r *http.Request) {
	city := strings.ToLower(r.PathValue("city"))
	tab := rt.table.Load()
	sh := tab.shards[tab.ring.Shard(city)]
	switch r.Method {
	case http.MethodGet:
		rt.proxyRead(sh, city, r.PathValue("rest"), w, r)
	case http.MethodPost:
		rt.proxyMutation(sh, city, w, r)
	default:
		writeErr(w, http.StatusMethodNotAllowed, "method %s not routed", r.Method)
	}
}

// --- read path ---

// proxyRead routes a GET: through the edge cache when it is on and the
// route may touch it (zero-hop hits, coalesced fills), and directly to
// the freshest eligible replica otherwise. rest is the city-relative
// route ("" for the city-info endpoint).
func (rt *Router) proxyRead(sh *Shard, city, rest string, w http.ResponseWriter, r *http.Request) {
	rt.ctr.readsTotal.Inc()
	minSeq := rt.readFloor(city, r)
	if minSeq > 0 {
		rt.ctr.readsPinned.Inc()
	}
	if rt.edge != nil && edgeCacheable(rest, r.URL.RawQuery) {
		rt.edgeRead(sh, city, rest, w, r, minSeq)
		return
	}
	resp, node, ok := rt.fetchRead(sh, city, rest, w, r, minSeq)
	if !ok {
		return
	}
	rt.relay(w, resp, sh.Name, node, rest == "wal")
}

// fetchRead walks the read candidates — eligible followers freshest
// first, the discovered primary last — failing over on connection errors
// and retryable statuses, and returns the first usable backend response
// with the node that produced it. On total failure the error response is
// already written and ok is false.
func (rt *Router) fetchRead(sh *Shard, city, rest string, w http.ResponseWriter, r *http.Request, minSeq int64) (resp *http.Response, node string, ok bool) {
	primary := rt.primaryOf(sh)
	var cands []string
	if rest == "wal" {
		// The replication stream must come from one coherent log: a
		// follower tailing through the router would otherwise hop between
		// backends mid-log. Primary only.
		cands = []string{primary}
	} else {
		cands = rt.readCandidates(sh, city, primary, minSeq)
	}
	if len(cands) == 0 {
		writeErr(w, http.StatusServiceUnavailable,
			"no replica of shard %q is known to be at or past seq %d for city %q", sh.Name, minSeq, city)
		return nil, "", false
	}
	term, owner := rt.shardEpoch(sh)
	for i, cand := range cands {
		resp, err := rt.forward(cand, r, nil, term, owner)
		if err != nil || readRetryable(resp.StatusCode) {
			if resp != nil {
				drain(resp)
			}
			if i < len(cands)-1 {
				rt.ctr.readFailovers.Inc()
			}
			continue
		}
		if cand == primary {
			rt.ctr.readsPrimary.Inc()
		} else {
			rt.ctr.readsFollower.Inc()
		}
		return resp, cand, true
	}
	writeErr(w, http.StatusBadGateway, "no replica of shard %q reachable for city %q", sh.Name, city)
	return nil, "", false
}

// healthMaxApplied is the freshest applied sequence any node of the
// shard has reported for the city — the edge cache's staleness bound: an
// entry older than what the health feed already knows exists must not
// serve, so cache staleness never exceeds the poll-interval window
// token-less reads already accept.
func (rt *Router) healthMaxApplied(sh *Shard, city string) int64 {
	var m int64
	for _, n := range sh.Nodes {
		if v := rt.health.view(n); v.AppliedSeq[city] > m {
			m = v.AppliedSeq[city]
		}
	}
	return m
}

// edgeRead serves one cacheable routed GET through the edge cache: a
// validated hit costs zero proxy hops; a miss joins the key's
// singleflight fill — one upstream hop no matter how many requests
// collide on the key. The combined floor is computed once per request:
// session floor (read-your-writes), the city's commit floor (immediate
// invalidation by proxied mutations), and the health feed's max applied
// sequence (bounded staleness for writes this router never saw).
func (rt *Router) edgeRead(sh *Shard, city, rest string, w http.ResponseWriter, r *http.Request, minSeq int64) {
	key := edgeKey(city, r.URL.Path, r.URL.RawQuery)
	floor := minSeq
	if f := rt.edge.floor(city); f > floor {
		floor = f
	}
	if h := rt.healthMaxApplied(sh, city); h > floor {
		floor = h
	}
	if e := rt.edge.get(key, floor); e != nil {
		writeEdge(w, e, sh.Name)
		return
	}
	fill, leader := rt.edge.join(key)
	if !leader {
		rt.ctr.edgeCoalesced.Inc()
		select {
		case <-fill.done:
			if e := fill.entry; e != nil && e.seq >= floor {
				writeEdge(w, e, sh.Name)
				return
			}
		case <-r.Context().Done():
			writeErr(w, http.StatusServiceUnavailable, "canceled while awaiting a coalesced fill for city %q", city)
			return
		}
		// The fill failed or could not prove this reader's floor: pay the
		// proxy hop directly. Never re-coalesce — a second wait could
		// chain fills forever behind a floor no fill reaches.
		resp, node, ok := rt.fetchRead(sh, city, rest, w, r, minSeq)
		if !ok {
			return
		}
		rt.relay(w, resp, sh.Name, node, false)
		return
	}
	// Leader: one upstream hop, captured into the cache for every rider
	// and future hit. finish always runs — a leader that errors out must
	// release the waiters, not strand them until their contexts expire.
	var entry *edgeEntry
	defer func() { rt.edge.finish(key, fill, entry) }()
	resp, node, ok := rt.fetchRead(sh, city, rest, w, r, minSeq)
	if !ok {
		return
	}
	entry = rt.captureAndRelay(w, resp, sh, city, key, node)
}

// captureAndRelay relays one backend response while capturing it into an
// edge-cache entry when it is cacheable: status 200, stamped with a
// positive X-GT-Applied-Seq (the shard's proof of what state the bytes
// reflect — unstamped responses have no sequence space and are never
// cached), and bounded in size. Oversized bodies stream through after
// the buffered prefix. Returns the stored entry, nil when uncacheable.
func (rt *Router) captureAndRelay(w http.ResponseWriter, resp *http.Response, sh *Shard, city, key, node string) *edgeEntry {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxEdgeBody+1))
	if err != nil {
		writeErr(w, http.StatusBadGateway, "read %s response: %v", node, err)
		return nil
	}
	copyHeader(w.Header(), resp.Header)
	w.Header().Set(HeaderShard, sh.Name)
	w.Header().Set(HeaderBackend, node)
	overflow := len(body) > maxEdgeBody
	if !overflow {
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	} else if resp.ContentLength >= 0 {
		w.Header().Set("Content-Length", strconv.FormatInt(resp.ContentLength, 10))
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
	if overflow {
		buf := copyBufPool.Get().(*[]byte)
		_, _ = io.CopyBuffer(w, resp.Body, *buf)
		copyBufPool.Put(buf)
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	seq, err := strconv.ParseInt(resp.Header.Get(HeaderAppliedSeq), 10, 64)
	if err != nil || seq <= 0 {
		return nil
	}
	e := &edgeEntry{key: key, city: city, seq: seq, ctype: resp.Header.Get("Content-Type"), body: body}
	rt.edge.put(e)
	return e
}

// readFloor resolves the minimum acceptable sequence for this read: the
// explicit X-GT-Min-Seq floor, raised by the session's remembered writes
// and by the gt-session cookie's floor for this city. The cookie is the
// header-less fallback — a browser that merely replays Set-Cookie gets
// read-your-writes with no client code at all.
func (rt *Router) readFloor(city string, r *http.Request) int64 {
	var minSeq int64
	if v := r.Header.Get(HeaderMinSeq); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			minSeq = n
		}
	}
	if sid := r.Header.Get(HeaderSession); sid != "" {
		if s := rt.sessions.minSeq(sid, city); s > minSeq {
			minSeq = s
		}
	}
	if ck, err := r.Cookie(SessionCookie); err == nil {
		if s := cookieFloor(ck.Value, city); s > minSeq {
			minSeq = s
		}
	}
	return minSeq
}

// cookieFloor extracts the named city's floor from a gt-session cookie
// value ("city:seq|city:seq"). Malformed slices are ignored — a client
// that mangles its cookie degrades to token-less reads, never to an
// error.
func cookieFloor(value, city string) int64 {
	for v := value; v != ""; {
		var pair string
		if i := strings.IndexByte(v, '|'); i >= 0 {
			pair, v = v[:i], v[i+1:]
		} else {
			pair, v = v, ""
		}
		i := strings.LastIndexByte(pair, ':')
		if i < 0 || pair[:i] != city {
			continue
		}
		if n, err := strconv.ParseInt(pair[i+1:], 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

// cookieToken renders the merged gt-session cookie value after a write:
// the request's existing cookie floors with the written city raised to
// seq. Cities are bounded by the topology, so the value stays small; the
// separator set (':' and '|') is cookie-value-safe so net/http never
// sanitizes bytes away.
func cookieToken(prev, city string, seq int64) string {
	if s := cookieFloor(prev, city); s > seq {
		seq = s // racing responses must never lower an established floor
	}
	var b strings.Builder
	b.WriteString(city)
	b.WriteByte(':')
	b.WriteString(strconv.FormatInt(seq, 10))
	for v := prev; v != ""; {
		var pair string
		if i := strings.IndexByte(v, '|'); i >= 0 {
			pair, v = v[:i], v[i+1:]
		} else {
			pair, v = v, ""
		}
		i := strings.LastIndexByte(pair, ':')
		if i < 0 || pair[:i] == city {
			continue
		}
		if n, err := strconv.ParseInt(pair[i+1:], 10, 64); err != nil || n <= 0 {
			continue
		}
		b.WriteByte('|')
		b.WriteString(pair)
	}
	return b.String()
}

// readCandidates orders a shard's nodes for one read: eligible followers
// freshest-first, the discovered primary as the final fallback. A real
// primary is always eligible — it is the source of truth, so a pinned
// read can never outrun it — but when discovery had to *guess* (nothing
// healthy identified itself as primary), a fallback that is known to be
// a follower below the read floor is dropped rather than trusted:
// serving pre-write state silently is worse than the empty candidate
// list the caller answers 503 for. A follower is eligible when its last
// poll succeeded, its role is actually follower, its reported appliedSeq
// reaches the read floor, and — for token-less reads — it is not shed
// for lagging the primary by more than shedLag records.
func (rt *Router) readCandidates(sh *Shard, city, primary string, minSeq int64) []string {
	type cand struct {
		url string
		seq int64
	}
	primarySeq := rt.health.view(primary).AppliedSeq[city]
	var followers []cand
	for _, n := range sh.Nodes {
		if n == primary {
			continue
		}
		v := rt.health.view(n)
		if v.Err != "" || v.Role != "follower" {
			continue
		}
		seq := v.AppliedSeq[city]
		if minSeq > 0 && seq < minSeq {
			continue // behind the session's write: would serve pre-write state
		}
		if minSeq == 0 && rt.shedLag > 0 && primarySeq > 0 && primarySeq-seq > rt.shedLag {
			rt.ctr.followersShed.Inc()
			continue
		}
		followers = append(followers, cand{url: n, seq: seq})
	}
	sort.SliceStable(followers, func(i, j int) bool { return followers[i].seq > followers[j].seq })
	out := make([]string, 0, len(followers)+1)
	for _, f := range followers {
		out = append(out, f.url)
	}
	if minSeq > 0 {
		v := rt.health.view(primary)
		writable := v.Role == "primary" || v.Role == "promoted"
		if !writable && v.AppliedSeq[city] < minSeq {
			// The fallback is a guess that cannot *prove* the floor — a
			// known or never-identified follower may be lagging, and an
			// unproven 200 here would be pre-write state. Let the caller
			// answer 503; the next successful health poll restores service.
			return out
		}
	}
	return append(out, primary)
}

// readRetryable: statuses that mean "this replica, right now" rather
// than "this request": a 403 (read-only race or a misrouted gate), 5xx
// unavailability. 404s are authoritative — a lagging follower legitimately
// 404s a token-less read of a fresh entity; that is the eventual-
// consistency contract token-less traffic opted into.
func readRetryable(status int) bool {
	switch status {
	case http.StatusForbidden, http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// --- mutation path ---

// proxyMutation routes a POST to the shard's primary. The body is
// buffered so it can be replayed: a 403 from a stale primary view is
// retried at the node the X-GT-Primary hint names, and a dead node fails
// over through the shard's remaining nodes (one of which may have been
// promoted). Only when the hint and every remaining node fail too is the
// original 403 relayed, hint intact — the client learns exactly what the
// router knew.
//
// Mutations are not idempotent, so the failover rules are narrower than
// the read path's: a *dial* failure (the request never reached the
// backend) and a 5xx *response* (the backend answered — the serving
// layer never 5xxs after committing, see the mutation handlers) are safe
// to retry; a timeout or mid-stream cut is ambiguous — the backend may
// have committed — and is answered 502 rather than re-sent, because a
// silent double-apply is worse than a client-visible unknown.
func (rt *Router) proxyMutation(sh *Shard, city string, w http.ResponseWriter, r *http.Request) {
	rt.ctr.mutations.Inc()
	// The body buffers into pooled storage — it only needs to live until
	// the last forward attempt below, so the buffer recycles per request
	// instead of a fresh io.ReadAll allocation per mutation.
	bodyBuf := bodyBufPool.Get().(*bytes.Buffer)
	bodyBuf.Reset()
	defer bodyBufPool.Put(bodyBuf)
	if _, err := bodyBuf.ReadFrom(io.LimitReader(r.Body, maxBufferedBody+1)); err != nil {
		writeErr(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	body := bodyBuf.Bytes()
	if len(body) > maxBufferedBody {
		writeErr(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", maxBufferedBody)
		return
	}
	primary := rt.primaryOf(sh)
	order := make([]string, 0, len(sh.Nodes))
	order = append(order, primary)
	for _, n := range sh.Nodes {
		if n != primary {
			order = append(order, n)
		}
	}

	// The first follower 403 is kept aside and relayed — hint intact —
	// only after every other avenue is exhausted: the hinted primary
	// first, then the shard's remaining nodes (one may have been promoted
	// since the last health poll).
	var deniedHdr http.Header
	var deniedBody []byte
	var deniedBy string
	tried := make(map[string]bool, len(order)+1)
	term, epochOwner := rt.shardEpoch(sh)

	// attempt sends the mutation to one node and fully classifies the
	// outcome; true means a response (success or terminal failure) was
	// written. A 403 chases its X-GT-Primary hint immediately — the hint
	// names the node the follower actually replicates from, a better
	// guess than list order — with the tried set bounding the recursion.
	var attempt func(node string) bool
	attempt = func(node string) bool {
		if node == "" || tried[node] {
			return false
		}
		tried[node] = true
		resp, err := rt.forward(node, r, body, term, epochOwner)
		if err != nil {
			if !dialFailure(err) {
				writeErr(w, http.StatusBadGateway,
					"mutation to %s failed mid-flight (it may or may not have committed): %v", node, err)
				return true
			}
			rt.ctr.mutationFailovers.Inc()
			return false
		}
		if resp.StatusCode >= http.StatusInternalServerError {
			drain(resp)
			rt.ctr.mutationFailovers.Inc()
			return false
		}
		if resp.StatusCode == http.StatusForbidden {
			hint := resp.Header.Get(HeaderPrimary)
			if deniedHdr == nil {
				deniedBody, _ = io.ReadAll(io.LimitReader(resp.Body, maxBufferedBody))
				deniedHdr = resp.Header.Clone()
				deniedBy = node
				resp.Body.Close()
			} else {
				drain(resp)
			}
			if target := rt.resolveNode(sh, hint); target != "" && !tried[target] {
				rt.ctr.mutationRetries403.Inc()
				return attempt(target)
			}
			return false
		}
		rt.noteMutation(city, r, w, resp)
		rt.relay(w, resp, sh.Name, node, false)
		return true
	}

	for _, node := range order {
		if attempt(node) {
			return
		}
	}
	if deniedHdr != nil {
		// Every other avenue failed: the 403 (with its hint) is the most
		// truthful answer the shard produced.
		copyHeader(w.Header(), deniedHdr)
		w.Header().Set(HeaderShard, sh.Name)
		w.Header().Set(HeaderBackend, deniedBy)
		w.WriteHeader(http.StatusForbidden)
		_, _ = w.Write(deniedBody)
		return
	}
	writeErr(w, http.StatusBadGateway, "no node of shard %q accepted the mutation for city %q", sh.Name, city)
}

// dialFailure reports whether a forward error happened while *dialing* —
// before the request could have reached the backend — which is the only
// transport failure a non-idempotent mutation may retry after.
func dialFailure(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// noteMutation records a successful mutation's commit token three ways,
// all strictly before the ack relays to the client: against the
// request's session (pinning the session's later reads), against the
// edge cache (the city's commit floor rises, so entries rendered
// pre-write stop serving before the writer can act on the ack), and as a
// gt-session cookie echo (header-less read-your-writes for clients that
// just replay their cookie jar). A commit without a parseable token has
// no sequence space to floor on — the city's edge entries purge outright.
func (rt *Router) noteMutation(city string, r *http.Request, w http.ResponseWriter, resp *http.Response) {
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return
	}
	seq, err := strconv.ParseInt(resp.Header.Get(HeaderSeq), 10, 64)
	if err != nil || seq <= 0 {
		if rt.edge != nil {
			rt.edge.purgeCity(city)
		}
		return
	}
	tokenCity := resp.Header.Get(HeaderCity)
	if tokenCity == "" {
		tokenCity = city
	}
	if rt.edge != nil {
		rt.edge.invalidate(tokenCity, seq)
	}
	if sid := r.Header.Get(HeaderSession); sid != "" {
		rt.sessions.note(sid, tokenCity, seq)
	}
	var prev string
	if ck, err := r.Cookie(SessionCookie); err == nil {
		prev = ck.Value
	}
	http.SetCookie(w, &http.Cookie{Name: SessionCookie, Value: cookieToken(prev, tokenCity, seq), Path: "/"})
}

// --- shared plumbing ---

// primaryOf discovers a shard's primary from node health. The shard's
// replication epoch rules first: whoever owns the highest term *is* the
// primary, whatever stale roles other views still claim — after a
// failover, a healed deposed node may report role "primary" for one
// more poll, and believing it would be split-brain routing. Below the
// epoch: a healthy node reporting role "primary" wins, then a healthy
// "promoted" ex-follower, then a node whose *last known* role was
// primary/promoted even if its latest poll failed (a transient poll
// failure must not redirect mutations at a node that is known to be a
// follower), then a never-identified node, then the first listed one.
// The 403-retry path heals a wrong guess on the mutation side; the read
// side additionally guards pinned reads against a known-follower
// fallback (readCandidates).
func (rt *Router) primaryOf(sh *Shard) string {
	if _, epochOwner := rt.shardEpoch(sh); epochOwner != "" {
		if n := rt.resolveNode(sh, epochOwner); n != "" {
			return n
		}
	}
	var promoted, staleWritable, unknown string
	for _, n := range sh.Nodes {
		v := rt.health.view(n)
		writable := v.Role == "primary" || v.Role == "promoted"
		switch {
		case v.Err == "" && v.Role == "primary":
			return n
		case v.Err == "" && v.Role == "promoted" && promoted == "":
			promoted = n
		case v.Err != "" && writable && staleWritable == "":
			staleWritable = n
		case v.Role == "" && unknown == "":
			unknown = n
		}
	}
	for _, n := range []string{promoted, staleWritable, unknown} {
		if n != "" {
			return n
		}
	}
	return sh.Nodes[0]
}

// resolveNode maps an X-GT-Primary hint onto a shard node, matching both
// listed URLs and advertised ones (a follower knows its upstream by the
// address *it* dials, which node lists may not repeat verbatim). An
// unmatched non-empty hint is trusted as-is — the hinting node reaches
// its primary there, so the router can too.
func (rt *Router) resolveNode(sh *Shard, hint string) string {
	hint = strings.TrimRight(hint, "/")
	if hint == "" {
		return ""
	}
	for _, n := range sh.Nodes {
		if n == hint {
			return n
		}
		if v := rt.health.view(n); v.Advertise != "" && v.Advertise == hint {
			return n
		}
	}
	return hint
}

// forward sends a copy of the inbound request to one backend. GET bodies
// are empty; mutation bodies are the buffered bytes, replayable across
// candidates (GetBody lets the transport itself replay over a dead
// keep-alive connection). The outbound request is assembled directly —
// cached base URL copied by value, path/query taken from the inbound
// parse — rather than formatting a URL string for http.NewRequest to
// parse straight back apart; that round-trip was the proxy hot path's
// single largest allocation source.
//
// term/owner are the shard's fencing epoch, stamped after the header
// copy so the router's authoritative value always replaces anything the
// client sent — epoch headers from outside the fleet are stripped
// either way (a forged X-GT-Epoch must not be able to fence a primary
// through the proxy).
func (rt *Router) forward(base string, r *http.Request, body []byte, term int64, owner string) (*http.Response, error) {
	bu, err := rt.baseURL(base)
	if err != nil {
		return nil, err
	}
	u := *bu
	u.Path = bu.Path + r.URL.Path
	if bu.RawPath != "" || r.URL.RawPath != "" {
		u.RawPath = bu.EscapedPath() + r.URL.EscapedPath()
	}
	u.RawQuery = r.URL.RawQuery
	req := (&http.Request{
		Method:     r.Method,
		URL:        &u,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     make(http.Header, len(r.Header)+2),
		Host:       u.Host,
	}).WithContext(r.Context())
	if body != nil {
		req.Body = io.NopCloser(bytes.NewReader(body))
		req.ContentLength = int64(len(body))
		req.GetBody = func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(body)), nil
		}
	}
	copyHeader(req.Header, r.Header)
	req.Header.Del(replicate.HeaderEpoch)
	req.Header.Del(replicate.HeaderEpochPrimary)
	if term > 0 {
		req.Header.Set(replicate.HeaderEpoch, strconv.FormatInt(term, 10))
		if owner != "" {
			req.Header.Set(replicate.HeaderEpochPrimary, owner)
		}
	}
	return rt.client.Do(req)
}

// baseURL returns the parsed form of a backend base URL, parsing each
// distinct base exactly once.
func (rt *Router) baseURL(base string) (*url.URL, error) {
	if v, ok := rt.baseURLs.Load(base); ok {
		return v.(*url.URL), nil
	}
	u, err := url.Parse(base)
	if err != nil {
		return nil, err
	}
	rt.baseURLs.Store(base, u)
	return u, nil
}

// copyBufPool feeds relay's io.CopyBuffer: one 32 KiB scratch buffer per
// in-flight relay instead of the fresh buffer a bare io.Copy allocates
// for every proxied response.
var copyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 32*1024)
	return &b
}}

// bodyBufPool recycles the buffers proxyMutation reads request bodies
// into, replacing a per-mutation io.ReadAll allocation.
var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// relay streams a backend response to the client, stamping which shard
// and backend served it. The copy runs over a pooled buffer and the
// backend's Content-Length (when known) passes through, so a cached
// byte-for-byte backend response relays without any allocation or
// chunked re-framing on this hop. With flush set (the /wal route) every
// chunk flushes as it arrives, so a push stream's commit-wakeup frames
// and heartbeats pass through the router instead of sitting in its
// response buffer until it fills.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, shard, backend string, flush bool) {
	defer resp.Body.Close()
	copyHeader(w.Header(), resp.Header)
	w.Header().Set(HeaderShard, shard)
	w.Header().Set(HeaderBackend, backend)
	if resp.ContentLength >= 0 {
		w.Header().Set("Content-Length", strconv.FormatInt(resp.ContentLength, 10))
	}
	w.WriteHeader(resp.StatusCode)
	var dst io.Writer = w
	if flush {
		if fl := telemetry.FlusherFor(w); fl != nil {
			fl.Flush() // headers out now: the follower reads them before the first frame
			dst = flushWriter{w: w, fl: fl}
		}
	}
	buf := copyBufPool.Get().(*[]byte)
	_, _ = io.CopyBuffer(dst, resp.Body, *buf)
	copyBufPool.Put(buf)
}

// flushWriter flushes after every write — the pass-through a long-lived
// stream needs from a proxy hop.
type flushWriter struct {
	w  io.Writer
	fl http.Flusher
}

func (f flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if n > 0 {
		f.fl.Flush()
	}
	return n, err
}

// copyHeader copies all headers except hop-by-hop ones.
func copyHeader(dst, src http.Header) {
	for k, vv := range src {
		switch k {
		case "Connection", "Keep-Alive", "Transfer-Encoding", "Upgrade":
			continue
		}
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
}

// drain discards a response that will not be relayed, keeping the
// backend connection reusable.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// --- aggregation & health ---

// routedCity is one row of the router's GET /cities: the backend's
// summary for every city its owning shard knows, annotated with the
// shard the ring routes it to.
type routedCity struct {
	Key        string `json:"key"`
	Shard      string `json:"shard"`
	Loaded     bool   `json:"loaded"`
	WALBytes   int64  `json:"walBytes,omitempty"`
	AppliedSeq int64  `json:"appliedSeq,omitempty"`
}

// handleCities aggregates GET /cities across shards: each shard's
// primary lists its cities, and the router keeps the rows the ring
// actually routes to that shard — one merged, deduplicated view of the
// fleet's key space. Shards are queried concurrently so a dark shard
// costs one timeout, not one per corpse; its rows go missing and
// /healthz names it.
func (rt *Router) handleCities(w http.ResponseWriter, r *http.Request) {
	// Bound each shard fetch like the health polls are bounded: a
	// black-holed primary costs one short timeout, and a disconnected
	// client cancels the work.
	ctx, cancel := context.WithTimeout(r.Context(), healthPollTimeout)
	defer cancel()
	tab := rt.table.Load()
	names := tab.ring.Shards()
	perShard := make([][]routedCity, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			primary := rt.primaryOf(tab.shards[name])
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, primary+"/cities", nil)
			if err != nil {
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				drain(resp)
				return
			}
			var rows []nodeCityRow
			if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
				return
			}
			for _, row := range rows {
				if tab.ring.Shard(row.Key) != name {
					continue
				}
				perShard[i] = append(perShard[i], routedCity{
					Key: row.Key, Shard: name, Loaded: row.Loaded,
					WALBytes: row.WALBytes, AppliedSeq: row.AppliedSeq,
				})
			}
		}(i, name)
	}
	wg.Wait()
	var out []routedCity
	for _, rows := range perShard {
		out = append(out, rows...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	writeJSON(w, http.StatusOK, out)
}

// countersJSON is the routing-telemetry slice of the router's /healthz.
type countersJSON struct {
	ReadsTotal         int64 `json:"readsTotal"`
	ReadsPrimary       int64 `json:"readsPrimary"`
	ReadsFollower      int64 `json:"readsFollower"`
	ReadsPinned        int64 `json:"readsPinned"`
	ReadFailovers      int64 `json:"readFailovers"`
	FollowersShed      int64 `json:"followersShed"`
	Mutations          int64 `json:"mutations"`
	MutationRetries403 int64 `json:"mutationRetries403"`
	MutationFailovers  int64 `json:"mutationFailovers"`
	AutoPromotions     int64 `json:"autoPromotions"`
	EdgeHits           int64 `json:"edgeHits"`
	EdgeMisses         int64 `json:"edgeMisses"`
	EdgeCoalesced      int64 `json:"edgeCoalesced"`
	EdgeInvalidations  int64 `json:"edgeInvalidations"`
}

// shardHealth is one shard's row in the router's /healthz: the node
// views plus the shard's fencing epoch — the term the router relays to
// fence stale primaries, and who it believes owns it.
type shardHealth struct {
	Epoch        int64      `json:"epoch,omitempty"`
	EpochPrimary string     `json:"epochPrimary,omitempty"`
	Nodes        []NodeView `json:"nodes"`
}

type healthReport struct {
	Status       string                 `json:"status"`
	VirtualNodes int                    `json:"virtualNodes"`
	Shards       map[string]shardHealth `json:"shards"`
	Sessions     int                    `json:"sessions"`
	EdgeEntries  int                    `json:"edgeEntries"`
	Counters     countersJSON           `json:"counters"`
}

func (rt *Router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	tab := rt.table.Load()
	rep := healthReport{
		Status:       "ok",
		VirtualNodes: tab.ring.VirtualNodes(),
		Shards:       make(map[string]shardHealth, len(tab.shards)),
		Sessions:     rt.sessions.len(),
		Counters: countersJSON{
			ReadsTotal:         rt.ctr.readsTotal.Value(),
			ReadsPrimary:       rt.ctr.readsPrimary.Value(),
			ReadsFollower:      rt.ctr.readsFollower.Value(),
			ReadsPinned:        rt.ctr.readsPinned.Value(),
			ReadFailovers:      rt.ctr.readFailovers.Value(),
			FollowersShed:      rt.ctr.followersShed.Value(),
			Mutations:          rt.ctr.mutations.Value(),
			MutationRetries403: rt.ctr.mutationRetries403.Value(),
			MutationFailovers:  rt.ctr.mutationFailovers.Value(),
			AutoPromotions:     rt.ctr.autoPromotions.Value(),
			EdgeHits:           rt.ctr.edgeHits.Value(),
			EdgeMisses:         rt.ctr.edgeMisses.Value(),
			EdgeCoalesced:      rt.ctr.edgeCoalesced.Value(),
			EdgeInvalidations:  rt.ctr.edgeInvalidations.Value(),
		},
	}
	if rt.edge != nil {
		rep.EdgeEntries = rt.edge.len()
	}
	for name, sh := range tab.shards {
		views := make([]NodeView, 0, len(sh.Nodes))
		for _, n := range sh.Nodes {
			views = append(views, rt.health.view(n))
		}
		term, owner := rt.shardEpoch(sh)
		rep.Shards[name] = shardHealth{Epoch: term, EpochPrimary: owner, Nodes: views}
	}
	writeJSON(w, http.StatusOK, rep)
}
