package router

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// runRouterReadYourWritesUnderLag is the acceptance harness for the
// front tier: a router over one primary and two *artificially lagging*
// followers (their replication syncs run on a slow manual cadence, so at
// the moment a client reads back its write the followers are genuinely
// behind), with concurrent clients mutating and immediately reading
// through the router. The invariant under test: a session's read-back
// NEVER observes pre-write state — not a 404, not a stale copy — while
// token-less readers keep being served by followers. Runs under -race
// via `make race`, which is half the point: the whole request path —
// session table, health feed, candidate selection, edge cache, counters
// — is exercised from many goroutines at once. With edge true the
// router's edge cache is on, so every hit, coalesced fill, and
// floor-raise races the same traffic.
func runRouterReadYourWritesUnderLag(t *testing.T, edge bool) {
	_, pts := newPrimary(t)
	f1, f1ts := newFollower(t, pts.URL)
	f2, f2ts := newFollower(t, pts.URL)
	cities := rtTestCities(t)

	// Primary deliberately listed last: discovery, not list order, must
	// find it. ShedLag < 0 keeps even lagging followers in the token-less
	// pool — the adversarial setting for read-your-writes.
	rt, rts := newRouter(t, Options{
		Topology:  singleShard(f1ts.URL, f2ts.URL, pts.URL),
		ShedLag:   -1,
		EdgeCache: edge,
	})
	rt.Poll()

	// Seed one warm group per city and replicate it everywhere, so
	// token-less readers have an entity every follower can serve.
	warm := make(map[string]int, len(cities))
	for _, c := range cities {
		var g createdGroup
		doJSON(t, "POST", rts.URL+"/cities/"+cityKeyOf(c)+"/groups", groupBody(c), nil, http.StatusCreated, &g)
		warm[cityKeyOf(c)] = g.ID
	}
	syncAll(t, f1)
	syncAll(t, f2)
	rt.Poll()

	// The lag engine: followers sync on a slow drip (every ~15ms), the
	// health feed refreshes faster — so followers are consistently a few
	// writes behind while their *reported* positions stay honest.
	done := make(chan struct{})
	var bg sync.WaitGroup
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-done:
				return
			case <-time.After(15 * time.Millisecond):
				for _, c := range cities {
					_ = f1.Follower().Sync(cityKeyOf(c))
					_ = f2.Follower().Sync(cityKeyOf(c))
				}
			}
		}
	}()
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-done:
				return
			case <-time.After(3 * time.Millisecond):
				rt.Poll()
			}
		}
	}()

	// Writer clients: mutate through the router, read back immediately
	// with the same session id. Every read-back must see the write.
	const writers, writesEach = 4, 6
	var wg sync.WaitGroup
	errs := make(chan error, writers*writesEach+64)
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			sid := map[string]string{HeaderSession: fmt.Sprintf("writer-%d", wi)}
			city := cities[wi%len(cities)]
			base := rts.URL + "/cities/" + cityKeyOf(city)
			for i := 0; i < writesEach; i++ {
				var g createdGroup
				if _, err := tryDoJSON("POST", base+"/groups", groupBody(city), sid, http.StatusCreated, &g); err != nil {
					errs <- fmt.Errorf("writer %d: %w", wi, err)
					return
				}
				if g.Seq <= 0 {
					errs <- fmt.Errorf("writer %d: mutation carried no commit token: %+v", wi, g)
					return
				}
				// The moment of truth: read back through the router.
				var got createdGroup
				if _, err := tryDoJSON("GET", fmt.Sprintf("%s/groups/%d", base, g.ID), nil, sid, http.StatusOK, &got); err != nil {
					errs <- fmt.Errorf("writer %d observed pre-write state for group %d: %w", wi, g.ID, err)
					return
				}
				if got.Size != 3 {
					errs <- fmt.Errorf("writer %d: stale read-back %+v", wi, got)
					return
				}
			}
		}(wi)
	}

	// Token-less readers hammer the warm entities for the whole run — the
	// edge cache's hottest keys when it is on.
	stopReaders := make(chan struct{})
	var readers sync.WaitGroup
	for ri := 0; ri < 2; ri++ {
		readers.Add(1)
		go func(ri int) {
			defer readers.Done()
			city := cities[ri%len(cities)]
			url := fmt.Sprintf("%s/cities/%s/groups/%d", rts.URL, cityKeyOf(city), warm[cityKeyOf(city)])
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				if _, err := tryDoJSON("GET", url, nil, nil, http.StatusOK, nil); err != nil {
					errs <- fmt.Errorf("token-less reader %d: %w", ri, err)
					return
				}
			}
		}(ri)
	}

	wg.Wait()
	close(stopReaders)
	readers.Wait()
	close(done)
	bg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The routing counters prove the topology actually worked as designed:
	// sessions were pinned, some pinned reads needed the primary (the
	// followers really were lagging), and token-less traffic was served
	// by followers.
	var health healthReport
	doJSON(t, "GET", rts.URL+"/healthz", nil, nil, http.StatusOK, &health)
	ctr := health.Counters
	if ctr.Mutations != int64(writers*writesEach+len(cities)) {
		t.Fatalf("mutations = %d, want %d", ctr.Mutations, writers*writesEach+len(cities))
	}
	if ctr.ReadsPinned < int64(writers*writesEach) {
		t.Fatalf("readsPinned = %d, want >= %d", ctr.ReadsPinned, writers*writesEach)
	}
	if ctr.ReadsFollower == 0 {
		t.Fatalf("no read was served by a follower: %+v", ctr)
	}
	if ctr.ReadsPrimary == 0 {
		t.Fatalf("no pinned read ever needed the primary — the followers were not lagging: %+v", ctr)
	}
	if !edge {
		if ctr.ReadsTotal != ctr.ReadsPrimary+ctr.ReadsFollower {
			t.Fatalf("reads don't add up: %+v", ctr)
		}
		return
	}
	// With the edge cache on the ledger gains two lines: hits served zero
	// backends, and a coalesced rider may have been served from its fill
	// (counted under coalesced alone) or fallen through to its own fetch
	// (counted under coalesced AND a role counter).
	backed := ctr.ReadsPrimary + ctr.ReadsFollower + ctr.EdgeHits
	if ctr.ReadsTotal < backed || ctr.ReadsTotal > backed+ctr.EdgeCoalesced {
		t.Fatalf("edge-cache reads don't add up: %+v", ctr)
	}
	// Every proxied mutation carries a commit token, so each must have
	// raised (or tied) the city's commit floor — never purged.
	if ctr.EdgeInvalidations == 0 {
		t.Fatalf("no mutation ever invalidated the edge cache: %+v", ctr)
	}
}

// TestRouterReadYourWritesUnderLag is the baseline acceptance test for
// the front tier (edge cache off).
func TestRouterReadYourWritesUnderLag(t *testing.T) {
	runRouterReadYourWritesUnderLag(t, false)
}

// TestRouterReadYourWritesUnderLagEdgeCache re-runs the acceptance
// harness with the edge cache on: hits, coalesced fills, and commit-floor
// invalidations race the same concurrent traffic, and read-your-writes
// must hold bit for bit.
func TestRouterReadYourWritesUnderLagEdgeCache(t *testing.T) {
	runRouterReadYourWritesUnderLag(t, true)
}
