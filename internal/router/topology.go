package router

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Shard is one backend replica set: a name (the unit the hash ring
// places) and the base URLs of its nodes. Which node is the primary is
// *not* configured — the router discovers roles from each node's
// /healthz, so a failover (promotion) changes routing without a
// topology edit, and a stale entry is healed by the 403-retry path.
type Shard struct {
	Name  string   `json:"name"`
	Nodes []string `json:"nodes"`
}

// Topology is the router's static view of the fleet, normally loaded
// from a JSON file:
//
//	{
//	  "virtualNodes": 128,
//	  "shards": [
//	    {"name": "s1", "nodes": ["http://10.0.0.1:8080", "http://10.0.0.2:8080"]},
//	    {"name": "s2", "nodes": ["http://10.0.1.1:8080", "http://10.0.1.2:8080"]}
//	  ]
//	}
//
// Nodes self-describe (the server's -advertise flag) so the URLs here
// only need to be reachable from the router; role discovery matches
// X-GT-Primary hints against both the listed URL and the advertised one.
type Topology struct {
	Shards       []Shard `json:"shards"`
	VirtualNodes int     `json:"virtualNodes,omitempty"`
}

// LoadTopology reads and validates a topology file.
func LoadTopology(path string) (*Topology, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("router: topology: %w", err)
	}
	var t Topology
	if err := json.Unmarshal(raw, &t); err != nil {
		return nil, fmt.Errorf("router: topology %s: %w", path, err)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("router: topology %s: %w", path, err)
	}
	return &t, nil
}

// Validate checks shard names are unique and non-empty, every shard has
// at least one node, and normalizes node URLs (trailing slashes would
// defeat URL matching against 403 hints).
func (t *Topology) Validate() error {
	if len(t.Shards) == 0 {
		return fmt.Errorf("no shards")
	}
	seen := make(map[string]bool, len(t.Shards))
	for i := range t.Shards {
		sh := &t.Shards[i]
		if sh.Name == "" {
			return fmt.Errorf("shard %d has no name", i)
		}
		if seen[sh.Name] {
			return fmt.Errorf("duplicate shard %q", sh.Name)
		}
		seen[sh.Name] = true
		if len(sh.Nodes) == 0 {
			return fmt.Errorf("shard %q has no nodes", sh.Name)
		}
		nodes := make(map[string]bool, len(sh.Nodes))
		for j, n := range sh.Nodes {
			n = strings.TrimRight(n, "/")
			if n == "" {
				return fmt.Errorf("shard %q node %d is empty", sh.Name, j)
			}
			if nodes[n] {
				return fmt.Errorf("shard %q lists node %q twice", sh.Name, n)
			}
			nodes[n] = true
			sh.Nodes[j] = n
		}
	}
	return nil
}

// nodeURLs flattens every node across every shard.
func (t *Topology) nodeURLs() []string {
	var urls []string
	for _, sh := range t.Shards {
		urls = append(urls, sh.Nodes...)
	}
	return urls
}
