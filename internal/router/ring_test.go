package router

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("city-%d", i)
	}
	return keys
}

// TestRingDeterministicAcrossRestarts: routing is a pure function of the
// topology — two rings built from the same shard list (in any order)
// agree on every key, which is what lets a router restart (or a second
// router instance) without moving a single city.
func TestRingDeterministicAcrossRestarts(t *testing.T) {
	a, err := NewRing([]string{"s0", "s1", "s2", "s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"s3", "s1", "s0", "s2"}, 0) // shuffled input
	if err != nil {
		t.Fatal(err)
	}
	owned := map[string]int{}
	for _, key := range ringKeys(2000) {
		sa, sb := a.Shard(key), b.Shard(key)
		if sa != sb {
			t.Fatalf("key %q: %q vs %q across ring rebuilds", key, sa, sb)
		}
		owned[sa]++
	}
	// Distribution sanity: every shard owns a meaningful slice (vnodes
	// smooth the arcs; an empty shard would mean the ring is broken).
	for _, s := range a.Shards() {
		if owned[s] < 2000/4/4 {
			t.Fatalf("shard %q owns only %d of 2000 keys: %v", s, owned[s], owned)
		}
	}
}

// TestRingStabilityOnMembershipChange pins the consistent-hashing
// contract: removing a shard reassigns exactly the keys it owned (every
// other key keeps its shard), and adding a shard steals only the keys
// that move *to* it — about K/n, bounded here at 2K/n.
func TestRingStabilityOnMembershipChange(t *testing.T) {
	shards := []string{"s0", "s1", "s2", "s3", "s4"}
	keys := ringKeys(2000)
	base, err := NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Removal: s2 leaves.
	smaller, err := NewRing([]string{"s0", "s1", "s3", "s4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range keys {
		was := base.Shard(key)
		now := smaller.Shard(key)
		if was != "s2" && now != was {
			t.Fatalf("key %q moved %q -> %q though its shard never left", key, was, now)
		}
		if was == "s2" && now == "s2" {
			t.Fatalf("key %q still routed to the removed shard", key)
		}
	}

	// Addition: s5 joins. Only keys that land on s5 may move, and no
	// more than ~K/n of them (2x slack for vnode unevenness).
	bigger, err := NewRing(append(append([]string{}, shards...), "s5"), 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, key := range keys {
		was := base.Shard(key)
		now := bigger.Shard(key)
		if now != was {
			if now != "s5" {
				t.Fatalf("key %q moved %q -> %q on an unrelated shard join", key, was, now)
			}
			moved++
		}
	}
	bound := 2 * len(keys) / (len(shards) + 1)
	if moved == 0 || moved > bound {
		t.Fatalf("shard join moved %d of %d keys (bound %d)", moved, len(keys), bound)
	}
}

// TestRingRejectsBadInput: empty and duplicate shard lists fail loudly.
func TestRingRejectsBadInput(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty shard list accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate shard accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Fatal("empty shard name accepted")
	}
}
