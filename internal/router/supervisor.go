package router

// Failover supervision: the router is the fleet's designated poller, so
// it is also the natural place to notice a dead primary and repair the
// shard. After every health pass (the afterPoll hook) the supervisor
// checks each shard for a writable node; a shard whose last known
// primary stays dark past the Options.Failover lease — with no other
// writable node appearing — has its freshest healthy follower promoted
// (POST /promote). The promotion bumps the shard's replication epoch on
// the new primary, and the router's next poll carries that term to
// every other node, fencing the deposed primary read-only the moment it
// resurfaces: it can never again accept a write the new primary would
// not have.
//
// One lease, one promoter: supervision runs at most once per poll pass
// under superMu, and the lease clock only starts from evidence — a node
// whose *last known* role was writable now failing polls. A shard that
// never identified a primary (cold boot, total partition of the router
// itself) is left alone; promoting on no evidence could mint a second
// primary, which is the exact disease this machinery exists to cure.

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"grouptravel/internal/replicate"
)

// supervise runs one failover pass over every shard. Called from the
// health feed's afterPoll hook (and so from Poll in tests).
func (rt *Router) supervise() {
	if rt.failover <= 0 {
		return
	}
	rt.superMu.Lock()
	defer rt.superMu.Unlock()
	tab := rt.table.Load()
	now := time.Now()
	for name, sh := range tab.shards {
		rt.superviseShard(name, sh, now)
	}
	// A reload can drop a shard mid-countdown; forget its clock.
	for name := range rt.downSince {
		if _, ok := tab.shards[name]; !ok {
			delete(rt.downSince, name)
		}
	}
}

// superviseShard applies the lease to one shard. Caller holds superMu.
func (rt *Router) superviseShard(name string, sh *Shard, now time.Time) {
	var deadWritable bool
	for _, n := range sh.Nodes {
		v := rt.health.view(n)
		writable := v.Role == "primary" || v.Role == "promoted"
		if writable && v.Err == "" {
			// The shard has a live primary; stop any countdown.
			delete(rt.downSince, name)
			return
		}
		if writable && v.Err != "" {
			deadWritable = true
		}
	}
	if !deadWritable {
		// No node was ever known writable (or the old primary already
		// re-polled as fenced/follower with nothing promoted yet — the
		// next pass sees the promoted node). No evidence, no countdown.
		delete(rt.downSince, name)
		return
	}
	since, ok := rt.downSince[name]
	if !ok {
		rt.downSince[name] = now
		return
	}
	if now.Sub(since) < rt.failover {
		return
	}
	// Lease expired: promote the freshest healthy follower — the one
	// whose applied positions sum highest, i.e. the least data loss the
	// shard can buy without the dead primary's unreplicated tail.
	best := ""
	bestSum := int64(-1)
	for _, n := range sh.Nodes {
		v := rt.health.view(n)
		if v.Err != "" || v.Role != "follower" {
			continue
		}
		var sum int64
		for _, seq := range v.AppliedSeq {
			sum += seq
		}
		if sum > bestSum {
			best, bestSum = n, sum
		}
	}
	if best == "" {
		return // nothing promotable; keep the clock, retry next pass
	}
	term, owner := rt.shardEpoch(sh)
	if err := rt.promote(best, term, owner); err != nil {
		return // node refused or died between polls; retry next pass
	}
	rt.ctr.autoPromotions.Inc()
	delete(rt.downSince, name)
	// Re-poll the new primary immediately so the very next routing
	// decision (and the next full pass's fencing headers) already see
	// its bumped epoch and writable role.
	rt.health.poll(best)
}

// promote asks one node to take over its shard, relaying the epoch the
// router knows so the node's bump is guaranteed to supersede it.
func (rt *Router) promote(node string, term int64, owner string) error {
	ctx, cancel := context.WithTimeout(context.Background(), healthPollTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node+"/promote", nil)
	if err != nil {
		return err
	}
	if term > 0 {
		req.Header.Set(replicate.HeaderEpoch, strconv.FormatInt(term, 10))
		if owner != "" {
			req.Header.Set(replicate.HeaderEpochPrimary, owner)
		}
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	drain(resp)
	if resp.StatusCode != http.StatusOK {
		return &promoteError{node: node, status: resp.Status}
	}
	return nil
}

type promoteError struct {
	node   string
	status string
}

func (e *promoteError) Error() string {
	return "router: promote " + e.node + ": " + e.status
}
