package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"grouptravel/internal/dataset"
	"grouptravel/internal/poi"
	"grouptravel/internal/server"
)

// The router is tested against real internal/server backends over real
// HTTP — primaries, log-shipping followers (driven manually so lag is
// deterministic), and the router in front — the same stack production
// runs, shrunk to httptest listeners.

var (
	rtOnce   sync.Once
	rtCities []*dataset.City
)

// rtTestCities generates the shared city fixtures once.
func rtTestCities(t testing.TB) []*dataset.City {
	t.Helper()
	rtOnce.Do(func() {
		for i, name := range []string{"Rhodes", "Smyrna"} {
			c, err := dataset.Generate(dataset.TestSpec(name, int64(90+i)))
			if err != nil {
				panic(err)
			}
			rtCities = append(rtCities, c)
		}
	})
	return rtCities
}

func cityKeyOf(c *dataset.City) string { return strings.ToLower(c.Name) }

// newPrimary boots a primary backend over the shared cities.
func newPrimary(t testing.TB) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.NewMultiCity(server.Options{Cities: rtTestCities(t), SnapshotDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// newFollower boots a manually-synced follower of the given primary.
func newFollower(t testing.TB, primaryURL string) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.NewMultiCity(server.Options{
		Cities: rtTestCities(t), SnapshotDir: t.TempDir(),
		Follow: primaryURL, FollowPoll: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// syncAll drains every city on a follower.
func syncAll(t testing.TB, f *server.Server) {
	t.Helper()
	if err := f.Follower().CatchUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// newRouter builds a manually-polled router over one shard per node set.
func newRouter(t testing.TB, opts Options) (*Router, *httptest.Server) {
	t.Helper()
	if opts.PollInterval == 0 {
		opts.PollInterval = -1 // tests poll deterministically
	}
	rt, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

func singleShard(nodes ...string) *Topology {
	return &Topology{Shards: []Shard{{Name: "s1", Nodes: nodes}}}
}

// groupBody builds a 3-member group-create body for a city's schema.
func groupBody(c *dataset.City) map[string]any {
	var members []map[string][]float64
	for m := 0; m < 3; m++ {
		member := map[string][]float64{}
		for _, cat := range poi.Categories {
			dim := c.Schema.Dim(cat)
			v := make([]float64, dim)
			for j := range v {
				v[j] = float64((j + m) % 6)
			}
			member[cat.String()] = v
		}
		members = append(members, member)
	}
	return map[string]any{"members": members}
}

// doJSON sends one request with optional headers, asserting the status
// and decoding the body; it returns the response headers.
func doJSON(t testing.TB, method, url string, body any, hdr map[string]string, wantStatus int, out any) http.Header {
	t.Helper()
	h, err := tryDoJSON(method, url, body, hdr, wantStatus, out)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func tryDoJSON(method, url string, body any, hdr map[string]string, wantStatus int, out any) (http.Header, error) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return nil, err
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		return nil, err
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != wantStatus {
		return resp.Header, fmt.Errorf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.Header, fmt.Errorf("decode %s: %w", url, err)
		}
	}
	return resp.Header, nil
}

type createdGroup struct {
	ID   int   `json:"id"`
	Size int   `json:"size"`
	Seq  int64 `json:"seq"`
}

// TestMutationRetriedAtPrimaryOn403: the router's primary view is stale
// (nothing polled, first listed node is a follower) — the follower's 403
// must be converted into a transparent retry at the node its
// X-GT-Primary hint names, and the client sees only the 201.
func TestMutationRetriedAtPrimaryOn403(t *testing.T) {
	_, pts := newPrimary(t)
	_, fts := newFollower(t, pts.URL)
	city := rtTestCities(t)[0]
	key := cityKeyOf(city)

	// Follower listed first and never polled: the router's first guess at
	// the primary is wrong by construction.
	rt, rts := newRouter(t, Options{Topology: singleShard(fts.URL, pts.URL)})

	var g createdGroup
	hdr := doJSON(t, "POST", rts.URL+"/cities/"+key+"/groups", groupBody(city), nil, http.StatusCreated, &g)
	if g.Seq <= 0 {
		t.Fatalf("mutation response carries no commit token: %+v", g)
	}
	if got := hdr.Get(HeaderSeq); got == "" {
		t.Fatal("X-GT-Seq missing from routed mutation response")
	}
	if got := hdr.Get(HeaderBackend); got != pts.URL {
		t.Fatalf("mutation served by %q, want primary %q", got, pts.URL)
	}
	if n := rt.ctr.mutationRetries403.Value(); n != 1 {
		t.Fatalf("mutationRetries403 = %d, want 1", n)
	}
}

// TestDenied403RelayedWithHintIntact: when the hinted primary is down,
// the follower's 403 must reach the client unmodified — X-GT-Primary
// header included — so the client can act on the hint itself.
func TestDenied403RelayedWithHintIntact(t *testing.T) {
	_, pts := newPrimary(t)
	_, fts := newFollower(t, pts.URL)
	city := rtTestCities(t)[0]
	key := cityKeyOf(city)

	_, rts := newRouter(t, Options{Topology: singleShard(fts.URL, pts.URL)})
	pts.Close() // the primary dies before the mutation arrives

	hdr, err := tryDoJSON("POST", rts.URL+"/cities/"+key+"/groups", groupBody(city), nil, http.StatusForbidden, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := hdr.Get(HeaderPrimary); got != pts.URL {
		t.Fatalf("relayed 403 lost its X-GT-Primary hint: %q, want %q", got, pts.URL)
	}
}

// TestSessionPinningRoutesAroundLag is the read-your-writes core: with a
// lagging follower, a session's read-back goes to the primary; once the
// follower catches up (and the health feed sees it), the same session's
// reads move to the follower. A token-less read meanwhile gets follower
// fan-out — including its honest 404 for an entity the follower has not
// applied yet.
func TestSessionPinningRoutesAroundLag(t *testing.T) {
	_, pts := newPrimary(t)
	fsrv, fts := newFollower(t, pts.URL)
	city := rtTestCities(t)[0]
	key := cityKeyOf(city)

	rt, rts := newRouter(t, Options{Topology: singleShard(pts.URL, fts.URL), ShedLag: -1})
	rt.Poll() // discover roles while both are empty

	sid := map[string]string{HeaderSession: "alice"}
	var g createdGroup
	doJSON(t, "POST", rts.URL+"/cities/"+key+"/groups", groupBody(city), sid, http.StatusCreated, &g)

	// The follower has not synced: a pinned read must be redirected to
	// the primary and see the write.
	var got createdGroup
	hdr := doJSON(t, "GET", fmt.Sprintf("%s/cities/%s/groups/%d", rts.URL, key, g.ID), nil, sid, http.StatusOK, &got)
	if got.Size != 3 {
		t.Fatalf("pinned read-back = %+v", got)
	}
	if backend := hdr.Get(HeaderBackend); backend != pts.URL {
		t.Fatalf("pinned read served by %q while follower lags, want primary %q", backend, pts.URL)
	}

	// A token-less read of the same id fans out to the follower and gets
	// the honest 404 — eventual consistency is the token-less contract.
	rt.Poll() // follower is healthy, role known, still at seq 0
	hdr, err := tryDoJSON("GET", fmt.Sprintf("%s/cities/%s/groups/%d", rts.URL, key, g.ID), nil, nil, http.StatusNotFound, nil)
	if err != nil {
		t.Fatal(err)
	}
	if backend := hdr.Get(HeaderBackend); backend != fts.URL {
		t.Fatalf("token-less read served by %q, want follower %q", backend, fts.URL)
	}

	// Follower catches up, the feed notices, and the pinned session's
	// reads move off the primary.
	syncAll(t, fsrv)
	rt.Poll()
	hdr = doJSON(t, "GET", fmt.Sprintf("%s/cities/%s/groups/%d", rts.URL, key, g.ID), nil, sid, http.StatusOK, &got)
	if backend := hdr.Get(HeaderBackend); backend != fts.URL {
		t.Fatalf("caught-up pinned read served by %q, want follower %q", backend, fts.URL)
	}
	if n := rt.ctr.readsPinned.Value(); n < 2 {
		t.Fatalf("readsPinned = %d, want >= 2", n)
	}
	if rt.ctr.readsPrimary.Value() == 0 || rt.ctr.readsFollower.Value() == 0 {
		t.Fatalf("counters did not see both roles: primary=%d follower=%d",
			rt.ctr.readsPrimary.Value(), rt.ctr.readsFollower.Value())
	}
}

// TestLagShedding: a follower lagging beyond ShedLag is shed from
// token-less reads — they go to the primary instead of a deeply stale
// replica.
func TestLagShedding(t *testing.T) {
	_, pts := newPrimary(t)
	_, fts := newFollower(t, pts.URL)
	city := rtTestCities(t)[0]
	key := cityKeyOf(city)

	rt, rts := newRouter(t, Options{Topology: singleShard(pts.URL, fts.URL), ShedLag: 1})
	rt.Poll()

	// Two un-synced mutations: the follower now lags by 2 > ShedLag 1.
	var g createdGroup
	doJSON(t, "POST", rts.URL+"/cities/"+key+"/groups", groupBody(city), nil, http.StatusCreated, &g)
	doJSON(t, "POST", rts.URL+"/cities/"+key+"/groups", groupBody(city), nil, http.StatusCreated, nil)
	rt.Poll()

	hdr := doJSON(t, "GET", fmt.Sprintf("%s/cities/%s/groups/%d", rts.URL, key, g.ID), nil, nil, http.StatusOK, nil)
	if backend := hdr.Get(HeaderBackend); backend != pts.URL {
		t.Fatalf("token-less read served by shed follower %q", backend)
	}
	if rt.ctr.followersShed.Value() == 0 {
		t.Fatal("followersShed counter never moved")
	}
}

// TestReadFailoverOnDeadFollower: a follower dying between health polls
// costs a failover, not an error — the read lands on the next candidate.
func TestReadFailoverOnDeadFollower(t *testing.T) {
	_, pts := newPrimary(t)
	fsrv, fts := newFollower(t, pts.URL)
	city := rtTestCities(t)[0]
	key := cityKeyOf(city)

	rt, rts := newRouter(t, Options{Topology: singleShard(pts.URL, fts.URL), ShedLag: -1})
	var g createdGroup
	doJSON(t, "POST", rts.URL+"/cities/"+key+"/groups", groupBody(city), nil, http.StatusCreated, &g)
	syncAll(t, fsrv)
	rt.Poll()

	// The follower dies right after a healthy poll: the router still
	// believes in it.
	fts.Close()
	hdr := doJSON(t, "GET", fmt.Sprintf("%s/cities/%s/groups/%d", rts.URL, key, g.ID), nil, nil, http.StatusOK, nil)
	if backend := hdr.Get(HeaderBackend); backend != pts.URL {
		t.Fatalf("read after follower death served by %q, want primary fallback", backend)
	}
	if rt.ctr.readFailovers.Value() == 0 {
		t.Fatal("readFailovers counter never moved")
	}
}

// TestMutationNotRetriedAfterAmbiguousFailure: a mutation whose
// connection dies mid-flight (after the request may have reached the
// backend) must NOT be re-sent anywhere — the backend may have
// committed, and a silent double-apply is worse than a 502. Only dial
// failures (the request provably never left) may fail over.
func TestMutationNotRetriedAfterAmbiguousFailure(t *testing.T) {
	// First node accepts the connection, then kills it mid-request.
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
	}))
	t.Cleanup(broken.Close)
	// Second node counts what reaches it; anything > 0 is a double-send.
	var reached int32
	counter := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		reached++
		w.WriteHeader(http.StatusCreated)
	}))
	t.Cleanup(counter.Close)

	_, rts := newRouter(t, Options{Topology: singleShard(broken.URL, counter.URL)})
	if _, err := tryDoJSON("POST", rts.URL+"/cities/ville/groups", map[string]any{}, nil, http.StatusBadGateway, nil); err != nil {
		t.Fatal(err)
	}
	if reached != 0 {
		t.Fatalf("ambiguous mutation failure was retried: second node saw %d requests", reached)
	}
}

// TestMutationFailsOverToPromotedNode: the primary dies and a follower
// late in the node list is promoted, all between health polls. The
// mutation must walk past the corpse AND past an unpromoted follower
// (whose 403 hints at the dead primary) to reach the promoted node —
// the shard has a writable node, so the client must not see the 403.
func TestMutationFailsOverToPromotedNode(t *testing.T) {
	_, pts := newPrimary(t)
	_, f1ts := newFollower(t, pts.URL)
	f2srv, f2ts := newFollower(t, pts.URL)
	city := rtTestCities(t)[0]
	key := cityKeyOf(city)

	rt, rts := newRouter(t, Options{Topology: singleShard(pts.URL, f1ts.URL, f2ts.URL)})
	rt.Poll() // stale view: pts primary, f1/f2 followers

	if err := f2srv.Promote(); err != nil {
		t.Fatal(err)
	}
	pts.Close()

	var g createdGroup
	hdr := doJSON(t, "POST", rts.URL+"/cities/"+key+"/groups", groupBody(city), nil, http.StatusCreated, &g)
	if backend := hdr.Get(HeaderBackend); backend != f2ts.URL {
		t.Fatalf("mutation served by %q, want promoted node %q", backend, f2ts.URL)
	}
	if rt.ctr.mutationFailovers.Value() == 0 {
		t.Fatal("mutationFailovers never moved despite the dead primary")
	}
}

// TestCitiesAggregation: the router's GET /cities merges each shard's
// rows, keeps only the keys the ring routes to that shard, and reports
// every key exactly once with its shard annotation.
func TestCitiesAggregation(t *testing.T) {
	// Two single-node shards over the same city set: both backends *can*
	// serve every city, the ring decides who *does*.
	_, ts1 := newPrimary(t)
	_, ts2 := newPrimary(t)
	topo := &Topology{Shards: []Shard{
		{Name: "s1", Nodes: []string{ts1.URL}},
		{Name: "s2", Nodes: []string{ts2.URL}},
	}}
	rt, rts := newRouter(t, Options{Topology: topo})
	rt.Poll()

	var rows []routedCity
	doJSON(t, "GET", rts.URL+"/cities", nil, nil, http.StatusOK, &rows)
	if len(rows) != len(rtTestCities(t)) {
		t.Fatalf("aggregated %d rows, want %d: %+v", len(rows), len(rtTestCities(t)), rows)
	}
	seen := map[string]bool{}
	for _, row := range rows {
		if seen[row.Key] {
			t.Fatalf("key %q listed twice", row.Key)
		}
		seen[row.Key] = true
		if want := rt.Ring().Shard(row.Key); row.Shard != want {
			t.Fatalf("key %q annotated shard %q, ring says %q", row.Key, row.Shard, want)
		}
	}
}

// TestWireHeadersMatchServer pins the cross-tier protocol: the router
// deliberately redeclares the commit-token headers (importing the whole
// serving stack for three strings would couple the tiers), so this test
// is what keeps the two declarations from drifting apart silently.
func TestWireHeadersMatchServer(t *testing.T) {
	if HeaderSeq != server.HeaderSeq || HeaderCity != server.HeaderCity || HeaderPrimary != server.HeaderPrimary {
		t.Fatalf("router wire headers drifted from internal/server: %q/%q/%q vs %q/%q/%q",
			HeaderSeq, HeaderCity, HeaderPrimary, server.HeaderSeq, server.HeaderCity, server.HeaderPrimary)
	}
	if HeaderAppliedSeq != server.HeaderAppliedSeq {
		t.Fatalf("applied-seq header drifted: router %q vs server %q", HeaderAppliedSeq, server.HeaderAppliedSeq)
	}
}

// TestPinnedReadNeverServedStale: when the primary becomes unreachable,
// a pinned read whose floor no follower reaches must FAIL — an honest
// 502/503 — never silently serve pre-write state from a lagging replica.
// Two shapes of the hazard:
//
//  1. The discovered primary dies: discovery keeps preferring the
//     stale-but-writable view over a known follower, so the pinned read
//     exhausts its candidates against the corpse and 502s.
//  2. Discovery's only possible guess IS a known follower (follower-only
//     shard): a pinned read whose floor it cannot prove drops it from
//     the candidate list entirely and 503s.
func TestPinnedReadNeverServedStale(t *testing.T) {
	_, pts := newPrimary(t)
	_, f1ts := newFollower(t, pts.URL)
	_, f2ts := newFollower(t, pts.URL)
	city := rtTestCities(t)[0]
	key := cityKeyOf(city)

	// Shape 1: primary identified, then dead.
	rt1, rts1 := newRouter(t, Options{Topology: singleShard(f1ts.URL, pts.URL), ShedLag: -1})
	rt1.Poll()
	sid := map[string]string{HeaderSession: "carol"}
	var g createdGroup
	doJSON(t, "POST", rts1.URL+"/cities/"+key+"/groups", groupBody(city), sid, http.StatusCreated, &g)
	pts.Close()
	rt1.Poll()
	if _, err := tryDoJSON("GET", fmt.Sprintf("%s/cities/%s/groups/%d", rts1.URL, key, g.ID), nil, sid, http.StatusBadGateway, nil); err != nil {
		t.Fatal(err)
	}

	// Shape 2: a shard of only followers — the fallback guess is a node
	// known to be a follower, which provably cannot satisfy the floor.
	rt2, rts2 := newRouter(t, Options{Topology: singleShard(f2ts.URL), ShedLag: -1})
	rt2.Poll()
	floor := map[string]string{HeaderMinSeq: "99"}
	if _, err := tryDoJSON("GET", fmt.Sprintf("%s/cities/%s/groups/%d", rts2.URL, key, g.ID), nil, floor, http.StatusServiceUnavailable, nil); err != nil {
		t.Fatal(err)
	}
	// The same shard still serves token-less reads from the follower.
	hdr, err := tryDoJSON("GET", rts2.URL+"/cities/"+key, nil, nil, http.StatusOK, nil)
	if err != nil {
		t.Fatal(err)
	}
	if backend := hdr.Get(HeaderBackend); backend != f2ts.URL {
		t.Fatalf("token-less read served by %q, want follower %q", backend, f2ts.URL)
	}
}

// TestTopologyValidation covers the file-format guard rails.
func TestTopologyValidation(t *testing.T) {
	bad := []Topology{
		{},
		{Shards: []Shard{{Name: "", Nodes: []string{"http://a"}}}},
		{Shards: []Shard{{Name: "a", Nodes: nil}}},
		{Shards: []Shard{{Name: "a", Nodes: []string{"http://a"}}, {Name: "a", Nodes: []string{"http://b"}}}},
		{Shards: []Shard{{Name: "a", Nodes: []string{"http://a", "http://a/"}}}},
	}
	for i, topo := range bad {
		if err := topo.Validate(); err == nil {
			t.Fatalf("bad topology %d accepted", i)
		}
	}
	good := Topology{Shards: []Shard{{Name: "a", Nodes: []string{"http://a/"}}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Shards[0].Nodes[0] != "http://a" {
		t.Fatalf("node URL not normalized: %q", good.Shards[0].Nodes[0])
	}
}
