package router

import (
	"container/list"
	"sync"
)

// sessionTable is the router-side read-your-writes memory: for every
// session id a client presents (X-GT-Session, any opaque string the
// client chooses), the highest committed sequence its mutations reached
// per city. A later read with the same id is only routed to replicas at
// or past that sequence — the client never observes pre-write state —
// without the client having to track tokens itself (clients that prefer
// to can send X-GT-Min-Seq explicitly and skip sessions entirely).
//
// The table is bounded: least-recently-touched sessions fall off beyond
// cap. Eviction is safe, not silent data loss — a forgotten session
// degrades to token-less routing, which at worst serves slightly stale
// reads to a client that has been idle longest.
type sessionTable struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	lru *list.List // front = most recently touched
}

type sessionEntry struct {
	id   string
	seqs map[string]int64 // city key -> min acceptable sequence
}

func newSessionTable(cap int) *sessionTable {
	return &sessionTable{cap: cap, m: make(map[string]*list.Element), lru: list.New()}
}

// note records a committed mutation: session id wrote city at seq.
// Sequences only ratchet up — an out-of-order note (two racing mutations
// finishing in reverse) keeps the higher floor.
func (t *sessionTable) note(id, city string, seq int64) {
	if id == "" || seq <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.m[id]
	if !ok {
		el = t.lru.PushFront(&sessionEntry{id: id, seqs: make(map[string]int64, 1)})
		t.m[id] = el
		for t.lru.Len() > t.cap {
			oldest := t.lru.Back()
			t.lru.Remove(oldest)
			delete(t.m, oldest.Value.(*sessionEntry).id)
		}
	} else {
		t.lru.MoveToFront(el)
	}
	e := el.Value.(*sessionEntry)
	if seq > e.seqs[city] {
		e.seqs[city] = seq
	}
}

// minSeq returns the session's read floor for a city (0 when unknown),
// refreshing the session's LRU position.
func (t *sessionTable) minSeq(id, city string) int64 {
	if id == "" {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.m[id]
	if !ok {
		return 0
	}
	t.lru.MoveToFront(el)
	return el.Value.(*sessionEntry).seqs[city]
}

func (t *sessionTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lru.Len()
}
