package router

// Telemetry wiring for the front tier. The routing counters that /healthz
// has always reported are registry-backed now — /metrics renders the same
// values — plus per-node health-poll latency histograms, node-up gauges,
// and the per-class HTTP metrics the shared middleware records.

import (
	"grouptravel/internal/telemetry"
)

// newCounters registers the routing counters. The names mirror the
// countersJSON fields /healthz reports; both read the same values.
func newCounters(reg *telemetry.Registry) counters {
	c := func(name, help string) *telemetry.Counter { return reg.Counter(name, help) }
	return counters{
		readsTotal:         c("gt_router_reads_total", "GETs routed."),
		readsPrimary:       c("gt_router_reads_primary_total", "Reads served by a shard's primary."),
		readsFollower:      c("gt_router_reads_follower_total", "Reads served by a follower replica."),
		readsPinned:        c("gt_router_reads_pinned_total", "Reads carrying a read-your-writes floor."),
		readFailovers:      c("gt_router_read_failovers_total", "Read candidates skipped after a failure."),
		followersShed:      c("gt_router_followers_shed_total", "Followers shed from token-less reads for lag."),
		mutations:          c("gt_router_mutations_total", "POSTs routed."),
		mutationRetries403: c("gt_router_mutation_retries_403_total", "Mutations healed by chasing a 403's primary hint."),
		mutationFailovers:  c("gt_router_mutation_failovers_total", "Mutation attempts failed over to another node."),
	}
}

// instrument attaches per-node scrape instruments to the health feed:
// poll latency histograms and an up/down gauge per backend node. Node
// URLs are fixed at construction, so the maps are read-only afterwards
// and the poll path does one lookup plus nil-safe atomic ops.
func (hf *healthFeed) instrument(reg *telemetry.Registry) {
	hf.pollLat = make(map[string]*telemetry.Histogram, len(hf.urls))
	hf.nodeUp = make(map[string]*telemetry.Gauge, len(hf.urls))
	for _, u := range hf.urls {
		hf.pollLat[u] = reg.Histogram("gt_router_health_poll_seconds",
			"Health-poll round trip per backend node.", nil, "node", u)
		hf.nodeUp[u] = reg.Gauge("gt_router_node_up",
			"1 when the node's last health poll succeeded.", "node", u)
	}
}

// Metrics exposes the router's telemetry registry (the /metrics source).
func (rt *Router) Metrics() *telemetry.Registry { return rt.metrics }

// HTTPMetrics exposes the per-class HTTP instruments (SLO assertions).
func (rt *Router) HTTPMetrics() *telemetry.HTTPMetrics { return rt.httpM }
