package router

// Telemetry wiring for the front tier. The routing counters that /healthz
// has always reported are registry-backed now — /metrics renders the same
// values — plus per-node health-poll latency histograms, node-up gauges,
// and the per-class HTTP metrics the shared middleware records.

import (
	"grouptravel/internal/telemetry"
)

// newCounters registers the routing counters. The names mirror the
// countersJSON fields /healthz reports; both read the same values.
func newCounters(reg *telemetry.Registry) counters {
	c := func(name, help string) *telemetry.Counter { return reg.Counter(name, help) }
	return counters{
		readsTotal:         c("gt_router_reads_total", "GETs routed."),
		readsPrimary:       c("gt_router_reads_primary_total", "Reads served by a shard's primary."),
		readsFollower:      c("gt_router_reads_follower_total", "Reads served by a follower replica."),
		readsPinned:        c("gt_router_reads_pinned_total", "Reads carrying a read-your-writes floor."),
		readFailovers:      c("gt_router_read_failovers_total", "Read candidates skipped after a failure."),
		followersShed:      c("gt_router_followers_shed_total", "Followers shed from token-less reads for lag."),
		mutations:          c("gt_router_mutations_total", "POSTs routed."),
		mutationRetries403: c("gt_router_mutation_retries_403_total", "Mutations healed by chasing a 403's primary hint."),
		mutationFailovers:  c("gt_router_mutation_failovers_total", "Mutation attempts failed over to another node."),
		autoPromotions:     c("gt_router_auto_promotions_total", "Followers auto-promoted after a primary lease expired."),
		edgeHits:           c("gt_router_edgecache_hits_total", "Routed reads served from the edge cache, zero proxy hops."),
		edgeMisses:         c("gt_router_edgecache_misses_total", "Edge-cache lookups that missed or failed freshness validation."),
		edgeCoalesced:      c("gt_router_edgecache_coalesced_total", "Concurrent misses collapsed into another request's fill."),
		edgeInvalidations:  c("gt_router_edgecache_invalidations_total", "City commit floors raised (or cities purged) by proxied mutations."),
	}
}

// instrument attaches per-node scrape instruments to the health feed:
// poll latency histograms and an up/down gauge per backend node. The
// registry is kept so setNodes (topology reload) can instrument
// backends added later; registration is idempotent per (name, labels),
// so a node that leaves and returns reuses its series.
func (hf *healthFeed) instrument(reg *telemetry.Registry) {
	hf.mu.Lock()
	defer hf.mu.Unlock()
	hf.reg = reg
	hf.pollLat = make(map[string]*telemetry.Histogram, len(hf.urls))
	hf.nodeUp = make(map[string]*telemetry.Gauge, len(hf.urls))
	for _, u := range hf.urls {
		hf.instrumentLocked(u)
	}
}

// instrumentLocked registers (or re-attaches) one node's instruments;
// no-op before instrument has supplied the registry. Caller holds hf.mu.
func (hf *healthFeed) instrumentLocked(u string) {
	if hf.reg == nil || hf.pollLat[u] != nil {
		return
	}
	hf.pollLat[u] = hf.reg.Histogram("gt_router_health_poll_seconds",
		"Health-poll round trip per backend node.", nil, "node", u)
	hf.nodeUp[u] = hf.reg.Gauge("gt_router_node_up",
		"1 when the node's last health poll succeeded.", "node", u)
}

// Metrics exposes the router's telemetry registry (the /metrics source).
func (rt *Router) Metrics() *telemetry.Registry { return rt.metrics }

// HTTPMetrics exposes the per-class HTTP instruments (SLO assertions).
func (rt *Router) HTTPMetrics() *telemetry.HTTPMetrics { return rt.httpM }
