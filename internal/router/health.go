package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"grouptravel/internal/telemetry"
)

// healthPollTimeout bounds one node's health poll regardless of the
// transport client's own timeout. The feed's pollAll waits for every
// node, so a black-holed node (accepts, never answers) must not be able
// to hold the whole fleet's views stale — promotion discovery and lag
// shedding run on this data.
const healthPollTimeout = 3 * time.Second

// NodeView is the router's cached picture of one backend node — the
// replica-health feed routing decisions read. It is refreshed by polling
// the node's /healthz (role, advertised URL, upstream) and /cities
// (per-city appliedSeq + walBytes, one cheap call), never by the request
// path: a routed read must not block on a health round trip.
type NodeView struct {
	URL       string `json:"url"`
	Role      string `json:"role,omitempty"`      // primary | follower | promoted; "" never polled
	Advertise string `json:"advertise,omitempty"` // the URL the node self-describes as
	Primary   string `json:"primary,omitempty"`   // the upstream the node reports following
	// AppliedSeq is the node's last committed/applied WAL sequence per
	// city — what session tokens are compared against. WALBytes is the
	// per-city bytes-since-compaction backpressure gauge.
	AppliedSeq map[string]int64 `json:"appliedSeq,omitempty"`
	WALBytes   map[string]int64 `json:"walBytes,omitempty"`
	// Err is the last poll's failure; a node with Err set keeps its last
	// known sequences but is ineligible for routing until a poll succeeds.
	Err      string    `json:"error,omitempty"`
	PolledAt time.Time `json:"polledAt,omitempty"`
}

// nodeHealthz is the slice of a backend's /healthz the router decodes.
type nodeHealthz struct {
	Role      string `json:"role"`
	Advertise string `json:"advertise"`
	Primary   string `json:"primary"`
}

// nodeCityRow is one row of a backend's GET /cities.
type nodeCityRow struct {
	Key        string `json:"key"`
	Loaded     bool   `json:"loaded"`
	WALBytes   int64  `json:"walBytes"`
	AppliedSeq int64  `json:"appliedSeq"`
}

// healthFeed polls every backend node on an interval and serves the
// cached views. Polls for different nodes run concurrently; reads take a
// short RWMutex critical section and copy, so the request path never
// holds the lock across I/O.
type healthFeed struct {
	client   *http.Client
	urls     []string
	interval time.Duration

	// Scrape instruments, attached once by instrument (telemetry.go) and
	// read-only afterwards; nil maps (uninstrumented feeds in tests) index
	// to nil metrics, whose methods are no-ops.
	pollLat map[string]*telemetry.Histogram
	nodeUp  map[string]*telemetry.Gauge

	mu    sync.RWMutex
	views map[string]*NodeView

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      sync.WaitGroup
}

func newHealthFeed(urls []string, client *http.Client, interval time.Duration) *healthFeed {
	hf := &healthFeed{
		client:   client,
		urls:     append([]string(nil), urls...),
		interval: interval,
		views:    make(map[string]*NodeView, len(urls)),
		stop:     make(chan struct{}),
	}
	for _, u := range hf.urls {
		hf.views[u] = &NodeView{URL: u}
	}
	return hf
}

// start launches the background poller (idempotent); no-op when the
// interval is non-positive — the embedder drives pollAll itself (tests).
func (hf *healthFeed) start() {
	if hf.interval <= 0 {
		return
	}
	hf.startOnce.Do(func() {
		hf.done.Add(1)
		go func() {
			defer hf.done.Done()
			for {
				select {
				case <-hf.stop:
					return
				case <-time.After(hf.interval):
					hf.pollAll()
				}
			}
		}()
	})
}

func (hf *healthFeed) stopPolling() {
	hf.stopOnce.Do(func() { close(hf.stop) })
	hf.done.Wait()
}

// pollAll refreshes every node once, concurrently, and returns when all
// polls finished — the synchronous pass tests and boot warm-up use.
func (hf *healthFeed) pollAll() {
	var wg sync.WaitGroup
	for _, u := range hf.urls {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			hf.poll(u)
		}(u)
	}
	wg.Wait()
}

// poll refreshes one node: /healthz for identity, /cities for per-city
// positions. A failure marks the view unhealthy but keeps the last known
// sequences — they are still the best lower bound the router has.
func (hf *healthFeed) poll(url string) {
	start := time.Now()
	var h nodeHealthz
	err := hf.getJSON(url+"/healthz", &h)
	var rows []nodeCityRow
	if err == nil {
		err = hf.getJSON(url+"/cities", &rows)
	}
	hf.pollLat[url].ObserveSince(start)
	if err != nil {
		hf.nodeUp[url].Set(0)
	} else {
		hf.nodeUp[url].Set(1)
	}
	hf.mu.Lock()
	defer hf.mu.Unlock()
	v := hf.views[url]
	if v == nil {
		return
	}
	v.PolledAt = time.Now()
	if err != nil {
		v.Err = err.Error()
		return
	}
	v.Err = ""
	v.Role, v.Advertise, v.Primary = h.Role, h.Advertise, h.Primary
	applied := make(map[string]int64, len(rows))
	walBytes := make(map[string]int64, len(rows))
	for _, row := range rows {
		applied[row.Key] = row.AppliedSeq
		if row.WALBytes > 0 {
			walBytes[row.Key] = row.WALBytes
		}
	}
	v.AppliedSeq, v.WALBytes = applied, walBytes
}

func (hf *healthFeed) getJSON(url string, out any) error {
	ctx, cancel := context.WithTimeout(context.Background(), healthPollTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := hf.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Error bodies read into a stack scratch array: a down node is
		// polled every interval, and the io.ReadAll garbage per failed
		// poll adds up across a long outage.
		var scratch [256]byte
		n, _ := io.ReadFull(resp.Body, scratch[:])
		return fmt.Errorf("%s: %s: %s", url, resp.Status, scratch[:n])
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// view returns a copy of one node's cached state (maps shared read-only:
// poll replaces them wholesale, never mutates in place).
func (hf *healthFeed) view(url string) NodeView {
	hf.mu.RLock()
	defer hf.mu.RUnlock()
	if v, ok := hf.views[url]; ok {
		return *v
	}
	return NodeView{URL: url}
}
