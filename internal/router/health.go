package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"grouptravel/internal/replicate"
	"grouptravel/internal/telemetry"
)

// healthPollTimeout bounds one node's health poll regardless of the
// transport client's own timeout. The feed's pollAll waits for every
// node, so a black-holed node (accepts, never answers) must not be able
// to hold the whole fleet's views stale — promotion discovery and lag
// shedding run on this data.
const healthPollTimeout = 3 * time.Second

// NodeView is the router's cached picture of one backend node — the
// replica-health feed routing decisions read. It is refreshed by polling
// the node's /healthz (role, advertised URL, upstream) and /cities
// (per-city appliedSeq + walBytes, one cheap call), never by the request
// path: a routed read must not block on a health round trip.
type NodeView struct {
	URL       string `json:"url"`
	Role      string `json:"role,omitempty"`      // primary | follower | promoted | fenced; "" never polled
	Advertise string `json:"advertise,omitempty"` // the URL the node self-describes as
	Primary   string `json:"primary,omitempty"`   // the upstream the node reports following
	// Epoch/EpochPrimary are the replication term the node last reported
	// (X-GT-Epoch response headers, stamped on every backend response).
	// The router's per-shard maximum is the fencing epoch it relays on
	// every proxied request and health poll — how a deposed primary
	// learns it lost, even if it never hears from the new one directly.
	Epoch        int64  `json:"epoch,omitempty"`
	EpochPrimary string `json:"epochPrimary,omitempty"`
	// AppliedSeq is the node's last committed/applied WAL sequence per
	// city — what session tokens are compared against. WALBytes is the
	// per-city bytes-since-compaction backpressure gauge.
	AppliedSeq map[string]int64 `json:"appliedSeq,omitempty"`
	WALBytes   map[string]int64 `json:"walBytes,omitempty"`
	// Err is the last poll's failure; a node with Err set keeps its last
	// known sequences but is ineligible for routing until a poll succeeds.
	Err      string    `json:"error,omitempty"`
	PolledAt time.Time `json:"polledAt,omitempty"`
}

// nodeHealthz is the slice of a backend's /healthz the router decodes.
type nodeHealthz struct {
	Role      string `json:"role"`
	Advertise string `json:"advertise"`
	Primary   string `json:"primary"`
}

// nodeCityRow is one row of a backend's GET /cities.
type nodeCityRow struct {
	Key        string `json:"key"`
	Loaded     bool   `json:"loaded"`
	WALBytes   int64  `json:"walBytes"`
	AppliedSeq int64  `json:"appliedSeq"`
}

// healthFeed polls every backend node on an interval and serves the
// cached views. Polls for different nodes run concurrently; reads take a
// short RWMutex critical section and copy, so the request path never
// holds the lock across I/O. The node set is mutable (setNodes) so an
// online topology reload swaps backends without restarting the feed.
type healthFeed struct {
	client   *http.Client
	interval time.Duration

	// epochFor resolves the fencing epoch the feed should stamp on a
	// poll of the given node (the router wires it to the node's shard
	// epoch). Called outside the feed's lock. Nil: no stamping.
	epochFor func(url string) (int64, string)
	// afterPoll runs after every completed pollAll pass — the router
	// hangs its failover supervisor here so lease checks see data
	// exactly one poll old, never staler.
	afterPoll func()

	mu    sync.RWMutex
	urls  []string
	views map[string]*NodeView
	// Scrape instruments, attached by instrument (telemetry.go) and
	// extended under mu when setNodes adds backends; nil maps
	// (uninstrumented feeds in tests) index to nil metrics, whose
	// methods are no-ops.
	reg     *telemetry.Registry
	pollLat map[string]*telemetry.Histogram
	nodeUp  map[string]*telemetry.Gauge

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      sync.WaitGroup
}

func newHealthFeed(urls []string, client *http.Client, interval time.Duration) *healthFeed {
	hf := &healthFeed{
		client:   client,
		interval: interval,
		views:    make(map[string]*NodeView, len(urls)),
		stop:     make(chan struct{}),
	}
	hf.setNodes(urls)
	return hf
}

// setNodes replaces the polled node set: views of surviving nodes are
// kept (their sequences stay the router's best lower bound across a
// reload), new nodes start unpolled, and removed nodes drop from the
// feed — their up-gauge zeroed so dashboards don't show a ghost as up.
func (hf *healthFeed) setNodes(urls []string) {
	hf.mu.Lock()
	defer hf.mu.Unlock()
	next := make(map[string]*NodeView, len(urls))
	dedup := make([]string, 0, len(urls))
	for _, u := range urls {
		if _, ok := next[u]; ok {
			continue
		}
		dedup = append(dedup, u)
		if v, ok := hf.views[u]; ok {
			next[u] = v
		} else {
			next[u] = &NodeView{URL: u}
		}
		hf.instrumentLocked(u)
	}
	for u := range hf.views {
		if _, ok := next[u]; !ok && hf.nodeUp[u] != nil {
			hf.nodeUp[u].Set(0)
		}
	}
	hf.urls, hf.views = dedup, next
}

// start launches the background poller (idempotent); no-op when the
// interval is non-positive — the embedder drives pollAll itself (tests).
func (hf *healthFeed) start() {
	if hf.interval <= 0 {
		return
	}
	hf.startOnce.Do(func() {
		hf.done.Add(1)
		go func() {
			defer hf.done.Done()
			for {
				select {
				case <-hf.stop:
					return
				case <-time.After(hf.interval):
					hf.pollAll()
				}
			}
		}()
	})
}

func (hf *healthFeed) stopPolling() {
	hf.stopOnce.Do(func() { close(hf.stop) })
	hf.done.Wait()
}

// pollAll refreshes every node once, concurrently, and returns when all
// polls finished — the synchronous pass tests and boot warm-up use.
// The afterPoll hook (failover supervision) runs once per pass, after
// every view is fresh.
func (hf *healthFeed) pollAll() {
	hf.mu.RLock()
	urls := append([]string(nil), hf.urls...)
	hf.mu.RUnlock()
	var wg sync.WaitGroup
	for _, u := range urls {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			hf.poll(u)
		}(u)
	}
	wg.Wait()
	if hf.afterPoll != nil {
		hf.afterPoll()
	}
}

// poll refreshes one node: /healthz for identity, /cities for per-city
// positions. The poll carries the shard's fencing epoch out (request
// headers) and brings the node's own term back (response headers) — a
// deposed primary is fenced by its very next health poll, even with no
// client traffic relayed at it. A failure marks the view unhealthy but
// keeps the last known sequences — they are still the best lower bound
// the router has.
func (hf *healthFeed) poll(url string) {
	start := time.Now()
	var term int64
	var owner string
	if hf.epochFor != nil {
		term, owner = hf.epochFor(url)
	}
	var h nodeHealthz
	respTerm, respOwner, err := hf.getJSON(url+"/healthz", &h, term, owner)
	var rows []nodeCityRow
	if err == nil {
		_, _, err = hf.getJSON(url+"/cities", &rows, term, owner)
	}
	lat, up := hf.instruments(url)
	lat.ObserveSince(start)
	if err != nil {
		up.Set(0)
	} else {
		up.Set(1)
	}
	hf.mu.Lock()
	defer hf.mu.Unlock()
	v := hf.views[url]
	if v == nil {
		return
	}
	v.PolledAt = time.Now()
	if err != nil {
		v.Err = err.Error()
		return
	}
	v.Err = ""
	v.Role, v.Advertise, v.Primary = h.Role, h.Advertise, h.Primary
	if respTerm > v.Epoch {
		v.Epoch, v.EpochPrimary = respTerm, respOwner
	}
	applied := make(map[string]int64, len(rows))
	walBytes := make(map[string]int64, len(rows))
	for _, row := range rows {
		applied[row.Key] = row.AppliedSeq
		if row.WALBytes > 0 {
			walBytes[row.Key] = row.WALBytes
		}
	}
	v.AppliedSeq, v.WALBytes = applied, walBytes
}

// instruments returns the node's scrape metrics (nil-safe no-ops when
// the feed is uninstrumented or the node was just removed).
func (hf *healthFeed) instruments(url string) (*telemetry.Histogram, *telemetry.Gauge) {
	hf.mu.RLock()
	defer hf.mu.RUnlock()
	return hf.pollLat[url], hf.nodeUp[url]
}

// getJSON fetches one backend endpoint, stamping the known fencing
// epoch on the request and returning the term the response advertised.
func (hf *healthFeed) getJSON(url string, out any, term int64, owner string) (int64, string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), healthPollTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, "", err
	}
	if term > 0 {
		req.Header.Set(replicate.HeaderEpoch, strconv.FormatInt(term, 10))
		if owner != "" {
			req.Header.Set(replicate.HeaderEpochPrimary, owner)
		}
	}
	resp, err := hf.client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	respTerm, _ := strconv.ParseInt(resp.Header.Get(replicate.HeaderEpoch), 10, 64)
	respOwner := resp.Header.Get(replicate.HeaderEpochPrimary)
	if resp.StatusCode != http.StatusOK {
		// Error bodies read into a stack scratch array: a down node is
		// polled every interval, and the io.ReadAll garbage per failed
		// poll adds up across a long outage.
		var scratch [256]byte
		n, _ := io.ReadFull(resp.Body, scratch[:])
		return respTerm, respOwner, fmt.Errorf("%s: %s: %s", url, resp.Status, scratch[:n])
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return respTerm, respOwner, err
	}
	return respTerm, respOwner, nil
}

// view returns a copy of one node's cached state (maps shared read-only:
// poll replaces them wholesale, never mutates in place).
func (hf *healthFeed) view(url string) NodeView {
	hf.mu.RLock()
	defer hf.mu.RUnlock()
	if v, ok := hf.views[url]; ok {
		return *v
	}
	return NodeView{URL: url}
}
