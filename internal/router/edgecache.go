package router

// The router's edge cache: seq-validated zero-hop reads.
//
// The interactive loop is read-dominated — groups poll packages and
// refinement state far more often than they mutate — yet every routed
// GET pays a full proxy hop to a shard, even when the shard itself
// answers from its version-keyed byte cache. The edge cache removes
// that hop for hot city-scoped GETs: a bounded LRU of rendered
// responses keyed by (city, path, query), each entry stamped with the
// applied WAL sequence the shard rendered it at (the X-GT-Applied-Seq
// response header, a lower bound on the state the body reflects).
//
// The freshness contract — when may a cached entry be served?
//
//	entry.seq >= max( requester's session floor,
//	                  the city's commit floor,
//	                  the health feed's max appliedSeq for the city )
//
//   - The session floor (commit token / X-GT-Min-Seq / gt-session
//     cookie) preserves read-your-writes exactly: a hit at or past the
//     floor provably includes every write the floor names, because the
//     shard's stamp never runs ahead of the state it rendered.
//   - The commit floor is bumped to the commit token of every mutation
//     proxied through this router the moment it is acknowledged — the
//     city's cached entries are invalidated *immediately*, not at the
//     next poll; a reader arriving after a mutation's response can
//     never hit bytes rendered before it.
//   - The health-feed bound caps staleness for writes this router never
//     saw (another router's mutations, direct writes at the primary):
//     once any node of the shard reports a newer applied sequence, all
//     older entries stop serving. Staleness is therefore bounded by the
//     same poll-interval window token-less reads already accept from a
//     -shed-lag follower — the cache weakens nothing.
//
// Entries without a seq stamp are never cached: no sequence space means
// no way to validate freshness, so persistence-less backends simply
// keep paying the proxy hop.
//
// Concurrent misses for one key collapse into a single upstream fill
// (singleflight, the same idiom as the shard's build dedup): a
// thundering herd on a hot group costs one proxy hop instead of N.
// Waiters re-validate the filled entry against their own floor — a
// pinned waiter whose floor the fill cannot prove falls through to its
// own upstream read rather than trust a staler rider.

import (
	"container/list"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"grouptravel/internal/telemetry"
)

const (
	// DefaultEdgeCacheMax bounds the edge cache's entry count.
	DefaultEdgeCacheMax = 4096
	// maxEdgeBody keeps giant renders from pinning router memory; larger
	// responses relay uncached.
	maxEdgeBody = 1 << 20
	// maxEdgeKeyQuery bounds the query-string part of a cache key — the
	// same guard the shard's byte cache applies, so arbitrary query
	// strings cannot mint unbounded key space. Longer queries are routed
	// but never cached or coalesced.
	maxEdgeKeyQuery = 200
)

// HeaderEdge marks a response served from the router's edge cache
// ("hit") — the observability hook tests and curl read.
const HeaderEdge = "X-GT-Edge"

// edgeEntry is one cached rendered response.
type edgeEntry struct {
	key   string
	city  string
	seq   int64 // applied sequence the shard stamped at render
	ctype string
	body  []byte
}

// edgeFill is one in-flight singleflight fill. done closes when the
// leader finished; entry is nil when the fill failed or the response was
// uncacheable.
type edgeFill struct {
	done  chan struct{}
	entry *edgeEntry
}

// edgeCache is the bounded LRU plus the per-city commit floors and the
// singleflight fill table. One instance per router, shared by every
// city; the LRU bound is the memory bound.
type edgeCache struct {
	mu     sync.Mutex
	cap    int
	m      map[string]*list.Element // key -> *edgeEntry element
	lru    *list.List               // front = most recently served
	floors map[string]int64         // city -> min servable entry seq
	fills  map[string]*edgeFill

	hits          *telemetry.Counter
	misses        *telemetry.Counter
	coalesced     *telemetry.Counter
	invalidations *telemetry.Counter
}

func newEdgeCache(cap int, ctr counters) *edgeCache {
	if cap <= 0 {
		cap = DefaultEdgeCacheMax
	}
	return &edgeCache{
		cap:           cap,
		m:             make(map[string]*list.Element),
		lru:           list.New(),
		floors:        make(map[string]int64),
		fills:         make(map[string]*edgeFill),
		hits:          ctr.edgeHits,
		misses:        ctr.edgeMisses,
		coalesced:     ctr.edgeCoalesced,
		invalidations: ctr.edgeInvalidations,
	}
}

// edgeKey builds the cache key. City is part of the key even though the
// path contains it, so invalidation can match entries by city without
// parsing paths back apart.
func edgeKey(city, path, rawQuery string) string {
	return city + "\x00" + path + "?" + rawQuery
}

// edgeCacheable is the explicit route guard: which routed reads may
// touch the edge cache at all. The replication stream (/wal, long-poll
// or push — flushed chunk by chunk, held open arbitrarily long) must
// relay untouched; /metrics and /healthz are live gauges even when a
// backend serves them under a city prefix; and an unbounded query
// string must not mint unbounded key space. Everything the guard
// rejects is routed exactly as before — never cached, never coalesced.
func edgeCacheable(rest, rawQuery string) bool {
	switch rest {
	case "wal", "metrics", "healthz":
		return false
	}
	if len(rawQuery) > maxEdgeKeyQuery {
		return false
	}
	// Streamed/long-poll parameters on any route: a response the backend
	// trickles must pass through, not buffer into a cache fill.
	if rawQuery != "" && (hasQueryParam(rawQuery, "stream") || hasQueryParam(rawQuery, "wait")) {
		return false
	}
	return true
}

// hasQueryParam reports whether the raw query names the parameter,
// without allocating url.Values on the hot path.
func hasQueryParam(rawQuery, name string) bool {
	for q := rawQuery; q != ""; {
		var pair string
		if i := strings.IndexByte(q, '&'); i >= 0 {
			pair, q = q[:i], q[i+1:]
		} else {
			pair, q = q, ""
		}
		if i := strings.IndexByte(pair, '='); i >= 0 {
			pair = pair[:i]
		}
		if pair == name {
			return true
		}
	}
	return false
}

// floor returns the city's commit floor: the minimum applied sequence a
// servable entry must have been rendered at.
func (ec *edgeCache) floor(city string) int64 {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	return ec.floors[city]
}

// get returns the entry for key when it satisfies the caller's combined
// floor, refreshing its LRU position. The caller passes the max of the
// session floor and health-feed bound; the city's commit floor is
// enforced here unconditionally, so no caller can forget it.
func (ec *edgeCache) get(key string, floor int64) *edgeEntry {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	el, ok := ec.m[key]
	if !ok {
		ec.misses.Inc()
		return nil
	}
	e := el.Value.(*edgeEntry)
	if f := ec.floors[e.city]; f > floor {
		floor = f
	}
	if e.seq < floor {
		ec.misses.Inc()
		return nil
	}
	ec.lru.MoveToFront(el)
	ec.hits.Inc()
	return e
}

// put stores an entry, evicting from the LRU tail past cap. An entry
// already below its city's commit floor is dead on arrival and skipped.
func (ec *edgeCache) put(e *edgeEntry) {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	if e.seq < ec.floors[e.city] {
		return
	}
	if el, ok := ec.m[e.key]; ok {
		// Keep the freshest render: a racing slower fill from a lagging
		// follower must not replace a newer entry.
		if el.Value.(*edgeEntry).seq <= e.seq {
			el.Value = e
			ec.lru.MoveToFront(el)
		}
		return
	}
	ec.m[e.key] = ec.lru.PushFront(e)
	for ec.lru.Len() > ec.cap {
		oldest := ec.lru.Back()
		ec.lru.Remove(oldest)
		delete(ec.m, oldest.Value.(*edgeEntry).key)
	}
}

// invalidate raises the city's commit floor to seq: every entry rendered
// before the mutation that committed at seq stops serving immediately.
// Entries are left in place — get's floor check makes them unservable —
// and recycled by LRU pressure or overwritten by the next fill.
func (ec *edgeCache) invalidate(city string, seq int64) {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	if seq > ec.floors[city] {
		ec.floors[city] = seq
		ec.invalidations.Inc()
	}
}

// purgeCity drops every entry of a city outright — the fallback for a
// mutation that carried no commit token (no sequence space to floor on).
func (ec *edgeCache) purgeCity(city string) {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	var next *list.Element
	purged := false
	for el := ec.lru.Front(); el != nil; el = next {
		next = el.Next()
		if e := el.Value.(*edgeEntry); e.city == city {
			ec.lru.Remove(el)
			delete(ec.m, e.key)
			purged = true
		}
	}
	if purged {
		ec.invalidations.Inc()
	}
}

// join returns the in-flight fill for key, or registers a new one with
// the caller as leader. leader=false means another request is already
// filling: wait on fill.done.
func (ec *edgeCache) join(key string) (fill *edgeFill, leader bool) {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	if f, ok := ec.fills[key]; ok {
		return f, false
	}
	f := &edgeFill{done: make(chan struct{})}
	ec.fills[key] = f
	return f, true
}

// finish publishes the leader's result (entry may be nil) and releases
// the key for future fills.
func (ec *edgeCache) finish(key string, fill *edgeFill, entry *edgeEntry) {
	ec.mu.Lock()
	delete(ec.fills, key)
	ec.mu.Unlock()
	fill.entry = entry
	close(fill.done)
}

// len returns the current entry count (healthz).
func (ec *edgeCache) len() int {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	return ec.lru.Len()
}

// writeEdge serves one cached entry: the stored bytes, the applied-seq
// stamp the shard rendered them at, and the hit marker. No X-GT-Backend
// — no backend served this response.
func writeEdge(w http.ResponseWriter, e *edgeEntry, shard string) {
	h := w.Header()
	if e.ctype != "" {
		h.Set("Content-Type", e.ctype)
	}
	h.Set("Content-Length", strconv.Itoa(len(e.body)))
	h.Set(HeaderAppliedSeq, strconv.FormatInt(e.seq, 10))
	h.Set(HeaderShard, shard)
	h.Set(HeaderEdge, "hit")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(e.body)
}
