package telemetry

import (
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// refQuantile is the reference: sort and index.
func refQuantile(values []float64, q float64) float64 {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	i := int(q*float64(len(s))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// bucketOf returns the index of the bucket v falls in.
func bucketOf(bounds []float64, v float64) int {
	i := 0
	for i < len(bounds) && v > bounds[i] {
		i++
	}
	return i
}

// TestHistogramQuantileAgainstReferenceSort pins the quantile contract:
// the estimate always lands in the same bucket as the true (sorted)
// quantile — exact up to bucket resolution.
func TestHistogramQuantileAgainstReferenceSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		h := newHistogram(DefLatencyBuckets)
		n := 100 + rng.Intn(5000)
		values := make([]float64, n)
		for i := range values {
			// Log-uniform across the bucket range, like real latencies.
			values[i] = 0.000001 * pow(10, rng.Float64()*6)
			h.Observe(values[i])
		}
		snap := h.Snapshot()
		if snap.Count != int64(n) {
			t.Fatalf("count = %d, want %d", snap.Count, n)
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			est := snap.Quantile(q)
			ref := refQuantile(values, q)
			got, want := bucketOf(snap.Bounds, est), bucketOf(snap.Bounds, ref)
			// The estimate must land in the reference value's bucket —
			// exact up to bucket resolution. Allow one bucket of slack for
			// ranks sitting exactly on a boundary, where the two rank
			// conventions legitimately straddle it.
			if d := got - want; d < -1 || d > 1 {
				t.Errorf("q=%g: estimate %g (bucket %d) vs reference %g (bucket %d)", q, est, got, ref, want)
			}
		}
	}
}

func pow(base, exp float64) float64 {
	r := 1.0
	for exp >= 1 {
		r *= base
		exp--
	}
	if exp > 0 {
		// crude fractional power via repeated sqrt is overkill; use the
		// identity base^exp = e^(exp ln base) only through the stdlib in
		// non-test code. Here linear interpolation suffices for spread.
		r *= 1 + exp*(base-1)
	}
	return r
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	if got := h.Snapshot().Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100) // all beyond the largest bound
	}
	if got := h.Snapshot().Quantile(0.5); got != 4 {
		t.Fatalf("+Inf bucket quantile = %g, want largest finite bound 4", got)
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	a, b := newHistogram([]float64{1, 2}), newHistogram([]float64{1, 2})
	a.Observe(0.5)
	a.Observe(1.5)
	b.Observe(1.5)
	b.Observe(3)
	sa, sb := a.Snapshot(), b.Snapshot()
	if err := sa.Merge(sb); err != nil {
		t.Fatal(err)
	}
	if sa.Count != 4 {
		t.Fatalf("merged count = %d, want 4", sa.Count)
	}
	if want := []int64{1, 2, 1}; fmt.Sprint(sa.Counts) != fmt.Sprint(want) {
		t.Fatalf("merged counts = %v, want %v", sa.Counts, want)
	}
	mismatched := newHistogram([]float64{1}).Snapshot()
	mismatched.Counts[0] = 1
	mismatched.Count = 1
	if err := sa.Merge(mismatched); err == nil {
		t.Fatal("merge of mismatched layouts succeeded")
	}
}

// TestConcurrentObserveAndSnapshot exercises the lock-free paths under
// the race detector: concurrent Observe against concurrent Snapshot and
// a concurrent scrape must be clean, and the final count exact.
func TestConcurrentObserveAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("gt_test_seconds", "test", nil)
	c := reg.Counter("gt_test_total", "test", "worker", "all")
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.Observe(rng.Float64())
				c.Inc()
			}
		}(int64(w))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = h.Snapshot()
			_ = reg.Render()
		}
	}()
	wg.Wait()
	<-done
	snap := h.Snapshot()
	if want := int64(workers * perWorker); snap.Count != want || c.Value() != want {
		t.Fatalf("count = %d / counter = %d, want %d", snap.Count, c.Value(), want)
	}
	var sum int64
	for _, n := range snap.Counts {
		sum += n
	}
	if sum != snap.Count {
		t.Fatalf("bucket sum %d != count %d", sum, snap.Count)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("gt_x_total", "x", "city", "paris")
	b := reg.Counter("gt_x_total", "x", "city", "paris")
	if a != b {
		t.Fatal("same (name, labels) returned different counters")
	}
	other := reg.Counter("gt_x_total", "x", "city", "rome")
	if a == other {
		t.Fatal("different labels returned the same counter")
	}
}

// parseExposition is a minimal Prometheus text-format parser: it
// validates line shape and returns sample name+labels -> value.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	types := map[string]string{}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			continue
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("line %d: malformed TYPE %q", ln+1, line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, fields[3])
			}
			if _, dup := types[fields[2]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, fields[2])
			}
			types[fields[2]] = fields[3]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		default:
			sp := strings.LastIndexByte(line, ' ')
			if sp < 0 {
				t.Fatalf("line %d: no sample value in %q", ln+1, line)
			}
			key, valStr := line[:sp], line[sp+1:]
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
			}
			if _, dup := samples[key]; dup {
				t.Fatalf("line %d: duplicate sample %q", ln+1, key)
			}
			name := key
			if i := strings.IndexByte(name, '{'); i >= 0 {
				if !strings.HasSuffix(key[:sp], "}") && !strings.Contains(key, "}") {
					t.Fatalf("line %d: unterminated label set in %q", ln+1, key)
				}
				name = name[:i]
			}
			base := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if trimmed, ok := strings.CutSuffix(name, suffix); ok && types[trimmed] == "histogram" {
					base = trimmed
				}
			}
			if _, ok := types[base]; !ok {
				t.Fatalf("line %d: sample %q precedes its TYPE", ln+1, key)
			}
			samples[key] = v
		}
	}
	return samples
}

// TestPrometheusExpositionRoundTrip renders a populated registry and
// parses it back: every family typed, histogram buckets cumulative and
// consistent with _count, label escaping intact.
func TestPrometheusExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("gt_reqs_total", "requests", "class", "read").Add(7)
	reg.Gauge("gt_inflight", "in flight", "class", "read").Set(2)
	reg.GaugeFunc("gt_lag_records", "lag", func() float64 { return 41 }, "city", `we"ird\city`)
	h := reg.Histogram("gt_lat_seconds", "latency", []float64{0.001, 0.01, 0.1}, "class", "read")
	for _, v := range []float64{0.0005, 0.005, 0.005, 0.05, 5} {
		h.Observe(v)
	}

	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var sb strings.Builder
	if _, err := copyAll(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, sb.String())

	if got := samples[`gt_reqs_total{class="read"}`]; got != 7 {
		t.Fatalf("counter = %g, want 7", got)
	}
	if got := samples[`gt_lag_records{city="we\"ird\\city"}`]; got != 41 {
		t.Fatalf("escaped-label gauge = %g (samples: %v)", got, samples)
	}
	// Histogram: buckets cumulative, +Inf equals _count.
	buckets := []string{
		`gt_lat_seconds_bucket{class="read",le="0.001"}`,
		`gt_lat_seconds_bucket{class="read",le="0.01"}`,
		`gt_lat_seconds_bucket{class="read",le="0.1"}`,
		`gt_lat_seconds_bucket{class="read",le="+Inf"}`,
	}
	want := []float64{1, 3, 4, 5}
	prev := -1.0
	for i, key := range buckets {
		got, ok := samples[key]
		if !ok {
			t.Fatalf("missing %s", key)
		}
		if got != want[i] {
			t.Fatalf("%s = %g, want %g", key, got, want[i])
		}
		if got < prev {
			t.Fatalf("buckets not cumulative at %s", key)
		}
		prev = got
	}
	if samples[`gt_lat_seconds_count{class="read"}`] != 5 {
		t.Fatalf("count = %g, want 5", samples[`gt_lat_seconds_count{class="read"}`])
	}
	if sum := samples[`gt_lat_seconds_sum{class="read"}`]; sum < 5.0 || sum > 5.2 {
		t.Fatalf("sum = %g, want ~5.06", sum)
	}
}

func copyAll(sb *strings.Builder, r io.Reader) (int64, error) {
	return io.Copy(sb, r)
}

func TestClassify(t *testing.T) {
	cases := []struct{ method, path, want string }{
		{"GET", "/healthz", ClassHealth},
		{"GET", "/metrics", ClassHealth},
		{"GET", "/api/healthz", ClassHealth},
		{"POST", "/promote", ClassHealth},
		{"GET", "/cities/paris/wal", ClassWAL},
		{"GET", "/cities", ClassRead},
		{"GET", "/cities/paris/pois", ClassRead},
		{"GET", "/cities/paris/packages/3", ClassRead},
		{"POST", "/cities/paris/packages", ClassBuild},
		{"POST", "/api/packages", ClassBuild},
		{"POST", "/cities/paris/packages/3/refine", ClassRefine},
		{"POST", "/cities/paris/groups", ClassCollab},
		{"POST", "/cities/paris/packages/3/ops", ClassCollab},
	}
	for _, c := range cases {
		if got := Classify(c.method, c.path); got != c.want {
			t.Errorf("Classify(%s %s) = %s, want %s", c.method, c.path, got, c.want)
		}
	}
}

// TestObserveAllocationFree pins the acceptance criterion: Observe on
// the hot path must not allocate.
func TestObserveAllocationFree(t *testing.T) {
	h := newHistogram(DefLatencyBuckets)
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.00042) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f times per call, want 0", allocs)
	}
	c := &Counter{}
	if allocs := testing.AllocsPerRun(1000, func() { c.Inc() }); allocs != 0 {
		t.Fatalf("Counter.Inc allocates %.1f times per call, want 0", allocs)
	}
}
