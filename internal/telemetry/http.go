package telemetry

// HTTP instrumentation: one middleware both daemons wrap their mux in.
// It classifies each request into an endpoint class, tracks an in-flight
// gauge, a per-class latency histogram and per-class status-code
// counters, propagates the X-GT-Request-Id correlation header, and —
// when a logger is configured — emits one structured request log line
// carrying everything needed to follow a slow request across the fleet.
//
// The hot path stays allocation-free: classes and their metrics are
// resolved at construction, the response-writer wrapper is pooled, and
// the request id is only minted where Mint is set (the router; shards
// echo the relayed id). With no logger configured the middleware costs
// two time reads, a handful of atomic ops and one pooled Get/Put.

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// HeaderRequestID is the fleet-wide request correlation header: minted
// by the front tier (or supplied by the caller), relayed on every proxy
// and retry hop, echoed by the shards, logged by everyone.
const HeaderRequestID = "X-GT-Request-Id"

// ridHeaderKey is HeaderRequestID in net/http canonical form, so the
// hot-path header lookup is a plain map index with no canonicalization.
const ridHeaderKey = "X-Gt-Request-Id"

// Endpoint classes — the taxonomy every per-class metric and log line
// uses. One vocabulary across router and shards, so fleet dashboards
// aggregate without a mapping table.
const (
	ClassBuild  = "build"  // POST .../packages — package construction
	ClassRefine = "refine" // POST .../refine — preference refinement
	ClassCollab = "collab" // POST .../groups, .../ops — group collaboration
	ClassRead   = "read"   // GETs: cities, POIs, groups, packages
	ClassWAL    = "wal"    // GET .../wal — replication stream
	ClassHealth = "health" // healthz, metrics, promote — control plane
)

// Classes lists the taxonomy in exposition order, indexed by the class
// indices classIdx returns (the hot path works in indices; strings are
// for labels and logs).
var Classes = []string{ClassBuild, ClassRefine, ClassCollab, ClassRead, ClassWAL, ClassHealth}

const (
	idxBuild = iota
	idxRefine
	idxCollab
	idxRead
	idxWAL
	idxHealth
	numClasses
)

// classIdx maps one request onto its endpoint class index. Suffix checks
// only — the router's /cities/{city}/... paths and the shard's legacy
// /api aliases land in the same class. The last path byte pre-filters
// which suffixes can match at all, so the hot read paths (…/pois,
// …/cities/{city}, …/packages/{id}) run at most one real suffix compare.
func classIdx(method, path string) int {
	var last byte
	if len(path) > 0 {
		last = path[len(path)-1]
	}
	switch last {
	case 'z':
		if strings.HasSuffix(path, "/healthz") {
			return idxHealth
		}
	case 'e':
		if strings.HasSuffix(path, "/promote") {
			return idxHealth
		}
		if method == http.MethodPost && strings.HasSuffix(path, "/refine") {
			return idxRefine
		}
	case 'l':
		if strings.HasSuffix(path, "/wal") {
			return idxWAL
		}
	case 's':
		if strings.HasSuffix(path, "/metrics") {
			return idxHealth
		}
		if method == http.MethodPost && strings.HasSuffix(path, "/packages") {
			return idxBuild
		}
	}
	if method != http.MethodPost {
		return idxRead
	}
	// POST groups, ops — and any future mutation until classified.
	return idxCollab
}

// Classify maps one request onto its endpoint class name.
func Classify(method, path string) string { return Classes[classIdx(method, path)] }

// codeClass buckets a status code for the per-class counters.
func codeClass(status int) int {
	i := status/100 - 1
	if i < 0 || i > 4 {
		return 4 // off-protocol statuses count as 5xx-adjacent
	}
	return i
}

var codeClassNames = [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// classMetrics is one endpoint class's pre-resolved instruments.
type classMetrics struct {
	inflight *Gauge
	latency  *Histogram
	codes    [5]*Counter
}

// HTTPMetrics is the per-class HTTP instrument set, registered once at
// construction and indexed by class index, so the request path never
// touches the registry or hashes a map key.
type HTTPMetrics struct {
	classes [numClasses]*classMetrics
}

// NewHTTPMetrics registers the per-class HTTP metrics on reg:
//
//	gt_http_requests_total{class,code}   counter
//	gt_http_request_seconds{class}       histogram
//	gt_http_inflight{class}              gauge
func NewHTTPMetrics(reg *Registry) *HTTPMetrics {
	m := &HTTPMetrics{}
	for idx, class := range Classes {
		cm := &classMetrics{
			inflight: reg.Gauge("gt_http_inflight", "Requests currently being served.", "class", class),
			latency: reg.Histogram("gt_http_request_seconds",
				"Request latency by endpoint class.", nil, "class", class),
		}
		for i, code := range codeClassNames {
			cm.codes[i] = reg.Counter("gt_http_requests_total",
				"Requests served by endpoint class and status class.", "class", class, "code", code)
		}
		m.classes[idx] = cm
	}
	return m
}

// Class returns one class's latency histogram (tests, SLO assertions).
func (m *HTTPMetrics) Class(class string) *Histogram {
	for idx, name := range Classes {
		if name == class {
			return m.classes[idx].latency
		}
	}
	return nil
}

// --- request ids ---

// ridPrefix makes ids from different processes distinguishable without
// coordination; ridSeq makes them unique within the process.
var (
	ridPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Entropy exhaustion at boot: fall back to the clock. Ids stay
			// unique within the process either way.
			return strconv.FormatInt(time.Now().UnixNano()&0xffffffff, 16)
		}
		return hex.EncodeToString(b[:])
	}()
	ridSeq atomic.Uint64
)

// NewRequestID mints a process-unique request id: a boot-time random
// prefix plus a sequence number.
func NewRequestID() string {
	return ridPrefix + "-" + strconv.FormatUint(ridSeq.Add(1), 36)
}

// --- middleware ---

// statusWriter captures the status and byte count of one response. It is
// pooled; the zero status means WriteHeader was never called (implicit
// 200 on first Write).
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// Unwrap supports http.ResponseController passthrough.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// FlusherFor walks w's Unwrap chain (wrappers like statusWriter expose
// the writer they decorate through Unwrap, the http.ResponseController
// convention) to a writer that can actually flush. Streaming handlers
// must use this instead of asserting w.(http.Flusher) directly: a
// middleware wrapper in between would hide the real Flusher and silently
// turn a held-open stream into a buffered one-shot. nil means nothing in
// the stack can flush.
func FlusherFor(w http.ResponseWriter) http.Flusher {
	for {
		if f, ok := w.(http.Flusher); ok {
			return f
		}
		u, ok := w.(interface{ Unwrap() http.ResponseWriter })
		if !ok {
			return nil
		}
		w = u.Unwrap()
	}
}

var swPool = sync.Pool{New: func() any { return new(statusWriter) }}

// Middleware instruments an http.Handler: per-class metrics always,
// request-id propagation always, one structured request log line when
// Log is set.
type Middleware struct {
	// Metrics is the per-class instrument set. Required.
	Metrics *HTTPMetrics
	// Log emits one line per request when non-nil (access logging is the
	// daemons' opt-in; embedders and benchmarks leave it nil).
	Log *slog.Logger
	// Mint mints a request id when the request carries none — the front
	// tier's job. Shards leave it false and only echo relayed ids.
	Mint bool
}

// Wrap returns the instrumented handler.
func (m *Middleware) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := nanotime()
		idx := classIdx(r.Method, r.URL.Path)
		cm := m.Metrics.classes[idx]

		var rid string
		if vals := r.Header[ridHeaderKey]; len(vals) > 0 {
			rid = vals[0]
		} else if m.Mint {
			rid = NewRequestID()
			// Set on the *request* so a proxy's forwarded copy (which
			// clones inbound headers) relays it on every hop and retry.
			r.Header[ridHeaderKey] = []string{rid}
		}
		if rid != "" {
			w.Header()[ridHeaderKey] = []string{rid}
		}

		sw := swPool.Get().(*statusWriter)
		sw.ResponseWriter, sw.status, sw.bytes = w, 0, 0

		cm.inflight.Add(1)
		next.ServeHTTP(sw, r)
		cm.inflight.Add(-1)

		status := sw.status
		if status == 0 {
			status = http.StatusOK // handler wrote nothing: net/http sends 200
		}
		elapsed := time.Duration(nanotime() - start)
		cm.latency.Observe(float64(elapsed) * 1e-9)
		cm.codes[codeClass(status)].Inc()

		if m.Log != nil {
			m.logRequest(r, sw, rid, Classes[idx], status, elapsed)
		}
		sw.ResponseWriter = nil
		swPool.Put(sw)
	})
}

// logRequest emits the structured access-log line. Attr construction
// allocates; that is fine here — the logging path is opt-in and already
// formats output.
func (m *Middleware) logRequest(r *http.Request, sw *statusWriter, rid, class string, status int, elapsed time.Duration) {
	level := slog.LevelInfo
	switch {
	case status >= 500:
		level = slog.LevelError
	case status >= 400:
		level = slog.LevelWarn
	}
	attrs := make([]slog.Attr, 0, 10)
	attrs = append(attrs,
		slog.String("rid", rid),
		slog.String("class", class),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
	)
	if city := cityOf(r.URL.Path); city != "" {
		attrs = append(attrs, slog.String("city", city))
	}
	// The routing layer stamps which shard/backend served; present only
	// on proxied responses, so one line locates the whole hop.
	h := sw.Header()
	if shard := h.Get("X-GT-Shard"); shard != "" {
		attrs = append(attrs, slog.String("shard", shard))
	}
	if backend := h.Get("X-GT-Backend"); backend != "" {
		attrs = append(attrs, slog.String("backend", backend))
	}
	attrs = append(attrs,
		slog.Int("status", status),
		slog.Int64("bytes", sw.bytes),
		slog.Duration("dur", elapsed),
	)
	m.Log.LogAttrs(r.Context(), level, "http", attrs...)
}

// cityOf extracts the {city} path segment from /cities/{city}[/...].
func cityOf(path string) string {
	rest, ok := strings.CutPrefix(path, "/cities/")
	if !ok {
		return ""
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		return rest[:i]
	}
	return rest
}
