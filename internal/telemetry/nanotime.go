package telemetry

import (
	_ "unsafe" // for go:linkname
)

// nanotime is the runtime's raw monotonic clock. time.Now reads the wall
// clock *and* the monotonic clock (two VDSO calls); request timing only
// needs the monotonic half, and the middleware sits on the cached-read
// hot path where the extra call is measurable. runtime.nanotime is on
// the linkname legacy allowlist, so this keeps working across toolchain
// upgrades; the empty nanotime.s satisfies the compiler's body check.
//
//go:linkname nanotime runtime.nanotime
func nanotime() int64
