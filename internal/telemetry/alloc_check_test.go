package telemetry

import (
	"net/http"
	"testing"
)

// nopRW is the cheapest possible ResponseWriter, so the middleware's own
// cost is measured bare — no recorder, no header churn.
type nopRW struct{ h http.Header }

func (n *nopRW) Header() http.Header         { return n.h }
func (n *nopRW) Write(p []byte) (int, error) { return len(p), nil }
func (n *nopRW) WriteHeader(int)             {}

var okBody = []byte("ok")

// TestMiddlewareAllocFree: the instrumented request path allocates
// nothing — the budget the cached-read hot path holds the middleware to.
func TestMiddlewareAllocFree(t *testing.T) {
	reg := NewRegistry()
	m := &Middleware{Metrics: NewHTTPMetrics(reg)}
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.Write(okBody) })
	h := m.Wrap(inner)
	req, err := http.NewRequest(http.MethodGet, "/cities/paris/pois?k=5", nil)
	if err != nil {
		t.Fatal(err)
	}
	w := &nopRW{h: make(http.Header)}
	if n := testing.AllocsPerRun(2000, func() { h.ServeHTTP(w, req) }); n > 0 {
		t.Fatalf("middleware allocates %.1f per request, want 0", n)
	}
}

// BenchmarkMiddlewarePure isolates the wrapper's per-request overhead.
func BenchmarkMiddlewarePure(b *testing.B) {
	reg := NewRegistry()
	m := &Middleware{Metrics: NewHTTPMetrics(reg)}
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.Write(okBody) })
	h := m.Wrap(inner)
	req, err := http.NewRequest(http.MethodGet, "/cities/paris/pois?k=5", nil)
	if err != nil {
		b.Fatal(err)
	}
	w := &nopRW{h: make(http.Header)}
	b.Run("wrapped", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.ServeHTTP(w, req)
		}
	})
	b.Run("bare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			inner.ServeHTTP(w, req)
		}
	})
}
