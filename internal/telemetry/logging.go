package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewAccessLogger builds the structured request logger both daemons hand
// to the HTTP middleware, from their -log-format/-log-level flags.
// Format "off" (or "") disables access logging — the nil logger the
// middleware treats as silent — so the hot path pays nothing unless
// logging was asked for. Format is "json" (one JSON object per request,
// machine-shippable) or "text" (slog's key=value form, human-tailable).
func NewAccessLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	switch strings.ToLower(format) {
	case "", "off", "none":
		return nil, nil
	}
	var lv slog.Level
	if level != "" {
		if err := lv.UnmarshalText([]byte(level)); err != nil {
			return nil, fmt.Errorf("log level %q: %w", level, err)
		}
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("log format %q: want json, text, or off", format)
}
