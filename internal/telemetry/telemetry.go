// Package telemetry is the fleet's dependency-free metrics core: atomic
// counters and gauges, fixed-bucket latency histograms with a lock-free
// allocation-free Observe on the hot path, mergeable snapshots with
// quantile extraction, and a Prometheus-text GET /metrics exposition —
// the machine-scrapable surface the SLO/loadgen trajectory gates on.
//
// # Model
//
// A Registry holds metric families keyed by name; each family holds one
// series per label set. Registration is idempotent: asking for the same
// (name, labels) twice returns the same metric, so a per-city counter
// survives the city's eviction/reload cycle and the health report and the
// /metrics exposition can be backed by the *same* underlying values —
// the two surfaces can never disagree.
//
// Series are registered up front (cities, shards and nodes are known at
// boot), so the request path performs only atomic operations: no locks,
// no maps, no allocation. Values that are cheaper to read than to track
// (replication lag, WAL stats, residency) register as CounterFunc/
// GaugeFunc and are sampled at scrape time.
package telemetry

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// --- metrics ---

// Counter is a monotonically increasing value. The zero value is unusable;
// obtain counters from a Registry. All methods are safe for concurrent
// use and nil-safe (a nil counter is a no-op), so instrumented code never
// branches on "is telemetry wired".
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds delta (negative deltas are a caller bug; they are not checked
// on the hot path).
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Observe is lock-free and
// allocation-free: one bounded scan over the bucket bounds plus two
// atomic adds — cheap enough for a per-request hot path. The total count
// is the sum of the bucket counts (no separate total, one fewer atomic
// per Observe). The sum is tracked in integer nanounits (for latencies
// in seconds: nanoseconds), which overflows after ~292 years of
// accumulated observation.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64
	sumN   atomic.Int64 // sum in 1e-9 units
}

// DefLatencyBuckets spans 5µs to 10s — the full range from a cached
// byte-serve (~2µs) through package builds (~hundreds of µs) to a
// pathological tail. 19 bounds keeps the exposition small and the
// quantile resolution ~2.5x per step.
var DefLatencyBuckets = []float64{
	0.000005, 0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value (seconds, for latency histograms).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumN.Add(int64(v * 1e9))
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Snapshot captures a mergeable point-in-time copy. Concurrent Observes
// may straddle the capture; each observation is either fully in or fully
// out of its bucket, and the total count is the sum of the captured
// buckets, so count and buckets can never disagree.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    float64(h.sumN.Load()) / 1e9,
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// HistSnapshot is a point-in-time histogram state: per-bucket counts
// (last bucket is +Inf), total count, and the observed sum.
type HistSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Merge folds other into s. The bucket layouts must match; snapshots from
// differently-bucketed histograms do not merge.
func (s *HistSnapshot) Merge(other HistSnapshot) error {
	if other.Count == 0 {
		return nil
	}
	if s.Count == 0 && s.Bounds == nil {
		*s = other
		s.Counts = append([]int64(nil), other.Counts...)
		return nil
	}
	if len(s.Bounds) != len(other.Bounds) {
		return fmt.Errorf("telemetry: merge of mismatched bucket layouts (%d vs %d bounds)", len(s.Bounds), len(other.Bounds))
	}
	for i, b := range s.Bounds {
		if b != other.Bounds[i] {
			return fmt.Errorf("telemetry: merge of mismatched bucket bound %d (%g vs %g)", i, b, other.Bounds[i])
		}
	}
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Count += other.Count
	s.Sum += other.Sum
	return nil
}

// Quantile extracts the q-quantile (0 < q <= 1) by linear interpolation
// within the bucket holding the target rank — exact up to bucket
// resolution: the true quantile is always inside the returned value's
// bucket. Values in the +Inf bucket report the largest finite bound.
// An empty histogram reports 0.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < target {
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket: no finite upper bound
			if len(s.Bounds) == 0 {
				return 0
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		if c == 0 {
			return upper
		}
		return lower + (upper-lower)*(target-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// --- registry ---

// metricKind orders families in the exposition and names their TYPE.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is one (labels, value) row of a family.
type series struct {
	labels  string // pre-rendered {k="v",...} or ""
	counter *Counter
	gauge   *Gauge
	fn      func() float64 // CounterFunc/GaugeFunc sample
	hist    *Histogram
}

type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series // label signature -> series
	order  []string           // registration order of signatures
}

// Registry is a set of metric families. All registration methods are
// idempotent on (name, labels) and safe for concurrent use; registering
// one name under two different kinds panics — that is a wiring bug, not
// a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelSig renders label pairs into the exposition form, escaping label
// values per the Prometheus text format (backslash, quote, newline).
func labelSig(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("telemetry: labels must be key/value pairs")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		v := labels[i+1]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		b.WriteString(v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// register returns the family's series for the labels, creating family
// and series as needed.
func (r *Registry) register(name, help string, kind metricKind, labels []string) *series {
	sig := labelSig(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s registered as %s and %s", name, f.kind, kind))
	}
	s := f.series[sig]
	if s == nil {
		s = &series{labels: sig}
		f.series[sig] = s
		f.order = append(f.order, sig)
	}
	return s
}

// Counter registers (or returns the existing) counter. labels are
// key/value pairs: Counter("gt_hits_total", "hits", "city", "paris").
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.register(name, help, kindCounter, labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.register(name, help, kindGauge, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// CounterFunc registers a counter sampled at scrape time — for
// monotonically increasing values something else already tracks (WAL
// fsync counts, replication sync counts). Re-registration replaces fn.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, kindCounter, labels).fn = fn
}

// GaugeFunc registers a gauge sampled at scrape time — for values that
// are cheaper to read than to track (lag, residency, queue depths).
// Re-registration replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, kindGauge, labels).fn = fn
}

// Histogram registers (or returns the existing) histogram with the given
// bucket upper bounds (nil: DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	s := r.register(name, help, kindHistogram, labels)
	if s.hist == nil {
		if bounds == nil {
			bounds = DefLatencyBuckets
		}
		s.hist = newHistogram(bounds)
	}
	return s.hist
}

// formatFloat renders a sample value: integers without a decimal point
// (the common counter case), everything else in shortest-form %g.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the whole registry in the Prometheus text
// exposition format (version 0.0.4), families in registration order,
// series in registration order within each family.
func (r *Registry) WritePrometheus(w *strings.Builder) {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			w.WriteString("# HELP ")
			w.WriteString(f.name)
			w.WriteByte(' ')
			w.WriteString(f.help)
			w.WriteByte('\n')
		}
		w.WriteString("# TYPE ")
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(string(f.kind))
		w.WriteByte('\n')
		for _, sig := range f.order {
			s := f.series[sig]
			switch {
			case f.kind == kindHistogram:
				writeHistogram(w, f.name, s)
			case s.fn != nil:
				writeSample(w, f.name, "", s.labels, s.fn())
			case s.counter != nil:
				writeSample(w, f.name, "", s.labels, float64(s.counter.Value()))
			case s.gauge != nil:
				writeSample(w, f.name, "", s.labels, float64(s.gauge.Value()))
			}
		}
	}
}

func writeSample(w *strings.Builder, name, suffix, labels string, v float64) {
	w.WriteString(name)
	w.WriteString(suffix)
	w.WriteString(labels)
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

// writeHistogram renders one series' cumulative buckets, sum and count.
func writeHistogram(w *strings.Builder, name string, s *series) {
	snap := s.hist.Snapshot()
	// The le label joins any existing labels inside one brace set.
	prefix, suffix := "{", "}"
	if s.labels != "" {
		prefix = s.labels[:len(s.labels)-1] + ","
	}
	var cum int64
	for i, c := range snap.Counts {
		cum += c
		le := "+Inf"
		if i < len(snap.Bounds) {
			le = formatFloat(snap.Bounds[i])
		}
		w.WriteString(name)
		w.WriteString("_bucket")
		w.WriteString(prefix)
		w.WriteString(`le="`)
		w.WriteString(le)
		w.WriteByte('"')
		w.WriteString(suffix)
		w.WriteByte(' ')
		w.WriteString(strconv.FormatInt(cum, 10))
		w.WriteByte('\n')
	}
	writeSample(w, name, "_sum", s.labels, snap.Sum)
	writeSample(w, name, "_count", s.labels, float64(snap.Count))
}

// Render returns the full exposition as a string.
func (r *Registry) Render() string {
	var b strings.Builder
	b.Grow(4096)
	r.WritePrometheus(&b)
	return b.String()
}

// Handler serves the registry as GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		body := r.Render()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		_, _ = w.Write([]byte(body))
	})
}
