package query_test

import (
	"fmt"

	"grouptravel/internal/query"
)

// The paper's §3.1 example query: a CI with 1 accommodation,
// 1 transportation, 2 restaurants and 1 attraction under a $120 budget.
func ExampleNew() {
	q, err := query.New(1, 1, 2, 1, 120)
	if err != nil {
		panic(err)
	}
	fmt.Println(q)
	fmt.Println("items per CI:", q.Size())
	// Output:
	// <1 acco, 1 trans, 2 rest, 1 attr, $120.00>
	// items per CI: 5
}

// Default is the query used throughout the paper's evaluation.
func ExampleDefault() {
	fmt.Println(query.Default())
	// Output:
	// <1 acco, 1 trans, 1 rest, 3 attr, unlimited budget>
}
