// Package query implements the group query of §3.1:
//
//	®q = ⟨#c1, …, #cm, B⟩
//
// — how many POIs of each category a Composite Item must contain and the
// total budget B it may not exceed — together with the validity predicate
// that defines the set V of valid CIs.
package query

import (
	"fmt"
	"math"
	"strings"

	"grouptravel/internal/poi"
)

// Query is a group query. Counts is indexed by poi.Category; Budget is the
// per-CI cost cap (math.Inf(1) means the paper's "infinite budget" used in
// the synthetic experiment).
type Query struct {
	Counts [poi.NumCategories]int
	Budget float64
}

// New builds a query with the given per-category counts and budget.
func New(acco, trans, rest, attr int, budget float64) (Query, error) {
	q := Query{Counts: [poi.NumCategories]int{acco, trans, rest, attr}, Budget: budget}
	if err := q.Validate(); err != nil {
		return Query{}, err
	}
	return q, nil
}

// MustNew is New for compile-time-constant queries; it panics on error.
func MustNew(acco, trans, rest, attr int, budget float64) Query {
	q, err := New(acco, trans, rest, attr, budget)
	if err != nil {
		panic(err)
	}
	return q
}

// Default is the paper's default query ⟨1 acco, 1 trans, 1 rest, 3 attr⟩
// with an infinite budget (§4.3.1, §4.4.3).
func Default() Query {
	return MustNew(1, 1, 1, 3, math.Inf(1))
}

// Validate checks structural sanity: non-negative counts, at least one
// requested item, and a positive budget.
func (q Query) Validate() error {
	total := 0
	for c, n := range q.Counts {
		if n < 0 {
			return fmt.Errorf("query: negative count %d for %s", n, poi.Category(c))
		}
		total += n
	}
	if total == 0 {
		return fmt.Errorf("query: empty query (all counts zero)")
	}
	if math.IsNaN(q.Budget) || q.Budget <= 0 {
		return fmt.Errorf("query: budget must be positive (got %v)", q.Budget)
	}
	return nil
}

// Size returns the total number of POIs a valid CI contains.
func (q Query) Size() int {
	total := 0
	for _, n := range q.Counts {
		total += n
	}
	return total
}

// Unbounded reports whether the budget is infinite.
func (q Query) Unbounded() bool { return math.IsInf(q.Budget, 1) }

// String renders the query in the paper's notation, e.g.
// "⟨1 acco, 1 trans, 1 rest, 3 attr, $120⟩".
func (q Query) String() string {
	var b strings.Builder
	b.WriteString("<")
	for i, c := range poi.Categories {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d %s", q.Counts[c], c)
	}
	if q.Unbounded() {
		b.WriteString(", unlimited budget>")
	} else {
		fmt.Fprintf(&b, ", $%.2f>", q.Budget)
	}
	return b.String()
}

// CheckCI applies the §3.1 validity predicate to a candidate item set:
// (i) per-category counts match the query exactly, and (ii) total cost is
// at most B. It returns nil for a valid CI and a descriptive error
// otherwise. Duplicate POIs (same ID twice) are rejected — a CI is a set.
func (q Query) CheckCI(items []*poi.POI) error {
	var counts [poi.NumCategories]int
	cost := 0.0
	seen := make(map[int]bool, len(items))
	for _, it := range items {
		if it == nil {
			return fmt.Errorf("query: nil item in CI")
		}
		if seen[it.ID] {
			return fmt.Errorf("query: duplicate POI %d in CI", it.ID)
		}
		seen[it.ID] = true
		if !it.Cat.Valid() {
			return fmt.Errorf("query: item %d has invalid category", it.ID)
		}
		counts[it.Cat]++
		cost += it.Cost
	}
	for c := range counts {
		if counts[c] != q.Counts[c] {
			return fmt.Errorf("query: CI has %d %s items, query wants %d",
				counts[c], poi.Category(c), q.Counts[c])
		}
	}
	if cost > q.Budget {
		return fmt.Errorf("query: CI cost %.3f exceeds budget %.3f", cost, q.Budget)
	}
	return nil
}

// Feasible reports whether the collection can possibly satisfy the query:
// every requested category has at least the requested number of POIs. It
// does not check budgets (that depends on which POIs are picked).
func (q Query) Feasible(c *poi.Collection) error {
	counts := c.CategoryCounts()
	for cat, want := range q.Counts {
		if counts[cat] < want {
			return fmt.Errorf("query: city has %d %s POIs, query wants %d",
				counts[cat], poi.Category(cat), want)
		}
	}
	return nil
}
