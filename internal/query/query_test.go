package query

import (
	"math"
	"strings"
	"testing"

	"grouptravel/internal/geo"
	"grouptravel/internal/poi"
	"grouptravel/internal/vec"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, 0, 1, 1, 10); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := New(0, 0, 0, 0, 10); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := New(1, 1, 1, 1, 0); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := New(1, 1, 1, 1, math.NaN()); err == nil {
		t.Fatal("NaN budget accepted")
	}
	q, err := New(1, 1, 2, 1, 120)
	if err != nil {
		t.Fatal(err)
	}
	if q.Size() != 5 {
		t.Fatalf("Size = %d, want 5", q.Size())
	}
}

func TestDefaultMatchesPaper(t *testing.T) {
	q := Default()
	want := [poi.NumCategories]int{1, 1, 1, 3}
	if q.Counts != want {
		t.Fatalf("default counts = %v, want %v", q.Counts, want)
	}
	if !q.Unbounded() {
		t.Fatal("default budget must be infinite")
	}
	if q.Size() != 6 {
		t.Fatalf("default size = %d", q.Size())
	}
}

func TestString(t *testing.T) {
	q := MustNew(1, 1, 2, 1, 120)
	s := q.String()
	for _, want := range []string{"1 acco", "1 trans", "2 rest", "1 attr", "$120.00"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	if !strings.Contains(Default().String(), "unlimited") {
		t.Fatalf("unbounded query should print unlimited: %q", Default().String())
	}
}

func item(id int, cat poi.Category, cost float64) *poi.POI {
	return &poi.POI{ID: id, Cat: cat, Coord: geo.Point{Lat: 48.86, Lon: 2.34}, Cost: cost, Vector: vec.Vector{1}}
}

func validSet() []*poi.POI {
	return []*poi.POI{
		item(1, poi.Acco, 10),
		item(2, poi.Trans, 5),
		item(3, poi.Rest, 20),
		item(4, poi.Attr, 15),
		item(5, poi.Attr, 15),
		item(6, poi.Attr, 15),
	}
}

func TestCheckCIValid(t *testing.T) {
	q := MustNew(1, 1, 1, 3, 100)
	if err := q.CheckCI(validSet()); err != nil {
		t.Fatalf("valid CI rejected: %v", err)
	}
}

func TestCheckCIBudget(t *testing.T) {
	q := MustNew(1, 1, 1, 3, 79.9) // set costs 80 total
	if err := q.CheckCI(validSet()); err == nil {
		t.Fatal("over-budget CI accepted")
	}
	// Exactly at budget is valid ("at most B").
	q = MustNew(1, 1, 1, 3, 80)
	if err := q.CheckCI(validSet()); err != nil {
		t.Fatalf("at-budget CI rejected: %v", err)
	}
}

func TestCheckCICounts(t *testing.T) {
	q := MustNew(1, 1, 1, 3, 1000)
	missing := validSet()[:5] // one attraction short
	if err := q.CheckCI(missing); err == nil {
		t.Fatal("undercounted CI accepted")
	}
	extra := append(validSet(), item(7, poi.Rest, 1))
	if err := q.CheckCI(extra); err == nil {
		t.Fatal("overcounted CI accepted")
	}
}

func TestCheckCIDuplicates(t *testing.T) {
	q := MustNew(1, 1, 1, 3, 1000)
	set := validSet()
	set[5] = set[4] // same POI twice
	if err := q.CheckCI(set); err == nil {
		t.Fatal("duplicate POI accepted — a CI is a set")
	}
}

func TestCheckCINil(t *testing.T) {
	q := MustNew(1, 1, 1, 3, 1000)
	set := validSet()
	set[0] = nil
	if err := q.CheckCI(set); err == nil {
		t.Fatal("nil item accepted")
	}
}

func TestCheckCIUnboundedBudget(t *testing.T) {
	q := Default()
	set := validSet()
	for _, p := range set {
		p.Cost = 1e12
	}
	if err := q.CheckCI(set); err != nil {
		t.Fatalf("unbounded budget rejected pricey CI: %v", err)
	}
}

func TestFeasible(t *testing.T) {
	schema := poi.NewSchema([]string{"x"}, []string{"x"}, []string{"x"}, []string{"x"})
	mk := func(id int, cat poi.Category) *poi.POI {
		return &poi.POI{ID: id, Cat: cat, Coord: geo.Point{Lat: 1, Lon: 1}, Vector: vec.Vector{1}}
	}
	coll, err := poi.NewCollection(schema, []*poi.POI{
		mk(1, poi.Acco), mk(2, poi.Trans), mk(3, poi.Rest),
		mk(4, poi.Attr), mk(5, poi.Attr),
	})
	if err != nil {
		t.Fatal(err)
	}
	q := MustNew(1, 1, 1, 2, 100)
	if err := q.Feasible(coll); err != nil {
		t.Fatalf("feasible query rejected: %v", err)
	}
	q3 := MustNew(1, 1, 1, 3, 100) // needs 3 attractions, city has 2
	if err := q3.Feasible(coll); err == nil {
		t.Fatal("infeasible query accepted")
	}
}
