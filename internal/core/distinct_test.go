package core

import (
	"testing"

	"grouptravel/internal/metrics"
	"grouptravel/internal/query"
)

func TestDistinctItemsNoRepetition(t *testing.T) {
	e := engine(t)
	gp := randomGroupProfile(t, e, 21)
	params := DefaultParams(4)
	params.DistinctItems = true
	params.Gamma = 25 // the regime where repetition would otherwise occur
	tp, err := e.Build(gp, query.Default(), params)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range tp.CIs {
		for _, it := range c.Items {
			if seen[it.ID] {
				t.Fatalf("POI %d appears in two CIs despite DistinctItems", it.ID)
			}
			seen[it.ID] = true
		}
	}
	if !tp.Valid() {
		t.Fatal("distinct package invalid")
	}
}

func TestDistinctItemsCostsObjective(t *testing.T) {
	// Forbidding repetition can only reduce (or keep) the per-CI scores:
	// the repeated-best-item option is gone. Compare personalization.
	e := engine(t)
	gp := randomGroupProfile(t, e, 22)
	params := DefaultParams(4)
	params.Gamma = 25
	free, err := e.Build(gp, query.Default(), params)
	if err != nil {
		t.Fatal(err)
	}
	params.DistinctItems = true
	distinct, err := e.Build(gp, query.Default(), params)
	if err != nil {
		t.Fatal(err)
	}
	pFree := metrics.Personalization(free.CIs, gp)
	pDistinct := metrics.Personalization(distinct.CIs, gp)
	if pDistinct > pFree+1e-9 {
		t.Fatalf("distinct mode increased personalization: %v vs %v", pDistinct, pFree)
	}
}

func TestDistinctItemsInfeasibleWhenCityTooSmall(t *testing.T) {
	// 4 CIs × 3 attractions need 12 distinct attractions; ask for far more
	// than the test city's inventory via a bigger K.
	e := engine(t)
	params := DefaultParams(30) // 30 CIs × 1 acco = 30 accommodations > 24 in TestSpec
	params.DistinctItems = true
	if _, err := e.Build(nil, query.Default(), params); err == nil {
		t.Fatal("infeasible distinct build succeeded")
	}
}
