package core

import (
	"testing"

	"grouptravel/internal/query"
)

// TestClusterCacheReuse verifies the memoization contract: identical
// clustering parameters reuse the fitted centroids (same package for the
// same inputs), while different seeds or category masks cluster afresh.
func TestClusterCacheReuse(t *testing.T) {
	e := engine(t)
	gp := randomGroupProfile(t, e, 31)
	params := DefaultParams(4)

	a, err := e.Build(gp, query.Default(), params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Build(gp, query.Default(), params)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.CIs {
		if a.CIs[j].Centroid != b.CIs[j].Centroid {
			t.Fatal("cache miss: same parameters produced different centroids")
		}
	}

	// A different seed is a distinct cache entry; it must still build a
	// valid package (FCM may or may not converge to the same optimum).
	params2 := params
	params2.Seed = params.Seed + 7
	c, err := e.Build(gp, query.Default(), params2)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Valid() {
		t.Fatal("differently seeded package invalid")
	}

	// A different category mask clusters over different points.
	restOnlyQ := query.MustNew(0, 0, 3, 0, query.Default().Budget)
	d, err := e.Build(gp, restOnlyQ, params)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Valid() {
		t.Fatal("rest-only package invalid")
	}
	for _, ci := range d.CIs {
		for _, it := range ci.Items {
			if it.Cat.String() != "rest" {
				t.Fatalf("rest-only query returned %v", it.Cat)
			}
		}
	}
}

// TestCacheEvictionLRU pins the bounded-cache contract: beyond the cap the
// least-recently-used clustering is evicted (hits refresh recency), evicted
// keys recompute on next use, and results are unaffected throughout.
func TestCacheEvictionLRU(t *testing.T) {
	e := engine(t)
	gp := randomGroupProfile(t, e, 33)
	e.SetCacheCap(2)
	build := func(seed int64) {
		t.Helper()
		params := DefaultParams(3)
		params.Seed = seed
		if _, err := e.Build(gp, query.Default(), params); err != nil {
			t.Fatal(err)
		}
	}
	build(1) // miss
	build(2) // miss
	build(1) // hit: seed 1 is now the most recently used
	build(3) // miss: evicts seed 2, the LRU entry
	if got := e.CacheSize(); got != 2 {
		t.Fatalf("cache size = %d, want 2", got)
	}
	if got := e.CacheEvictions(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	misses := e.CacheMisses()
	build(1) // still memoized: no new miss
	if got := e.CacheMisses(); got != misses {
		t.Fatalf("seed 1 was evicted: misses %d -> %d", misses, got)
	}
	build(2) // evicted above: must recompute
	if got := e.CacheMisses(); got != misses+1 {
		t.Fatalf("seed 2 recompute: misses %d -> %d, want +1", misses, got)
	}
}

// TestSetCacheCapShrinks verifies that lowering the cap sheds entries
// immediately and that cap <= 0 removes the bound.
func TestSetCacheCapShrinks(t *testing.T) {
	e := engine(t)
	gp := randomGroupProfile(t, e, 34)
	e.SetCacheCap(0) // unbounded
	params := DefaultParams(3)
	for s := int64(1); s <= 4; s++ {
		params.Seed = s
		if _, err := e.Build(gp, query.Default(), params); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.CacheSize(); got != 4 {
		t.Fatalf("unbounded cache size = %d, want 4", got)
	}
	if got := e.CacheEvictions(); got != 0 {
		t.Fatalf("unbounded cache evicted %d entries", got)
	}
	e.SetCacheCap(1)
	if got := e.CacheSize(); got != 1 {
		t.Fatalf("after SetCacheCap(1): size = %d", got)
	}
	if got := e.CacheEvictions(); got != 3 {
		t.Fatalf("after SetCacheCap(1): evictions = %d, want 3", got)
	}
	st := e.CacheStats()
	if st.Size != 1 || st.Cap != 1 || st.Evictions != 3 || st.Misses != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPartialCategoryQuery checks queries that skip categories entirely.
func TestPartialCategoryQuery(t *testing.T) {
	e := engine(t)
	gp := randomGroupProfile(t, e, 32)
	q := query.MustNew(0, 0, 1, 2, query.Default().Budget)
	tp, err := e.Build(gp, q, DefaultParams(3))
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Valid() {
		t.Fatal("partial-category package invalid")
	}
	if d := tp.Measure(); d.Personalization <= 0 {
		t.Fatalf("dimensions: %+v", d)
	}
}
