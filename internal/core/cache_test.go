package core

import (
	"testing"

	"grouptravel/internal/query"
)

// TestClusterCacheReuse verifies the memoization contract: identical
// clustering parameters reuse the fitted centroids (same package for the
// same inputs), while different seeds or category masks cluster afresh.
func TestClusterCacheReuse(t *testing.T) {
	e := engine(t)
	gp := randomGroupProfile(t, e, 31)
	params := DefaultParams(4)

	a, err := e.Build(gp, query.Default(), params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Build(gp, query.Default(), params)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.CIs {
		if a.CIs[j].Centroid != b.CIs[j].Centroid {
			t.Fatal("cache miss: same parameters produced different centroids")
		}
	}

	// A different seed is a distinct cache entry; it must still build a
	// valid package (FCM may or may not converge to the same optimum).
	params2 := params
	params2.Seed = params.Seed + 7
	c, err := e.Build(gp, query.Default(), params2)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Valid() {
		t.Fatal("differently seeded package invalid")
	}

	// A different category mask clusters over different points.
	restOnlyQ := query.MustNew(0, 0, 3, 0, query.Default().Budget)
	d, err := e.Build(gp, restOnlyQ, params)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Valid() {
		t.Fatal("rest-only package invalid")
	}
	for _, ci := range d.CIs {
		for _, it := range ci.Items {
			if it.Cat.String() != "rest" {
				t.Fatalf("rest-only query returned %v", it.Cat)
			}
		}
	}
}

// TestPartialCategoryQuery checks queries that skip categories entirely.
func TestPartialCategoryQuery(t *testing.T) {
	e := engine(t)
	gp := randomGroupProfile(t, e, 32)
	q := query.MustNew(0, 0, 1, 2, query.Default().Budget)
	tp, err := e.Build(gp, q, DefaultParams(3))
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Valid() {
		t.Fatal("partial-category package invalid")
	}
	if d := tp.Measure(); d.Personalization <= 0 {
		t.Fatalf("dimensions: %+v", d)
	}
}
