package core

import (
	"fmt"
	"sync"
	"testing"

	"grouptravel/internal/fuzzy"
	"grouptravel/internal/geo"
	"grouptravel/internal/query"
)

// packageFingerprint canonicalizes everything a package build decides: the
// item ids per CI, centroids and the objective value.
func packageFingerprint(tp *TravelPackage) string {
	s := fmt.Sprintf("obj=%v;", tp.ObjVal)
	for _, c := range tp.CIs {
		s += fmt.Sprintf("[%v@%v]", itemKey(c), c.Centroid)
	}
	return s
}

// TestConcurrentBuildMatchesSequential hammers one Engine from many
// goroutines and asserts every concurrent result is byte-identical to the
// sequential build of the same inputs on a fresh engine. Run under -race
// this is also the engine's data-race certificate.
func TestConcurrentBuildMatchesSequential(t *testing.T) {
	e := engine(t)
	gp := randomGroupProfile(t, e, 41)

	// A few distinct workloads: different seeds (distinct clusterings),
	// K values, and the distinct-items path.
	type workload struct {
		q      query.Query
		params Params
	}
	var workloads []workload
	for seed := int64(0); seed < 4; seed++ {
		p := DefaultParams(4)
		p.Seed = seed
		workloads = append(workloads, workload{query.Default(), p})
	}
	pd := DefaultParams(3)
	pd.DistinctItems = true
	workloads = append(workloads, workload{query.Default(), pd})
	restOnly := query.MustNew(0, 0, 3, 0, query.Default().Budget)
	workloads = append(workloads, workload{restOnly, DefaultParams(3)})
	// A package large enough to take buildAll's goroutine-per-centroid
	// path (K ≥ parallelCIThreshold) — must be bit-identical too.
	workloads = append(workloads, workload{query.Default(), DefaultParams(parallelCIThreshold + 1)})

	// Sequential ground truth on a fresh engine.
	seq := make([]string, len(workloads))
	fresh := engine(t)
	for i, wl := range workloads {
		tp, err := fresh.Build(gp, wl.q, wl.params)
		if err != nil {
			t.Fatal(err)
		}
		seq[i] = packageFingerprint(tp)
	}

	const goroutines = 16
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds*len(workloads))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Stagger which workload each goroutine starts with so the
				// same key is hit concurrently from many goroutines.
				for off := 0; off < len(workloads); off++ {
					i := (g + off) % len(workloads)
					tp, err := e.Build(gp, workloads[i].q, workloads[i].params)
					if err != nil {
						errs <- err
						return
					}
					if got := packageFingerprint(tp); got != seq[i] {
						errs <- fmt.Errorf("workload %d: concurrent build differs from sequential:\n%s\nvs\n%s", i, got, seq[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The singleflight contract: with 16 goroutines × 3 rounds asking for
	// the same clusterings, each distinct clustering computed exactly once.
	// Distinct keys here: 4 seeds × (K=4) on the default mask, K=3 on the
	// default mask, K=3 on the rest-only mask, and the large-K package.
	const wantDistinct = 7
	if got := e.CacheMisses(); got != wantDistinct {
		t.Fatalf("cache misses = %d, want %d (each distinct clustering computed exactly once)", got, wantDistinct)
	}
	if got := e.CacheSize(); got != wantDistinct {
		t.Fatalf("cache size = %d, want %d", got, wantDistinct)
	}
}

// TestCatsMaskEncoding pins the documented mask encoding: bit c set iff
// category c is requested, distinct masks for distinct category sets.
func TestCatsMaskEncoding(t *testing.T) {
	def, err := catsMask(query.Default())
	if err != nil {
		t.Fatal(err)
	}
	if def != 0b1111 {
		t.Fatalf("default query mask = %#b, want 0b1111", def)
	}
	restOnly, err := catsMask(query.MustNew(0, 0, 3, 0, 100))
	if err != nil {
		t.Fatal(err)
	}
	if restOnly != 0b0100 {
		t.Fatalf("rest-only mask = %#b, want 0b0100", restOnly)
	}
	if def == restOnly {
		t.Fatal("distinct category sets must not collide")
	}
}

// TestClusterCachePanicSafety verifies a panicking computation cannot
// poison the cache: waiters are woken with an error (not blocked forever),
// the entry is evicted so later calls retry, and the panic propagates to
// the computing goroutine.
func TestClusterCachePanicSafety(t *testing.T) {
	cc := newClusterCache(DefaultCacheCap)
	key := clusterKey{k: 3, m: 2, iters: 10, seed: 1, catsMask: 1}

	computing := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the computing goroutine")
			}
		}()
		cc.getOrCompute(key, func() (*fuzzy.Result, []geo.Point, error) {
			close(computing)
			<-release
			panic("boom")
		})
	}()

	// Pin the in-flight entry while the computation is live: this is what
	// any waiter blocks on inside getOrCompute.
	<-computing
	sh := &cc.shards[key.shard()]
	sh.mu.RLock()
	e := sh.entries[key]
	sh.mu.RUnlock()
	if e == nil {
		t.Fatal("no in-flight entry while compute is running")
	}
	// A concurrent waiter goes through the public path. Depending on
	// scheduling it either joins the panicking flight (and must get its
	// error) or arrives after eviction and starts a fresh, successful
	// flight — both are correct; blocking forever or a nil-error nil-result
	// are not.
	waiterDone := make(chan error, 1)
	go func() {
		res, _, err := cc.getOrCompute(key, func() (*fuzzy.Result, []geo.Point, error) {
			return &fuzzy.Result{}, nil, nil
		})
		if err == nil && res == nil {
			waiterDone <- fmt.Errorf("waiter got nil result and nil error")
			return
		}
		waiterDone <- nil
	}()
	close(release)
	wg.Wait()
	// The panicked flight's entry must be completed-with-error and evicted.
	<-e.ready // closed by the defer; the test hangs here if poisoning regressed
	if e.err == nil {
		t.Fatal("panicked entry woke waiters without an error")
	}
	if err := <-waiterDone; err != nil {
		t.Fatal(err)
	}
	// The panicked entry is gone; the slot is either empty or holds the
	// waiter's fresh successful flight.
	sh.mu.RLock()
	cur := sh.entries[key]
	sh.mu.RUnlock()
	if cur == e {
		t.Fatal("panicked entry not evicted")
	}

	// The key is retryable afterwards.
	if _, _, err := cc.getOrCompute(key, func() (*fuzzy.Result, []geo.Point, error) {
		return &fuzzy.Result{}, nil, nil
	}); err != nil {
		t.Fatalf("retry after panic: %v", err)
	}
}

// TestClusterCacheEvictsFailures verifies failed computations are not
// memoized: a query with too few relevant POIs fails every time (rather
// than caching the error) and leaves no entry behind.
func TestClusterCacheEvictsFailures(t *testing.T) {
	e := engine(t)
	gp := randomGroupProfile(t, e, 42)
	q := query.MustNew(0, 0, 1, 0, query.Default().Budget)
	params := DefaultParams(10_000) // more clusters than POIs: clustering must fail
	for i := 0; i < 2; i++ {
		if _, err := e.Build(gp, q, params); err == nil {
			t.Fatal("expected failure for K larger than the city")
		}
	}
	if got := e.CacheSize(); got != 0 {
		t.Fatalf("failed clustering left %d cache entries", got)
	}
	if got := e.CacheMisses(); got != 2 {
		t.Fatalf("failed clustering should recompute every time: misses = %d, want 2", got)
	}
}
