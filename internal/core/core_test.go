package core

import (
	"math"
	"testing"

	"grouptravel/internal/consensus"
	"grouptravel/internal/dataset"
	"grouptravel/internal/metrics"
	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/query"
	"grouptravel/internal/rng"
	"grouptravel/internal/vec"
)

var cachedCity *dataset.City

func engine(t *testing.T) *Engine {
	t.Helper()
	if cachedCity == nil {
		c, err := dataset.Generate(dataset.TestSpec("CoreParis", 7))
		if err != nil {
			t.Fatal(err)
		}
		cachedCity = c
	}
	e, err := NewEngine(cachedCity)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func randomGroupProfile(t *testing.T, e *Engine, seed int64) *profile.Profile {
	t.Helper()
	src := rng.New(seed)
	members := make([]*profile.Profile, 5)
	for i := range members {
		members[i] = profile.GenerateRandomProfile(e.City().Schema, src)
	}
	g, err := profile.NewGroup(e.City().Schema, members)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := consensus.GroupProfile(g, consensus.VarianceDis)
	if err != nil {
		t.Fatal(err)
	}
	return gp
}

func TestBuildProducesKValidCIs(t *testing.T) {
	e := engine(t)
	gp := randomGroupProfile(t, e, 1)
	tp, err := e.Build(gp, query.Default(), DefaultParams(5))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(tp.CIs) != 5 {
		t.Fatalf("got %d CIs, want 5", len(tp.CIs))
	}
	if !tp.Valid() {
		t.Fatal("package contains invalid CIs")
	}
	for _, c := range tp.CIs {
		if len(c.Items) != query.Default().Size() {
			t.Fatalf("CI has %d items", len(c.Items))
		}
	}
}

func TestBuildNonPersonalized(t *testing.T) {
	e := engine(t)
	tp, err := e.Build(nil, query.Default(), DefaultParams(5))
	if err != nil {
		t.Fatalf("non-personalized Build: %v", err)
	}
	if !tp.Valid() {
		t.Fatal("non-personalized package invalid")
	}
	if p := metrics.Personalization(tp.CIs, nil); p != 0 {
		t.Fatalf("nil-group personalization = %v", p)
	}
}

func TestBuildDeterministic(t *testing.T) {
	e := engine(t)
	gp := randomGroupProfile(t, e, 2)
	tp1, err := e.Build(gp, query.Default(), DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	tp2, err := e.Build(gp, query.Default(), DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	for j := range tp1.CIs {
		if len(tp1.CIs[j].Items) != len(tp2.CIs[j].Items) {
			t.Fatal("non-deterministic CI sizes")
		}
		for i := range tp1.CIs[j].Items {
			if tp1.CIs[j].Items[i].ID != tp2.CIs[j].Items[i].ID {
				t.Fatal("non-deterministic item selection")
			}
		}
	}
}

func TestPersonalizationRaisesCosine(t *testing.T) {
	// A personalized package must match the group profile at least as well
	// as a non-personalized one — the core promise of Eq. 1's γ term.
	e := engine(t)
	gp := randomGroupProfile(t, e, 3)
	pers, err := e.Build(gp, query.Default(), DefaultParams(5))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := e.Build(nil, query.Default(), DefaultParams(5))
	if err != nil {
		t.Fatal(err)
	}
	pPers := metrics.Personalization(pers.CIs, gp)
	pPlain := metrics.Personalization(plain.CIs, gp)
	if pPers < pPlain {
		t.Fatalf("personalized package cosine %v below non-personalized %v", pPers, pPlain)
	}
}

func TestPersonalizationCohesivenessTension(t *testing.T) {
	// §4.3.3: "the more personalized a TP is, the less likely it is to be
	// cohesive". Crank γ and compare raw within-CI distances against γ=0.
	e := engine(t)
	gp := randomGroupProfile(t, e, 4)
	params := DefaultParams(5)
	params.Gamma = 0
	geoOnly, err := e.Build(gp, query.Default(), params)
	if err != nil {
		t.Fatal(err)
	}
	params.Gamma = 25 // personalization dominates geography
	persHeavy, err := e.Build(gp, query.Default(), params)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.RawDistanceSum(persHeavy.CIs) <= metrics.RawDistanceSum(geoOnly.CIs) {
		t.Fatalf("heavy personalization did not loosen CIs: %v vs %v",
			metrics.RawDistanceSum(persHeavy.CIs), metrics.RawDistanceSum(geoOnly.CIs))
	}
}

func TestCentroidsCoverCity(t *testing.T) {
	e := engine(t)
	tp, err := e.Build(nil, query.Default(), DefaultParams(5))
	if err != nil {
		t.Fatal(err)
	}
	// Representativity of the geographic build must comfortably exceed
	// that of a single-point collapse.
	rep := metrics.Representativity(tp.CIs)
	if rep <= 0 {
		t.Fatalf("representativity = %v", rep)
	}
	// CI centroids must lie within the city bounds.
	bounds := e.City().POIs.Bounds()
	for _, c := range tp.CIs {
		if !bounds.Contains(c.Centroid) {
			t.Fatalf("centroid %v outside city bounds", c.Centroid)
		}
	}
}

func TestBudgetedBuild(t *testing.T) {
	e := engine(t)
	gp := randomGroupProfile(t, e, 5)
	// A budget that forces repair but stays feasible.
	q := query.MustNew(1, 1, 1, 3, 8)
	tp, err := e.Build(gp, q, DefaultParams(3))
	if err != nil {
		t.Fatalf("budgeted build: %v", err)
	}
	for _, c := range tp.CIs {
		if c.Cost() > q.Budget {
			t.Fatalf("CI cost %v exceeds budget", c.Cost())
		}
	}
}

func TestBuildErrors(t *testing.T) {
	e := engine(t)
	if _, err := e.Build(nil, query.Query{}, DefaultParams(3)); err == nil {
		t.Fatal("invalid query accepted")
	}
	bad := DefaultParams(0)
	if _, err := e.Build(nil, query.Default(), bad); err == nil {
		t.Fatal("K=0 accepted")
	}
	bad = DefaultParams(3)
	bad.F = 1.5
	if _, err := e.Build(nil, query.Default(), bad); err == nil {
		t.Fatal("F=1.5 accepted")
	}
	bad = DefaultParams(3)
	bad.Alpha = -1
	if _, err := e.Build(nil, query.Default(), bad); err == nil {
		t.Fatal("negative alpha accepted")
	}
	huge := query.MustNew(1, 1, 1, 100000, math.Inf(1))
	if _, err := e.Build(nil, huge, DefaultParams(3)); err == nil {
		t.Fatal("infeasible query accepted")
	}
}

func TestNewEngineErrors(t *testing.T) {
	if _, err := NewEngine(nil); err == nil {
		t.Fatal("nil city accepted")
	}
}

func TestBuildRandomValidButUnoptimized(t *testing.T) {
	e := engine(t)
	tp, err := e.BuildRandom(query.Default(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Valid() {
		t.Fatal("random package must still satisfy the query counts")
	}
	// Random packages must be (much) less cohesive than optimized ones on
	// a clustered city.
	opt, err := e.Build(nil, query.Default(), DefaultParams(5))
	if err != nil {
		t.Fatal(err)
	}
	if metrics.RawDistanceSum(tp.CIs) <= metrics.RawDistanceSum(opt.CIs) {
		t.Fatalf("random package more compact than optimized: %v vs %v",
			metrics.RawDistanceSum(tp.CIs), metrics.RawDistanceSum(opt.CIs))
	}
}

func TestBuildRandomSeedVariation(t *testing.T) {
	e := engine(t)
	a, _ := e.BuildRandom(query.Default(), 2, 1)
	b, _ := e.BuildRandom(query.Default(), 2, 2)
	same := true
	for j := range a.CIs {
		for i := range a.CIs[j].Items {
			if a.CIs[j].Items[i].ID != b.CIs[j].Items[i].ID {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical random packages")
	}
}

func TestBuildHoneypotInvalid(t *testing.T) {
	e := engine(t)
	tp, err := e.BuildHoneypot(query.Default(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Valid() {
		t.Fatal("honeypot package must be invalid — it filters careless raters")
	}
}

func TestObjectiveValuePositive(t *testing.T) {
	e := engine(t)
	gp := randomGroupProfile(t, e, 6)
	tp, err := e.Build(gp, query.Default(), DefaultParams(5))
	if err != nil {
		t.Fatal(err)
	}
	if tp.ObjVal <= 0 || math.IsNaN(tp.ObjVal) {
		t.Fatalf("objective = %v", tp.ObjVal)
	}
}

func TestGammaZeroEqualsNilGroup(t *testing.T) {
	// Building with γ=0 and a profile must select the same items as
	// building with no profile at all.
	e := engine(t)
	gp := randomGroupProfile(t, e, 8)
	params := DefaultParams(4)
	params.Gamma = 0
	a, err := e.Build(gp, query.Default(), params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Build(nil, query.Default(), params)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.CIs {
		for i := range a.CIs[j].Items {
			if a.CIs[j].Items[i].ID != b.CIs[j].Items[i].ID {
				t.Fatal("γ=0 build differs from nil-group build")
			}
		}
	}
}

func TestMeasureOnPackage(t *testing.T) {
	e := engine(t)
	gp := randomGroupProfile(t, e, 9)
	tp, err := e.Build(gp, query.Default(), DefaultParams(5))
	if err != nil {
		t.Fatal(err)
	}
	d := tp.Measure()
	if d.Representativity <= 0 || d.RawDistance < 0 || d.Personalization <= 0 {
		t.Fatalf("suspicious dimensions: %+v", d)
	}
}

func TestRefineRoundsZeroStillValid(t *testing.T) {
	e := engine(t)
	params := DefaultParams(4)
	params.RefineRounds = 0
	tp, err := e.Build(nil, query.Default(), params)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Valid() {
		t.Fatal("zero-refine package invalid")
	}
}

func TestItemsMayRepeatAcrossCIsButNotWithin(t *testing.T) {
	// Fuzzy clustering explicitly allows one POI in several CIs (§3.2 —
	// the Louvre example); within a CI, items are a set.
	e := engine(t)
	gp := randomGroupProfile(t, e, 10)
	params := DefaultParams(5)
	params.Gamma = 25 // encourage cross-CI repetition of best matches
	tp, err := e.Build(gp, query.Default(), params)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tp.CIs {
		seen := map[int]bool{}
		for _, it := range c.Items {
			if seen[it.ID] {
				t.Fatalf("POI %d twice within one CI", it.ID)
			}
			seen[it.ID] = true
		}
	}
	// Cross-CI repetition should actually occur under heavy personalization.
	counts := map[int]int{}
	for _, c := range tp.CIs {
		for _, it := range c.Items {
			counts[it.ID]++
		}
	}
	repeated := 0
	for _, n := range counts {
		if n > 1 {
			repeated++
		}
	}
	if repeated == 0 {
		t.Log("note: no POI repeated across CIs in this configuration (allowed, not required)")
	}
}

var _ = vec.Vector{}
var _ = poi.Acco
