package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"grouptravel/internal/fuzzy"
	"grouptravel/internal/geo"
	"grouptravel/internal/poi"
	"grouptravel/internal/query"
)

// maskBits is the capacity of clusterKey.catsMask: category indices must be
// < maskBits to be encodable. The compile-time guard below breaks the build
// if poi.NumCategories ever outgrows the mask, and catsMask bounds-checks at
// runtime as a second line of defense, so distinct queries can never
// silently collide on one cache key.
const maskBits = 32

var _ [maskBits - poi.NumCategories]struct{}

// clusterKey identifies a memoizable clustering run: the clustering
// parameters plus the set of POI categories the query draws points from.
type clusterKey struct {
	k        int
	m        float64
	iters    int
	seed     int64
	catsMask uint32 // bit c set when the query requests category c (see catsMask)
}

// shard maps the key onto a cache shard with a cheap mix hash.
func (k clusterKey) shard() int {
	h := uint64(k.k) * 0x9e3779b97f4a7c15
	h ^= uint64(k.seed) * 0xbf58476d1ce4e5b9
	h ^= uint64(k.iters) * 0x94d049bb133111eb
	h ^= math.Float64bits(k.m)
	h ^= uint64(k.catsMask) << 17
	h ^= h >> 33
	return int(h % cacheShards)
}

// catsMask encodes which categories the query requests as a bitmask: bit c
// is set iff q.Counts[c] > 0. Category indices ≥ maskBits are rejected
// rather than wrapped, so two different queries can never share a key.
func catsMask(q query.Query) (uint32, error) {
	var mask uint32
	for c, n := range q.Counts {
		if n == 0 {
			continue
		}
		if c >= maskBits {
			return 0, fmt.Errorf("core: category index %d does not fit the %d-bit cluster-cache key", c, maskBits)
		}
		mask |= 1 << uint(c)
	}
	return mask, nil
}

// cacheShards keeps unrelated keys on unrelated mutexes so concurrent
// Builds with different parameters rarely contend.
const cacheShards = 16

// DefaultCacheCap bounds the cluster cache of a fresh engine. The paper
// workloads use at most 16 distinct clusterings (one per seed in Table 2),
// so the default keeps them fully memoized with headroom, while a
// long-lived server facing adversarial parameter diversity stays bounded.
// SetCacheCap overrides it; <= 0 means unbounded.
const DefaultCacheCap = 64

// clusterEntry is one memoized clustering run. ready is closed once res,
// pts and err are final; waiters block on it instead of recomputing.
// lastUse is a logical timestamp from the cache's clock, bumped on every
// hit, that orders entries for LRU eviction.
type clusterEntry struct {
	ready   chan struct{}
	res     *fuzzy.Result
	pts     []geo.Point
	err     error
	lastUse atomic.Int64
}

// computing reports whether the entry's computation is still in flight.
// In-flight entries are never evicted: waiters hold a pointer to them and
// expect ready to close with a result.
func (e *clusterEntry) computing() bool {
	select {
	case <-e.ready:
		return false
	default:
		return true
	}
}

type cacheShard struct {
	mu      sync.RWMutex
	entries map[clusterKey]*clusterEntry
}

// clusterCache memoizes fuzzy clustering runs. It is sharded (16 ways, by
// key hash) and singleflight-guarded: when n goroutines ask for the same
// key at once, exactly one computes while the rest block on the entry's
// ready channel and then share the result. Failed computations are evicted
// so a later call with the same key can retry.
//
// The cache is bounded: once the number of memoized entries exceeds cap,
// the least-recently-used completed entry is evicted (in-flight entries are
// never victims). Eviction only changes what is memoized, never what a
// Build returns — an evicted clustering is simply recomputed on next use.
type clusterCache struct {
	shards    [cacheShards]cacheShard
	misses    atomic.Int64
	evictions atomic.Int64
	clock     atomic.Int64 // logical time for LRU ordering
	cap       atomic.Int64 // max memoized entries; <= 0 means unbounded
}

func newClusterCache(capacity int) *clusterCache {
	cc := &clusterCache{}
	for i := range cc.shards {
		cc.shards[i].entries = make(map[clusterKey]*clusterEntry)
	}
	cc.cap.Store(int64(capacity))
	return cc
}

// getOrCompute returns the memoized clustering for key, running compute at
// most once per key no matter how many goroutines arrive concurrently.
func (cc *clusterCache) getOrCompute(key clusterKey, compute func() (*fuzzy.Result, []geo.Point, error)) (*fuzzy.Result, []geo.Point, error) {
	sh := &cc.shards[key.shard()]
	sh.mu.RLock()
	e, ok := sh.entries[key]
	sh.mu.RUnlock()
	if !ok {
		sh.mu.Lock()
		e, ok = sh.entries[key]
		if !ok {
			e = &clusterEntry{ready: make(chan struct{})}
			e.lastUse.Store(cc.clock.Add(1))
			sh.entries[key] = e
			sh.mu.Unlock()
			cc.misses.Add(1)
			// The cleanup runs in a defer so that a panicking compute (like
			// a failing one) evicts the entry and wakes waiters with an
			// error instead of leaving them blocked on ready forever; the
			// panic then propagates to this caller.
			defer func() {
				if e.res == nil && e.err == nil {
					e.err = fmt.Errorf("core: clustering computation for %+v panicked", key)
				}
				if e.err != nil {
					sh.mu.Lock()
					delete(sh.entries, key)
					sh.mu.Unlock()
				}
				close(e.ready)
				if e.err == nil {
					// Completion counts as a use: without this bump a
					// long compute (during which hits advanced the clock)
					// would make the just-finished entry the LRU victim
					// of its own eviction pass, and a regularly-requested
					// key could thrash forever at cap.
					e.lastUse.Store(cc.clock.Add(1))
					cc.evictToCap()
				}
			}()
			e.res, e.pts, e.err = compute()
			return e.res, e.pts, e.err
		}
		sh.mu.Unlock()
	}
	e.lastUse.Store(cc.clock.Add(1))
	<-e.ready
	return e.res, e.pts, e.err
}

// evictToCap removes least-recently-used completed entries until the cache
// fits its cap again. It runs on the inserting goroutine after a successful
// compute — by then the clustering itself dominated the cost, so the scan
// over at most cap+inflight entries is noise. Only one shard lock is held
// at a time, so eviction never deadlocks with lookups.
func (cc *clusterCache) evictToCap() {
	capacity := cc.cap.Load()
	if capacity <= 0 {
		return
	}
	// Only completed entries count against the cap: in-flight computes are
	// not yet memoized results, and counting them would make concurrent
	// distinct builds near the cap evict each other's fresh completions.
	for cc.completedLen() > int(capacity) {
		var (
			victimShard *cacheShard
			victimKey   clusterKey
			victimUse   int64 = math.MaxInt64
		)
		for i := range cc.shards {
			sh := &cc.shards[i]
			sh.mu.RLock()
			for k, e := range sh.entries {
				if e.computing() {
					continue // singleflight waiters depend on this entry
				}
				if u := e.lastUse.Load(); u < victimUse {
					victimUse, victimKey, victimShard = u, k, sh
				}
			}
			sh.mu.RUnlock()
		}
		if victimShard == nil {
			return // everything still computing; nothing evictable yet
		}
		victimShard.mu.Lock()
		// Re-check under the write lock: a hit may have touched the entry
		// (or another evictor removed it) between scan and delete; if so,
		// skip and re-scan rather than evicting a now-hot entry.
		if e, ok := victimShard.entries[victimKey]; ok && e.lastUse.Load() == victimUse {
			delete(victimShard.entries, victimKey)
			cc.evictions.Add(1)
		}
		victimShard.mu.Unlock()
	}
}

// setCap updates the capacity and immediately sheds entries beyond it.
func (cc *clusterCache) setCap(capacity int) {
	cc.cap.Store(int64(capacity))
	cc.evictToCap()
}

// Misses returns how many computations ran (cache misses, including failed
// ones that were evicted).
func (cc *clusterCache) Misses() int64 { return cc.misses.Load() }

// Evictions returns how many completed entries were evicted to honor cap.
func (cc *clusterCache) Evictions() int64 { return cc.evictions.Load() }

// len returns the number of entries across all shards, in-flight included.
func (cc *clusterCache) len() int {
	n := 0
	for i := range cc.shards {
		sh := &cc.shards[i]
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// completedLen counts only completed (memoized) entries — the population
// the cap governs.
func (cc *clusterCache) completedLen() int {
	n := 0
	for i := range cc.shards {
		sh := &cc.shards[i]
		sh.mu.RLock()
		for _, e := range sh.entries {
			if !e.computing() {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// CacheMisses returns how many distinct clusterings the engine has computed
// so far — concurrent Builds sharing a key count as one. Experiments use it
// to verify the cache-sharing contract (each clustering computed exactly
// once); production deployments can export it as a metric.
func (e *Engine) CacheMisses() int64 { return e.cache.Misses() }

// CacheSize returns the number of clusterings currently memoized.
func (e *Engine) CacheSize() int { return e.cache.len() }

// CacheEvictions returns how many memoized clusterings were dropped to keep
// the cache under its cap.
func (e *Engine) CacheEvictions() int64 { return e.cache.Evictions() }

// SetCacheCap bounds the cluster cache at capacity entries (<= 0 removes
// the bound). Safe to call concurrently with Builds; excess entries are
// evicted immediately, least recently used first.
func (e *Engine) SetCacheCap(capacity int) { e.cache.setCap(capacity) }

// CacheStats is a point-in-time snapshot of the cluster cache, exported by
// the server's health endpoint.
type CacheStats struct {
	Size      int   `json:"size"`
	Cap       int   `json:"cap"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// CacheStats returns the engine's current cache counters.
func (e *Engine) CacheStats() CacheStats {
	return CacheStats{
		Size:      e.cache.len(),
		Cap:       int(e.cache.cap.Load()),
		Misses:    e.cache.Misses(),
		Evictions: e.cache.Evictions(),
	}
}
