package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"grouptravel/internal/fuzzy"
	"grouptravel/internal/geo"
	"grouptravel/internal/poi"
	"grouptravel/internal/query"
)

// maskBits is the capacity of clusterKey.catsMask: category indices must be
// < maskBits to be encodable. The compile-time guard below breaks the build
// if poi.NumCategories ever outgrows the mask, and catsMask bounds-checks at
// runtime as a second line of defense, so distinct queries can never
// silently collide on one cache key.
const maskBits = 32

var _ [maskBits - poi.NumCategories]struct{}

// clusterKey identifies a memoizable clustering run: the clustering
// parameters plus the set of POI categories the query draws points from.
type clusterKey struct {
	k        int
	m        float64
	iters    int
	seed     int64
	catsMask uint32 // bit c set when the query requests category c (see catsMask)
}

// shard maps the key onto a cache shard with a cheap mix hash.
func (k clusterKey) shard() int {
	h := uint64(k.k) * 0x9e3779b97f4a7c15
	h ^= uint64(k.seed) * 0xbf58476d1ce4e5b9
	h ^= uint64(k.iters) * 0x94d049bb133111eb
	h ^= math.Float64bits(k.m)
	h ^= uint64(k.catsMask) << 17
	h ^= h >> 33
	return int(h % cacheShards)
}

// catsMask encodes which categories the query requests as a bitmask: bit c
// is set iff q.Counts[c] > 0. Category indices ≥ maskBits are rejected
// rather than wrapped, so two different queries can never share a key.
func catsMask(q query.Query) (uint32, error) {
	var mask uint32
	for c, n := range q.Counts {
		if n == 0 {
			continue
		}
		if c >= maskBits {
			return 0, fmt.Errorf("core: category index %d does not fit the %d-bit cluster-cache key", c, maskBits)
		}
		mask |= 1 << uint(c)
	}
	return mask, nil
}

// cacheShards keeps unrelated keys on unrelated mutexes so concurrent
// Builds with different parameters rarely contend.
const cacheShards = 16

// clusterEntry is one memoized clustering run. ready is closed once res,
// pts and err are final; waiters block on it instead of recomputing.
type clusterEntry struct {
	ready chan struct{}
	res   *fuzzy.Result
	pts   []geo.Point
	err   error
}

type cacheShard struct {
	mu      sync.RWMutex
	entries map[clusterKey]*clusterEntry
}

// clusterCache memoizes fuzzy clustering runs. It is sharded (16 ways, by
// key hash) and singleflight-guarded: when n goroutines ask for the same
// key at once, exactly one computes while the rest block on the entry's
// ready channel and then share the result. Failed computations are evicted
// so a later call with the same key can retry.
type clusterCache struct {
	shards [cacheShards]cacheShard
	misses atomic.Int64
}

func newClusterCache() *clusterCache {
	cc := &clusterCache{}
	for i := range cc.shards {
		cc.shards[i].entries = make(map[clusterKey]*clusterEntry)
	}
	return cc
}

// getOrCompute returns the memoized clustering for key, running compute at
// most once per key no matter how many goroutines arrive concurrently.
func (cc *clusterCache) getOrCompute(key clusterKey, compute func() (*fuzzy.Result, []geo.Point, error)) (*fuzzy.Result, []geo.Point, error) {
	sh := &cc.shards[key.shard()]
	sh.mu.RLock()
	e, ok := sh.entries[key]
	sh.mu.RUnlock()
	if !ok {
		sh.mu.Lock()
		e, ok = sh.entries[key]
		if !ok {
			e = &clusterEntry{ready: make(chan struct{})}
			sh.entries[key] = e
			sh.mu.Unlock()
			cc.misses.Add(1)
			// The cleanup runs in a defer so that a panicking compute (like
			// a failing one) evicts the entry and wakes waiters with an
			// error instead of leaving them blocked on ready forever; the
			// panic then propagates to this caller.
			defer func() {
				if e.res == nil && e.err == nil {
					e.err = fmt.Errorf("core: clustering computation for %+v panicked", key)
				}
				if e.err != nil {
					sh.mu.Lock()
					delete(sh.entries, key)
					sh.mu.Unlock()
				}
				close(e.ready)
			}()
			e.res, e.pts, e.err = compute()
			return e.res, e.pts, e.err
		}
		sh.mu.Unlock()
	}
	<-e.ready
	return e.res, e.pts, e.err
}

// Misses returns how many computations ran (cache misses, including failed
// ones that were evicted).
func (cc *clusterCache) Misses() int64 { return cc.misses.Load() }

// len returns the number of memoized entries across all shards.
func (cc *clusterCache) len() int {
	n := 0
	for i := range cc.shards {
		sh := &cc.shards[i]
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// CacheMisses returns how many distinct clusterings the engine has computed
// so far — concurrent Builds sharing a key count as one. Experiments use it
// to verify the cache-sharing contract (each clustering computed exactly
// once); production deployments can export it as a metric.
func (e *Engine) CacheMisses() int64 { return e.cache.Misses() }

// CacheSize returns the number of clusterings currently memoized.
func (e *Engine) CacheSize() int { return e.cache.len() }
