// Package core is the GroupTravel engine (§3 of the paper): it composes
// the fuzzy-clustering substrate, valid-CI construction and group profiles
// into personalized travel packages, optimizing Eq. 1:
//
//	argmax_{M,W}  α Σ_j Σ_i w_ij^f (1 − d(i,μ_j))
//	            + Σ_j max_{CI_j∈V} ( β Σ_{i∈CI_j} (1 − d(i,μ_j))
//	                               + γ Σ_{i∈CI_j} cos(®i, ®g) )
//	s.t. Σ_j w_ij = 1
//
// The first line positions k centroids that cover the city (representa-
// tivity); the inner max builds a valid, cohesive, personalized CI around
// each centroid. Following KFC [13], the engine alternates the two:
// cluster, build CIs, re-anchor centroids on their CIs, rebuild.
package core

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"grouptravel/internal/ci"
	"grouptravel/internal/dataset"
	"grouptravel/internal/fuzzy"
	"grouptravel/internal/geo"
	"grouptravel/internal/metrics"
	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/query"
	"grouptravel/internal/rng"
)

// Params are the tunables of Eq. 1 plus algorithm controls.
type Params struct {
	K     int     // number of CIs in the package (5 in all paper experiments)
	Alpha float64 // weight of the clustering (representativity) term
	Beta  float64 // weight of centroid proximity in CI construction (cohesiveness)
	Gamma float64 // weight of personalization in CI construction
	F     float64 // the paper's weighting exponent f < 1, used to report the Eq. 1 value
	M     float64 // FCM fuzzifier m > 1 driving the actual clustering (see package fuzzy)

	ClusterIters int   // fuzzy clustering iteration cap
	RefineRounds int   // cluster↔CI alternations after the initial pass
	Seed         int64 // deterministic clustering initialization

	// DistinctItems forbids any POI from appearing in more than one CI.
	// The paper deliberately allows repetition (§3.2: the hotel or the
	// Louvre may belong to several CIs — the reason fuzzy clustering was
	// chosen), so this is off by default; it exists for travelers who want
	// k genuinely different days and for the repetition ablation bench.
	DistinctItems bool
}

// DefaultParams mirrors the paper's synthetic setup with neutral weights:
// γ = 1 ("we always set γ = 1.0 for personalization"), α = β = 1.
func DefaultParams(k int) Params {
	return Params{
		K:            k,
		Alpha:        1,
		Beta:         1,
		Gamma:        1,
		F:            0.5,
		M:            2,
		ClusterIters: 60,
		RefineRounds: 2,
		Seed:         1,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.K < 1 {
		return fmt.Errorf("core: K = %d", p.K)
	}
	if p.Alpha < 0 || p.Beta < 0 || p.Gamma < 0 {
		return fmt.Errorf("core: negative objective weight (α=%v β=%v γ=%v)", p.Alpha, p.Beta, p.Gamma)
	}
	if p.F <= 0 || p.F >= 1 {
		return fmt.Errorf("core: need 0 < F < 1, got %v", p.F)
	}
	if p.M <= 1 {
		return fmt.Errorf("core: need fuzzifier M > 1, got %v", p.M)
	}
	if p.ClusterIters < 1 {
		return fmt.Errorf("core: ClusterIters = %d", p.ClusterIters)
	}
	if p.RefineRounds < 0 {
		return fmt.Errorf("core: RefineRounds = %d", p.RefineRounds)
	}
	return nil
}

// TravelPackage is the output of the engine: k valid Composite Items with
// the query and group profile they were built for, and the achieved Eq. 1
// objective value.
type TravelPackage struct {
	CIs    []*ci.CI
	Query  query.Query
	Group  *profile.Profile // nil for non-personalized packages
	Params Params
	ObjVal float64 // Eq. 1 value at the returned solution
	City   string
}

// Measure returns the package's raw optimization dimensions (§4.2).
func (tp *TravelPackage) Measure() metrics.Dimensions {
	return metrics.Measure(tp.CIs, tp.Group)
}

// Engine builds travel packages for one city.
//
// The fuzzy clustering step depends only on the city, the query's
// category mask and the clustering parameters — not on the group profile —
// so results are memoized: experiments that build thousands of packages
// over one city (Table 2 builds 2400) pay for each distinct clustering
// once. The memo is bounded (DefaultCacheCap entries, LRU-evicted; see
// SetCacheCap) so a long-lived server facing adversarial parameter
// diversity cannot grow it without limit.
//
// The Engine is safe for concurrent use: any number of goroutines may call
// Build (and the other Build* methods) on one Engine. The cluster memo is
// sharded and singleflight-guarded — concurrent Builds needing the same
// clustering block on a single computation and share its result, while
// Builds needing different clusterings proceed independently. Build is a
// deterministic function of its inputs, so a concurrent Build returns the
// same package the sequential path would.
type Engine struct {
	city   *dataset.City
	points []geo.Point // coordinates of all POIs, aligned with city.POIs.All()

	cache *clusterCache
}

// NewEngine prepares an engine over a city dataset.
func NewEngine(city *dataset.City) (*Engine, error) {
	if city == nil || city.POIs == nil {
		return nil, fmt.Errorf("core: nil city")
	}
	if city.POIs.Len() == 0 {
		return nil, fmt.Errorf("core: city %q has no POIs", city.Name)
	}
	e := &Engine{city: city, cache: newClusterCache(DefaultCacheCap)}
	for _, p := range city.POIs.All() {
		e.points = append(e.points, p.Coord)
	}
	return e, nil
}

// City returns the engine's city.
func (e *Engine) City() *dataset.City { return e.city }

// Build generates a personalized travel package for the group profile g
// (pass nil for a non-personalized package — equivalent to γ = 0 in the
// user study's NPTP baseline).
func (e *Engine) Build(g *profile.Profile, q query.Query, params Params) (*TravelPackage, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := q.Feasible(e.city.POIs); err != nil {
		return nil, err
	}

	// Cluster the POIs of the requested categories: the centroids must
	// cover the part of the city the query can actually use. The memo is
	// singleflight-guarded, so concurrent Builds wanting the same
	// clustering compute it exactly once and share the result.
	norm := e.city.POIs.Normalizer()
	mask, err := catsMask(q)
	if err != nil {
		return nil, err
	}
	key := clusterKey{k: params.K, m: params.M, iters: params.ClusterIters, seed: params.Seed, catsMask: mask}
	res, pts, err := e.cache.getOrCompute(key, func() (*fuzzy.Result, []geo.Point, error) {
		pts := e.relevantPoints(q)
		if len(pts) < params.K {
			return nil, nil, fmt.Errorf("core: %d relevant POIs for K = %d", len(pts), params.K)
		}
		fc := fuzzy.Config{
			K: params.K, M: params.M,
			MaxIters: params.ClusterIters, Tol: 1e-4, Seed: params.Seed,
		}
		res, err := fuzzy.Cluster(pts, norm, fc)
		if err != nil {
			return nil, nil, err
		}
		return res, pts, nil
	})
	if err != nil {
		return nil, err
	}

	builder := &ci.Builder{
		Coll:  e.city.POIs,
		Query: q,
		Group: g,
		Beta:  params.Beta,
		Gamma: params.Gamma,
		Norm:  norm,
	}
	cis, err := e.buildAll(builder, res.Centroids, params.DistinctItems)
	if err != nil {
		return nil, err
	}

	// KFC-style alternation: re-anchor each centroid on its CI's items and
	// rebuild. This is what couples personalization back into geography —
	// strongly personalized picks drag centroids together, reproducing the
	// paper's representativity/cohesiveness-vs-personalization tension.
	for round := 0; round < params.RefineRounds; round++ {
		centroids := make([]geo.Point, len(cis))
		for j, c := range cis {
			centroids[j] = c.Center()
		}
		next, err := e.buildAll(builder, centroids, params.DistinctItems)
		if err != nil {
			return nil, err
		}
		cis = next
	}

	// Diversity guard: refinement can drag two centroids into the same
	// neighborhood until their CIs coincide item-for-item. Individual POIs
	// may repeat across CIs (§3.2's Louvre example) but a fully duplicated
	// day is useless; rebuild duplicates around their original fuzzy
	// centroid, excluding the twin's items. If the city cannot support a
	// distinct CI there, the duplicate is kept rather than failing.
	seen := make(map[string]int, len(cis))
	for j, c := range cis {
		key := itemKey(c)
		prev, dup := seen[key]
		if !dup {
			seen[key] = j
			continue
		}
		exclude := make(map[int]bool, len(cis[prev].Items))
		for _, it := range cis[prev].Items {
			exclude[it.ID] = true
		}
		if rebuilt, err := builder.Build(res.Centroids[j], exclude); err == nil {
			cis[j] = rebuilt
		}
	}

	tp := &TravelPackage{
		CIs:    cis,
		Query:  q,
		Group:  g,
		Params: params,
		City:   e.city.Name,
	}
	tp.ObjVal = e.objective(tp, res, pts, norm, builder)
	return tp, nil
}

// itemKey canonicalizes a CI's item set for duplicate detection. The key is
// built with strconv.AppendInt on a stack buffer: the fmt.Fprintf loop it
// replaces showed up at ~13% of the build path's allocations.
func itemKey(c *ci.CI) string {
	ids := make([]int, len(c.Items))
	for i, it := range c.Items {
		ids[i] = it.ID
	}
	sort.Ints(ids)
	buf := make([]byte, 0, 64)
	for _, id := range ids {
		buf = strconv.AppendInt(buf, int64(id), 10)
		buf = append(buf, ',')
	}
	return string(buf)
}

// parallelCIThreshold is the package size at which buildAll fans out one
// goroutine per centroid. At the paper's K = 5 a single CI build is ~20µs:
// fanning out mostly adds scheduling overhead, and — more important for a
// loaded server — it lets ONE request monopolize cores that concurrent
// requests (the engine's primary scaling axis) would use productively.
// Large packages are where per-centroid work dominates and intra-build
// parallelism pays; they fan out.
const parallelCIThreshold = 8

// buildAll constructs one CI per centroid.
//
// Without DistinctItems the CIs are independent functions of (builder,
// centroid) — embarrassingly parallel — so large packages build each
// centroid's CI on its own goroutine (see parallelCIThreshold); results
// land at their centroid's index, making the output identical to the
// sequential order. With distinct set, POIs used by earlier CIs are
// excluded from later ones: CI j's candidate pool depends on what CIs
// 0..j−1 took, an inherently ordered greedy allocation, so that path stays
// sequential (parallelizing it would change which POIs each CI gets).
func (e *Engine) buildAll(builder *ci.Builder, centroids []geo.Point, distinct bool) ([]*ci.CI, error) {
	out := make([]*ci.CI, len(centroids))
	if distinct {
		used := make(map[int]bool)
		for j, mu := range centroids {
			c, err := builder.Build(mu, used)
			if err != nil {
				return nil, fmt.Errorf("core: CI %d: %w", j, err)
			}
			out[j] = c
			for _, it := range c.Items {
				used[it.ID] = true
			}
		}
		return out, nil
	}
	if len(centroids) < parallelCIThreshold {
		for j, mu := range centroids {
			c, err := builder.Build(mu, nil)
			if err != nil {
				return nil, fmt.Errorf("core: CI %d: %w", j, err)
			}
			out[j] = c
		}
		return out, nil
	}
	errs := make([]error, len(centroids))
	var wg sync.WaitGroup
	for j, mu := range centroids {
		wg.Add(1)
		go func(j int, mu geo.Point) {
			defer wg.Done()
			c, err := builder.Build(mu, nil)
			if err != nil {
				errs[j] = fmt.Errorf("core: CI %d: %w", j, err)
				return
			}
			out[j] = c
		}(j, mu)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// relevantPoints returns the coordinates of POIs whose category the query
// requests.
func (e *Engine) relevantPoints(q query.Query) []geo.Point {
	var pts []geo.Point
	for _, p := range e.city.POIs.All() {
		if q.Counts[p.Cat] > 0 {
			pts = append(pts, p.Coord)
		}
	}
	return pts
}

// objective evaluates Eq. 1 at the returned solution: α times the
// clustering term plus the per-CI construction terms.
func (e *Engine) objective(tp *TravelPackage, res *fuzzy.Result, pts []geo.Point, norm geo.Normalizer, builder *ci.Builder) float64 {
	total := tp.Params.Alpha * fuzzy.Eq1Value(pts, res, norm, tp.Params.F)
	for _, c := range tp.CIs {
		total += builder.ObjectiveValue(c)
	}
	return total
}

// BuildRandom generates the user study's random baseline: k CIs whose
// items are drawn uniformly per category with no optimization at all
// (§4.4.3's "random TP"). The CIs satisfy the query's counts so the
// package is comparable; it is simply unoptimized.
func (e *Engine) BuildRandom(q query.Query, k int, seed int64) (*TravelPackage, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := q.Feasible(e.city.POIs); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k = %d", k)
	}
	src := rng.New(seed)
	cis := make([]*ci.CI, k)
	for j := 0; j < k; j++ {
		var items []*poi.POI
		for _, cat := range poi.Categories {
			pool := e.city.POIs.ByCategory(cat)
			perm := src.Perm(len(pool))
			for i := 0; i < q.Counts[cat]; i++ {
				items = append(items, pool[perm[i]])
			}
		}
		c := &ci.CI{Items: items}
		c.Centroid = c.Center()
		cis[j] = c
	}
	return &TravelPackage{CIs: cis, Query: q, Params: Params{K: k}, City: e.city.Name}, nil
}

// BuildHoneypot generates the deliberately invalid random package the user
// study injects to filter careless participants ("a random TP which
// included invalid CIs", §4.4.3): CIs violate the query's category counts.
func (e *Engine) BuildHoneypot(q query.Query, k int, seed int64) (*TravelPackage, error) {
	tp, err := e.BuildRandom(q, k, seed)
	if err != nil {
		return nil, err
	}
	// Invalidate every CI by dropping its first item (count mismatch).
	for _, c := range tp.CIs {
		if len(c.Items) > 1 {
			c.Items = c.Items[1:]
		}
	}
	return tp, nil
}

// Valid reports whether every CI in the package satisfies the query.
func (tp *TravelPackage) Valid() bool {
	for _, c := range tp.CIs {
		if err := tp.Query.CheckCI(c.Items); err != nil {
			return false
		}
	}
	return true
}
