// Package rng provides deterministic, splittable random number utilities
// used throughout the GroupTravel reproduction.
//
// All experiments in the paper are re-run many times (100 groups per cell in
// Table 2, 2400 group profiles in total); to make every table reproducible
// bit-for-bit we never use the global math/rand source. Instead each
// experiment derives independent child sources from a root seed via Split,
// so adding a new experiment never perturbs the random stream of an
// existing one.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source is a deterministic random source with convenience helpers.
// It wraps math/rand.Rand seeded explicitly; it is NOT safe for concurrent
// use — derive one Source per goroutine with Split.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with the given seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child source from this source and a label.
// The child stream depends only on (parent seed progression, label), so two
// Splits with different labels are decorrelated, and repeated runs are
// reproducible.
func (s *Source) Split(label string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	mix := int64(h.Sum64())
	return New(s.r.Int63() ^ mix)
}

// Float64 returns a uniform value in [0,1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform value in [0,n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (s *Source) Int63() int64 { return s.r.Int63() }

// NormFloat64 returns a standard normal variate.
func (s *Source) NormFloat64() float64 { return s.r.NormFloat64() }

// Range returns a uniform value in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle shuffles n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.r.Float64() < p }

// Dirichlet draws from a symmetric Dirichlet distribution with concentration
// alpha over dim components. Used to generate LDA-like topic mixtures and
// synthetic preference vectors.
func (s *Source) Dirichlet(alpha float64, dim int) []float64 {
	v := make([]float64, dim)
	sum := 0.0
	for i := range v {
		v[i] = s.Gamma(alpha)
		sum += v[i]
	}
	if sum == 0 {
		// Degenerate draw (possible for tiny alpha): fall back to uniform.
		for i := range v {
			v[i] = 1 / float64(dim)
		}
		return v
	}
	for i := range v {
		v[i] /= sum
	}
	return v
}

// Gamma draws from a Gamma(shape, 1) distribution using the
// Marsaglia–Tsang method (with Ahrens–Dieter boosting for shape < 1).
func (s *Source) Gamma(shape float64) float64 {
	if shape <= 0 {
		return 0
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := s.r.Float64()
		for u == 0 {
			u = s.r.Float64()
		}
		return s.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / (3.0 * math.Sqrt(d))
	for {
		x := s.r.NormFloat64()
		v := 1.0 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.r.Float64()
		if u < 1.0-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1.0-v+math.Log(v)) {
			return d * v
		}
	}
}

// Zipf returns a sampler over [0, n) with Zipfian exponent sExp >= 1.01.
// Used to model POI check-in popularity (a handful of famous POIs absorb
// most check-ins, matching real Foursquare distributions).
func (s *Source) Zipf(sExp float64, n uint64) func() uint64 {
	z := rand.NewZipf(s.r, sExp, 1, n-1)
	return z.Uint64
}

// WeightedIndex samples an index proportionally to weights. Weights must be
// non-negative; if all are zero the index is uniform.
func (s *Source) WeightedIndex(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return s.Intn(len(weights))
	}
	t := s.r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if t < acc {
			return i
		}
	}
	return len(weights) - 1
}
