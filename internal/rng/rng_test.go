package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split("table2")
	root2 := New(7)
	_ = root2.Split("table2")
	c3 := root2.Split("table3")
	// Different labels from the same parent state produce different streams.
	same := 0
	for i := 0; i < 50; i++ {
		if c1.Float64() == c3.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("split streams look correlated: %d/50 equal draws", same)
	}
}

func TestSplitReproducible(t *testing.T) {
	x := New(99).Split("exp").Float64()
	y := New(99).Split("exp").Float64()
	if x != y {
		t.Fatalf("Split not reproducible: %v vs %v", x, y)
	}
}

func TestRange(t *testing.T) {
	s := New(1)
	for i := 0; i < 1000; i++ {
		v := s.Range(2.5, 3.5)
		if v < 2.5 || v >= 3.5 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	s := New(3)
	for _, alpha := range []float64{0.05, 0.5, 1, 10} {
		for trial := 0; trial < 20; trial++ {
			v := s.Dirichlet(alpha, 8)
			sum := 0.0
			for _, x := range v {
				if x < 0 {
					t.Fatalf("negative Dirichlet component %v (alpha=%v)", x, alpha)
				}
				sum += x
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("Dirichlet sums to %v, want 1 (alpha=%v)", sum, alpha)
			}
		}
	}
}

func TestDirichletConcentration(t *testing.T) {
	s := New(5)
	// Small alpha should produce peakier draws than large alpha, on average.
	peak := func(alpha float64) float64 {
		tot := 0.0
		for i := 0; i < 200; i++ {
			v := s.Dirichlet(alpha, 10)
			m := 0.0
			for _, x := range v {
				m = math.Max(m, x)
			}
			tot += m
		}
		return tot / 200
	}
	sparse, dense := peak(0.1), peak(10)
	if sparse <= dense {
		t.Fatalf("alpha=0.1 max component %v should exceed alpha=10 max %v", sparse, dense)
	}
}

func TestGammaMoments(t *testing.T) {
	s := New(11)
	for _, shape := range []float64{0.5, 1, 2, 5} {
		n := 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += s.Gamma(shape)
		}
		mean := sum / float64(n)
		// Gamma(shape,1) has mean = shape.
		if math.Abs(mean-shape) > 0.15*shape+0.05 {
			t.Fatalf("Gamma(%v) sample mean %v too far from %v", shape, mean, shape)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(13)
	z := s.Zipf(1.3, 1000)
	counts := make(map[uint64]int)
	for i := 0; i < 10000; i++ {
		counts[z()]++
	}
	if counts[0] < counts[500] {
		t.Fatalf("Zipf not skewed: rank0=%d rank500=%d", counts[0], counts[500])
	}
}

func TestWeightedIndex(t *testing.T) {
	s := New(17)
	w := []float64{0, 0, 10, 0}
	for i := 0; i < 100; i++ {
		if got := s.WeightedIndex(w); got != 2 {
			t.Fatalf("WeightedIndex picked %d with all mass on 2", got)
		}
	}
	// All-zero weights should still return a legal index.
	zero := []float64{0, 0, 0}
	if got := s.WeightedIndex(zero); got < 0 || got > 2 {
		t.Fatalf("WeightedIndex out of range on zero weights: %d", got)
	}
}

func TestWeightedIndexProportions(t *testing.T) {
	s := New(19)
	w := []float64{1, 3}
	hits := 0
	n := 30000
	for i := 0; i < n; i++ {
		if s.WeightedIndex(w) == 1 {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("weight-3 index frequency %v, want ~0.75", frac)
	}
}

func TestDirichletPropertyQuick(t *testing.T) {
	s := New(23)
	f := func(dimSeed uint8) bool {
		dim := int(dimSeed%16) + 2
		v := s.Dirichlet(1.0, dim)
		sum := 0.0
		for _, x := range v {
			if x < 0 || x > 1 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(29)
	hits := 0
	for i := 0; i < 20000; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / 20000
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) frequency %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(31)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm invalid at value %d", v)
		}
		seen[v] = true
	}
}
