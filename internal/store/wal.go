package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"grouptravel/internal/ci"
	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
	"grouptravel/internal/interact"
	"grouptravel/internal/profile"
	"grouptravel/internal/telemetry"
)

// This file is the write-ahead half of city persistence. A city's durable
// state is snapshot + log suffix: WriteSnapshot (state.go) captures the
// full state at compaction time, and between compactions every mutation
// appends exactly one typed record here, so mutation cost is O(1 record)
// instead of O(city state). Recovery replays the snapshot and then the
// log; a torn tail (partial frame, CRC mismatch, or a record the state
// cannot apply) is truncated at the last valid record rather than
// bricking the city. The record stream is also the replication hook: a
// follower can tail frames, which it could never do with atomic renames.
//
// # On-disk format
//
//	<8-byte magic "GTWALv1\n">
//	repeated records:
//	  <uint32 LE payload length> <uint32 LE CRC32-Castagnoli(payload)> <payload>
//
// Payloads are JSON (walRecordJSON) — self-describing and debuggable with
// standard tools, while the binary framing gives cheap, reliable tear
// detection. Record ordering is the commit order; ids inside records are
// the server's allocations, so replay never re-allocates.

// walMagic versions the file; a reader rejecting it treats the whole log
// as corrupt (quarantine), never as silently empty.
var walMagic = [8]byte{'G', 'T', 'W', 'A', 'L', 'v', '1', '\n'}

const walHeaderLen = int64(len(walMagic))

// walFrameLen is the per-record framing overhead: length + CRC.
const walFrameLen = 8

// maxWALRecord bounds one record's payload so a torn or hostile length
// prefix cannot force a huge allocation during replay.
const maxWALRecord = 16 << 20

// walCRC is CRC32-Castagnoli — hardware-accelerated on amd64/arm64.
var walCRC = crc32.MakeTable(crc32.Castagnoli)

// Record kinds. Each mirrors one server mutation.
const (
	walOpGroupCreate  = "groupCreate"  // a group registered
	walOpPackageBuild = "packageBuild" // a package built for a group
	walOpCustomOp     = "customOp"     // one §3.3 customization op applied
	walOpRefine       = "refine"       // a package rebuilt from a refined profile
)

// walRecordJSON is the on-disk payload of one record. Exactly the fields
// for its kind are set; POIs are referenced by id like every store format.
type walRecordJSON struct {
	Op string `json:"op"`

	// Seq is the record's log sequence number, stamped by Append in
	// commit order and strictly increasing across segment rotations and
	// compactions. A snapshot records the highest Seq it folds in
	// (ServerState.WALSeq), so replay skips records the snapshot already
	// contains — without it, a crash between a compaction's snapshot
	// write and its log truncation would double-apply customOp records
	// (doubling /refine's op log).
	Seq int64 `json:"seq,omitempty"`

	// groupCreate / packageBuild / refine: the allocated id.
	ID int `json:"id,omitempty"`

	// groupCreate.
	Group *groupJSON `json:"group,omitempty"`

	// packageBuild / refine.
	GroupID int          `json:"groupId,omitempty"`
	Method  string       `json:"method,omitempty"`
	Package *packageJSON `json:"package,omitempty"`

	// refine provenance (informational; replay treats refine as a build).
	Source   int    `json:"source,omitempty"`
	Strategy string `json:"strategy,omitempty"`

	// customOp: the logged op plus the affected CI's post-op state. The
	// CI state makes replay exact and deterministic without re-running
	// operator logic (REPLACE's nearest-neighbor pick and GENERATE's CI
	// build depend on code, not the log).
	PackageID int     `json:"packageId,omitempty"`
	Change    *opJSON `json:"change,omitempty"`
	After     *ciJSON `json:"after,omitempty"`
}

// WALRecord is one typed, encodable log record. Constructors capture all
// mutable state (POI ids, items) eagerly, so a record stays valid after
// the caller releases its entity locks.
type WALRecord struct{ rec walRecordJSON }

// Kind returns the record's operation name (groupCreate, packageBuild,
// customOp, refine).
func (r WALRecord) Kind() string { return r.rec.Op }

// GroupCreateRecord logs a group registration under the allocated id.
func GroupCreateRecord(id int, g *profile.Group) WALRecord {
	gj := groupToJSON(g)
	return WALRecord{rec: walRecordJSON{Op: walOpGroupCreate, ID: id, Group: &gj}}
}

// PackageBuildRecord logs a built package under the allocated id.
func PackageBuildRecord(id, groupID int, method string, tp *core.TravelPackage) WALRecord {
	pj := packageToJSON(tp)
	return WALRecord{rec: walRecordJSON{Op: walOpPackageBuild, ID: id, GroupID: groupID, Method: method, Package: &pj}}
}

// RefineRecord logs a package rebuilt from a refined profile. Replay
// applies it exactly like a build; source and strategy record provenance
// for operators tailing the log.
func RefineRecord(id, groupID int, method string, tp *core.TravelPackage, source int, strategy string) WALRecord {
	pj := packageToJSON(tp)
	return WALRecord{rec: walRecordJSON{
		Op: walOpRefine, ID: id, GroupID: groupID, Method: method, Package: &pj,
		Source: source, Strategy: strategy,
	}}
}

// CustomOpRecord logs one customization op on a package together with the
// affected CI's post-op state (for GENERATE, the new CI).
func CustomOpRecord(packageID int, op interact.Op, after *ci.CI) WALRecord {
	oj := opsToJSON([]interact.Op{op})[0]
	cj := ciToJSON(after)
	return WALRecord{rec: walRecordJSON{Op: walOpCustomOp, PackageID: packageID, Change: &oj, After: &cj}}
}

// WALPath is the canonical log location for a city key inside a state
// directory (alongside SnapshotPath).
func WALPath(dir, key string) string {
	return filepath.Join(dir, key+".wal")
}

// PendingWALPath is where Rotate seals a log segment while its compaction
// snapshot is being written. At most one pending segment exists per city;
// recovery replays it before the current log.
func PendingWALPath(dir, key string) string {
	return WALPath(dir, key) + ".pending"
}

// RemovePendingWAL deletes a city's sealed segment — the final step of a
// compaction, once the snapshot that covers it is durably in place. A
// missing segment is not an error.
func RemovePendingWAL(dir, key string) error {
	if err := os.Remove(PendingWALPath(dir, key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: remove pending wal: %w", err)
	}
	return nil
}

// --- sync policy ---

// WALSyncMode selects when appends reach stable storage.
type WALSyncMode int

const (
	// WALSyncAlways fsyncs on every append (group-committed: one fsync
	// covers every append that completed before it). Survives power loss.
	WALSyncAlways WALSyncMode = iota
	// WALSyncInterval fsyncs at most once per interval, on the append
	// that finds the interval expired. Bounded loss window on power
	// failure; process crashes lose nothing (the OS has the writes).
	WALSyncInterval
	// WALSyncOff never fsyncs from the appender; durability rides on the
	// OS flushing and on compaction's snapshot fsync.
	WALSyncOff
)

// DefaultWALSyncInterval is the flush period ParseWALSync uses for the
// bare "interval" spelling.
const DefaultWALSyncInterval = 100 * time.Millisecond

// WALSyncPolicy is a mode plus its interval (WALSyncInterval only). The
// zero value is WALSyncAlways, the safe default.
type WALSyncPolicy struct {
	Mode     WALSyncMode
	Interval time.Duration
}

// ParseWALSync parses the -wal-sync flag: "always", "off", "interval"
// (DefaultWALSyncInterval), or a duration like "250ms" (interval mode
// with that period).
func ParseWALSync(s string) (WALSyncPolicy, error) {
	switch s {
	case "", "always":
		return WALSyncPolicy{Mode: WALSyncAlways}, nil
	case "off", "never":
		return WALSyncPolicy{Mode: WALSyncOff}, nil
	case "interval":
		return WALSyncPolicy{Mode: WALSyncInterval, Interval: DefaultWALSyncInterval}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return WALSyncPolicy{}, fmt.Errorf("store: wal sync %q (want always, off, interval, or a positive duration)", s)
	}
	return WALSyncPolicy{Mode: WALSyncInterval, Interval: d}, nil
}

// String renders the policy in the same vocabulary ParseWALSync accepts.
func (p WALSyncPolicy) String() string {
	switch p.Mode {
	case WALSyncOff:
		return "off"
	case WALSyncInterval:
		return p.Interval.String()
	default:
		return "always"
	}
}

// --- appender ---

// WALStats is a point-in-time view of an appender for health reporting
// and compaction thresholds. Records/Bytes count since the last Reset
// (i.e. since the last compaction), so they are exactly the replay debt a
// restart would pay.
type WALStats struct {
	Records         int64 `json:"records"`
	Bytes           int64 `json:"bytes"` // log bytes past the header
	Fsyncs          int64 `json:"fsyncs"`
	LastFsyncMicros int64 `json:"lastFsyncMicros"` // duration of the most recent fsync
}

// WAL is a per-city append-only log. Appends from concurrent mutations
// serialize on an internal mutex for the write itself; fsyncs group-commit
// — while one fsync is in flight, later appenders queue on the sync mutex
// and discover their bytes were already covered, so n concurrent durable
// appends cost far fewer than n fsyncs.
type WAL struct {
	path    string
	pending string // sealed-segment path (Rotate target)
	policy  WALSyncPolicy

	// mu serializes file writes, truncation, rotation and close.
	// size/records are read by Stats under mu; size is additionally
	// atomic so syncTo can read it without taking mu. nextSeq is the
	// next record's log sequence number — monotonic across Reset and
	// Rotate, seeded from recovery. broken latches a write failure the
	// appender could not heal (the file may hold a garbage frame that
	// would silently eat any record appended after it).
	mu      sync.Mutex
	f       *os.File
	size    atomic.Int64
	records int64
	nextSeq int64
	broken  bool

	// syncMu serializes fsyncs (group commit): synced is the high-water
	// byte offset known durable; a goroutine whose write offset is below
	// it skips its fsync entirely. flushTimer covers the tail of a burst
	// under WALSyncInterval: an append that skips its fsync arms it, so
	// the last records of a burst reach disk within one interval even if
	// no further append ever comes.
	syncMu     sync.Mutex
	synced     int64
	lastSync   time.Time
	flushTimer *time.Timer

	fsyncs         atomic.Int64
	lastFsyncNanos atomic.Int64

	// appendHist/fsyncHist are optional latency histograms (Instrument);
	// nil-safe no-ops when the embedder wires no telemetry. fsyncSel, when
	// set, picks the histogram by the log's byte size at fsync time —
	// fsync latency grows with file size (see BenchmarkMutationPersistence:
	// ~120µs at a near-empty log vs ~735µs past tens of MiB, with encode
	// cost flat), so a single unlabeled series hides whether a slow fsync
	// is the disk or an overgrown log that compaction should have reset.
	appendHist *telemetry.Histogram
	fsyncHist  *telemetry.Histogram
	fsyncSel   func(sizeBytes int64) *telemetry.Histogram
}

// Instrument attaches latency histograms: appendH observes every
// successful Append/AppendFrame end to end (marshal, frame, write, and
// whatever the sync policy charges the appender), fsyncH every fsync the
// log performs (group commits and background flushes). Call before the
// first Append; either may be nil.
func (w *WAL) Instrument(appendH, fsyncH *telemetry.Histogram) {
	w.appendHist = appendH
	w.fsyncHist = fsyncH
}

// InstrumentSizedFsync attaches a selector that maps the log's byte size
// at fsync time to the histogram that should observe it — the file-size
// label on gt_wal_fsync_seconds. Overrides the flat fsyncH for fsyncs
// (the selector returning nil falls back to it). Call before the first
// Append.
func (w *WAL) InstrumentSizedFsync(sel func(sizeBytes int64) *telemetry.Histogram) {
	w.fsyncSel = sel
}

// observeFsync routes one fsync duration to the size-bucketed histogram
// when a selector is attached, else to the flat one.
func (w *WAL) observeFsync(sizeBytes int64, elapsed time.Duration) {
	h := w.fsyncHist
	if w.fsyncSel != nil {
		if sh := w.fsyncSel(sizeBytes); sh != nil {
			h = sh
		}
	}
	h.Observe(elapsed.Seconds())
}

// OpenWAL opens (creating if absent) a city's log for appending. A new or
// empty file gets the magic header; an existing file must carry it —
// callers run ReplayWAL first, which repairs or quarantines bad files, so
// a bad header here is an I/O-level surprise, not routine corruption.
func OpenWAL(dir, key string, policy WALSyncPolicy) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: wal dir: %w", err)
	}
	path := WALPath(dir, key)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat wal: %w", err)
	}
	size := st.Size()
	if size == 0 {
		if _, err := f.Write(walMagic[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: wal header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: wal header sync: %w", err)
		}
		size = walHeaderLen
	} else {
		var magic [8]byte
		if _, err := f.ReadAt(magic[:], 0); err != nil || magic != walMagic {
			f.Close()
			return nil, fmt.Errorf("store: wal %s has no valid header (run replay first)", path)
		}
	}
	w := &WAL{path: path, pending: PendingWALPath(dir, key), policy: policy, f: f}
	w.size.Store(size)
	w.synced = size
	w.lastSync = time.Now()
	w.nextSeq = 1
	// Records and sequence in the existing suffix are unknown here; the
	// caller learned both from ReplayWAL and seeds them (Seed) so
	// compaction thresholds see the true replay debt and new records
	// never reuse a sequence number a snapshot already covers.
	return w, nil
}

// Seed primes the appender after recovery: records is how many records
// the current log file holds (ReplayWAL's CurrentRecords), lastSeq the
// highest sequence number ever issued for this city — the max of the
// snapshot's WALSeq and every replayed record. Appending a seq at or
// below a snapshot's watermark would make the record invisible to
// replay, so this must be called before the first Append.
func (w *WAL) Seed(records, lastSeq int64) {
	w.mu.Lock()
	w.records = records
	w.nextSeq = lastSeq + 1
	w.mu.Unlock()
}

// LastSeq returns the sequence number of the most recently appended
// record — the watermark a compaction snapshot records as WALSeq.
func (w *WAL) LastSeq() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq - 1
}

// PendingExists reports whether a sealed segment from an unfinished
// compaction is on disk.
func (w *WAL) PendingExists() bool {
	_, err := os.Stat(w.pending)
	return err == nil
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Append stamps the record's sequence number, marshals, frames and
// writes it, then applies the sync policy, returning the stamped
// sequence — the commit token a mutation response hands back to its
// client. Safe for concurrent use. An error means the record did not
// commit: a partial write is healed by truncating the file back to the
// record's start, and if even that fails the appender latches broken —
// a garbage frame mid-file would make replay silently discard every
// record after it, so accepting further appends would turn one I/O
// error into unbounded invisible loss.
func (w *WAL) Append(rec WALRecord) (int64, error) {
	start := time.Now()
	w.mu.Lock()
	if w.f == nil {
		w.mu.Unlock()
		return 0, fmt.Errorf("store: wal closed")
	}
	rec.rec.Seq = w.nextSeq
	payload, err := json.Marshal(rec.rec)
	if err != nil {
		w.mu.Unlock()
		return 0, fmt.Errorf("store: wal encode: %w", err)
	}
	if err := w.appendLocked(payload, rec.rec.Seq); err != nil {
		return 0, err
	}
	w.appendHist.ObserveSince(start)
	return rec.rec.Seq, nil
}

// AppendFrame appends an already-sequenced frame — shipped from a
// primary's log — verbatim, preserving its sequence number instead of
// stamping a new one. The sequence must advance the log; a regressing
// frame is refused (replaying it later would double-apply). This is how a
// follower makes replicated records durable in the byte-identical format
// its own recovery replays.
func (w *WAL) AppendFrame(fr WALFrame) error {
	start := time.Now()
	w.mu.Lock()
	if w.f == nil {
		w.mu.Unlock()
		return fmt.Errorf("store: wal closed")
	}
	if fr.Seq < w.nextSeq {
		w.mu.Unlock()
		return fmt.Errorf("store: frame seq %d regresses (next %d)", fr.Seq, w.nextSeq)
	}
	// Copy the payload: appendLocked releases w.mu before the fsync, and
	// the caller's buffer may alias a reused read buffer.
	if err := w.appendLocked(append([]byte(nil), fr.Payload...), fr.Seq); err != nil {
		return err
	}
	w.appendHist.ObserveSince(start)
	return nil
}

// AppendFrames appends a run of already-sequenced frames in one pass:
// every frame is encoded into a single buffer, written with one write
// call, and covered by a single group-commit fsync — where a loop over
// AppendFrame would pay up to one fsync per frame. Frames whose sequence
// the log already holds are skipped (at-least-once delivery re-sends
// them); within the run sequences must be strictly ascending. An error
// means none of the run's frames committed: a partial write is healed by
// truncating back to the run's start, like Append.
func (w *WAL) AppendFrames(frames []WALFrame) error {
	if len(frames) == 0 {
		return nil
	}
	start := time.Now()
	w.mu.Lock()
	if w.f == nil {
		w.mu.Unlock()
		return fmt.Errorf("store: wal closed")
	}
	if w.broken {
		w.mu.Unlock()
		return fmt.Errorf("store: wal broken by earlier write failure (compaction or restart recovers)")
	}
	var total int
	n := 0
	seq := w.nextSeq
	for _, fr := range frames {
		if fr.Seq < seq {
			continue // already durable here; idempotent re-send
		}
		if len(fr.Payload) > maxWALRecord {
			w.mu.Unlock()
			return fmt.Errorf("store: wal record %d bytes exceeds cap %d", len(fr.Payload), maxWALRecord)
		}
		total += walFrameLen + len(fr.Payload)
		seq = fr.Seq + 1
		n++
	}
	if n == 0 {
		w.mu.Unlock()
		return nil
	}
	buf := make([]byte, 0, total)
	next := w.nextSeq
	for _, fr := range frames {
		if fr.Seq < next {
			continue
		}
		var hdr [walFrameLen]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(fr.Payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(fr.Payload, walCRC))
		buf = append(buf, hdr[:]...)
		buf = append(buf, fr.Payload...)
		next = fr.Seq + 1
	}
	startOff := w.size.Load()
	wrote, err := w.f.Write(buf)
	if err != nil {
		if wrote > 0 {
			if terr := w.f.Truncate(startOff); terr != nil {
				w.broken = true
				w.size.Add(int64(wrote))
			}
		}
		w.mu.Unlock()
		return fmt.Errorf("store: wal append: %w", err)
	}
	w.size.Store(startOff + int64(wrote))
	w.records += int64(n)
	w.nextSeq = next
	off := w.size.Load()
	w.mu.Unlock()

	var serr error
	switch w.policy.Mode {
	case WALSyncAlways:
		serr = w.syncTo(off, false)
	case WALSyncInterval:
		serr = w.syncTo(off, true)
	}
	if serr != nil {
		return serr
	}
	w.appendHist.ObserveSince(start)
	return nil
}

// appendLocked frames and writes one payload whose stamped sequence is
// seq, then applies the sync policy. Called with w.mu held; it unlocks.
func (w *WAL) appendLocked(payload []byte, seq int64) error {
	if w.broken {
		w.mu.Unlock()
		return fmt.Errorf("store: wal broken by earlier write failure (compaction or restart recovers)")
	}
	if len(payload) > maxWALRecord {
		w.mu.Unlock()
		return fmt.Errorf("store: wal record %d bytes exceeds cap %d", len(payload), maxWALRecord)
	}
	buf := make([]byte, walFrameLen+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, walCRC))
	copy(buf[walFrameLen:], payload)

	start := w.size.Load()
	n, err := w.f.Write(buf)
	if err != nil {
		if n > 0 {
			if terr := w.f.Truncate(start); terr != nil {
				w.broken = true
				w.size.Add(int64(n))
			}
		}
		w.mu.Unlock()
		return fmt.Errorf("store: wal append: %w", err)
	}
	w.size.Store(start + int64(n))
	w.records++
	w.nextSeq = seq + 1
	off := w.size.Load()
	w.mu.Unlock()

	switch w.policy.Mode {
	case WALSyncAlways:
		return w.syncTo(off, false)
	case WALSyncInterval:
		return w.syncTo(off, true)
	}
	return nil
}

// syncTo makes bytes up to off durable. Group commit: if another
// goroutine's fsync already covered off, return immediately. With
// intervalOnly set, the fsync additionally waits for the policy interval
// to elapse since the last one; a skipped fsync arms the flush timer so
// the bytes still reach disk within one interval if the burst ends here.
func (w *WAL) syncTo(off int64, intervalOnly bool) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.synced >= off {
		return nil
	}
	if intervalOnly {
		if wait := w.policy.Interval - time.Since(w.lastSync); wait > 0 {
			if w.flushTimer == nil {
				w.flushTimer = time.AfterFunc(wait, w.backgroundFlush)
			}
			return nil
		}
	}
	// Everything written before this fsync call is covered by it, so the
	// durable watermark is the size observed now, not just off.
	target := w.size.Load()
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: wal fsync: %w", err)
	}
	elapsed := time.Since(start)
	w.lastFsyncNanos.Store(int64(elapsed))
	w.observeFsync(target, elapsed)
	w.fsyncs.Add(1)
	w.synced = target
	w.lastSync = time.Now()
	return nil
}

// backgroundFlush is the interval policy's deadline: it fsyncs whatever
// the last burst left unsynced. f is mutated only under mu+syncMu both
// held, so reading it under syncMu alone is safe.
func (w *WAL) backgroundFlush() {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.flushTimer = nil
	if w.f == nil || w.synced >= w.size.Load() {
		return
	}
	target := w.size.Load()
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return // the next append's fsync (or Close) retries
	}
	elapsed := time.Since(start)
	w.lastFsyncNanos.Store(int64(elapsed))
	w.observeFsync(target, elapsed)
	w.fsyncs.Add(1)
	w.synced = target
	w.lastSync = time.Now()
}

// stopFlushLocked cancels a pending background flush; callers hold syncMu.
func (w *WAL) stopFlushLocked() {
	if w.flushTimer != nil {
		w.flushTimer.Stop()
		w.flushTimer = nil
	}
}

// Sync forces an fsync regardless of policy (shutdown paths).
func (w *WAL) Sync() error {
	return w.syncTo(w.size.Load(), false)
}

// Rotate seals the current log as the city's pending segment and starts
// a fresh, empty log, preserving the sequence counter. This is the O(1)
// step compaction takes under the city's write lock, so the expensive
// snapshot write can happen outside it while mutations keep appending to
// the new segment: the sealed segment holds exactly the records the
// in-flight snapshot will cover, and recovery replays pending-then-
// current if the process dies before the snapshot lands. Rotate refuses
// to run while a pending segment already exists (a previous compaction's
// snapshot never finished) — overwriting it would destroy records no
// snapshot contains; callers fall back to compacting inline.
func (w *WAL) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.f == nil {
		return fmt.Errorf("store: wal closed")
	}
	if w.broken {
		return fmt.Errorf("store: wal broken; rotate refused")
	}
	if _, err := os.Stat(w.pending); err == nil {
		return fmt.Errorf("store: pending segment %s already exists", w.pending)
	}
	// The sealed segment must be durable before the snapshot covering it
	// starts: the snapshot replaces these records, so losing them while
	// it is still being written would lose committed mutations.
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: rotate sync: %w", err)
	}
	if err := os.Rename(w.path, w.pending); err != nil {
		return fmt.Errorf("store: rotate rename: %w", err)
	}
	old := w.f
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_RDWR|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		// No active log to append to: latch broken so commits surface
		// the failure instead of silently dropping records.
		w.broken = true
		old.Close()
		return fmt.Errorf("store: rotate open: %w", err)
	}
	if _, err := f.Write(walMagic[:]); err != nil {
		w.broken = true
		old.Close()
		f.Close()
		return fmt.Errorf("store: rotate header: %w", err)
	}
	if err := f.Sync(); err != nil {
		w.broken = true
		old.Close()
		f.Close()
		return fmt.Errorf("store: rotate header sync: %w", err)
	}
	old.Close()
	w.f = f
	w.size.Store(walHeaderLen)
	w.records = 0
	w.synced = walHeaderLen
	w.stopFlushLocked()
	return nil
}

// Reset truncates the log back to its header — the step after a
// successful compaction snapshot. The truncation is fsynced so a crash
// cannot resurrect pre-compaction records on top of the new snapshot.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.f == nil {
		return fmt.Errorf("store: wal closed")
	}
	if err := w.f.Truncate(walHeaderLen); err != nil {
		return fmt.Errorf("store: wal truncate: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: wal truncate sync: %w", err)
	}
	w.size.Store(walHeaderLen)
	w.records = 0
	w.synced = walHeaderLen
	w.broken = false // the garbage frame, if any, was just truncated away
	w.stopFlushLocked()
	return nil
}

// Close releases the file handle. Pending bytes are fsynced first under
// any policy, so a clean shutdown never loses appended records.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.f == nil {
		return nil
	}
	w.stopFlushLocked()
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// Stats snapshots the appender's counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	records := w.records
	size := w.size.Load()
	w.mu.Unlock()
	return WALStats{
		Records:         records,
		Bytes:           max(size-walHeaderLen, 0),
		Fsyncs:          w.fsyncs.Load(),
		LastFsyncMicros: w.lastFsyncNanos.Load() / int64(time.Microsecond),
	}
}

// --- replay ---

// WALReplayInfo reports what recovery found in a city's log (the pending
// segment of an unfinished compaction, if any, then the current log).
type WALReplayInfo struct {
	// Records applied on top of the snapshot.
	Records int
	// Skipped records whose sequence number the snapshot's WALSeq already
	// covers — the crash-between-snapshot-and-truncate case.
	Skipped int
	// CurrentRecords counts valid records (applied + skipped) in the
	// current log file specifically; it seeds the appender's counter.
	CurrentRecords int64
	// LastSeq is the highest sequence number observed — snapshot
	// watermark included — and seeds the appender's sequence counter.
	LastSeq int64
	// Bytes of valid log (past the headers) after any repair.
	Bytes int64
	// Truncated is non-empty when a torn or invalid tail was dropped; it
	// says where and why. Surfaced on /healthz, never fatal.
	Truncated string
	// DroppedBytes is how much tail the repair removed.
	DroppedBytes int64
}

// ReplayWAL reads the city's log — pending segment first, then the
// current file — and applies every valid record to base (the snapshot
// state; nil means an empty first-boot state), returning the resulting
// state. Records whose sequence number the snapshot already covers are
// skipped, so replay is idempotent no matter where a compaction crashed.
// Within each file the longest valid prefix wins: at the first torn
// frame, CRC mismatch or inapplicable record, the file is truncated to
// the last valid record in place — the repair that lets the next appender
// continue from a consistent tail — and the cut is reported in the info.
// A file whose header is unreadable is quarantined to <path>.corrupt like
// a corrupt snapshot. I/O errors (not corruption) fail the replay.
func ReplayWAL(dir, key string, city *dataset.City, base *ServerState) (*ServerState, *WALReplayInfo, error) {
	if city == nil || city.POIs == nil {
		return nil, nil, fmt.Errorf("store: nil city")
	}
	st := base
	if st == nil {
		st = &ServerState{City: city.Name, NextID: 1}
	}
	info := &WALReplayInfo{}
	ap := newWALApplier(st, city)
	if err := replayWALFile(PendingWALPath(dir, key), false, ap, info); err != nil {
		return nil, nil, err
	}
	if info.Truncated != "" {
		// The pending segment lost records (torn tail or quarantine). The
		// current log continues from sequences that no longer exist, so
		// applying it would fabricate a history no consistent prefix ever
		// had — an op log with a hole in the middle. Drop the current log
		// entirely: the surviving prefix ends where the pending cut is.
		if err := dropWALFile(WALPath(dir, key), info); err != nil {
			return nil, nil, err
		}
	} else if err := replayWALFile(WALPath(dir, key), true, ap, info); err != nil {
		return nil, nil, err
	}
	info.LastSeq = ap.lastSeq
	ap.finish()
	return st, info, nil
}

// dropWALFile discards a log file's records (truncating it back to its
// header, or quarantining a headerless file) because a preceding segment
// lost records — replaying across the gap would be worse than cutting
// here.
func dropWALFile(path string, info *WALReplayInfo) error {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: read wal: %w", err)
	}
	if int64(len(raw)) < walHeaderLen || [8]byte(raw[:walHeaderLen]) != walMagic {
		dst := path + ".corrupt"
		if err := os.Rename(path, dst); err != nil {
			return fmt.Errorf("store: quarantine headerless wal: %w", err)
		}
		info.DroppedBytes += int64(len(raw))
		info.Truncated += fmt.Sprintf("; %s: no valid header; moved to %s", filepath.Base(path), dst)
		return nil
	}
	if int64(len(raw)) == walHeaderLen {
		return nil
	}
	if err := os.Truncate(path, walHeaderLen); err != nil {
		return fmt.Errorf("store: drop wal after gap: %w", err)
	}
	info.DroppedBytes += int64(len(raw)) - walHeaderLen
	info.Truncated += fmt.Sprintf("; %s: dropped (%d bytes follow the cut)", filepath.Base(path), int64(len(raw))-walHeaderLen)
	return nil
}

// replayWALFile scans one log file, applying records through ap and
// repairing torn tails in place.
func replayWALFile(path string, current bool, ap *walApplier, info *WALReplayInfo) error {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: read wal: %w", err)
	}
	name := filepath.Base(path)
	addCut := func(msg string) {
		if info.Truncated != "" {
			info.Truncated += "; "
		}
		info.Truncated += name + ": " + msg
	}
	if int64(len(raw)) < walHeaderLen || [8]byte(raw[:walHeaderLen]) != walMagic {
		// No valid header: the whole file is unusable. Quarantine it so
		// the evidence survives and a fresh log can start.
		dst := path + ".corrupt"
		if err := os.Rename(path, dst); err != nil {
			return fmt.Errorf("store: quarantine headerless wal: %w", err)
		}
		addCut(fmt.Sprintf("no valid header; moved to %s", dst))
		info.DroppedBytes += int64(len(raw))
		return nil
	}
	off := walHeaderLen
	for off < int64(len(raw)) {
		payload, n, err := DecodeFrame(raw[off:])
		if err != nil {
			addCut(fmt.Sprintf("bad frame at offset %d: %v", off, err))
			break
		}
		// The shared apply path: exactly what a replication follower runs
		// on shipped frames, so replay and replication cannot diverge.
		res, err := ap.applyPayload(payload)
		if err != nil {
			addCut(fmt.Sprintf("inapplicable record at offset %d: %v", off, err))
			break
		}
		if res.Skipped {
			info.Skipped++
		} else {
			info.Records++
		}
		if current {
			info.CurrentRecords++
		}
		off += int64(n)
	}
	if off < int64(len(raw)) {
		info.DroppedBytes += int64(len(raw)) - off
		if err := os.Truncate(path, off); err != nil {
			return fmt.Errorf("store: truncate torn wal tail: %w", err)
		}
	}
	info.Bytes += off - walHeaderLen
	return nil
}

// walApplier applies decoded records onto a ServerState, carrying id →
// slice-index maps so applying n records is O(n), not O(n²). skip is the
// snapshot's sequence watermark (records at or below it are already in
// the base state); lastSeq enforces strictly increasing sequences above
// it.
type walApplier struct {
	st      *ServerState
	city    *dataset.City
	skip    int64
	lastSeq int64
	used    map[int]bool // every id in the state (groups + packages)
	groups  map[int]int  // id -> index into st.Groups
	pkgs    map[int]int  // id -> index into st.Packages
}

func newWALApplier(st *ServerState, city *dataset.City) *walApplier {
	ap := &walApplier{
		st:      st,
		city:    city,
		skip:    st.WALSeq,
		lastSeq: st.WALSeq,
		used:    make(map[int]bool, len(st.Groups)+len(st.Packages)),
		groups:  make(map[int]int, len(st.Groups)),
		pkgs:    make(map[int]int, len(st.Packages)),
	}
	for i := range st.Groups {
		ap.used[st.Groups[i].ID] = true
		ap.groups[st.Groups[i].ID] = i
	}
	for i := range st.Packages {
		ap.used[st.Packages[i].ID] = true
		ap.pkgs[st.Packages[i].ID] = i
	}
	return ap
}

// takeID admits a newly created id: positive, unused, and advances NextID
// past it so post-replay allocation cannot collide.
func (ap *walApplier) takeID(id int) error {
	if id < 1 {
		return fmt.Errorf("id %d out of range", id)
	}
	if ap.used[id] {
		return fmt.Errorf("duplicate id %d", id)
	}
	ap.used[id] = true
	if id >= ap.st.NextID {
		ap.st.NextID = id + 1
	}
	return nil
}

// applyPayload decodes one frame payload and integrates it — the single
// apply path shared by restart replay and replication followers. The
// returned Applied reports what changed (Skipped: the sequence was
// already in the snapshot). A rejected record leaves the state untouched.
func (ap *walApplier) applyPayload(payload []byte) (Applied, error) {
	var rec walRecordJSON
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Applied{}, fmt.Errorf("undecodable record: %v", err)
	}
	res := Applied{Kind: rec.Op, Seq: rec.Seq, ID: rec.ID, PackageID: rec.PackageID}
	if rec.Seq != 0 {
		if rec.Seq <= ap.skip {
			res.Skipped = true
			return res, nil // the snapshot already folded this record in
		}
		if rec.Seq <= ap.lastSeq {
			return Applied{}, fmt.Errorf("sequence %d regresses (last %d)", rec.Seq, ap.lastSeq)
		}
	}
	if err := ap.applyOp(rec); err != nil {
		return Applied{}, err
	}
	if rec.Seq != 0 {
		ap.lastSeq = rec.Seq
	}
	return res, nil
}

func (ap *walApplier) applyOp(rec walRecordJSON) error {
	switch rec.Op {
	case walOpGroupCreate:
		// Validate fully before mutating: a rejected record must leave
		// the state untouched (it becomes the truncation point, and the
		// surviving prefix must replay to exactly the surviving state).
		if rec.Group == nil {
			return fmt.Errorf("groupCreate without group")
		}
		g, err := groupFromJSON(*rec.Group, ap.city.Schema)
		if err != nil {
			return err
		}
		if err := ap.takeID(rec.ID); err != nil {
			return err
		}
		ap.st.Groups = append(ap.st.Groups, GroupRecord{ID: rec.ID, Group: g})
		ap.groups[rec.ID] = len(ap.st.Groups) - 1
		return nil

	case walOpPackageBuild, walOpRefine:
		if rec.Package == nil {
			return fmt.Errorf("%s without package", rec.Op)
		}
		if _, ok := ap.groups[rec.GroupID]; !ok {
			return fmt.Errorf("%s references unknown group %d", rec.Op, rec.GroupID)
		}
		tp, err := packageFromJSON(*rec.Package, ap.city)
		if err != nil {
			return err
		}
		if err := ap.takeID(rec.ID); err != nil {
			return err
		}
		ap.st.Packages = append(ap.st.Packages, PackageRecord{
			ID: rec.ID, GroupID: rec.GroupID, Method: rec.Method, Package: tp,
		})
		ap.pkgs[rec.ID] = len(ap.st.Packages) - 1
		return nil

	case walOpCustomOp:
		if rec.Change == nil || rec.After == nil {
			return fmt.Errorf("customOp without change/after")
		}
		pi, ok := ap.pkgs[rec.PackageID]
		if !ok {
			return fmt.Errorf("customOp references unknown package %d", rec.PackageID)
		}
		pr := &ap.st.Packages[pi]
		gi, ok := ap.groups[pr.GroupID]
		if !ok {
			return fmt.Errorf("customOp package %d has unknown group %d", rec.PackageID, pr.GroupID)
		}
		ops, err := opsFromJSON([]opJSON{*rec.Change}, ap.city, ap.st.Groups[gi].Group.Size())
		if err != nil {
			return err
		}
		op := ops[0]
		after, err := ciFromJSON(*rec.After, ap.city)
		if err != nil {
			return err
		}
		tp := pr.Package
		if op.Kind == interact.OpGenerate {
			// GENERATE appends; its CIIndex is the new CI's slot.
			if op.CIIndex != len(tp.CIs) {
				return fmt.Errorf("generate CI index %d, package has %d CIs", op.CIIndex, len(tp.CIs))
			}
			tp.CIs = append(tp.CIs, after)
		} else {
			if op.CIIndex < 0 || op.CIIndex >= len(tp.CIs) {
				return fmt.Errorf("op CI index %d out of range [0,%d)", op.CIIndex, len(tp.CIs))
			}
			tp.CIs[op.CIIndex] = after
		}
		pr.Ops = append(pr.Ops, op)
		return nil

	default:
		return fmt.Errorf("unknown record kind %q", rec.Op)
	}
}

// finish restores the sorted-by-id invariant LoadServerState guarantees
// (concurrent mutations can commit records slightly out of id order).
// The id → index maps are rebuilt to match: a follower's applier keeps
// applying after every batch's finish, and a lookup through a stale
// index would resolve an id to a different record's slot.
func (ap *walApplier) finish() {
	sort.Slice(ap.st.Groups, func(i, j int) bool { return ap.st.Groups[i].ID < ap.st.Groups[j].ID })
	sort.Slice(ap.st.Packages, func(i, j int) bool { return ap.st.Packages[i].ID < ap.st.Packages[j].ID })
	for i := range ap.st.Groups {
		ap.groups[ap.st.Groups[i].ID] = i
	}
	for i := range ap.st.Packages {
		ap.pkgs[ap.st.Packages[i].ID] = i
	}
}
