package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
	"grouptravel/internal/interact"
	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
)

// This file persists the full serving state of one city — every registered
// group (with its memoized consensus profiles) and every built package —
// so a server restart reconstructs its registries instead of dropping
// them. Packages reference POIs by id and re-resolve against the city on
// load, exactly like LoadPackage.

// GroupRecord is one registered group as the server holds it.
type GroupRecord struct {
	ID    int
	Group *profile.Group
	// Profiles are the memoized consensus aggregations (consensus name →
	// aggregated profile). They are derivable from Group, but persisting
	// them keeps a restarted server's memo warm and round-trips the exact
	// state the handlers observed.
	Profiles map[string]*profile.Profile
}

// PackageRecord is one built package with its serving metadata.
type PackageRecord struct {
	ID      int
	GroupID int
	Method  string // consensus name the package was built with
	Package *core.TravelPackage
	// Ops is the customization log of the package's session. The ops were
	// already applied to Package when it was saved; persisting the log
	// keeps profile refinement working across restarts.
	Ops []interact.Op
}

// ServerState is everything a city's serving layer must survive a restart:
// id allocation plus both registries. WALSeq is the write-ahead-log
// sequence watermark a compaction snapshot covers — replay skips log
// records at or below it, so recovery is exact no matter where between
// the snapshot write and the log truncation a crash landed.
type ServerState struct {
	City     string
	NextID   int
	WALSeq   int64
	Groups   []GroupRecord
	Packages []PackageRecord
}

type groupRecordJSON struct {
	ID       int                    `json:"id"`
	Group    groupJSON              `json:"group"`
	Profiles map[string]profileJSON `json:"profiles,omitempty"`
}

type packageRecordJSON struct {
	ID      int         `json:"id"`
	GroupID int         `json:"groupId"`
	Method  string      `json:"method"`
	Package packageJSON `json:"package"`
	Ops     []opJSON    `json:"ops,omitempty"`
}

// opJSON is one logged customization op; POIs are referenced by id.
type opJSON struct {
	Kind    string `json:"kind"` // REMOVE | ADD | REPLACE | GENERATE
	Member  int    `json:"member"`
	CI      int    `json:"ci"`
	Added   []int  `json:"added,omitempty"`
	Removed []int  `json:"removed,omitempty"`
}

func opsToJSON(ops []interact.Op) []opJSON {
	out := make([]opJSON, 0, len(ops))
	for _, op := range ops {
		oj := opJSON{Kind: op.Kind.String(), Member: op.Member, CI: op.CIIndex}
		for _, p := range op.Added {
			oj.Added = append(oj.Added, p.ID)
		}
		for _, p := range op.Removed {
			oj.Removed = append(oj.Removed, p.ID)
		}
		out = append(out, oj)
	}
	return out
}

// opsFromJSON rebuilds a package's op log; members are validated against
// the owning group's size so a tampered log cannot poison refinement.
func opsFromJSON(in []opJSON, city *dataset.City, groupSize int) ([]interact.Op, error) {
	out := make([]interact.Op, 0, len(in))
	for i, oj := range in {
		kind, err := interact.ParseOpKind(oj.Kind)
		if err != nil {
			return nil, fmt.Errorf("store: op %d: %w", i, err)
		}
		if oj.Member < 0 || oj.Member >= groupSize || oj.CI < 0 {
			return nil, fmt.Errorf("store: op %d member/ci out of range", i)
		}
		op := interact.Op{Kind: kind, Member: oj.Member, CIIndex: oj.CI}
		resolve := func(ids []int) ([]*poi.POI, error) {
			var pois []*poi.POI
			for _, id := range ids {
				p := city.POIs.ByID(id)
				if p == nil {
					return nil, fmt.Errorf("store: op %d references unknown POI %d", i, id)
				}
				pois = append(pois, p)
			}
			return pois, nil
		}
		if op.Added, err = resolve(oj.Added); err != nil {
			return nil, err
		}
		if op.Removed, err = resolve(oj.Removed); err != nil {
			return nil, err
		}
		out = append(out, op)
	}
	return out, nil
}

type serverStateJSON struct {
	Version  int                 `json:"version"`
	City     string              `json:"city"`
	NextID   int                 `json:"nextId"`
	WALSeq   int64               `json:"walSeq,omitempty"`
	Groups   []groupRecordJSON   `json:"groups"`
	Packages []packageRecordJSON `json:"packages"`
}

// SaveServerState writes a city's full serving state as versioned JSON.
func SaveServerState(w io.Writer, st *ServerState) error {
	if st == nil {
		return fmt.Errorf("store: nil server state")
	}
	out := serverStateJSON{Version: Version, City: st.City, NextID: st.NextID, WALSeq: st.WALSeq}
	for _, gr := range st.Groups {
		if gr.Group == nil {
			return fmt.Errorf("store: group %d is nil", gr.ID)
		}
		gj := groupRecordJSON{ID: gr.ID, Group: groupToJSON(gr.Group)}
		if len(gr.Profiles) > 0 {
			gj.Profiles = make(map[string]profileJSON, len(gr.Profiles))
			for name, p := range gr.Profiles {
				gj.Profiles[name] = profileToJSON(p)
			}
		}
		out.Groups = append(out.Groups, gj)
	}
	for _, pr := range st.Packages {
		if pr.Package == nil {
			return fmt.Errorf("store: package %d is nil", pr.ID)
		}
		out.Packages = append(out.Packages, packageRecordJSON{
			ID: pr.ID, GroupID: pr.GroupID, Method: pr.Method,
			Package: packageToJSON(pr.Package),
			Ops:     opsToJSON(pr.Ops),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadServerState reads a state snapshot and re-resolves it against the
// city. Snapshots may be hand-edited or corrupted, so everything is
// validated: the version and city name must match, ids must be positive
// and unique, NextID must clear every id (or id allocation would collide
// after restart), every package must reference a loaded group, and all
// profiles and POI ids are checked against the city's schema and dataset.
func LoadServerState(r io.Reader, city *dataset.City) (*ServerState, error) {
	if city == nil || city.POIs == nil {
		return nil, fmt.Errorf("store: nil city")
	}
	var in serverStateJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("store: decode server state: %w", err)
	}
	if in.Version > Version {
		return nil, fmt.Errorf("store: server state format v%d newer than supported v%d", in.Version, Version)
	}
	if in.City != city.Name {
		return nil, fmt.Errorf("store: snapshot is for city %q, got %q", in.City, city.Name)
	}
	if in.NextID < 1 {
		// Adopting nextId < 1 would make the server allocate ids its own
		// next snapshot rejects as out of range.
		return nil, fmt.Errorf("store: nextId %d out of range", in.NextID)
	}
	if in.WALSeq < 0 {
		return nil, fmt.Errorf("store: walSeq %d out of range", in.WALSeq)
	}
	st := &ServerState{City: in.City, NextID: in.NextID, WALSeq: in.WALSeq}
	seen := make(map[int]bool, len(in.Groups)+len(in.Packages))
	takeID := func(id int, what string) error {
		if id < 1 {
			return fmt.Errorf("store: %s id %d out of range", what, id)
		}
		if seen[id] {
			return fmt.Errorf("store: duplicate id %d (%s)", id, what)
		}
		if id >= in.NextID {
			return fmt.Errorf("store: %s id %d not below nextId %d", what, id, in.NextID)
		}
		seen[id] = true
		return nil
	}
	groupSizes := make(map[int]int, len(in.Groups))
	for _, gj := range in.Groups {
		if err := takeID(gj.ID, "group"); err != nil {
			return nil, err
		}
		g, err := groupFromJSON(gj.Group, city.Schema)
		if err != nil {
			return nil, fmt.Errorf("store: group %d: %w", gj.ID, err)
		}
		gr := GroupRecord{ID: gj.ID, Group: g}
		if len(gj.Profiles) > 0 {
			gr.Profiles = make(map[string]*profile.Profile, len(gj.Profiles))
			for name, pj := range gj.Profiles {
				p, err := profileFromJSON(pj, city.Schema)
				if err != nil {
					return nil, fmt.Errorf("store: group %d profile %q: %w", gj.ID, name, err)
				}
				gr.Profiles[name] = p
			}
		}
		groupSizes[gj.ID] = g.Size()
		st.Groups = append(st.Groups, gr)
	}
	for _, pj := range in.Packages {
		if err := takeID(pj.ID, "package"); err != nil {
			return nil, err
		}
		size, ok := groupSizes[pj.GroupID]
		if !ok {
			return nil, fmt.Errorf("store: package %d references unknown group %d", pj.ID, pj.GroupID)
		}
		tp, err := packageFromJSON(pj.Package, city)
		if err != nil {
			return nil, fmt.Errorf("store: package %d: %w", pj.ID, err)
		}
		ops, err := opsFromJSON(pj.Ops, city, size)
		if err != nil {
			return nil, fmt.Errorf("store: package %d: %w", pj.ID, err)
		}
		st.Packages = append(st.Packages, PackageRecord{
			ID: pj.ID, GroupID: pj.GroupID, Method: pj.Method, Package: tp, Ops: ops,
		})
	}
	sort.Slice(st.Groups, func(i, j int) bool { return st.Groups[i].ID < st.Groups[j].ID })
	sort.Slice(st.Packages, func(i, j int) bool { return st.Packages[i].ID < st.Packages[j].ID })
	return st, nil
}

// SnapshotPath is the canonical snapshot location for a city key inside a
// snapshot directory.
func SnapshotPath(dir, key string) string {
	return filepath.Join(dir, key+".state.json")
}

// WriteSnapshot atomically persists a city's state under dir: the file is
// written to a temp name and renamed into place, so readers (including a
// concurrently restarting server) never observe a torn snapshot. It
// returns the snapshot time.
func WriteSnapshot(dir, key string, st *ServerState) (time.Time, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return time.Time{}, fmt.Errorf("store: snapshot dir: %w", err)
	}
	f, err := os.CreateTemp(dir, key+".state.*.tmp")
	if err != nil {
		return time.Time{}, fmt.Errorf("store: snapshot temp: %w", err)
	}
	tmp := f.Name()
	if err := SaveServerState(f, st); err != nil {
		f.Close()
		os.Remove(tmp)
		return time.Time{}, err
	}
	// Flush data before the rename and the directory entry after it:
	// without both, a power loss shortly after the metadata-only rename
	// can surface the new name with empty or torn content.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return time.Time{}, fmt.Errorf("store: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return time.Time{}, fmt.Errorf("store: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, SnapshotPath(dir, key)); err != nil {
		os.Remove(tmp)
		return time.Time{}, fmt.Errorf("store: snapshot rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return time.Now(), nil
}

// CorruptSnapshotError marks a snapshot whose content failed decoding or
// validation — as opposed to a transient I/O failure reading it, which
// callers should retry rather than treat as data corruption.
type CorruptSnapshotError struct{ Err error }

func (e *CorruptSnapshotError) Error() string { return fmt.Sprintf("store: corrupt snapshot: %v", e.Err) }
func (e *CorruptSnapshotError) Unwrap() error { return e.Err }

// ReadSnapshot loads a city's state from dir. A missing snapshot is not an
// error: it returns (nil, nil) so first boots start empty. The file is
// read in full before decoding so that I/O errors (retryable) are
// distinguishable from content errors (*CorruptSnapshotError).
func ReadSnapshot(dir, key string, city *dataset.City) (*ServerState, error) {
	raw, err := os.ReadFile(SnapshotPath(dir, key))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read snapshot: %w", err)
	}
	st, err := LoadServerState(bytes.NewReader(raw), city)
	if err != nil {
		return nil, &CorruptSnapshotError{Err: err}
	}
	return st, nil
}
