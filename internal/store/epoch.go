package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Epoch is the replication term persisted beside a city's WAL. It is
// monotonic: every promotion bumps it by one and records the advertised
// URL of the node that owns the new term. Nodes stamp the epoch into the
// GTREPv1 wire headers; a node that observes a higher term than its own
// knows it has been deposed and must fence itself read-only.
type Epoch struct {
	// Epoch is the term number. Zero means "no promotion has ever
	// happened" — the pre-epoch fleet — and is never stamped on the wire.
	Epoch int64 `json:"epoch"`
	// Primary is the advertised URL of the node that bumped this term.
	Primary string `json:"primary,omitempty"`
}

// EpochPath is the canonical epoch-file location for a city key inside a
// snapshot directory (the epoch lives beside the snapshot + WAL so a
// node restart recovers its term with the rest of its durable state).
func EpochPath(dir, key string) string {
	return filepath.Join(dir, key+".epoch.json")
}

// ReadEpoch loads a city's replication epoch. A missing file is not an
// error: it returns the zero epoch so pre-epoch fleets boot unchanged.
func ReadEpoch(dir, key string) (Epoch, error) {
	raw, err := os.ReadFile(EpochPath(dir, key))
	if err != nil {
		if os.IsNotExist(err) {
			return Epoch{}, nil
		}
		return Epoch{}, fmt.Errorf("store: read epoch: %w", err)
	}
	var e Epoch
	if err := json.Unmarshal(raw, &e); err != nil {
		return Epoch{}, fmt.Errorf("store: decode epoch %s: %w", EpochPath(dir, key), err)
	}
	if e.Epoch < 0 {
		return Epoch{}, fmt.Errorf("store: decode epoch %s: negative term %d", EpochPath(dir, key), e.Epoch)
	}
	return e, nil
}

// WriteEpoch atomically persists a city's replication epoch using the
// same temp-write + fsync + rename + dir-sync discipline as WriteSnapshot,
// so a crash mid-promotion never leaves a torn or empty epoch file.
func WriteEpoch(dir, key string, e Epoch) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: epoch dir: %w", err)
	}
	f, err := os.CreateTemp(dir, key+".epoch.*.tmp")
	if err != nil {
		return fmt.Errorf("store: epoch temp: %w", err)
	}
	tmp := f.Name()
	enc := json.NewEncoder(f)
	if err := enc.Encode(e); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: epoch encode: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: epoch sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: epoch close: %w", err)
	}
	if err := os.Rename(tmp, EpochPath(dir, key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: epoch rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}
