package store

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"grouptravel/internal/consensus"
	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
	"grouptravel/internal/interact"
	"grouptravel/internal/profile"
	"grouptravel/internal/query"
	"grouptravel/internal/rng"
)

// walFixture is a realistic mutation history: a group, a built package, a
// customization session applying one of every §3.3 operator, and a
// refined rebuild — one WAL record each, exactly as the server logs them.
type walFixture struct {
	city    *dataset.City
	records []WALRecord
	// want is the state the records reconstruct, assembled independently
	// from the same session the records were captured from.
	want *ServerState
}

func makeWALFixture(t testing.TB) *walFixture {
	t.Helper()
	c := city(t)
	e, err := core.NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	g, err := profile.GenerateUniformGroup(c.Schema, 3, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	gp, err := consensus.GroupProfile(g, consensus.PairwiseDis)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := e.Build(gp, query.Default(), core.DefaultParams(3))
	if err != nil {
		t.Fatal(err)
	}
	fx := &walFixture{city: c}
	fx.records = append(fx.records, GroupCreateRecord(1, g))
	fx.records = append(fx.records, PackageBuildRecord(2, 1, "pairwise", tp))

	// Apply one of each operator through a real session, logging each op
	// with its post-op CI the way handleOps does.
	sess, err := interact.NewSession(c, tp)
	if err != nil {
		t.Fatal(err)
	}
	logOp := func() {
		ops := sess.Log()
		op := ops[len(ops)-1]
		fx.records = append(fx.records, CustomOpRecord(2, op, sess.Package().CIs[op.CIIndex]))
	}
	if err := sess.Remove(0, 0, sess.Package().CIs[0].Items[0].ID); err != nil {
		t.Fatal(err)
	}
	logOp()
	if _, err := sess.Replace(1, 1, sess.Package().CIs[1].Items[0].ID); err != nil {
		t.Fatal(err)
	}
	logOp()
	if _, err := sess.Generate(2, c.POIs.Bounds()); err != nil {
		t.Fatal(err)
	}
	logOp()

	tp2, err := e.Build(gp, query.Default(), core.DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	fx.records = append(fx.records, RefineRecord(3, 1, "pairwise", tp2, 2, "batch"))

	fx.want = &ServerState{
		City:   c.Name,
		NextID: 4,
		Groups: []GroupRecord{{ID: 1, Group: g}},
		Packages: []PackageRecord{
			{ID: 2, GroupID: 1, Method: "pairwise", Package: sess.Package(), Ops: sess.Log()},
			{ID: 3, GroupID: 1, Method: "pairwise", Package: tp2},
		},
	}
	return fx
}

// writeWAL appends records to a fresh log under dir and closes it.
func writeWAL(t testing.TB, dir, key string, recs []WALRecord) {
	t.Helper()
	w, err := OpenWAL(dir, key, WALSyncPolicy{Mode: WALSyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if _, err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// stateJSON canonicalizes a state for deep comparison: the snapshot
// encoding is deterministic (sorted ids, sorted map keys), so equal JSON
// means equal state.
func stateJSON(t testing.TB, st *ServerState) string {
	t.Helper()
	// Memoized profiles are a derivable cache and WALSeq is compaction
	// metadata, not logged state; drop both so snapshot-origin and
	// log-origin states compare on substance.
	cp := *st
	cp.WALSeq = 0
	cp.Groups = append([]GroupRecord(nil), st.Groups...)
	for i := range cp.Groups {
		cp.Groups[i].Profiles = nil
	}
	var buf bytes.Buffer
	if err := SaveServerState(&buf, &cp); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestWALReplayRoundTrip(t *testing.T) {
	fx := makeWALFixture(t)
	dir := t.TempDir()
	writeWAL(t, dir, "wal", fx.records)

	st, info, err := ReplayWAL(dir, "wal", fx.city, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != len(fx.records) || info.Truncated != "" {
		t.Fatalf("replay info = %+v, want %d clean records", info, len(fx.records))
	}
	if got, want := stateJSON(t, st), stateJSON(t, fx.want); got != want {
		t.Fatalf("replayed state differs:\n%s\nwant:\n%s", got, want)
	}
	// The op log survived — REMOVE, REPLACE, GENERATE in order.
	ops := st.Packages[0].Ops
	if len(ops) != 3 || ops[0].Kind != interact.OpRemove || ops[1].Kind != interact.OpReplace || ops[2].Kind != interact.OpGenerate {
		t.Fatalf("replayed op log = %+v", ops)
	}
}

// TestWALReplayOverSnapshot: replay applies the log as a suffix over the
// compaction snapshot, continuing id allocation past the snapshot's.
func TestWALReplayOverSnapshot(t *testing.T) {
	fx := makeWALFixture(t)
	dir := t.TempDir()

	// Snapshot holds the first record's worth of state (the group);
	// the log holds everything after.
	base := &ServerState{City: fx.city.Name, NextID: 2, Groups: fx.want.Groups}
	if _, err := WriteSnapshot(dir, "wal", base); err != nil {
		t.Fatal(err)
	}
	writeWAL(t, dir, "wal", fx.records[1:])

	snap, err := ReadSnapshot(dir, "wal", fx.city)
	if err != nil {
		t.Fatal(err)
	}
	st, info, err := ReplayWAL(dir, "wal", fx.city, snap)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != len(fx.records)-1 {
		t.Fatalf("replayed %d records, want %d", info.Records, len(fx.records)-1)
	}
	if got, want := stateJSON(t, st), stateJSON(t, fx.want); got != want {
		t.Fatalf("snapshot+log state differs:\n%s\nwant:\n%s", got, want)
	}
}

// replayPrefix replays a log holding only the first n fixture records —
// the ground truth that torn-tail recovery must land on.
func replayPrefix(t *testing.T, fx *walFixture, n int) *ServerState {
	t.Helper()
	dir := t.TempDir()
	writeWAL(t, dir, "prefix", fx.records[:n])
	st, info, err := ReplayWAL(dir, "prefix", fx.city, nil)
	if err != nil || info.Records != n || info.Truncated != "" {
		t.Fatalf("prefix replay: info %+v, err %v", info, err)
	}
	return st
}

// frameOffsets scans a log file and returns each record's start offset —
// the test's own framing walk, independent of the replayer.
func frameOffsets(t testing.TB, path string) []int64 {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	off := walHeaderLen
	for off < int64(len(raw)) {
		offs = append(offs, off)
		n := int64(uint32(raw[off]) | uint32(raw[off+1])<<8 | uint32(raw[off+2])<<16 | uint32(raw[off+3])<<24)
		off += walFrameLen + n
	}
	return offs
}

// TestWALTornTailTruncated: cutting the log mid-record must replay to
// exactly the state of the surviving prefix, truncate the file at the
// last valid record, and report the cut — and the repaired log must then
// replay cleanly to the same state.
func TestWALTornTailTruncated(t *testing.T) {
	fx := makeWALFixture(t)
	for cut := 1; cut < len(fx.records); cut++ {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			writeWAL(t, dir, "wal", fx.records)
			path := WALPath(dir, "wal")
			offs := frameOffsets(t, path)
			// Tear: keep `cut` whole records plus half of the next one.
			tearAt := offs[cut] + walFrameLen + 3
			if err := os.Truncate(path, tearAt); err != nil {
				t.Fatal(err)
			}

			st, info, err := ReplayWAL(dir, "wal", fx.city, nil)
			if err != nil {
				t.Fatal(err)
			}
			if info.Records != cut || info.Truncated == "" || info.DroppedBytes == 0 {
				t.Fatalf("tear at record %d: info %+v", cut, info)
			}
			if got, want := stateJSON(t, st), stateJSON(t, replayPrefix(t, fx, cut)); got != want {
				t.Fatalf("torn replay != surviving prefix:\n%s\nwant:\n%s", got, want)
			}
			// The repair truncated the file to the last valid record.
			if fi, err := os.Stat(path); err != nil || fi.Size() != offs[cut] {
				t.Fatalf("file not truncated to %d: %v %v", offs[cut], fi.Size(), err)
			}
			st2, info2, err := ReplayWAL(dir, "wal", fx.city, nil)
			if err != nil || info2.Truncated != "" || info2.Records != cut {
				t.Fatalf("repaired log not clean: info %+v, err %v", info2, err)
			}
			if stateJSON(t, st2) != stateJSON(t, st) {
				t.Fatal("repaired log replays to a different state")
			}
		})
	}
}

// TestWALBitFlipTruncated: a flipped byte inside a record's payload fails
// its CRC; recovery keeps the records before it.
func TestWALBitFlipTruncated(t *testing.T) {
	fx := makeWALFixture(t)
	dir := t.TempDir()
	writeWAL(t, dir, "wal", fx.records)
	path := WALPath(dir, "wal")
	offs := frameOffsets(t, path)

	const victim = 2
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[offs[victim]+walFrameLen+5] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st, info, err := ReplayWAL(dir, "wal", fx.city, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != victim || info.Truncated == "" {
		t.Fatalf("bit flip in record %d: info %+v", victim, info)
	}
	if got, want := stateJSON(t, st), stateJSON(t, replayPrefix(t, fx, victim)); got != want {
		t.Fatal("bit-flip replay != surviving prefix")
	}
}

// TestWALInapplicableRecordTruncated: a structurally valid record the
// state cannot apply (here: a package for an unknown group) also cuts the
// log — the prefix stays served, nothing panics, nothing is fatal.
func TestWALInapplicableRecordTruncated(t *testing.T) {
	fx := makeWALFixture(t)
	dir := t.TempDir()
	bad := fx.records[1] // packageBuild...
	bad.rec.GroupID = 99 // ...for a group that never existed
	recs := []WALRecord{fx.records[0], bad, fx.records[1]}
	writeWAL(t, dir, "wal", recs)

	st, info, err := ReplayWAL(dir, "wal", fx.city, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 1 || info.Truncated == "" {
		t.Fatalf("info %+v", info)
	}
	if len(st.Groups) != 1 || len(st.Packages) != 0 {
		t.Fatalf("state after inapplicable record: %d groups, %d packages", len(st.Groups), len(st.Packages))
	}
}

// TestWALBadHeaderQuarantined: a log without the magic header cannot be
// trusted at all; it is moved aside, never silently treated as empty.
func TestWALBadHeaderQuarantined(t *testing.T) {
	fx := makeWALFixture(t)
	dir := t.TempDir()
	path := WALPath(dir, "wal")
	if err := os.WriteFile(path, []byte("not a wal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, info, err := ReplayWAL(dir, "wal", fx.city, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Truncated == "" || len(st.Groups) != 0 {
		t.Fatalf("info %+v, state %+v", info, st)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("bad log not quarantined: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("bad log still in place: %v", err)
	}
}

// TestWALResetAfterCompaction: Reset drops the log back to its header —
// the compaction contract — and the appender keeps working after it.
func TestWALResetAfterCompaction(t *testing.T) {
	fx := makeWALFixture(t)
	dir := t.TempDir()
	w, err := OpenWAL(dir, "wal", WALSyncPolicy{Mode: WALSyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for _, r := range fx.records[:2] {
		if _, err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if st := w.Stats(); st.Records != 2 || st.Bytes == 0 || st.Fsyncs == 0 {
		t.Fatalf("pre-reset stats %+v", st)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.Records != 0 || st.Bytes != 0 {
		t.Fatalf("post-reset stats %+v", st)
	}
	// Appends after the reset are the new log suffix.
	if _, err := w.Append(fx.records[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, info, err := ReplayWAL(dir, "wal", fx.city, nil)
	if err != nil || info.Records != 1 || info.Truncated != "" {
		t.Fatalf("post-reset replay info %+v, err %v", info, err)
	}
}

// TestWALConcurrentAppends: concurrent durable appends must all commit
// intact (writes serialize, fsyncs group-commit), and the group commit
// must actually batch — far fewer fsyncs than appends under contention is
// the design goal, but at minimum every record must survive replay.
func TestWALConcurrentAppends(t *testing.T) {
	fx := makeWALFixture(t)
	dir := t.TempDir()
	w, err := OpenWAL(dir, "wal", WALSyncPolicy{Mode: WALSyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := fx.want.Groups[0].Group
			if _, err := w.Append(GroupCreateRecord(10+i, g)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if st := w.Stats(); st.Records != n || st.Fsyncs == 0 {
		t.Fatalf("stats after concurrent appends: %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, info, err := ReplayWAL(dir, "wal", fx.city, nil)
	if err != nil || info.Records != n || info.Truncated != "" {
		t.Fatalf("replay info %+v, err %v", info, err)
	}
	if len(st.Groups) != n || st.NextID != 10+n {
		t.Fatalf("replayed %d groups, nextID %d", len(st.Groups), st.NextID)
	}
}

func TestParseWALSync(t *testing.T) {
	cases := []struct {
		in   string
		want WALSyncPolicy
		ok   bool
	}{
		{"always", WALSyncPolicy{Mode: WALSyncAlways}, true},
		{"", WALSyncPolicy{Mode: WALSyncAlways}, true},
		{"off", WALSyncPolicy{Mode: WALSyncOff}, true},
		{"interval", WALSyncPolicy{Mode: WALSyncInterval, Interval: DefaultWALSyncInterval}, true},
		{"250ms", WALSyncPolicy{Mode: WALSyncInterval, Interval: 250 * time.Millisecond}, true},
		{"-5s", WALSyncPolicy{}, false},
		{"sometimes", WALSyncPolicy{}, false},
	}
	for _, c := range cases {
		got, err := ParseWALSync(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Fatalf("ParseWALSync(%q) = %+v, %v", c.in, got, err)
		}
	}
	// String round-trips through the parser's vocabulary.
	for _, p := range []WALSyncPolicy{{Mode: WALSyncAlways}, {Mode: WALSyncOff}, {Mode: WALSyncInterval, Interval: time.Second}} {
		back, err := ParseWALSync(p.String())
		if err != nil || back != p {
			t.Fatalf("round trip %v -> %q -> %v (%v)", p, p.String(), back, err)
		}
	}
}

// TestWALSyncOffNoFsyncs: the off policy must not fsync per append (the
// whole point of offering it).
func TestWALSyncOffNoFsyncs(t *testing.T) {
	fx := makeWALFixture(t)
	dir := t.TempDir()
	w, err := OpenWAL(dir, "wal", WALSyncPolicy{Mode: WALSyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for _, r := range fx.records {
		if _, err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if st := w.Stats(); st.Fsyncs != 0 {
		t.Fatalf("off policy fsynced %d times", st.Fsyncs)
	}
}

// TestWALCompactionCrashIdempotent: a compaction can crash after its
// snapshot lands but before the covered log records are removed. Replay
// must skip records at or below the snapshot's sequence watermark —
// without the skip, customOp records re-append to the package's op log
// and /refine computes from a doubled history.
func TestWALCompactionCrashIdempotent(t *testing.T) {
	fx := makeWALFixture(t)
	dir := t.TempDir()
	writeWAL(t, dir, "wal", fx.records)

	// The compaction's snapshot: everything the log holds, watermark at
	// the last record's sequence.
	st, info, err := ReplayWAL(dir, "wal", fx.city, nil)
	if err != nil || info.Records != len(fx.records) {
		t.Fatalf("info %+v err %v", info, err)
	}
	st.WALSeq = info.LastSeq
	if _, err := WriteSnapshot(dir, "wal", st); err != nil {
		t.Fatal(err)
	}
	// "Crash": the log was never truncated. Recovery = snapshot + full
	// log; every record must be skipped, none double-applied.
	snap, err := ReadSnapshot(dir, "wal", fx.city)
	if err != nil {
		t.Fatal(err)
	}
	got, info2, err := ReplayWAL(dir, "wal", fx.city, snap)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Records != 0 || info2.Skipped != len(fx.records) || info2.Truncated != "" {
		t.Fatalf("post-crash replay info %+v, want all %d records skipped", info2, len(fx.records))
	}
	if len(got.Packages[0].Ops) != 3 {
		t.Fatalf("op log has %d ops, want 3 (double-applied?)", len(got.Packages[0].Ops))
	}
	if stateJSON(t, got) != stateJSON(t, st) {
		t.Fatal("post-crash state differs from the snapshot")
	}
	// New appends must continue above the watermark, or they would be
	// invisible to the next replay.
	w, err := OpenWAL(dir, "wal", WALSyncPolicy{Mode: WALSyncOff})
	if err != nil {
		t.Fatal(err)
	}
	w.Seed(info2.CurrentRecords, info2.LastSeq)
	if got, want := w.LastSeq(), info.LastSeq; got != want {
		t.Fatalf("seeded LastSeq = %d, want %d", got, want)
	}
	w.Close()
}

// TestWALRotateChain: Rotate seals the log as the pending segment and
// recovery replays pending-then-current — the crash-mid-compaction
// layout. Once a snapshot covers the pending records, replay skips them.
func TestWALRotateChain(t *testing.T) {
	fx := makeWALFixture(t)
	dir := t.TempDir()
	w, err := OpenWAL(dir, "wal", WALSyncPolicy{Mode: WALSyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fx.records[:2] { // group + package
		if _, err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	watermark := w.LastSeq()
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if !w.PendingExists() {
		t.Fatal("rotate left no pending segment")
	}
	if st := w.Stats(); st.Records != 0 || st.Bytes != 0 {
		t.Fatalf("fresh segment stats %+v", st)
	}
	// A second rotation with a pending segment outstanding must refuse —
	// overwriting it would destroy records no snapshot holds.
	if err := w.Rotate(); err == nil {
		t.Fatal("rotate over an existing pending segment accepted")
	}
	if _, err := w.Append(fx.records[2]); err != nil { // a customOp, seq 3
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash before the snapshot landed: replay chains pending + current.
	st, info, err := ReplayWAL(dir, "wal", fx.city, nil)
	if err != nil || info.Records != 3 || info.Truncated != "" {
		t.Fatalf("chain replay info %+v err %v", info, err)
	}
	if got, want := stateJSON(t, st), stateJSON(t, replayPrefix(t, fx, 3)); got != want {
		t.Fatal("chained replay != first three records")
	}
	// Crash after the snapshot landed: pending records are skipped, the
	// current segment still applies.
	base := replayPrefix(t, fx, 2)
	base.WALSeq = watermark
	if _, err := WriteSnapshot(dir, "wal", base); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(dir, "wal", fx.city)
	if err != nil {
		t.Fatal(err)
	}
	st2, info2, err := ReplayWAL(dir, "wal", fx.city, snap)
	if err != nil || info2.Records != 1 || info2.Skipped != 2 {
		t.Fatalf("post-snapshot chain info %+v err %v", info2, err)
	}
	if info2.CurrentRecords != 1 {
		t.Fatalf("current segment records = %d, want 1", info2.CurrentRecords)
	}
	if stateJSON(t, st2) != stateJSON(t, st) {
		t.Fatal("skip-based replay diverged from full replay")
	}
	// Compaction's final step removes the pending segment; the chain
	// then replays identically from snapshot + current alone.
	if err := RemovePendingWAL(dir, "wal"); err != nil {
		t.Fatal(err)
	}
	snap2, _ := ReadSnapshot(dir, "wal", fx.city)
	st3, info3, err := ReplayWAL(dir, "wal", fx.city, snap2)
	if err != nil || info3.Records != 1 || info3.Skipped != 0 {
		t.Fatalf("post-removal info %+v err %v", info3, err)
	}
	if stateJSON(t, st3) != stateJSON(t, st2) {
		t.Fatal("state changed after pending removal")
	}
}

// TestWALIntervalFlushTimer: under the interval policy, the records of a
// burst that ends quietly must still reach disk within roughly one
// interval — an armed deadline flush, not just "on the next append".
func TestWALIntervalFlushTimer(t *testing.T) {
	fx := makeWALFixture(t)
	dir := t.TempDir()
	w, err := OpenWAL(dir, "wal", WALSyncPolicy{Mode: WALSyncInterval, Interval: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(fx.records[0]); err != nil {
		t.Fatal(err)
	}
	// No further appends: without the deadline flush this would stay
	// unsynced forever.
	deadline := time.Now().Add(2 * time.Second)
	for w.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("burst tail never fsynced under interval policy")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWALAppendFramesBatch: a replicated batch lands with one write and
// one group-commit fsync — not one per frame — skips frames the log
// already holds, and replays identically to the source records.
func TestWALAppendFramesBatch(t *testing.T) {
	fx := makeWALFixture(t)
	srcDir := t.TempDir()
	writeWAL(t, srcDir, "wal", fx.records)
	frames, err := CollectWALFrames(srcDir, "wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != len(fx.records) {
		t.Fatalf("collected %d frames, want %d", len(frames), len(fx.records))
	}

	dir := t.TempDir()
	w, err := OpenWAL(dir, "wal", WALSyncPolicy{Mode: WALSyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendFrames(frames); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Records != int64(len(frames)) {
		t.Fatalf("records = %d, want %d", st.Records, len(frames))
	}
	if st.Fsyncs != 1 {
		t.Fatalf("batch append fsynced %d times, want 1", st.Fsyncs)
	}
	// Re-sending the whole batch is a no-op (at-least-once delivery): the
	// durable prefix is skipped, nothing appends, nothing fsyncs.
	if err := w.AppendFrames(frames); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats(); got.Records != int64(len(frames)) || got.Fsyncs != 1 {
		t.Fatalf("idempotent re-send changed the log: %+v", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st2, info, err := ReplayWAL(dir, "wal", fx.city, nil)
	if err != nil || info.Records != len(fx.records) || info.Truncated != "" {
		t.Fatalf("replay info %+v err %v", info, err)
	}
	if got, want := stateJSON(t, st2), stateJSON(t, replayPrefix(t, fx, len(fx.records))); got != want {
		t.Fatal("batch-appended log replays differently from the source records")
	}
}

// TestWALGapDropsCurrentSegment: when the pending segment loses records,
// the current log continues from sequences that no longer exist. Replay
// must not apply across the gap — the surviving prefix ends at the cut,
// and the current log is dropped rather than fabricating an op history
// with a hole in the middle.
func TestWALGapDropsCurrentSegment(t *testing.T) {
	fx := makeWALFixture(t)
	dir := t.TempDir()
	w, err := OpenWAL(dir, "wal", WALSyncPolicy{Mode: WALSyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fx.records[:3] { // group, package, customOp
		if _, err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(fx.records[3]); err != nil { // another customOp, seq 4
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the pending segment's last record (the seq-3 customOp).
	pending := PendingWALPath(dir, "wal")
	fi, err := os.Stat(pending)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(pending, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	st, info, err := ReplayWAL(dir, "wal", fx.city, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 2 || info.Truncated == "" {
		t.Fatalf("info %+v, want 2 records and a reported cut", info)
	}
	// Neither the torn seq-3 op nor the seq-4 op that depended on it
	// applied: the op log is the 2-record prefix, not records 1,2,4.
	if len(st.Packages) != 1 || len(st.Packages[0].Ops) != 0 {
		t.Fatalf("state after gap: %d packages, ops %v", len(st.Packages), st.Packages[0].Ops)
	}
	if got, want := stateJSON(t, st), stateJSON(t, replayPrefix(t, fx, 2)); got != want {
		t.Fatal("gap replay != surviving prefix")
	}
	// The repair is a fixpoint and the current log was emptied, not left
	// holding unreachable records.
	st2, info2, err := ReplayWAL(dir, "wal", fx.city, nil)
	if err != nil || info2.Truncated != "" || info2.Records != 2 {
		t.Fatalf("repaired replay info %+v err %v", info2, err)
	}
	if stateJSON(t, st2) != stateJSON(t, st) {
		t.Fatal("repaired gap replay diverged")
	}
}
