// Package store persists GroupTravel state — profiles, groups and travel
// packages — as versioned JSON. The paper's §3.3 motivates it directly:
// profile refinement exists to "build long-lasting profiles for
// non-ephemeral groups", which requires profiles that outlive a process,
// and a group's customized package must be shareable among members.
//
// POIs inside a package are stored by id and re-resolved against the city
// on load, so a package file stays small and never duplicates (or
// diverges from) the city dataset.
package store

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"grouptravel/internal/ci"
	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
	"grouptravel/internal/geo"
	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/query"
	"grouptravel/internal/vec"
)

// Version is the on-disk format version; readers reject newer files.
const Version = 1

type profileJSON struct {
	Version int       `json:"version"`
	Acco    []float64 `json:"acco"`
	Trans   []float64 `json:"trans"`
	Rest    []float64 `json:"rest"`
	Attr    []float64 `json:"attr"`
}

// profileToJSON flattens a profile into the on-disk record.
func profileToJSON(p *profile.Profile) profileJSON {
	return profileJSON{
		Version: Version,
		Acco:    p.Vector(poi.Acco),
		Trans:   p.Vector(poi.Trans),
		Rest:    p.Vector(poi.Rest),
		Attr:    p.Vector(poi.Attr),
	}
}

// profileFromJSON rebuilds and validates a profile against the schema.
func profileFromJSON(in profileJSON, schema *poi.Schema) (*profile.Profile, error) {
	p := profile.New(schema)
	for cat, v := range map[poi.Category][]float64{
		poi.Acco: in.Acco, poi.Trans: in.Trans, poi.Rest: in.Rest, poi.Attr: in.Attr,
	} {
		if len(v) != schema.Dim(cat) {
			return nil, fmt.Errorf("store: profile %s dim %d, schema wants %d", cat, len(v), schema.Dim(cat))
		}
		if err := p.SetVector(cat, vec.Vector(v)); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// SaveProfile writes a profile as JSON.
func SaveProfile(w io.Writer, p *profile.Profile) error {
	if p == nil {
		return fmt.Errorf("store: nil profile")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(profileToJSON(p))
}

// LoadProfile reads a profile and validates it against the schema.
func LoadProfile(r io.Reader, schema *poi.Schema) (*profile.Profile, error) {
	var in profileJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("store: decode profile: %w", err)
	}
	if in.Version > Version {
		return nil, fmt.Errorf("store: profile format v%d newer than supported v%d", in.Version, Version)
	}
	return profileFromJSON(in, schema)
}

type groupJSON struct {
	Version int           `json:"version"`
	Members []profileJSON `json:"members"`
}

// groupToJSON flattens a group's member profiles.
func groupToJSON(g *profile.Group) groupJSON {
	out := groupJSON{Version: Version}
	for _, m := range g.Members {
		out.Members = append(out.Members, profileToJSON(m))
	}
	return out
}

// groupFromJSON rebuilds a group against the schema.
func groupFromJSON(in groupJSON, schema *poi.Schema) (*profile.Group, error) {
	members := make([]*profile.Profile, 0, len(in.Members))
	for i, mj := range in.Members {
		p, err := profileFromJSON(mj, schema)
		if err != nil {
			return nil, fmt.Errorf("store: member %d: %w", i, err)
		}
		members = append(members, p)
	}
	return profile.NewGroup(schema, members)
}

// SaveGroup writes a group's member profiles.
func SaveGroup(w io.Writer, g *profile.Group) error {
	if g == nil {
		return fmt.Errorf("store: nil group")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(groupToJSON(g))
}

// LoadGroup reads a group against the schema.
func LoadGroup(r io.Reader, schema *poi.Schema) (*profile.Group, error) {
	var in groupJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("store: decode group: %w", err)
	}
	if in.Version > Version {
		return nil, fmt.Errorf("store: group format v%d newer than supported v%d", in.Version, Version)
	}
	return groupFromJSON(in, schema)
}

type packageJSON struct {
	Version int          `json:"version"`
	City    string       `json:"city"`
	Query   queryJSON    `json:"query"`
	Params  *paramsJSON  `json:"params,omitempty"`
	Group   *profileJSON `json:"group,omitempty"`
	CIs     []ciJSON     `json:"cis"`
	ObjVal  float64      `json:"objective"`
}

// paramsJSON persists the Eq. 1 tunables a package was built with, so a
// reloaded package customizes (notably GENERATE, which rebuilds CIs with
// the package's Beta/Gamma) exactly like the original. Stored verbatim:
// baseline packages (BuildRandom) legitimately carry partial params.
type paramsJSON struct {
	K             int     `json:"k"`
	Alpha         float64 `json:"alpha"`
	Beta          float64 `json:"beta"`
	Gamma         float64 `json:"gamma"`
	F             float64 `json:"f"`
	M             float64 `json:"m"`
	ClusterIters  int     `json:"clusterIters"`
	RefineRounds  int     `json:"refineRounds"`
	Seed          int64   `json:"seed"`
	DistinctItems bool    `json:"distinctItems,omitempty"`
}

type queryJSON struct {
	Acco, Trans, Rest, Attr int
	Budget                  float64 // <= 0 encodes "unlimited"
}

type ciJSON struct {
	Centroid geo.Point `json:"centroid"`
	ItemIDs  []int     `json:"items"`
}

// ciToJSON flattens one composite item; POIs are referenced by id.
func ciToJSON(c *ci.CI) ciJSON {
	cj := ciJSON{Centroid: c.Centroid}
	for _, it := range c.Items {
		cj.ItemIDs = append(cj.ItemIDs, it.ID)
	}
	return cj
}

// ciFromJSON rebuilds a CI, resolving its POIs against the city.
func ciFromJSON(in ciJSON, city *dataset.City) (*ci.CI, error) {
	c := &ci.CI{Centroid: in.Centroid}
	for _, id := range in.ItemIDs {
		p := city.POIs.ByID(id)
		if p == nil {
			return nil, fmt.Errorf("store: CI references unknown POI %d", id)
		}
		c.Items = append(c.Items, p)
	}
	return c, nil
}

// packageToJSON flattens a package; POIs are referenced by id.
func packageToJSON(tp *core.TravelPackage) packageJSON {
	out := packageJSON{
		Version: Version,
		City:    tp.City,
		ObjVal:  tp.ObjVal,
		Query: queryJSON{
			Acco: tp.Query.Counts[poi.Acco], Trans: tp.Query.Counts[poi.Trans],
			Rest: tp.Query.Counts[poi.Rest], Attr: tp.Query.Counts[poi.Attr],
		},
	}
	if !tp.Query.Unbounded() {
		out.Query.Budget = tp.Query.Budget
	}
	out.Params = &paramsJSON{
		K: tp.Params.K, Alpha: tp.Params.Alpha, Beta: tp.Params.Beta,
		Gamma: tp.Params.Gamma, F: tp.Params.F, M: tp.Params.M,
		ClusterIters: tp.Params.ClusterIters, RefineRounds: tp.Params.RefineRounds,
		Seed: tp.Params.Seed, DistinctItems: tp.Params.DistinctItems,
	}
	if tp.Group != nil {
		gj := profileToJSON(tp.Group)
		out.Group = &gj
	}
	for _, c := range tp.CIs {
		out.CIs = append(out.CIs, ciToJSON(c))
	}
	return out
}

// packageFromJSON rebuilds a package, resolving its POIs against the city.
// The city must be the same dataset the package was built on (name and all
// referenced ids must match).
func packageFromJSON(in packageJSON, city *dataset.City) (*core.TravelPackage, error) {
	if in.City != city.Name {
		return nil, fmt.Errorf("store: package was built on %q, got city %q", in.City, city.Name)
	}
	budget := in.Query.Budget
	if budget <= 0 {
		budget = math.Inf(1)
	}
	q, err := query.New(in.Query.Acco, in.Query.Trans, in.Query.Rest, in.Query.Attr, budget)
	if err != nil {
		return nil, err
	}
	tp := &core.TravelPackage{Query: q, City: in.City, ObjVal: in.ObjVal}
	if in.Params != nil {
		tp.Params = core.Params{
			K: in.Params.K, Alpha: in.Params.Alpha, Beta: in.Params.Beta,
			Gamma: in.Params.Gamma, F: in.Params.F, M: in.Params.M,
			ClusterIters: in.Params.ClusterIters, RefineRounds: in.Params.RefineRounds,
			Seed: in.Params.Seed, DistinctItems: in.Params.DistinctItems,
		}
	}
	if in.Group != nil {
		gp, err := profileFromJSON(*in.Group, city.Schema)
		if err != nil {
			return nil, err
		}
		tp.Group = gp
	}
	for i, cj := range in.CIs {
		c, err := ciFromJSON(cj, city)
		if err != nil {
			return nil, fmt.Errorf("store: CI %d: %w", i, err)
		}
		tp.CIs = append(tp.CIs, c)
	}
	return tp, nil
}

// SavePackage writes a travel package. POIs are referenced by id.
func SavePackage(w io.Writer, tp *core.TravelPackage) error {
	if tp == nil {
		return fmt.Errorf("store: nil package")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(packageToJSON(tp))
}

// LoadPackage reads a package and resolves its POIs against the city.
func LoadPackage(r io.Reader, city *dataset.City) (*core.TravelPackage, error) {
	if city == nil || city.POIs == nil {
		return nil, fmt.Errorf("store: nil city")
	}
	var in packageJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("store: decode package: %w", err)
	}
	if in.Version > Version {
		return nil, fmt.Errorf("store: package format v%d newer than supported v%d", in.Version, Version)
	}
	return packageFromJSON(in, city)
}
