package store

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"grouptravel/internal/consensus"
	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/query"
	"grouptravel/internal/rng"
	"grouptravel/internal/vec"
)

var storeCity *dataset.City

func city(t testing.TB) *dataset.City {
	t.Helper()
	if storeCity == nil {
		c, err := dataset.Generate(dataset.TestSpec("StoreCity", 81))
		if err != nil {
			t.Fatal(err)
		}
		storeCity = c
	}
	return storeCity
}

func TestProfileRoundTrip(t *testing.T) {
	c := city(t)
	p := profile.GenerateRandomProfile(c.Schema, rng.New(1))
	var buf bytes.Buffer
	if err := SaveProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := LoadProfile(&buf, c.Schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, cat := range poi.Categories {
		if !vec.Equal(p.Vector(cat), q.Vector(cat), 1e-12) {
			t.Fatalf("%s changed in round trip", cat)
		}
	}
}

func TestProfileLoadRejectsWrongSchema(t *testing.T) {
	c := city(t)
	p := profile.GenerateRandomProfile(c.Schema, rng.New(2))
	var buf bytes.Buffer
	if err := SaveProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	tiny := poi.NewSchema([]string{"a"}, []string{"b"}, []string{"c"}, []string{"d"})
	if _, err := LoadProfile(&buf, tiny); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestProfileLoadRejectsGarbageAndFutureVersion(t *testing.T) {
	c := city(t)
	if _, err := LoadProfile(strings.NewReader("{bad"), c.Schema); err == nil {
		t.Fatal("garbage accepted")
	}
	future := `{"version": 999, "acco": [], "trans": [], "rest": [], "attr": []}`
	if _, err := LoadProfile(strings.NewReader(future), c.Schema); err == nil {
		t.Fatal("future version accepted")
	}
	// Out-of-range values must be rejected by SetVector validation.
	bad := `{"version":1,"acco":[2,0,0,0,0,0,0,0],"trans":[0,0,0,0,0,0,0,0],"rest":[0,0,0,0,0,0],"attr":[0,0,0,0,0,0]}`
	if _, err := LoadProfile(strings.NewReader(bad), c.Schema); err == nil {
		t.Fatal("out-of-range component accepted")
	}
}

func TestGroupRoundTrip(t *testing.T) {
	c := city(t)
	g, err := profile.GenerateUniformGroup(c.Schema, 4, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveGroup(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGroup(&buf, c.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Size() != g.Size() {
		t.Fatalf("size %d -> %d", g.Size(), g2.Size())
	}
	if math.Abs(g2.Uniformity()-g.Uniformity()) > 1e-12 {
		t.Fatal("uniformity changed in round trip")
	}
	for i := range g.Members {
		if !vec.Equal(g.Members[i].Concat(), g2.Members[i].Concat(), 1e-12) {
			t.Fatalf("member %d changed", i)
		}
	}
}

func TestPackageRoundTrip(t *testing.T) {
	c := city(t)
	e, err := core.NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	g, err := profile.GenerateUniformGroup(c.Schema, 4, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	gp, err := consensus.GroupProfile(g, consensus.PairwiseDis)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := e.Build(gp, query.MustNew(1, 1, 1, 3, 9), core.DefaultParams(3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SavePackage(&buf, tp); err != nil {
		t.Fatal(err)
	}
	tp2, err := LoadPackage(&buf, c)
	if err != nil {
		t.Fatal(err)
	}
	if tp2.City != tp.City || len(tp2.CIs) != len(tp.CIs) {
		t.Fatal("identity lost")
	}
	if tp2.Query != tp.Query {
		t.Fatalf("query changed: %v -> %v", tp.Query, tp2.Query)
	}
	if tp2.Params != tp.Params {
		t.Fatalf("params changed: %+v -> %+v", tp.Params, tp2.Params)
	}
	if !tp2.Valid() {
		t.Fatal("loaded package invalid")
	}
	for j := range tp.CIs {
		if tp.CIs[j].Centroid != tp2.CIs[j].Centroid {
			t.Fatalf("CI %d centroid changed", j)
		}
		for i := range tp.CIs[j].Items {
			if tp.CIs[j].Items[i].ID != tp2.CIs[j].Items[i].ID {
				t.Fatalf("CI %d item %d changed", j, i)
			}
		}
	}
	// The group profile survives.
	if tp2.Group == nil {
		t.Fatal("group profile lost")
	}
	for _, cat := range poi.Categories {
		if !vec.Equal(tp.Group.Vector(cat), tp2.Group.Vector(cat), 1e-12) {
			t.Fatalf("group profile %s changed", cat)
		}
	}
}

func TestPackageUnboundedBudgetRoundTrip(t *testing.T) {
	c := city(t)
	e, _ := core.NewEngine(c)
	tp, err := e.Build(nil, query.Default(), core.DefaultParams(3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SavePackage(&buf, tp); err != nil {
		t.Fatal(err)
	}
	tp2, err := LoadPackage(&buf, c)
	if err != nil {
		t.Fatal(err)
	}
	if !tp2.Query.Unbounded() {
		t.Fatal("unlimited budget not preserved")
	}
	if tp2.Group != nil {
		t.Fatal("nil group became non-nil")
	}
}

func TestPackageLoadRejectsWrongCity(t *testing.T) {
	c := city(t)
	e, _ := core.NewEngine(c)
	tp, err := e.Build(nil, query.Default(), core.DefaultParams(3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SavePackage(&buf, tp); err != nil {
		t.Fatal(err)
	}
	other, err := dataset.Generate(dataset.TestSpec("OtherCity", 82))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPackage(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("wrong city accepted")
	}
}

func TestPackageLoadRejectsUnknownPOI(t *testing.T) {
	c := city(t)
	doc := `{"version":1,"city":"StoreCity","query":{"Acco":1,"Trans":0,"Rest":0,"Attr":0,"Budget":0},
	         "cis":[{"centroid":{"Lat":48.85,"Lon":2.35},"items":[999999]}]}`
	if _, err := LoadPackage(strings.NewReader(doc), c); err == nil {
		t.Fatal("unknown POI id accepted")
	}
}

func TestNilArguments(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveProfile(&buf, nil); err == nil {
		t.Fatal("nil profile accepted")
	}
	if err := SaveGroup(&buf, nil); err == nil {
		t.Fatal("nil group accepted")
	}
	if err := SavePackage(&buf, nil); err == nil {
		t.Fatal("nil package accepted")
	}
	if _, err := LoadPackage(strings.NewReader("{}"), nil); err == nil {
		t.Fatal("nil city accepted")
	}
}
