package store

import (
	"bytes"
	"strings"
	"testing"

	"grouptravel/internal/consensus"
	"grouptravel/internal/core"
	"grouptravel/internal/interact"
	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/query"
	"grouptravel/internal/rng"
	"grouptravel/internal/vec"
)

// buildState assembles a realistic full server state over the shared test
// city: two groups (one with a memoized consensus profile) and two built
// packages.
func buildState(t *testing.T) *ServerState {
	t.Helper()
	c := city(t)
	e, err := core.NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := profile.GenerateUniformGroup(c.Schema, 3, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := profile.GenerateUniformGroup(c.Schema, 5, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	gp, err := consensus.GroupProfile(g1, consensus.PairwiseDis)
	if err != nil {
		t.Fatal(err)
	}
	tp1, err := e.Build(gp, query.Default(), core.DefaultParams(3))
	if err != nil {
		t.Fatal(err)
	}
	tp2, err := e.Build(nil, query.MustNew(1, 0, 1, 2, 8), core.DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	// Package 3 carries a customization log (a remove + an add), the way a
	// served session would after /ops.
	ops := []interact.Op{
		{Kind: interact.OpRemove, Member: 0, CIIndex: 0, Removed: []*poi.POI{tp1.CIs[0].Items[0]}},
		{Kind: interact.OpAdd, Member: 2, CIIndex: 1, Added: []*poi.POI{tp1.CIs[1].Items[0]}},
	}
	return &ServerState{
		City:   c.Name,
		NextID: 5,
		Groups: []GroupRecord{
			{ID: 1, Group: g1, Profiles: map[string]*profile.Profile{"pairwise": gp}},
			{ID: 2, Group: g2},
		},
		Packages: []PackageRecord{
			{ID: 3, GroupID: 1, Method: "pairwise", Package: tp1, Ops: ops},
			{ID: 4, GroupID: 2, Method: "avg", Package: tp2},
		},
	}
}

func TestServerStateRoundTrip(t *testing.T) {
	c := city(t)
	st := buildState(t)
	var buf bytes.Buffer
	if err := SaveServerState(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := LoadServerState(&buf, c)
	if err != nil {
		t.Fatal(err)
	}
	if got.City != st.City || got.NextID != st.NextID {
		t.Fatalf("identity lost: %+v", got)
	}
	if len(got.Groups) != 2 || len(got.Packages) != 2 {
		t.Fatalf("counts: %d groups, %d packages", len(got.Groups), len(got.Packages))
	}
	for i, gr := range got.Groups {
		want := st.Groups[i]
		if gr.ID != want.ID || gr.Group.Size() != want.Group.Size() {
			t.Fatalf("group %d: %+v", i, gr)
		}
		for m := range want.Group.Members {
			if !vec.Equal(gr.Group.Members[m].Concat(), want.Group.Members[m].Concat(), 1e-12) {
				t.Fatalf("group %d member %d changed", gr.ID, m)
			}
		}
		if len(gr.Profiles) != len(want.Profiles) {
			t.Fatalf("group %d memoized profiles: %d -> %d", gr.ID, len(want.Profiles), len(gr.Profiles))
		}
		for name, p := range want.Profiles {
			q, ok := gr.Profiles[name]
			if !ok {
				t.Fatalf("group %d lost consensus profile %q", gr.ID, name)
			}
			for _, cat := range poi.Categories {
				if !vec.Equal(p.Vector(cat), q.Vector(cat), 1e-12) {
					t.Fatalf("group %d profile %q %s changed", gr.ID, name, cat)
				}
			}
		}
	}
	for i, pr := range got.Packages {
		want := st.Packages[i]
		if pr.ID != want.ID || pr.GroupID != want.GroupID || pr.Method != want.Method {
			t.Fatalf("package record %d: %+v", i, pr)
		}
		if len(pr.Package.CIs) != len(want.Package.CIs) || !pr.Package.Valid() {
			t.Fatalf("package %d CIs changed or invalid", pr.ID)
		}
		for j := range want.Package.CIs {
			if pr.Package.CIs[j].Centroid != want.Package.CIs[j].Centroid {
				t.Fatalf("package %d CI %d centroid changed", pr.ID, j)
			}
			for k := range want.Package.CIs[j].Items {
				if pr.Package.CIs[j].Items[k].ID != want.Package.CIs[j].Items[k].ID {
					t.Fatalf("package %d CI %d item %d changed", pr.ID, j, k)
				}
			}
		}
		if len(pr.Ops) != len(want.Ops) {
			t.Fatalf("package %d op log: %d -> %d ops", pr.ID, len(want.Ops), len(pr.Ops))
		}
		for j, op := range want.Ops {
			got := pr.Ops[j]
			if got.Kind != op.Kind || got.Member != op.Member || got.CIIndex != op.CIIndex ||
				len(got.Added) != len(op.Added) || len(got.Removed) != len(op.Removed) {
				t.Fatalf("package %d op %d changed: %+v -> %+v", pr.ID, j, op, got)
			}
			for k := range op.Added {
				if got.Added[k].ID != op.Added[k].ID {
					t.Fatalf("package %d op %d added POI changed", pr.ID, j)
				}
			}
			for k := range op.Removed {
				if got.Removed[k].ID != op.Removed[k].ID {
					t.Fatalf("package %d op %d removed POI changed", pr.ID, j)
				}
			}
		}
	}
}

func TestServerStateRejectsCorruption(t *testing.T) {
	c := city(t)
	st := buildState(t)
	var buf bytes.Buffer
	if err := SaveServerState(&buf, st); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"truncated":        good[:len(good)/2],
		"garbage":          "{]",
		"future version":   strings.Replace(good, `"version": 1`, `"version": 99`, 1),
		"wrong city":       strings.Replace(good, `"city": "StoreCity"`, `"city": "Atlantis"`, 1),
		"duplicate id":     strings.Replace(good, `"id": 2`, `"id": 1`, 1),
		"id above nextId":  strings.Replace(good, `"id": 4`, `"id": 99`, 1),
		"dangling group":   strings.Replace(good, `"groupId": 2`, `"groupId": 77`, 1),
		"unknown poi":      strings.Replace(good, `"items": [`, `"items": [999999, `, 1),
		"negative id":      strings.Replace(good, `"id": 3`, `"id": -3`, 1),
		"zero nextId":      strings.Replace(good, `"nextId": 5`, `"nextId": 0`, 1),
		"unknown op kind":  strings.Replace(good, `"kind": "REMOVE"`, `"kind": "EXPLODE"`, 1),
		"op unknown poi":   strings.Replace(good, `"removed": [`, `"removed": [999999, `, 1),
		"op bad member":    strings.Replace(good, `"member": 2`, `"member": 7`, 1),
	}
	for name, doc := range cases {
		if doc == good {
			t.Fatalf("case %q did not modify the snapshot", name)
		}
		if _, err := LoadServerState(strings.NewReader(doc), c); err == nil {
			t.Fatalf("case %q: corrupt snapshot accepted", name)
		}
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	c := city(t)
	st := buildState(t)
	dir := t.TempDir()

	// First boot: no snapshot yet is not an error.
	if got, err := ReadSnapshot(dir, "storecity", c); err != nil || got != nil {
		t.Fatalf("missing snapshot: got %v, err %v", got, err)
	}
	if _, err := WriteSnapshot(dir, "storecity", st); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(dir, "storecity", c)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.NextID != st.NextID || len(got.Groups) != 2 || len(got.Packages) != 2 {
		t.Fatalf("snapshot round trip: %+v", got)
	}
	// Overwrite is atomic-by-rename: a second write replaces the first.
	st.NextID = 9
	if _, err := WriteSnapshot(dir, "storecity", st); err != nil {
		t.Fatal(err)
	}
	got, err = ReadSnapshot(dir, "storecity", c)
	if err != nil {
		t.Fatal(err)
	}
	if got.NextID != 9 {
		t.Fatalf("overwritten snapshot NextID = %d", got.NextID)
	}
}
