package store

import (
	"strings"
	"testing"

	"grouptravel/internal/poi"
)

// FuzzLoadProfile feeds arbitrary bytes to the profile loader: persisted
// files may be hand-edited or corrupted, and the loader must fail cleanly
// (error, never panic) and never return an out-of-range profile.
func FuzzLoadProfile(f *testing.F) {
	seeds := []string{
		`{"version":1,"acco":[0.5,0],"trans":[1,0],"rest":[0.2,0.8],"attr":[0,1]}`,
		`{"version":999}`,
		`{"acco":[2]}`,
		`{]`,
		``,
		`null`,
		`{"version":1,"acco":[1e308,0],"trans":[0,0],"rest":[0,0],"attr":[0,0]}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	schema := poi.NewSchema([]string{"a", "b"}, []string{"c", "d"}, []string{"e", "f"}, []string{"g", "h"})
	f.Fuzz(func(t *testing.T, s string) {
		p, err := LoadProfile(strings.NewReader(s), schema)
		if err != nil {
			return // clean failure is the contract
		}
		for _, c := range poi.Categories {
			if !p.Vector(c).InUnitRange() {
				t.Fatalf("loader accepted out-of-range profile from %q", s)
			}
			if len(p.Vector(c)) != schema.Dim(c) {
				t.Fatalf("loader accepted wrong-dimension profile from %q", s)
			}
		}
	})
}
