package store

import (
	"os"
	"strings"
	"testing"

	"grouptravel/internal/dataset"
	"grouptravel/internal/poi"
)

// FuzzLoadProfile feeds arbitrary bytes to the profile loader: persisted
// files may be hand-edited or corrupted, and the loader must fail cleanly
// (error, never panic) and never return an out-of-range profile.
func FuzzLoadProfile(f *testing.F) {
	seeds := []string{
		`{"version":1,"acco":[0.5,0],"trans":[1,0],"rest":[0.2,0.8],"attr":[0,1]}`,
		`{"version":999}`,
		`{"acco":[2]}`,
		`{]`,
		``,
		`null`,
		`{"version":1,"acco":[1e308,0],"trans":[0,0],"rest":[0,0],"attr":[0,0]}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	schema := poi.NewSchema([]string{"a", "b"}, []string{"c", "d"}, []string{"e", "f"}, []string{"g", "h"})
	f.Fuzz(func(t *testing.T, s string) {
		p, err := LoadProfile(strings.NewReader(s), schema)
		if err != nil {
			return // clean failure is the contract
		}
		for _, c := range poi.Categories {
			if !p.Vector(c).InUnitRange() {
				t.Fatalf("loader accepted out-of-range profile from %q", s)
			}
			if len(p.Vector(c)) != schema.Dim(c) {
				t.Fatalf("loader accepted wrong-dimension profile from %q", s)
			}
		}
	})
}

// FuzzLoadServerState feeds arbitrary bytes to the full-state snapshot
// loader. Snapshots live on disk across restarts, the prime target for
// corruption — the loader must fail cleanly (error, never panic) and
// anything it does accept must satisfy the registry invariants a restarted
// server relies on.
func FuzzLoadServerState(f *testing.F) {
	city, err := dataset.Generate(dataset.TestSpec("FuzzCity", 83))
	if err != nil {
		f.Fatal(err)
	}
	seeds := []string{
		`{"version":1,"city":"FuzzCity","nextId":1,"groups":[],"packages":[]}`,
		`{"version":1,"city":"FuzzCity","nextId":0,"groups":[{"id":1}]}`,
		`{"version":1,"city":"Atlantis","nextId":1}`,
		`{"version":99}`,
		`{"version":1,"city":"FuzzCity","nextId":3,"groups":[{"id":1},{"id":1}]}`,
		`{"version":1,"city":"FuzzCity","nextId":3,"packages":[{"id":1,"groupId":9,
		  "package":{"version":1,"city":"FuzzCity","query":{"Acco":1,"Trans":0,"Rest":0,"Attr":0,"Budget":0},"cis":[]}}]}`,
		`{"version":1,"city":"FuzzCity","nextId":2,"groups":[{"id":-1}]}`,
		`{]`,
		``,
		`null`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		st, err := LoadServerState(strings.NewReader(s), city)
		if err != nil {
			return // clean failure is the contract
		}
		seen := map[int]bool{}
		groups := map[int]bool{}
		for _, gr := range st.Groups {
			if gr.ID < 1 || gr.ID >= st.NextID || seen[gr.ID] || gr.Group == nil {
				t.Fatalf("loader accepted invalid group record %+v from %q", gr, s)
			}
			seen[gr.ID] = true
			groups[gr.ID] = true
		}
		for _, pr := range st.Packages {
			if pr.ID < 1 || pr.ID >= st.NextID || seen[pr.ID] || pr.Package == nil || !groups[pr.GroupID] {
				t.Fatalf("loader accepted invalid package record from %q", s)
			}
			seen[pr.ID] = true
		}
	})
}

// FuzzReplayWAL feeds arbitrary bytes to the write-ahead-log replayer.
// Log files sit on disk across crashes — torn tails and bit rot are their
// expected failure modes, not edge cases — so the replayer must never
// panic, must apply exactly the surviving prefix, and its in-place repair
// must be a fixpoint: replaying the repaired file again yields the same
// state with nothing further truncated.
func FuzzReplayWAL(f *testing.F) {
	city, err := dataset.Generate(dataset.TestSpec("FuzzWALCity", 84))
	if err != nil {
		f.Fatal(err)
	}
	// Seeds: a real record stream (group + package + ops + refine), plus
	// torn, bit-flipped, headerless and trivial variants of it.
	seedDir := f.TempDir()
	fx := makeWALFixture(f)
	writeWAL(f, seedDir, "seed", fx.records)
	good, err := os.ReadFile(WALPath(seedDir, "seed"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)-7])  // torn tail
	f.Add(good[:len(good)/2])  // torn mid-stream
	f.Add(good[:walHeaderLen]) // header only
	f.Add([]byte{})            // missing/empty file
	f.Add([]byte("GTWALv1\n")) // bare header
	f.Add([]byte("not a log")) // bad header
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := WALPath(dir, "fuzz")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Fuzz seeds were written against the fixture's city; replay here
		// runs against FuzzWALCity, so even "valid" streams exercise the
		// inapplicable-record path (unknown POIs, schema mismatches).
		st, info, err := ReplayWAL(dir, "fuzz", city, nil)
		if err != nil {
			t.Fatalf("replay returned I/O error on in-memory data: %v", err)
		}
		if st == nil || info == nil {
			t.Fatal("replay returned nil state/info without error")
		}
		// Repair fixpoint: the truncated (or quarantined) file replays
		// cleanly to the identical state.
		st2, info2, err := ReplayWAL(dir, "fuzz", city, nil)
		if err != nil {
			t.Fatalf("repaired replay errored: %v", err)
		}
		if info2.Truncated != "" || info2.Records != info.Records {
			t.Fatalf("repair not a fixpoint: first %+v, second %+v", info, info2)
		}
		if stateJSON(t, st) != stateJSON(t, st2) {
			t.Fatal("repaired log replays to a different state")
		}
	})
}
