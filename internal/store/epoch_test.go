package store

import (
	"os"
	"strings"
	"testing"
)

func TestEpochRoundTrip(t *testing.T) {
	dir := t.TempDir()

	// Missing file reads as the zero epoch — pre-epoch fleets boot clean.
	e, err := ReadEpoch(dir, "paris")
	if err != nil {
		t.Fatal(err)
	}
	if e.Epoch != 0 || e.Primary != "" {
		t.Fatalf("missing epoch file: got %+v, want zero", e)
	}

	want := Epoch{Epoch: 3, Primary: "http://b:8080"}
	if err := WriteEpoch(dir, "paris", want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEpoch(dir, "paris")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}

	// Overwrite bumps in place; other keys are untouched.
	want.Epoch, want.Primary = 4, "http://c:8080"
	if err := WriteEpoch(dir, "paris", want); err != nil {
		t.Fatal(err)
	}
	if got, _ = ReadEpoch(dir, "paris"); got != want {
		t.Fatalf("overwrite: got %+v, want %+v", got, want)
	}
	if other, _ := ReadEpoch(dir, "rome"); other.Epoch != 0 {
		t.Fatalf("unrelated key picked up an epoch: %+v", other)
	}

	// No temp droppings left behind by the atomic-write path.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.Contains(ent.Name(), ".tmp") {
			t.Fatalf("leftover temp file %s", ent.Name())
		}
	}
}

func TestEpochRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(EpochPath(dir, "paris"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEpoch(dir, "paris"); err == nil {
		t.Fatal("corrupt epoch file decoded without error")
	}
	if err := os.WriteFile(EpochPath(dir, "paris"), []byte(`{"epoch":-2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEpoch(dir, "paris"); err == nil {
		t.Fatal("negative term accepted")
	}
}
