package store

import (
	"errors"
	"os"
	"testing"
)

// TestApplierMatchesReplay is the one-code-path regression test: applying
// a log frame-by-frame through the exported Applier — exactly what a
// replication follower does with shipped frames — must produce the same
// state, and the same resume sequence, as ReplayWAL's restart path over
// the same log. Before the extraction the apply logic was only reachable
// via restart; this pins the two entry points to one behavior.
func TestApplierMatchesReplay(t *testing.T) {
	fx := makeWALFixture(t)
	dir := t.TempDir()
	writeWAL(t, dir, "equiv", fx.records)

	viaReplay, info, err := ReplayWAL(dir, "equiv", fx.city, nil)
	if err != nil {
		t.Fatal(err)
	}

	frames, err := CollectWALFrames(dir, "equiv")
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != len(fx.records) {
		t.Fatalf("read %d frames, wrote %d records", len(frames), len(fx.records))
	}
	ap, viaApplier, err := NewApplier(nil, fx.city)
	if err != nil {
		t.Fatal(err)
	}
	for i, fr := range frames {
		res, err := ap.ApplyPayload(fr.Payload)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if res.Skipped || res.Seq != fr.Seq {
			t.Fatalf("frame %d applied as %+v", i, res)
		}
	}
	ap.Finish()

	if got, want := stateJSON(t, viaApplier), stateJSON(t, viaReplay); got != want {
		t.Fatalf("applier state differs from replay state:\n%s\nvs\n%s", got, want)
	}
	if ap.LastSeq() != info.LastSeq {
		t.Fatalf("applier resume seq %d, replay %d", ap.LastSeq(), info.LastSeq)
	}
	// The materialization getters see every applied entity.
	if ap.Group(1) == nil || ap.Package(2) == nil || ap.Package(3) == nil || ap.Group(9) != nil {
		t.Fatal("applier getters disagree with the applied state")
	}
}

// TestReadWALFramesLive: the cursor is a pure reader — a torn tail (an
// append cut mid-frame, as on a live log) just ends the committed prefix,
// and the file is left byte-for-byte alone for the appender to continue.
func TestReadWALFramesLive(t *testing.T) {
	fx := makeWALFixture(t)
	dir := t.TempDir()
	writeWAL(t, dir, "live", fx.records)
	path := WALPath(dir, "live")
	whole, err := ReadWALFrames(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(whole) != len(fx.records) {
		t.Fatalf("read %d frames, want %d", len(whole), len(fx.records))
	}
	for i, fr := range whole {
		if fr.Seq != int64(i+1) {
			t.Fatalf("frame %d has seq %d", i, fr.Seq)
		}
	}

	// Tear the last record mid-frame.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatal(err)
	}
	prefix, err := ReadWALFrames(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(prefix) != len(fx.records)-1 {
		t.Fatalf("torn log read %d frames, want %d", len(prefix), len(fx.records)-1)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != fi.Size()-7 {
		t.Fatalf("reader modified the file: %d -> %d bytes", fi.Size()-7, after.Size())
	}

	// A headerless file is an error, not an empty read.
	if err := os.WriteFile(path, []byte("not a wal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadWALFrames(path); err == nil {
		t.Fatal("headerless file read as empty")
	}
	// A missing file reads as empty (no error): the pending segment is
	// usually absent.
	if frames, err := ReadWALFrames(WALPath(dir, "absent")); err != nil || frames != nil {
		t.Fatalf("missing file: frames=%v err=%v", frames, err)
	}
}

// TestFrameCodec: EncodeFrame/DecodeFrame are exact inverses, and the
// decode side distinguishes torn from corrupt.
func TestFrameCodec(t *testing.T) {
	payload := []byte(`{"op":"x","seq":9}`)
	buf := EncodeFrame(payload)
	got, n, err := DecodeFrame(buf)
	if err != nil || n != len(buf) || string(got) != string(payload) {
		t.Fatalf("round trip: %q n=%d err=%v", got, n, err)
	}
	if _, _, err := DecodeFrame(buf[:len(buf)-1]); !errors.Is(err, ErrFrameTorn) {
		t.Fatalf("torn frame: %v", err)
	}
	flipped := append([]byte(nil), buf...)
	flipped[len(flipped)-1] ^= 0x40
	if _, _, err := DecodeFrame(flipped); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("corrupt frame: %v", err)
	}
}

// TestAppendFrameShipsVerbatim: frames read from one city's log and
// appended to another's via AppendFrame (the follower's persistence path)
// replay to the identical state, and sequence regressions are refused.
func TestAppendFrameShipsVerbatim(t *testing.T) {
	fx := makeWALFixture(t)
	dir := t.TempDir()
	writeWAL(t, dir, "primary", fx.records)
	frames, err := ReadWALFrames(WALPath(dir, "primary"))
	if err != nil {
		t.Fatal(err)
	}

	w, err := OpenWAL(dir, "follower", WALSyncPolicy{Mode: WALSyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range frames {
		if err := w.AppendFrame(fr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AppendFrame(frames[0]); err == nil {
		t.Fatal("regressing frame accepted")
	}
	if got, want := w.LastSeq(), int64(len(frames)); got != want {
		t.Fatalf("follower log at seq %d, want %d", got, want)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	st, info, err := ReplayWAL(dir, "follower", fx.city, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Truncated != "" || info.Records != len(fx.records) {
		t.Fatalf("follower replay info %+v", info)
	}
	if got, want := stateJSON(t, st), stateJSON(t, fx.want); got != want {
		t.Fatalf("shipped log replays differently:\n%s\nvs\n%s", got, want)
	}
}

// TestSnapshotRawHandoff: ReadSnapshotRaw surfaces the watermark of a
// real snapshot, and WriteSnapshotRaw installs bytes a normal ReadSnapshot
// then loads — the two halves of the compaction handoff.
func TestSnapshotRawHandoff(t *testing.T) {
	fx := makeWALFixture(t)
	dir := t.TempDir()
	if raw, seq, err := ReadSnapshotRaw(dir, "missing"); raw != nil || seq != 0 || err != nil {
		t.Fatalf("missing snapshot: raw=%v seq=%d err=%v", raw, seq, err)
	}

	st, _, err := replayFixtureState(t, fx)
	if err != nil {
		t.Fatal(err)
	}
	st.WALSeq = 6
	if _, err := WriteSnapshot(dir, "a", st); err != nil {
		t.Fatal(err)
	}
	raw, seq, err := ReadSnapshotRaw(dir, "a")
	if err != nil || seq != 6 || len(raw) == 0 {
		t.Fatalf("raw read: seq=%d err=%v len=%d", seq, err, len(raw))
	}

	if err := WriteSnapshotRaw(dir, "b", raw); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(dir, "b", fx.city)
	if err != nil {
		t.Fatal(err)
	}
	if got.WALSeq != 6 || stateJSON(t, got) != stateJSON(t, st) {
		t.Fatal("raw-installed snapshot loads differently")
	}
}

// replayFixtureState builds the fixture's state via a throwaway log — a
// convenience for tests needing a realistic *ServerState.
func replayFixtureState(t *testing.T, fx *walFixture) (*ServerState, *WALReplayInfo, error) {
	t.Helper()
	dir := t.TempDir()
	writeWAL(t, dir, "tmp", fx.records)
	return ReplayWAL(dir, "tmp", fx.city, nil)
}

// TestApplierFinishKeepsLookupsExact: ids can commit slightly out of id
// order (concurrent mutations), and a follower calls Finish after every
// batch while the applier keeps applying. Finish's sort must keep the
// id lookups exact — a stale index would resolve an id to a different
// record's slot and corrupt the next batch's customOp target.
func TestApplierFinishKeepsLookupsExact(t *testing.T) {
	fx := makeWALFixture(t)
	g := fx.want.Groups[0].Group
	dir := t.TempDir()
	// Two groups committed in reverse id order, then Finish (sorts).
	writeWAL(t, dir, "ooo", []WALRecord{GroupCreateRecord(2, g), GroupCreateRecord(1, g)})
	frames, err := ReadWALFrames(WALPath(dir, "ooo"))
	if err != nil {
		t.Fatal(err)
	}
	ap, st, err := NewApplier(nil, fx.city)
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range frames {
		if _, err := ap.ApplyPayload(fr.Payload); err != nil {
			t.Fatal(err)
		}
	}
	ap.Finish()
	if st.Groups[0].ID != 1 || st.Groups[1].ID != 2 {
		t.Fatalf("groups not sorted: %d, %d", st.Groups[0].ID, st.Groups[1].ID)
	}
	for id := 1; id <= 2; id++ {
		if gr := ap.Group(id); gr == nil || gr.ID != id {
			t.Fatalf("Group(%d) resolved to %+v after Finish", id, gr)
		}
	}
}
