package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"grouptravel/internal/dataset"
)

// This file is the read side of the write-ahead log for consumers other
// than restart recovery — most importantly log shipping (internal/
// replicate): a primary serves committed frames from its live log, and a
// follower applies them through the exact apply path ReplayWAL uses, so
// replication and crash recovery can never disagree about what a log
// means. Everything here is read-only and safe on a live, concurrently
// appended file: a torn tail is simply where the committed prefix ends,
// never something to repair from this side.

// ErrFrameCorrupt reports a frame whose checksum does not match its
// payload — a torn write on disk, or corruption on the wire.
var ErrFrameCorrupt = errors.New("store: frame CRC mismatch")

// ErrFrameTorn reports a frame cut off mid-bytes: the buffer ends before
// the frame's declared length.
var ErrFrameTorn = errors.New("store: torn frame")

// WALFrame is one framed record as it appears in a log or on the
// replication wire: the payload bytes plus the sequence number decoded
// from them. Payload aliases the buffer it was decoded from.
type WALFrame struct {
	Seq     int64
	Payload []byte
}

// WireLen is the frame's size on disk and on the wire (framing included).
func (f WALFrame) WireLen() int64 { return int64(walFrameLen + len(f.Payload)) }

// EncodeFrame frames one record payload exactly as the WAL writes it:
// little-endian payload length, CRC32-Castagnoli, payload.
func EncodeFrame(payload []byte) []byte {
	buf := make([]byte, walFrameLen+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, walCRC))
	copy(buf[walFrameLen:], payload)
	return buf
}

// DecodeFrame splits the first frame off buf, returning its payload and
// the total bytes consumed. ErrFrameTorn means buf ends mid-frame (more
// bytes may still be in flight); ErrFrameCorrupt means the checksum
// failed — the frame, and everything after it, cannot be trusted.
func DecodeFrame(buf []byte) (payload []byte, n int, err error) {
	if len(buf) < walFrameLen {
		return nil, 0, ErrFrameTorn
	}
	length := int64(binary.LittleEndian.Uint32(buf[0:4]))
	if length > maxWALRecord {
		return nil, 0, fmt.Errorf("%w: length %d exceeds cap %d", ErrFrameCorrupt, length, maxWALRecord)
	}
	if int64(len(buf)) < int64(walFrameLen)+length {
		return nil, 0, ErrFrameTorn
	}
	payload = buf[walFrameLen : int64(walFrameLen)+length]
	if crc32.Checksum(payload, walCRC) != binary.LittleEndian.Uint32(buf[4:8]) {
		return nil, 0, ErrFrameCorrupt
	}
	return payload, walFrameLen + int(length), nil
}

// FrameSeq decodes just the sequence number from a record payload — the
// one field framing-level readers (the cursor here, the replication wire
// parser) need without a full decode. 0 for records written before
// sequence stamping existed.
func FrameSeq(payload []byte) (int64, error) {
	var rec struct {
		Seq int64 `json:"seq"`
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return 0, fmt.Errorf("store: frame payload: %w", err)
	}
	return rec.Seq, nil
}

// ReadWALFrames reads the committed frames of a log file — the longest
// valid prefix — without modifying it, so it is safe on a live log that an
// appender (or this process's own WAL) is still writing: a torn or
// corrupt tail just ends the prefix, exactly as replay would cut it. A
// missing file yields no frames; a file without a valid header is an
// error (the appender never produces one).
func ReadWALFrames(path string) ([]WALFrame, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read wal: %w", err)
	}
	if int64(len(raw)) < walHeaderLen || [8]byte(raw[:walHeaderLen]) != walMagic {
		return nil, fmt.Errorf("store: wal %s has no valid header", path)
	}
	var frames []WALFrame
	buf := raw[walHeaderLen:]
	for len(buf) > 0 {
		payload, n, err := DecodeFrame(buf)
		if err != nil {
			break // committed prefix ends here; replay repairs, we only read
		}
		seq, err := FrameSeq(payload)
		if err != nil {
			break
		}
		frames = append(frames, WALFrame{Seq: seq, Payload: payload})
		buf = buf[n:]
	}
	return frames, nil
}

// ReadWALFramesAt reads the committed frames of a log file starting at
// byte offset off (walHeaderLen for the first record), returning the
// frames plus the offset just past the last one — the incremental read a
// live push stream uses so a wakeup costs O(new bytes), not O(log). The
// header is validated only when reading from the top; at an interior
// offset the caller's cursor may have been invalidated by a rotation, in
// which case decoding fails (CRC over arbitrary bytes) or the sequence
// run breaks — both of which the caller detects and answers with a full
// rescan. A missing file or an offset at/past EOF yields no frames and
// next == off.
func ReadWALFramesAt(path string, off int64) ([]WALFrame, int64, error) {
	if off < walHeaderLen {
		off = walHeaderLen
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, off, nil
	}
	if err != nil {
		return nil, off, fmt.Errorf("store: read wal: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, off, fmt.Errorf("store: stat wal: %w", err)
	}
	if off == walHeaderLen {
		var magic [8]byte
		if _, err := f.ReadAt(magic[:], 0); err != nil || magic != walMagic {
			return nil, off, fmt.Errorf("store: wal %s has no valid header", path)
		}
	}
	if st.Size() <= off {
		return nil, off, nil
	}
	raw := make([]byte, st.Size()-off)
	n, err := f.ReadAt(raw, off)
	// A short read races a concurrent truncation/rotation; decode whatever
	// arrived — the committed prefix ends wherever decoding stops.
	raw = raw[:n]
	if err != nil && n == 0 {
		return nil, off, nil
	}
	var frames []WALFrame
	buf := raw
	for len(buf) > 0 {
		payload, n, err := DecodeFrame(buf)
		if err != nil {
			break
		}
		seq, err := FrameSeq(payload)
		if err != nil {
			break
		}
		frames = append(frames, WALFrame{Seq: seq, Payload: payload})
		buf = buf[n:]
		off += int64(n)
	}
	return frames, off, nil
}

// CollectWALFrames reads a city's committed frames in replay order — the
// sealed pending segment of an in-flight compaction first, then the
// current log. Sequences are contiguous across the two files by
// construction (rotation preserves the counter); callers detect the race
// where a rotation lands between the two reads by checking contiguity.
func CollectWALFrames(dir, key string) ([]WALFrame, error) {
	pending, err := ReadWALFrames(PendingWALPath(dir, key))
	if err != nil {
		return nil, err
	}
	current, err := ReadWALFrames(WALPath(dir, key))
	if err != nil {
		return nil, err
	}
	return append(pending, current...), nil
}

// ReadSnapshotRaw returns a city's snapshot bytes plus the WAL sequence
// watermark recorded inside them — the handoff a primary ships to a
// follower that has fallen behind the log's compaction horizon. The bytes
// are not validated beyond extracting the watermark; the follower
// validates in full (LoadServerState) before installing. A missing
// snapshot returns (nil, 0, nil).
func ReadSnapshotRaw(dir, key string) ([]byte, int64, error) {
	raw, err := os.ReadFile(SnapshotPath(dir, key))
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("store: read snapshot: %w", err)
	}
	var head struct {
		WALSeq int64 `json:"walSeq"`
	}
	if err := json.Unmarshal(raw, &head); err != nil {
		return nil, 0, fmt.Errorf("store: snapshot watermark: %w", err)
	}
	return raw, head.WALSeq, nil
}

// WriteSnapshotRaw atomically installs snapshot bytes received from a
// primary, with the same temp-write + fsync + rename discipline as
// WriteSnapshot. The caller has already validated the bytes against the
// city.
func WriteSnapshotRaw(dir, key string, raw []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: snapshot dir: %w", err)
	}
	f, err := os.CreateTemp(dir, key+".state.*.tmp")
	if err != nil {
		return fmt.Errorf("store: snapshot temp: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, SnapshotPath(dir, key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// --- exported apply path ---

// Record kinds as they appear in Applied.Kind (and in walRecordJSON.Op).
const (
	RecordGroupCreate  = walOpGroupCreate
	RecordPackageBuild = walOpPackageBuild
	RecordCustomOp     = walOpCustomOp
	RecordRefine       = walOpRefine
)

// Applied describes the effect of one applied record, enough for a caller
// maintaining a materialized view (a follower's serving state) to update
// exactly the touched entity.
type Applied struct {
	Kind      string
	Seq       int64
	ID        int  // groupCreate / packageBuild / refine: the allocated id
	PackageID int  // customOp: the mutated package
	Skipped   bool // sequence already covered; the state did not change
}

// Applier is the WAL apply path, exported: it applies framed record
// payloads onto a ServerState with full validation, and it is the same
// code restart replay runs — ReplayWAL and a replication follower cannot
// diverge on what a record means because they share this type. Not safe
// for concurrent use.
type Applier struct {
	ap *walApplier
}

// NewApplier builds an applier over st (which it mutates in place; nil is
// an empty first-boot state) for the given city. The applier resumes from
// st's WALSeq watermark; if records beyond the watermark were already
// applied into st (a follower recovering snapshot + log), call Seed with
// the true last applied sequence.
func NewApplier(st *ServerState, city *dataset.City) (*Applier, *ServerState, error) {
	if city == nil || city.POIs == nil {
		return nil, nil, fmt.Errorf("store: nil city")
	}
	if st == nil {
		st = &ServerState{City: city.Name, NextID: 1}
	}
	return &Applier{ap: newWALApplier(st, city)}, st, nil
}

// Seed moves the applier's resume point: records at or below lastSeq are
// treated as already present in the state (skipped, not errors).
func (a *Applier) Seed(lastSeq int64) {
	if lastSeq > a.ap.skip {
		a.ap.skip = lastSeq
	}
	if lastSeq > a.ap.lastSeq {
		a.ap.lastSeq = lastSeq
	}
}

// LastSeq is the highest sequence the applier has applied or been seeded
// with — a follower's resume point.
func (a *Applier) LastSeq() int64 { return a.ap.lastSeq }

// ApplyPayload decodes one frame payload and applies it. A returned error
// means the record was rejected and the state is untouched — for replay
// that is the truncation point, for a follower a replication fault.
func (a *Applier) ApplyPayload(payload []byte) (Applied, error) {
	return a.ap.applyPayload(payload)
}

// Group returns the applied group record with the given id, or nil. The
// record is owned by the applier's state; treat it as read-only.
func (a *Applier) Group(id int) *GroupRecord {
	if i, ok := a.ap.groups[id]; ok {
		return &a.ap.st.Groups[i]
	}
	return nil
}

// Package returns the applied package record with the given id, or nil.
func (a *Applier) Package(id int) *PackageRecord {
	if i, ok := a.ap.pkgs[id]; ok {
		return &a.ap.st.Packages[i]
	}
	return nil
}

// Finish restores the sorted-by-id invariant on the underlying state.
// Idempotent; an applier keeps working after it (a follower finishes
// every batch so compaction can snapshot a canonical state).
func (a *Applier) Finish() { a.ap.finish() }
