// Package experiments reproduces every table and figure of the paper's
// evaluation (§4):
//
//	Table 2 — synthetic experiment: normalized representativity /
//	          cohesiveness / personalization per consensus × group class
//	Table 3 — agreement between median users and their groups
//	Table 4 — user study, independent evaluation (mean 1–5 ratings)
//	Table 5 — user study, comparative evaluation (pairwise preference %)
//	Table 6 — customization study, independent evaluation
//	Table 7 — customization study, comparative evaluation
//
// plus the §3.2 Haversine-vs-equirectangular claim, the §4.3.3 Pearson
// correlations, the §4.3.1 ANOVA validation and the Eq. 5 sample size.
// Each Run* function is deterministic for a given Config.
package experiments

import (
	"fmt"

	"grouptravel/internal/consensus"
	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
	"grouptravel/internal/profile"
	"grouptravel/internal/query"
	"grouptravel/internal/rng"
)

// Config parameterizes an experiment run.
type Config struct {
	// City is the main experiment city ("Paris" in the paper).
	City *dataset.City
	// SecondCity hosts the cross-city customization study ("Barcelona").
	// Only Tables 6 and 7 need it.
	SecondCity *dataset.City
	// GroupsPerCell is the number of random groups per (uniformity, size)
	// cell in the synthetic experiment — 100 in the paper.
	GroupsPerCell int
	// StudyGroupsPerCell is the number of groups per cell in the simulated
	// user study (the paper used 5 uniform / 3 non-uniform groups per size).
	StudyGroupsPerCell int
	// K is the number of CIs per travel package (5 everywhere in §4).
	K int
	// Seed makes the whole run reproducible.
	Seed int64
	// Parallelism is the number of worker goroutines building packages in
	// the synthetic experiment (0 or 1 = sequential). Results are
	// bit-identical at any parallelism: all randomness is drawn in a fixed
	// sequential pass before the builds fan out, and package builds are
	// deterministic functions of their inputs. All workers share one
	// concurrency-safe Engine, so each distinct clustering is computed
	// exactly once no matter how many workers need it.
	Parallelism int
	// Engine optionally supplies a prebuilt engine over City; nil lets
	// each Run* construct its own. Passing one engine across runs shares
	// its cluster cache between them (core.Engine is concurrency-safe).
	Engine *core.Engine
	// SecondEngine is the analogue for SecondCity (Tables 6 and 7).
	SecondEngine *core.Engine
	// PoolStudy switches the user study (Tables 4-7 group construction) to
	// the paper's actual §4.4.1 pipeline: a simulated participant pool is
	// recruited once, and study groups are *formed from the pool* by
	// greedy uniformity search (profile.FormGroup) instead of being
	// synthesized directly. Default off (direct synthesis reaches the
	// uniformity bands deterministically, which the quick tests rely on).
	PoolStudy bool
	// PoolSize is the simulated pool size when PoolStudy is on (default
	// 600 — segments of like-minded personas plus independents).
	PoolSize int
}

// DefaultConfig returns the paper-scale configuration. Cities are
// generated on first use; pass prebuilt ones to share across runs.
func DefaultConfig() Config {
	return Config{
		GroupsPerCell:      100,
		StudyGroupsPerCell: 3,
		K:                  5,
		Seed:               2019, // EDBT 2019
	}
}

// QuickConfig returns a configuration small enough for unit tests while
// exercising every code path.
func QuickConfig() Config {
	return Config{
		GroupsPerCell:      6,
		StudyGroupsPerCell: 2,
		K:                  4,
		Seed:               7,
	}
}

func (c *Config) validate() error {
	if c.GroupsPerCell < 1 || c.StudyGroupsPerCell < 1 {
		return fmt.Errorf("experiments: group counts must be positive")
	}
	if c.K < 2 {
		return fmt.Errorf("experiments: K = %d (need at least 2 for representativity)", c.K)
	}
	return nil
}

// ensureCities generates the default Paris/Barcelona analogues when the
// config does not supply cities.
func (c *Config) ensureCities(needSecond bool) error {
	if err := c.validate(); err != nil {
		return err
	}
	if c.City == nil {
		if c.Engine != nil {
			c.City = c.Engine.City()
		} else {
			city, err := dataset.BuiltinCity("Paris")
			if err != nil {
				return err
			}
			c.City = city
		}
	}
	if needSecond && c.SecondCity == nil {
		if c.SecondEngine != nil {
			c.SecondCity = c.SecondEngine.City()
		} else {
			city, err := dataset.BuiltinCity("Barcelona")
			if err != nil {
				return err
			}
			c.SecondCity = city
		}
	}
	return nil
}

// engine returns the shared engine over City, constructing one when the
// config does not supply it. Call after ensureCities.
func (c *Config) engine() (*core.Engine, error) {
	if c.Engine != nil {
		if c.Engine.City() != c.City {
			return nil, fmt.Errorf("experiments: cfg.Engine is over city %q, cfg.City is %q", c.Engine.City().Name, c.City.Name)
		}
		return c.Engine, nil
	}
	return core.NewEngine(c.City)
}

// secondEngine is engine for SecondCity.
func (c *Config) secondEngine() (*core.Engine, error) {
	if c.SecondEngine != nil {
		if c.SecondEngine.City() != c.SecondCity {
			return nil, fmt.Errorf("experiments: cfg.SecondEngine is over city %q, cfg.SecondCity is %q", c.SecondEngine.City().Name, c.SecondCity.Name)
		}
		return c.SecondEngine, nil
	}
	return core.NewEngine(c.SecondCity)
}

// GroupClass is one row block of Tables 2–5: a uniformity band and a size
// class.
type GroupClass struct {
	Uniform bool
	Size    profile.SizeClass
}

// GroupClasses enumerates the paper's six group classes in table order:
// uniform small/medium/large, then non-uniform small/medium/large.
var GroupClasses = []GroupClass{
	{true, profile.Small}, {true, profile.Medium}, {true, profile.Large},
	{false, profile.Small}, {false, profile.Medium}, {false, profile.Large},
}

// String returns e.g. "uniform/small".
func (gc GroupClass) String() string {
	u := "non-uniform"
	if gc.Uniform {
		u = "uniform"
	}
	return u + "/" + gc.Size.String()
}

// makeGroup builds one random group of the given class over the city's
// schema.
func makeGroup(cfg *Config, gc GroupClass, src *rng.Source) (*profile.Group, error) {
	if gc.Uniform {
		return profile.GenerateUniformGroup(cfg.City.Schema, gc.Size.Size(), src)
	}
	return profile.GenerateNonUniformGroup(cfg.City.Schema, gc.Size.Size(), src)
}

// studyPool lazily recruits the simulated participant pool for PoolStudy
// runs: segments of like-minded personas (so uniform bands are reachable)
// plus sparse diverse users (so non-uniform bands are too) plus
// independents.
func studyPool(cfg *Config, src *rng.Source) ([]*profile.Profile, error) {
	size := cfg.PoolSize
	if size == 0 {
		size = 600
	}
	var pool []*profile.Profile
	// Two jumbo persona segments (a large uniform group must be formable:
	// the study's "large" class has 100 members).
	jumbo := size / 5
	if jumbo < profile.Large.Size()+10 {
		jumbo = profile.Large.Size() + 10
	}
	for s := 0; s < 2; s++ {
		g, err := profile.GenerateUniformGroup(cfg.City.Schema, jumbo, src.Split("jumbo"))
		if err != nil {
			return nil, err
		}
		pool = append(pool, g.Members...)
	}
	// Sparse diverse users — enough that a 100-member non-uniform group
	// exists (drawn as one big non-uniform group, flattened).
	sparse := size / 5
	if sparse < profile.Large.Size()+10 {
		sparse = profile.Large.Size() + 10
	}
	g, err := profile.GenerateNonUniformGroup(cfg.City.Schema, sparse, src.Split("sparse"))
	if err != nil {
		return nil, err
	}
	pool = append(pool, g.Members...)
	// Small persona segments of 12.
	for len(pool) < size*85/100 {
		seg, err := profile.GenerateUniformGroup(cfg.City.Schema, 12, src.Split("segment"))
		if err != nil {
			return nil, err
		}
		pool = append(pool, seg.Members...)
	}
	// Rest: independents.
	for len(pool) < size {
		pool = append(pool, profile.GenerateRandomProfile(cfg.City.Schema, src))
	}
	return pool, nil
}

// makeStudyGroup builds one study group: from the pool when PoolStudy is
// on (the §4.4.1 pipeline), otherwise by direct synthesis.
func makeStudyGroup(cfg *Config, pool []*profile.Profile, gc GroupClass, src *rng.Source) (*profile.Group, error) {
	if !cfg.PoolStudy {
		return makeGroup(cfg, gc, src)
	}
	band := profile.UniformBand
	if !gc.Uniform {
		band = profile.NonUniformBand
	}
	return profile.FormGroup(cfg.City.Schema, pool, gc.Size.Size(), band, src)
}

// buildParams returns the §4.3.1 objective weights: γ = 1 fixed, α and β
// uniform random in [0,1] "to prevent bias towards an optimization
// objective".
func buildParams(cfg *Config, src *rng.Source, clusterSeed int64) core.Params {
	p := core.DefaultParams(cfg.K)
	p.Alpha = src.Float64()
	p.Beta = src.Float64()
	p.Gamma = 1.0
	p.Seed = clusterSeed
	return p
}

// MethodNames are the display names of the four consensus methods in
// table column order.
var MethodNames = []string{
	"average preference", "least misery", "pair-wise disagreement", "disagreement variance",
}

// methods in column order.
var methods = consensus.Methods

// defaultQuery is the paper's ⟨1 acco, 1 trans, 1 rest, 3 attr⟩ with
// unlimited budget.
var defaultQuery = query.Default()
