package experiments

import (
	"fmt"
	"strings"
	"sync"

	"grouptravel/internal/consensus"
	"grouptravel/internal/core"
	"grouptravel/internal/metrics"
	"grouptravel/internal/profile"
	"grouptravel/internal/rng"
)

// Cell holds the three normalized optimization dimensions of one table
// cell, in [0,1] (the paper prints them as percentages).
type Cell struct {
	R float64 // representativity
	C float64 // cohesiveness
	P float64 // personalization
}

// run is one raw measurement: a travel package built for one (group,
// method) pair.
type run struct {
	class  GroupClass
	method int // index into consensus.Methods
	group  int // group index within the cell
	dims   metrics.Dimensions
}

// Table2Result is the synthetic experiment of §4.3: for every consensus
// method and group class, the normalized optimization dimensions averaged
// over GroupsPerCell random groups.
type Table2Result struct {
	// Cells[classIdx][methodIdx], classes in GroupClasses order, methods
	// in consensus.Methods order.
	Cells [][]Cell
	// Ranges are the observed raw ranges used for normalization — the
	// paper reports its own as R [0.03, 41.39], C [19.29, 221.79],
	// P [0.01, 0.16].
	RangeR, RangeC, RangeP metrics.MinMax
	// S is the Eq. 3 constant: the largest observed aggregate within-CI
	// distance (the paper's 221.79).
	S float64

	runs []run // retained for Table 3, PCC and ANOVA reuse
}

// task is one pre-generated package build of the synthetic experiment.
type task struct {
	class  GroupClass
	method int
	group  int
	gp     *profile.Profile
	params core.Params
}

// RunTable2 executes the synthetic experiment. For every group class it
// generates cfg.GroupsPerCell random groups, computes a group profile with
// each of the four consensus methods, builds a k-CI travel package per
// profile (γ=1, α,β ~ U[0,1]), and reports min-max-normalized dimensions
// averaged per cell. With cfg.Parallelism > 1 the (deterministic) package
// builds run on a worker pool.
func RunTable2(cfg Config) (*Table2Result, error) {
	if err := cfg.ensureCities(false); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)

	// Phase 1 — sequential generation: all randomness (groups, α, β,
	// clustering seeds, consensus profiles) is consumed here in a fixed
	// order, so parallelism cannot perturb it.
	var tasks []task
	for _, class := range GroupClasses {
		classSrc := root.Split("table2/" + class.String())
		for gi := 0; gi < cfg.GroupsPerCell; gi++ {
			g, err := makeGroup(&cfg, class, classSrc.Split(fmt.Sprintf("group-%d", gi)))
			if err != nil {
				return nil, fmt.Errorf("table2 %s group %d: %w", class, gi, err)
			}
			// One α,β draw and one clustering seed per group: the four
			// methods are compared under identical conditions, differing
			// only in the group profile they aggregate.
			params := buildParams(&cfg, classSrc, int64(gi%16))
			for mi, method := range methods {
				gp, err := consensus.GroupProfile(g, method)
				if err != nil {
					return nil, err
				}
				tasks = append(tasks, task{class: class, method: mi, group: gi, gp: gp, params: params})
			}
		}
	}

	// Phase 2 — deterministic builds, optionally parallel.
	runs, err := executeTasks(&cfg, tasks)
	if err != nil {
		return nil, err
	}
	return summarizeTable2(runs), nil
}

// executeTasks builds every task's package and measures it, preserving
// task order in the result. All workers share one concurrency-safe engine:
// its cluster cache is singleflight-guarded, so each distinct clustering
// is computed exactly once even when several workers reach it
// simultaneously (the paper's 2400-package Table 2 needs only 16).
func executeTasks(cfg *Config, tasks []task) ([]run, error) {
	workers := cfg.Parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	engine, err := cfg.engine()
	if err != nil {
		return nil, err
	}
	runs := make([]run, len(tasks))
	if workers == 1 {
		for i, tk := range tasks {
			if err := executeOne(engine, tk, &runs[i]); err != nil {
				return nil, err
			}
		}
		return runs, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(tasks); i += workers {
				if err := executeOne(engine, tasks[i], &runs[i]); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return runs, nil
}

func executeOne(engine *core.Engine, tk task, out *run) error {
	tp, err := engine.Build(tk.gp, defaultQuery, tk.params)
	if err != nil {
		return fmt.Errorf("table2 %s group %d method %d: %w", tk.class, tk.group, tk.method, err)
	}
	*out = run{class: tk.class, method: tk.method, group: tk.group, dims: tp.Measure()}
	return nil
}

// summarizeTable2 normalizes the raw runs and averages them per cell.
func summarizeTable2(runs []run) *Table2Result {
	rVals := make([]float64, len(runs))
	dVals := make([]float64, len(runs))
	pVals := make([]float64, len(runs))
	for i, r := range runs {
		rVals[i] = r.dims.Representativity
		dVals[i] = r.dims.RawDistance
		pVals[i] = r.dims.Personalization
	}
	res := &Table2Result{
		RangeR: metrics.MinMaxOf(rVals),
		RangeP: metrics.MinMaxOf(pVals),
		runs:   runs,
	}
	// Eq. 3: S is the largest observed aggregate distance; cohesiveness
	// is S − raw, normalized over its own observed range.
	res.S = metrics.MinMaxOf(dVals).Max
	cVals := make([]float64, len(runs))
	for i, d := range dVals {
		cVals[i] = res.S - d
	}
	res.RangeC = metrics.MinMaxOf(cVals)

	sums := make([][]Cell, len(GroupClasses))
	counts := make([][]int, len(GroupClasses))
	for i := range sums {
		sums[i] = make([]Cell, len(methods))
		counts[i] = make([]int, len(methods))
	}
	classIdx := func(gc GroupClass) int {
		for i, c := range GroupClasses {
			if c == gc {
				return i
			}
		}
		panic("experiments: unknown group class")
	}
	for i, r := range runs {
		ci := classIdx(r.class)
		cell := &sums[ci][r.method]
		cell.R += res.RangeR.Normalize(rVals[i])
		cell.C += res.RangeC.Normalize(cVals[i])
		cell.P += res.RangeP.Normalize(pVals[i])
		counts[ci][r.method]++
	}
	res.Cells = sums
	for ci := range sums {
		for mi := range sums[ci] {
			if n := counts[ci][mi]; n > 0 {
				sums[ci][mi].R /= float64(n)
				sums[ci][mi].C /= float64(n)
				sums[ci][mi].P /= float64(n)
			}
		}
	}
	return res
}

// CellFor returns the cell for a group class and method index.
func (t *Table2Result) CellFor(gc GroupClass, method int) Cell {
	for i, c := range GroupClasses {
		if c == gc {
			return t.Cells[i][method]
		}
	}
	panic("experiments: unknown group class")
}

// Render formats the result like the paper's Table 2 layout.
func (t *Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: synthetic experiment (normalized %%, avg over groups)\n")
	fmt.Fprintf(&b, "%-22s", "")
	for _, name := range MethodNames {
		fmt.Fprintf(&b, "| %-23s", name)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-22s", "group class")
	for range MethodNames {
		fmt.Fprintf(&b, "| %5s %5s %5s      ", "R", "C", "P")
	}
	b.WriteString("\n")
	for ci, class := range GroupClasses {
		fmt.Fprintf(&b, "%-22s", class.String())
		for mi := range methods {
			c := t.Cells[ci][mi]
			fmt.Fprintf(&b, "| %4.0f%% %4.0f%% %4.0f%%      ", 100*c.R, 100*c.C, 100*c.P)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "raw ranges: R %s km, C %s km (S=%.2f), P %s\n",
		t.RangeR, t.RangeC, t.S, t.RangeP)
	return b.String()
}
