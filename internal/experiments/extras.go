package experiments

import (
	"fmt"
	"strings"
	"time"

	"grouptravel/internal/geo"
	"grouptravel/internal/rng"
	"grouptravel/internal/stats"
)

// PCCReport holds the §4.3.3 Pearson correlations for uniform groups: how
// cohesiveness and personalization move with group size under each
// consensus method. The paper reports cohesiveness PCCs of +0.98, +0.73,
// +0.73, +0.99 and personalization PCCs of −0.99, −0.99, −0.89, −0.89.
type PCCReport struct {
	// CohesivenessPCC[methodIdx] and PersonalizationPCC[methodIdx] in
	// consensus.Methods order.
	CohesivenessPCC    []float64
	PersonalizationPCC []float64
}

// PCC computes the size-trend correlations from a Table 2 result. The
// series correlates the three uniform size classes (5, 10, 100 members)
// with the per-cell mean normalized dimension, per method — exactly the
// three-point series behind the paper's PCC numbers.
func (t *Table2Result) PCC() (*PCCReport, error) {
	sizes := []float64{5, 10, 100}
	rep := &PCCReport{
		CohesivenessPCC:    make([]float64, len(methods)),
		PersonalizationPCC: make([]float64, len(methods)),
	}
	for mi := range methods {
		var coh, pers []float64
		for _, class := range GroupClasses[:3] { // uniform small/medium/large
			cell := t.CellFor(class, mi)
			coh = append(coh, cell.C)
			pers = append(pers, cell.P)
		}
		var err error
		if rep.CohesivenessPCC[mi], err = stats.Pearson(sizes, coh); err != nil {
			return nil, err
		}
		if rep.PersonalizationPCC[mi], err = stats.Pearson(sizes, pers); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// Render formats the PCC report.
func (r *PCCReport) Render() string {
	var b strings.Builder
	b.WriteString("PCC of group size vs dimensions, uniform groups (paper: C +0.98/+0.73/+0.73/+0.99, P -0.99/-0.99/-0.89/-0.89)\n")
	fmt.Fprintf(&b, "%-24s%14s%18s\n", "method", "cohesiveness", "personalization")
	for mi, name := range MethodNames {
		fmt.Fprintf(&b, "%-24s%+14.2f%+18.2f\n", name, r.CohesivenessPCC[mi], r.PersonalizationPCC[mi])
	}
	return b.String()
}

// ANOVAReport validates the Table 2 observations with one-way ANOVA across
// consensus methods, per optimization dimension, as §4.3.1 prescribes
// ("the One-way ANOVA procedure, with the F-measure of MSB/MSE and the
// significance level of p = 0.05").
type ANOVAReport struct {
	Representativity stats.ANOVAResult
	Cohesiveness     stats.ANOVAResult
	Personalization  stats.ANOVAResult
}

// ANOVA groups the raw Table 2 runs by consensus method and tests whether
// the method influences each dimension.
func (t *Table2Result) ANOVA() (*ANOVAReport, error) {
	byMethodR := make([][]float64, len(methods))
	byMethodC := make([][]float64, len(methods))
	byMethodP := make([][]float64, len(methods))
	for _, r := range t.runs {
		byMethodR[r.method] = append(byMethodR[r.method], t.RangeR.Normalize(r.dims.Representativity))
		byMethodC[r.method] = append(byMethodC[r.method], t.RangeC.Normalize(t.S-r.dims.RawDistance))
		byMethodP[r.method] = append(byMethodP[r.method], t.RangeP.Normalize(r.dims.Personalization))
	}
	rep := &ANOVAReport{}
	var err error
	if rep.Representativity, err = stats.ANOVA(byMethodR); err != nil {
		return nil, err
	}
	if rep.Cohesiveness, err = stats.ANOVA(byMethodC); err != nil {
		return nil, err
	}
	if rep.Personalization, err = stats.ANOVA(byMethodP); err != nil {
		return nil, err
	}
	return rep, nil
}

// Render formats the ANOVA report in the paper's notation.
func (r *ANOVAReport) Render() string {
	var b strings.Builder
	b.WriteString("One-way ANOVA across consensus methods (significance level p = 0.05)\n")
	fmt.Fprintf(&b, "representativity: %v (significant: %v)\n", r.Representativity, r.Representativity.Significant(0.05))
	fmt.Fprintf(&b, "cohesiveness:     %v (significant: %v)\n", r.Cohesiveness, r.Cohesiveness.Significant(0.05))
	fmt.Fprintf(&b, "personalization:  %v (significant: %v)\n", r.Personalization, r.Personalization.Significant(0.05))
	return b.String()
}

// DistanceReport measures the §3.2 claim: "our performance gain is 30x
// with only 0.1% of precision loss" for replacing Haversine with
// equirectangular distances inside a city.
type DistanceReport struct {
	Pairs            int
	HaversineNs      float64 // mean ns per call
	EquirectNs       float64
	Speedup          float64
	MaxRelativeError float64 // worst in-city relative error
}

// RunDistanceReport times both distance functions over random intra-city
// pairs and records the worst relative error.
func RunDistanceReport(pairs int, seed int64) (*DistanceReport, error) {
	if pairs < 100 {
		return nil, fmt.Errorf("experiments: need at least 100 pairs, got %d", pairs)
	}
	src := rng.New(seed)
	as := make([]geo.Point, pairs)
	bs := make([]geo.Point, pairs)
	for i := range as {
		as[i] = geo.Point{Lat: src.Range(48.80, 48.92), Lon: src.Range(2.25, 2.42)}
		bs[i] = geo.Point{Lat: src.Range(48.80, 48.92), Lon: src.Range(2.25, 2.42)}
	}
	rep := &DistanceReport{Pairs: pairs}

	var sinkH, sinkE float64
	start := time.Now()
	for i := range as {
		sinkH += geo.Haversine(as[i], bs[i])
	}
	rep.HaversineNs = float64(time.Since(start).Nanoseconds()) / float64(pairs)
	start = time.Now()
	for i := range as {
		sinkE += geo.Equirectangular(as[i], bs[i])
	}
	rep.EquirectNs = float64(time.Since(start).Nanoseconds()) / float64(pairs)
	if sinkE == 0 && sinkH == 0 {
		return nil, fmt.Errorf("experiments: degenerate distance benchmark")
	}
	if rep.EquirectNs > 0 {
		rep.Speedup = rep.HaversineNs / rep.EquirectNs
	}
	for i := range as {
		h := geo.Haversine(as[i], bs[i])
		if h < 0.05 {
			continue
		}
		e := geo.Equirectangular(as[i], bs[i])
		relErr := (e - h) / h
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > rep.MaxRelativeError {
			rep.MaxRelativeError = relErr
		}
	}
	return rep, nil
}

// Render formats the distance report against the paper's claim.
func (r *DistanceReport) Render() string {
	var b strings.Builder
	b.WriteString("Distance approximation (§3.2 claim: 30x speedup, 0.1% precision loss)\n")
	fmt.Fprintf(&b, "pairs: %d\n", r.Pairs)
	fmt.Fprintf(&b, "haversine:       %.1f ns/op\n", r.HaversineNs)
	fmt.Fprintf(&b, "equirectangular: %.1f ns/op\n", r.EquirectNs)
	fmt.Fprintf(&b, "measured speedup: %.1fx (paper: 30x)\n", r.Speedup)
	fmt.Fprintf(&b, "max in-city relative error: %.4f%% (paper: 0.1%%)\n", 100*r.MaxRelativeError)
	return b.String()
}

// SampleSizeReport reproduces the §4.4.1 sample-size computation (Eq. 5).
type SampleSizeReport struct {
	Population int
	Margin     float64
	Confidence float64
	Proportion float64
	SampleSize int
}

// RunSampleSizeReport evaluates Eq. 5 with the paper's parameters:
// N = 200000, e = 3%, z = 95% confidence, p = 50% → 1062.
func RunSampleSizeReport() (*SampleSizeReport, error) {
	n, err := stats.SampleSize(200000, 0.03, stats.Z95, 0.5)
	if err != nil {
		return nil, err
	}
	return &SampleSizeReport{
		Population: 200000, Margin: 0.03, Confidence: 0.95, Proportion: 0.5,
		SampleSize: n,
	}, nil
}

// Render formats the sample-size report.
func (r *SampleSizeReport) Render() string {
	return fmt.Sprintf(
		"Sample size (Eq. 5): N=%d, e=%.0f%%, confidence=%.0f%%, p=%.0f%% -> n=%d (paper: at least 1062)\n",
		r.Population, 100*r.Margin, 100*r.Confidence, 100*r.Proportion, r.SampleSize)
}
