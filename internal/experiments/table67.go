package experiments

import (
	"fmt"
	"strings"

	"grouptravel/internal/consensus"
	"grouptravel/internal/core"
	"grouptravel/internal/interact"
	"grouptravel/internal/profile"
	"grouptravel/internal/rng"
	"grouptravel/internal/sim"
)

// Strategy names the three packages of the customization study (§4.4.4).
type Strategy int

const (
	StratIndividual Strategy = iota
	StratBatch
	StratNonPersonalized
)

// String returns the paper's label.
func (s Strategy) String() string {
	switch s {
	case StratIndividual:
		return "individual"
	case StratBatch:
		return "batch"
	case StratNonPersonalized:
		return "non-personalized"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Strategies lists the three strategies in Table 6 row order.
var Strategies = []Strategy{StratIndividual, StratBatch, StratNonPersonalized}

// Table6Result is the independent evaluation of customized packages: mean
// 1–5 ratings of the Barcelona packages per strategy, for the uniform and
// non-uniform study groups.
type Table6Result struct {
	// Scores[strategy][0] = uniform group, [1] = non-uniform group.
	Scores map[Strategy][2]float64
	// Sizes of the two groups (11 and 7 in the paper).
	UniformSize, NonUniformSize int
}

// Table7Result is the comparative evaluation: supremacy percentages for
// batch vs individual, batch vs non-personalized, individual vs
// non-personalized.
type Table7Result struct {
	// Supremacy[pair][0] = uniform group, [1] = non-uniform group.
	BatchVsIndividual [2]float64
	BatchVsNonPers    [2]float64
	IndividualVsNP    [2]float64
}

// RunTables6And7 runs the customization study end to end:
//
//  1. build a personalized package in the first city (Paris);
//  2. let every group member interact with it (simulated §3.3 operations);
//  3. refine the group profile with the individual and batch strategies;
//  4. build packages in the second city (Barcelona) from each refined
//     profile plus a non-personalized control;
//  5. gather independent ratings (Table 6) and pairwise preferences
//     (Table 7) from the group's raters, after honeypot filtering.
//
// Group sizes follow the paper: one uniform group of 11 and one
// non-uniform group of 7.
func RunTables6And7(cfg Config) (*Table6Result, *Table7Result, error) {
	if err := cfg.ensureCities(true); err != nil {
		return nil, nil, err
	}
	parisEngine, err := cfg.engine()
	if err != nil {
		return nil, nil, err
	}
	barcaEngine, err := cfg.secondEngine()
	if err != nil {
		return nil, nil, err
	}
	root := rng.New(cfg.Seed)

	t6 := &Table6Result{Scores: make(map[Strategy][2]float64), UniformSize: 11, NonUniformSize: 7}
	t7 := &Table7Result{}

	for col, uniform := range []bool{true, false} {
		src := root.Split(fmt.Sprintf("customize/uniform=%v", uniform))
		var g *profile.Group
		if uniform {
			g, err = profile.GenerateUniformGroup(cfg.City.Schema, t6.UniformSize, src)
		} else {
			g, err = profile.GenerateNonUniformGroup(cfg.City.Schema, t6.NonUniformSize, src)
		}
		if err != nil {
			return nil, nil, err
		}
		// Aggregate with pairwise disagreement — the method Table 2 found
		// strongest across group variants.
		method := consensus.PairwiseDis
		gp, err := consensus.GroupProfile(g, method)
		if err != nil {
			return nil, nil, err
		}
		params := core.DefaultParams(cfg.K)
		parisTP, err := parisEngine.Build(gp, defaultQuery, params)
		if err != nil {
			return nil, nil, err
		}

		// Interactive customization in Paris.
		sess, err := interact.NewSession(cfg.City, parisTP)
		if err != nil {
			return nil, nil, err
		}
		if err := sim.SimulateCustomization(sess, g, sim.DefaultCustomizeOptions(), src.Split("ops")); err != nil {
			return nil, nil, err
		}
		ops := sess.Log()

		// Profile refinement, both strategies.
		batchGP, err := interact.RefineBatch(gp, ops)
		if err != nil {
			return nil, nil, err
		}
		_, indivGP, err := interact.RefineIndividual(g, method, ops)
		if err != nil {
			return nil, nil, err
		}

		// Cross-city packages in Barcelona. The schemas of the two cities
		// share acco/trans types; rest/attr topics are aligned by the
		// shared theme generator (same dimensionality and semantics).
		tps := map[Strategy]*core.TravelPackage{}
		if tps[StratBatch], err = barcaEngine.Build(batchGP, defaultQuery, params); err != nil {
			return nil, nil, err
		}
		if tps[StratIndividual], err = barcaEngine.Build(indivGP, defaultQuery, params); err != nil {
			return nil, nil, err
		}
		if tps[StratNonPersonalized], err = barcaEngine.Build(nil, defaultQuery, params); err != nil {
			return nil, nil, err
		}

		// Evaluation with honeypot filtering, as in §4.4.4.
		honeypot, err := barcaEngine.BuildHoneypot(defaultQuery, cfg.K, src.Int63())
		if err != nil {
			return nil, nil, err
		}
		panel, err := sim.NewPanel(g, 0.066, src.Split("panel"))
		if err != nil {
			return nil, nil, err
		}
		legit := []*core.TravelPackage{tps[StratBatch], tps[StratIndividual], tps[StratNonPersonalized]}
		keep := panel.FilterByHoneypot(honeypot, legit)

		named := map[string]*core.TravelPackage{}
		for _, s := range Strategies {
			named[s.String()] = tps[s]
		}
		scores := panel.IndependentEval(named, keep)
		for _, s := range Strategies {
			cell := t6.Scores[s]
			cell[col] = scores[s.String()]
			t6.Scores[s] = cell
		}
		t7.BatchVsIndividual[col] = panel.ComparativeEval(tps[StratBatch], tps[StratIndividual], keep)
		t7.BatchVsNonPers[col] = panel.ComparativeEval(tps[StratBatch], tps[StratNonPersonalized], keep)
		t7.IndividualVsNP[col] = panel.ComparativeEval(tps[StratIndividual], tps[StratNonPersonalized], keep)
	}
	return t6, t7, nil
}

// Render formats Table 6 like the paper.
func (t *Table6Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 6: independent evaluation of customized travel packages\n")
	fmt.Fprintf(&b, "%-18s%22s%26s\n", "TP type",
		fmt.Sprintf("uniform (%d members)", t.UniformSize),
		fmt.Sprintf("non-uniform (%d members)", t.NonUniformSize))
	for _, s := range Strategies {
		fmt.Fprintf(&b, "%-18s%22.2f%26.2f\n", s, t.Scores[s][0], t.Scores[s][1])
	}
	return b.String()
}

// Render formats Table 7 like the paper.
func (t *Table7Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 7: comparative evaluation of customized travel packages\n")
	fmt.Fprintf(&b, "%-14s%20s%22s%24s\n", "", "batch>individual", "batch>non-pers", "individual>non-pers")
	fmt.Fprintf(&b, "%-14s%19.0f%%%21.0f%%%23.0f%%\n", "uniform",
		100*t.BatchVsIndividual[0], 100*t.BatchVsNonPers[0], 100*t.IndividualVsNP[0])
	fmt.Fprintf(&b, "%-14s%19.0f%%%21.0f%%%23.0f%%\n", "non-uniform",
		100*t.BatchVsIndividual[1], 100*t.BatchVsNonPers[1], 100*t.IndividualVsNP[1])
	return b.String()
}
