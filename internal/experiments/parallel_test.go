package experiments

import (
	"testing"
)

// TestTable2ParallelMatchesSequential verifies the determinism contract:
// any parallelism produces bit-identical cells.
func TestTable2ParallelMatchesSequential(t *testing.T) {
	cfg := quickCfg(t)
	cfg.GroupsPerCell = 4

	cfg.Parallelism = 1
	seq, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		cfg.Parallelism = workers
		par, err := RunTable2(cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", workers, err)
		}
		for ci := range seq.Cells {
			for mi := range seq.Cells[ci] {
				if seq.Cells[ci][mi] != par.Cells[ci][mi] {
					t.Fatalf("parallelism %d: cell [%d][%d] differs: %+v vs %+v",
						workers, ci, mi, seq.Cells[ci][mi], par.Cells[ci][mi])
				}
			}
		}
		if seq.S != par.S || seq.RangeR != par.RangeR || seq.RangeP != par.RangeP {
			t.Fatalf("parallelism %d: normalization constants differ", workers)
		}
	}
}

// TestTable2ParallelismBeyondTasks exercises the workers > tasks clamp.
func TestTable2ParallelismBeyondTasks(t *testing.T) {
	cfg := quickCfg(t)
	cfg.GroupsPerCell = 1
	cfg.Parallelism = 1000
	if _, err := RunTable2(cfg); err != nil {
		t.Fatal(err)
	}
}
