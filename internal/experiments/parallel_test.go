package experiments

import (
	"testing"

	"grouptravel/internal/core"
)

// TestTable2ParallelMatchesSequential verifies the determinism contract:
// any parallelism produces bit-identical cells.
func TestTable2ParallelMatchesSequential(t *testing.T) {
	cfg := quickCfg(t)
	cfg.GroupsPerCell = 4

	cfg.Parallelism = 1
	seq, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		cfg.Parallelism = workers
		par, err := RunTable2(cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", workers, err)
		}
		for ci := range seq.Cells {
			for mi := range seq.Cells[ci] {
				if seq.Cells[ci][mi] != par.Cells[ci][mi] {
					t.Fatalf("parallelism %d: cell [%d][%d] differs: %+v vs %+v",
						workers, ci, mi, seq.Cells[ci][mi], par.Cells[ci][mi])
				}
			}
		}
		if seq.S != par.S || seq.RangeR != par.RangeR || seq.RangeP != par.RangeP {
			t.Fatalf("parallelism %d: normalization constants differ", workers)
		}
	}
}

// TestTable2ParallelismBeyondTasks exercises the workers > tasks clamp.
func TestTable2ParallelismBeyondTasks(t *testing.T) {
	cfg := quickCfg(t)
	cfg.GroupsPerCell = 1
	cfg.Parallelism = 1000
	if _, err := RunTable2(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTable2SharedEngineCacheSharing verifies the cache-sharing win of the
// shared concurrent engine: 8 workers building every package of the run
// compute each distinct clustering exactly once (Table 2 draws cluster
// seeds as gi mod 16, so GroupsPerCell=4 means exactly 4 clusterings for
// hundreds of builds).
func TestTable2SharedEngineCacheSharing(t *testing.T) {
	cfg := quickCfg(t)
	cfg.GroupsPerCell = 4
	cfg.Parallelism = 8
	engine, err := core.NewEngine(cfg.City)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = engine
	if _, err := RunTable2(cfg); err != nil {
		t.Fatal(err)
	}
	if got := engine.CacheMisses(); got != 4 {
		t.Fatalf("cache misses = %d, want 4 (one per distinct cluster seed)", got)
	}

	// A second run over the same engine is fully cache-hot.
	if _, err := RunTable2(cfg); err != nil {
		t.Fatal(err)
	}
	if got := engine.CacheMisses(); got != 4 {
		t.Fatalf("second run clustered afresh: misses = %d, want 4", got)
	}
}

// TestTable2EngineCityMismatch pins the guard against wiring a shared
// engine to the wrong city.
func TestTable2EngineCityMismatch(t *testing.T) {
	cfg := quickCfg(t)
	engine, err := core.NewEngine(cfg.SecondCity)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = engine // over Barcelona, but cfg.City is Paris
	if _, err := RunTable2(cfg); err == nil {
		t.Fatal("expected a city/engine mismatch error")
	}
}
