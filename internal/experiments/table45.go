package experiments

import (
	"fmt"
	"sort"
	"strings"

	"grouptravel/internal/consensus"
	"grouptravel/internal/core"
	"grouptravel/internal/profile"
	"grouptravel/internal/rng"
	"grouptravel/internal/sim"
)

// TPVariant names the six packages each study group evaluates (§4.4.3).
type TPVariant int

const (
	VarRandom TPVariant = iota
	VarNonPersonalized
	VarAverage  // AVTP
	VarLeastMis // LMTP
	VarPairwise // ADTP
	VarVariance // DVTP

	numVariants
)

// String returns the paper's label.
func (v TPVariant) String() string {
	switch v {
	case VarRandom:
		return "random"
	case VarNonPersonalized:
		return "NPTP"
	case VarAverage:
		return "AVTP"
	case VarLeastMis:
		return "LMTP"
	case VarPairwise:
		return "ADTP"
	case VarVariance:
		return "DVTP"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Variants lists the six variants in Table 4's column order.
var Variants = []TPVariant{VarRandom, VarNonPersonalized, VarAverage, VarLeastMis, VarPairwise, VarVariance}

// Pair is one pairwise comparison of Table 5.
type Pair struct{ A, B TPVariant }

// Table5Pairs are the ten comparisons the paper reports, in column order:
// AVTP vs {LMTP, ADTP, DVTP, NPTP}, LMTP vs {ADTP, DVTP, NPTP},
// ADTP vs {DVTP, NPTP}, DVTP vs NPTP.
var Table5Pairs = []Pair{
	{VarAverage, VarLeastMis}, {VarAverage, VarPairwise}, {VarAverage, VarVariance}, {VarAverage, VarNonPersonalized},
	{VarLeastMis, VarPairwise}, {VarLeastMis, VarVariance}, {VarLeastMis, VarNonPersonalized},
	{VarPairwise, VarVariance}, {VarPairwise, VarNonPersonalized},
	{VarVariance, VarNonPersonalized},
}

// Table4Result is the independent user-study evaluation: mean 1–5 interest
// per variant per group class.
type Table4Result struct {
	// Scores[classIdx][variant] in GroupClasses × Variants order.
	Scores [][]float64
	// Discarded counts raters removed by the honeypot filter (the paper
	// discarded 23 of 349).
	Discarded int
	Retained  int
}

// Table5Result is the comparative evaluation: for each pair (A,B), the
// fraction of raters preferring A.
type Table5Result struct {
	// Supremacy[classIdx][pairIdx] = fraction preferring Table5Pairs[pairIdx].A.
	Supremacy [][]float64
}

// studyPackages builds the six variant packages for one group.
func studyPackages(engine *core.Engine, cfg *Config, g *profile.Group, src *rng.Source) (map[TPVariant]*core.TravelPackage, error) {
	out := make(map[TPVariant]*core.TravelPackage, numVariants)
	params := core.DefaultParams(cfg.K)
	params.Seed = src.Int63() % 16

	var err error
	if out[VarRandom], err = engine.BuildRandom(defaultQuery, cfg.K, src.Int63()); err != nil {
		return nil, err
	}
	if out[VarNonPersonalized], err = engine.Build(nil, defaultQuery, params); err != nil {
		return nil, err
	}
	byVariant := map[TPVariant]consensus.Method{
		VarAverage:  consensus.AveragePref,
		VarLeastMis: consensus.LeastMisery,
		VarPairwise: consensus.PairwiseDis,
		VarVariance: consensus.VarianceDis,
	}
	for v, m := range byVariant {
		gp, err := consensus.GroupProfile(g, m)
		if err != nil {
			return nil, err
		}
		if out[v], err = engine.Build(gp, defaultQuery, params); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RunTables4And5 runs the simulated personalization study: for each group
// class it recruits StudyGroupsPerCell groups, builds the six packages,
// filters raters with the invalid-CI honeypot, and gathers independent
// (Table 4) and comparative (Table 5) evaluations.
func RunTables4And5(cfg Config) (*Table4Result, *Table5Result, error) {
	if err := cfg.ensureCities(false); err != nil {
		return nil, nil, err
	}
	engine, err := cfg.engine()
	if err != nil {
		return nil, nil, err
	}
	root := rng.New(cfg.Seed)

	t4 := &Table4Result{Scores: make([][]float64, len(GroupClasses))}
	t5 := &Table5Result{Supremacy: make([][]float64, len(GroupClasses))}
	for ci := range GroupClasses {
		t4.Scores[ci] = make([]float64, numVariants)
		t5.Supremacy[ci] = make([]float64, len(Table5Pairs))
	}

	// The paper's careless-rater rate: 23 discarded of 349 ≈ 6.6%.
	const carelessFrac = 0.066

	// PoolStudy: recruit the participant pool once for the whole study.
	var pool []*profile.Profile
	if cfg.PoolStudy {
		var err error
		if pool, err = studyPool(&cfg, root.Split("pool")); err != nil {
			return nil, nil, err
		}
	}

	for ci, class := range GroupClasses {
		classSrc := root.Split("study/" + class.String())
		t4Counts := make([]int, numVariants)
		t5Counts := make([]int, len(Table5Pairs))
		for gi := 0; gi < cfg.StudyGroupsPerCell; gi++ {
			gSrc := classSrc.Split(fmt.Sprintf("group-%d", gi))
			g, err := makeStudyGroup(&cfg, pool, class, gSrc)
			if err != nil {
				return nil, nil, fmt.Errorf("study %s group %d: %w", class, gi, err)
			}
			tps, err := studyPackages(engine, &cfg, g, gSrc)
			if err != nil {
				return nil, nil, err
			}
			honeypot, err := engine.BuildHoneypot(defaultQuery, cfg.K, gSrc.Int63())
			if err != nil {
				return nil, nil, err
			}
			panel, err := sim.NewPanel(g, carelessFrac, gSrc.Split("panel"))
			if err != nil {
				return nil, nil, err
			}
			legit := make([]*core.TravelPackage, 0, numVariants)
			named := make(map[string]*core.TravelPackage, numVariants)
			for _, v := range Variants {
				legit = append(legit, tps[v])
				named[v.String()] = tps[v]
			}
			keep := panel.FilterByHoneypot(honeypot, legit)
			t4.Discarded += len(panel.Raters) - len(keep)
			t4.Retained += len(keep)

			// Independent evaluation (Table 4).
			scores := panel.IndependentEval(named, keep)
			for vi, v := range Variants {
				t4.Scores[ci][vi] += scores[v.String()] * float64(len(keep))
				t4Counts[vi] += len(keep)
			}
			// Comparative evaluation (Table 5).
			for pi, pair := range Table5Pairs {
				frac := panel.ComparativeEval(tps[pair.A], tps[pair.B], keep)
				t5.Supremacy[ci][pi] += frac * float64(len(keep))
				t5Counts[pi] += len(keep)
			}
		}
		for vi := range Variants {
			if t4Counts[vi] > 0 {
				t4.Scores[ci][vi] /= float64(t4Counts[vi])
			}
		}
		for pi := range Table5Pairs {
			if t5Counts[pi] > 0 {
				t5.Supremacy[ci][pi] /= float64(t5Counts[pi])
			}
		}
	}
	return t4, t5, nil
}

// Render formats Table 4 like the paper.
func (t *Table4Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 4: independent evaluation of user study (mean interest, 1-5)\n")
	fmt.Fprintf(&b, "%-22s", "group class")
	for _, v := range Variants {
		fmt.Fprintf(&b, "%8s", v)
	}
	b.WriteString("\n")
	for ci, class := range GroupClasses {
		fmt.Fprintf(&b, "%-22s", class.String())
		for vi := range Variants {
			fmt.Fprintf(&b, "%8.2f", t.Scores[ci][vi])
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "honeypot filter: discarded %d raters, retained %d\n", t.Discarded, t.Retained)
	return b.String()
}

// Render formats Table 5 like the paper.
func (t *Table5Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 5: comparative evaluation (% preferring the first of each pair)\n")
	fmt.Fprintf(&b, "%-22s", "group class")
	for _, p := range Table5Pairs {
		fmt.Fprintf(&b, "%14s", fmt.Sprintf("%s>%s", p.A, p.B))
	}
	b.WriteString("\n")
	for ci, class := range GroupClasses {
		fmt.Fprintf(&b, "%-22s", class.String())
		for pi := range Table5Pairs {
			fmt.Fprintf(&b, "%13.0f%%", 100*t.Supremacy[ci][pi])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// bestVariant returns the variant with the highest Table 4 score for a
// class (used by experiment self-checks and EXPERIMENTS.md reporting).
func (t *Table4Result) bestVariant(classIdx int) TPVariant {
	idx := make([]int, numVariants)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return t.Scores[classIdx][idx[a]] > t.Scores[classIdx][idx[b]]
	})
	return Variants[idx[0]]
}
