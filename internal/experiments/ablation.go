package experiments

import (
	"fmt"
	"strings"

	"grouptravel/internal/consensus"
	"grouptravel/internal/core"
	"grouptravel/internal/metrics"
	"grouptravel/internal/profile"
	"grouptravel/internal/render"
	"grouptravel/internal/rng"
)

// This file holds the ablation studies DESIGN.md calls out: experiments
// the paper motivates but does not tabulate. They dissect the design
// choices — the personalization weight γ (the source of the paper's
// tension), the KFC refinement rounds, repetition across CIs, and the
// extended consensus methods.

// TensionPoint is one γ setting of the personalization sweep.
type TensionPoint struct {
	Gamma            float64
	Representativity float64 // km, mean over groups
	WithinCIKm       float64 // mean Σ pairwise within-CI distance (lower = more cohesive)
	Personalization  float64 // mean Eq. 4 value
}

// TensionReport is the personalization-vs-cohesiveness tension curve
// (§4.3.3 observes the tension; this sweep quantifies it).
type TensionReport struct {
	Points []TensionPoint
	Groups int
}

// RunTensionSweep builds packages for uniform groups across a γ grid with
// α = β = 1 fixed, reporting how geography degrades as personalization
// strengthens.
func RunTensionSweep(cfg Config, gammas []float64, groups int) (*TensionReport, error) {
	if err := cfg.ensureCities(false); err != nil {
		return nil, err
	}
	if len(gammas) < 2 {
		return nil, fmt.Errorf("experiments: tension sweep needs at least 2 gamma values")
	}
	if groups < 1 {
		return nil, fmt.Errorf("experiments: groups = %d", groups)
	}
	engine, err := cfg.engine()
	if err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	rep := &TensionReport{Groups: groups}
	// One fixed set of groups across all γ so the curve isolates γ.
	type handle struct {
		gp   *profile.Profile
		seed int64
	}
	gps := make([]handle, groups)
	for gi := 0; gi < groups; gi++ {
		g, err := makeGroup(&cfg, GroupClass{Uniform: true, Size: profile.Small}, root.Split(fmt.Sprintf("tension-%d", gi)))
		if err != nil {
			return nil, err
		}
		gp, err := consensus.GroupProfile(g, consensus.AveragePref)
		if err != nil {
			return nil, err
		}
		gps[gi] = handle{gp: gp, seed: int64(gi % 16)}
	}
	for _, gamma := range gammas {
		var pt TensionPoint
		pt.Gamma = gamma
		for _, h := range gps {
			params := core.DefaultParams(cfg.K)
			params.Gamma = gamma
			params.Seed = h.seed
			tp, err := engine.Build(h.gp, defaultQuery, params)
			if err != nil {
				return nil, err
			}
			d := tp.Measure()
			pt.Representativity += d.Representativity
			pt.WithinCIKm += d.RawDistance
			pt.Personalization += d.Personalization
		}
		n := float64(groups)
		pt.Representativity /= n
		pt.WithinCIKm /= n
		pt.Personalization /= n
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// Render formats the tension curve as a table plus an ASCII chart.
func (r *TensionReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: personalization-vs-geography tension (uniform groups, %d per point)\n", r.Groups)
	fmt.Fprintf(&b, "%8s %20s %18s %18s\n", "gamma", "representativity km", "within-CI km", "personalization")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8.2f %20.2f %18.2f %18.2f\n", p.Gamma, p.Representativity, p.WithinCIKm, p.Personalization)
	}
	b.WriteString("(the paper's §4.3.3 tension: personalization up => within-CI distance up)\n")
	if len(r.Points) >= 2 {
		labels := make([]string, len(r.Points))
		within := make([]float64, len(r.Points))
		pers := make([]float64, len(r.Points))
		for i, p := range r.Points {
			labels[i] = fmt.Sprintf("%g", p.Gamma)
			within[i] = p.WithinCIKm
			pers[i] = p.Personalization
		}
		chart, err := render.Chart("gamma sweep", labels, []render.Series{
			{Name: "within-CI km", Marker: 'o', Ys: within},
			{Name: "personalization", Marker: 'x', Ys: pers},
		}, 60, 12)
		if err == nil {
			b.WriteString("\n")
			b.WriteString(chart)
		}
	}
	return b.String()
}

// ConsensusAblation compares the paper's four methods plus the extension
// methods (most pleasure, average without misery) on the Table 2 setup.
type ConsensusAblation struct {
	// Rows follow consensus.ExtendedMethods; Cells[row] holds normalized
	// R/C/P averaged over uniform and non-uniform groups respectively.
	Names   []string
	Uniform []Cell
	NonUni  []Cell
}

// RunConsensusAblation runs a reduced Table 2 over the six extended
// methods (small groups only — the method comparison, not the size sweep).
func RunConsensusAblation(cfg Config) (*ConsensusAblation, error) {
	if err := cfg.ensureCities(false); err != nil {
		return nil, err
	}
	engine, err := cfg.engine()
	if err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	type obs struct {
		method  int
		uniform bool
		dims    metrics.Dimensions
	}
	var all []obs
	for _, uniform := range []bool{true, false} {
		src := root.Split(fmt.Sprintf("consensus-ablation/%v", uniform))
		for gi := 0; gi < cfg.GroupsPerCell; gi++ {
			class := GroupClass{Uniform: uniform, Size: profile.Small}
			g, err := makeGroup(&cfg, class, src.Split(fmt.Sprintf("g%d", gi)))
			if err != nil {
				return nil, err
			}
			params := buildParams(&cfg, src, int64(gi%16))
			for mi, m := range consensus.ExtendedMethods {
				gp, err := consensus.GroupProfile(g, m)
				if err != nil {
					return nil, err
				}
				tp, err := engine.Build(gp, defaultQuery, params)
				if err != nil {
					return nil, err
				}
				all = append(all, obs{method: mi, uniform: uniform, dims: tp.Measure()})
			}
		}
	}
	// Shared normalization.
	var rv, dv, pv []float64
	for _, o := range all {
		rv = append(rv, o.dims.Representativity)
		dv = append(dv, o.dims.RawDistance)
		pv = append(pv, o.dims.Personalization)
	}
	rmm, dmm, pmm := metrics.MinMaxOf(rv), metrics.MinMaxOf(dv), metrics.MinMaxOf(pv)
	s := dmm.Max
	cmm := metrics.MinMax{Min: s - dmm.Max, Max: s - dmm.Min}

	out := &ConsensusAblation{
		Uniform: make([]Cell, len(consensus.ExtendedMethods)),
		NonUni:  make([]Cell, len(consensus.ExtendedMethods)),
	}
	for _, m := range consensus.ExtendedMethods {
		out.Names = append(out.Names, m.Name)
	}
	countU := make([]int, len(out.Uniform))
	countN := make([]int, len(out.NonUni))
	for _, o := range all {
		cell := &out.NonUni[o.method]
		if o.uniform {
			cell = &out.Uniform[o.method]
			countU[o.method]++
		} else {
			countN[o.method]++
		}
		cell.R += rmm.Normalize(o.dims.Representativity)
		cell.C += cmm.Normalize(s - o.dims.RawDistance)
		cell.P += pmm.Normalize(o.dims.Personalization)
	}
	for mi := range out.Uniform {
		if countU[mi] > 0 {
			out.Uniform[mi].R /= float64(countU[mi])
			out.Uniform[mi].C /= float64(countU[mi])
			out.Uniform[mi].P /= float64(countU[mi])
		}
		if countN[mi] > 0 {
			out.NonUni[mi].R /= float64(countN[mi])
			out.NonUni[mi].C /= float64(countN[mi])
			out.NonUni[mi].P /= float64(countN[mi])
		}
	}
	return out, nil
}

// Render formats the consensus ablation.
func (a *ConsensusAblation) Render() string {
	var b strings.Builder
	b.WriteString("Ablation: extended consensus methods (small groups, normalized %)\n")
	fmt.Fprintf(&b, "%-26s | %-20s | %-20s\n", "method", "uniform R/C/P", "non-uniform R/C/P")
	for i, name := range a.Names {
		u, n := a.Uniform[i], a.NonUni[i]
		fmt.Fprintf(&b, "%-26s | %4.0f%% %4.0f%% %4.0f%%     | %4.0f%% %4.0f%% %4.0f%%\n",
			name, 100*u.R, 100*u.C, 100*u.P, 100*n.R, 100*n.C, 100*n.P)
	}
	return b.String()
}
