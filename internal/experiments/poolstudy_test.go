package experiments

import (
	"testing"

	"grouptravel/internal/rng"
)

// TestPoolStudyMode runs Tables 4/5 with groups formed from a simulated
// participant pool (the §4.4.1 pipeline) and checks the study's headline
// finding still holds.
func TestPoolStudyMode(t *testing.T) {
	cfg := quickCfg(t)
	cfg.PoolStudy = true
	cfg.PoolSize = 400
	cfg.StudyGroupsPerCell = 1
	t4, t5, err := RunTables4And5(cfg)
	if err != nil {
		t.Fatalf("pool study: %v", err)
	}
	// Ratings stay in scale and the personalized variants still win for
	// most classes.
	wins := 0
	for ci := range GroupClasses {
		for vi, s := range t4.Scores[ci] {
			if s < 1 || s > 5 {
				t.Fatalf("score [%d][%d] = %v", ci, vi, s)
			}
		}
		best := t4.bestVariant(ci)
		if best != VarRandom && best != VarNonPersonalized {
			wins++
		}
	}
	if wins < 4 {
		t.Errorf("personalized variants win only %d/6 classes under pool study", wins)
	}
	for ci := range t5.Supremacy {
		for pi, f := range t5.Supremacy[ci] {
			if f < 0 || f > 1 {
				t.Fatalf("supremacy [%d][%d] = %v", ci, pi, f)
			}
		}
	}
}

// TestStudyPoolComposition checks the recruited pool can form every group
// class the study needs.
func TestStudyPoolComposition(t *testing.T) {
	cfg := quickCfg(t)
	cfg.PoolSize = 400
	pool, err := studyPool(&cfg, rng.New(cfg.Seed))
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) != 400 {
		t.Fatalf("pool size %d", len(pool))
	}
	poolCfg := cfg
	poolCfg.PoolStudy = true
	for _, gc := range GroupClasses {
		if _, err := makeStudyGroup(&poolCfg, pool, gc, rng.New(cfg.Seed+int64(gc.Size)+boolSeed(gc.Uniform))); err != nil {
			t.Errorf("%s: %v", gc, err)
		}
	}
}

func boolSeed(b bool) int64 {
	if b {
		return 1000
	}
	return 2000
}
