package experiments

import (
	"strings"
	"testing"

	"grouptravel/internal/dataset"
)

// quickCfg builds a test-scale config with small shared cities.
var (
	sharedParis *dataset.City
	sharedBarca *dataset.City
)

func quickCfg(t *testing.T) Config {
	t.Helper()
	if sharedParis == nil {
		p, err := dataset.Generate(dataset.TestSpec("Paris", 100))
		if err != nil {
			t.Fatal(err)
		}
		spec := dataset.TestSpec("Barcelona", 200)
		spec.Center = dataset.BuiltinCenters["Barcelona"]
		b, err := dataset.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		sharedParis, sharedBarca = p, b
	}
	cfg := QuickConfig()
	cfg.City = sharedParis
	cfg.SecondCity = sharedBarca
	return cfg
}

var cachedT2 *Table2Result

func table2(t *testing.T) *Table2Result {
	t.Helper()
	if cachedT2 == nil {
		res, err := RunTable2(quickCfg(t))
		if err != nil {
			t.Fatal(err)
		}
		cachedT2 = res
	}
	return cachedT2
}

func TestTable2Shape(t *testing.T) {
	res := table2(t)
	if len(res.Cells) != len(GroupClasses) {
		t.Fatalf("got %d class rows", len(res.Cells))
	}
	for ci := range res.Cells {
		if len(res.Cells[ci]) != 4 {
			t.Fatalf("class %d has %d method cells", ci, len(res.Cells[ci]))
		}
		for mi, c := range res.Cells[ci] {
			for _, v := range []float64{c.R, c.C, c.P} {
				if v < 0 || v > 1 {
					t.Fatalf("cell[%d][%d] outside [0,1]: %+v", ci, mi, c)
				}
			}
		}
	}
	// 6 classes × GroupsPerCell × 4 methods raw runs.
	want := len(GroupClasses) * QuickConfig().GroupsPerCell * 4
	if len(res.runs) != want {
		t.Fatalf("raw runs = %d, want %d", len(res.runs), want)
	}
}

// TestTable2QualitativeFindings checks the paper's §4.3.2 headline
// observations on our synthetic reproduction.
func TestTable2QualitativeFindings(t *testing.T) {
	res := table2(t)
	avgOver := func(classes []GroupClass, mi int, pick func(Cell) float64) float64 {
		s := 0.0
		for _, gc := range classes {
			s += pick(res.CellFor(gc, mi))
		}
		return s / float64(len(classes))
	}
	all := GroupClasses
	nonUniform := GroupClasses[3:]
	uniform := GroupClasses[:3]

	// "disagreement-based consensus functions ... perform best in terms of
	// all optimization dimensions": their mean P must beat least misery.
	pAvg := avgOver(all, 0, func(c Cell) float64 { return c.P })
	pLM := avgOver(all, 1, func(c Cell) float64 { return c.P })
	pPW := avgOver(all, 2, func(c Cell) float64 { return c.P })
	pDV := avgOver(all, 3, func(c Cell) float64 { return c.P })
	if pPW <= pLM || pDV <= pLM {
		t.Errorf("disagreement methods (%.2f, %.2f) do not beat least misery (%.2f) on personalization",
			pPW, pDV, pLM)
	}
	// "Least misery appears to be the worst aggregation method."
	if pLM >= pAvg || pLM >= pPW || pLM >= pDV {
		t.Errorf("least misery (%.2f) is not the worst for personalization (avg %.2f, pw %.2f, dv %.2f)",
			pLM, pAvg, pPW, pDV)
	}
	// Least misery personalization collapses for non-uniform groups
	// (Table 2 shows 7%, 7%, 0%).
	lmNonUniformP := avgOver(nonUniform, 1, func(c Cell) float64 { return c.P })
	if lmNonUniformP > 0.25 {
		t.Errorf("least-misery non-uniform personalization %.2f, expected ≈0", lmNonUniformP)
	}
	// "TPs for non-uniform groups are more cohesive than uniform groups"
	// (per method, averaged over sizes).
	for mi, name := range MethodNames {
		cu := avgOver(uniform, mi, func(c Cell) float64 { return c.C })
		cn := avgOver(nonUniform, mi, func(c Cell) float64 { return c.C })
		if cn < cu {
			t.Errorf("%s: non-uniform cohesiveness %.2f below uniform %.2f", name, cn, cu)
		}
	}
}

func TestTable2SizeTrendsPCC(t *testing.T) {
	// The three-point size series needs tighter cell means than the quick
	// config's 6 groups per cell provide; use 24 (the paper uses 100).
	cfg := quickCfg(t)
	cfg.GroupsPerCell = 24
	res, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pcc, err := res.PCC()
	if err != nil {
		t.Fatal(err)
	}
	// §4.3.3: cohesiveness grows with uniform group size for every
	// consensus method (paper PCCs all positive) — robust in our model.
	for mi, name := range MethodNames {
		if pcc.CohesivenessPCC[mi] <= 0 {
			t.Errorf("%s: cohesiveness PCC %.2f not positive", name, pcc.CohesivenessPCC[mi])
		}
	}
	// Personalization falls with size (paper PCCs strongly negative). In
	// our reproduction this trend is robust for the disagreement-based
	// methods; for average preference and least misery the three size-
	// class means are flat within noise (see EXPERIMENTS.md), so only the
	// robust pair is asserted.
	for _, mi := range []int{2, 3} { // pair-wise disagreement, variance
		if pcc.PersonalizationPCC[mi] >= 0 {
			t.Errorf("%s: personalization PCC %.2f not negative", MethodNames[mi], pcc.PersonalizationPCC[mi])
		}
	}
	if !strings.Contains(pcc.Render(), "cohesiveness") {
		t.Fatal("PCC render missing content")
	}
}

func TestTable2ANOVA(t *testing.T) {
	res := table2(t)
	rep, err := res.ANOVA()
	if err != nil {
		t.Fatal(err)
	}
	// The consensus method must significantly influence personalization —
	// the paper's central synthetic finding.
	if !rep.Personalization.Significant(0.05) {
		t.Errorf("personalization ANOVA not significant: %v", rep.Personalization)
	}
	if rep.Personalization.DF1 != 3 {
		t.Errorf("df1 = %d, want 3 (4 methods)", rep.Personalization.DF1)
	}
	if !strings.Contains(rep.Render(), "ANOVA") {
		t.Fatal("ANOVA render missing content")
	}
}

func TestTable2Render(t *testing.T) {
	res := table2(t)
	out := res.Render()
	for _, want := range []string{"Table 2", "uniform/small", "non-uniform/large", "average preference", "disagreement variance"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Deterministic(t *testing.T) {
	cfg := quickCfg(t)
	cfg.GroupsPerCell = 2
	a, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range a.Cells {
		for mi := range a.Cells[ci] {
			if a.Cells[ci][mi] != b.Cells[ci][mi] {
				t.Fatalf("non-deterministic cell [%d][%d]", ci, mi)
			}
		}
	}
}

func TestTable3(t *testing.T) {
	cfg := quickCfg(t)
	cfg.GroupsPerCell = 3
	res, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range res.Cells {
		for mi, c := range res.Cells[ci] {
			for _, v := range []float64{c.R, c.C, c.P} {
				if v < 0 || v > 1 {
					t.Fatalf("agreement cell [%d][%d] outside [0,1]: %+v", ci, mi, c)
				}
			}
		}
	}
	// §4.3.3: "In large groups, preferences of individuals fade out and
	// returned TPs are farther from the median user's preferences" — for
	// non-uniform groups, large-group personalization agreement must not
	// exceed small-group agreement by much; and uniform groups agree better
	// than non-uniform ones overall.
	avgP := func(gc GroupClass) float64 {
		s := 0.0
		for mi := range methods {
			s += res.CellFor(gc, mi).P
		}
		return s / float64(len(methods))
	}
	uniformMean := (avgP(GroupClasses[0]) + avgP(GroupClasses[1]) + avgP(GroupClasses[2])) / 3
	nonUniformMean := (avgP(GroupClasses[3]) + avgP(GroupClasses[4]) + avgP(GroupClasses[5])) / 3
	if uniformMean < nonUniformMean {
		t.Errorf("uniform median-user agreement %.2f below non-uniform %.2f", uniformMean, nonUniformMean)
	}
	if !strings.Contains(res.Render(), "Table 3") {
		t.Fatal("render missing title")
	}
}

func TestTables4And5(t *testing.T) {
	cfg := quickCfg(t)
	t4, t5, err := RunTables4And5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All ratings in [1,5].
	for ci := range t4.Scores {
		for vi, s := range t4.Scores[ci] {
			if s < 1 || s > 5 {
				t.Fatalf("Table 4 score [%d][%d] = %v outside [1,5]", ci, vi, s)
			}
		}
	}
	// §4.4.2: "participants liked personalized TPs more than
	// non-personalized and random TPs" — best variant per class must be a
	// personalized one for most classes.
	personalizedWins := 0
	for ci := range GroupClasses {
		best := t4.bestVariant(ci)
		if best != VarRandom && best != VarNonPersonalized {
			personalizedWins++
		}
	}
	if personalizedWins < 4 {
		t.Errorf("personalized variants win only %d/6 classes", personalizedWins)
	}
	// Table 5 fractions in [0,1].
	for ci := range t5.Supremacy {
		for pi, f := range t5.Supremacy[ci] {
			if f < 0 || f > 1 {
				t.Fatalf("Table 5 fraction [%d][%d] = %v", ci, pi, f)
			}
		}
	}
	// Personalized variants beat NPTP in pairwise comparisons on average.
	npPairs := []int{3, 6, 8, 9} // X vs NPTP columns
	tot, n := 0.0, 0
	for ci := range GroupClasses {
		for _, pi := range npPairs {
			tot += t5.Supremacy[ci][pi]
			n++
		}
	}
	if tot/float64(n) < 0.5 {
		t.Errorf("personalized variants beat NPTP only %.0f%% of the time", 100*tot/float64(n))
	}
	if !strings.Contains(t4.Render(), "Table 4") || !strings.Contains(t5.Render(), "Table 5") {
		t.Fatal("render missing titles")
	}
	if t4.Retained == 0 {
		t.Fatal("honeypot filter retained nobody")
	}
}

func TestTables6And7(t *testing.T) {
	cfg := quickCfg(t)
	t6, t7, err := RunTables6And7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Strategies {
		for col := 0; col < 2; col++ {
			v := t6.Scores[s][col]
			if v < 1 || v > 5 {
				t.Fatalf("Table 6 score %s[%d] = %v", s, col, v)
			}
		}
	}
	for col := 0; col < 2; col++ {
		for _, f := range []float64{t7.BatchVsIndividual[col], t7.BatchVsNonPers[col], t7.IndividualVsNP[col]} {
			if f < 0 || f > 1 {
				t.Fatalf("Table 7 fraction %v outside [0,1]", f)
			}
		}
	}
	// §4.4.2: "the supremacy of the batch strategy over the individual
	// strategy in almost all cases" — batch must not lose to individual in
	// both columns.
	if t7.BatchVsIndividual[0] < 0.5 && t7.BatchVsIndividual[1] < 0.5 {
		t.Errorf("batch lost to individual in both groups: %v", t7.BatchVsIndividual)
	}
	if !strings.Contains(t6.Render(), "Table 6") || !strings.Contains(t7.Render(), "Table 7") {
		t.Fatal("render missing titles")
	}
}

func TestDistanceReport(t *testing.T) {
	rep, err := RunDistanceReport(20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Speedup <= 1 {
		t.Errorf("equirectangular not faster than haversine: %.2fx", rep.Speedup)
	}
	// The paper's 0.1% precision claim must hold.
	if rep.MaxRelativeError > 0.001 {
		t.Errorf("in-city relative error %.4f%% exceeds 0.1%%", 100*rep.MaxRelativeError)
	}
	if _, err := RunDistanceReport(10, 1); err == nil {
		t.Fatal("tiny pair count accepted")
	}
	if !strings.Contains(rep.Render(), "30x") {
		t.Fatal("render missing the paper claim")
	}
}

func TestSampleSizeReport(t *testing.T) {
	rep, err := RunSampleSizeReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SampleSize != 1062 {
		t.Fatalf("sample size %d, paper says 1062", rep.SampleSize)
	}
	if !strings.Contains(rep.Render(), "1062") {
		t.Fatal("render missing value")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := quickCfg(t)
	cfg.GroupsPerCell = 0
	if _, err := RunTable2(cfg); err == nil {
		t.Fatal("zero groups per cell accepted")
	}
	cfg = quickCfg(t)
	cfg.K = 1
	if _, err := RunTable2(cfg); err == nil {
		t.Fatal("K=1 accepted (representativity needs 2 centroids)")
	}
}

func TestGroupClassString(t *testing.T) {
	if GroupClasses[0].String() != "uniform/small" || GroupClasses[5].String() != "non-uniform/large" {
		t.Fatal("group class labels wrong")
	}
}

func TestVariantAndStrategyStrings(t *testing.T) {
	if VarPairwise.String() != "ADTP" || VarVariance.String() != "DVTP" || VarNonPersonalized.String() != "NPTP" {
		t.Fatal("variant labels do not match the paper")
	}
	if StratBatch.String() != "batch" {
		t.Fatal("strategy label wrong")
	}
}
