package experiments

import (
	"fmt"
	"math"
	"strings"

	"grouptravel/internal/consensus"
	"grouptravel/internal/metrics"
	"grouptravel/internal/rng"
)

// Table3Result reports the agreement between median users and their groups
// (§4.3.3): how close the optimization dimensions of the group's travel
// package are to those of a package built for the group's median user
// alone. 100% is perfect agreement.
type Table3Result struct {
	// Cells[classIdx][methodIdx] — same layout as Table 2.
	Cells [][]Cell
}

// RunTable3 executes the median-user experiment. For every group it finds
// the median user (the member with the highest summed cosine similarity to
// the others), builds one package for the group profile and one for the
// median user's own profile, and reports per-dimension agreement
// 1 − |normalized(group) − normalized(median)| averaged per cell.
func RunTable3(cfg Config) (*Table3Result, error) {
	if err := cfg.ensureCities(false); err != nil {
		return nil, err
	}
	engine, err := cfg.engine()
	if err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)

	type pairRun struct {
		class      GroupClass
		method     int
		groupDims  metrics.Dimensions
		medianDims metrics.Dimensions
	}
	var runs []pairRun
	for _, class := range GroupClasses {
		classSrc := root.Split("table3/" + class.String())
		for gi := 0; gi < cfg.GroupsPerCell; gi++ {
			g, err := makeGroup(&cfg, class, classSrc.Split(fmt.Sprintf("group-%d", gi)))
			if err != nil {
				return nil, fmt.Errorf("table3 %s group %d: %w", class, gi, err)
			}
			median := g.Members[g.MedianUser()]
			params := buildParams(&cfg, classSrc, int64(gi%16))
			medianTP, err := engine.Build(median, defaultQuery, params)
			if err != nil {
				return nil, err
			}
			medianDims := medianTP.Measure()
			for mi, method := range methods {
				gp, err := consensus.GroupProfile(g, method)
				if err != nil {
					return nil, err
				}
				tp, err := engine.Build(gp, defaultQuery, params)
				if err != nil {
					return nil, err
				}
				// Personalization must be comparable: evaluate both
				// packages against the median user's own profile.
				gd := tp.Measure()
				gd.Personalization = metrics.Personalization(tp.CIs, median)
				runs = append(runs, pairRun{class: class, method: mi, groupDims: gd, medianDims: medianDims})
			}
		}
	}

	// Pool both package kinds for one shared normalization per dimension.
	var rv, dv, pv []float64
	for _, r := range runs {
		rv = append(rv, r.groupDims.Representativity, r.medianDims.Representativity)
		dv = append(dv, r.groupDims.RawDistance, r.medianDims.RawDistance)
		pv = append(pv, r.groupDims.Personalization, r.medianDims.Personalization)
	}
	rmm, dmm, pmm := metrics.MinMaxOf(rv), metrics.MinMaxOf(dv), metrics.MinMaxOf(pv)
	s := dmm.Max
	cohN := func(raw float64) float64 {
		// Normalize cohesiveness (S − raw) over its induced range.
		return metrics.MinMax{Min: s - dmm.Max, Max: s - dmm.Min}.Normalize(s - raw)
	}

	res := &Table3Result{Cells: make([][]Cell, len(GroupClasses))}
	counts := make([][]int, len(GroupClasses))
	for i := range res.Cells {
		res.Cells[i] = make([]Cell, len(methods))
		counts[i] = make([]int, len(methods))
	}
	classIdx := func(gc GroupClass) int {
		for i, c := range GroupClasses {
			if c == gc {
				return i
			}
		}
		panic("experiments: unknown group class")
	}
	agree := func(a, b float64) float64 { return 1 - math.Abs(a-b) }
	for _, r := range runs {
		ci := classIdx(r.class)
		cell := &res.Cells[ci][r.method]
		cell.R += agree(rmm.Normalize(r.groupDims.Representativity), rmm.Normalize(r.medianDims.Representativity))
		cell.C += agree(cohN(r.groupDims.RawDistance), cohN(r.medianDims.RawDistance))
		cell.P += agree(pmm.Normalize(r.groupDims.Personalization), pmm.Normalize(r.medianDims.Personalization))
		counts[ci][r.method]++
	}
	for ci := range res.Cells {
		for mi := range res.Cells[ci] {
			if n := counts[ci][mi]; n > 0 {
				res.Cells[ci][mi].R /= float64(n)
				res.Cells[ci][mi].C /= float64(n)
				res.Cells[ci][mi].P /= float64(n)
			}
		}
	}
	return res, nil
}

// CellFor returns the cell for a group class and method index.
func (t *Table3Result) CellFor(gc GroupClass, method int) Cell {
	for i, c := range GroupClasses {
		if c == gc {
			return t.Cells[i][method]
		}
	}
	panic("experiments: unknown group class")
}

// Render formats the result like the paper's Table 3 layout.
func (t *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 3: agreement between median users and groups (100% = highest)\n")
	fmt.Fprintf(&b, "%-22s", "group class")
	for _, name := range MethodNames {
		fmt.Fprintf(&b, "| %-23s", name)
	}
	b.WriteString("\n")
	for ci, class := range GroupClasses {
		fmt.Fprintf(&b, "%-22s", class.String())
		for mi := range methods {
			c := t.Cells[ci][mi]
			fmt.Fprintf(&b, "| %4.0f%% %4.0f%% %4.0f%%      ", 100*c.R, 100*c.C, 100*c.P)
		}
		b.WriteString("\n")
	}
	return b.String()
}
