package experiments

import (
	"strings"
	"testing"
)

func TestTensionSweepMonotoneDirection(t *testing.T) {
	cfg := quickCfg(t)
	rep, err := RunTensionSweep(cfg, []float64{0, 1, 5, 25}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 4 {
		t.Fatalf("got %d points", len(rep.Points))
	}
	first, last := rep.Points[0], rep.Points[len(rep.Points)-1]
	// Personalization must rise with γ.
	if last.Personalization <= first.Personalization {
		t.Fatalf("personalization did not rise with gamma: %v -> %v",
			first.Personalization, last.Personalization)
	}
	// Geography must pay: within-CI distance rises (the paper's tension).
	if last.WithinCIKm <= first.WithinCIKm {
		t.Fatalf("within-CI distance did not rise with gamma: %v -> %v",
			first.WithinCIKm, last.WithinCIKm)
	}
	if !strings.Contains(rep.Render(), "gamma") {
		t.Fatal("render missing content")
	}
}

func TestTensionSweepValidation(t *testing.T) {
	cfg := quickCfg(t)
	if _, err := RunTensionSweep(cfg, []float64{1}, 3); err == nil {
		t.Fatal("single gamma accepted")
	}
	if _, err := RunTensionSweep(cfg, []float64{0, 1}, 0); err == nil {
		t.Fatal("zero groups accepted")
	}
}

func TestConsensusAblation(t *testing.T) {
	cfg := quickCfg(t)
	a, err := RunConsensusAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Names) != 6 {
		t.Fatalf("expected 6 methods, got %d", len(a.Names))
	}
	for i := range a.Names {
		for _, c := range []Cell{a.Uniform[i], a.NonUni[i]} {
			for _, v := range []float64{c.R, c.C, c.P} {
				if v < 0 || v > 1 {
					t.Fatalf("%s: cell outside [0,1]: %+v", a.Names[i], c)
				}
			}
		}
	}
	// Most pleasure must personalize at least as well as least misery for
	// non-uniform groups (max of disjoint supports is non-zero; min is 0).
	var lm, mp Cell
	for i, name := range a.Names {
		switch name {
		case "least misery":
			lm = a.NonUni[i]
		case "most pleasure":
			mp = a.NonUni[i]
		}
	}
	if mp.P < lm.P {
		t.Fatalf("most pleasure P %.2f below least misery %.2f for non-uniform groups", mp.P, lm.P)
	}
	if !strings.Contains(a.Render(), "most pleasure") {
		t.Fatal("render missing extension methods")
	}
}
