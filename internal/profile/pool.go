package profile

import (
	"fmt"

	"grouptravel/internal/poi"
	"grouptravel/internal/rng"
	"grouptravel/internal/vec"
)

// This file implements group formation from a participant pool — the step
// the paper performs between recruiting crowd workers and running the
// study ("We then used the generated user profiles to build groups with
// varying characteristics, i.e., size and uniformity", §4.4.1). Given a
// pool of profiles, FormGroup assembles a group of the requested size
// whose uniformity falls in the requested band, by greedy similarity
// search: uniform groups grow around a seed by repeatedly admitting the
// candidate most similar to the current members; non-uniform groups admit
// the least similar candidate.

// Band is a target uniformity interval.
type Band struct {
	Min float64
	Max float64
}

// UniformBand is the paper's uniform-group criterion (> 0.85).
var UniformBand = Band{Min: UniformThreshold, Max: 1}

// NonUniformBand is the paper's non-uniform criterion (< 0.20).
var NonUniformBand = Band{Min: 0, Max: NonUniformThreshold}

// contains reports whether u falls inside the band (inclusive).
func (b Band) contains(u float64) bool { return u >= b.Min && u <= b.Max }

// FormGroup assembles a group of the given size from the pool with
// uniformity in the band. Several random seeds are tried; the pool is not
// modified, and members may be shared across calls (real study groups drew
// from one participant pool). It fails when the pool cannot produce the
// requested band — e.g. asking for a non-uniform group from a pool of
// clones.
func FormGroup(schema *poi.Schema, pool []*Profile, size int, band Band, src *rng.Source) (*Group, error) {
	if size < 1 {
		return nil, fmt.Errorf("profile: group size %d", size)
	}
	if len(pool) < size {
		return nil, fmt.Errorf("profile: pool of %d cannot form a group of %d", len(pool), size)
	}
	if band.Min > band.Max || band.Min < 0 || band.Max > 1 {
		return nil, fmt.Errorf("profile: invalid uniformity band [%v, %v]", band.Min, band.Max)
	}
	// Precompute concatenated vectors once.
	cat := make([]vec.Vector, len(pool))
	for i, p := range pool {
		cat[i] = p.Concat()
	}
	// Growing toward high uniformity admits the most-similar candidate;
	// growing toward low uniformity admits the least-similar.
	wantHigh := band.Min > 0.5

	const attempts = 8
	var bestGroup *Group
	bestDist := -1.0
	for a := 0; a < attempts; a++ {
		idxs := growGroup(cat, size, wantHigh, src)
		members := make([]*Profile, size)
		for i, idx := range idxs {
			members[i] = pool[idx]
		}
		g, err := NewGroup(schema, members)
		if err != nil {
			return nil, err
		}
		u := g.Uniformity()
		if band.contains(u) {
			return g, nil
		}
		// Track the nearest miss for the error message.
		d := bandDistance(band, u)
		if bestDist < 0 || d < bestDist {
			bestDist, bestGroup = d, g
		}
	}
	return nil, fmt.Errorf("profile: pool cannot reach uniformity in [%.2f, %.2f] (closest achieved: %.2f)",
		band.Min, band.Max, bestGroup.Uniformity())
}

// growGroup greedily grows a member set from a random seed.
func growGroup(cat []vec.Vector, size int, wantHigh bool, src *rng.Source) []int {
	seed := src.Intn(len(cat))
	chosen := []int{seed}
	used := map[int]bool{seed: true}
	for len(chosen) < size {
		bestIdx, bestScore := -1, 0.0
		for i := range cat {
			if used[i] {
				continue
			}
			// Mean similarity to the current members.
			s := 0.0
			for _, c := range chosen {
				s += vec.Cosine(cat[i], cat[c])
			}
			s /= float64(len(chosen))
			better := bestIdx == -1 || (wantHigh && s > bestScore) || (!wantHigh && s < bestScore)
			if better {
				bestIdx, bestScore = i, s
			}
		}
		chosen = append(chosen, bestIdx)
		used[bestIdx] = true
	}
	return chosen
}

// bandDistance measures how far u is from the band.
func bandDistance(b Band, u float64) float64 {
	switch {
	case u < b.Min:
		return b.Min - u
	case u > b.Max:
		return u - b.Max
	default:
		return 0
	}
}

// GeneratePool draws n independent random profiles — the synthetic
// counterpart of a recruited participant pool (§4.4.1 recruited 3000
// workers and pruned invalid registrations before forming groups).
func GeneratePool(schema *poi.Schema, n int, src *rng.Source) []*Profile {
	pool := make([]*Profile, n)
	for i := range pool {
		pool[i] = GenerateRandomProfile(schema, src)
	}
	return pool
}
