// Package profile implements user and group travel profiles (§2.2–2.3 of
// the paper) and the synthetic group generators of the Table 2 experiment.
//
// A user profile holds one preference vector per POI category: scores in
// [0,1] over accommodation types, transportation types, restaurant topics
// and attraction topics. A group is a matrix of member profiles; its
// uniformity is the average pairwise cosine similarity between member
// profiles (§4.1), and its group profile is produced by the consensus
// functions in package consensus.
package profile

import (
	"fmt"

	"grouptravel/internal/poi"
	"grouptravel/internal/rng"
	"grouptravel/internal/vec"
)

// Profile is one user's travel profile: a preference vector per category.
type Profile struct {
	vectors [poi.NumCategories]vec.Vector
}

// New returns an all-zero profile shaped by the schema.
func New(schema *poi.Schema) *Profile {
	p := &Profile{}
	for _, c := range poi.Categories {
		p.vectors[c] = vec.New(schema.Dim(c))
	}
	return p
}

// Vector returns the preference vector for category c (shared; mutate via
// SetVector to keep validation in one place).
func (p *Profile) Vector(c poi.Category) vec.Vector { return p.vectors[c] }

// SetVector replaces the preference vector for category c. Components must
// lie in [0,1].
func (p *Profile) SetVector(c poi.Category, v vec.Vector) error {
	if !v.InUnitRange() {
		return fmt.Errorf("profile: vector for %s outside [0,1]: %v", c, v)
	}
	p.vectors[c] = v.Clone()
	return nil
}

// Clone returns a deep copy.
func (p *Profile) Clone() *Profile {
	out := &Profile{}
	for c := range p.vectors {
		out.vectors[c] = p.vectors[c].Clone()
	}
	return out
}

// Concat returns the concatenation of the four category vectors — the
// single-vector view "®u" used for uniformity and median-user computations.
func (p *Profile) Concat() vec.Vector {
	total := 0
	for _, v := range p.vectors {
		total += len(v)
	}
	out := make(vec.Vector, 0, total)
	for _, v := range p.vectors {
		out = append(out, v...)
	}
	return out
}

// FromRatings builds a profile from raw 0–5 ratings per category, applying
// the paper's normalization u_j = r_j / Σ_k r_k (§2.2). Rating slices must
// match the schema dimensions; all-zero rating slices stay all-zero.
func FromRatings(schema *poi.Schema, ratings map[poi.Category][]float64) (*Profile, error) {
	p := New(schema)
	for c, rs := range ratings {
		if !c.Valid() {
			return nil, fmt.Errorf("profile: invalid category %d", c)
		}
		if len(rs) != schema.Dim(c) {
			return nil, fmt.Errorf("profile: %d ratings for %s, schema wants %d", len(rs), c, schema.Dim(c))
		}
		v := make(vec.Vector, len(rs))
		for j, r := range rs {
			if r < 0 || r > 5 {
				return nil, fmt.Errorf("profile: rating %v for %s[%d] outside [0,5]", r, c, j)
			}
			v[j] = r
		}
		v.NormalizeSum()
		p.vectors[c] = v
	}
	return p, nil
}

// Group is a travel group: an ordered set of member profiles sharing one
// schema.
type Group struct {
	Members []*Profile
	schema  *poi.Schema
}

// NewGroup builds a group. At least one member is required.
func NewGroup(schema *poi.Schema, members []*Profile) (*Group, error) {
	if schema == nil {
		return nil, fmt.Errorf("profile: nil schema")
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("profile: empty group")
	}
	for i, m := range members {
		for _, c := range poi.Categories {
			if len(m.Vector(c)) != schema.Dim(c) {
				return nil, fmt.Errorf("profile: member %d has dim %d for %s, schema wants %d",
					i, len(m.Vector(c)), c, schema.Dim(c))
			}
		}
	}
	return &Group{Members: members, schema: schema}, nil
}

// Schema returns the group's schema.
func (g *Group) Schema() *poi.Schema { return g.schema }

// Size returns |G|.
func (g *Group) Size() int { return len(g.Members) }

// Uniformity returns the average pairwise cosine similarity between member
// profile vectors (§4.1). A single-member group is perfectly uniform.
func (g *Group) Uniformity() float64 {
	n := len(g.Members)
	if n < 2 {
		return 1
	}
	cat := make([]vec.Vector, n)
	for i, m := range g.Members {
		cat[i] = m.Concat()
	}
	sum, pairs := 0.0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += vec.Cosine(cat[i], cat[j])
			pairs++
		}
	}
	return sum / float64(pairs)
}

// MedianUser returns the index of the group's median user: the member whose
// summed cosine similarity to all other members is highest (§4.3.3 — "The
// sum of Cosine values between the profile of the median user u and all
// other members of u's group is the highest"). Ties break to the lower
// index for determinism.
func (g *Group) MedianUser() int {
	n := len(g.Members)
	if n == 1 {
		return 0
	}
	cat := make([]vec.Vector, n)
	for i, m := range g.Members {
		cat[i] = m.Concat()
	}
	bestIdx, bestSum := 0, -1.0
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			if i != j {
				sum += vec.Cosine(cat[i], cat[j])
			}
		}
		if sum > bestSum {
			bestIdx, bestSum = i, sum
		}
	}
	return bestIdx
}

// SizeClass is the paper's three-way group-size taxonomy (§4.1).
type SizeClass int

const (
	Small  SizeClass = iota // 5 members
	Medium                  // 10 members
	Large                   // 100 members
)

// Size returns the member count of the class.
func (s SizeClass) Size() int {
	switch s {
	case Small:
		return 5
	case Medium:
		return 10
	case Large:
		return 100
	default:
		panic(fmt.Sprintf("profile: unknown size class %d", s))
	}
}

// String returns the paper's label.
func (s SizeClass) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	default:
		return fmt.Sprintf("sizeclass(%d)", int(s))
	}
}

// SizeClasses lists the paper's three classes in order.
var SizeClasses = []SizeClass{Small, Medium, Large}

// Uniformity thresholds of §4.1: "uniform groups having a uniformity value
// larger than 0.85, and non-uniform groups having a uniformity value
// smaller than 0.20".
const (
	UniformThreshold    = 0.85
	NonUniformThreshold = 0.20
)

// GenerateRandomProfile fills every cell with an independent random value
// in [0,1] — the paper's "independent roll-and-dice process" (§4.3.1).
//
// The draw is right-skewed (the cube of a uniform variate) rather than
// uniform: real travelers like a few POI types strongly and are tepid
// about the rest. Dense uniform cells would make every pair of
// non-negative vectors nearly parallel (expected cosine ≈ 0.75), crushing
// the dynamic range of the personalization measure; the paper's own raw
// personalization range ([0.01, 0.16] summed over 30 items, §4.3.1) shows
// their profile/item cosines were similarly far from saturation.
func GenerateRandomProfile(schema *poi.Schema, src *rng.Source) *Profile {
	p := New(schema)
	for _, c := range poi.Categories {
		v := p.vectors[c]
		for j := range v {
			u := src.Float64()
			v[j] = u * u * u
		}
	}
	return p
}

// GenerateUniformGroup builds a group of the given size whose uniformity
// exceeds UniformThreshold. Each member blends one shared random base
// profile with an individual random profile:
//
//	member = (1−λ)·base + λ·individual + small Gaussian noise
//
// where the individual weight λ grows with group size — assembling 100
// "like-minded" travelers admits far looser similarity than assembling 5.
// This reproduces the paper's §4.3.3 observations that group uniformity
// (and with it personalization) fades as uniform groups grow, while every
// generated group still verifiably sits in the uniform band (> 0.85). It
// retries with fresh bases in the rare case the band is missed.
func GenerateUniformGroup(schema *poi.Schema, size int, src *rng.Source) (*Group, error) {
	if size < 1 {
		return nil, fmt.Errorf("profile: group size %d", size)
	}
	lambda := 0.5 * float64(size) / (float64(size) + 15)
	const noise = 0.05
	for attempt := 0; attempt < 16; attempt++ {
		base := GenerateRandomProfile(schema, src)
		members := make([]*Profile, size)
		for i := range members {
			indiv := GenerateRandomProfile(schema, src)
			m := New(schema)
			for _, c := range poi.Categories {
				bv, iv, mv := base.Vector(c), indiv.Vector(c), m.vectors[c]
				for j := range mv {
					mv[j] = clamp01((1-lambda)*bv[j] + lambda*iv[j] + noise*src.NormFloat64())
				}
			}
			members[i] = m
		}
		g, err := NewGroup(schema, members)
		if err != nil {
			return nil, err
		}
		if g.Uniformity() > UniformThreshold {
			return g, nil
		}
	}
	return nil, fmt.Errorf("profile: could not reach uniformity > %v", UniformThreshold)
}

// GenerateNonUniformGroup builds a group whose uniformity is below
// NonUniformThreshold. Dense random [0,1] vectors have expected pairwise
// cosine ≈ 0.75 (all components non-negative), so diversity requires
// sparsity: each member prefers a small random subset of types per
// category and is indifferent (zero) to the rest, giving near-disjoint
// supports and near-orthogonal profiles.
func GenerateNonUniformGroup(schema *poi.Schema, size int, src *rng.Source) (*Group, error) {
	if size < 2 {
		return nil, fmt.Errorf("profile: non-uniform group needs at least 2 members")
	}
	for attempt := 0; attempt < 16; attempt++ {
		members := make([]*Profile, size)
		for i := range members {
			m := New(schema)
			for _, c := range poi.Categories {
				v := m.vectors[c]
				dim := len(v)
				if dim == 0 {
					continue
				}
				// 1 active type for tight vocabularies, up to 2 for wider.
				active := 1
				if dim >= 6 && src.Bool(0.4) {
					active = 2
				}
				perm := src.Perm(dim)
				for a := 0; a < active && a < dim; a++ {
					v[perm[a]] = src.Range(0.5, 1.0)
				}
			}
			members[i] = m
		}
		g, err := NewGroup(schema, members)
		if err != nil {
			return nil, err
		}
		if g.Uniformity() < NonUniformThreshold {
			return g, nil
		}
	}
	return nil, fmt.Errorf("profile: could not reach uniformity < %v", NonUniformThreshold)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
