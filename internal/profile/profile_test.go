package profile

import (
	"math"
	"testing"
	"testing/quick"

	"grouptravel/internal/poi"
	"grouptravel/internal/rng"
	"grouptravel/internal/vec"
)

func testSchema() *poi.Schema {
	return poi.NewSchema(
		[]string{"hotel", "hostel", "motel", "resort", "apartment", "guesthouse", "residencehall", "campsite"},
		[]string{"tram", "train", "metro", "bus", "car", "bike", "taxi", "ferry"},
		[]string{"t0", "t1", "t2", "t3", "t4", "t5"},
		[]string{"t0", "t1", "t2", "t3", "t4", "t5"},
	)
}

func TestNewProfileZero(t *testing.T) {
	s := testSchema()
	p := New(s)
	for _, c := range poi.Categories {
		v := p.Vector(c)
		if len(v) != s.Dim(c) {
			t.Fatalf("dim mismatch for %s", c)
		}
		if v.Sum() != 0 {
			t.Fatalf("new profile not zero for %s", c)
		}
	}
}

func TestSetVectorValidates(t *testing.T) {
	s := testSchema()
	p := New(s)
	if err := p.SetVector(poi.Rest, vec.Vector{0.1, 0.2, 0.3, 0, 0, 0.4}); err != nil {
		t.Fatalf("valid vector rejected: %v", err)
	}
	if err := p.SetVector(poi.Rest, vec.Vector{1.5, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("out-of-range vector accepted")
	}
}

func TestSetVectorCopies(t *testing.T) {
	s := testSchema()
	p := New(s)
	v := vec.Vector{0.5, 0, 0, 0, 0, 0}
	_ = p.SetVector(poi.Rest, v)
	v[0] = 0.9
	if p.Vector(poi.Rest)[0] != 0.5 {
		t.Fatal("SetVector retained caller's slice")
	}
}

func TestFromRatingsNormalization(t *testing.T) {
	s := testSchema()
	// The paper's §2.3 family example: ratings 4,5,3,1 normalize by sum.
	ratings := map[poi.Category][]float64{
		poi.Attr: {4, 5, 3, 1, 0, 0},
	}
	p, err := FromRatings(s, ratings)
	if err != nil {
		t.Fatal(err)
	}
	v := p.Vector(poi.Attr)
	if math.Abs(v[0]-4.0/13) > 1e-12 || math.Abs(v[1]-5.0/13) > 1e-12 {
		t.Fatalf("normalized ratings = %v", v)
	}
	if math.Abs(v.Sum()-1) > 1e-12 {
		t.Fatalf("ratings do not sum to 1: %v", v.Sum())
	}
}

func TestFromRatingsErrors(t *testing.T) {
	s := testSchema()
	if _, err := FromRatings(s, map[poi.Category][]float64{poi.Attr: {6, 0, 0, 0, 0, 0}}); err == nil {
		t.Fatal("rating > 5 accepted")
	}
	if _, err := FromRatings(s, map[poi.Category][]float64{poi.Attr: {1, 2}}); err == nil {
		t.Fatal("wrong dimension accepted")
	}
	if _, err := FromRatings(s, map[poi.Category][]float64{poi.Category(9): {1}}); err == nil {
		t.Fatal("invalid category accepted")
	}
	// All-zero ratings are legal (a user with no stated preferences).
	p, err := FromRatings(s, map[poi.Category][]float64{poi.Rest: {0, 0, 0, 0, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Vector(poi.Rest).Sum() != 0 {
		t.Fatal("all-zero ratings produced non-zero profile")
	}
}

func TestCloneIndependent(t *testing.T) {
	s := testSchema()
	p := GenerateRandomProfile(s, rng.New(1))
	q := p.Clone()
	q.Vector(poi.Rest)[0] = 0.123456
	if p.Vector(poi.Rest)[0] == 0.123456 {
		t.Fatal("Clone shares storage")
	}
}

func TestConcatLayout(t *testing.T) {
	s := testSchema()
	p := New(s)
	_ = p.SetVector(poi.Acco, vec.Vector{1, 0, 0, 0, 0, 0, 0, 0})
	_ = p.SetVector(poi.Attr, vec.Vector{0, 0, 0, 0, 0, 1})
	c := p.Concat()
	wantLen := 8 + 8 + 6 + 6
	if len(c) != wantLen {
		t.Fatalf("concat len = %d, want %d", len(c), wantLen)
	}
	if c[0] != 1 || c[wantLen-1] != 1 {
		t.Fatalf("concat order wrong: %v", c)
	}
}

func TestNewGroupValidation(t *testing.T) {
	s := testSchema()
	if _, err := NewGroup(s, nil); err == nil {
		t.Fatal("empty group accepted")
	}
	if _, err := NewGroup(nil, []*Profile{New(s)}); err == nil {
		t.Fatal("nil schema accepted")
	}
	// Member from a different (smaller) schema must be rejected.
	tiny := poi.NewSchema([]string{"a"}, []string{"b"}, []string{"c"}, []string{"d"})
	if _, err := NewGroup(s, []*Profile{New(tiny)}); err == nil {
		t.Fatal("schema-mismatched member accepted")
	}
}

func TestUniformitySingleMember(t *testing.T) {
	s := testSchema()
	g, _ := NewGroup(s, []*Profile{GenerateRandomProfile(s, rng.New(2))})
	if g.Uniformity() != 1 {
		t.Fatalf("single-member uniformity = %v", g.Uniformity())
	}
}

func TestUniformityIdenticalMembers(t *testing.T) {
	s := testSchema()
	p := GenerateRandomProfile(s, rng.New(3))
	g, _ := NewGroup(s, []*Profile{p, p.Clone(), p.Clone()})
	if u := g.Uniformity(); math.Abs(u-1) > 1e-9 {
		t.Fatalf("identical members uniformity = %v", u)
	}
}

func TestUniformityOrthogonalMembers(t *testing.T) {
	s := testSchema()
	a, b := New(s), New(s)
	_ = a.SetVector(poi.Rest, vec.Vector{1, 0, 0, 0, 0, 0})
	_ = b.SetVector(poi.Rest, vec.Vector{0, 1, 0, 0, 0, 0})
	g, _ := NewGroup(s, []*Profile{a, b})
	if u := g.Uniformity(); u != 0 {
		t.Fatalf("orthogonal members uniformity = %v", u)
	}
}

func TestGenerateUniformGroupBand(t *testing.T) {
	s := testSchema()
	src := rng.New(5)
	for _, class := range SizeClasses {
		g, err := GenerateUniformGroup(s, class.Size(), src.Split(class.String()))
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		if g.Size() != class.Size() {
			t.Fatalf("%s: size %d", class, g.Size())
		}
		if u := g.Uniformity(); u <= UniformThreshold {
			t.Fatalf("%s: uniformity %v not above %v", class, u, UniformThreshold)
		}
	}
}

func TestGenerateNonUniformGroupBand(t *testing.T) {
	s := testSchema()
	src := rng.New(6)
	for _, class := range SizeClasses {
		g, err := GenerateNonUniformGroup(s, class.Size(), src.Split(class.String()))
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		if u := g.Uniformity(); u >= NonUniformThreshold {
			t.Fatalf("%s: uniformity %v not below %v", class, u, NonUniformThreshold)
		}
	}
}

func TestGenerateNonUniformRejectsTinyGroups(t *testing.T) {
	s := testSchema()
	if _, err := GenerateNonUniformGroup(s, 1, rng.New(7)); err == nil {
		t.Fatal("size-1 non-uniform group accepted")
	}
}

func TestMedianUserIsMostCentral(t *testing.T) {
	s := testSchema()
	// Three like-minded members plus one outlier: the median user must be
	// one of the like-minded ones.
	base := GenerateRandomProfile(s, rng.New(8))
	src := rng.New(9)
	members := []*Profile{base, base.Clone(), base.Clone()}
	outlier := New(s)
	for _, c := range poi.Categories {
		v := outlier.Vector(c)
		v[src.Intn(len(v))] = 1
	}
	members = append(members, outlier)
	g, _ := NewGroup(s, members)
	if m := g.MedianUser(); m == 3 {
		t.Fatal("outlier selected as median user")
	}
}

func TestMedianUserDeterministicTies(t *testing.T) {
	s := testSchema()
	p := GenerateRandomProfile(s, rng.New(10))
	g, _ := NewGroup(s, []*Profile{p, p.Clone(), p.Clone()})
	if m := g.MedianUser(); m != 0 {
		t.Fatalf("tie did not break to index 0: %d", m)
	}
}

func TestSizeClasses(t *testing.T) {
	if Small.Size() != 5 || Medium.Size() != 10 || Large.Size() != 100 {
		t.Fatal("size classes do not match the paper (5/10/100)")
	}
	if Small.String() != "small" || Large.String() != "large" {
		t.Fatal("size class labels wrong")
	}
}

func TestRandomProfileInRangeQuick(t *testing.T) {
	s := testSchema()
	src := rng.New(11)
	f := func(_ uint8) bool {
		p := GenerateRandomProfile(s, src)
		for _, c := range poi.Categories {
			if !p.Vector(c).InUnitRange() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratedGroupsAreIndependent(t *testing.T) {
	// Two groups from split sources must differ — the experiment relies on
	// 100 independent groups per cell.
	s := testSchema()
	root := rng.New(12)
	g1, _ := GenerateUniformGroup(s, 5, root.Split("g1"))
	g2, _ := GenerateUniformGroup(s, 5, root.Split("g2"))
	if vec.Equal(g1.Members[0].Concat(), g2.Members[0].Concat(), 1e-12) {
		t.Fatal("independent groups share a member profile")
	}
}
