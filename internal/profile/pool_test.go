package profile

import (
	"testing"

	"grouptravel/internal/rng"
)

func TestFormGroupUniformFromMixedPool(t *testing.T) {
	s := testSchema()
	src := rng.New(1)
	// A pool with clusters of similar users: several base profiles, each
	// with perturbation copies — like a real participant pool.
	var pool []*Profile
	for b := 0; b < 6; b++ {
		g, err := GenerateUniformGroup(s, 8, src.Split("cluster"))
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, g.Members...)
	}
	g, err := FormGroup(s, pool, 5, UniformBand, src)
	if err != nil {
		t.Fatalf("FormGroup uniform: %v", err)
	}
	if u := g.Uniformity(); u <= UniformThreshold {
		t.Fatalf("uniformity %v below band", u)
	}
	if g.Size() != 5 {
		t.Fatalf("size %d", g.Size())
	}
}

func TestFormGroupNonUniformFromSparsePool(t *testing.T) {
	s := testSchema()
	src := rng.New(2)
	// Sparse users with near-disjoint tastes.
	var pool []*Profile
	for i := 0; i < 10; i++ {
		g, err := GenerateNonUniformGroup(s, 5, src.Split("sparse"))
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, g.Members...)
	}
	g, err := FormGroup(s, pool, 7, NonUniformBand, src)
	if err != nil {
		t.Fatalf("FormGroup non-uniform: %v", err)
	}
	if u := g.Uniformity(); u >= NonUniformThreshold {
		t.Fatalf("uniformity %v above band", u)
	}
}

func TestFormGroupImpossibleBand(t *testing.T) {
	s := testSchema()
	src := rng.New(3)
	// A pool of clones cannot produce a non-uniform group.
	base := GenerateRandomProfile(s, src)
	pool := []*Profile{base}
	for i := 0; i < 9; i++ {
		pool = append(pool, base.Clone())
	}
	if _, err := FormGroup(s, pool, 5, NonUniformBand, src); err == nil {
		t.Fatal("clone pool produced a non-uniform group")
	}
}

func TestFormGroupValidation(t *testing.T) {
	s := testSchema()
	src := rng.New(4)
	pool := GeneratePool(s, 4, src)
	if _, err := FormGroup(s, pool, 0, UniformBand, src); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := FormGroup(s, pool, 10, UniformBand, src); err == nil {
		t.Fatal("size beyond pool accepted")
	}
	if _, err := FormGroup(s, pool, 2, Band{Min: 0.9, Max: 0.1}, src); err == nil {
		t.Fatal("inverted band accepted")
	}
	if _, err := FormGroup(s, pool, 2, Band{Min: -1, Max: 2}, src); err == nil {
		t.Fatal("out-of-range band accepted")
	}
}

func TestFormGroupMembersComeFromPool(t *testing.T) {
	s := testSchema()
	src := rng.New(5)
	var pool []*Profile
	for b := 0; b < 4; b++ {
		g, err := GenerateUniformGroup(s, 6, src.Split("c"))
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, g.Members...)
	}
	g, err := FormGroup(s, pool, 4, UniformBand, src)
	if err != nil {
		t.Fatal(err)
	}
	inPool := map[*Profile]bool{}
	for _, p := range pool {
		inPool[p] = true
	}
	seen := map[*Profile]bool{}
	for _, m := range g.Members {
		if !inPool[m] {
			t.Fatal("member not from the pool")
		}
		if seen[m] {
			t.Fatal("member selected twice")
		}
		seen[m] = true
	}
}

func TestGeneratePool(t *testing.T) {
	s := testSchema()
	pool := GeneratePool(s, 25, rng.New(6))
	if len(pool) != 25 {
		t.Fatalf("pool size %d", len(pool))
	}
	// Profiles are independent draws, not shared pointers.
	if pool[0] == pool[1] {
		t.Fatal("pool shares profile pointers")
	}
}
