package geo

import (
	"math"
	"sort"
)

// GridIndex is a uniform spatial grid over a bounding rectangle, providing
// approximate nearest-neighbor and range queries over point IDs. GroupTravel
// uses it for the ADD and REPLACE customization operators (§3.3), which must
// surface "the closest items to CI satisfying the user filter", and for
// candidate pruning during CI construction.
type GridIndex struct {
	rect   Rect
	cols   int
	rows   int
	cellW  float64   // degrees lon per cell
	cellH  float64   // degrees lat per cell
	cells  [][]int32 // cells[row*cols+col] = ids
	points []Point   // id -> point
}

// NewGridIndex builds an index over the points with roughly cellsPerSide
// cells along the longer rectangle side. IDs are the slice indices.
func NewGridIndex(points []Point, cellsPerSide int) *GridIndex {
	if cellsPerSide < 1 {
		cellsPerSide = 1
	}
	g := &GridIndex{points: points}
	if len(points) == 0 {
		g.rect = Rect{}
		g.cols, g.rows = 1, 1
		g.cells = make([][]int32, 1)
		return g
	}
	g.rect = BoundingRect(points)
	// Degenerate extents (all points on a line) still need positive cells.
	w := math.Max(g.rect.Width, 1e-9)
	h := math.Max(g.rect.Height, 1e-9)
	if w >= h {
		g.cols = cellsPerSide
		g.rows = maxInt(1, int(float64(cellsPerSide)*h/w))
	} else {
		g.rows = cellsPerSide
		g.cols = maxInt(1, int(float64(cellsPerSide)*w/h))
	}
	g.cellW = w / float64(g.cols)
	g.cellH = h / float64(g.rows)
	g.cells = make([][]int32, g.cols*g.rows)
	for id, p := range points {
		c := g.cellOf(p)
		g.cells[c] = append(g.cells[c], int32(id))
	}
	return g
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (g *GridIndex) cellOf(p Point) int {
	col := int((p.Lon - g.rect.Lon) / g.cellW)
	row := int((g.rect.Lat - p.Lat) / g.cellH)
	col = clampInt(col, 0, g.cols-1)
	row = clampInt(row, 0, g.rows-1)
	return row*g.cols + col
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// InRect returns the IDs of all points inside r, in ascending ID order.
func (g *GridIndex) InRect(r Rect) []int32 {
	var out []int32
	for _, cell := range g.candidateCells(r) {
		for _, id := range g.cells[cell] {
			if r.Contains(g.points[id]) {
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (g *GridIndex) candidateCells(r Rect) []int {
	if len(g.points) == 0 {
		return nil
	}
	minCol := clampInt(int((r.Lon-g.rect.Lon)/g.cellW), 0, g.cols-1)
	maxCol := clampInt(int((r.Lon+r.Width-g.rect.Lon)/g.cellW), 0, g.cols-1)
	minRow := clampInt(int((g.rect.Lat-r.Lat)/g.cellH), 0, g.rows-1)
	maxRow := clampInt(int((g.rect.Lat-(r.Lat-r.Height))/g.cellH), 0, g.rows-1)
	var cells []int
	for row := minRow; row <= maxRow; row++ {
		for col := minCol; col <= maxCol; col++ {
			cells = append(cells, row*g.cols+col)
		}
	}
	return cells
}

// Nearest returns up to k point IDs nearest to q (equirectangular),
// optionally filtered by accept (nil accepts everything). Results are
// ordered by increasing distance and are exact: the ring-by-ring search
// stops only once no unvisited cell can contain a closer point. The
// paper's REPLACE operator relies on exactness ("the system recommends ...
// the closest POI j in terms of geographic distance", §3.3).
func (g *GridIndex) Nearest(q Point, k int, accept func(id int32) bool) []int32 {
	if k <= 0 || len(g.points) == 0 {
		return nil
	}
	type cand struct {
		id int32
		d  float64
	}
	var cands []cand
	qCol := clampInt(int((q.Lon-g.rect.Lon)/g.cellW), 0, g.cols-1)
	qRow := clampInt(int((g.rect.Lat-q.Lat)/g.cellH), 0, g.rows-1)
	maxRing := maxInt(g.cols, g.rows)

	// Conservative lower bound for the distance (km) from q to any cell in
	// ring s: q sits somewhere in its own cell, so a ring-s cell is at
	// least (s−1) cell-widths away along the tighter axis.
	midLat := g.rect.Lat - g.rect.Height/2
	cellWkm := g.cellW * kmPerDegLon(midLat)
	cellHkm := g.cellH * kmPerDegLatGrid
	minCellKm := math.Min(cellWkm, cellHkm)

	kthDist := func() float64 {
		if len(cands) < k {
			return math.Inf(1)
		}
		// Small k: a selection pass is cheaper than keeping a heap.
		ds := make([]float64, len(cands))
		for i, c := range cands {
			ds[i] = c.d
		}
		sort.Float64s(ds)
		return ds[k-1]
	}

	for ring := 0; ring <= maxRing; ring++ {
		for row := qRow - ring; row <= qRow+ring; row++ {
			if row < 0 || row >= g.rows {
				continue
			}
			for col := qCol - ring; col <= qCol+ring; col++ {
				if col < 0 || col >= g.cols {
					continue
				}
				// Only the ring boundary: interior was visited earlier.
				if ring > 0 && row != qRow-ring && row != qRow+ring &&
					col != qCol-ring && col != qCol+ring {
					continue
				}
				for _, id := range g.cells[row*g.cols+col] {
					if accept != nil && !accept(id) {
						continue
					}
					cands = append(cands, cand{id, Equirectangular(q, g.points[id])})
				}
			}
		}
		// Stop once the next ring provably cannot improve the kth best.
		if len(cands) >= k && kthDist() <= float64(ring)*minCellKm {
			break
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]int32, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

// kmPerDegLatGrid is the km length of one degree of latitude.
const kmPerDegLatGrid = 110.574

// kmPerDegLon returns the km length of one degree of longitude at the
// given latitude.
func kmPerDegLon(lat float64) float64 {
	return 111.320 * math.Cos(lat*math.Pi/180)
}

// Len returns the number of indexed points.
func (g *GridIndex) Len() int { return len(g.points) }

// Bounds returns the index bounding rectangle.
func (g *GridIndex) Bounds() Rect { return g.rect }
