package geo

import (
	"sort"
	"testing"

	"grouptravel/internal/rng"
)

func parisCloud(n int, seed int64) []Point {
	src := rng.New(seed)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{Lat: src.Range(48.80, 48.92), Lon: src.Range(2.25, 2.42)}
	}
	return pts
}

func TestGridInRectMatchesBruteForce(t *testing.T) {
	pts := parisCloud(500, 10)
	g := NewGridIndex(pts, 16)
	r := Rect{Lat: 48.89, Lon: 2.30, Width: 0.06, Height: 0.05}
	got := g.InRect(r)
	var want []int32
	for id, p := range pts {
		if r.Contains(p) {
			want = append(want, int32(id))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("InRect returned %d ids, brute force %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("InRect mismatch at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestGridNearestMatchesBruteForce(t *testing.T) {
	pts := parisCloud(400, 11)
	g := NewGridIndex(pts, 12)
	q := Point{Lat: 48.86, Lon: 2.34}
	const k = 10
	got := g.Nearest(q, k, nil)
	if len(got) != k {
		t.Fatalf("Nearest returned %d ids, want %d", len(got), k)
	}
	// Brute force.
	type cand struct {
		id int32
		d  float64
	}
	all := make([]cand, len(pts))
	for i, p := range pts {
		all[i] = cand{int32(i), Equirectangular(q, p)}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	// The search is exact: every returned id must be within the true kth
	// distance (ties may swap ids at identical distances).
	for _, id := range got {
		if d := Equirectangular(q, pts[id]); d > all[k-1].d+1e-12 {
			t.Fatalf("Nearest returned id %d at %v km, kth true distance %v", id, d, all[k-1].d)
		}
	}
	// Ordering must be non-decreasing.
	for i := 1; i < len(got); i++ {
		if Equirectangular(q, pts[got[i-1]]) > Equirectangular(q, pts[got[i]])+1e-12 {
			t.Fatal("Nearest results not sorted by distance")
		}
	}
}

func TestGridNearestFilter(t *testing.T) {
	pts := parisCloud(300, 12)
	g := NewGridIndex(pts, 10)
	q := Point{Lat: 48.86, Lon: 2.34}
	got := g.Nearest(q, 5, func(id int32) bool { return id%2 == 0 })
	if len(got) == 0 {
		t.Fatal("filtered Nearest returned nothing")
	}
	for _, id := range got {
		if id%2 != 0 {
			t.Fatalf("filter violated: id %d", id)
		}
	}
}

func TestGridEmpty(t *testing.T) {
	g := NewGridIndex(nil, 8)
	if got := g.Nearest(Point{}, 3, nil); got != nil {
		t.Fatalf("Nearest on empty index = %v", got)
	}
	if got := g.InRect(Rect{Lat: 1, Lon: 0, Width: 1, Height: 1}); got != nil {
		t.Fatalf("InRect on empty index = %v", got)
	}
	if g.Len() != 0 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func TestGridSinglePoint(t *testing.T) {
	pts := []Point{{Lat: 48.86, Lon: 2.34}}
	g := NewGridIndex(pts, 8)
	got := g.Nearest(Point{Lat: 48.87, Lon: 2.35}, 3, nil)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("single-point Nearest = %v", got)
	}
}

func TestGridDegenerateLine(t *testing.T) {
	// All points share a latitude; grid must still build and answer queries.
	pts := make([]Point, 50)
	for i := range pts {
		pts[i] = Point{Lat: 48.86, Lon: 2.25 + float64(i)*0.003}
	}
	g := NewGridIndex(pts, 10)
	got := g.Nearest(Point{Lat: 48.86, Lon: 2.25}, 1, nil)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("degenerate-line Nearest = %v", got)
	}
}

// TestGridNearestExactnessProperty fuzzes grid resolutions, point clouds
// and queries, checking the exactness guarantee (REPLACE depends on it)
// against brute force every time.
func TestGridNearestExactnessProperty(t *testing.T) {
	src := rng.New(99)
	for trial := 0; trial < 120; trial++ {
		n := 5 + src.Intn(200)
		cells := 1 + src.Intn(40)
		k := 1 + src.Intn(8)
		pts := make([]Point, n)
		// Mix of clustered and uniform clouds, sometimes degenerate.
		mode := src.Intn(3)
		for i := range pts {
			switch mode {
			case 0: // uniform
				pts[i] = Point{Lat: src.Range(48.8, 48.92), Lon: src.Range(2.25, 2.42)}
			case 1: // tight cluster
				pts[i] = Point{Lat: 48.86 + 0.001*src.NormFloat64(), Lon: 2.34 + 0.001*src.NormFloat64()}
			default: // line
				pts[i] = Point{Lat: 48.86, Lon: 2.25 + 0.17*src.Float64()}
			}
		}
		g := NewGridIndex(pts, cells)
		q := Point{Lat: src.Range(48.79, 48.93), Lon: src.Range(2.24, 2.43)}
		got := g.Nearest(q, k, nil)

		// Brute-force kth distance.
		ds := make([]float64, n)
		for i, p := range pts {
			ds[i] = Equirectangular(q, p)
		}
		sortFloats(ds)
		kth := ds[minInt(k, n)-1]
		if len(got) != minInt(k, n) {
			t.Fatalf("trial %d: returned %d of %d", trial, len(got), minInt(k, n))
		}
		for _, id := range got {
			if d := Equirectangular(q, pts[id]); d > kth+1e-12 {
				t.Fatalf("trial %d (n=%d cells=%d k=%d mode=%d): returned %v km, kth true %v",
					trial, n, cells, k, mode, d, kth)
			}
		}
	}
}

func sortFloats(xs []float64) {
	sort.Float64s(xs)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestGridNearestKLargerThanN(t *testing.T) {
	pts := parisCloud(7, 13)
	g := NewGridIndex(pts, 4)
	got := g.Nearest(Point{Lat: 48.86, Lon: 2.3}, 100, nil)
	if len(got) != 7 {
		t.Fatalf("Nearest with k>n returned %d ids, want 7", len(got))
	}
}
