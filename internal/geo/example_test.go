package geo_test

import (
	"fmt"

	"grouptravel/internal/geo"
)

// The §3.2 approximation: equirectangular distances agree with Haversine
// to well under 0.1% inside a city.
func ExampleEquirectangular() {
	louvre := geo.Point{Lat: 48.8606, Lon: 2.3376}
	eiffel := geo.Point{Lat: 48.8584, Lon: 2.2945}
	h := geo.Haversine(louvre, eiffel)
	e := geo.Equirectangular(louvre, eiffel)
	fmt.Printf("haversine %.3f km, equirectangular %.3f km, error %.5f%%\n",
		h, e, 100*(e-h)/h)
	// Output:
	// haversine 3.163 km, equirectangular 3.163 km, error 0.00000%
}

// Rectangles back the GENERATE(RECTANGLE(x, y, w, h)) operator (§3.3).
func ExampleRect_Contains() {
	rect, _ := geo.NewRect(geo.Point{Lat: 48.90, Lon: 2.30}, 0.10, 0.05)
	inside := geo.Point{Lat: 48.87, Lon: 2.35}
	outside := geo.Point{Lat: 48.80, Lon: 2.35}
	fmt.Println(rect.Contains(inside), rect.Contains(outside))
	// Output:
	// true false
}
