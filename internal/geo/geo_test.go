package geo

import (
	"math"
	"testing"
	"testing/quick"

	"grouptravel/internal/rng"
)

// Paris landmarks used across the tests (same city as the paper's Table 1).
var (
	louvre    = Point{Lat: 48.8606, Lon: 2.3376}
	eiffel    = Point{Lat: 48.8584, Lon: 2.2945}
	montmart  = Point{Lat: 48.8867, Lon: 2.3431}
	notreDame = Point{Lat: 48.8530, Lon: 2.3499}
)

func TestHaversineKnownDistance(t *testing.T) {
	// Louvre to Eiffel Tower is about 3.15 km.
	d := Haversine(louvre, eiffel)
	if d < 3.0 || d > 3.3 {
		t.Fatalf("Louvre-Eiffel haversine = %v km, want ~3.15", d)
	}
	// Paris to New York is about 5837 km.
	ny := Point{Lat: 40.7128, Lon: -74.0060}
	d = Haversine(louvre, ny)
	if d < 5780 || d > 5900 {
		t.Fatalf("Paris-NY haversine = %v km, want ~5837", d)
	}
}

func TestHaversineZero(t *testing.T) {
	if d := Haversine(louvre, louvre); d != 0 {
		t.Fatalf("distance to self = %v, want 0", d)
	}
}

func TestHaversineSymmetry(t *testing.T) {
	if d1, d2 := Haversine(louvre, montmart), Haversine(montmart, louvre); math.Abs(d1-d2) > 1e-12 {
		t.Fatalf("haversine asymmetric: %v vs %v", d1, d2)
	}
}

// TestEquirectangularPrecision verifies the paper's §3.2 claim that the
// equirectangular approximation loses only ~0.1% precision for in-city
// distances.
func TestEquirectangularPrecision(t *testing.T) {
	src := rng.New(1)
	worst := 0.0
	for i := 0; i < 5000; i++ {
		a := Point{Lat: 48.80 + 0.12*src.Float64(), Lon: 2.25 + 0.17*src.Float64()}
		b := Point{Lat: 48.80 + 0.12*src.Float64(), Lon: 2.25 + 0.17*src.Float64()}
		h := Haversine(a, b)
		if h < 0.05 {
			continue // relative error meaningless at near-zero distances
		}
		e := Equirectangular(a, b)
		rel := math.Abs(e-h) / h
		if rel > worst {
			worst = rel
		}
	}
	if worst > 0.001 {
		t.Fatalf("equirectangular in-city relative error %v exceeds 0.1%%", worst)
	}
}

func TestEquirectangularPropertyQuick(t *testing.T) {
	src := rng.New(2)
	f := func(_ uint8) bool {
		a := Point{Lat: src.Range(40, 50), Lon: src.Range(-5, 10)}
		b := Point{Lat: a.Lat + src.Range(-0.1, 0.1), Lon: a.Lon + src.Range(-0.1, 0.1)}
		h, e := Haversine(a, b), Equirectangular(a, b)
		// Non-negative, symmetric, and close for short hops.
		if e < 0 || h < 0 {
			return false
		}
		if math.Abs(Equirectangular(b, a)-e) > 1e-12 {
			return false
		}
		return math.Abs(e-h) <= 0.002*h+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequalitySampled(t *testing.T) {
	src := rng.New(3)
	for i := 0; i < 2000; i++ {
		p := func() Point {
			return Point{Lat: src.Range(48.8, 48.92), Lon: src.Range(2.25, 2.42)}
		}
		a, b, c := p(), p(), p()
		if Equirectangular(a, c) > Equirectangular(a, b)+Equirectangular(b, c)+1e-9 {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestCentroid(t *testing.T) {
	pts := []Point{{Lat: 0, Lon: 0}, {Lat: 2, Lon: 4}}
	c := Centroid(pts, nil)
	if c.Lat != 1 || c.Lon != 2 {
		t.Fatalf("centroid = %v, want (1,2)", c)
	}
	// Weighted: all mass on second point.
	c = Centroid(pts, []float64{0, 5})
	if c.Lat != 2 || c.Lon != 4 {
		t.Fatalf("weighted centroid = %v, want (2,4)", c)
	}
	// Zero weights fall back to the mean.
	c = Centroid(pts, []float64{0, 0})
	if c.Lat != 1 || c.Lon != 2 {
		t.Fatalf("zero-weight centroid = %v, want (1,2)", c)
	}
}

func TestCentroidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Centroid of empty set did not panic")
		}
	}()
	Centroid(nil, nil)
}

func TestWeberPointBetween(t *testing.T) {
	pts := []Point{louvre, eiffel, montmart, notreDame}
	w := WeberPoint(pts, nil, 50)
	r := BoundingRect(pts)
	if !r.Contains(w) {
		t.Fatalf("Weber point %v outside bounding rect %v", w, r)
	}
	// The Weber point must not be farther (in total distance) than the mean.
	tot := func(m Point) float64 {
		s := 0.0
		for _, p := range pts {
			s += Equirectangular(m, p)
		}
		return s
	}
	if tot(w) > tot(Centroid(pts, nil))+1e-9 {
		t.Fatalf("Weber point total distance %v exceeds centroid's %v", tot(w), tot(Centroid(pts, nil)))
	}
}

func TestRectContains(t *testing.T) {
	r, err := NewRect(Point{Lat: 48.90, Lon: 2.30}, 0.10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{Lat: 48.88, Lon: 2.35}, true},
		{Point{Lat: 48.90, Lon: 2.30}, true},  // corner inclusive
		{Point{Lat: 48.84, Lon: 2.35}, false}, // below
		{Point{Lat: 48.88, Lon: 2.45}, false}, // east
		{Point{Lat: 48.95, Lon: 2.35}, false}, // north
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNewRectRejectsNegative(t *testing.T) {
	if _, err := NewRect(Point{}, -1, 0); err == nil {
		t.Fatal("negative width accepted")
	}
	if _, err := NewRect(Point{}, 0, -0.5); err == nil {
		t.Fatal("negative height accepted")
	}
}

func TestBoundingRectCoversAll(t *testing.T) {
	src := rng.New(4)
	pts := make([]Point, 200)
	for i := range pts {
		pts[i] = Point{Lat: src.Range(48.8, 48.92), Lon: src.Range(2.25, 2.42)}
	}
	r := BoundingRect(pts)
	for _, p := range pts {
		if !r.Contains(p) {
			t.Fatalf("bounding rect %v misses %v", r, p)
		}
	}
}

func TestRectCenter(t *testing.T) {
	r := Rect{Lat: 10, Lon: 20, Width: 4, Height: 2}
	c := r.Center()
	if c.Lat != 9 || c.Lon != 22 {
		t.Fatalf("center = %v, want (9,22)", c)
	}
}

func TestNormalizerBounds(t *testing.T) {
	src := rng.New(5)
	pts := make([]Point, 300)
	for i := range pts {
		pts[i] = Point{Lat: src.Range(48.8, 48.92), Lon: src.Range(2.25, 2.42)}
	}
	n := NormalizerFor(pts)
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j += 7 {
			d := n.Distance(pts[i], pts[j])
			if d < 0 || d > 1 {
				t.Fatalf("normalized distance %v out of [0,1]", d)
			}
		}
	}
}

func TestNormalizerDegenerate(t *testing.T) {
	n := NewNormalizer(0)
	if d := n.Distance(louvre, eiffel); d != 0 {
		t.Fatalf("degenerate normalizer returned %v, want 0", d)
	}
}

func TestMaxPairwiseVsApprox(t *testing.T) {
	src := rng.New(6)
	pts := make([]Point, 120)
	for i := range pts {
		pts[i] = Point{Lat: src.Range(48.8, 48.92), Lon: src.Range(2.25, 2.42)}
	}
	exact := MaxPairwiseDistance(pts)
	approx := ApproxMaxPairwiseDistance(pts)
	if approx < exact {
		t.Fatalf("approx max %v below exact max %v", approx, exact)
	}
	if approx > exact*math.Sqrt2*1.01 {
		t.Fatalf("approx max %v exceeds sqrt(2) bound over %v", approx, exact)
	}
}

func TestPointValid(t *testing.T) {
	if !louvre.Valid() {
		t.Fatal("Louvre coordinates reported invalid")
	}
	bad := []Point{{Lat: 91, Lon: 0}, {Lat: 0, Lon: -181}, {Lat: math.NaN(), Lon: 0}}
	for _, p := range bad {
		if p.Valid() {
			t.Fatalf("%v reported valid", p)
		}
	}
}

func TestMidpoint(t *testing.T) {
	m := Midpoint(Point{Lat: 0, Lon: 0}, Point{Lat: 2, Lon: 6})
	if m.Lat != 1 || m.Lon != 3 {
		t.Fatalf("midpoint = %v", m)
	}
}
