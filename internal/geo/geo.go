// Package geo implements the geographic substrate of GroupTravel:
// points, distance functions, bounding rectangles and a grid index.
//
// The paper (§3.2) measures distances between POIs with "an approximation of
// Haversine calculations on a spherical space ... with Equirectangular
// calculations on a Euclidean space to gain performance", reporting a 30x
// speedup at 0.1% precision loss for intra-city distances. Both functions
// are implemented here so the claim can be benchmarked
// (BenchmarkHaversine / BenchmarkEquirectangular in the repository root).
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used by both distance functions.
const EarthRadiusKm = 6371.0088

// Point is a geographic coordinate in degrees, matching the
// ⟨latitude, longitude⟩ pairs of the TourPedia POIs (Table 1 of the paper).
type Point struct {
	Lat float64 // degrees, [-90, 90]
	Lon float64 // degrees, [-180, 180]
}

// String renders the point like the paper's Table 1 ("⟨48.8679, 2.3256⟩").
func (p Point) String() string {
	return fmt.Sprintf("(%.4f, %.4f)", p.Lat, p.Lon)
}

// Valid reports whether the point is within the legal coordinate ranges.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

func deg2rad(d float64) float64 { return d * math.Pi / 180 }

// Haversine returns the great-circle distance between two points in km.
// This is the exact spherical formula the paper approximates.
func Haversine(a, b Point) float64 {
	la1, lo1 := deg2rad(a.Lat), deg2rad(a.Lon)
	la2, lo2 := deg2rad(b.Lat), deg2rad(b.Lon)
	dLat := la2 - la1
	dLon := lo2 - lo1
	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(la1)*math.Cos(la2)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// Equirectangular returns the equirectangular-projection approximation of
// the distance between two points in km. For short distances (within a
// city) it agrees with Haversine to well under 0.1% while avoiding most of
// the trigonometry (§3.2 of the paper).
func Equirectangular(a, b Point) float64 {
	la1, lo1 := deg2rad(a.Lat), deg2rad(a.Lon)
	la2, lo2 := deg2rad(b.Lat), deg2rad(b.Lon)
	x := (lo2 - lo1) * math.Cos((la1+la2)/2)
	y := la2 - la1
	return EarthRadiusKm * math.Sqrt(x*x+y*y)
}

// DistanceFunc measures the distance in km between two points.
type DistanceFunc func(a, b Point) float64

// Midpoint returns the coordinate-wise midpoint of two points. For in-city
// distances the flat-earth midpoint is indistinguishable from the spherical
// one.
func Midpoint(a, b Point) Point {
	return Point{Lat: (a.Lat + b.Lat) / 2, Lon: (a.Lon + b.Lon) / 2}
}

// Centroid returns the coordinate-wise mean of the points, optionally
// weighted. If weights is nil, all points weigh equally. It panics if
// points is empty or lengths mismatch.
func Centroid(points []Point, weights []float64) Point {
	if len(points) == 0 {
		panic("geo: Centroid of empty point set")
	}
	if weights != nil && len(weights) != len(points) {
		panic("geo: Centroid weights length mismatch")
	}
	var lat, lon, wsum float64
	for i, p := range points {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		lat += w * p.Lat
		lon += w * p.Lon
		wsum += w
	}
	if wsum == 0 {
		// All-zero weights: fall back to the unweighted mean.
		return Centroid(points, nil)
	}
	return Point{Lat: lat / wsum, Lon: lon / wsum}
}

// WeberPoint computes the weighted geometric median of the points using
// Weiszfeld iterations, seeded at the weighted centroid. The paper's
// centroid update (Eq. 1 maximizes Σ w(1−‖x−μ‖/Dmax)) is a Weber problem;
// the classic FCM weighted mean is only its squared-distance cousin.
func WeberPoint(points []Point, weights []float64, iters int) Point {
	mu := Centroid(points, weights)
	const eps = 1e-9
	for it := 0; it < iters; it++ {
		var num Point
		var den float64
		for i, p := range points {
			w := 1.0
			if weights != nil {
				w = weights[i]
			}
			d := Equirectangular(mu, p)
			if d < eps {
				d = eps
			}
			c := w / d
			num.Lat += c * p.Lat
			num.Lon += c * p.Lon
			den += c
		}
		if den == 0 {
			return mu
		}
		next := Point{Lat: num.Lat / den, Lon: num.Lon / den}
		if Equirectangular(mu, next) < 1e-7 {
			return next
		}
		mu = next
	}
	return mu
}

// Rect is an axis-aligned geographic rectangle identified, as in the
// paper's GENERATE(RECTANGLE(x, y, w, h)) operator (§3.3), by its
// upper-left corner (max latitude, min longitude) plus width (degrees of
// longitude) and height (degrees of latitude).
type Rect struct {
	Lat    float64 // upper edge (northernmost latitude)
	Lon    float64 // left edge (westernmost longitude)
	Width  float64 // extent east, degrees
	Height float64 // extent south, degrees
}

// NewRect builds a Rect from an upper-left corner and extents. Width and
// height must be non-negative.
func NewRect(upperLeft Point, width, height float64) (Rect, error) {
	if width < 0 || height < 0 {
		return Rect{}, fmt.Errorf("geo: negative rectangle extent (w=%v h=%v)", width, height)
	}
	return Rect{Lat: upperLeft.Lat, Lon: upperLeft.Lon, Width: width, Height: height}, nil
}

// BoundingRect returns the minimal Rect covering all points.
// It panics on an empty slice.
func BoundingRect(points []Point) Rect {
	if len(points) == 0 {
		panic("geo: BoundingRect of empty point set")
	}
	minLat, maxLat := points[0].Lat, points[0].Lat
	minLon, maxLon := points[0].Lon, points[0].Lon
	for _, p := range points[1:] {
		minLat = math.Min(minLat, p.Lat)
		maxLat = math.Max(maxLat, p.Lat)
		minLon = math.Min(minLon, p.Lon)
		maxLon = math.Max(maxLon, p.Lon)
	}
	return Rect{Lat: maxLat, Lon: minLon, Width: maxLon - minLon, Height: maxLat - minLat}
}

// Contains reports whether p lies inside the rectangle (inclusive edges).
func (r Rect) Contains(p Point) bool {
	return p.Lat <= r.Lat && p.Lat >= r.Lat-r.Height &&
		p.Lon >= r.Lon && p.Lon <= r.Lon+r.Width
}

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{Lat: r.Lat - r.Height/2, Lon: r.Lon + r.Width/2}
}

// Diagonal returns the rectangle's diagonal length in km
// (equirectangular), a convenient scale for normalizing in-rectangle
// distances.
func (r Rect) Diagonal() float64 {
	ul := Point{Lat: r.Lat, Lon: r.Lon}
	lr := Point{Lat: r.Lat - r.Height, Lon: r.Lon + r.Width}
	return Equirectangular(ul, lr)
}

// MaxPairwiseDistance returns the largest equirectangular distance between
// any two points. The paper divides all distances by this value to obtain
// the normalized Euclidean distance of Eq. 1. O(n²); use
// ApproxMaxPairwiseDistance for large n.
func MaxPairwiseDistance(points []Point) float64 {
	max := 0.0
	for i := range points {
		for j := i + 1; j < len(points); j++ {
			if d := Equirectangular(points[i], points[j]); d > max {
				max = d
			}
		}
	}
	return max
}

// ApproxMaxPairwiseDistance returns the diagonal of the bounding rectangle,
// an upper bound within √2 of the true maximum, in O(n).
func ApproxMaxPairwiseDistance(points []Point) float64 {
	if len(points) == 0 {
		return 0
	}
	return BoundingRect(points).Diagonal()
}

// Normalizer rescales raw km distances into [0,1] by a fixed maximum, as
// required by the normalized Euclidean distance of Eq. 1.
type Normalizer struct {
	max float64
}

// NewNormalizer creates a Normalizer for the given maximum distance. A
// non-positive max yields a normalizer that maps everything to 0 (all
// points coincide).
func NewNormalizer(maxDistance float64) Normalizer {
	return Normalizer{max: maxDistance}
}

// NormalizerFor derives a Normalizer from a point set using the bounding
// rectangle diagonal.
func NormalizerFor(points []Point) Normalizer {
	return NewNormalizer(ApproxMaxPairwiseDistance(points))
}

// Distance returns the normalized equirectangular distance in [0,1]
// (values beyond the configured max clamp to 1).
func (n Normalizer) Distance(a, b Point) float64 {
	if n.max <= 0 {
		return 0
	}
	d := Equirectangular(a, b) / n.max
	if d > 1 {
		return 1
	}
	return d
}

// Max returns the normalization constant in km.
func (n Normalizer) Max() float64 { return n.max }

// DistancesTo fills dst[j] with Distance(p, centroids[j]) for every
// centroid. It is the batched form of Distance for the FCM membership
// loop: p's degree→radian conversion is hoisted out of the loop and the
// slices are pre-clipped so the inner loop runs without bounds checks or
// function-call overhead. Each dst[j] is bit-identical to the scalar
// Distance call — the arithmetic is the same, merely hoisted.
func (n Normalizer) DistancesTo(dst []float64, p Point, centroids []Point) {
	if len(dst) != len(centroids) {
		panic(fmt.Sprintf("geo: DistancesTo length mismatch %d vs %d", len(dst), len(centroids)))
	}
	if n.max <= 0 {
		for j := range dst {
			dst[j] = 0
		}
		return
	}
	dst = dst[:len(centroids)]
	la1, lo1 := deg2rad(p.Lat), deg2rad(p.Lon)
	for j, c := range centroids {
		la2, lo2 := deg2rad(c.Lat), deg2rad(c.Lon)
		x := (lo2 - lo1) * math.Cos((la1+la2)/2)
		y := la2 - la1
		d := EarthRadiusKm * math.Sqrt(x*x+y*y) / n.max
		if d > 1 {
			d = 1
		}
		dst[j] = d
	}
}
