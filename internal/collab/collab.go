// Package collab implements the collaboration models the paper sketches
// as future work (§6): structured ways for several travelers to customize
// one travel package together.
//
//   - Star model: "a designated traveler moderates all requests from
//     others in the same group" — members submit operation requests, a
//     moderator policy approves or rejects each, approved requests are
//     applied in submission order.
//   - Sequential model: "a TP is customized in a pipeline fashion" — each
//     member takes a turn and sees the package as the previous member left
//     it.
//   - Hybrid model: "different primitives are requested in parallel by
//     different travelers" — requests arrive concurrently; conflicting
//     requests on the same POI are resolved by majority vote before
//     anything is applied.
//
// All models execute through an interact.Session, so every applied
// operation lands in the session log and feeds profile refinement exactly
// like directly-performed operations.
package collab

import (
	"fmt"
	"sort"

	"grouptravel/internal/geo"
	"grouptravel/internal/interact"
	"grouptravel/internal/profile"
	"grouptravel/internal/vec"
)

// Request is one member's proposed customization operation.
type Request struct {
	Member  int
	Kind    interact.OpKind
	CIIndex int
	POIID   int      // target POI for REMOVE / ADD / REPLACE
	Rect    geo.Rect // area for GENERATE
}

// String renders the request compactly.
func (r Request) String() string {
	if r.Kind == interact.OpGenerate {
		return fmt.Sprintf("member %d: GENERATE(%.4f,%.4f,%.4f,%.4f)", r.Member, r.Rect.Lat, r.Rect.Lon, r.Rect.Width, r.Rect.Height)
	}
	return fmt.Sprintf("member %d: %s(poi %d, CI %d)", r.Member, r.Kind, r.POIID, r.CIIndex)
}

// Decision is the fate of a request.
type Decision int

const (
	// Applied: the request was approved and executed.
	Applied Decision = iota
	// Rejected: a moderator policy or conflict resolution refused it.
	Rejected
	// Failed: approved but the operation errored (e.g. the target POI was
	// already gone by the time the request ran).
	Failed
)

// String returns the decision label.
func (d Decision) String() string {
	switch d {
	case Applied:
		return "applied"
	case Rejected:
		return "rejected"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("decision(%d)", int(d))
	}
}

// Outcome records what happened to one request.
type Outcome struct {
	Request  Request
	Decision Decision
	Reason   string // why it was rejected / failed; empty when applied
}

// apply executes one approved request against the session.
func apply(sess *interact.Session, r Request) error {
	switch r.Kind {
	case interact.OpRemove:
		return sess.Remove(r.Member, r.CIIndex, r.POIID)
	case interact.OpAdd:
		return sess.Add(r.Member, r.CIIndex, r.POIID)
	case interact.OpReplace:
		_, err := sess.Replace(r.Member, r.CIIndex, r.POIID)
		return err
	case interact.OpGenerate:
		_, err := sess.Generate(r.Member, r.Rect)
		return err
	default:
		return fmt.Errorf("collab: unknown operation kind %v", r.Kind)
	}
}

// Policy decides whether the moderator approves a request in the star
// model. Returning false rejects with the given reason.
type Policy func(sess *interact.Session, r Request) (ok bool, reason string)

// ApproveAll is the permissive policy: every structurally possible request
// goes through.
func ApproveAll(*interact.Session, Request) (bool, string) { return true, "" }

// ModeratorTaste builds a policy reflecting a moderator's own profile:
// ADDs of items the moderator dislikes (cosine below dislike) are vetoed,
// REMOVEs/REPLACEs of items the moderator loves (cosine above protect) are
// vetoed, GENERATE is always allowed.
func ModeratorTaste(moderator *profile.Profile, dislike, protect float64) Policy {
	return func(sess *interact.Session, r Request) (bool, string) {
		tp := sess.Package()
		switch r.Kind {
		case interact.OpAdd:
			// Look the POI up through any CI's collection-backed candidates:
			// the session's city owns the POI; we locate it by scanning the
			// current package plus the add target id via session helpers is
			// not exposed, so consult the package query level: the cosine
			// check needs the item vector, fetched below.
			p := sess.LookupPOI(r.POIID)
			if p == nil {
				return false, fmt.Sprintf("unknown POI %d", r.POIID)
			}
			if vec.Cosine(p.Vector, moderator.Vector(p.Cat)) < dislike {
				return false, "moderator dislikes the added POI"
			}
		case interact.OpRemove, interact.OpReplace:
			if r.CIIndex < 0 || r.CIIndex >= len(tp.CIs) {
				return false, "no such CI"
			}
			for _, it := range tp.CIs[r.CIIndex].Items {
				if it.ID == r.POIID && vec.Cosine(it.Vector, moderator.Vector(it.Cat)) > protect {
					return false, "moderator protects this POI"
				}
			}
		}
		return true, ""
	}
}

// RunStar executes the star model: the moderator policy screens every
// request; approved requests apply in submission order.
func RunStar(sess *interact.Session, policy Policy, reqs []Request) ([]Outcome, error) {
	if sess == nil || policy == nil {
		return nil, fmt.Errorf("collab: nil session or policy")
	}
	out := make([]Outcome, 0, len(reqs))
	for _, r := range reqs {
		ok, reason := policy(sess, r)
		if !ok {
			out = append(out, Outcome{Request: r, Decision: Rejected, Reason: reason})
			continue
		}
		if err := apply(sess, r); err != nil {
			out = append(out, Outcome{Request: r, Decision: Failed, Reason: err.Error()})
			continue
		}
		out = append(out, Outcome{Request: r, Decision: Applied})
	}
	return out, nil
}

// RunSequential executes the pipeline model: members take turns in the
// given order, each applying their own requests against the package as the
// previous member left it. Requests from members not in the order are
// rejected.
func RunSequential(sess *interact.Session, order []int, reqs []Request) ([]Outcome, error) {
	if sess == nil {
		return nil, fmt.Errorf("collab: nil session")
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("collab: empty turn order")
	}
	inOrder := make(map[int]int, len(order)) // member -> turn position
	for pos, m := range order {
		if _, dup := inOrder[m]; dup {
			return nil, fmt.Errorf("collab: member %d appears twice in the turn order", m)
		}
		inOrder[m] = pos
	}
	byMember := make(map[int][]Request)
	var out []Outcome
	for _, r := range reqs {
		if _, ok := inOrder[r.Member]; !ok {
			out = append(out, Outcome{Request: r, Decision: Rejected, Reason: "member has no turn"})
			continue
		}
		byMember[r.Member] = append(byMember[r.Member], r)
	}
	for _, m := range order {
		for _, r := range byMember[m] {
			if err := apply(sess, r); err != nil {
				out = append(out, Outcome{Request: r, Decision: Failed, Reason: err.Error()})
				continue
			}
			out = append(out, Outcome{Request: r, Decision: Applied})
		}
	}
	return out, nil
}

// RunHybrid executes the parallel model: all requests are screened for
// conflicts first — two requests conflict when they target the same POI in
// the same CI with different effects (e.g. one member REMOVEs what another
// REPLACEs, or an ADD races a REMOVE of the same POI). Each conflict group
// is resolved by majority vote over the requested kinds (ties reject the
// whole group); survivors apply in submission order.
func RunHybrid(sess *interact.Session, reqs []Request) ([]Outcome, error) {
	if sess == nil {
		return nil, fmt.Errorf("collab: nil session")
	}
	type key struct{ ci, poi int }
	groups := make(map[key][]int) // indices into reqs
	for i, r := range reqs {
		if r.Kind == interact.OpGenerate {
			continue // GENERATE never conflicts: it only appends
		}
		groups[key{r.CIIndex, r.POIID}] = append(groups[key{r.CIIndex, r.POIID}], i)
	}
	rejected := make(map[int]string)
	for _, idxs := range groups {
		kinds := make(map[interact.OpKind]int)
		for _, i := range idxs {
			kinds[reqs[i].Kind]++
		}
		if len(kinds) <= 1 {
			// Same intent from several members: apply the first, reject
			// duplicates (applying twice would fail anyway).
			for _, i := range idxs[1:] {
				rejected[i] = "duplicate of an earlier identical request"
			}
			continue
		}
		// Conflicting intents: majority kind wins; ties reject everything.
		type kc struct {
			kind  interact.OpKind
			count int
		}
		var tally []kc
		for k, n := range kinds {
			tally = append(tally, kc{k, n})
		}
		sort.Slice(tally, func(a, b int) bool {
			if tally[a].count != tally[b].count {
				return tally[a].count > tally[b].count
			}
			return tally[a].kind < tally[b].kind
		})
		if tally[0].count == tally[1].count {
			for _, i := range idxs {
				rejected[i] = "conflicting requests tied"
			}
			continue
		}
		winner := tally[0].kind
		kept := false
		for _, i := range idxs {
			if reqs[i].Kind != winner {
				rejected[i] = fmt.Sprintf("lost majority vote to %v", winner)
			} else if kept {
				rejected[i] = "duplicate of an earlier identical request"
			} else {
				kept = true
			}
		}
	}
	out := make([]Outcome, 0, len(reqs))
	for i, r := range reqs {
		if reason, bad := rejected[i]; bad {
			out = append(out, Outcome{Request: r, Decision: Rejected, Reason: reason})
			continue
		}
		if err := apply(sess, r); err != nil {
			out = append(out, Outcome{Request: r, Decision: Failed, Reason: err.Error()})
			continue
		}
		out = append(out, Outcome{Request: r, Decision: Applied})
	}
	return out, nil
}

// AppliedCount tallies applied outcomes.
func AppliedCount(outcomes []Outcome) int {
	n := 0
	for _, o := range outcomes {
		if o.Decision == Applied {
			n++
		}
	}
	return n
}
