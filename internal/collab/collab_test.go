package collab

import (
	"strings"
	"testing"

	"grouptravel/internal/consensus"
	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
	"grouptravel/internal/geo"
	"grouptravel/internal/interact"
	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/query"
	"grouptravel/internal/rng"
	"grouptravel/internal/vec"
)

var (
	collabCity   *dataset.City
	collabEngine *core.Engine
)

func setup(t *testing.T) (*dataset.City, *core.Engine) {
	t.Helper()
	if collabCity == nil {
		c, err := dataset.Generate(dataset.TestSpec("CollabCity", 41))
		if err != nil {
			t.Fatal(err)
		}
		e, err := core.NewEngine(c)
		if err != nil {
			t.Fatal(err)
		}
		collabCity, collabEngine = c, e
	}
	return collabCity, collabEngine
}

func newSession(t *testing.T, seed int64) (*interact.Session, *profile.Group) {
	t.Helper()
	city, e := setup(t)
	g, err := profile.GenerateUniformGroup(city.Schema, 4, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	gp, err := consensus.GroupProfile(g, consensus.PairwiseDis)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := e.Build(gp, query.Default(), core.DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := interact.NewSession(city, tp)
	if err != nil {
		t.Fatal(err)
	}
	return sess, g
}

func TestStarApproveAll(t *testing.T) {
	sess, _ := newSession(t, 1)
	target := sess.Package().CIs[0].Items[0]
	reqs := []Request{
		{Member: 1, Kind: interact.OpRemove, CIIndex: 0, POIID: target.ID},
	}
	out, err := RunStar(sess, ApproveAll, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Decision != Applied {
		t.Fatalf("outcome = %+v", out[0])
	}
	if sess.Package().CIs[0].Contains(target.ID) {
		t.Fatal("approved removal not applied")
	}
	if len(sess.Log()) != 1 {
		t.Fatal("applied op missing from session log")
	}
}

func TestStarModeratorVetoesProtectedRemove(t *testing.T) {
	sess, _ := newSession(t, 2)
	// Build a moderator who loves exactly the first item of CI 0.
	city, _ := setup(t)
	target := sess.Package().CIs[0].Items[0]
	mod := profile.New(city.Schema)
	v := vec.New(city.Schema.Dim(target.Cat))
	for j, x := range target.Vector {
		if x > 0.99 {
			x = 0.99
		}
		v[j] = x
	}
	if err := mod.SetVector(target.Cat, v); err != nil {
		t.Fatal(err)
	}
	policy := ModeratorTaste(mod, 0.1, 0.8)
	out, err := RunStar(sess, policy, []Request{
		{Member: 1, Kind: interact.OpRemove, CIIndex: 0, POIID: target.ID},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Decision != Rejected {
		t.Fatalf("moderator did not protect the loved POI: %+v", out[0])
	}
	if !sess.Package().CIs[0].Contains(target.ID) {
		t.Fatal("rejected removal was applied anyway")
	}
}

func TestStarModeratorVetoesDislikedAdd(t *testing.T) {
	sess, _ := newSession(t, 3)
	city, _ := setup(t)
	// A moderator with zero interest in everything dislikes every ADD.
	mod := profile.New(city.Schema)
	policy := ModeratorTaste(mod, 0.1, 0.9)
	cand := city.POIs.ByCategory(poi.Rest)[0]
	out, err := RunStar(sess, policy, []Request{
		{Member: 2, Kind: interact.OpAdd, CIIndex: 0, POIID: cand.ID},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Decision != Rejected {
		t.Fatalf("disliked ADD not vetoed: %+v", out[0])
	}
	// Unknown POI is also rejected, not failed.
	out, _ = RunStar(sess, policy, []Request{
		{Member: 2, Kind: interact.OpAdd, CIIndex: 0, POIID: -99},
	})
	if out[0].Decision != Rejected {
		t.Fatalf("unknown POI outcome: %+v", out[0])
	}
}

func TestStarFailedOperation(t *testing.T) {
	sess, _ := newSession(t, 4)
	target := sess.Package().CIs[0].Items[0]
	// Two identical removals: the second must fail (already gone).
	out, err := RunStar(sess, ApproveAll, []Request{
		{Member: 0, Kind: interact.OpRemove, CIIndex: 0, POIID: target.ID},
		{Member: 1, Kind: interact.OpRemove, CIIndex: 0, POIID: target.ID},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Decision != Applied || out[1].Decision != Failed {
		t.Fatalf("outcomes = %+v", out)
	}
}

func TestSequentialOrderRespected(t *testing.T) {
	sess, _ := newSession(t, 5)
	c0 := sess.Package().CIs[0]
	a, b := c0.Items[0], c0.Items[1]
	// Member 2 goes first (removes a), member 0 second (removes b);
	// requests arrive interleaved.
	reqs := []Request{
		{Member: 0, Kind: interact.OpRemove, CIIndex: 0, POIID: b.ID},
		{Member: 2, Kind: interact.OpRemove, CIIndex: 0, POIID: a.ID},
	}
	out, err := RunSequential(sess, []int{2, 0}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if AppliedCount(out) != 2 {
		t.Fatalf("outcomes = %+v", out)
	}
	// The session log must show member 2's op first.
	log := sess.Log()
	if log[0].Member != 2 || log[1].Member != 0 {
		t.Fatalf("pipeline order violated: %+v", log)
	}
}

func TestSequentialRejectsOutsiders(t *testing.T) {
	sess, _ := newSession(t, 6)
	target := sess.Package().CIs[0].Items[0]
	out, err := RunSequential(sess, []int{0}, []Request{
		{Member: 3, Kind: interact.OpRemove, CIIndex: 0, POIID: target.ID},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Decision != Rejected || !strings.Contains(out[0].Reason, "turn") {
		t.Fatalf("outsider not rejected: %+v", out[0])
	}
}

func TestSequentialValidation(t *testing.T) {
	sess, _ := newSession(t, 7)
	if _, err := RunSequential(sess, nil, nil); err == nil {
		t.Fatal("empty order accepted")
	}
	if _, err := RunSequential(sess, []int{1, 1}, nil); err == nil {
		t.Fatal("duplicate turn accepted")
	}
	if _, err := RunSequential(nil, []int{0}, nil); err == nil {
		t.Fatal("nil session accepted")
	}
}

func TestHybridMajorityWins(t *testing.T) {
	sess, _ := newSession(t, 8)
	target := sess.Package().CIs[0].Items[0]
	// Two members want the POI removed, one wants it replaced: REMOVE wins.
	reqs := []Request{
		{Member: 0, Kind: interact.OpRemove, CIIndex: 0, POIID: target.ID},
		{Member: 1, Kind: interact.OpReplace, CIIndex: 0, POIID: target.ID},
		{Member: 2, Kind: interact.OpRemove, CIIndex: 0, POIID: target.ID},
	}
	out, err := RunHybrid(sess, reqs)
	if err != nil {
		t.Fatal(err)
	}
	applied, rejected := 0, 0
	for _, o := range out {
		switch o.Decision {
		case Applied:
			applied++
			if o.Request.Kind != interact.OpRemove {
				t.Fatalf("wrong winner applied: %+v", o)
			}
		case Rejected:
			rejected++
		}
	}
	if applied != 1 || rejected != 2 {
		t.Fatalf("applied=%d rejected=%d, want 1/2: %+v", applied, rejected, out)
	}
	if sess.Package().CIs[0].Contains(target.ID) {
		t.Fatal("majority REMOVE not executed")
	}
}

func TestHybridTieRejectsAll(t *testing.T) {
	sess, _ := newSession(t, 9)
	target := sess.Package().CIs[0].Items[0]
	reqs := []Request{
		{Member: 0, Kind: interact.OpRemove, CIIndex: 0, POIID: target.ID},
		{Member: 1, Kind: interact.OpReplace, CIIndex: 0, POIID: target.ID},
	}
	out, err := RunHybrid(sess, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range out {
		if o.Decision != Rejected {
			t.Fatalf("tie not rejected: %+v", o)
		}
	}
	if !sess.Package().CIs[0].Contains(target.ID) {
		t.Fatal("tied conflict mutated the package")
	}
}

func TestHybridDuplicatesCollapse(t *testing.T) {
	sess, _ := newSession(t, 10)
	target := sess.Package().CIs[0].Items[0]
	reqs := []Request{
		{Member: 0, Kind: interact.OpRemove, CIIndex: 0, POIID: target.ID},
		{Member: 1, Kind: interact.OpRemove, CIIndex: 0, POIID: target.ID},
	}
	out, err := RunHybrid(sess, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if AppliedCount(out) != 1 {
		t.Fatalf("duplicates not collapsed: %+v", out)
	}
}

func TestHybridGenerateNeverConflicts(t *testing.T) {
	sess, _ := newSession(t, 11)
	city, _ := setup(t)
	bounds := city.POIs.Bounds()
	rect := geo.Rect{
		Lat: bounds.Lat - bounds.Height*0.2, Lon: bounds.Lon + bounds.Width*0.2,
		Width: bounds.Width * 0.6, Height: bounds.Height * 0.6,
	}
	before := len(sess.Package().CIs)
	reqs := []Request{
		{Member: 0, Kind: interact.OpGenerate, Rect: rect},
		{Member: 1, Kind: interact.OpGenerate, Rect: rect},
	}
	out, err := RunHybrid(sess, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if AppliedCount(out) != 2 {
		t.Fatalf("parallel GENERATEs did not both apply: %+v", out)
	}
	if len(sess.Package().CIs) != before+2 {
		t.Fatal("generated CIs missing")
	}
}

func TestCollabFeedsRefinement(t *testing.T) {
	// Operations applied through any collaboration model must flow into
	// profile refinement like direct ones.
	sess, g := newSession(t, 12)
	target := sess.Package().CIs[0].Items[0]
	_, err := RunStar(sess, ApproveAll, []Request{
		{Member: 1, Kind: interact.OpRemove, CIIndex: 0, POIID: target.ID},
	})
	if err != nil {
		t.Fatal(err)
	}
	gp, err := consensus.GroupProfile(g, consensus.PairwiseDis)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := interact.RefineBatch(gp, sess.Log())
	if err != nil {
		t.Fatal(err)
	}
	if vec.Equal(refined.Vector(target.Cat), gp.Vector(target.Cat), 0) {
		t.Fatal("collab operation did not refine the profile")
	}
}

func TestDecisionAndRequestStrings(t *testing.T) {
	if Applied.String() != "applied" || Rejected.String() != "rejected" || Failed.String() != "failed" {
		t.Fatal("decision labels wrong")
	}
	r := Request{Member: 3, Kind: interact.OpRemove, CIIndex: 1, POIID: 42}
	if !strings.Contains(r.String(), "REMOVE") {
		t.Fatalf("request string = %q", r.String())
	}
	gen := Request{Member: 0, Kind: interact.OpGenerate, Rect: geo.Rect{Lat: 1, Lon: 2, Width: 3, Height: 4}}
	if !strings.Contains(gen.String(), "GENERATE") {
		t.Fatalf("generate string = %q", gen.String())
	}
}

func TestRunStarValidation(t *testing.T) {
	sess, _ := newSession(t, 13)
	if _, err := RunStar(nil, ApproveAll, nil); err == nil {
		t.Fatal("nil session accepted")
	}
	if _, err := RunStar(sess, nil, nil); err == nil {
		t.Fatal("nil policy accepted")
	}
	if _, err := RunHybrid(nil, nil); err == nil {
		t.Fatal("nil session accepted by hybrid")
	}
}
