package stats_test

import (
	"fmt"

	"grouptravel/internal/stats"
)

// The §4.4.1 sample-size computation (Eq. 5): the paper's exact numbers.
func ExampleSampleSize() {
	n, err := stats.SampleSize(200000, 0.03, stats.Z95, 0.5)
	if err != nil {
		panic(err)
	}
	fmt.Println(n)
	// Output:
	// 1062
}

// One-way ANOVA in the paper's §4.3.1 reporting style.
func ExampleANOVA() {
	groups := [][]float64{
		{1, 2, 3},
		{2, 3, 4},
		{5, 6, 7},
	}
	res, err := stats.ANOVA(groups)
	if err != nil {
		panic(err)
	}
	fmt.Printf("F(%d,%d) = %.0f, significant at 0.05: %v\n",
		res.DF1, res.DF2, res.F, res.Significant(0.05))
	// Output:
	// F(2,6) = 13, significant at 0.05: true
}

// Pearson correlation as used for the §4.3.3 size trends.
func ExamplePearson() {
	sizes := []float64{5, 10, 100}
	personalization := []float64{0.95, 0.94, 0.72}
	r, _ := stats.Pearson(sizes, personalization)
	fmt.Printf("%.2f\n", r)
	// Output:
	// -1.00
}
