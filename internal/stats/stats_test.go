package stats

import (
	"math"
	"testing"
	"testing/quick"

	"grouptravel/internal/rng"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("Variance = %v", v)
	}
}

func TestMeanPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Mean(nil)
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPos := []float64{2, 4, 6, 8, 10}
	yNeg := []float64{10, 8, 6, 4, 2}
	if r, _ := Pearson(x, yPos); math.Abs(r-1) > 1e-12 {
		t.Fatalf("positive correlation = %v", r)
	}
	if r, _ := Pearson(x, yNeg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("negative correlation = %v", r)
	}
}

func TestPearsonIndependent(t *testing.T) {
	src := rng.New(1)
	n := 20000
	x, y := make([]float64, n), make([]float64, n)
	for i := range x {
		x[i], y[i] = src.Float64(), src.Float64()
	}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.03 {
		t.Fatalf("independent series correlate at %v", r)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if r, err := Pearson([]float64{1, 1, 1}, []float64{2, 3, 4}); err != nil || r != 0 {
		t.Fatalf("constant series: r=%v err=%v", r, err)
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestPearsonBoundsQuick(t *testing.T) {
	src := rng.New(2)
	f := func(_ uint8) bool {
		n := 3 + src.Intn(30)
		x, y := make([]float64, n), make([]float64, n)
		for i := range x {
			x[i], y[i] = src.Range(-10, 10), src.Range(-10, 10)
		}
		r, err := Pearson(x, y)
		return err == nil && r >= -1-1e-12 && r <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRegIncBetaKnownValues checks I_x(a,b) against closed forms:
// I_x(1,1) = x, I_x(1,b) = 1-(1-x)^b, I_x(a,1) = x^a, and symmetry
// I_x(a,b) = 1 - I_{1-x}(b,a).
func TestRegIncBetaKnownValues(t *testing.T) {
	for _, x := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-10 {
			t.Fatalf("I_%v(1,1) = %v", x, got)
		}
		if got := RegIncBeta(1, 3, x); math.Abs(got-(1-math.Pow(1-x, 3))) > 1e-10 {
			t.Fatalf("I_%v(1,3) = %v", x, got)
		}
		if got := RegIncBeta(2.5, 1, x); math.Abs(got-math.Pow(x, 2.5)) > 1e-10 {
			t.Fatalf("I_%v(2.5,1) = %v", x, got)
		}
		a, b := 2.3, 4.7
		if d := RegIncBeta(a, b, x) + RegIncBeta(b, a, 1-x) - 1; math.Abs(d) > 1e-10 {
			t.Fatalf("symmetry violated at x=%v: %v", x, d)
		}
	}
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Fatal("boundary values wrong")
	}
}

// TestFSurvivalKnownValues checks the F survival function against standard
// table values: F(1,10) upper 5% point ≈ 4.965, F(3,20) ≈ 3.098.
func TestFSurvivalKnownValues(t *testing.T) {
	cases := []struct {
		f, d1, d2 float64
		want      float64
		tol       float64
	}{
		{4.9646, 1, 10, 0.05, 0.002},
		{3.0984, 3, 20, 0.05, 0.002},
		{1.0, 5, 5, 0.5, 0.01}, // F(d,d) median is 1
	}
	for _, c := range cases {
		if got := FSurvival(c.f, c.d1, c.d2); math.Abs(got-c.want) > c.tol {
			t.Fatalf("FSurvival(%v;%v,%v) = %v, want ~%v", c.f, c.d1, c.d2, got, c.want)
		}
	}
	if FSurvival(0, 3, 10) != 1 || FSurvival(-1, 3, 10) != 1 {
		t.Fatal("non-positive f must give survival 1")
	}
}

func TestFSurvivalMonotone(t *testing.T) {
	prev := 1.0
	for f := 0.1; f < 20; f += 0.5 {
		cur := FSurvival(f, 3, 40)
		if cur > prev+1e-12 {
			t.Fatalf("survival not monotone at f=%v", f)
		}
		prev = cur
	}
}

func TestANOVASeparatedGroups(t *testing.T) {
	// Clearly different group means: p must be tiny.
	g1 := []float64{1.0, 1.1, 0.9, 1.05, 0.95}
	g2 := []float64{5.0, 5.1, 4.9, 5.05, 4.95}
	g3 := []float64{9.0, 9.1, 8.9, 9.05, 8.95}
	res, err := ANOVA([][]float64{g1, g2, g3})
	if err != nil {
		t.Fatal(err)
	}
	if res.DF1 != 2 || res.DF2 != 12 {
		t.Fatalf("df = (%d,%d)", res.DF1, res.DF2)
	}
	if !res.Significant(0.05) {
		t.Fatalf("separated groups not significant: %v", res)
	}
	if res.F < 100 {
		t.Fatalf("F suspiciously small: %v", res.F)
	}
}

func TestANOVAIdenticalDistributions(t *testing.T) {
	src := rng.New(3)
	mk := func() []float64 {
		xs := make([]float64, 40)
		for i := range xs {
			xs[i] = src.NormFloat64()
		}
		return xs
	}
	// Same distribution in all groups: significant results should occur at
	// roughly the alpha rate. One draw must usually be insignificant.
	hits := 0
	for trial := 0; trial < 40; trial++ {
		res, err := ANOVA([][]float64{mk(), mk(), mk()})
		if err != nil {
			t.Fatal(err)
		}
		if res.Significant(0.05) {
			hits++
		}
	}
	if hits > 8 { // 40 trials at alpha=.05 → expect ~2
		t.Fatalf("null ANOVA significant in %d/40 trials", hits)
	}
}

func TestANOVAAgainstHandComputed(t *testing.T) {
	// Hand-computed example: g1={1,2,3}, g2={2,3,4}, g3={5,6,7}.
	// grand=3.6667; SSB=3*(2-3.667)²+3*(3-3.667)²+3*(6-3.667)²=26.0
	// SSW=2+2+2=6; df=(2,6); MSB=13, MSE=1 → F=13.
	res, err := ANOVA([][]float64{{1, 2, 3}, {2, 3, 4}, {5, 6, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.F-13) > 1e-9 {
		t.Fatalf("F = %v, want 13", res.F)
	}
	if !res.Significant(0.05) {
		t.Fatalf("F=13 with df(2,6) must be significant (p=%v)", res.P)
	}
}

func TestANOVAErrors(t *testing.T) {
	if _, err := ANOVA([][]float64{{1, 2}}); err == nil {
		t.Fatal("single group accepted")
	}
	if _, err := ANOVA([][]float64{{1}, {}}); err == nil {
		t.Fatal("empty group accepted")
	}
	if _, err := ANOVA([][]float64{{1}, {2}}); err == nil {
		t.Fatal("no residual degrees of freedom accepted")
	}
}

func TestANOVADegenerateVariance(t *testing.T) {
	// Identical constant groups: F=0, p=1.
	res, err := ANOVA([][]float64{{2, 2}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Fatalf("identical constant groups: p = %v", res.P)
	}
	// Perfectly separated constant groups: p=0.
	res, err = ANOVA([][]float64{{1, 1}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 {
		t.Fatalf("separated constant groups: p = %v", res.P)
	}
}

// TestSampleSizePaperValues reproduces §4.4.1: N=200000, e=3%, 95%
// confidence, p=50% → "at least 1062 participants".
func TestSampleSizePaperValues(t *testing.T) {
	n, err := SampleSize(200000, 0.03, Z95, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1062 {
		t.Fatalf("sample size = %d, want the paper's 1062", n)
	}
}

func TestSampleSizeSmallPopulation(t *testing.T) {
	// Finite-population correction: the sample can never exceed the
	// population by much, and shrinks as N shrinks.
	big, _ := SampleSize(200000, 0.03, Z95, 0.5)
	small, _ := SampleSize(2000, 0.03, Z95, 0.5)
	if small >= big {
		t.Fatalf("FPC failed: n(2000)=%d >= n(200000)=%d", small, big)
	}
}

func TestSampleSizeErrors(t *testing.T) {
	if _, err := SampleSize(0, 0.03, Z95, 0.5); err == nil {
		t.Fatal("population 0 accepted")
	}
	if _, err := SampleSize(1000, 0, Z95, 0.5); err == nil {
		t.Fatal("margin 0 accepted")
	}
	if _, err := SampleSize(1000, 0.03, -1, 0.5); err == nil {
		t.Fatal("negative z accepted")
	}
	if _, err := SampleSize(1000, 0.03, Z95, 1); err == nil {
		t.Fatal("p=1 accepted")
	}
}

func TestANOVAResultString(t *testing.T) {
	r := ANOVAResult{F: 12.345, DF1: 3, DF2: 96, P: 0.001}
	if got := r.String(); got != "F(3,96) = 12.345, p = 0.001" {
		t.Fatalf("String = %q", got)
	}
}
