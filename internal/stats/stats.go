// Package stats implements the statistical machinery the paper's
// evaluation uses: one-way ANOVA with the F-statistic MSB/MSE and
// significance level p = 0.05 (§4.3.1), the Pearson correlation
// coefficient used to report size/cohesiveness trends (§4.3.3), and the
// central-limit-theorem sample-size formula of Eq. 5.
//
// Everything is implemented from scratch on the standard library,
// including the regularized incomplete beta function that backs the
// F-distribution CDF.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// Mean returns the arithmetic mean. It panics on an empty slice (callers
// in this codebase always aggregate non-empty experiment cells).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Mean of empty slice")
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance (divide by n), matching the
// paper's disagreement-variance convention.
func Variance(xs []float64) float64 {
	mu := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return s / float64(len(xs))
}

// Pearson returns the Pearson correlation coefficient between x and y —
// +1 total positive linear correlation, 0 none, −1 total negative
// (§4.3.1). Degenerate inputs (constant series) return 0.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: Pearson length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, errors.New("stats: Pearson needs at least 2 points")
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// ANOVAResult reports a one-way analysis of variance in the paper's
// notation: "F(n, k) = x given p < 0.05" where n and k are the first and
// second degrees of freedom.
type ANOVAResult struct {
	F   float64 // MSB / MSE
	DF1 int     // between-groups degrees of freedom (groups − 1)
	DF2 int     // within-groups degrees of freedom (N − groups)
	P   float64 // right-tail probability of F under H0
}

// Significant reports p < alpha (the paper uses alpha = 0.05).
func (r ANOVAResult) Significant(alpha float64) bool { return r.P < alpha }

// String renders the paper's reporting style.
func (r ANOVAResult) String() string {
	return fmt.Sprintf("F(%d,%d) = %.3f, p = %.4g", r.DF1, r.DF2, r.F, r.P)
}

// ANOVA performs a one-way ANOVA across the given groups of observations.
// At least two groups with two total degrees of freedom are required.
func ANOVA(groups [][]float64) (ANOVAResult, error) {
	k := len(groups)
	if k < 2 {
		return ANOVAResult{}, errors.New("stats: ANOVA needs at least 2 groups")
	}
	n := 0
	grand := 0.0
	for gi, g := range groups {
		if len(g) == 0 {
			return ANOVAResult{}, fmt.Errorf("stats: ANOVA group %d is empty", gi)
		}
		n += len(g)
		for _, x := range g {
			grand += x
		}
	}
	if n <= k {
		return ANOVAResult{}, fmt.Errorf("stats: ANOVA needs more observations (%d) than groups (%d)", n, k)
	}
	grand /= float64(n)

	ssb, ssw := 0.0, 0.0
	for _, g := range groups {
		m := Mean(g)
		d := m - grand
		ssb += float64(len(g)) * d * d
		for _, x := range g {
			ssw += (x - m) * (x - m)
		}
	}
	df1, df2 := k-1, n-k
	msb := ssb / float64(df1)
	mse := ssw / float64(df2)
	res := ANOVAResult{DF1: df1, DF2: df2}
	if mse == 0 {
		// All within-group variance zero: either the groups are identical
		// (F undefined, report p = 1) or perfectly separated (p = 0).
		if ssb == 0 {
			res.F, res.P = 0, 1
			return res, nil
		}
		res.F, res.P = math.Inf(1), 0
		return res, nil
	}
	res.F = msb / mse
	res.P = FSurvival(res.F, float64(df1), float64(df2))
	return res, nil
}

// FSurvival returns P(F > f) for an F(d1, d2) distribution via the
// regularized incomplete beta function:
// P(F > f) = I_{d2/(d2 + d1·f)}(d2/2, d1/2).
func FSurvival(f, d1, d2 float64) float64 {
	if f <= 0 {
		return 1
	}
	x := d2 / (d2 + d1*f)
	return RegIncBeta(d2/2, d1/2, x)
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical-Recipes-style Lentz
// algorithm) with the standard symmetry split for convergence.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	case a <= 0 || b <= 0:
		return math.NaN()
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// SampleSize evaluates Eq. 5 of the paper:
//
//	n = (z²·p(1−p)/e²) / (1 + z²·p(1−p)/(e²·N))
//
// where N is the population size, e the margin of error, zScore the
// standard-normal quantile of the confidence level (1.96 for 95%), and p
// the expected proportion (0.5 when unknown). The result is rounded up
// ("Our sample size rounded up to at least 1062 participants").
func SampleSize(population int, marginOfError, zScore, p float64) (int, error) {
	if population < 1 {
		return 0, fmt.Errorf("stats: population %d", population)
	}
	if marginOfError <= 0 || marginOfError >= 1 {
		return 0, fmt.Errorf("stats: margin of error %v outside (0,1)", marginOfError)
	}
	if zScore <= 0 {
		return 0, fmt.Errorf("stats: z score %v", zScore)
	}
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("stats: proportion %v outside (0,1)", p)
	}
	n0 := zScore * zScore * p * (1 - p) / (marginOfError * marginOfError)
	n := n0 / (1 + n0/float64(population))
	return int(math.Ceil(n)), nil
}

// Z95 is the standard-normal quantile for the paper's 95% confidence
// level.
const Z95 = 1.959963984540054
