package sim

import (
	"fmt"
	"sort"

	"grouptravel/internal/interact"
	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/rng"
	"grouptravel/internal/vec"
)

// CustomizeOptions controls the simulated interaction behaviour of group
// members in the §4.4.4 customization study.
type CustomizeOptions struct {
	// RemoveThreshold: a member removes or replaces an item whose cosine
	// similarity to their own profile falls below this.
	RemoveThreshold float64
	// AddProbability: chance that a member also adds a well-matching
	// nearby POI to a CI they inspected.
	AddProbability float64
	// ReplaceProbability: when an item is disliked, replace it (instead of
	// removing it) with this probability.
	ReplaceProbability float64
	// MaxOpsPerMember caps each member's interactions (real study
	// participants performed a handful of operations each).
	MaxOpsPerMember int
}

// DefaultCustomizeOptions returns behaviour calibrated to a few operations
// per member, like the paper's study sessions.
func DefaultCustomizeOptions() CustomizeOptions {
	return CustomizeOptions{
		RemoveThreshold:    0.35,
		AddProbability:     0.6,
		ReplaceProbability: 0.5,
		MaxOpsPerMember:    4,
	}
}

// SimulateCustomization lets every member of the group interact with the
// session's package according to their own profile: items they dislike get
// removed or replaced, and items matching their taste get added from the
// neighborhood of a CI. The session log then carries the per-member
// implicit feedback that profile refinement consumes (§3.3).
func SimulateCustomization(sess *interact.Session, g *profile.Group, opts CustomizeOptions, src *rng.Source) error {
	if sess == nil || g == nil || src == nil {
		return fmt.Errorf("sim: nil session, group or source")
	}
	if opts.MaxOpsPerMember < 1 {
		return fmt.Errorf("sim: MaxOpsPerMember = %d", opts.MaxOpsPerMember)
	}
	for member, prof := range g.Members {
		if err := customizeAs(sess, member, prof, opts, src.Split(fmt.Sprintf("member-%d", member))); err != nil {
			return err
		}
	}
	return nil
}

// customizeAs performs one member's interactions.
func customizeAs(sess *interact.Session, member int, prof *profile.Profile, opts CustomizeOptions, src *rng.Source) error {
	ops := 0
	tp := sess.Package()
	// Inspect CIs in a random order, as a human browsing a map would.
	order := src.Perm(len(tp.CIs))
	for _, ciIdx := range order {
		if ops >= opts.MaxOpsPerMember {
			break
		}
		if ciIdx >= len(sess.Package().CIs) {
			continue // a previous member deleted this CI
		}
		c := sess.Package().CIs[ciIdx]
		// Find this member's least-liked item in the CI.
		worstID, worstCos := -1, 2.0
		for _, it := range c.Items {
			cos := vec.Cosine(it.Vector, prof.Vector(it.Cat))
			if cos < worstCos {
				worstID, worstCos = it.ID, cos
			}
		}
		if worstID >= 0 && worstCos < opts.RemoveThreshold {
			if src.Bool(opts.ReplaceProbability) {
				if _, err := sess.Replace(member, ciIdx, worstID); err != nil {
					return err
				}
			} else {
				if err := sess.Remove(member, ciIdx, worstID); err != nil {
					return err
				}
			}
			ops++
		}
		if ops >= opts.MaxOpsPerMember {
			break
		}
		if src.Bool(opts.AddProbability) {
			if added, err := addBestMatch(sess, member, ciIdx, prof, src); err != nil {
				return err
			} else if added {
				ops++
			}
		}
	}
	return nil
}

// addBestMatch ADDs the candidate around the CI that best matches the
// member's profile, preferring restaurants and attractions (the tagged
// categories carry the taste signal).
func addBestMatch(sess *interact.Session, member, ciIdx int, prof *profile.Profile, src *rng.Source) (bool, error) {
	cats := []poi.Category{poi.Rest, poi.Attr}
	cat := cats[src.Intn(len(cats))]
	cands, err := sess.AddCandidates(ciIdx, cat, "", 8)
	if err != nil {
		return false, err
	}
	if len(cands) == 0 {
		return false, nil
	}
	sort.Slice(cands, func(i, j int) bool {
		ci := vec.Cosine(cands[i].Vector, prof.Vector(cat))
		cj := vec.Cosine(cands[j].Vector, prof.Vector(cat))
		if ci != cj {
			return ci > cj
		}
		return cands[i].ID < cands[j].ID
	})
	best := cands[0]
	// Only add items the member actually likes.
	if vec.Cosine(best.Vector, prof.Vector(cat)) < 0.4 {
		return false, nil
	}
	if err := sess.Add(member, ciIdx, best.ID); err != nil {
		return false, err
	}
	return true, nil
}
