// Package sim simulates the paper's user study (§4.4).
//
// The original study recruited 3000 crowd workers on Figure-Eight and
// Amazon Mechanical Turk, collected travel profiles, showed each group
// member several travel packages, and gathered 1–5 interest ratings plus
// pairwise preferences. Those workers are not available offline, so this
// package models each participant as a *rater* whose behaviour is driven
// by their travel profile:
//
//   - the rating of a package is a calibrated, noisy function of the mean
//     cosine similarity between the rater's profile and the package's
//     items (the same quantity Eq. 4 personalizes for);
//   - attentive raters notice invalid CIs and mark the package down, so
//     the paper's honeypot filter ("we injected a random TP which included
//     invalid CIs, and discarded input from participants who preferred
//     that TP") removes exactly the careless raters this package plants;
//   - pairwise choices pick the package with higher personal utility,
//     with decision noise.
//
// Because every table in §4.4 reports *relative* satisfaction across
// package variants, a utility-plus-noise rater preserves the orderings the
// paper measures while being fully reproducible.
package sim

import (
	"fmt"
	"sort"

	"grouptravel/internal/core"
	"grouptravel/internal/profile"
	"grouptravel/internal/rng"
	"grouptravel/internal/vec"
)

// Utility returns the mean cosine similarity between a participant's
// profile and the items of a package, in [0,1] — the personal analogue of
// the Eq. 4 personalization term.
func Utility(p *profile.Profile, tp *core.TravelPackage) float64 {
	n := 0
	sum := 0.0
	for _, c := range tp.CIs {
		for _, it := range c.Items {
			sum += vec.Cosine(it.Vector, p.Vector(it.Cat))
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Rater is one simulated study participant.
type Rater struct {
	Profile *profile.Profile
	// Careless raters answer at random and do not notice invalid CIs —
	// the population the honeypot filter is designed to remove.
	Careless bool
}

// Panel is a set of raters drawn from a travel group, with the study's
// noise model.
type Panel struct {
	Raters []Rater
	// RatingNoise is the standard deviation of the Gaussian noise added to
	// the utility before scaling to the 1–5 scale.
	RatingNoise float64
	// ChoiceNoise is the noise on each side of a pairwise comparison.
	ChoiceNoise float64
	// InvalidPenalty is subtracted from an attentive rater's rating when a
	// package contains invalid CIs.
	InvalidPenalty float64

	src *rng.Source
}

// NewPanel builds a panel with one rater per group member; carelessFrac of
// the raters (rounded down, at least 0) are careless.
func NewPanel(g *profile.Group, carelessFrac float64, src *rng.Source) (*Panel, error) {
	if g == nil || src == nil {
		return nil, fmt.Errorf("sim: nil group or source")
	}
	if carelessFrac < 0 || carelessFrac > 1 {
		return nil, fmt.Errorf("sim: careless fraction %v outside [0,1]", carelessFrac)
	}
	p := &Panel{
		RatingNoise:    0.08,
		ChoiceNoise:    0.05,
		InvalidPenalty: 2.0,
		src:            src,
	}
	nCareless := int(carelessFrac * float64(g.Size()))
	for i, m := range g.Members {
		p.Raters = append(p.Raters, Rater{Profile: m, Careless: i < nCareless})
	}
	// Shuffle so carelessness is not correlated with member order.
	p.src.Shuffle(len(p.Raters), func(i, j int) {
		p.Raters[i], p.Raters[j] = p.Raters[j], p.Raters[i]
	})
	return p, nil
}

// Rate returns rater r's 1–5 interest rating for the package ("indicate
// your interest in visiting POIs in the TP ... using a score between 1 and
// 5", §4.4.3).
func (p *Panel) Rate(r Rater, tp *core.TravelPackage) float64 {
	if r.Careless {
		return 1 + 4*p.src.Float64()
	}
	u := Utility(r.Profile, tp) + p.RatingNoise*p.src.NormFloat64()
	rating := 1 + 4*clamp01(u)
	if !tp.Valid() {
		rating -= p.InvalidPenalty
	}
	return clampRange(rating, 1, 5)
}

// Prefer reports whether rater r prefers package a over b in a pairwise
// comparison.
func (p *Panel) Prefer(r Rater, a, b *core.TravelPackage) bool {
	if r.Careless {
		return p.src.Bool(0.5)
	}
	ua := Utility(r.Profile, a) + p.ChoiceNoise*p.src.NormFloat64()
	ub := Utility(r.Profile, b) + p.ChoiceNoise*p.src.NormFloat64()
	if !a.Valid() {
		ua -= 0.5
	}
	if !b.Valid() {
		ub -= 0.5
	}
	return ua > ub
}

// FilterByHoneypot returns the indices of raters whose input survives the
// §4.4.3 filter: a rater is discarded when they rate the honeypot (an
// invalid random package) at least as high as every legitimate package.
func (p *Panel) FilterByHoneypot(honeypot *core.TravelPackage, legit []*core.TravelPackage) []int {
	var keep []int
	for i, r := range p.Raters {
		h := p.Rate(r, honeypot)
		preferred := true
		for _, tp := range legit {
			if p.Rate(r, tp) > h {
				preferred = false
				break
			}
		}
		if !preferred {
			keep = append(keep, i)
		}
	}
	return keep
}

// IndependentEval reports the mean 1–5 rating of each named package over
// the given rater indices (Tables 4 and 6).
func (p *Panel) IndependentEval(tps map[string]*core.TravelPackage, raters []int) map[string]float64 {
	out := make(map[string]float64, len(tps))
	names := make([]string, 0, len(tps))
	for name := range tps {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic rating order → deterministic noise
	for _, name := range names {
		sum := 0.0
		for _, ri := range raters {
			sum += p.Rate(p.Raters[ri], tps[name])
		}
		if len(raters) > 0 {
			out[name] = sum / float64(len(raters))
		}
	}
	return out
}

// ComparativeEval returns the fraction of the given raters preferring a
// over b (Tables 5 and 7 report these percentages of supremacy).
func (p *Panel) ComparativeEval(a, b *core.TravelPackage, raters []int) float64 {
	if len(raters) == 0 {
		return 0
	}
	wins := 0
	for _, ri := range raters {
		if p.Prefer(p.Raters[ri], a, b) {
			wins++
		}
	}
	return float64(wins) / float64(len(raters))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func clampRange(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
