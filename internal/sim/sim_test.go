package sim

import (
	"testing"

	"grouptravel/internal/consensus"
	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
	"grouptravel/internal/interact"
	"grouptravel/internal/profile"
	"grouptravel/internal/query"
	"grouptravel/internal/rng"
)

var (
	simCity   *dataset.City
	simEngine *core.Engine
)

func setup(t *testing.T) (*dataset.City, *core.Engine) {
	t.Helper()
	if simCity == nil {
		c, err := dataset.Generate(dataset.TestSpec("SimCity", 21))
		if err != nil {
			t.Fatal(err)
		}
		e, err := core.NewEngine(c)
		if err != nil {
			t.Fatal(err)
		}
		simCity, simEngine = c, e
	}
	return simCity, simEngine
}

func uniformGroup(t *testing.T, city *dataset.City, size int, seed int64) *profile.Group {
	t.Helper()
	g, err := profile.GenerateUniformGroup(city.Schema, size, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func packagesFor(t *testing.T, g *profile.Group) (pers, plain, random, honeypot *core.TravelPackage) {
	t.Helper()
	_, e := setup(t)
	gp, err := consensus.GroupProfile(g, consensus.PairwiseDis)
	if err != nil {
		t.Fatal(err)
	}
	pers, err = e.Build(gp, query.Default(), core.DefaultParams(5))
	if err != nil {
		t.Fatal(err)
	}
	plain, err = e.Build(nil, query.Default(), core.DefaultParams(5))
	if err != nil {
		t.Fatal(err)
	}
	random, err = e.BuildRandom(query.Default(), 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	honeypot, err = e.BuildHoneypot(query.Default(), 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	return pers, plain, random, honeypot
}

func TestUtilityRange(t *testing.T) {
	city, _ := setup(t)
	g := uniformGroup(t, city, 5, 1)
	pers, _, _, _ := packagesFor(t, g)
	for _, m := range g.Members {
		u := Utility(m, pers)
		if u < 0 || u > 1 {
			t.Fatalf("utility %v outside [0,1]", u)
		}
	}
}

func TestUtilityEmptyPackage(t *testing.T) {
	city, _ := setup(t)
	g := uniformGroup(t, city, 5, 2)
	if u := Utility(g.Members[0], &core.TravelPackage{}); u != 0 {
		t.Fatalf("empty package utility = %v", u)
	}
}

func TestRatingsInScale(t *testing.T) {
	city, _ := setup(t)
	g := uniformGroup(t, city, 10, 3)
	pers, plain, random, honeypot := packagesFor(t, g)
	panel, err := NewPanel(g, 0.2, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range []*core.TravelPackage{pers, plain, random, honeypot} {
		for _, r := range panel.Raters {
			score := panel.Rate(r, tp)
			if score < 1 || score > 5 {
				t.Fatalf("rating %v outside [1,5]", score)
			}
		}
	}
}

func TestHoneypotFilterCatchesCareless(t *testing.T) {
	city, _ := setup(t)
	g := uniformGroup(t, city, 100, 4)
	pers, plain, random, honeypot := packagesFor(t, g)
	panel, err := NewPanel(g, 0.3, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	keep := panel.FilterByHoneypot(honeypot, []*core.TravelPackage{pers, plain, random})
	if len(keep) == len(panel.Raters) {
		t.Fatal("filter removed nobody despite 30% careless raters")
	}
	if len(keep) == 0 {
		t.Fatal("filter removed everyone")
	}
	// Attentive raters overwhelmingly survive; count the composition.
	careless, attentive := 0, 0
	for _, i := range keep {
		if panel.Raters[i].Careless {
			careless++
		} else {
			attentive++
		}
	}
	if attentive < careless {
		t.Fatalf("filter kept more careless (%d) than attentive (%d) raters", careless, attentive)
	}
}

func TestPersonalizedBeatsBaselines(t *testing.T) {
	// The study's central finding (§4.4.2): personalized packages rate
	// higher than non-personalized and random ones.
	city, _ := setup(t)
	g := uniformGroup(t, city, 10, 5)
	pers, plain, random, honeypot := packagesFor(t, g)
	panel, err := NewPanel(g, 0, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	keep := panel.FilterByHoneypot(honeypot, []*core.TravelPackage{pers, plain, random})
	scores := panel.IndependentEval(map[string]*core.TravelPackage{
		"personalized": pers, "plain": plain, "random": random,
	}, keep)
	if scores["personalized"] < scores["plain"] || scores["personalized"] < scores["random"] {
		t.Fatalf("personalized %v not best (plain %v, random %v)",
			scores["personalized"], scores["plain"], scores["random"])
	}
}

func TestComparativeEvalConsistency(t *testing.T) {
	city, _ := setup(t)
	g := uniformGroup(t, city, 10, 6)
	pers, _, random, _ := packagesFor(t, g)
	panel, err := NewPanel(g, 0, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, len(panel.Raters))
	for i := range all {
		all[i] = i
	}
	frac := panel.ComparativeEval(pers, random, all)
	if frac < 0.5 {
		t.Fatalf("personalized preferred only %v of the time vs random", frac)
	}
	if frac < 0 || frac > 1 {
		t.Fatalf("preference fraction %v", frac)
	}
}

func TestPanelErrors(t *testing.T) {
	city, _ := setup(t)
	g := uniformGroup(t, city, 5, 11)
	if _, err := NewPanel(nil, 0, rng.New(1)); err == nil {
		t.Fatal("nil group accepted")
	}
	if _, err := NewPanel(g, -0.1, rng.New(1)); err == nil {
		t.Fatal("negative careless fraction accepted")
	}
	if _, err := NewPanel(g, 0.5, nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

func TestSimulateCustomizationLogsAlignedOps(t *testing.T) {
	city, e := setup(t)
	g := uniformGroup(t, city, 5, 12)
	gp, err := consensus.GroupProfile(g, consensus.PairwiseDis)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := e.Build(gp, query.Default(), core.DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := interact.NewSession(city, tp)
	if err != nil {
		t.Fatal(err)
	}
	if err := SimulateCustomization(sess, g, DefaultCustomizeOptions(), rng.New(13)); err != nil {
		t.Fatal(err)
	}
	ops := sess.Log()
	if len(ops) == 0 {
		t.Fatal("no interactions simulated")
	}
	// Operations are attributed to real members and respect the per-member cap.
	perMember := map[int]int{}
	for _, op := range ops {
		if op.Member < 0 || op.Member >= g.Size() {
			t.Fatalf("op by unknown member %d", op.Member)
		}
		perMember[op.Member]++
	}
	for m, n := range perMember {
		if n > DefaultCustomizeOptions().MaxOpsPerMember {
			t.Fatalf("member %d performed %d ops (cap %d)", m, n, DefaultCustomizeOptions().MaxOpsPerMember)
		}
	}
	// Added POIs must match the acting member's taste direction: refining
	// with the log must not lower the group profile's fit to the package.
	refined, err := interact.RefineBatch(gp, ops)
	if err != nil {
		t.Fatal(err)
	}
	if refined == nil {
		t.Fatal("refinement returned nil")
	}
}

func TestSimulateCustomizationErrors(t *testing.T) {
	city, e := setup(t)
	g := uniformGroup(t, city, 5, 14)
	gp, _ := consensus.GroupProfile(g, consensus.PairwiseDis)
	tp, err := e.Build(gp, query.Default(), core.DefaultParams(3))
	if err != nil {
		t.Fatal(err)
	}
	sess, _ := interact.NewSession(city, tp)
	if err := SimulateCustomization(nil, g, DefaultCustomizeOptions(), rng.New(1)); err == nil {
		t.Fatal("nil session accepted")
	}
	bad := DefaultCustomizeOptions()
	bad.MaxOpsPerMember = 0
	if err := SimulateCustomization(sess, g, bad, rng.New(1)); err == nil {
		t.Fatal("zero op cap accepted")
	}
}

func TestCustomizationImprovesSubsequentPackages(t *testing.T) {
	// The §4.4.4 pipeline: customize in one city, refine the profile,
	// rebuild — the rebuilt package should fit the group at least as well.
	city, e := setup(t)
	g := uniformGroup(t, city, 7, 15)
	gp, err := consensus.GroupProfile(g, consensus.PairwiseDis)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := e.Build(gp, query.Default(), core.DefaultParams(5))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := interact.NewSession(city, tp)
	if err != nil {
		t.Fatal(err)
	}
	if err := SimulateCustomization(sess, g, DefaultCustomizeOptions(), rng.New(16)); err != nil {
		t.Fatal(err)
	}
	refined, err := interact.RefineBatch(gp, sess.Log())
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := e.Build(refined, query.Default(), core.DefaultParams(5))
	if err != nil {
		t.Fatal(err)
	}
	// Group-mean utility under the members' own profiles.
	meanUtil := func(tp *core.TravelPackage) float64 {
		s := 0.0
		for _, m := range g.Members {
			s += Utility(m, tp)
		}
		return s / float64(g.Size())
	}
	before, after := meanUtil(tp), meanUtil(rebuilt)
	if after < before-0.05 {
		t.Fatalf("customization degraded fit: %v -> %v", before, after)
	}
}
