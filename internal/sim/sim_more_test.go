package sim

import (
	"testing"

	"grouptravel/internal/core"
	"grouptravel/internal/interact"
	"grouptravel/internal/query"
	"grouptravel/internal/rng"
)

func TestPreferPenalizesInvalidPackages(t *testing.T) {
	city, _ := setup(t)
	g := uniformGroup(t, city, 10, 31)
	pers, _, _, honeypot := packagesFor(t, g)
	panel, err := NewPanel(g, 0, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	// Attentive raters must essentially never prefer the invalid honeypot
	// over a personalized package.
	wins := 0
	for _, r := range panel.Raters {
		if panel.Prefer(r, honeypot, pers) {
			wins++
		}
	}
	if wins > 1 {
		t.Fatalf("honeypot preferred by %d/%d attentive raters", wins, len(panel.Raters))
	}
}

func TestComparativeEvalEmptyRaters(t *testing.T) {
	city, _ := setup(t)
	g := uniformGroup(t, city, 5, 32)
	pers, plain, _, _ := packagesFor(t, g)
	panel, err := NewPanel(g, 0, rng.New(32))
	if err != nil {
		t.Fatal(err)
	}
	if frac := panel.ComparativeEval(pers, plain, nil); frac != 0 {
		t.Fatalf("empty rater set: %v", frac)
	}
	if scores := panel.IndependentEval(map[string]*core.TravelPackage{"a": pers}, nil); len(scores) != 0 {
		t.Fatalf("empty rater set produced scores: %v", scores)
	}
}

func TestCarelessRatersAreNoisy(t *testing.T) {
	city, _ := setup(t)
	g := uniformGroup(t, city, 100, 33)
	pers, _, _, _ := packagesFor(t, g)
	panel, err := NewPanel(g, 1.0, rng.New(33)) // everyone careless
	if err != nil {
		t.Fatal(err)
	}
	// Careless ratings are uniform on [1,5]: the mean should be near 3
	// regardless of package quality.
	sum := 0.0
	for _, r := range panel.Raters {
		if !r.Careless {
			t.Fatal("careless fraction 1.0 left an attentive rater")
		}
		sum += panel.Rate(r, pers)
	}
	mean := sum / float64(len(panel.Raters))
	if mean < 2.5 || mean > 3.5 {
		t.Fatalf("careless mean rating %v, want ≈3", mean)
	}
}

func TestCustomizationSurvivesDeletedCIs(t *testing.T) {
	// A member browsing a CI index that another member deleted must not
	// crash the simulation (the index guard in customizeAs).
	city, e := setup(t)
	g := uniformGroup(t, city, 5, 34)
	tp, err := e.Build(nil, query.Default(), core.DefaultParams(3))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := interact.NewSession(city, tp)
	if err != nil {
		t.Fatal(err)
	}
	// Delete the last CI up front, then run the full simulation: member
	// permutations will reference the now-missing index.
	if err := sess.DeleteCI(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := SimulateCustomization(sess, g, DefaultCustomizeOptions(), rng.New(34)); err != nil {
		t.Fatalf("simulation crashed on shrunken package: %v", err)
	}
}
