// Package tourpedia converts real TourPedia dumps — the dataset the paper
// actually used (http://tour-pedia.org) — into GroupTravel cities.
//
// TourPedia's "getPlaces" API returns JSON arrays of places:
//
//	[{"id": 311709, "name": "Hôtel Saint-Jacques",
//	  "category": "accommodation", "subCategory": "hotel",
//	  "lat": 48.84887, "lng": 2.34765,
//	  "reviews": "...", "details": "...", ...}, ...]
//
// The paper augments those with Foursquare types, tags and check-in
// counts; offline we synthesize the missing attributes the same way the
// generator does (type heuristics from subCategory, tags from the theme
// vocabulary when none are present, Zipf check-ins for cost), then run the
// standard LDA embedding so the converted city is a drop-in replacement
// for a generated one.
package tourpedia

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"grouptravel/internal/dataset"
	"grouptravel/internal/geo"
	"grouptravel/internal/poi"
	"grouptravel/internal/rng"
	"grouptravel/internal/tags"
)

// Place is one TourPedia record (unknown fields are ignored).
type Place struct {
	ID          int     `json:"id"`
	Name        string  `json:"name"`
	Category    string  `json:"category"`
	SubCategory string  `json:"subCategory"`
	Lat         float64 `json:"lat"`
	Lng         float64 `json:"lng"`
	// Optional free text used as tag material when present.
	Reviews string `json:"reviews"`
	Details string `json:"details"`
	// NumReviews stands in for Foursquare check-ins when present.
	NumReviews int `json:"numReviews"`
}

// Options controls the conversion.
type Options struct {
	CityName string
	Topics   int   // LDA topics for rest/attr (default 6)
	LDAIters int   // default 120
	Seed     int64 // synthesis of missing attributes
}

// categoryOf maps TourPedia category names to ours.
func categoryOf(s string) (poi.Category, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "accommodation":
		return poi.Acco, nil
	case "poi", "attraction":
		return poi.Attr, nil
	case "restaurant":
		return poi.Rest, nil
	case "transport", "transportation":
		return poi.Trans, nil
	default:
		return 0, fmt.Errorf("tourpedia: unknown category %q", s)
	}
}

// typeOf normalizes a subCategory into one of our type labels.
func typeOf(cat poi.Category, sub string, src *rng.Source) string {
	sub = strings.ToLower(strings.ReplaceAll(strings.TrimSpace(sub), " ", ""))
	var known []string
	switch cat {
	case poi.Acco:
		known = tags.AccommodationTypes
	case poi.Trans:
		known = tags.TransportationTypes
	default:
		return sub // rest/attr types come from LDA themes later
	}
	for _, k := range known {
		if sub == k || strings.Contains(sub, k) || strings.Contains(k, sub) && sub != "" {
			return k
		}
	}
	// Unknown subcategory: assign a plausible common type.
	return known[src.Intn(2)]
}

// Convert parses a TourPedia places array and builds a City. Places with
// unknown categories or invalid coordinates are skipped and counted in
// the returned report.
func Convert(r io.Reader, opts Options) (*dataset.City, *Report, error) {
	if opts.CityName == "" {
		return nil, nil, fmt.Errorf("tourpedia: CityName required")
	}
	if opts.Topics == 0 {
		opts.Topics = 6
	}
	if opts.LDAIters == 0 {
		opts.LDAIters = 120
	}
	var places []Place
	if err := json.NewDecoder(r).Decode(&places); err != nil {
		return nil, nil, fmt.Errorf("tourpedia: decode: %w", err)
	}
	if len(places) == 0 {
		return nil, nil, fmt.Errorf("tourpedia: empty dump")
	}
	src := rng.New(opts.Seed)
	rep := &Report{}

	var pois []*poi.POI
	seen := map[int]bool{}
	for _, pl := range places {
		cat, err := categoryOf(pl.Category)
		if err != nil {
			rep.SkippedCategory++
			continue
		}
		coord := geo.Point{Lat: pl.Lat, Lon: pl.Lng}
		if !coord.Valid() || (pl.Lat == 0 && pl.Lng == 0) {
			rep.SkippedCoordinates++
			continue
		}
		if seen[pl.ID] {
			rep.SkippedDuplicate++
			continue
		}
		seen[pl.ID] = true
		p := &poi.POI{
			ID:    pl.ID,
			Name:  pl.Name,
			Cat:   cat,
			Coord: coord,
			Type:  typeOf(cat, pl.SubCategory, src),
		}
		p.Tags = tagText(pl, cat, src)
		p.Cost = costOf(pl, src)
		pois = append(pois, p)
		rep.Converted++
	}
	if len(pois) == 0 {
		return nil, nil, fmt.Errorf("tourpedia: no usable places (skipped %d)", rep.Skipped())
	}
	for _, cat := range poi.Categories {
		n := 0
		for _, p := range pois {
			if p.Cat == cat {
				n++
			}
		}
		if n == 0 {
			return nil, nil, fmt.Errorf("tourpedia: dump has no %s places — GroupTravel queries need all four categories", cat)
		}
	}

	city, err := dataset.FromPOIs(opts.CityName, pois, dataset.EmbedOptions{
		Topics: opts.Topics, LDAIters: opts.LDAIters, Seed: opts.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	return city, rep, nil
}

// tagText assembles tag material: real review/detail text when present,
// otherwise theme-sampled synthetic tags (the Foursquare augmentation the
// paper performed, simulated).
func tagText(pl Place, cat poi.Category, src *rng.Source) string {
	text := strings.TrimSpace(pl.Reviews + " " + pl.Details)
	if len(tags.Tokenize(text)) >= 3 {
		return text
	}
	switch cat {
	case poi.Rest:
		th := src.Intn(len(tags.RestaurantThemes))
		return sampleTheme(tags.RestaurantThemes[th], src)
	case poi.Attr:
		th := src.Intn(len(tags.AttractionThemes))
		return sampleTheme(tags.AttractionThemes[th], src)
	default:
		return pl.SubCategory
	}
}

func sampleTheme(th tags.Theme, src *rng.Source) string {
	n := 6 + src.Intn(6)
	words := make([]string, n)
	for i := range words {
		words[i] = th.Words[src.Intn(len(th.Words))]
	}
	return strings.Join(words, " ")
}

// costOf estimates cost = log10(1 + popularity) from review counts when
// available (the paper's check-in estimator), else draws a Zipf count.
func costOf(pl Place, src *rng.Source) float64 {
	n := pl.NumReviews
	if n <= 0 {
		n = int(src.Zipf(1.4, 20000)()) + 1
	}
	return math.Log10(1 + float64(n))
}

// Report summarizes a conversion.
type Report struct {
	Converted          int
	SkippedCategory    int
	SkippedCoordinates int
	SkippedDuplicate   int
}

// Skipped totals the skipped places.
func (r *Report) Skipped() int {
	return r.SkippedCategory + r.SkippedCoordinates + r.SkippedDuplicate
}

// String renders the report.
func (r *Report) String() string {
	return fmt.Sprintf("converted %d places (skipped: %d bad category, %d bad coordinates, %d duplicates)",
		r.Converted, r.SkippedCategory, r.SkippedCoordinates, r.SkippedDuplicate)
}
