package tourpedia

import (
	"fmt"
	"strings"
	"testing"

	"grouptravel/internal/core"
	"grouptravel/internal/poi"
	"grouptravel/internal/query"
	"grouptravel/internal/rng"
)

// dump fabricates a TourPedia-style JSON array around central Paris with
// all four categories represented.
func dump(t *testing.T, extra string) string {
	t.Helper()
	var b strings.Builder
	b.WriteString("[")
	id := 1000
	add := func(cat, sub, reviews string, lat, lon float64, n int) {
		for i := 0; i < n; i++ {
			if b.Len() > 1 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, `{"id": %d, "name": "Place %d", "category": %q, "subCategory": %q,
				"lat": %f, "lng": %f, "reviews": %q, "numReviews": %d}`,
				id, id, cat, sub, lat+0.001*float64(i), lon+0.0013*float64(i), reviews, 10*(i+1))
			id++
		}
	}
	add("accommodation", "hotel", "", 48.85, 2.33, 6)
	add("transport", "metro station", "", 48.86, 2.34, 5)
	add("restaurant", "french", "french bistro wine cheese gastronomic sommelier", 48.855, 2.35, 8)
	add("restaurant", "japanese", "sushi ramen sake japanese tempura bento", 48.845, 2.32, 8)
	add("poi", "museum", "museum art gallery exhibition painting sculpture", 48.86, 2.335, 10)
	add("poi", "park", "garden park fountain picnic botanical green", 48.87, 2.36, 10)
	if extra != "" {
		b.WriteString("," + extra)
	}
	b.WriteString("]")
	return b.String()
}

func TestConvertBasics(t *testing.T) {
	city, rep, err := Convert(strings.NewReader(dump(t, "")), Options{CityName: "RealParis", Seed: 1, LDAIters: 40})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Converted != 47 {
		t.Fatalf("converted %d places", rep.Converted)
	}
	counts := city.POIs.CategoryCounts()
	if counts[poi.Acco] != 6 || counts[poi.Trans] != 5 || counts[poi.Rest] != 16 || counts[poi.Attr] != 20 {
		t.Fatalf("counts = %v", counts)
	}
	// Every POI valid under the schema (NewCollection validated already);
	// spot-check vectors.
	for _, p := range city.POIs.ByCategory(poi.Rest) {
		sum := 0.0
		for _, v := range p.Vector {
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("restaurant vector sums to %v", sum)
		}
	}
	for _, p := range city.POIs.ByCategory(poi.Acco) {
		if p.Vector.Sum() != 1 {
			t.Fatalf("accommodation vector not one-hot: %v", p.Vector)
		}
		if p.Type != "hotel" {
			t.Fatalf("subCategory hotel mapped to %q", p.Type)
		}
	}
	// Costs follow log10(1+numReviews).
	p := city.POIs.ByID(1000)
	if p == nil || p.Cost <= 1 || p.Cost > 1.05 { // log10(11) ≈ 1.04
		t.Fatalf("cost from numReviews wrong: %+v", p)
	}
}

func TestConvertSkipsBadRecords(t *testing.T) {
	extra := `{"id": 1, "name": "Mystery", "category": "wormhole", "lat": 48.85, "lng": 2.35},
		{"id": 2, "name": "Null Island", "category": "poi", "lat": 0, "lng": 0},
		{"id": 1000, "name": "Duplicate", "category": "poi", "lat": 48.85, "lng": 2.35}`
	_, rep, err := Convert(strings.NewReader(dump(t, extra)), Options{CityName: "X", Seed: 1, LDAIters: 30})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SkippedCategory != 1 || rep.SkippedCoordinates != 1 || rep.SkippedDuplicate != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.Contains(rep.String(), "1 duplicates") {
		t.Fatalf("report string = %q", rep.String())
	}
}

func TestConvertErrors(t *testing.T) {
	if _, _, err := Convert(strings.NewReader("[]"), Options{CityName: "X"}); err == nil {
		t.Fatal("empty dump accepted")
	}
	if _, _, err := Convert(strings.NewReader("{oops"), Options{CityName: "X"}); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, _, err := Convert(strings.NewReader(dump(t, "")), Options{}); err == nil {
		t.Fatal("missing city name accepted")
	}
	// A dump missing a whole category is unusable for GroupTravel queries.
	onlyRest := `[{"id":1,"name":"r","category":"restaurant","subCategory":"x",
		"lat":48.85,"lng":2.35,"reviews":"sushi ramen sake"}]`
	if _, _, err := Convert(strings.NewReader(onlyRest), Options{CityName: "X", LDAIters: 5}); err == nil {
		t.Fatal("single-category dump accepted")
	}
}

func TestConvertedCityBuildsPackages(t *testing.T) {
	city, _, err := Convert(strings.NewReader(dump(t, "")), Options{CityName: "RealParis", Seed: 2, LDAIters: 40})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(city)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := engine.Build(nil, query.Default(), core.DefaultParams(3))
	if err != nil {
		t.Fatalf("converted city cannot build packages: %v", err)
	}
	if !tp.Valid() {
		t.Fatal("package from converted city invalid")
	}
}

func TestTypeOfHeuristics(t *testing.T) {
	src := rng.New(1)
	if got := typeOf(poi.Acco, "Hotel", src); got != "hotel" {
		t.Fatalf("Hotel -> %q", got)
	}
	if got := typeOf(poi.Trans, "metro station", src); got != "metrostation" {
		t.Fatalf("metro station -> %q", got)
	}
	// A subcategory containing a known type still maps to it.
	if got := typeOf(poi.Acco, "boutique hostel", src); got != "hostel" {
		t.Fatalf("boutique hostel -> %q", got)
	}
	// Unknown subcategory falls back to a common type, never empty.
	if got := typeOf(poi.Acco, "spacepod", src); got == "" {
		t.Fatal("empty type for unknown subcategory")
	}
}
