package tourpedia

import (
	"strings"
	"testing"
)

// FuzzConvert throws arbitrary JSON at the TourPedia converter — real
// dumps come from an external service and arrive malformed regularly. The
// converter must either error or return a fully validated city, never
// panic.
func FuzzConvert(f *testing.F) {
	seeds := []string{
		`[]`,
		`[{"id":1,"name":"x","category":"restaurant","subCategory":"sushi","lat":48.85,"lng":2.35,"reviews":"sushi ramen sake"}]`,
		`[{"id":1,"category":"wormhole","lat":1,"lng":1}]`,
		`[{"id":1,"category":"poi","lat":999,"lng":-999}]`,
		`{"not":"an array"}`,
		`[{"id":1,"name":"blank","category":"accommodation","subCategory":"","lat":48,"lng":2}]`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		city, _, err := Convert(strings.NewReader(s), Options{CityName: "Fuzz", LDAIters: 2, Topics: 2})
		if err != nil {
			return
		}
		// An accepted dump must produce an indexed, schema-valid city.
		if city.POIs.Len() == 0 {
			t.Fatalf("converter returned an empty city without error for %q", s)
		}
		for _, p := range city.POIs.All() {
			if err := city.Schema.Validate(p); err != nil {
				t.Fatalf("converter emitted invalid POI: %v", err)
			}
		}
	})
}
