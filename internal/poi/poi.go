// Package poi defines Points Of Interest — the items of GroupTravel — and
// the indexed collections the rest of the system queries.
//
// The schema follows Table 1 of the paper exactly: every POI has a unique
// id, a name, a category (acco / trans / rest / attr), coordinates, a type
// (e.g. "hotel", "bike rental"), free-text tags, and a cost. On top of the
// raw record, each POI carries its item vector ®i (§3.2): a one-hot type
// indicator for accommodations and transportation, and the LDA topic
// distribution of its tags for restaurants and attractions.
package poi

import (
	"fmt"
	"strings"

	"grouptravel/internal/geo"
	"grouptravel/internal/vec"
)

// Category is one of the four POI categories of the TourPedia dataset.
type Category uint8

const (
	Acco  Category = iota // accommodation
	Trans                 // transportation
	Rest                  // restaurant
	Attr                  // attraction

	NumCategories = 4
)

// Categories lists all categories in canonical order.
var Categories = [NumCategories]Category{Acco, Trans, Rest, Attr}

// String returns the paper's short category name.
func (c Category) String() string {
	switch c {
	case Acco:
		return "acco"
	case Trans:
		return "trans"
	case Rest:
		return "rest"
	case Attr:
		return "attr"
	default:
		return fmt.Sprintf("category(%d)", uint8(c))
	}
}

// ParseCategory parses the paper's short names (and a few common aliases).
func ParseCategory(s string) (Category, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "acco", "accommodation":
		return Acco, nil
	case "trans", "transportation", "transport":
		return Trans, nil
	case "rest", "restaurant":
		return Rest, nil
	case "attr", "attraction":
		return Attr, nil
	default:
		return 0, fmt.Errorf("poi: unknown category %q", s)
	}
}

// Valid reports whether c is one of the four defined categories.
func (c Category) Valid() bool { return c < NumCategories }

// POI is a single point of interest (Table 1 row).
type POI struct {
	ID    int
	Name  string
	Cat   Category
	Coord geo.Point
	Type  string  // e.g. "hotel", "bike rental", or dominant topic label
	Tags  string  // space-separated Foursquare-style tags
	Cost  float64 // log(#checkins) in the paper's cost model

	// Vector is the item vector ®i of §3.2: one-hot over types for
	// acco/trans, LDA topic distribution for rest/attr. Its dimension is
	// Schema.Dim(Cat).
	Vector vec.Vector
}

// Schema describes, per category, the dimensions of item and profile
// vectors and human-readable labels for each dimension (type names for
// acco/trans; "topic k: top words" labels for rest/attr). A city's POIs,
// every user profile, and every group profile must share one Schema.
type Schema struct {
	labels [NumCategories][]string
}

// NewSchema builds a Schema from per-category dimension labels.
func NewSchema(acco, trans, rest, attr []string) *Schema {
	s := &Schema{}
	s.labels[Acco] = append([]string(nil), acco...)
	s.labels[Trans] = append([]string(nil), trans...)
	s.labels[Rest] = append([]string(nil), rest...)
	s.labels[Attr] = append([]string(nil), attr...)
	return s
}

// Dim returns the vector dimension for category c.
func (s *Schema) Dim(c Category) int { return len(s.labels[c]) }

// Labels returns the dimension labels for category c (shared slice; do not
// mutate).
func (s *Schema) Labels(c Category) []string { return s.labels[c] }

// TypeIndex returns the dimension index of a type label within category c,
// or -1 if unknown.
func (s *Schema) TypeIndex(c Category, label string) int {
	for i, l := range s.labels[c] {
		if l == label {
			return i
		}
	}
	return -1
}

// OneHot returns a one-hot vector for the given type label in category c.
// Unknown labels yield a zero vector (the POI matches no preference).
func (s *Schema) OneHot(c Category, label string) vec.Vector {
	v := vec.New(s.Dim(c))
	if i := s.TypeIndex(c, label); i >= 0 {
		v[i] = 1
	}
	return v
}

// Validate checks a POI against the schema: legal category, valid
// coordinates, non-negative cost, and an item vector of the right
// dimension with components in [0,1].
func (s *Schema) Validate(p *POI) error {
	if !p.Cat.Valid() {
		return fmt.Errorf("poi %d (%s): invalid category %d", p.ID, p.Name, p.Cat)
	}
	if !p.Coord.Valid() {
		return fmt.Errorf("poi %d (%s): invalid coordinates %v", p.ID, p.Name, p.Coord)
	}
	if p.Cost < 0 {
		return fmt.Errorf("poi %d (%s): negative cost %v", p.ID, p.Name, p.Cost)
	}
	if len(p.Vector) != s.Dim(p.Cat) {
		return fmt.Errorf("poi %d (%s): item vector dim %d, schema wants %d for %s",
			p.ID, p.Name, len(p.Vector), s.Dim(p.Cat), p.Cat)
	}
	if !p.Vector.InUnitRange() {
		return fmt.Errorf("poi %d (%s): item vector outside [0,1]: %v", p.ID, p.Name, p.Vector)
	}
	return nil
}
