package poi

import (
	"fmt"

	"grouptravel/internal/geo"
)

// Collection is an immutable, indexed set of POIs of one city. It provides
// the lookups GroupTravel's algorithms need: per-category candidate lists,
// nearest-neighbor queries (for the ADD/REPLACE operators), rectangle
// queries (for GENERATE), and the distance normalizer of Eq. 1.
type Collection struct {
	schema *Schema
	pois   []*POI
	byID   map[int]*POI
	byCat  [NumCategories][]*POI
	grid   *geo.GridIndex
	norm   geo.Normalizer
}

// NewCollection indexes the POIs under the schema. Every POI is validated;
// duplicate IDs are rejected. The input slice is not retained.
func NewCollection(schema *Schema, pois []*POI) (*Collection, error) {
	if schema == nil {
		return nil, fmt.Errorf("poi: nil schema")
	}
	c := &Collection{
		schema: schema,
		pois:   make([]*POI, 0, len(pois)),
		byID:   make(map[int]*POI, len(pois)),
	}
	points := make([]geo.Point, 0, len(pois))
	for _, p := range pois {
		if err := schema.Validate(p); err != nil {
			return nil, err
		}
		if _, dup := c.byID[p.ID]; dup {
			return nil, fmt.Errorf("poi: duplicate id %d", p.ID)
		}
		c.byID[p.ID] = p
		c.pois = append(c.pois, p)
		c.byCat[p.Cat] = append(c.byCat[p.Cat], p)
		points = append(points, p.Coord)
	}
	if len(points) > 0 {
		c.grid = geo.NewGridIndex(points, 32)
		c.norm = geo.NormalizerFor(points)
	}
	return c, nil
}

// Schema returns the collection's schema.
func (c *Collection) Schema() *Schema { return c.schema }

// Len returns the number of POIs.
func (c *Collection) Len() int { return len(c.pois) }

// All returns all POIs in insertion order (shared slice; do not mutate).
func (c *Collection) All() []*POI { return c.pois }

// ByID returns the POI with the given id, or nil.
func (c *Collection) ByID(id int) *POI { return c.byID[id] }

// ByCategory returns all POIs of category cat (shared slice; do not
// mutate).
func (c *Collection) ByCategory(cat Category) []*POI { return c.byCat[cat] }

// Normalizer returns the distance normalizer derived from the city's POI
// cloud (the "largest observed distance value" of §3.2).
func (c *Collection) Normalizer() geo.Normalizer { return c.norm }

// Bounds returns the bounding rectangle of the city's POIs.
func (c *Collection) Bounds() geo.Rect {
	if c.grid == nil {
		return geo.Rect{}
	}
	return c.grid.Bounds()
}

// Nearest returns up to k POIs closest to q, optionally restricted to one
// category and filtered by an accept predicate (nil accepts all). This
// powers the paper's ADD operator, which shows "the closest items to CI
// satisfying the user filter", and REPLACE, which recommends "the closest
// POI j ... such that i.cat = j.cat".
func (c *Collection) Nearest(q geo.Point, k int, cat *Category, accept func(*POI) bool) []*POI {
	if c.grid == nil {
		return nil
	}
	ids := c.grid.Nearest(q, k, func(id int32) bool {
		p := c.pois[id]
		if cat != nil && p.Cat != *cat {
			return false
		}
		return accept == nil || accept(p)
	})
	out := make([]*POI, len(ids))
	for i, id := range ids {
		out[i] = c.pois[id]
	}
	return out
}

// InRect returns all POIs inside r, optionally restricted to one category.
// This powers the GENERATE(RECTANGLE(...)) operator.
func (c *Collection) InRect(r geo.Rect, cat *Category) []*POI {
	if c.grid == nil {
		return nil
	}
	var out []*POI
	for _, id := range c.grid.InRect(r) {
		p := c.pois[id]
		if cat != nil && p.Cat != *cat {
			continue
		}
		out = append(out, p)
	}
	return out
}

// CategoryCounts returns the number of POIs per category, in canonical
// category order.
func (c *Collection) CategoryCounts() [NumCategories]int {
	var n [NumCategories]int
	for i := range Categories {
		n[i] = len(c.byCat[i])
	}
	return n
}
