package poi

import (
	"testing"

	"grouptravel/internal/geo"
	"grouptravel/internal/tags"
	"grouptravel/internal/vec"
)

func testSchema() *Schema {
	return NewSchema(
		tags.AccommodationTypes,
		tags.TransportationTypes,
		[]string{"topic0", "topic1", "topic2"},
		[]string{"topic0", "topic1"},
	)
}

func mkPOI(id int, cat Category, lat, lon float64, s *Schema) *POI {
	p := &POI{
		ID:    id,
		Name:  "poi",
		Cat:   cat,
		Coord: geo.Point{Lat: lat, Lon: lon},
		Cost:  1,
	}
	switch cat {
	case Acco:
		p.Type = "hotel"
		p.Vector = s.OneHot(Acco, "hotel")
	case Trans:
		p.Type = "tramstation"
		p.Vector = s.OneHot(Trans, "tramstation")
	case Rest:
		p.Vector = vec.Vector{0.5, 0.3, 0.2}
	case Attr:
		p.Vector = vec.Vector{0.7, 0.3}
	}
	return p
}

func TestCategoryParseRoundTrip(t *testing.T) {
	for _, c := range Categories {
		got, err := ParseCategory(c.String())
		if err != nil || got != c {
			t.Fatalf("ParseCategory(%q) = %v, %v", c.String(), got, err)
		}
	}
	// Aliases.
	if got, err := ParseCategory("Restaurant"); err != nil || got != Rest {
		t.Fatalf("alias parse failed: %v %v", got, err)
	}
	if _, err := ParseCategory("spaceport"); err == nil {
		t.Fatal("unknown category accepted")
	}
}

func TestCategoryValid(t *testing.T) {
	if !Attr.Valid() {
		t.Fatal("Attr invalid")
	}
	if Category(9).Valid() {
		t.Fatal("Category(9) valid")
	}
}

func TestSchemaOneHot(t *testing.T) {
	s := testSchema()
	v := s.OneHot(Acco, "hostel")
	if v.Sum() != 1 || v[s.TypeIndex(Acco, "hostel")] != 1 {
		t.Fatalf("one-hot = %v", v)
	}
	// Unknown label: all-zero vector.
	z := s.OneHot(Acco, "igloo")
	if z.Sum() != 0 {
		t.Fatalf("unknown-type one-hot = %v, want zeros", z)
	}
	if len(z) != s.Dim(Acco) {
		t.Fatalf("one-hot dim = %d", len(z))
	}
}

func TestSchemaValidate(t *testing.T) {
	s := testSchema()
	good := mkPOI(1, Rest, 48.86, 2.34, s)
	if err := s.Validate(good); err != nil {
		t.Fatalf("valid POI rejected: %v", err)
	}
	bad := []*POI{
		func() *POI { p := mkPOI(2, Rest, 48.86, 2.34, s); p.Cat = Category(7); return p }(),
		func() *POI { p := mkPOI(3, Rest, 91, 2.34, s); return p }(),
		func() *POI { p := mkPOI(4, Rest, 48.86, 2.34, s); p.Cost = -1; return p }(),
		func() *POI { p := mkPOI(5, Rest, 48.86, 2.34, s); p.Vector = vec.Vector{1}; return p }(),
		func() *POI { p := mkPOI(6, Rest, 48.86, 2.34, s); p.Vector = vec.Vector{2, 0, 0}; return p }(),
	}
	for i, p := range bad {
		if err := s.Validate(p); err == nil {
			t.Errorf("bad POI %d accepted", i)
		}
	}
}

func buildCollection(t *testing.T) (*Collection, *Schema) {
	t.Helper()
	s := testSchema()
	var pois []*POI
	id := 0
	// A small grid of POIs over central Paris, mixed categories.
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			cat := Categories[(i*6+j)%NumCategories]
			pois = append(pois, mkPOI(id, cat, 48.84+0.01*float64(i), 2.30+0.012*float64(j), s))
			id++
		}
	}
	c, err := NewCollection(s, pois)
	if err != nil {
		t.Fatalf("NewCollection: %v", err)
	}
	return c, s
}

func TestCollectionIndexes(t *testing.T) {
	c, _ := buildCollection(t)
	if c.Len() != 36 {
		t.Fatalf("Len = %d", c.Len())
	}
	counts := c.CategoryCounts()
	for i, n := range counts {
		if n != 9 {
			t.Fatalf("category %v count = %d, want 9", Categories[i], n)
		}
	}
	p := c.ByID(17)
	if p == nil || p.ID != 17 {
		t.Fatalf("ByID(17) = %v", p)
	}
	if c.ByID(999) != nil {
		t.Fatal("ByID(999) found a POI")
	}
	for _, p := range c.ByCategory(Rest) {
		if p.Cat != Rest {
			t.Fatalf("ByCategory(Rest) contains %v", p.Cat)
		}
	}
}

func TestCollectionRejectsDuplicates(t *testing.T) {
	s := testSchema()
	pois := []*POI{mkPOI(1, Rest, 48.86, 2.34, s), mkPOI(1, Attr, 48.87, 2.35, s)}
	if _, err := NewCollection(s, pois); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

func TestCollectionRejectsInvalid(t *testing.T) {
	s := testSchema()
	p := mkPOI(1, Rest, 48.86, 2.34, s)
	p.Vector = vec.Vector{1} // wrong dim
	if _, err := NewCollection(s, []*POI{p}); err == nil {
		t.Fatal("invalid POI accepted")
	}
	if _, err := NewCollection(nil, nil); err == nil {
		t.Fatal("nil schema accepted")
	}
}

func TestNearestRespectsCategory(t *testing.T) {
	c, _ := buildCollection(t)
	q := geo.Point{Lat: 48.86, Lon: 2.33}
	cat := Rest
	got := c.Nearest(q, 5, &cat, nil)
	if len(got) != 5 {
		t.Fatalf("Nearest returned %d POIs", len(got))
	}
	for _, p := range got {
		if p.Cat != Rest {
			t.Fatalf("Nearest(cat=rest) returned %v", p.Cat)
		}
	}
	// Ordered by distance.
	for i := 1; i < len(got); i++ {
		if geo.Equirectangular(q, got[i-1].Coord) > geo.Equirectangular(q, got[i].Coord)+1e-12 {
			t.Fatal("Nearest not distance-ordered")
		}
	}
}

func TestNearestAcceptFilter(t *testing.T) {
	c, _ := buildCollection(t)
	q := geo.Point{Lat: 48.86, Lon: 2.33}
	got := c.Nearest(q, 3, nil, func(p *POI) bool { return p.ID%2 == 1 })
	if len(got) == 0 {
		t.Fatal("filtered Nearest empty")
	}
	for _, p := range got {
		if p.ID%2 != 1 {
			t.Fatalf("accept filter violated: id %d", p.ID)
		}
	}
}

func TestInRect(t *testing.T) {
	c, _ := buildCollection(t)
	r := geo.Rect{Lat: 48.87, Lon: 2.30, Width: 0.03, Height: 0.02}
	got := c.InRect(r, nil)
	if len(got) == 0 {
		t.Fatal("InRect found nothing")
	}
	for _, p := range got {
		if !r.Contains(p.Coord) {
			t.Fatalf("InRect returned POI outside rect: %v", p.Coord)
		}
	}
	cat := Attr
	for _, p := range c.InRect(r, &cat) {
		if p.Cat != Attr {
			t.Fatalf("InRect(cat=attr) returned %v", p.Cat)
		}
	}
}

func TestEmptyCollection(t *testing.T) {
	s := testSchema()
	c, err := NewCollection(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.Nearest(geo.Point{}, 3, nil, nil); got != nil {
		t.Fatalf("Nearest on empty = %v", got)
	}
	if got := c.InRect(geo.Rect{Lat: 1, Width: 1, Height: 1}, nil); got != nil {
		t.Fatalf("InRect on empty = %v", got)
	}
}

func TestNormalizerCoversCollection(t *testing.T) {
	c, _ := buildCollection(t)
	n := c.Normalizer()
	all := c.All()
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j += 5 {
			d := n.Distance(all[i].Coord, all[j].Coord)
			if d < 0 || d > 1 {
				t.Fatalf("normalized distance %v outside [0,1]", d)
			}
		}
	}
}
