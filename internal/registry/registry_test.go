package registry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"grouptravel/internal/dataset"
)

// The registry's contract is about lifecycle, not datasets, so tests share
// one tiny generated city and hand it out under every key.
var (
	regOnce sync.Once
	regCity *dataset.City
)

func sharedCity(t testing.TB) *dataset.City {
	t.Helper()
	regOnce.Do(func() {
		c, err := dataset.Generate(dataset.TestSpec("RegistryCity", 61))
		if err != nil {
			panic(err)
		}
		regCity = c
	})
	return regCity
}

// counterState is the test serving state: it records which key it was
// built for so tests can see reloads.
type counterState struct {
	key  string
	born int64
}

func newTestRegistry(t testing.TB, keys []string, maxCities int, loadCount, stateCount *atomic.Int64) *Registry[*counterState] {
	t.Helper()
	city := sharedCity(t)
	r, err := New(keys, Options[*counterState]{
		Load: func(key string) (*dataset.City, error) {
			if loadCount != nil {
				loadCount.Add(1)
			}
			return city, nil
		},
		NewState: func(c *City[*counterState]) (*counterState, error) {
			var n int64
			if stateCount != nil {
				n = stateCount.Add(1)
			}
			return &counterState{key: c.Key, born: n}, nil
		},
		MaxCities: maxCities,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestUnknownKeyRejected(t *testing.T) {
	r := newTestRegistry(t, []string{"paris"}, 0, nil, nil)
	if _, _, err := r.Acquire("atlantis"); err == nil {
		t.Fatal("unknown city accepted")
	}
}

func TestLazySingleflightLoad(t *testing.T) {
	var loads, states atomic.Int64
	r := newTestRegistry(t, []string{"paris", "rome"}, 0, &loads, &states)
	if loads.Load() != 0 {
		t.Fatal("registry loaded eagerly")
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, release, err := r.Acquire("paris")
			if err != nil {
				errs <- err
				return
			}
			defer release()
			if c.Key != "paris" || c.Engine == nil || c.State.key != "paris" {
				errs <- fmt.Errorf("bad city: %+v", c)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := loads.Load(); got != 1 {
		t.Fatalf("%d concurrent acquires ran %d loads, want 1", goroutines, got)
	}
	if got := states.Load(); got != 1 {
		t.Fatalf("state built %d times, want 1", got)
	}
	// rome was never touched.
	if r.Loaded("rome") {
		t.Fatal("untouched city resident")
	}
}

func TestLRUEvictionAndReload(t *testing.T) {
	var loads atomic.Int64
	var evicted []string
	city := sharedCity(t)
	r, err := New([]string{"a", "b", "c"}, Options[*counterState]{
		Load: func(key string) (*dataset.City, error) {
			loads.Add(1)
			return city, nil
		},
		NewState:  func(c *City[*counterState]) (*counterState, error) { return &counterState{key: c.Key}, nil },
		OnEvict:   func(c *City[*counterState]) { evicted = append(evicted, c.Key) },
		MaxCities: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	touch := func(key string) {
		t.Helper()
		_, release, err := r.Acquire(key)
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	touch("a")
	touch("b")
	touch("a") // refresh a's recency: b is now the LRU city
	touch("c") // overflow: b must go
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b]", evicted)
	}
	if r.Loaded("b") || !r.Loaded("a") || !r.Loaded("c") {
		t.Fatalf("residency wrong: a=%v b=%v c=%v", r.Loaded("a"), r.Loaded("b"), r.Loaded("c"))
	}
	st := r.Stats()
	if st.Loaded != 2 || st.Evictions != 1 || st.Known != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// Every resident city reports the wall time its load pipeline took.
	for _, c := range st.Cities {
		if c.LoadMillis <= 0 {
			t.Fatalf("city %s missing load latency: %+v", c.Key, c)
		}
	}
	// The evicted city reloads transparently on next use.
	before := loads.Load()
	touch("b")
	if loads.Load() != before+1 {
		t.Fatal("evicted city did not reload")
	}
}

func TestPinnedCityNeverEvicted(t *testing.T) {
	r := newTestRegistry(t, []string{"a", "b", "c"}, 1, nil, nil)
	_, releaseA, err := r.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	// a is pinned: acquiring b and c overflows the cap of 1, but a must
	// survive, and the in-flight b/c acquisitions must not fail.
	_, releaseB, err := r.Acquire("b")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Loaded("a") {
		t.Fatal("pinned city evicted by overflow")
	}
	releaseB() // b unpinned and LRU against pinned a: b is shed
	if r.Loaded("b") {
		t.Fatal("unpinned overflow not shed")
	}
	if !r.Loaded("a") {
		t.Fatal("pinned city evicted instead of unpinned one")
	}
	releaseA()
	// Now a is unpinned and alone: within cap, stays resident.
	if !r.Loaded("a") {
		t.Fatal("city under cap evicted")
	}
}

func TestEvictableVeto(t *testing.T) {
	city := sharedCity(t)
	dirty := map[string]bool{"a": true} // a's state is not durably persisted
	var evicted []string
	r, err := New([]string{"a", "b", "c"}, Options[*counterState]{
		Load:      func(key string) (*dataset.City, error) { return city, nil },
		NewState:  func(c *City[*counterState]) (*counterState, error) { return &counterState{key: c.Key}, nil },
		OnEvict:   func(c *City[*counterState]) { evicted = append(evicted, c.Key) },
		Evictable: func(c *City[*counterState]) bool { return !dirty[c.Key] },
		MaxCities: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	touch := func(key string) {
		t.Helper()
		_, release, err := r.Acquire(key)
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	touch("a")
	touch("b") // overflow, but a is vetoed: b (the only evictable city) goes
	if !r.Loaded("a") {
		t.Fatalf("vetoed city evicted (evicted=%v)", evicted)
	}
	touch("c") // c loads, is evictable, and c/b shed down around the veto
	if !r.Loaded("a") {
		t.Fatal("vetoed city evicted on later overflow")
	}
	for _, k := range evicted {
		if k == "a" {
			t.Fatalf("OnEvict saw vetoed city: %v", evicted)
		}
	}
	// Once the veto clears, a becomes a normal LRU victim.
	dirty["a"] = false
	touch("b")
	if r.Loaded("a") {
		t.Fatal("cleared veto: a should have been evicted as LRU")
	}
}

func TestFailedLoadIsRetried(t *testing.T) {
	city := sharedCity(t)
	var calls atomic.Int64
	r, err := New([]string{"flaky"}, Options[struct{}]{
		Load: func(key string) (*dataset.City, error) {
			if calls.Add(1) == 1 {
				return nil, fmt.Errorf("disk on fire")
			}
			return city, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Acquire("flaky"); err == nil {
		t.Fatal("failed load reported success")
	}
	c, release, err := r.Acquire("flaky")
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	release()
	if c.Engine == nil {
		t.Fatal("retried city incomplete")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("load called %d times, want 2", got)
	}
}

func TestConcurrentAcquireUnderCap(t *testing.T) {
	keys := []string{"a", "b", "c", "d"}
	var loads atomic.Int64
	r := newTestRegistry(t, keys, 2, &loads, nil)
	const goroutines = 8
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := keys[(g+i)%len(keys)]
				c, release, err := r.Acquire(key)
				if err != nil {
					errs <- fmt.Errorf("%s: %w", key, err)
					return
				}
				if c.Key != key {
					errs <- fmt.Errorf("got %q, want %q", c.Key, key)
					release()
					return
				}
				release()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if !r.WaitIdle(time.Second) {
		t.Fatal("registry never went idle")
	}
	st := r.Stats()
	if st.Loaded > 2 {
		t.Fatalf("idle registry holds %d cities, cap 2", st.Loaded)
	}
	if st.Evictions == 0 {
		t.Fatal("4 cities through a cap of 2 produced no evictions")
	}
	if st.Loads != loads.Load() {
		t.Fatalf("stats.Loads = %d, counted %d", st.Loads, loads.Load())
	}
}

// TestEvictionDrainBlocksReload: while an evicted city's OnEvict hook is
// still tearing state down (e.g. compacting and closing its persistence
// files), an Acquire of the same key must wait — reloading mid-teardown
// would put two owners on the same on-disk state.
func TestEvictionDrainBlocksReload(t *testing.T) {
	city := sharedCity(t)
	hookEntered := make(chan string, 4)
	hookRelease := make(chan struct{})
	r, err := New([]string{"a", "b"}, Options[*counterState]{
		Load:     func(key string) (*dataset.City, error) { return city, nil },
		NewState: func(c *City[*counterState]) (*counterState, error) { return &counterState{key: c.Key}, nil },
		OnEvict: func(c *City[*counterState]) {
			hookEntered <- c.Key
			<-hookRelease
		},
		MaxCities: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	touch := func(key string) {
		_, release, err := r.Acquire(key)
		if err != nil {
			t.Error(err)
			return
		}
		release()
	}
	touch("a")
	// Evicting a runs the (blocked) hook on this goroutine's eviction
	// pass — do it from a helper goroutine so the test can act while the
	// hook is in flight.
	go touch("b")
	evictedKey := <-hookEntered // a's hook is now running and blocked

	reloaded := make(chan struct{})
	go func() {
		touch(evictedKey)
		close(reloaded)
	}()
	select {
	case <-reloaded:
		t.Fatal("evicted city reloaded while its OnEvict hook was still running")
	case <-time.After(50 * time.Millisecond):
	}
	close(hookRelease)
	select {
	case <-reloaded:
	case <-time.After(5 * time.Second):
		t.Fatal("reload never proceeded after the hook finished")
	}
}

// TestAcquireIfLoaded: the no-load pin — resident cities pin (and the pin
// blocks eviction), everything else reports not-ok without triggering a
// load pipeline.
func TestAcquireIfLoaded(t *testing.T) {
	var loads atomic.Int64
	r := newTestRegistry(t, []string{"a", "b"}, 0, &loads, nil)

	// Nothing resident yet: no pin, and crucially no load.
	if _, _, ok := r.AcquireIfLoaded("a"); ok {
		t.Fatal("pinned an unloaded city")
	}
	if _, _, ok := r.AcquireIfLoaded("nowhere"); ok {
		t.Fatal("pinned an unknown city")
	}
	if loads.Load() != 0 {
		t.Fatalf("AcquireIfLoaded ran %d load pipelines", loads.Load())
	}

	c, release, err := r.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	release()
	c2, release2, ok := r.AcquireIfLoaded("a")
	if !ok || c2 != c {
		t.Fatalf("resident city not pinned (ok=%v)", ok)
	}
	// The conditional pin is a real pin: it holds eviction off exactly
	// like Acquire's.
	st := r.Stats()
	if len(st.Cities) != 1 || st.Cities[0].Pins != 1 {
		t.Fatalf("stats after conditional pin: %+v", st)
	}
	release2()
	if loads.Load() != 1 {
		t.Fatalf("loads = %d, want 1", loads.Load())
	}
}
