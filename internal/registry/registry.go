// Package registry is the multi-city serving layer between the engine and
// the HTTP surface: a concurrency-safe, city-keyed registry that lazily
// loads city datasets, constructs one shared core.Engine (plus arbitrary
// per-city serving state) per city, and evicts idle cities under a
// configurable cap so one process can front many more cities than fit in
// memory at once.
//
// # Lifecycle
//
// A registry is created over a fixed key set (the cities a data directory
// can serve). Nothing is loaded up front: the first Acquire of a key runs
// the Load → NewEngine → NewState pipeline exactly once no matter how many
// requests arrive concurrently (singleflight — late arrivals block on the
// first loader and share its result; a failed load is forgotten so the
// next Acquire retries).
//
// Acquire pins the city for the duration of the request; the returned
// release function unpins it. When the number of loaded cities exceeds
// MaxCities, the least-recently-used unpinned city is evicted — a pinned
// city (in-flight builds) is never a victim, so the cap is soft under
// load: eviction waits rather than failing requests. An evicted city
// reloads on its next Acquire, which is what makes persistence (snapshot
// on mutation, reload in NewState) the other half of this subsystem.
//
// # Locking
//
// One registry mutex guards the key → entry map, pin counts and recency;
// dataset loading, engine construction and state loading all run outside
// it. The registry never calls user hooks (Load, NewState, OnEvict) while
// holding its lock, so hooks may acquire their own locks freely.
package registry

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
)

// City is one loaded city: the dataset, its shared engine, and the
// caller-defined serving state built by NewState. All fields are
// immutable after load; S's own synchronization is S's business.
type City[S any] struct {
	Key    string
	City   *dataset.City
	Engine *core.Engine
	State  S
}

// Options configures a registry over serving state S.
type Options[S any] struct {
	// Load returns the dataset for a key. Required. Called outside the
	// registry lock, at most once per load (singleflight).
	Load func(key string) (*dataset.City, error)

	// NewState builds the per-city serving state once the dataset and
	// engine exist — the place to reload persisted groups/packages.
	// Optional; the zero S is used when nil.
	NewState func(c *City[S]) (S, error)

	// OnLoad observes a city becoming resident, after it is visible to
	// Loaded/Range; the registry does not hold its lock across the call.
	// Listings that cache on a residency-sensitive version key rely on
	// this ordering: the invalidation must follow the visibility flip.
	OnLoad func(c *City[S])
	// OnEvict observes a city leaving the registry (after it is already
	// unreachable). Optional.
	OnEvict func(c *City[S])

	// Evictable, when set, can veto evicting a specific city (e.g. one
	// whose state has not been durably persisted). Vetoed cities keep the
	// cap soft exactly like pinned ones. Called with the registry lock
	// held: it must be fast and must not call back into the registry.
	Evictable func(c *City[S]) bool

	// MaxCities caps how many cities stay loaded; <= 0 means unlimited.
	// The cap is soft: pinned cities are never evicted, so a burst
	// touching more than MaxCities distinct cities at once loads them
	// all and sheds back down as pins release.
	MaxCities int

	// EngineCacheCap overrides the per-engine cluster-cache bound
	// (core.DefaultCacheCap when 0, unbounded when < 0).
	EngineCacheCap int
}

// entry is one slot in the key map. ready is closed when loading finished;
// city/err are final after that. pins, lastUse and loadNanos are guarded
// by the registry mutex.
type entry[S any] struct {
	ready     chan struct{}
	city      *City[S]
	err       error
	pins      int
	lastUse   int64
	loadNanos int64 // wall time of the Load → NewEngine → NewState pipeline
}

// Registry routes city keys to loaded cities. Safe for concurrent use.
type Registry[S any] struct {
	opts Options[S]
	keys []string

	mu        sync.Mutex
	known     map[string]bool
	entries   map[string]*entry[S]
	draining  map[string]chan struct{} // evicted keys whose OnEvict hook is still running
	clock     int64
	evictions int64
	loads     int64
}

// New builds a registry over the given key set.
func New[S any](keys []string, opts Options[S]) (*Registry[S], error) {
	if opts.Load == nil {
		return nil, fmt.Errorf("registry: Load is required")
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("registry: no cities")
	}
	r := &Registry[S]{
		opts:     opts,
		known:    make(map[string]bool, len(keys)),
		entries:  make(map[string]*entry[S], len(keys)),
		draining: make(map[string]chan struct{}),
	}
	for _, k := range keys {
		if k == "" {
			return nil, fmt.Errorf("registry: empty city key")
		}
		if r.known[k] {
			return nil, fmt.Errorf("registry: duplicate city key %q", k)
		}
		r.known[k] = true
		r.keys = append(r.keys, k)
	}
	sort.Strings(r.keys)
	return r, nil
}

// Keys returns all known city keys, sorted.
func (r *Registry[S]) Keys() []string {
	out := make([]string, len(r.keys))
	copy(out, r.keys)
	return out
}

// Has reports whether key is servable.
func (r *Registry[S]) Has(key string) bool { return r.known[key] }

// Acquire returns the loaded city for key, loading it on first use, and
// pins it against eviction until release is called. Every caller must
// release exactly once (release is idempotent-unsafe by design: it is a
// bug to call it twice, and a bug to forget it — pair it with defer).
func (r *Registry[S]) Acquire(key string) (c *City[S], release func(), err error) {
	if !r.known[key] {
		return nil, nil, fmt.Errorf("registry: unknown city %q", key)
	}
	r.mu.Lock()
	// An evicted city's OnEvict hook may still be tearing state down
	// (flushing/closing its persistence files). Reloading the key while
	// the hook runs would put two owners on the same on-disk state — the
	// old one's teardown could clobber the new one's writes — so wait for
	// the drain to finish before loading.
	for {
		drain, ok := r.draining[key]
		if !ok {
			break
		}
		r.mu.Unlock()
		<-drain
		r.mu.Lock()
	}
	e, ok := r.entries[key]
	if ok {
		e.pins++
		r.clock++
		e.lastUse = r.clock
		r.mu.Unlock()
		<-e.ready
		if e.err != nil {
			r.unpin(key, e)
			return nil, nil, e.err
		}
		return e.city, func() { r.unpin(key, e) }, nil
	}
	// First toucher loads; the pin taken here keeps the half-built city
	// from being evicted by a concurrent overflow.
	e = &entry[S]{ready: make(chan struct{}), pins: 1}
	r.clock++
	e.lastUse = r.clock
	r.entries[key] = e
	r.loads++
	r.mu.Unlock()

	loadStart := time.Now()
	e.city, e.err = r.load(key)
	loadNanos := int64(time.Since(loadStart))
	if e.err != nil {
		// Forget the failed load so a later Acquire retries; waiters
		// observe the error through the entry they already hold.
		r.mu.Lock()
		delete(r.entries, key)
		r.mu.Unlock()
		close(e.ready)
		return nil, nil, e.err
	}
	r.mu.Lock()
	e.loadNanos = loadNanos
	r.mu.Unlock()
	close(e.ready)
	if r.opts.OnLoad != nil {
		r.opts.OnLoad(e.city)
	}
	r.evictOverCap()
	return e.city, func() { r.unpin(key, e) }, nil
}

// AcquireIfLoaded pins key only if the city is already resident and
// healthy; it never triggers a load. ok is false for unknown, unloaded,
// still-loading, failed or draining cities. This is the pin promotion and
// follower-mode maintenance use: sweeping every key with Acquire would
// force-load cities that are cleanly sealed on disk, exactly what a
// sweep over *resident* state must not do.
func (r *Registry[S]) AcquireIfLoaded(key string) (c *City[S], release func(), ok bool) {
	r.mu.Lock()
	e, resident := r.entries[key]
	if !resident {
		r.mu.Unlock()
		return nil, nil, false
	}
	select {
	case <-e.ready:
	default:
		r.mu.Unlock()
		return nil, nil, false // still loading; its loader holds the pin
	}
	if e.err != nil {
		r.mu.Unlock()
		return nil, nil, false
	}
	e.pins++
	r.clock++
	e.lastUse = r.clock
	r.mu.Unlock()
	return e.city, func() { r.unpin(key, e) }, true
}

// load runs the Load → NewEngine → NewState pipeline outside the lock.
func (r *Registry[S]) load(key string) (*City[S], error) {
	ds, err := r.opts.Load(key)
	if err != nil {
		return nil, fmt.Errorf("registry: load %q: %w", key, err)
	}
	engine, err := core.NewEngine(ds)
	if err != nil {
		return nil, fmt.Errorf("registry: engine for %q: %w", key, err)
	}
	if cap := r.opts.EngineCacheCap; cap != 0 {
		engine.SetCacheCap(cap)
	}
	c := &City[S]{Key: key, City: ds, Engine: engine}
	if r.opts.NewState != nil {
		st, err := r.opts.NewState(c)
		if err != nil {
			return nil, fmt.Errorf("registry: state for %q: %w", key, err)
		}
		c.State = st
	}
	return c, nil
}

// unpin releases one pin and sheds any overflow that had to wait for it.
// Completing a request counts as a use: without the recency bump, a city
// whose (slow) request outlived traffic to other cities would carry its
// stale Acquire-time stamp into the eviction pass below and become the
// LRU victim the moment it is unpinned — reload thrash for an actively
// used city (the same completion-counts-as-a-use rule the cluster cache
// applies when a compute finishes).
func (r *Registry[S]) unpin(key string, e *entry[S]) {
	r.mu.Lock()
	e.pins--
	if e.pins < 0 {
		r.mu.Unlock()
		panic(fmt.Sprintf("registry: release called twice for %q", key))
	}
	r.clock++
	e.lastUse = r.clock
	r.mu.Unlock()
	r.evictOverCap()
}

// evictOverCap evicts least-recently-used unpinned cities until the count
// fits MaxCities again. Victims' OnEvict hooks run outside the lock;
// while one runs, its key is marked draining so a concurrent Acquire
// cannot reload the city mid-teardown.
func (r *Registry[S]) evictOverCap() {
	if r.opts.MaxCities <= 0 {
		return
	}
	var victims []*City[S]
	r.mu.Lock()
	for len(r.entries) > r.opts.MaxCities {
		var (
			victimKey string
			victim    *entry[S]
		)
		for k, e := range r.entries {
			select {
			case <-e.ready:
			default:
				continue // still loading: its loader holds a pin anyway
			}
			if e.pins > 0 || e.err != nil {
				continue
			}
			if r.opts.Evictable != nil && !r.opts.Evictable(e.city) {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			break // everything pinned or vetoed: soft cap, shed later
		}
		delete(r.entries, victimKey)
		r.evictions++
		if r.opts.OnEvict != nil {
			r.draining[victimKey] = make(chan struct{})
		}
		victims = append(victims, victim.city)
	}
	r.mu.Unlock()
	if r.opts.OnEvict != nil {
		for _, c := range victims {
			r.opts.OnEvict(c)
			r.mu.Lock()
			drain := r.draining[c.Key]
			delete(r.draining, c.Key)
			r.mu.Unlock()
			close(drain)
		}
	}
}

// LoadedCity is one resident city as reported by Stats. LoadMillis is the
// wall time its load pipeline took — dataset read, engine construction and
// state build (with persistence: snapshot read + log replay) — so a warm-up
// policy can see what each cold start costs; 0 while still loading.
type LoadedCity struct {
	Key        string  `json:"key"`
	Pins       int     `json:"pins"`
	LoadMillis float64 `json:"loadMillis"`
}

// Stats is a point-in-time view of the registry for health endpoints.
type Stats struct {
	Known     int          `json:"known"`
	Loaded    int          `json:"loaded"`
	Loads     int64        `json:"loads"`     // load pipelines started (reloads after eviction included)
	Evictions int64        `json:"evictions"` // cities shed to honor MaxCities
	MaxCities int          `json:"maxCities"` // 0 = unlimited
	Cities    []LoadedCity `json:"cities"`
}

// Stats snapshots the registry counters.
func (r *Registry[S]) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Stats{
		Known:     len(r.known),
		Loaded:    len(r.entries),
		Loads:     r.loads,
		Evictions: r.evictions,
		MaxCities: max(r.opts.MaxCities, 0),
	}
	for k, e := range r.entries {
		st.Cities = append(st.Cities, LoadedCity{
			Key: k, Pins: e.pins,
			LoadMillis: float64(e.loadNanos) / float64(time.Millisecond),
		})
	}
	sort.Slice(st.Cities, func(i, j int) bool { return st.Cities[i].Key < st.Cities[j].Key })
	return st
}

// Loaded reports whether key is currently resident (loaded and not
// evicted). Mostly for tests and the /cities endpoint.
func (r *Registry[S]) Loaded(key string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[key]
	if !ok {
		return false
	}
	select {
	case <-e.ready:
		return e.err == nil
	default:
		return false
	}
}

// Range calls fn for every resident city without pinning (fn must not
// retain the city). Used by health reporting to enumerate loaded cities.
func (r *Registry[S]) Range(fn func(c *City[S])) {
	r.mu.Lock()
	cities := make([]*City[S], 0, len(r.entries))
	for _, e := range r.entries {
		select {
		case <-e.ready:
			if e.err == nil {
				cities = append(cities, e.city)
			}
		default:
		}
	}
	r.mu.Unlock()
	for _, c := range cities {
		fn(c)
	}
}

// WaitIdle blocks until no city is pinned or the timeout elapses; it
// exists for tests that need eviction to have settled. Because unpin runs
// its eviction pass after releasing the registry lock, observing zero pins
// does not mean the releasing goroutine's shed finished — so WaitIdle
// runs one itself before reporting idle (evictOverCap is idempotent).
func (r *Registry[S]) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		r.mu.Lock()
		busy := false
		for _, e := range r.entries {
			if e.pins > 0 {
				busy = true
				break
			}
		}
		r.mu.Unlock()
		if !busy {
			r.evictOverCap()
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}
