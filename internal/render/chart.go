package render

import (
	"fmt"
	"math"
	"strings"
)

// Series is one line of an ASCII chart.
type Series struct {
	Name   string
	Marker byte
	Ys     []float64
}

// Chart renders aligned series against shared x labels as a terminal
// scatter plot — used by cmd/experiments to visualize the γ tension sweep
// (the closest thing to a "figure" the terminal offers). All series must
// have one y per x label. Each series is min-max normalized to the chart
// height independently, so shapes are comparable even when units differ
// (km vs. cosine sums).
func Chart(title string, xLabels []string, series []Series, width, height int) (string, error) {
	if len(xLabels) < 2 {
		return "", fmt.Errorf("render: chart needs at least 2 x points")
	}
	if len(series) == 0 {
		return "", fmt.Errorf("render: chart needs at least 1 series")
	}
	for _, s := range series {
		if len(s.Ys) != len(xLabels) {
			return "", fmt.Errorf("render: series %q has %d points for %d labels", s.Name, len(s.Ys), len(xLabels))
		}
	}
	if width < 2*len(xLabels) {
		width = 2 * len(xLabels)
	}
	if height < 5 {
		height = 5
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, y := range s.Ys {
			lo, hi = math.Min(lo, y), math.Max(hi, y)
		}
		span := hi - lo
		for xi, y := range s.Ys {
			col := xi * (width - 1) / (len(xLabels) - 1)
			frac := 0.5
			if span > 0 {
				frac = (y - lo) / span
			}
			row := height - 1 - int(frac*float64(height-1))
			grid[row][col] = s.Marker
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s|\n", row)
	}
	fmt.Fprintf(&b, "+%s+\n", strings.Repeat("-", width))
	// X labels, spread across the width.
	labels := []byte(strings.Repeat(" ", width+2))
	for xi, lab := range xLabels {
		col := 1 + xi*(width-1)/(len(xLabels)-1)
		for i := 0; i < len(lab) && col+i < len(labels); i++ {
			labels[col+i] = lab[i]
		}
	}
	b.Write(labels)
	b.WriteString("\n")
	for _, s := range series {
		fmt.Fprintf(&b, "  %c = %s (each series scaled to its own range)\n", s.Marker, s.Name)
	}
	return b.String(), nil
}
