package render

import (
	"strings"
	"testing"
)

func TestChartBasics(t *testing.T) {
	out, err := Chart("tension",
		[]string{"0", "1", "5"},
		[]Series{
			{Name: "within-CI km", Marker: 'o', Ys: []float64{44, 141, 222}},
			{Name: "personalization", Marker: 'x', Ys: []float64{11, 19, 19.3}},
		}, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tension", "o = within-CI km", "x = personalization", "0", "5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// Monotone series: the first marker must be on a lower row (later in
	// the string) than the last.
	lines := strings.Split(out, "\n")
	firstRow, lastRow := -1, -1
	for ri, line := range lines {
		if strings.Contains(line, "o") && !strings.Contains(line, "=") {
			idx := strings.Index(line, "o")
			if idx <= 2 && firstRow == -1 {
				firstRow = ri
			}
			if idx > len(line)-4 {
				lastRow = ri
			}
		}
	}
	if firstRow != -1 && lastRow != -1 && lastRow >= firstRow {
		t.Fatalf("rising series not rendered rising (first at row %d, last at row %d)", firstRow, lastRow)
	}
}

func TestChartValidation(t *testing.T) {
	if _, err := Chart("t", []string{"0"}, []Series{{Name: "s", Marker: 'o', Ys: []float64{1}}}, 10, 5); err == nil {
		t.Fatal("single x accepted")
	}
	if _, err := Chart("t", []string{"0", "1"}, nil, 10, 5); err == nil {
		t.Fatal("no series accepted")
	}
	if _, err := Chart("t", []string{"0", "1"}, []Series{{Name: "s", Marker: 'o', Ys: []float64{1}}}, 10, 5); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestChartConstantSeries(t *testing.T) {
	out, err := Chart("flat", []string{"a", "b", "c"},
		[]Series{{Name: "s", Marker: '*', Ys: []float64{5, 5, 5}}}, 30, 6)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "*") != 3+0 { // 3 markers (legend uses the rune too; count carefully)
		// The legend line also contains '*': count only grid lines.
		grid := strings.Split(out, "+")[0]
		if strings.Count(grid, "*") != 3 {
			t.Fatalf("constant series rendered %d markers:\n%s", strings.Count(grid, "*"), out)
		}
	}
}
