package render

import (
	"strings"
	"testing"

	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
	"grouptravel/internal/metrics"
	"grouptravel/internal/query"
)

func testPackage(t *testing.T) (*core.TravelPackage, *dataset.City) {
	t.Helper()
	city, err := dataset.Generate(dataset.TestSpec("RenderCity", 51))
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(city)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := e.Build(nil, query.Default(), core.DefaultParams(3))
	if err != nil {
		t.Fatal(err)
	}
	return tp, city
}

func TestPackageRendering(t *testing.T) {
	tp, _ := testPackage(t)
	out := Package(tp)
	for _, want := range []string{"DAY 1", "DAY 2", "DAY 3", "representativity", "[A]", "[T]", "[R]", "[H]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "WARNING") {
		t.Fatal("valid package rendered a warning")
	}
}

func TestPackageRenderingWarnsInvalid(t *testing.T) {
	tp, _ := testPackage(t)
	tp.CIs[0].Items = tp.CIs[0].Items[1:] // break validity
	if !strings.Contains(Package(tp), "WARNING") {
		t.Fatal("invalid package rendered without warning")
	}
}

func TestPackageWithRoutes(t *testing.T) {
	tp, _ := testPackage(t)
	out := PackageWithRoutes(tp)
	if !strings.Contains(out, "walk") {
		t.Fatalf("routed rendering missing walking distance:\n%s", out)
	}
	// The first item of every day must be the accommodation.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "DAY") {
			continue
		}
	}
	days := strings.Split(out, "DAY")
	for _, day := range days[1:] {
		lines := strings.Split(strings.TrimSpace(day), "\n")
		if len(lines) < 2 {
			continue
		}
		if !strings.Contains(lines[1], "[A]") {
			t.Fatalf("routed day does not start at the accommodation:\n%s", day)
		}
	}
}

func TestMapRendering(t *testing.T) {
	tp, city := testPackage(t)
	out := Map(tp, city.POIs.Bounds(), city.POIs.All(), 60)
	if !strings.Contains(out, "*") {
		t.Fatal("map missing centroids")
	}
	if !strings.Contains(out, "1") || !strings.Contains(out, "3") {
		t.Fatal("map missing CI digits")
	}
	if !strings.Contains(out, "legend") {
		t.Fatal("map missing legend")
	}
	// Every line between the borders has the same width.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	w := len(lines[0])
	for _, l := range lines[:len(lines)-1] {
		if len(l) != w {
			t.Fatalf("ragged map line: %d vs %d", len(l), w)
		}
	}
}

func TestMapTinyWidthClamped(t *testing.T) {
	tp, city := testPackage(t)
	out := Map(tp, city.POIs.Bounds(), nil, 1)
	if len(out) == 0 {
		t.Fatal("empty map")
	}
}

func TestDimensionsString(t *testing.T) {
	d := metrics.Dimensions{Representativity: 12.5, RawDistance: 30, Personalization: 4.25}
	out := Dimensions(d, 100)
	if !strings.Contains(out, "70.00") { // cohesiveness = 100-30
		t.Fatalf("Dimensions = %q", out)
	}
}
