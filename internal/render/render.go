// Package render produces the terminal presentations of travel packages:
// the day-by-day listing of Figure 1 and an ASCII city map in the spirit
// of the Figure 3 customization GUI (the paper's interface is a web map;
// coordinates and operators are identical, only pixels differ).
package render

import (
	"fmt"
	"strings"

	"grouptravel/internal/core"
	"grouptravel/internal/geo"
	"grouptravel/internal/metrics"
	"grouptravel/internal/poi"
	"grouptravel/internal/route"
)

// categoryLetter maps categories to the single letters of Figure 1
// ("Letters A, T, R, and H on POIs represent categories of accommodation,
// transportation, restaurant, and attraction").
func categoryLetter(c poi.Category) byte {
	switch c {
	case poi.Acco:
		return 'A'
	case poi.Trans:
		return 'T'
	case poi.Rest:
		return 'R'
	case poi.Attr:
		return 'H'
	default:
		return '?'
	}
}

// Package renders a travel package as the Figure 1 day plan: one block per
// CI with its POIs, types, coordinates and costs, followed by the three
// optimization dimensions.
func Package(tp *core.TravelPackage) string {
	return renderPackage(tp, false)
}

// PackageWithRoutes renders the package with each day's items in walking
// order (internal/route: start at the accommodation, nearest-neighbor +
// 2-opt) and the day's walking distance.
func PackageWithRoutes(tp *core.TravelPackage) string {
	return renderPackage(tp, true)
}

func renderPackage(tp *core.TravelPackage, routed bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Travel package for %s — query %s, %d composite items\n",
		tp.City, tp.Query, len(tp.CIs))
	for di, c := range tp.CIs {
		fmt.Fprintf(&b, "\nDAY %d  (centroid %s, cost %.2f", di+1, c.Centroid, c.Cost())
		items := c.Items
		if routed {
			if plan, err := route.PlanDay(c); err == nil {
				ordered := make([]*poi.POI, len(plan.Order))
				for i, idx := range plan.Order {
					ordered[i] = c.Items[idx]
				}
				items = ordered
				fmt.Fprintf(&b, ", walk %.1f km", plan.LengthKm)
			}
		}
		b.WriteString(")\n")
		for _, it := range items {
			fmt.Fprintf(&b, "  [%c] %-28s %-12s %s  $%.2f\n",
				categoryLetter(it.Cat), it.Name, it.Type, it.Coord, it.Cost)
		}
	}
	d := tp.Measure()
	fmt.Fprintf(&b, "\nrepresentativity %.2f km | within-CI distance %.2f km | personalization %.2f\n",
		d.Representativity, d.RawDistance, d.Personalization)
	if !tp.Valid() {
		b.WriteString("WARNING: package contains invalid CIs\n")
	}
	return b.String()
}

// Map renders an ASCII map of the package over the city: background POIs
// as '.', each CI's items as its 1-based digit (letters past 9), centroids
// as '*'. width is the map width in characters; height follows the city's
// aspect ratio.
func Map(tp *core.TravelPackage, bounds geo.Rect, background []*poi.POI, width int) string {
	if width < 16 {
		width = 16
	}
	// Terminal cells are ~2x taller than wide; correct the aspect.
	height := int(float64(width) * (bounds.Height / maxf(bounds.Width, 1e-9)) * 0.5)
	if height < 8 {
		height = 8
	}
	if height > 60 {
		height = 60
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plot := func(p geo.Point, ch byte) {
		if !bounds.Contains(p) {
			return
		}
		col := int(float64(width-1) * (p.Lon - bounds.Lon) / maxf(bounds.Width, 1e-9))
		row := int(float64(height-1) * (bounds.Lat - p.Lat) / maxf(bounds.Height, 1e-9))
		if row >= 0 && row < height && col >= 0 && col < width {
			grid[row][col] = ch
		}
	}
	for _, p := range background {
		plot(p.Coord, '.')
	}
	for i, c := range tp.CIs {
		ch := byte('1' + i)
		if i >= 9 {
			ch = byte('a' + i - 9)
		}
		for _, it := range c.Items {
			plot(it.Coord, ch)
		}
	}
	for _, c := range tp.CIs {
		plot(c.Centroid, '*')
	}
	var b strings.Builder
	fmt.Fprintf(&b, "+%s+\n", strings.Repeat("-", width))
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s|\n", row)
	}
	fmt.Fprintf(&b, "+%s+\n", strings.Repeat("-", width))
	b.WriteString("legend: digits = CI items by day, * = centroids, . = other POIs\n")
	return b.String()
}

// Dimensions renders the measured optimization dimensions with an
// explicit cohesiveness given the Eq. 3 constant s.
func Dimensions(d metrics.Dimensions, s float64) string {
	return fmt.Sprintf("representativity=%.2f cohesiveness=%.2f personalization=%.2f",
		d.Representativity, s-d.RawDistance, d.Personalization)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
