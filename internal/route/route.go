// Package route orders the POIs of a Composite Item into a walkable day
// plan. The paper deliberately leaves CIs unordered ("unlike itineraries,
// POIs forming a CI are not ordered", §5.1) — ordering is a presentation
// concern — but any real deployment shows the day as a route, so this
// package provides the natural extension: an open tour that starts at the
// CI's accommodation (travelers leave their hotel in the morning) and
// visits every POI once, minimized with nearest-neighbor construction and
// 2-opt improvement.
package route

import (
	"fmt"

	"grouptravel/internal/ci"
	"grouptravel/internal/geo"
	"grouptravel/internal/poi"
)

// Plan is an ordered visit of a CI's items.
type Plan struct {
	// Order holds indices into the CI's Items slice, in visiting order.
	Order []int
	// LengthKm is the total walking distance along the order (open tour:
	// no return to the start).
	LengthKm float64
}

// TourLength returns the open-tour length in km for the given order over
// the points.
func TourLength(pts []geo.Point, order []int) float64 {
	total := 0.0
	for i := 1; i < len(order); i++ {
		total += geo.Equirectangular(pts[order[i-1]], pts[order[i]])
	}
	return total
}

// NearestNeighbor builds an order greedily from the start index.
func NearestNeighbor(pts []geo.Point, start int) []int {
	n := len(pts)
	if n == 0 {
		return nil
	}
	if start < 0 || start >= n {
		start = 0
	}
	visited := make([]bool, n)
	order := make([]int, 0, n)
	cur := start
	visited[cur] = true
	order = append(order, cur)
	for len(order) < n {
		best, bestD := -1, 0.0
		for j := 0; j < n; j++ {
			if visited[j] {
				continue
			}
			d := geo.Equirectangular(pts[cur], pts[j])
			if best == -1 || d < bestD {
				best, bestD = j, d
			}
		}
		visited[best] = true
		order = append(order, best)
		cur = best
	}
	return order
}

// TwoOpt improves an open tour by reversing segments while improvements
// exist (bounded by maxPasses over the order). The first point is pinned
// (the day starts at the accommodation).
func TwoOpt(pts []geo.Point, order []int, maxPasses int) []int {
	n := len(order)
	if n < 4 {
		return order
	}
	out := append([]int(nil), order...)
	dist := func(a, b int) float64 { return geo.Equirectangular(pts[out[a]], pts[out[b]]) }
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for i := 1; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				// Reversing out[i..j] changes edges (i−1,i) and (j,j+1).
				delta := dist(i-1, j) - dist(i-1, i)
				if j+1 < n {
					delta += dist(i, j+1) - dist(j, j+1)
				}
				if delta < -1e-12 {
					for a, b := i, j; a < b; a, b = a+1, b-1 {
						out[a], out[b] = out[b], out[a]
					}
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return out
}

// PlanDay orders a CI's items: the tour starts at the CI's accommodation
// (the first one, if any), visits everything once, and is 2-opt improved.
func PlanDay(c *ci.CI) (Plan, error) {
	if c == nil || len(c.Items) == 0 {
		return Plan{}, fmt.Errorf("route: empty composite item")
	}
	pts := make([]geo.Point, len(c.Items))
	start := 0
	for i, it := range c.Items {
		pts[i] = it.Coord
		if it.Cat == poi.Acco && c.Items[start].Cat != poi.Acco {
			start = i
		}
	}
	order := NearestNeighbor(pts, start)
	order = TwoOpt(pts, order, 8)
	return Plan{Order: order, LengthKm: TourLength(pts, order)}, nil
}

// PlanPackage orders every CI of a package, returning one plan per CI in
// package order.
func PlanPackage(cis []*ci.CI) ([]Plan, error) {
	plans := make([]Plan, len(cis))
	for i, c := range cis {
		p, err := PlanDay(c)
		if err != nil {
			return nil, fmt.Errorf("route: CI %d: %w", i, err)
		}
		plans[i] = p
	}
	return plans, nil
}
