package route

import (
	"math"
	"testing"
	"testing/quick"

	"grouptravel/internal/ci"
	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
	"grouptravel/internal/geo"
	"grouptravel/internal/poi"
	"grouptravel/internal/query"
	"grouptravel/internal/rng"
	"grouptravel/internal/vec"
)

func linePoints(n int) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{Lat: 48.85, Lon: 2.30 + 0.01*float64(i)}
	}
	return pts
}

func TestNearestNeighborOnLine(t *testing.T) {
	pts := linePoints(6)
	order := NearestNeighbor(pts, 0)
	for i, idx := range order {
		if idx != i {
			t.Fatalf("line tour out of order: %v", order)
		}
	}
}

func TestTourLengthLine(t *testing.T) {
	pts := linePoints(3)
	straight := TourLength(pts, []int{0, 1, 2})
	zigzag := TourLength(pts, []int{1, 0, 2})
	if straight >= zigzag {
		t.Fatalf("straight %v not shorter than zigzag %v", straight, zigzag)
	}
}

func TestTwoOptFixesCrossing(t *testing.T) {
	// A deliberately crossed order on a line must be repaired.
	pts := linePoints(6)
	bad := []int{0, 3, 2, 5, 4, 1}
	fixed := TwoOpt(pts, bad, 16)
	if TourLength(pts, fixed) > TourLength(pts, bad) {
		t.Fatal("2-opt made the tour longer")
	}
	optimal := TourLength(pts, []int{0, 1, 2, 3, 4, 5})
	if got := TourLength(pts, fixed); math.Abs(got-optimal) > 1e-9 {
		t.Fatalf("2-opt on a line: %v, optimal %v (order %v)", got, optimal, fixed)
	}
}

func TestTwoOptPinsStart(t *testing.T) {
	src := rng.New(1)
	pts := make([]geo.Point, 8)
	for i := range pts {
		pts[i] = geo.Point{Lat: src.Range(48.8, 48.9), Lon: src.Range(2.25, 2.4)}
	}
	order := NearestNeighbor(pts, 3)
	improved := TwoOpt(pts, order, 8)
	if improved[0] != 3 {
		t.Fatalf("2-opt moved the pinned start: %v", improved)
	}
}

func TestTwoOptNeverWorseQuick(t *testing.T) {
	src := rng.New(2)
	f := func(_ uint8) bool {
		n := 4 + src.Intn(8)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{Lat: src.Range(48.8, 48.9), Lon: src.Range(2.25, 2.4)}
		}
		order := NearestNeighbor(pts, 0)
		improved := TwoOpt(pts, order, 8)
		if len(improved) != n {
			return false
		}
		// Must remain a permutation.
		seen := make([]bool, n)
		for _, idx := range improved {
			if idx < 0 || idx >= n || seen[idx] {
				return false
			}
			seen[idx] = true
		}
		return TourLength(pts, improved) <= TourLength(pts, order)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoOptMatchesBruteForceSmall(t *testing.T) {
	// For ≤ 7 points with a pinned start, NN+2-opt should land at (or very
	// near) the brute-force optimum on most instances.
	src := rng.New(3)
	worstRatio := 1.0
	for trial := 0; trial < 30; trial++ {
		n := 5 + src.Intn(3)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{Lat: src.Range(48.8, 48.9), Lon: src.Range(2.25, 2.4)}
		}
		got := TourLength(pts, TwoOpt(pts, NearestNeighbor(pts, 0), 16))
		best := bruteForce(pts)
		if r := got / best; r > worstRatio {
			worstRatio = r
		}
	}
	if worstRatio > 1.05 {
		t.Fatalf("NN+2-opt worst ratio vs optimum: %v", worstRatio)
	}
}

// bruteForce enumerates all open tours starting at 0.
func bruteForce(pts []geo.Point) float64 {
	n := len(pts)
	rest := make([]int, 0, n-1)
	for i := 1; i < n; i++ {
		rest = append(rest, i)
	}
	best := math.Inf(1)
	var permute func(k int)
	permute = func(k int) {
		if k == len(rest) {
			order := append([]int{0}, rest...)
			if l := TourLength(pts, order); l < best {
				best = l
			}
			return
		}
		for i := k; i < len(rest); i++ {
			rest[k], rest[i] = rest[i], rest[k]
			permute(k + 1)
			rest[k], rest[i] = rest[i], rest[k]
		}
	}
	permute(0)
	return best
}

func TestPlanDayStartsAtAccommodation(t *testing.T) {
	mk := func(id int, cat poi.Category, lon float64) *poi.POI {
		return &poi.POI{ID: id, Cat: cat, Coord: geo.Point{Lat: 48.85, Lon: lon}, Vector: vec.Vector{1}}
	}
	c := &ci.CI{Items: []*poi.POI{
		mk(1, poi.Attr, 2.30),
		mk(2, poi.Rest, 2.32),
		mk(3, poi.Acco, 2.34), // the hotel, not first in the slice
		mk(4, poi.Attr, 2.36),
	}}
	plan, err := PlanDay(c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Items[plan.Order[0]].Cat != poi.Acco {
		t.Fatalf("day does not start at the accommodation: %v", plan.Order)
	}
	if plan.LengthKm <= 0 {
		t.Fatalf("length = %v", plan.LengthKm)
	}
}

func TestPlanDayEmpty(t *testing.T) {
	if _, err := PlanDay(&ci.CI{}); err == nil {
		t.Fatal("empty CI accepted")
	}
	if _, err := PlanDay(nil); err == nil {
		t.Fatal("nil CI accepted")
	}
}

func TestPlanPackageIntegration(t *testing.T) {
	city, err := dataset.Generate(dataset.TestSpec("RouteCity", 71))
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(city)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := e.Build(nil, query.Default(), core.DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	plans, err := PlanPackage(tp.CIs)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != len(tp.CIs) {
		t.Fatalf("%d plans for %d CIs", len(plans), len(tp.CIs))
	}
	for i, p := range plans {
		if len(p.Order) != len(tp.CIs[i].Items) {
			t.Fatalf("plan %d covers %d of %d items", i, len(p.Order), len(tp.CIs[i].Items))
		}
		// Visiting order must never exceed the naive slice-order length.
		pts := make([]geo.Point, len(tp.CIs[i].Items))
		naive := make([]int, len(pts))
		for j, it := range tp.CIs[i].Items {
			pts[j] = it.Coord
			naive[j] = j
		}
		if p.LengthKm > TourLength(pts, naive)+1e-9 {
			t.Fatalf("plan %d longer than naive order: %v vs %v", i, p.LengthKm, TourLength(pts, naive))
		}
	}
}

func TestNearestNeighborDegenerate(t *testing.T) {
	if got := NearestNeighbor(nil, 0); got != nil {
		t.Fatalf("empty points: %v", got)
	}
	one := []geo.Point{{Lat: 48.85, Lon: 2.35}}
	if got := NearestNeighbor(one, 5); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single point with bad start: %v", got)
	}
}
