package consensus

import (
	"math"
	"testing"
	"testing/quick"

	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/rng"
	"grouptravel/internal/vec"
)

// paperFamily reproduces the §2.3 worked example: preferences for museums
// are 0.8, 1.0, 0.6, 0.2 (father, mother, teenager, kid).
var paperFamily = []float64{0.8, 1.0, 0.6, 0.2}

func TestPaperExampleAveragePreference(t *testing.T) {
	if p := AveragePreference(paperFamily); math.Abs(p-0.65) > 1e-12 {
		t.Fatalf("average preference = %v, want 0.65", p)
	}
}

func TestPaperExampleLeastMisery(t *testing.T) {
	if p := LeastMiseryPreference(paperFamily); p != 0.2 {
		t.Fatalf("least misery = %v, want 0.2 (the kid dominates)", p)
	}
}

func TestPaperExamplePairwiseDisagreement(t *testing.T) {
	// |0.8−1.0|+|0.8−0.6|+|0.8−0.2|+|1.0−0.6|+|1.0−0.2|+|0.6−0.2| = 2.6
	// d = 2·2.6 / (4·3) = 0.4333; the paper rounds to 0.43.
	d := PairwiseDisagreement(paperFamily)
	if math.Abs(d-2.6/6) > 1e-12 {
		t.Fatalf("pairwise disagreement = %v, want %v", d, 2.6/6)
	}
}

func TestPaperExampleVarianceDisagreement(t *testing.T) {
	// μ = 0.65; variance = (0.0225+0.1225+0.0025+0.2025)/4 = 0.0875;
	// the paper reports 0.088.
	d := VarianceDisagreement(paperFamily)
	if math.Abs(d-0.0875) > 1e-12 {
		t.Fatalf("variance disagreement = %v, want 0.0875", d)
	}
}

func TestPaperExampleConsensus(t *testing.T) {
	// w1 = w2 = 0.5 with average preference + pairwise disagreement:
	// g = 0.5·0.65 + 0.5·(1−0.4333) = 0.6083; the paper rounds to 0.61.
	g := PairwiseDis.Score(paperFamily)
	want := 0.5*0.65 + 0.5*(1-2.6/6)
	if math.Abs(g-want) > 1e-12 {
		t.Fatalf("consensus = %v, want %v", g, want)
	}
	if math.Abs(g-0.61) > 0.005 {
		t.Fatalf("consensus %v does not round to the paper's 0.61", g)
	}
}

func TestLeastMiseryIgnoresDisagreementWeight(t *testing.T) {
	// The paper's least-misery method has w1 = 1: disagreement must not
	// contribute.
	if LeastMisery.W1 != 1 || AveragePref.W1 != 1 {
		t.Fatal("preference-only methods must have w1 = 1")
	}
	if got := LeastMisery.Score(paperFamily); got != 0.2 {
		t.Fatalf("least misery score = %v", got)
	}
}

func TestSingleMemberGroup(t *testing.T) {
	one := []float64{0.7}
	if PairwiseDisagreement(one) != 0 {
		t.Fatal("single member has pairwise disagreement")
	}
	if VarianceDisagreement(one) != 0 {
		t.Fatal("single member has variance disagreement")
	}
	for _, m := range Methods {
		if got := m.Score(one); math.Abs(got-scoreAlone(m, 0.7)) > 1e-12 {
			t.Fatalf("%s: single-member score = %v", m.Name, got)
		}
	}
}

// scoreAlone is the closed form for a single member: d = 0, so
// g = w1·u + (1−w1).
func scoreAlone(m Method, u float64) float64 {
	return m.W1*u + (1 - m.W1)
}

func TestIdenticalMembersNoDisagreement(t *testing.T) {
	same := []float64{0.4, 0.4, 0.4, 0.4, 0.4}
	if PairwiseDisagreement(same) != 0 || VarianceDisagreement(same) != 0 {
		t.Fatal("identical members disagree")
	}
	// Disagreement-based consensus of unanimous members: 0.5u + 0.5.
	if g := VarianceDis.Score(same); math.Abs(g-0.7) > 1e-12 {
		t.Fatalf("unanimous variance consensus = %v, want 0.7", g)
	}
}

func TestScoreBoundsQuick(t *testing.T) {
	src := rng.New(1)
	f := func(_ uint8) bool {
		n := 2 + src.Intn(10)
		values := make([]float64, n)
		for i := range values {
			values[i] = src.Float64()
		}
		for _, m := range Methods {
			g := m.Score(values)
			if g < 0 || g > 1 || math.IsNaN(g) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAgreementRaisesScore(t *testing.T) {
	// "All other conditions being equal, a POI that draws high agreement
	// should have a higher score than a POI with a lower overall group
	// agreement" (§1). Same average, different spreads.
	agreeing := []float64{0.5, 0.5, 0.5, 0.5}
	disagreeing := []float64{1.0, 0.0, 1.0, 0.0}
	for _, m := range []Method{PairwiseDis, VarianceDis} {
		if m.Score(agreeing) <= m.Score(disagreeing) {
			t.Fatalf("%s: agreement did not raise the score", m.Name)
		}
	}
}

func TestDisagreementSymmetry(t *testing.T) {
	// Permuting members must not change any aggregate.
	a := []float64{0.1, 0.9, 0.4, 0.6}
	b := []float64{0.6, 0.1, 0.9, 0.4}
	for _, m := range Methods {
		if math.Abs(m.Score(a)-m.Score(b)) > 1e-12 {
			t.Fatalf("%s not permutation invariant", m.Name)
		}
	}
}

func TestMethodValidate(t *testing.T) {
	bad := []Method{
		{Name: "no pref", W1: 1},
		{Name: "bad w1", Pref: AveragePreference, W1: 1.5},
		{Name: "needs dis", Pref: AveragePreference, W1: 0.5},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%s accepted", m.Name)
		}
	}
	for _, m := range Methods {
		if err := m.Validate(); err != nil {
			t.Errorf("paper method %s rejected: %v", m.Name, err)
		}
	}
}

func testSchema() *poi.Schema {
	return poi.NewSchema(
		[]string{"hotel", "hostel"},
		[]string{"tram", "bike"},
		[]string{"t0", "t1", "t2"},
		[]string{"t0", "t1", "t2"},
	)
}

func TestGroupProfileShape(t *testing.T) {
	s := testSchema()
	src := rng.New(2)
	members := make([]*profile.Profile, 4)
	for i := range members {
		members[i] = profile.GenerateRandomProfile(s, src)
	}
	g, err := profile.NewGroup(s, members)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Methods {
		gp, err := GroupProfile(g, m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		for _, c := range poi.Categories {
			v := gp.Vector(c)
			if len(v) != s.Dim(c) {
				t.Fatalf("%s: wrong dim for %s", m.Name, c)
			}
			if !v.InUnitRange() {
				t.Fatalf("%s: out-of-range group profile %v", m.Name, v)
			}
		}
	}
}

func TestGroupProfileComponentwise(t *testing.T) {
	// The group profile must equal the per-component Score, category by
	// category.
	s := testSchema()
	a, b := profile.New(s), profile.New(s)
	_ = a.SetVector(poi.Rest, vec.Vector{0.8, 0.2, 0.0})
	_ = b.SetVector(poi.Rest, vec.Vector{0.4, 0.6, 0.0})
	g, _ := profile.NewGroup(s, []*profile.Profile{a, b})
	gp, err := GroupProfile(g, VarianceDis)
	if err != nil {
		t.Fatal(err)
	}
	want0 := VarianceDis.Score([]float64{0.8, 0.4})
	if math.Abs(gp.Vector(poi.Rest)[0]-want0) > 1e-12 {
		t.Fatalf("component 0 = %v, want %v", gp.Vector(poi.Rest)[0], want0)
	}
}

func TestLeastMiseryZeroForDisjointGroups(t *testing.T) {
	// Fully disjoint supports: least misery is all-zero — the mechanism
	// behind the ≈0% personalization of non-uniform groups in Table 2.
	s := testSchema()
	a, b := profile.New(s), profile.New(s)
	_ = a.SetVector(poi.Rest, vec.Vector{1, 0, 0})
	_ = b.SetVector(poi.Rest, vec.Vector{0, 1, 0})
	g, _ := profile.NewGroup(s, []*profile.Profile{a, b})
	gp, err := GroupProfile(g, LeastMisery)
	if err != nil {
		t.Fatal(err)
	}
	if gp.Vector(poi.Rest).Sum() != 0 {
		t.Fatalf("least misery of disjoint profiles = %v, want zeros", gp.Vector(poi.Rest))
	}
}

func TestGroupProfileInvalidMethod(t *testing.T) {
	s := testSchema()
	g, _ := profile.NewGroup(s, []*profile.Profile{profile.New(s)})
	if _, err := GroupProfile(g, Method{Name: "broken"}); err == nil {
		t.Fatal("invalid method accepted")
	}
}
