package consensus

import (
	"math/rand"
	"reflect"
	"testing"

	"grouptravel/internal/profile"
	"grouptravel/internal/rng"
)

// TestIncrementalEquivalence drives a randomized join/leave/weight-change
// sequence and demands the incremental profile be reflect.DeepEqual — i.e.
// bit-identical, not merely within epsilon — to a full GroupProfile /
// GroupProfileWeighted recompute over the same members at every step, for
// every built-in method.
func TestIncrementalEquivalence(t *testing.T) {
	schema := testSchema()
	src := rng.New(42)
	rnd := rand.New(rand.NewSource(1))

	for _, m := range ExtendedMethods {
		t.Run(m.Name, func(t *testing.T) {
			inc, err := NewIncremental(schema, m)
			if err != nil {
				t.Fatal(err)
			}
			var members []*profile.Profile
			pool := make([]*profile.Profile, 40)
			for i := range pool {
				pool[i] = profile.GenerateRandomProfile(schema, src)
			}

			check := func(step int) {
				if len(members) == 0 {
					if _, err := inc.Profile(); err == nil {
						t.Fatalf("step %d: Profile() on empty group should fail", step)
					}
					return
				}
				g, err := profile.NewGroup(schema, members)
				if err != nil {
					t.Fatal(err)
				}
				want, err := GroupProfile(g, m)
				if err != nil {
					t.Fatal(err)
				}
				got, err := inc.Profile()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("step %d (n=%d): incremental profile diverged from full recompute", step, len(members))
				}

				// Weighted path, when the method supports it: random
				// weights including occasional zeros (dropped members).
				if m.WPref != nil && (m.W1 >= 1 || m.WDis != nil) {
					weights := make([]float64, len(members))
					nonzero := false
					for i := range weights {
						if rnd.Intn(4) == 0 {
							weights[i] = 0
						} else {
							weights[i] = rnd.Float64()*2 + 0.1
							nonzero = true
						}
					}
					if !nonzero {
						weights[0] = 1
					}
					wantW, err := GroupProfileWeighted(g, m, weights)
					if err != nil {
						t.Fatal(err)
					}
					gotW, err := inc.ProfileWeighted(weights)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(gotW, wantW) {
						t.Fatalf("step %d (n=%d): weighted incremental profile diverged", step, len(members))
					}
				}
			}

			for step := 0; step < 200; step++ {
				join := len(members) == 0 || (rnd.Intn(3) != 0 && len(members) < len(pool))
				if join {
					p := pool[rnd.Intn(len(pool))]
					members = append(members, p)
					if err := inc.Join(p); err != nil {
						t.Fatalf("step %d: join: %v", step, err)
					}
				} else {
					i := rnd.Intn(len(members))
					members = append(members[:i], members[i+1:]...)
					if err := inc.Leave(i); err != nil {
						t.Fatalf("step %d: leave(%d): %v", step, i, err)
					}
				}
				check(step)
			}
		})
	}
}

// TestIncrementalErrors pins the aggregator's guard rails.
func TestIncrementalErrors(t *testing.T) {
	schema := testSchema()
	if _, err := NewIncremental(nil, AveragePref); err == nil {
		t.Fatal("nil schema accepted")
	}
	if _, err := NewIncremental(schema, Method{Name: "broken"}); err == nil {
		t.Fatal("invalid method accepted")
	}
	inc, err := NewIncremental(schema, PairwiseDis)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Join(nil); err == nil {
		t.Fatal("nil member accepted")
	}
	if err := inc.Leave(0); err == nil {
		t.Fatal("leave on empty group accepted")
	}
	src := rng.New(7)
	p := profile.GenerateRandomProfile(schema, src)
	if err := inc.Join(p); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.ProfileWeighted([]float64{1, 1}); err == nil {
		t.Fatal("weight-count mismatch accepted")
	}
	if _, err := inc.ProfileWeighted([]float64{-1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := inc.ProfileWeighted([]float64{0}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
}
