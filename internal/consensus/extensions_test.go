package consensus

import (
	"math"
	"testing"
	"testing/quick"

	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/rng"
	"grouptravel/internal/vec"
)

func TestMostPleasure(t *testing.T) {
	if got := MostPleasurePreference(paperFamily); got != 1.0 {
		t.Fatalf("most pleasure = %v, want 1.0 (the mother)", got)
	}
}

func TestAverageWithoutMisery(t *testing.T) {
	f := AverageWithoutMisery(0.3)
	// The kid at 0.2 vetoes the museum.
	if got := f(paperFamily); got != 0 {
		t.Fatalf("veto failed: %v", got)
	}
	// Without the kid the average goes through.
	happy := []float64{0.8, 1.0, 0.6}
	if got := f(happy); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("non-vetoed average = %v, want 0.8", got)
	}
}

func TestExtendedMethodsValid(t *testing.T) {
	if len(ExtendedMethods) != 6 {
		t.Fatalf("expected 6 extended methods, got %d", len(ExtendedMethods))
	}
	for _, m := range ExtendedMethods {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestWeightedAveragePreference(t *testing.T) {
	// Organizer (weight 3) at 0.9, member (weight 1) at 0.1:
	// p = 0.75·0.9 + 0.25·0.1 = 0.7.
	got := WeightedAveragePreference([]float64{0.9, 0.1}, []float64{0.75, 0.25})
	if math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("weighted average = %v, want 0.7", got)
	}
}

func TestWeightedPairwiseDisagreement(t *testing.T) {
	// Equal weights must reduce to the unweighted pairwise disagreement.
	vals := []float64{0.8, 1.0, 0.6, 0.2}
	w := []float64{0.25, 0.25, 0.25, 0.25}
	if got, want := WeightedPairwiseDisagreement(vals, w), PairwiseDisagreement(vals); math.Abs(got-want) > 1e-12 {
		t.Fatalf("equal-weight pairwise = %v, want %v", got, want)
	}
	// Up-weighting a deviant pair raises disagreement.
	heavyDeviant := WeightedPairwiseDisagreement([]float64{0, 1, 0.5}, []float64{0.45, 0.45, 0.1})
	lightDeviant := WeightedPairwiseDisagreement([]float64{0, 1, 0.5}, []float64{0.1, 0.1, 0.8})
	if heavyDeviant <= lightDeviant {
		t.Fatalf("weighting the disagreeing pair did not raise d: %v vs %v", heavyDeviant, lightDeviant)
	}
}

func TestWeightedVarianceDisagreement(t *testing.T) {
	vals := []float64{0.8, 1.0, 0.6, 0.2}
	w := []float64{0.25, 0.25, 0.25, 0.25}
	if got, want := WeightedVarianceDisagreement(vals, w), VarianceDisagreement(vals); math.Abs(got-want) > 1e-12 {
		t.Fatalf("equal-weight variance = %v, want %v", got, want)
	}
}

func wtestSchema() *poi.Schema {
	return poi.NewSchema([]string{"h", "x"}, []string{"t", "y"}, []string{"a", "b", "c"}, []string{"a", "b", "c"})
}

func buildFamily(t *testing.T) *profile.Group {
	t.Helper()
	s := wtestSchema()
	mk := func(museum float64) *profile.Profile {
		p := profile.New(s)
		if err := p.SetVector(poi.Attr, vec.Vector{museum, 0.3, 0}); err != nil {
			t.Fatal(err)
		}
		return p
	}
	g, err := profile.NewGroup(s, []*profile.Profile{mk(0.8), mk(1.0), mk(0.6), mk(0.2)})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGroupProfileWeightedEqualsUnweightedAtUniformWeights(t *testing.T) {
	g := buildFamily(t)
	uniform := []float64{1, 1, 1, 1}
	for _, m := range Methods {
		a, err := GroupProfile(g, m)
		if err != nil {
			t.Fatal(err)
		}
		b, err := GroupProfileWeighted(g, m, uniform)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		for _, c := range poi.Categories {
			if !vec.Equal(a.Vector(c), b.Vector(c), 1e-12) {
				t.Fatalf("%s/%s: weighted(1,1,1,1) differs from unweighted: %v vs %v",
					m.Name, c, b.Vector(c), a.Vector(c))
			}
		}
	}
}

func TestGroupProfileWeightedShiftsTowardHeavyMember(t *testing.T) {
	g := buildFamily(t)
	// Weight the kid (0.2 museum preference) heavily: the averaged museum
	// score must fall.
	kidHeavy, err := GroupProfileWeighted(g, AveragePref, []float64{1, 1, 1, 10})
	if err != nil {
		t.Fatal(err)
	}
	motherHeavy, err := GroupProfileWeighted(g, AveragePref, []float64{1, 10, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if kidHeavy.Vector(poi.Attr)[0] >= motherHeavy.Vector(poi.Attr)[0] {
		t.Fatalf("kid-weighted museum %v not below mother-weighted %v",
			kidHeavy.Vector(poi.Attr)[0], motherHeavy.Vector(poi.Attr)[0])
	}
}

func TestGroupProfileWeightedExcludesZeroWeightMembers(t *testing.T) {
	g := buildFamily(t)
	// With the kid excluded, least misery over {0.8, 1.0, 0.6} is 0.6.
	gp, err := GroupProfileWeighted(g, LeastMisery, []float64{1, 1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gp.Vector(poi.Attr)[0]-0.6) > 1e-12 {
		t.Fatalf("least misery without the kid = %v, want 0.6", gp.Vector(poi.Attr)[0])
	}
}

func TestGroupProfileWeightedErrors(t *testing.T) {
	g := buildFamily(t)
	if _, err := GroupProfileWeighted(g, AveragePref, []float64{1, 1}); err == nil {
		t.Fatal("wrong weight count accepted")
	}
	if _, err := GroupProfileWeighted(g, AveragePref, []float64{1, -1, 1, 1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := GroupProfileWeighted(g, AveragePref, []float64{0, 0, 0, 0}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
	noWeighted := Method{Name: "plain", Pref: AveragePreference, W1: 1}
	if _, err := GroupProfileWeighted(g, noWeighted, []float64{1, 1, 1, 1}); err == nil {
		t.Fatal("method without weighted aggregators accepted")
	}
}

func TestWeightedScoreBoundsQuick(t *testing.T) {
	src := rng.New(4)
	g := buildFamily(t)
	f := func(_ uint8) bool {
		w := make([]float64, 4)
		for i := range w {
			w[i] = src.Float64() + 0.01
		}
		for _, m := range ExtendedMethods {
			gp, err := GroupProfileWeighted(g, m, w)
			if err != nil {
				return false
			}
			for _, c := range poi.Categories {
				if !gp.Vector(c).InUnitRange() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMostPleasureVsLeastMiseryOrdering(t *testing.T) {
	g := buildFamily(t)
	mp, err := GroupProfile(g, MostPleasure)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := GroupProfile(g, LeastMisery)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := GroupProfile(g, AveragePref)
	if err != nil {
		t.Fatal(err)
	}
	// min ≤ avg ≤ max, component-wise.
	for _, c := range poi.Categories {
		for j := range mp.Vector(c) {
			if !(lm.Vector(c)[j] <= avg.Vector(c)[j]+1e-12 && avg.Vector(c)[j] <= mp.Vector(c)[j]+1e-12) {
				t.Fatalf("ordering violated at %s[%d]: %v / %v / %v",
					c, j, lm.Vector(c)[j], avg.Vector(c)[j], mp.Vector(c)[j])
			}
		}
	}
}

func TestAvgNoMiseryGroupProfile(t *testing.T) {
	g := buildFamily(t)
	gp, err := GroupProfile(g, AvgNoMisery)
	if err != nil {
		t.Fatal(err)
	}
	// The third attraction component is 0 for everyone — vetoed and zero.
	if gp.Vector(poi.Attr)[2] != 0 {
		t.Fatalf("all-zero component = %v", gp.Vector(poi.Attr)[2])
	}
	// The second component (0.3 for everyone, above threshold) averages.
	if math.Abs(gp.Vector(poi.Attr)[1]-0.3) > 1e-12 {
		t.Fatalf("component = %v, want 0.3", gp.Vector(poi.Attr)[1])
	}
}
