package consensus

import (
	"fmt"
	"math"

	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/vec"
)

// This file extends the paper's four consensus methods with the other
// standard aggregation strategies from the group-recommendation
// literature the paper cites ([6] Amer-Yahia et al. VLDB'09, [17]
// PolyLens, [18] Jameson & Smyth) plus per-member weighting. None of
// these appear in the paper's evaluation; they are provided because a
// downstream user of a group-recommendation library expects them, and the
// consensus-ablation experiment compares them on the paper's synthetic
// setup.

// MostPleasurePreference is p_j = max_u u_j — the happiest member wins
// (the optimistic dual of least misery).
func MostPleasurePreference(values []float64) float64 {
	m := values[0]
	for _, v := range values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// AverageWithoutMisery returns an average-preference aggregator that
// zeroes any component where some member's preference falls below the
// misery threshold — items intolerable to anyone are vetoed, otherwise
// the group averages (Jameson & Smyth's "average without misery").
func AverageWithoutMisery(threshold float64) PreferenceFunc {
	return func(values []float64) float64 {
		for _, v := range values {
			if v < threshold {
				return 0
			}
		}
		return AveragePreference(values)
	}
}

// Extension methods with conventional parameters.
var (
	// MostPleasure: optimistic aggregation, w1 = 1.
	MostPleasure = Method{Name: "most pleasure", Pref: MostPleasurePreference, W1: 1,
		WPref: weightedMax}
	// AvgNoMisery: average without misery at threshold 0.1, w1 = 1.
	AvgNoMisery = Method{Name: "average without misery", Pref: AverageWithoutMisery(0.1), W1: 1,
		WPref: weightedAvgNoMisery(0.1)}
)

// ExtendedMethods lists the paper's four methods followed by the
// extensions, for ablation sweeps.
var ExtendedMethods = append(append([]Method(nil), Methods...), MostPleasure, AvgNoMisery)

// --- weighted aggregators ---
//
// Weights passed to these functions are positive and sum to 1 over the
// supplied values (GroupProfileWeighted normalizes and drops weight-0
// members before calling).

// WeightedAveragePreference is p_j = Σ w_u·u_j.
func WeightedAveragePreference(values, weights []float64) float64 {
	s := 0.0
	for i, v := range values {
		s += weights[i] * v
	}
	return s
}

// weightedMin: a minimum is weight-free over the active members.
func weightedMin(values, _ []float64) float64 { return LeastMiseryPreference(values) }

// weightedMax: a maximum is weight-free over the active members.
func weightedMax(values, _ []float64) float64 { return MostPleasurePreference(values) }

// weightedAvgNoMisery keeps the veto semantics: any active member below
// the threshold zeroes the component, otherwise the weighted average.
func weightedAvgNoMisery(threshold float64) WeightedPreferenceFunc {
	return func(values, weights []float64) float64 {
		for _, v := range values {
			if v < threshold {
				return 0
			}
		}
		return WeightedAveragePreference(values, weights)
	}
}

// WeightedPairwiseDisagreement is
// d_j = Σ_{u<v} (w_u+w_v)·|u_j−v_j| / Σ_{u<v} (w_u+w_v): a pair matters in
// proportion to the combined weight of its members.
func WeightedPairwiseDisagreement(values, weights []float64) float64 {
	num, den := 0.0, 0.0
	for i := 0; i < len(values); i++ {
		for j := i + 1; j < len(values); j++ {
			w := weights[i] + weights[j]
			num += w * math.Abs(values[i]-values[j])
			den += w
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// WeightedVarianceDisagreement is d_j = Σ w_u·(u_j−μ_j)² with the weighted
// mean μ_j = Σ w_u·u_j.
func WeightedVarianceDisagreement(values, weights []float64) float64 {
	mu := WeightedAveragePreference(values, weights)
	s := 0.0
	for i, v := range values {
		d := v - mu
		s += weights[i] * d * d
	}
	return s
}

// GroupProfileWeighted aggregates member profiles with per-member weights
// (e.g. the trip organizer counts double, or children's preferences are
// softened). Weights must be non-negative with a positive sum; they are
// normalized internally, and weight-0 members are excluded entirely
// (including from least-misery minima). The method must declare its
// weighted aggregators (all built-in methods do).
func GroupProfileWeighted(g *profile.Group, m Method, weights []float64) (*profile.Profile, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.WPref == nil {
		return nil, fmt.Errorf("consensus %q: no weighted preference aggregator", m.Name)
	}
	if m.W1 < 1 && m.WDis == nil {
		return nil, fmt.Errorf("consensus %q: w1 < 1 requires a weighted disagreement aggregator", m.Name)
	}
	if len(weights) != g.Size() {
		return nil, fmt.Errorf("consensus: %d weights for %d members", len(weights), g.Size())
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("consensus: invalid weight %v for member %d", w, i)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("consensus: all member weights are zero")
	}

	// Active members and their normalized weights.
	var activeIdx []int
	var wts []float64
	for i, w := range weights {
		if w > 0 {
			activeIdx = append(activeIdx, i)
			wts = append(wts, w/total)
		}
	}

	out := profile.New(g.Schema())
	values := make([]float64, len(activeIdx))
	for _, c := range poi.Categories {
		dim := g.Schema().Dim(c)
		gv := make(vec.Vector, dim)
		for j := 0; j < dim; j++ {
			for vi, mi := range activeIdx {
				values[vi] = g.Members[mi].Vector(c)[j]
			}
			p := m.WPref(values, wts)
			gj := p
			if m.W1 < 1 {
				d := m.WDis(values, wts)
				gj = m.W1*p + (1-m.W1)*(1-d)
			}
			gv[j] = clamp01(gj)
		}
		if err := out.SetVector(c, gv); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
