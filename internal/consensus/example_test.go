package consensus_test

import (
	"fmt"

	"grouptravel/internal/consensus"
	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/vec"
)

// The §2.3 worked example: a family of four rates museums 0.8, 1.0, 0.6
// and 0.2 (father, mother, teenager, kid). The four consensus methods
// aggregate those preferences very differently.
func Example() {
	family := []float64{0.8, 1.0, 0.6, 0.2}
	fmt.Printf("average preference:   %.2f\n", consensus.AveragePref.Score(family))
	fmt.Printf("least misery:         %.2f\n", consensus.LeastMisery.Score(family))
	fmt.Printf("pairwise consensus:   %.2f\n", consensus.PairwiseDis.Score(family))
	fmt.Printf("variance consensus:   %.2f\n", consensus.VarianceDis.Score(family))
	// Output:
	// average preference:   0.65
	// least misery:         0.20
	// pairwise consensus:   0.61
	// variance consensus:   0.78
}

// GroupProfile aggregates whole profiles, category by category.
func ExampleGroupProfile() {
	schema := poi.NewSchema(
		[]string{"hotel", "hostel"},
		[]string{"metro", "bike"},
		[]string{"japanese", "french"},
		[]string{"museum", "park"},
	)
	alice := profile.New(schema)
	_ = alice.SetVector(poi.Attr, vec.Vector{0.9, 0.1}) // museums
	bob := profile.New(schema)
	_ = bob.SetVector(poi.Attr, vec.Vector{0.2, 0.8}) // parks

	g, _ := profile.NewGroup(schema, []*profile.Profile{alice, bob})
	gp, _ := consensus.GroupProfile(g, consensus.AveragePref)
	fmt.Printf("museum %.2f, park %.2f\n", gp.Vector(poi.Attr)[0], gp.Vector(poi.Attr)[1])
	// Output:
	// museum 0.55, park 0.45
}

// Weighted aggregation lets the trip organizer count double.
func ExampleGroupProfileWeighted() {
	schema := poi.NewSchema(
		[]string{"hotel"}, []string{"metro"}, []string{"t0"}, []string{"museum", "park"},
	)
	organizer := profile.New(schema)
	_ = organizer.SetVector(poi.Attr, vec.Vector{1, 0})
	friend := profile.New(schema)
	_ = friend.SetVector(poi.Attr, vec.Vector{0, 1})

	g, _ := profile.NewGroup(schema, []*profile.Profile{organizer, friend})
	gp, _ := consensus.GroupProfileWeighted(g, consensus.AveragePref, []float64{3, 1})
	fmt.Printf("museum %.2f, park %.2f\n", gp.Vector(poi.Attr)[0], gp.Vector(poi.Attr)[1])
	// Output:
	// museum 0.75, park 0.25
}
