// Package consensus implements the group-consensus functions of §2.3: the
// aggregation of member profiles into one group profile
//
//	g_j = w1·p_j + w2·(1 − d_j),   w1 + w2 = 1
//
// where p_j is the group preference (average or least-misery) and d_j the
// group disagreement (average pairwise or variance) for the j-th POI type
// of a category. The four named methods of §4.1 are provided, plus the
// building blocks to assemble custom ones.
package consensus

import (
	"fmt"
	"math"

	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/vec"
)

// PreferenceFunc aggregates the j-th components of the member vectors into
// a group preference p_j ∈ [0,1]. The input slice holds one value per
// member and is never empty.
type PreferenceFunc func(values []float64) float64

// DisagreementFunc computes the group disagreement d_j ∈ [0,1] over the
// j-th components of the member vectors.
type DisagreementFunc func(values []float64) float64

// AveragePreference is p_j = (1/|G|) Σ_u u_j.
func AveragePreference(values []float64) float64 {
	s := 0.0
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// LeastMiseryPreference is p_j = min_u u_j — the most unhappy member
// dominates (the kid in the paper's museum example).
func LeastMiseryPreference(values []float64) float64 {
	m := values[0]
	for _, v := range values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// PairwiseDisagreement is d_j = 2/(|G|(|G|−1)) Σ_{u<v} |u_j − v_j|.
// Groups of one member have zero disagreement by definition.
//
// The sum is folded as per-member subtotals t_i = Σ_{j>i} |u_i − u_j|,
// then Σ_i t_i. This is the exact fold Incremental maintains online (a
// join appends terms to each existing subtotal), which is what makes the
// incremental profile bit-identical to this full recompute: floating-point
// addition is not associative, so the reference and the incremental path
// must share one summation tree.
func PairwiseDisagreement(values []float64) float64 {
	n := len(values)
	if n < 2 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		ti := 0.0
		for j := i + 1; j < n; j++ {
			ti += math.Abs(values[i] - values[j])
		}
		sum += ti
	}
	return 2 * sum / (float64(n) * float64(n-1))
}

// VarianceDisagreement is d_j = (1/|G|) Σ_u (u_j − μ_j)².
func VarianceDisagreement(values []float64) float64 {
	n := float64(len(values))
	mu := 0.0
	for _, v := range values {
		mu += v
	}
	mu /= n
	sum := 0.0
	for _, v := range values {
		d := v - mu
		sum += d * d
	}
	return sum / n
}

// WeightedPreferenceFunc aggregates member values under per-member
// weights (normalized to sum 1 over the values passed in). Optional on a
// Method; required only for GroupProfileWeighted.
type WeightedPreferenceFunc func(values, weights []float64) float64

// WeightedDisagreementFunc is the weighted counterpart of a
// DisagreementFunc.
type WeightedDisagreementFunc func(values, weights []float64) float64

// Method is a complete consensus function: a preference aggregator, an
// optional disagreement aggregator, and the preference weight w1 (w2 is
// 1−w1). When W1 == 1 the disagreement term vanishes and Dis may be nil.
// WPref/WDis are the weighted generalizations used by
// GroupProfileWeighted; they may be nil for unweighted-only methods.
type Method struct {
	Name  string
	Pref  PreferenceFunc
	Dis   DisagreementFunc
	W1    float64
	WPref WeightedPreferenceFunc
	WDis  WeightedDisagreementFunc

	// inc marks which aggregators Incremental can maintain online.
	// Custom methods leave it zero and still work — Incremental falls
	// back to running the method's own functions over its cached member
	// columns, which is bit-identical by construction.
	inc incHints
}

// incHints flags the built-in aggregators with cheap online forms.
type incHints struct {
	prefixSum bool // Pref is AveragePreference: running prefix sums, O(1) reads
	pairwise  bool // Dis is PairwiseDisagreement: per-member subtotals, O(n) reads
}

// The four methods evaluated in the paper (§4.1). The short display names
// follow Table 2's column headers.
var (
	// AveragePref: average preference only (w1 = 1).
	AveragePref = Method{Name: "average preference", Pref: AveragePreference, W1: 1,
		WPref: WeightedAveragePreference, inc: incHints{prefixSum: true}}
	// LeastMisery: least-misery preference only (w1 = 1).
	LeastMisery = Method{Name: "least misery", Pref: LeastMiseryPreference, W1: 1,
		WPref: weightedMin}
	// PairwiseDis: average preference + average pairwise disagreement, w1 = 0.5.
	PairwiseDis = Method{Name: "pair-wise disagreement", Pref: AveragePreference, Dis: PairwiseDisagreement, W1: 0.5,
		WPref: WeightedAveragePreference, WDis: WeightedPairwiseDisagreement,
		inc: incHints{prefixSum: true, pairwise: true}}
	// VarianceDis: average preference + disagreement variance, w1 = 0.5.
	VarianceDis = Method{Name: "disagreement variance", Pref: AveragePreference, Dis: VarianceDisagreement, W1: 0.5,
		WPref: WeightedAveragePreference, WDis: WeightedVarianceDisagreement,
		inc: incHints{prefixSum: true}}
)

// Methods lists the paper's four consensus methods in Table 2 column order.
var Methods = []Method{AveragePref, LeastMisery, PairwiseDis, VarianceDis}

// Validate checks the method's configuration.
func (m Method) Validate() error {
	if m.Pref == nil {
		return fmt.Errorf("consensus %q: nil preference function", m.Name)
	}
	if m.W1 < 0 || m.W1 > 1 {
		return fmt.Errorf("consensus %q: w1 = %v outside [0,1]", m.Name, m.W1)
	}
	if m.W1 < 1 && m.Dis == nil {
		return fmt.Errorf("consensus %q: w1 = %v < 1 requires a disagreement function", m.Name, m.W1)
	}
	return nil
}

// Score combines one component's member values into the consensus score
// g_j = w1·p_j + w2·(1−d_j).
func (m Method) Score(values []float64) float64 {
	p := m.Pref(values)
	if m.W1 >= 1 {
		return p
	}
	d := 0.0
	if m.Dis != nil {
		d = m.Dis(values)
	}
	g := m.W1*p + (1-m.W1)*(1-d)
	// Floating-point guard; mathematically g ∈ [0,1] already.
	if g < 0 {
		return 0
	}
	if g > 1 {
		return 1
	}
	return g
}

// GroupProfile aggregates the member profiles of g into a single group
// profile using the method — one consensus score per POI type per category
// (§2.3).
func GroupProfile(g *profile.Group, m Method) (*profile.Profile, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	out := profile.New(g.Schema())
	values := make([]float64, g.Size())
	for _, c := range poi.Categories {
		dim := g.Schema().Dim(c)
		gv := make(vec.Vector, dim)
		for j := 0; j < dim; j++ {
			for i, member := range g.Members {
				values[i] = member.Vector(c)[j]
			}
			gv[j] = m.Score(values)
		}
		if err := out.SetVector(c, gv); err != nil {
			return nil, err
		}
	}
	return out, nil
}
