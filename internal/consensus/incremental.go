package consensus

import (
	"fmt"
	"math"

	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/vec"
)

// Incremental maintains a group's consensus profile under member joins,
// leaves and per-request weight changes without recomputing from the
// member profiles each time. It stores the member values column-wise
// (one slice per POI type per category) plus, for the built-in
// aggregators, online summaries:
//
//   - prefix sums for AveragePreference — a join extends the running
//     fold, so the group average reads in O(1) per component;
//   - per-member pairwise subtotals t_i = Σ_{j>i} |u_i − u_j| for
//     PairwiseDisagreement — a join appends one term to each existing
//     subtotal (O(n) instead of the O(n²) full recompute), a leave only
//     recomputes the subtotals of members ordered before the leaver.
//
// Bit-identity with GroupProfile is a hard guarantee, not an
// approximation: floating-point addition is non-associative, so the
// reference PairwiseDisagreement is itself folded as Σ_i t_i — the exact
// summation tree the online subtotals maintain — and the prefix sums
// replay AveragePreference's left-to-right fold. Methods without hints
// (custom aggregators, least-misery, most-pleasure) run their own
// functions over the cached columns, which holds the same values in the
// same member order as GroupProfile's gathered slices. The equivalence
// test pins Profile() reflect.DeepEqual-identical to GroupProfile under
// randomized join/leave/weight sequences.
//
// An Incremental is not safe for concurrent use; callers serialize
// access (the server holds its per-group mutex).
type Incremental struct {
	method Method
	schema *poi.Schema
	n      int

	// cols[c][j][i] is member i's value for component j of category c.
	cols [poi.NumCategories][][]float64
	// pre[c][j][i] is the running sum of cols[c][j][:i+1] (prefixSum hint).
	pre [poi.NumCategories][][]float64
	// sub[c][j][i] is t_i = Σ_{k>i} |cols[c][j][i] − cols[c][j][k]|
	// (pairwise hint).
	sub [poi.NumCategories][][]float64

	// Scratch for the weighted path, reused across calls.
	activeIdx []int
	wts       []float64
	gather    []float64
}

// NewIncremental creates an empty incremental aggregator for the method.
func NewIncremental(schema *poi.Schema, m Method) (*Incremental, error) {
	if schema == nil {
		return nil, fmt.Errorf("consensus: nil schema")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	inc := &Incremental{method: m, schema: schema}
	for _, c := range poi.Categories {
		dim := schema.Dim(c)
		inc.cols[c] = make([][]float64, dim)
		if m.inc.prefixSum {
			inc.pre[c] = make([][]float64, dim)
		}
		if m.inc.pairwise {
			inc.sub[c] = make([][]float64, dim)
		}
	}
	return inc, nil
}

// Size returns the current member count.
func (inc *Incremental) Size() int { return inc.n }

// Join adds a member. O(n·dim) for pairwise methods, O(dim) otherwise.
func (inc *Incremental) Join(p *profile.Profile) error {
	if p == nil {
		return fmt.Errorf("consensus: nil member profile")
	}
	for _, c := range poi.Categories {
		if len(p.Vector(c)) != inc.schema.Dim(c) {
			return fmt.Errorf("consensus: member has dim %d for %s, schema wants %d",
				len(p.Vector(c)), c, inc.schema.Dim(c))
		}
	}
	for _, c := range poi.Categories {
		v := p.Vector(c)
		cols, pre, sub := inc.cols[c], inc.pre[c], inc.sub[c]
		for j, x := range v {
			col := cols[j]
			if sub != nil {
				// New terms |u_i − x| land at the end of each t_i fold,
				// exactly where the reference's inner loop adds them.
				s := sub[j]
				for i, u := range col {
					s[i] += math.Abs(u - x)
				}
				sub[j] = append(s, 0)
			}
			if pre != nil {
				run := 0.0
				if inc.n > 0 {
					run = pre[j][inc.n-1]
				}
				run += x
				pre[j] = append(pre[j], run)
			}
			cols[j] = append(col, x)
		}
	}
	inc.n++
	return nil
}

// Leave removes member i (by join order). Subtotals of members ordered
// after i are untouched — their pairwise terms never involved member i.
func (inc *Incremental) Leave(i int) error {
	if i < 0 || i >= inc.n {
		return fmt.Errorf("consensus: leave index %d outside group of %d", i, inc.n)
	}
	for _, c := range poi.Categories {
		cols, pre, sub := inc.cols[c], inc.pre[c], inc.sub[c]
		for j := range cols {
			col := cols[j]
			copy(col[i:], col[i+1:])
			col = col[:len(col)-1]
			cols[j] = col
			if pre != nil {
				p := pre[j][:len(col)]
				run := 0.0
				if i > 0 {
					run = p[i-1]
				}
				for k := i; k < len(col); k++ {
					run += col[k]
					p[k] = run
				}
				pre[j] = p
			}
			if sub != nil {
				s := sub[j]
				copy(s[i:], s[i+1:])
				s = s[:len(col)]
				for t := 0; t < i; t++ {
					ti := 0.0
					for k := t + 1; k < len(col); k++ {
						ti += math.Abs(col[t] - col[k])
					}
					s[t] = ti
				}
				sub[j] = s
			}
		}
	}
	inc.n--
	return nil
}

// Profile materializes the unweighted consensus profile, bit-identical to
// GroupProfile over the current members.
func (inc *Incremental) Profile() (*profile.Profile, error) {
	if inc.n == 0 {
		return nil, fmt.Errorf("consensus: empty group")
	}
	out := profile.New(inc.schema)
	for _, c := range poi.Categories {
		dim := inc.schema.Dim(c)
		gv := make(vec.Vector, dim)
		for j := 0; j < dim; j++ {
			gv[j] = inc.score(c, j)
		}
		if err := out.SetVector(c, gv); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// score mirrors Method.Score over the cached column, taking the online
// fast paths where the hints allow.
func (inc *Incremental) score(c poi.Category, j int) float64 {
	m := &inc.method
	col := inc.cols[c][j]
	var p float64
	if m.inc.prefixSum {
		p = inc.pre[c][j][inc.n-1] / float64(inc.n)
	} else {
		p = m.Pref(col)
	}
	if m.W1 >= 1 {
		return p
	}
	d := 0.0
	switch {
	case m.inc.pairwise:
		if inc.n >= 2 {
			sum := 0.0
			for _, t := range inc.sub[c][j] {
				sum += t
			}
			d = 2 * sum / (float64(inc.n) * float64(inc.n-1))
		}
	case m.Dis != nil:
		d = m.Dis(col)
	}
	g := m.W1*p + (1-m.W1)*(1-d)
	if g < 0 {
		return 0
	}
	if g > 1 {
		return 1
	}
	return g
}

// ProfileWeighted materializes the weighted consensus profile,
// bit-identical to GroupProfileWeighted over the current members: same
// validation, same weight normalization, same aggregator calls over the
// same value order. Repeated calls reuse internal scratch — the member
// profiles are never re-walked and nothing but the output allocates.
func (inc *Incremental) ProfileWeighted(weights []float64) (*profile.Profile, error) {
	m := inc.method
	if m.WPref == nil {
		return nil, fmt.Errorf("consensus %q: no weighted preference aggregator", m.Name)
	}
	if m.W1 < 1 && m.WDis == nil {
		return nil, fmt.Errorf("consensus %q: w1 < 1 requires a weighted disagreement aggregator", m.Name)
	}
	if len(weights) != inc.n {
		return nil, fmt.Errorf("consensus: %d weights for %d members", len(weights), inc.n)
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("consensus: invalid weight %v for member %d", w, i)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("consensus: all member weights are zero")
	}

	inc.activeIdx = inc.activeIdx[:0]
	inc.wts = inc.wts[:0]
	for i, w := range weights {
		if w > 0 {
			inc.activeIdx = append(inc.activeIdx, i)
			inc.wts = append(inc.wts, w/total)
		}
	}
	if cap(inc.gather) < len(inc.activeIdx) {
		inc.gather = make([]float64, len(inc.activeIdx))
	}
	values := inc.gather[:len(inc.activeIdx)]

	out := profile.New(inc.schema)
	for _, c := range poi.Categories {
		dim := inc.schema.Dim(c)
		gv := make(vec.Vector, dim)
		for j := 0; j < dim; j++ {
			col := inc.cols[c][j]
			for vi, mi := range inc.activeIdx {
				values[vi] = col[mi]
			}
			p := m.WPref(values, inc.wts)
			gj := p
			if m.W1 < 1 {
				d := m.WDis(values, inc.wts)
				gj = m.W1*p + (1-m.W1)*(1-d)
			}
			gv[j] = clamp01(gj)
		}
		if err := out.SetVector(c, gv); err != nil {
			return nil, err
		}
	}
	return out, nil
}
