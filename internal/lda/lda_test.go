package lda

import (
	"math"
	"strings"
	"testing"

	"grouptravel/internal/rng"
	"grouptravel/internal/tags"
)

// syntheticCorpus plants documents drawn from the restaurant themes so the
// tests can check topic recovery against known ground truth — the same way
// the dataset generator produces POI tags.
func syntheticCorpus(nDocs int, seed int64) (*tags.Corpus, []int) {
	src := rng.New(seed)
	c := tags.NewCorpus()
	truth := make([]int, nDocs)
	themes := tags.RestaurantThemes
	for d := 0; d < nDocs; d++ {
		th := src.Intn(len(themes))
		truth[d] = th
		words := make([]string, 0, 12)
		for i := 0; i < 12; i++ {
			// 85% in-theme words, 15% noise from a random other theme.
			pool := themes[th].Words
			if src.Bool(0.15) {
				pool = themes[src.Intn(len(themes))].Words
			}
			words = append(words, pool[src.Intn(len(pool))])
		}
		c.AddText(strings.Join(words, " "))
	}
	return c, truth
}

func trainSmall(t *testing.T) (*Model, *tags.Corpus, []int) {
	t.Helper()
	corpus, truth := syntheticCorpus(150, 42)
	cfg := DefaultConfig(len(tags.RestaurantThemes))
	cfg.Iterations = 150
	m, err := Train(corpus, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return m, corpus, truth
}

func TestThetaIsDistribution(t *testing.T) {
	m, corpus, _ := trainSmall(t)
	for d := 0; d < corpus.Len(); d++ {
		theta := m.Theta(d)
		sum := 0.0
		for _, p := range theta {
			if p < 0 || p > 1 {
				t.Fatalf("doc %d: theta component %v outside [0,1]", d, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("doc %d: theta sums to %v", d, sum)
		}
	}
}

func TestPhiIsDistribution(t *testing.T) {
	m, _, _ := trainSmall(t)
	for k := 0; k < m.Topics(); k++ {
		phi := m.Phi(k)
		sum := 0.0
		for _, p := range phi {
			if p < 0 {
				t.Fatalf("topic %d: negative phi %v", k, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("topic %d: phi sums to %v", k, sum)
		}
	}
}

// TestTopicRecovery checks that documents planted from the same theme end
// up with similar dominant topics — the property GroupTravel's
// personalization depends on.
func TestTopicRecovery(t *testing.T) {
	m, corpus, truth := trainSmall(t)
	// Map each ground-truth theme to the dominant LDA topic of its docs.
	votes := make(map[int]map[int]int)
	for d := 0; d < corpus.Len(); d++ {
		theta := m.Theta(d)
		best := 0
		for k, p := range theta {
			if p > theta[best] {
				best = k
			}
		}
		if votes[truth[d]] == nil {
			votes[truth[d]] = make(map[int]int)
		}
		votes[truth[d]][best]++
	}
	// Purity: the majority topic of each theme should cover most of its docs.
	agree, total := 0, 0
	for _, v := range votes {
		bestCount, sum := 0, 0
		for _, n := range v {
			sum += n
			if n > bestCount {
				bestCount = n
			}
		}
		agree += bestCount
		total += sum
	}
	purity := float64(agree) / float64(total)
	if purity < 0.7 {
		t.Fatalf("topic purity %v too low — LDA failed to recover planted themes", purity)
	}
}

func TestPerplexityImproves(t *testing.T) {
	corpus, _ := syntheticCorpus(150, 7)
	cfg := DefaultConfig(6)
	cfg.Iterations = 1
	early, err := Train(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Iterations = 150
	late, err := Train(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pe, pl := early.Perplexity(), late.Perplexity()
	if pl >= pe {
		t.Fatalf("perplexity did not improve: 1 iter = %v, 150 iters = %v", pe, pl)
	}
}

func TestDeterministicTraining(t *testing.T) {
	corpus, _ := syntheticCorpus(60, 9)
	cfg := DefaultConfig(4)
	cfg.Iterations = 40
	m1, err := Train(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus2, _ := syntheticCorpus(60, 9)
	m2, err := Train(corpus2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < corpus.Len(); d++ {
		t1, t2 := m1.Theta(d), m2.Theta(d)
		for k := range t1 {
			if t1[k] != t2[k] {
				t.Fatalf("same seed produced different theta at doc %d topic %d", d, k)
			}
		}
	}
}

func TestTopWords(t *testing.T) {
	m, _, _ := trainSmall(t)
	allTheme := map[string]bool{}
	for _, w := range tags.ThemeWords(tags.RestaurantThemes) {
		allTheme[w] = true
	}
	for k := 0; k < m.Topics(); k++ {
		top := m.TopWords(k, 5)
		if len(top) != 5 {
			t.Fatalf("topic %d: got %d top words", k, len(top))
		}
		for _, w := range top {
			if !allTheme[w] {
				t.Fatalf("topic %d: top word %q not in any planted theme", k, w)
			}
		}
	}
}

func TestTopWordsClampsN(t *testing.T) {
	m, _, _ := trainSmall(t)
	top := m.TopWords(0, 1<<20)
	if len(top) == 0 {
		t.Fatal("TopWords with huge n returned nothing")
	}
}

func TestInferMatchesTrainedTheme(t *testing.T) {
	m, corpus, _ := trainSmall(t)
	// A pure-japanese held-out doc should infer the same dominant topic as
	// a pure-japanese training construction.
	var doc tags.Document
	for _, w := range []string{"sushi", "ramen", "sake", "japanese", "tempura", "sushi", "wasabi", "bento"} {
		if id, ok := corpus.Vocab.Lookup(w); ok {
			doc = append(doc, id)
		}
	}
	if len(doc) < 4 {
		t.Fatal("test setup: japanese words missing from vocabulary")
	}
	theta := m.Infer(doc, 50, 3)
	sum := 0.0
	best := 0
	for k, p := range theta {
		sum += p
		if p > theta[best] {
			best = k
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("inferred theta sums to %v", sum)
	}
	// The dominant inferred topic's top words should include japanese terms.
	top := strings.Join(m.TopWords(best, 10), " ")
	if !strings.Contains(top, "sushi") && !strings.Contains(top, "japanese") && !strings.Contains(top, "ramen") {
		t.Fatalf("inferred topic %d top words %q do not look japanese", best, top)
	}
}

func TestTrainErrors(t *testing.T) {
	corpus, _ := syntheticCorpus(10, 1)
	cases := []Config{
		{Topics: 0, Alpha: 1, Beta: 1, Iterations: 10},
		{Topics: 3, Alpha: 0, Beta: 1, Iterations: 10},
		{Topics: 3, Alpha: 1, Beta: -1, Iterations: 10},
		{Topics: 3, Alpha: 1, Beta: 1, Iterations: 0},
	}
	for i, cfg := range cases {
		if _, err := Train(corpus, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := Train(nil, DefaultConfig(3)); err == nil {
		t.Error("nil corpus accepted")
	}
	if _, err := Train(tags.NewCorpus(), DefaultConfig(3)); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestCoherenceFavorsTrainedTopics(t *testing.T) {
	// The coherence of trained topics must beat a deliberately broken
	// model (1 Gibbs sweep from random init) on the same corpus.
	corpus, _ := syntheticCorpus(150, 17)
	good, err := Train(corpus, Config{Topics: 6, Alpha: 2, Beta: 0.01, Iterations: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	corpus2, _ := syntheticCorpus(150, 17)
	bad, err := Train(corpus2, Config{Topics: 6, Alpha: 2, Beta: 0.01, Iterations: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	meanCoherence := func(m *Model) float64 {
		s := 0.0
		for k := 0; k < m.Topics(); k++ {
			s += m.Coherence(k, 6)
		}
		return s / float64(m.Topics())
	}
	g, b := meanCoherence(good), meanCoherence(bad)
	if g <= b {
		t.Fatalf("trained coherence %v not above 1-sweep coherence %v", g, b)
	}
}

func TestEmptyDocumentGetsUniformPrior(t *testing.T) {
	c := tags.NewCorpus()
	c.AddText("sushi ramen sake")
	c.AddText("") // POI with no tags
	cfg := DefaultConfig(3)
	cfg.Iterations = 20
	m, err := Train(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	theta := m.Theta(1)
	for k := 1; k < len(theta); k++ {
		if math.Abs(theta[k]-theta[0]) > 1e-12 {
			t.Fatalf("empty doc theta not uniform: %v", theta)
		}
	}
}
