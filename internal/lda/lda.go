// Package lda implements Latent Dirichlet Allocation [Blei, Ng, Jordan — the
// paper's reference 19] with a collapsed Gibbs sampler, from scratch on the
// standard library.
//
// GroupTravel applies LDA to the Foursquare tags of restaurants and
// attractions to identify latent topics ("art gallery, museum, library",
// "Japanese, sushi", ...). The per-document topic distribution θ becomes the
// item vector ®i of each restaurant/attraction (§3.2), and user ratings of
// the topics populate the restaurant/attraction entries of user profiles
// (§2.2).
package lda

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"grouptravel/internal/rng"
	"grouptravel/internal/tags"
)

// Config controls a Model. The zero value is not usable; see DefaultConfig.
type Config struct {
	Topics     int     // K, number of latent topics
	Alpha      float64 // symmetric Dirichlet prior on document-topic mixtures
	Beta       float64 // symmetric Dirichlet prior on topic-word distributions
	Iterations int     // Gibbs sweeps over the corpus
	Seed       int64   // RNG seed — training is fully deterministic
}

// DefaultConfig returns the configuration used by the reproduction: the
// paper's example topics suggest on the order of half a dozen themes per
// category. The document-topic prior is deliberately small: POI tag
// documents are short (a dozen tokens) and single-theme ("Japanese,
// sushi"), so the classic 50/K heuristic — tuned for long multi-topic
// documents — would swamp the counts and flatten every θ toward uniform,
// destroying the contrast the personalization term needs.
func DefaultConfig(topics int) Config {
	return Config{
		Topics:     topics,
		Alpha:      2.0,
		Beta:       0.01,
		Iterations: 200,
		Seed:       1,
	}
}

// Model is a trained LDA model over a corpus.
type Model struct {
	cfg    Config
	corpus *tags.Corpus

	// Collapsed Gibbs state.
	z   [][]int // z[d][pos] = topic of token pos in doc d
	ndk [][]int // ndk[d][k] = tokens in doc d assigned to topic k
	nkw [][]int // nkw[k][w] = tokens of word w assigned to topic k
	nk  []int   // nk[k]     = total tokens assigned to topic k

	trained bool
}

// Train fits LDA on the corpus with collapsed Gibbs sampling and returns
// the model. It errors on degenerate inputs rather than producing NaNs.
func Train(corpus *tags.Corpus, cfg Config) (*Model, error) {
	switch {
	case corpus == nil || corpus.Len() == 0:
		return nil, errors.New("lda: empty corpus")
	case cfg.Topics < 1:
		return nil, fmt.Errorf("lda: need at least 1 topic, got %d", cfg.Topics)
	case cfg.Alpha <= 0 || cfg.Beta <= 0:
		return nil, fmt.Errorf("lda: priors must be positive (alpha=%v beta=%v)", cfg.Alpha, cfg.Beta)
	case cfg.Iterations < 1:
		return nil, fmt.Errorf("lda: need at least 1 iteration, got %d", cfg.Iterations)
	case corpus.Vocab.Len() == 0:
		return nil, errors.New("lda: empty vocabulary")
	}

	m := &Model{cfg: cfg, corpus: corpus}
	D, K, W := corpus.Len(), cfg.Topics, corpus.Vocab.Len()
	src := rng.New(cfg.Seed)

	m.z = make([][]int, D)
	m.ndk = make([][]int, D)
	m.nkw = make([][]int, K)
	m.nk = make([]int, K)
	for k := 0; k < K; k++ {
		m.nkw[k] = make([]int, W)
	}
	// Random initialization.
	for d, doc := range corpus.Docs {
		m.z[d] = make([]int, len(doc))
		m.ndk[d] = make([]int, K)
		for pos, w := range doc {
			k := src.Intn(K)
			m.z[d][pos] = k
			m.ndk[d][k]++
			m.nkw[k][w]++
			m.nk[k]++
		}
	}

	probs := make([]float64, K)
	for it := 0; it < cfg.Iterations; it++ {
		for d, doc := range corpus.Docs {
			for pos, w := range doc {
				old := m.z[d][pos]
				m.ndk[d][old]--
				m.nkw[old][w]--
				m.nk[old]--
				// Full conditional p(z=k | rest) ∝
				//   (ndk + α) · (nkw + β) / (nk + Wβ)
				for k := 0; k < K; k++ {
					probs[k] = (float64(m.ndk[d][k]) + cfg.Alpha) *
						(float64(m.nkw[k][w]) + cfg.Beta) /
						(float64(m.nk[k]) + float64(W)*cfg.Beta)
				}
				kNew := src.WeightedIndex(probs)
				m.z[d][pos] = kNew
				m.ndk[d][kNew]++
				m.nkw[kNew][w]++
				m.nk[kNew]++
			}
		}
	}
	m.trained = true
	return m, nil
}

// Topics returns K.
func (m *Model) Topics() int { return m.cfg.Topics }

// Theta returns the topic distribution of document d (the paper's item
// vector for restaurants/attractions). The distribution is the smoothed
// posterior mean; it always sums to 1, even for empty documents (which get
// the uniform prior).
func (m *Model) Theta(d int) []float64 {
	K := m.cfg.Topics
	doc := m.corpus.Docs[d]
	theta := make([]float64, K)
	denom := float64(len(doc)) + float64(K)*m.cfg.Alpha
	for k := 0; k < K; k++ {
		theta[k] = (float64(m.ndk[d][k]) + m.cfg.Alpha) / denom
	}
	return theta
}

// Phi returns the word distribution of topic k.
func (m *Model) Phi(k int) []float64 {
	W := m.corpus.Vocab.Len()
	phi := make([]float64, W)
	denom := float64(m.nk[k]) + float64(W)*m.cfg.Beta
	for w := 0; w < W; w++ {
		phi[w] = (float64(m.nkw[k][w]) + m.cfg.Beta) / denom
	}
	return phi
}

// TopWords returns the n highest-probability words of topic k — the
// "representative tags" shown to users when rating latent topics (§2.2).
func (m *Model) TopWords(k, n int) []string {
	phi := m.Phi(k)
	idx := make([]int, len(phi))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if phi[idx[a]] != phi[idx[b]] {
			return phi[idx[a]] > phi[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if n > len(idx) {
		n = len(idx)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = m.corpus.Vocab.Word(idx[i])
	}
	return out
}

// VocabLookup resolves a word in the training vocabulary, returning its id
// and whether it is known. Needed by callers that score topics against
// external word lists (e.g. theme alignment in the dataset generator).
func (m *Model) VocabLookup(w string) (int, bool) {
	return m.corpus.Vocab.Lookup(w)
}

// Infer estimates the topic distribution of a held-out document (word ids
// into the training vocabulary; unknown ids are skipped by the caller) with
// a short Gibbs chain against the frozen topic-word counts. Used when new
// POIs are added to a city after training.
func (m *Model) Infer(doc tags.Document, iterations int, seed int64) []float64 {
	K, W := m.cfg.Topics, m.corpus.Vocab.Len()
	src := rng.New(seed)
	z := make([]int, len(doc))
	ndk := make([]int, K)
	for pos := range doc {
		k := src.Intn(K)
		z[pos] = k
		ndk[k]++
	}
	probs := make([]float64, K)
	for it := 0; it < iterations; it++ {
		for pos, w := range doc {
			if w < 0 || w >= W {
				continue
			}
			old := z[pos]
			ndk[old]--
			for k := 0; k < K; k++ {
				probs[k] = (float64(ndk[k]) + m.cfg.Alpha) *
					(float64(m.nkw[k][w]) + m.cfg.Beta) /
					(float64(m.nk[k]) + float64(W)*m.cfg.Beta)
			}
			kNew := src.WeightedIndex(probs)
			z[pos] = kNew
			ndk[kNew]++
		}
	}
	theta := make([]float64, K)
	denom := float64(len(doc)) + float64(K)*m.cfg.Alpha
	for k := 0; k < K; k++ {
		theta[k] = (float64(ndk[k]) + m.cfg.Alpha) / denom
	}
	return theta
}

// Coherence returns the UMass topic-coherence score of topic k over its
// topN words: Σ_{i<j} log((D(w_i, w_j) + 1) / D(w_j)) where D counts
// documents containing the word (pair). Higher (closer to 0) is better;
// dataset tests use it to verify recovered topics are semantically tight.
func (m *Model) Coherence(k, topN int) float64 {
	top := m.topWordIDs(k, topN)
	// Document frequencies over the training corpus.
	docHas := func(d int, w int) bool {
		for _, t := range m.corpus.Docs[d] {
			if t == w {
				return true
			}
		}
		return false
	}
	score := 0.0
	for i := 1; i < len(top); i++ {
		for j := 0; j < i; j++ {
			dj, dij := 0, 0
			for d := range m.corpus.Docs {
				hasJ := docHas(d, top[j])
				if hasJ {
					dj++
					if docHas(d, top[i]) {
						dij++
					}
				}
			}
			if dj == 0 {
				continue
			}
			score += math.Log((float64(dij) + 1) / float64(dj))
		}
	}
	return score
}

// topWordIDs returns the ids of the n highest-probability words of topic k.
func (m *Model) topWordIDs(k, n int) []int {
	phi := m.Phi(k)
	idx := make([]int, len(phi))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if phi[idx[a]] != phi[idx[b]] {
			return phi[idx[a]] > phi[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if n > len(idx) {
		n = len(idx)
	}
	return idx[:n]
}

// Perplexity returns the per-token perplexity of the training corpus under
// the fitted model. Lower is better; used in tests to verify the sampler
// actually improves over its random initialization.
func (m *Model) Perplexity() float64 {
	K := m.cfg.Topics
	phis := make([][]float64, K)
	for k := 0; k < K; k++ {
		phis[k] = m.Phi(k)
	}
	logLik, tokens := 0.0, 0
	for d, doc := range m.corpus.Docs {
		theta := m.Theta(d)
		for _, w := range doc {
			p := 0.0
			for k := 0; k < K; k++ {
				p += theta[k] * phis[k][w]
			}
			if p > 0 {
				logLik += math.Log(p)
			}
			tokens++
		}
	}
	if tokens == 0 {
		return math.Inf(1)
	}
	return math.Exp(-logLik / float64(tokens))
}
