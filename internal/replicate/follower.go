package replicate

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"grouptravel/internal/store"
)

// Target is what a Follower replicates into — implemented by the server
// layer over its per-city state. All methods must be safe for concurrent
// use; the Follower may sync different cities in parallel and a manual
// CatchUp may overlap a background poll for the same city (sequence
// numbers make overlapping applies idempotent).
type Target interface {
	// Resume returns the city's last durably applied sequence — where the
	// next fetch resumes. 0 means nothing applied yet.
	Resume(city string) (int64, error)
	// ApplySnapshot validates and installs a compaction handoff, replacing
	// the city's state wholesale, and returns the snapshot's watermark.
	// A handoff at or below the current position is a no-op, not an error.
	ApplySnapshot(city string, raw []byte) (int64, error)
	// ApplyFrames applies shipped records in order and returns the new
	// last applied sequence. Frames at or below the current position must
	// be skipped (at-least-once delivery). An error means the stream and
	// the local state disagree — the caller surfaces it and stops
	// advancing rather than guessing.
	ApplyFrames(city string, frames []store.WALFrame) (int64, error)
}

// Lag is one city's replication position, as reported on the follower's
// /healthz.
type Lag struct {
	// Records and Bytes are how far behind the primary this city was at
	// the last completed sync (records: sequence distance; bytes: wire
	// bytes not yet applied).
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
	// AppliedSeq is the city's last applied sequence; PrimarySeq the
	// primary's head at the last sync.
	AppliedSeq int64 `json:"appliedSeq"`
	PrimarySeq int64 `json:"primarySeq"`
	// PrimaryWALBytes is the primary's bytes-since-compaction gauge — the
	// load/backpressure signal a front tier can route on.
	PrimaryWALBytes int64 `json:"primaryWalBytes"`
	// SnapshotHandoffs counts compaction handoffs taken; WireRetries
	// counts torn/corrupt responses that forced a re-fetch.
	SnapshotHandoffs int64 `json:"snapshotHandoffs"`
	WireRetries      int64 `json:"wireRetries"`
	// Syncs counts completed sync cycles; Err is the last sync's failure
	// (empty once healthy again).
	Syncs int64  `json:"syncs"`
	Err   string `json:"error,omitempty"`

	// resumed: AppliedSeq is established (at least one successful sync),
	// so the next poll can resume from it without consulting the target —
	// which would pin, and possibly fault in, the city.
	resumed bool
}

// Follower tails a primary's per-city logs and applies them to a Target.
// One goroutine per city polls on Interval; Sync and CatchUp drive the
// same cycle synchronously (tests, promotion barriers).
type Follower struct {
	client   *Client
	target   Target
	cities   []string
	interval time.Duration
	stream   bool

	// onEpoch, when set, is invoked with every nonzero replication term
	// the primary reports (on stream open, every applied batch, and every
	// poll), letting the server layer persist and adopt it.
	onEpoch func(term int64, owner string)

	mu  sync.Mutex
	lag map[string]*Lag

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      sync.WaitGroup
}

// DefaultPollInterval is how often a tailer polls when the caller does
// not choose: frequent enough for sub-second staleness, cheap because a
// caught-up poll transfers only headers.
const DefaultPollInterval = 250 * time.Millisecond

// NewFollower builds a follower over the given cities. interval <= 0
// selects DefaultPollInterval. Nothing runs until Start.
func NewFollower(primary string, cities []string, target Target, interval time.Duration) *Follower {
	if interval <= 0 {
		interval = DefaultPollInterval
	}
	f := &Follower{
		client:   &Client{Base: primary},
		target:   target,
		cities:   append([]string(nil), cities...),
		interval: interval,
		stream:   true,
		lag:      make(map[string]*Lag, len(cities)),
		stop:     make(chan struct{}),
	}
	for _, c := range f.cities {
		f.lag[c] = &Lag{}
	}
	return f
}

// Primary returns the primary's base URL.
func (f *Follower) Primary() string { return f.client.Base }

// SetID names this follower on the primary's replication-slot table (the
// ?fid= stream handshake). Call before Start.
func (f *Follower) SetID(id string) { f.client.ID = id }

// SetEpochInfo supplies the follower's highest known replication term for
// stamping onto outgoing wal requests. Call before Start.
func (f *Follower) SetEpochInfo(fn func() (int64, string)) { f.client.EpochInfo = fn }

// SetOnEpoch registers the callback invoked with every nonzero term the
// primary reports. Call before Start.
func (f *Follower) SetOnEpoch(fn func(term int64, owner string)) { f.onEpoch = fn }

// observeEpoch forwards a batch's term to the registered callback.
func (f *Follower) observeEpoch(b *Batch) {
	if f.onEpoch != nil && b.Epoch > 0 {
		f.onEpoch(b.Epoch, b.EpochPrimary)
	}
}

// SetStreaming selects between push streams (the default: a tailer holds
// GET ?stream=1 open and applies frames as commits push them) and the
// classic poll loop (one Fetch per interval). Call before Start; the
// synchronous Sync/CatchUp paths always poll regardless.
func (f *Follower) SetStreaming(on bool) { f.stream = on }

// Start launches one polling tailer per city. Idempotent.
func (f *Follower) Start() {
	f.startOnce.Do(func() {
		for _, city := range f.cities {
			f.done.Add(1)
			go f.tail(city)
		}
	})
}

// Stop halts the tailers and waits for in-flight syncs to finish, so the
// caller (promotion) knows no apply is mid-flight when it returns.
// Idempotent; a never-started follower stops trivially.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.done.Wait()
}

// tail is one city's loop. In streaming mode it holds a push stream open
// and reconnects immediately when the server ends one cleanly (stream
// life cap, compaction handoff); only failures back off. In polling mode
// it runs the classic Sync-per-interval cycle. Either way, failures back
// off exponentially (capped) instead of hammering a struggling primary.
func (f *Follower) tail(city string) {
	defer f.done.Done()
	failures := 0
	immediate := f.stream
	for {
		if immediate && failures == 0 {
			// A healthy stream reconnects without sleeping: the server just
			// rotated the stream, and waiting would only add lag.
			select {
			case <-f.stop:
				return
			default:
			}
		} else {
			wait := f.interval
			if failures > 0 {
				wait = retryBackoff(failures, f.interval)
			}
			select {
			case <-f.stop:
				return
			case <-time.After(wait):
			}
		}
		start := time.Now()
		var err error
		if f.stream {
			err = f.streamCity(city)
		} else {
			err = f.Sync(city)
		}
		// Only a stream that actually lived a while earns the instant
		// reconnect. A clean end within a second means the other side is
		// answering ?stream=1 as a one-shot (an old primary, a proxy that
		// cannot flush) — reconnecting instantly against that is a hot
		// loop at thousands of requests a second, so pace on the interval.
		immediate = f.stream && time.Since(start) >= time.Second
		if err != nil {
			failures++
		} else {
			failures = 0
		}
	}
}

// streamCity holds one push stream open for a city, applying batches as
// commits arrive, until the server ends it or something fails. A clean
// end returns nil and the tailer reconnects from the new resume point —
// including the compaction-handoff case, where the fresh response opens
// with a snapshot section.
func (f *Follower) streamCity(city string) error {
	applied, known := f.cachedSeq(city)
	if !known {
		var err error
		applied, err = f.target.Resume(city)
		if err != nil {
			f.note(city, err)
			return fmt.Errorf("replicate: resume %s: %w", city, err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-f.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	err := f.client.Stream(ctx, city, applied, func(b *Batch) error {
		f.observeEpoch(b)
		if b.Snapshot != nil && b.SnapshotSeq > applied {
			seq, err := f.target.ApplySnapshot(city, b.Snapshot)
			if err != nil {
				return fmt.Errorf("replicate: snapshot handoff %s: %w", city, err)
			}
			if seq > applied {
				applied = seq
			}
			f.mu.Lock()
			if l, ok := f.lag[city]; ok {
				l.SnapshotHandoffs++
			}
			f.mu.Unlock()
		}
		if len(b.Frames) > 0 {
			seq, err := f.target.ApplyFrames(city, b.Frames)
			if err != nil {
				return fmt.Errorf("replicate: apply %s: %w", city, err)
			}
			if seq > applied {
				applied = seq
			}
		}
		f.mu.Lock()
		if l, ok := f.lag[city]; ok {
			l.AppliedSeq = applied
			l.resumed = true
			l.PrimarySeq = max(b.PrimarySeq, applied)
			l.PrimaryWALBytes = b.PrimaryWALBytes
			l.Records = max(l.PrimarySeq-applied, 0)
			l.Syncs++
			l.Err = ""
		}
		f.mu.Unlock()
		return nil
	})
	// A stop-triggered cancel is a shutdown, not a failure: report clean
	// so the loop exits via the stop check instead of backing off first.
	select {
	case <-f.stop:
		return nil
	default:
	}
	f.note(city, err)
	return err
}

// note records a stream cycle's outcome in the city's lag entry.
func (f *Follower) note(city string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	l, ok := f.lag[city]
	if !ok {
		return
	}
	if err != nil {
		l.Err = err.Error()
		if errors.Is(err, ErrWireCorrupt) {
			l.WireRetries++
		}
	} else {
		l.Err = ""
	}
}

// Lag returns a city's replication position.
func (f *Follower) Lag(city string) (Lag, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	l, ok := f.lag[city]
	if !ok {
		return Lag{}, false
	}
	return *l, true
}

// Sync runs one fetch-and-apply cycle for a city: resume from the last
// applied sequence, fetch, take the snapshot handoff if the primary sent
// one, apply the frames, record lag. A torn/corrupt response applies its
// valid prefix and reports ErrWireCorrupt — the next cycle re-fetches
// from wherever apply got to, so a bad frame costs one round trip, never
// consistency.
func (f *Follower) Sync(city string) error {
	err := f.sync(city)
	f.mu.Lock()
	if l, ok := f.lag[city]; ok {
		l.Syncs++
		if err != nil {
			l.Err = err.Error()
			if errors.Is(err, ErrWireCorrupt) {
				l.WireRetries++
			}
		} else {
			l.Err = ""
		}
	}
	f.mu.Unlock()
	return err
}

func (f *Follower) sync(city string) error {
	// Resume from the cached position when one is established: between
	// polls the city may have been evicted, and its durable state resumes
	// at exactly this sequence, so a caught-up poll must not pin — and
	// thereby fault back in — the city just to ask where it stands.
	applied, known := f.cachedSeq(city)
	if !known {
		var err error
		applied, err = f.target.Resume(city)
		if err != nil {
			return fmt.Errorf("replicate: resume %s: %w", city, err)
		}
	}
	batch, fetchErr := f.client.Fetch(city, applied)
	if batch == nil {
		return fetchErr
	}
	f.observeEpoch(batch)
	hasNew := batch.Snapshot != nil && batch.SnapshotSeq > applied
	for _, fr := range batch.Frames {
		if fr.Seq > applied {
			hasNew = true
			break
		}
	}
	var appliedBytes int64
	if hasNew {
		if batch.Snapshot != nil {
			seq, err := f.target.ApplySnapshot(city, batch.Snapshot)
			if err != nil {
				return fmt.Errorf("replicate: snapshot handoff %s: %w", city, err)
			}
			if seq > applied {
				applied = seq
			}
			f.mu.Lock()
			if l, ok := f.lag[city]; ok {
				l.SnapshotHandoffs++
			}
			f.mu.Unlock()
		}
		if len(batch.Frames) > 0 {
			seq, err := f.target.ApplyFrames(city, batch.Frames)
			if err != nil {
				return fmt.Errorf("replicate: apply %s: %w", city, err)
			}
			for _, fr := range batch.Frames {
				if fr.Seq <= seq {
					appliedBytes += fr.WireLen()
				}
			}
			applied = seq
		}
	}
	f.mu.Lock()
	if l, ok := f.lag[city]; ok {
		l.AppliedSeq = applied
		l.resumed = true
		l.PrimarySeq = batch.PrimarySeq
		l.PrimaryWALBytes = batch.PrimaryWALBytes
		l.Records = max(batch.PrimarySeq-applied, 0)
		l.Bytes = max(batch.LagBytes-appliedBytes, 0)
	}
	f.mu.Unlock()
	return fetchErr // nil, or the wire corruption the prefix-apply healed around
}

// cachedSeq returns the city's established resume point, if any.
func (f *Follower) cachedSeq(city string) (int64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	l, ok := f.lag[city]
	if !ok || !l.resumed {
		return 0, false
	}
	return l.AppliedSeq, true
}

// CatchUp syncs every city until each reports zero record lag, or the
// timeout elapses. It is the barrier tests and controlled promotion use:
// after it returns nil, the follower has applied everything the primary
// had committed when its final sync ran.
func (f *Follower) CatchUp(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	failures := 0
	for {
		behind := ""
		var firstErr error
		for _, city := range f.cities {
			if err := f.Sync(city); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				behind = city
				continue
			}
			if l, ok := f.Lag(city); ok && l.Records > 0 {
				behind = city
			}
		}
		if behind == "" {
			return nil
		}
		if time.Now().After(deadline) {
			if firstErr != nil {
				return fmt.Errorf("replicate: catch-up timed out on %s: %w", behind, firstErr)
			}
			return fmt.Errorf("replicate: catch-up timed out on %s", behind)
		}
		// Progress without errors retries almost immediately; failures
		// back off like the tailers do, so catching up against a dead
		// primary does not hammer it until the deadline.
		if firstErr != nil {
			failures++
			time.Sleep(retryBackoff(failures, 10*time.Millisecond))
		} else {
			failures = 0
			time.Sleep(time.Millisecond)
		}
	}
}
