package replicate

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"grouptravel/internal/store"
)

// testFrames builds n wire frames with dense sequences starting at from+1.
func testFrames(from int64, n int) []store.WALFrame {
	frames := make([]store.WALFrame, 0, n)
	for i := 0; i < n; i++ {
		seq := from + 1 + int64(i)
		frames = append(frames, store.WALFrame{
			Seq:     seq,
			Payload: []byte(fmt.Sprintf(`{"op":"test","seq":%d,"pad":"xxxxxxxxxxxxxxxx"}`, seq)),
		})
	}
	return frames
}

// serve runs an httptest server answering every /wal request with the
// given batch, optionally mangling the body through corrupt.
func serve(t *testing.T, batch *Batch, corrupt func([]byte) []byte) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if corrupt == nil {
			if err := WriteStream(w, batch); err != nil {
				t.Error(err)
			}
			return
		}
		rec := httptest.NewRecorder()
		if err := WriteStream(rec, batch); err != nil {
			t.Error(err)
		}
		for k, vs := range rec.Header() {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		_, _ = w.Write(corrupt(rec.Body.Bytes()))
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestStreamRoundTrip: WriteStream → Fetch is lossless — frames, their
// sequences, the snapshot section and the position headers all survive.
func TestStreamRoundTrip(t *testing.T) {
	want := &Batch{
		Snapshot:        []byte(`{"version":1,"walSeq":4}`),
		SnapshotSeq:     4,
		Frames:          testFrames(4, 3),
		PrimarySeq:      7,
		PrimaryWALBytes: 321,
	}
	ts := serve(t, want, nil)
	got, err := (&Client{Base: ts.URL}).Fetch("paris", 2)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Snapshot) != string(want.Snapshot) || got.SnapshotSeq != 4 {
		t.Fatalf("snapshot section: %q seq %d", got.Snapshot, got.SnapshotSeq)
	}
	if len(got.Frames) != 3 {
		t.Fatalf("got %d frames", len(got.Frames))
	}
	for i, fr := range got.Frames {
		if fr.Seq != want.Frames[i].Seq || string(fr.Payload) != string(want.Frames[i].Payload) {
			t.Fatalf("frame %d: %+v", i, fr)
		}
	}
	if got.PrimarySeq != 7 || got.PrimaryWALBytes != 321 {
		t.Fatalf("headers: %+v", got)
	}
	var wantLag int64
	for _, fr := range want.Frames {
		wantLag += fr.WireLen()
	}
	if got.LagBytes != wantLag {
		t.Fatalf("lag bytes %d, want %d", got.LagBytes, wantLag)
	}

	// Without a snapshot section the header is absent and Snapshot nil.
	ts2 := serve(t, &Batch{Frames: testFrames(0, 2), PrimarySeq: 2}, nil)
	got2, err := (&Client{Base: ts2.URL}).Fetch("paris", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Snapshot != nil || len(got2.Frames) != 2 {
		t.Fatalf("plain batch: %+v", got2)
	}
}

// TestStreamCorruptFrame: a flipped byte inside a middle frame is caught
// by its CRC. The client surfaces the intact prefix with ErrWireCorrupt —
// the corrupt frame and everything after it are withheld entirely, never
// partially surfaced.
func TestStreamCorruptFrame(t *testing.T) {
	frames := testFrames(0, 5)
	// Flip a byte inside the third frame's payload.
	off := int64(len("GTREPv1\n"))
	for _, fr := range frames[:2] {
		off += fr.WireLen()
	}
	ts := serve(t, &Batch{Frames: frames, PrimarySeq: 5}, func(body []byte) []byte {
		body[off+12] ^= 0x20
		return body
	})
	got, err := (&Client{Base: ts.URL}).Fetch("paris", 0)
	if !errors.Is(err, ErrWireCorrupt) {
		t.Fatalf("err = %v", err)
	}
	if got == nil || len(got.Frames) != 2 {
		t.Fatalf("valid prefix = %+v", got)
	}
	if got.Frames[0].Seq != 1 || got.Frames[1].Seq != 2 {
		t.Fatalf("prefix frames: %+v", got.Frames)
	}

	// A truncated body (connection cut mid-frame) behaves the same way.
	tsTorn := serve(t, &Batch{Frames: frames, PrimarySeq: 5}, func(body []byte) []byte {
		return body[:len(body)-9]
	})
	got, err = (&Client{Base: tsTorn.URL}).Fetch("paris", 0)
	if !errors.Is(err, ErrWireCorrupt) || len(got.Frames) != 4 {
		t.Fatalf("torn body: frames=%d err=%v", len(got.Frames), err)
	}

	// A corrupt snapshot section poisons the whole batch (no frames are
	// surfaced: they depend on the snapshot's base).
	snap := &Batch{Snapshot: []byte(`{"walSeq":3}`), SnapshotSeq: 3, Frames: testFrames(3, 2)}
	tsSnap := serve(t, snap, func(body []byte) []byte {
		body[len("GTREPv1\n")+snapshotHeaderLen+2] ^= 0x01
		return body
	})
	got, err = (&Client{Base: tsSnap.URL}).Fetch("paris", 0)
	if !errors.Is(err, ErrWireCorrupt) {
		t.Fatalf("corrupt snapshot err = %v", err)
	}
	if got != nil && (got.Snapshot != nil || len(got.Frames) != 0) {
		t.Fatalf("corrupt snapshot surfaced content: %+v", got)
	}
}

// TestFetchErrors: 409 maps to ErrFollowerAhead; other statuses carry the
// body message; a non-stream body is rejected.
func TestFetchErrors(t *testing.T) {
	var status atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(int(status.Load()))
		_, _ = w.Write([]byte(`{"error":"nope"}`))
	}))
	t.Cleanup(ts.Close)
	c := &Client{Base: ts.URL}

	status.Store(http.StatusConflict)
	if _, err := c.Fetch("paris", 9); !errors.Is(err, ErrFollowerAhead) {
		t.Fatalf("409: %v", err)
	}
	status.Store(http.StatusServiceUnavailable)
	if _, err := c.Fetch("paris", 0); err == nil || errors.Is(err, ErrFollowerAhead) {
		t.Fatalf("503: %v", err)
	}
	status.Store(http.StatusOK)
	if _, err := c.Fetch("paris", 0); err == nil {
		t.Fatal("non-stream body accepted")
	}
}

// TestFollowerLagAccounting drives a Follower against a scripted target
// and primary: after a sync the lag reflects the primary's head, and a
// snapshot handoff is counted.
func TestFollowerLagAccounting(t *testing.T) {
	frames := testFrames(2, 3)
	batch := &Batch{
		Snapshot:        []byte(`{"walSeq":2}`),
		SnapshotSeq:     2,
		Frames:          frames,
		PrimarySeq:      6, // one record beyond what this batch carries
		PrimaryWALBytes: 777,
	}
	ts := serve(t, batch, nil)
	tgt := &scriptTarget{}
	f := NewFollower(ts.URL, []string{"paris"}, tgt, -1)
	if err := f.Sync("paris"); err != nil {
		t.Fatal(err)
	}
	lag, ok := f.Lag("paris")
	if !ok {
		t.Fatal("no lag for paris")
	}
	if lag.AppliedSeq != 5 || lag.PrimarySeq != 6 || lag.Records != 1 {
		t.Fatalf("lag = %+v", lag)
	}
	if lag.SnapshotHandoffs != 1 || lag.PrimaryWALBytes != 777 || lag.Syncs != 1 || lag.Err != "" {
		t.Fatalf("lag counters = %+v", lag)
	}
	if tgt.snapshots != 1 || tgt.applied != 3 {
		t.Fatalf("target saw %d snapshots, %d frames", tgt.snapshots, tgt.applied)
	}
	// Unknown city: the error is recorded, not swallowed.
	if err := f.Sync("paris"); err != nil {
		t.Fatal(err)
	}
}

// scriptTarget is a minimal in-memory Target.
type scriptTarget struct {
	seq       int64
	snapshots int
	applied   int
}

func (s *scriptTarget) Resume(string) (int64, error) { return s.seq, nil }

func (s *scriptTarget) ApplySnapshot(_ string, raw []byte) (int64, error) {
	s.snapshots++
	s.seq = 2 // the scripted snapshot's watermark
	return s.seq, nil
}

func (s *scriptTarget) ApplyFrames(_ string, frames []store.WALFrame) (int64, error) {
	for _, fr := range frames {
		if fr.Seq <= s.seq {
			continue
		}
		s.seq = fr.Seq
		s.applied++
	}
	return s.seq, nil
}
