// Package replicate ships a city's write-ahead log from a primary server
// to follower replicas over HTTP, turning the single-process engine into
// a primary/standby pair: a follower tails `GET /cities/{city}/wal?from=
// {seq}` and applies the framed records through the same store.Applier
// the restart path replays with, so a replica is — by construction — a
// restart that never stops happening.
//
// # Wire format
//
// A stream response reuses the WAL's CRC-framed record format verbatim
// (little-endian payload length, CRC32-Castagnoli, JSON payload): a
// follower could cat the body's frames onto a .wal file and recovery
// would replay it. The body is
//
//	<8-byte magic "GTREPv1\n">
//	[snapshot section, iff the X-GT-Snapshot-Seq header is present:
//	  <uint32 LE CRC32-Castagnoli(snapshot)> <uint64 LE length> <snapshot JSON>]
//	repeated WAL frames, exactly as they sit in the primary's log
//
// The snapshot section is the compaction handoff: when the follower's
// resume sequence has fallen behind the primary's compaction horizon (the
// records it needs now live only in the snapshot), the primary sends its
// sealed snapshot first and the log suffix after it. Response headers
// carry the primary's position for lag accounting:
//
//	X-GT-Primary-Seq:       last committed sequence at serve time
//	X-GT-Primary-Wal-Bytes: primary log bytes since its last compaction
//	X-GT-Lag-Bytes:         wire bytes of the frames in this response
//	X-GT-Snapshot-Seq:      watermark of the snapshot section, if present
//
// Delivery is at-least-once: a frame may arrive twice (a retry after a
// cut stream re-fetches from the last durable sequence), and sequence
// numbers — not delivery counts — are what make apply idempotent.
package replicate

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"grouptravel/internal/store"
)

// Stream magic: versions the body independently of the WAL file format.
var streamMagic = [8]byte{'G', 'T', 'R', 'E', 'P', 'v', '1', '\n'}

// Response headers (canonical MIME casing is applied by net/http).
const (
	HeaderPrimarySeq      = "X-GT-Primary-Seq"
	HeaderPrimaryWALBytes = "X-GT-Primary-Wal-Bytes"
	HeaderLagBytes        = "X-GT-Lag-Bytes"
	HeaderSnapshotSeq     = "X-GT-Snapshot-Seq"
	// HeaderEpoch carries the replication term on both request and
	// response: each side stamps its highest known term, and whichever
	// side sees a higher one than its own adopts it (a writable node that
	// is not the term's owner fences itself read-only). Absent or "0"
	// means the sender predates any promotion. HeaderEpochPrimary names
	// the advertised URL of the node that owns the term — the fencing 403
	// hint and the supervisor's source of truth.
	HeaderEpoch        = "X-GT-Epoch"
	HeaderEpochPrimary = "X-GT-Epoch-Primary"
)

// snapshotHeaderLen frames the snapshot section: CRC32 + uint64 length.
const snapshotHeaderLen = 12

// maxSnapshotBytes bounds a snapshot section so a corrupt or hostile
// length prefix cannot force an unbounded allocation on the follower.
const maxSnapshotBytes = int64(1) << 31

// snapshotCRC shares the WAL's Castagnoli polynomial.
var snapshotCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrWireCorrupt reports a frame (or snapshot section) that failed its
// checksum or arrived torn: the bytes before it are intact and usable,
// everything at and after it must be re-fetched. A follower applies the
// valid prefix and retries — a corrupt frame is never partially applied
// because it is never surfaced at all.
var ErrWireCorrupt = errors.New("replicate: corrupt frame on the wire")

// ErrFollowerAhead reports a 409 from the primary: the follower's resume
// sequence is beyond the primary's log head. That is divergence (a
// primary restored from older state, or a promoted follower pointed back
// at a demoted one), not lag; it needs an operator, not a retry.
var ErrFollowerAhead = errors.New("replicate: follower is ahead of the primary")

// ErrStaleEpoch reports a peer serving an older replication term than the
// follower already knows: the node it is talking to has been deposed (or
// lost its durable epoch state). Tailing it would replay pre-fencing
// writes the fleet has moved past — stop and re-resolve the primary.
var ErrStaleEpoch = errors.New("replicate: peer is serving a stale replication epoch")

// Batch is one parsed stream response: an optional snapshot handoff, the
// log frames after it, and the primary's position for lag accounting.
type Batch struct {
	// Snapshot is the raw snapshot JSON of a compaction handoff (nil when
	// the resume point was still inside the primary's log). SnapshotSeq is
	// the WAL watermark it covers: frames at or below it are already
	// folded into the snapshot.
	Snapshot    []byte
	SnapshotSeq int64

	// Frames in log order, each carrying its decoded sequence number.
	Frames []store.WALFrame

	// PrimarySeq is the primary's last committed sequence at serve time;
	// PrimaryWALBytes its log bytes since compaction (the backpressure
	// gauge); LagBytes the wire bytes of Frames — what this follower had
	// not applied when the response was cut.
	PrimarySeq      int64
	PrimaryWALBytes int64
	LagBytes        int64

	// Epoch is the replication term the serving node reported (0 for a
	// pre-epoch fleet), EpochPrimary the advertised URL of the term's
	// owner. Followers persist a term the first time they see it so a
	// restart cannot be talked back to a deposed primary.
	Epoch        int64
	EpochPrimary string
}

// WriteStream serves one batch as a stream response body plus headers —
// the primary half of the protocol (internal/server's /wal endpoint).
func WriteStream(w http.ResponseWriter, b *Batch) error {
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set(HeaderPrimarySeq, strconv.FormatInt(b.PrimarySeq, 10))
	h.Set(HeaderPrimaryWALBytes, strconv.FormatInt(b.PrimaryWALBytes, 10))
	var lagBytes int64
	for _, fr := range b.Frames {
		lagBytes += fr.WireLen()
	}
	h.Set(HeaderLagBytes, strconv.FormatInt(lagBytes, 10))
	if b.Epoch > 0 {
		h.Set(HeaderEpoch, strconv.FormatInt(b.Epoch, 10))
		if b.EpochPrimary != "" {
			h.Set(HeaderEpochPrimary, b.EpochPrimary)
		}
	}
	if b.Snapshot != nil {
		h.Set(HeaderSnapshotSeq, strconv.FormatInt(b.SnapshotSeq, 10))
	}
	if _, err := w.Write(streamMagic[:]); err != nil {
		return err
	}
	if b.Snapshot != nil {
		var head [snapshotHeaderLen]byte
		binary.LittleEndian.PutUint32(head[0:4], crc32.Checksum(b.Snapshot, snapshotCRC))
		binary.LittleEndian.PutUint64(head[4:12], uint64(len(b.Snapshot)))
		if _, err := w.Write(head[:]); err != nil {
			return err
		}
		if _, err := w.Write(b.Snapshot); err != nil {
			return err
		}
	}
	for _, fr := range b.Frames {
		if _, err := w.Write(store.EncodeFrame(fr.Payload)); err != nil {
			return err
		}
	}
	return nil
}

// HeartbeatFrame is the zero-length keepalive frame a push stream writes
// while idle: a frame header with length 0 and CRC 0 (CRC32 of the empty
// payload) and no body. Decoders skip it — it carries no record and no
// sequence, it only proves the wire is alive.
var HeartbeatFrame = [8]byte{}

// maxFrameBytes mirrors the store's per-record cap: a length prefix
// beyond it is corruption, not a large record.
const maxFrameBytes = 16 << 20

// streamReader decodes a stream response body incrementally: magic, the
// optional snapshot section, then one frame at a time — no whole-body
// slurp, so a push stream's frames decode (and apply) while the
// connection keeps delivering. Heartbeat frames are consumed silently.
type streamReader struct {
	br *bufio.Reader
}

func newStreamReader(r io.Reader) *streamReader {
	return &streamReader{br: bufio.NewReaderSize(r, 64<<10)}
}

// readMagic consumes and verifies the stream magic. Any failure — wrong
// bytes, a body shorter than the magic — means this is not a stream
// response at all.
func (sr *streamReader) readMagic() error {
	var m [8]byte
	if _, err := io.ReadFull(sr.br, m[:]); err != nil || m != streamMagic {
		return fmt.Errorf("replicate: response is not a GTREPv1 stream")
	}
	return nil
}

// readSnapshot consumes the snapshot section (header, payload, CRC
// check). Corruption here voids the whole response: nothing before the
// snapshot is applicable, so there is no prefix to salvage.
func (sr *streamReader) readSnapshot() ([]byte, error) {
	var head [snapshotHeaderLen]byte
	if _, err := io.ReadFull(sr.br, head[:]); err != nil {
		return nil, fmt.Errorf("%w: torn snapshot header", ErrWireCorrupt)
	}
	sum := binary.LittleEndian.Uint32(head[0:4])
	n := int64(binary.LittleEndian.Uint64(head[4:12]))
	if n < 0 || n > maxSnapshotBytes {
		return nil, fmt.Errorf("%w: snapshot length %d", ErrWireCorrupt, n)
	}
	snap := make([]byte, n)
	if _, err := io.ReadFull(sr.br, snap); err != nil {
		return nil, fmt.Errorf("%w: torn snapshot", ErrWireCorrupt)
	}
	if crc32.Checksum(snap, snapshotCRC) != sum {
		return nil, fmt.Errorf("%w: snapshot CRC mismatch", ErrWireCorrupt)
	}
	return snap, nil
}

// next decodes the next frame, skipping heartbeats. io.EOF means the
// stream ended cleanly at a frame boundary; every other failure — torn
// frame, bad CRC, a mid-frame connection cut — is ErrWireCorrupt: the
// frames already returned are intact, everything after must re-fetch.
func (sr *streamReader) next() (store.WALFrame, error) {
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(sr.br, hdr[:]); err != nil {
			if err == io.EOF {
				return store.WALFrame{}, io.EOF
			}
			return store.WALFrame{}, fmt.Errorf("%w: %v", ErrWireCorrupt, err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 && sum == 0 {
			continue // heartbeat
		}
		if int64(n) > maxFrameBytes {
			return store.WALFrame{}, fmt.Errorf("%w: frame length %d exceeds cap %d", ErrWireCorrupt, n, maxFrameBytes)
		}
		buf := make([]byte, 8+int(n))
		copy(buf, hdr[:])
		if _, err := io.ReadFull(sr.br, buf[8:]); err != nil {
			return store.WALFrame{}, fmt.Errorf("%w: torn frame", ErrWireCorrupt)
		}
		payload, _, err := store.DecodeFrame(buf)
		if err != nil {
			return store.WALFrame{}, fmt.Errorf("%w: %v", ErrWireCorrupt, err)
		}
		seq, err := store.FrameSeq(payload)
		if err != nil {
			return store.WALFrame{}, fmt.Errorf("%w: %v", ErrWireCorrupt, err)
		}
		if seq < 1 {
			// A shipped record always carries the primary's stamp; a
			// seq-less frame cannot be resumed past and must not apply.
			return store.WALFrame{}, fmt.Errorf("%w: frame without a sequence number", ErrWireCorrupt)
		}
		return store.WALFrame{Seq: seq, Payload: payload}, nil
	}
}

// defaultFetchClient bounds every one-shot fetch. Without a deadline, a
// primary lost to a partition (no RST, the connection just hangs) would
// block a tailer forever — and Promote waits out in-flight syncs, so the
// hang would reach exactly the code path that exists for a dead primary.
var defaultFetchClient = &http.Client{Timeout: 30 * time.Second}

// defaultStreamClient carries the push streams: keep-alives and idle
// pooling for the reconnect cycle, a header deadline for a dead primary —
// but no overall timeout, which would cut every healthy stream at the
// timeout mark. Liveness is the stall watchdog's job (heartbeats arrive
// on a known cadence; see Stream).
var defaultStreamClient = &http.Client{Transport: &http.Transport{
	MaxIdleConnsPerHost:   4,
	IdleConnTimeout:       90 * time.Second,
	ResponseHeaderTimeout: 30 * time.Second,
}}

// Client fetches stream batches from a primary's base URL.
type Client struct {
	// Base is the primary's base URL, e.g. "http://primary:8080".
	Base string
	// HTTP overrides the transport; a 30s-timeout client when nil (and a
	// timeout-less keep-alive client for Stream).
	HTTP *http.Client
	// ID identifies this follower to the primary: Stream passes it as the
	// ?fid= handshake parameter so the primary can keep a per-follower
	// replication slot (position tracking + compaction holds). Optional —
	// an anonymous stream still replicates, it just isn't slot-tracked.
	ID string
	// EpochInfo, when set, supplies the follower's highest known
	// replication term and its owner; both requests stamp them as
	// X-GT-Epoch / X-GT-Epoch-Primary so the serving node can discover it
	// has been deposed even from a follower's pull.
	EpochInfo func() (int64, string)
}

// stampEpoch adds the follower's known term to an outgoing request.
func (c *Client) stampEpoch(req *http.Request) {
	if c.EpochInfo == nil {
		return
	}
	if term, owner := c.EpochInfo(); term > 0 {
		req.Header.Set(HeaderEpoch, strconv.FormatInt(term, 10))
		if owner != "" {
			req.Header.Set(HeaderEpochPrimary, owner)
		}
	}
}

// checkEpoch compares a response's term against the follower's own. A
// serving node reporting a *lower* term than the follower already knows
// (including no term at all) is deposed or divergent — its log must not
// be applied.
func (c *Client) checkEpoch(resp *http.Response, city string) (int64, string, error) {
	respTerm, _ := strconv.ParseInt(resp.Header.Get(HeaderEpoch), 10, 64)
	respOwner := resp.Header.Get(HeaderEpochPrimary)
	if c.EpochInfo != nil {
		if known, _ := c.EpochInfo(); known > 0 && respTerm < known {
			return 0, "", fmt.Errorf("%w (city %s: peer term %d, known term %d)",
				ErrStaleEpoch, city, respTerm, known)
		}
	}
	return respTerm, respOwner, nil
}

// Fetch pulls every committed record after `from` for one city. It may
// return a non-nil partial Batch together with ErrWireCorrupt (apply the
// prefix, retry), or ErrFollowerAhead on divergence. The body decodes
// incrementally off the connection — frames append to the batch as they
// arrive, and a connection cut mid-body yields the intact prefix.
func (c *Client) Fetch(city string, from int64) (*Batch, error) {
	hc := c.HTTP
	if hc == nil {
		hc = defaultFetchClient
	}
	u := fmt.Sprintf("%s/cities/%s/wal?from=%d", c.Base, url.PathEscape(city), from)
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("replicate: fetch %s: %w", city, err)
	}
	c.stampEpoch(req)
	resp, err := hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replicate: fetch %s: %w", city, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		return nil, fmt.Errorf("%w (city %s, from %d)", ErrFollowerAhead, city, from)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("replicate: fetch %s: %s: %s", city, resp.Status, msg)
	}
	respTerm, respOwner, err := c.checkEpoch(resp, city)
	if err != nil {
		return nil, err
	}
	sr := newStreamReader(resp.Body)
	if err := sr.readMagic(); err != nil {
		return nil, err
	}
	intHeader := func(name string) int64 {
		v, _ := strconv.ParseInt(resp.Header.Get(name), 10, 64)
		return v
	}
	b := &Batch{
		SnapshotSeq:     intHeader(HeaderSnapshotSeq),
		PrimarySeq:      intHeader(HeaderPrimarySeq),
		PrimaryWALBytes: intHeader(HeaderPrimaryWALBytes),
		LagBytes:        intHeader(HeaderLagBytes),
		Epoch:           respTerm,
		EpochPrimary:    respOwner,
	}
	if resp.Header.Get(HeaderSnapshotSeq) != "" {
		snap, err := sr.readSnapshot()
		if err != nil {
			// A corrupt snapshot voids the response: the frames after it
			// only make sense on top of the snapshot's state.
			return nil, err
		}
		b.Snapshot = snap
	}
	for {
		fr, err := sr.next()
		if err == io.EOF {
			return b, nil
		}
		if err != nil {
			return b, err
		}
		b.Frames = append(b.Frames, fr)
	}
}

// DefaultStreamHeartbeat is the keepalive cadence Stream requests when
// the caller does not choose.
const DefaultStreamHeartbeat = 2 * time.Second

// Stream opens a push stream for one city and invokes apply as batches
// arrive, until the server ends the stream (nil — reconnect and resume),
// the context is canceled, apply fails, or the wire corrupts. Decode and
// apply are pipelined: a goroutine decodes frames off the connection
// while the caller's apply runs, and consecutive frames that arrived
// during an apply coalesce into the next batch — so a follower persists
// them under one group-commit fsync instead of one each.
//
// The first apply may carry a snapshot handoff (resume point behind the
// primary's compaction horizon), exactly like Fetch. A stall watchdog
// cancels the connection when nothing — frames or heartbeats — arrives
// for several heartbeat intervals: a primary lost to a partition looks
// like silence, and silence is the one thing a healthy stream never
// produces.
func (c *Client) Stream(ctx context.Context, city string, from int64, apply func(*Batch) error) error {
	hb := DefaultStreamHeartbeat
	hc := c.HTTP
	if hc == nil {
		hc = defaultStreamClient
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	u := fmt.Sprintf("%s/cities/%s/wal?from=%d&stream=1&hb=%s",
		c.Base, url.PathEscape(city), from, hb)
	if c.ID != "" {
		u += "&fid=" + url.QueryEscape(c.ID)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("replicate: stream %s: %w", city, err)
	}
	c.stampEpoch(req)
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("replicate: stream %s: %w", city, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		return fmt.Errorf("%w (city %s, from %d)", ErrFollowerAhead, city, from)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("replicate: stream %s: %s: %s", city, resp.Status, msg)
	}
	respTerm, respOwner, err := c.checkEpoch(resp, city)
	if err != nil {
		return err
	}
	stall := 3*hb + 2*time.Second
	watchdog := time.AfterFunc(stall, cancel)
	defer watchdog.Stop()
	sr := newStreamReader(&touchReader{
		r:     resp.Body,
		touch: func() { watchdog.Reset(stall) },
	})
	if err := sr.readMagic(); err != nil {
		return err
	}
	intHeader := func(name string) int64 {
		v, _ := strconv.ParseInt(resp.Header.Get(name), 10, 64)
		return v
	}
	primarySeq := intHeader(HeaderPrimarySeq)
	primaryWALBytes := intHeader(HeaderPrimaryWALBytes)
	if resp.Header.Get(HeaderSnapshotSeq) != "" {
		snap, err := sr.readSnapshot()
		if err != nil {
			return err
		}
		if err := apply(&Batch{
			Snapshot:        snap,
			SnapshotSeq:     intHeader(HeaderSnapshotSeq),
			PrimarySeq:      primarySeq,
			PrimaryWALBytes: primaryWALBytes,
			Epoch:           respTerm,
			EpochPrimary:    respOwner,
		}); err != nil {
			return err
		}
	}

	// Decode goroutine: frames flow through the channel while apply runs.
	frames := make(chan store.WALFrame, 256)
	decErr := make(chan error, 1)
	go func() {
		defer close(frames)
		for {
			fr, err := sr.next()
			if err != nil {
				decErr <- err
				return
			}
			select {
			case frames <- fr:
			case <-ctx.Done():
				decErr <- ctx.Err()
				return
			}
		}
	}()

	const maxApplyBatch = 512
	batch := make([]store.WALFrame, 0, 64)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		b := &Batch{
			Frames:          batch,
			PrimarySeq:      max(primarySeq, batch[len(batch)-1].Seq),
			PrimaryWALBytes: primaryWALBytes,
			Epoch:           respTerm,
			EpochPrimary:    respOwner,
		}
		err := apply(b)
		batch = batch[:0]
		return err
	}
	for fr := range frames {
		batch = append(batch, fr)
		// Greedy drain: everything the decoder got ahead on joins this
		// batch, up to a cap that bounds apply (and fsync) granularity.
	drain:
		for len(batch) < maxApplyBatch {
			select {
			case more, ok := <-frames:
				if !ok {
					break drain
				}
				batch = append(batch, more)
			default:
				break drain
			}
		}
		if err := flush(); err != nil {
			cancel()
			for range frames { // unblock the decoder
			}
			return err
		}
	}
	if err := flush(); err != nil {
		return err
	}
	err = <-decErr
	switch {
	case err == io.EOF:
		return nil // clean end: the server closed the stream; reconnect
	case ctx.Err() != nil && errors.Is(err, ErrWireCorrupt):
		// The watchdog (or caller) canceled mid-read; report the cancel,
		// not the cut it caused.
		return fmt.Errorf("replicate: stream %s: %w", city, ctx.Err())
	default:
		return err
	}
}

// touchReader resets the stall watchdog on every successful read — the
// liveness signal heartbeats exist to generate.
type touchReader struct {
	r     io.Reader
	touch func()
}

func (t *touchReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if n > 0 {
		t.touch()
	}
	return n, err
}

// retryBackoff bounds how fast a failing tailer hammers the primary.
func retryBackoff(attempt int, base time.Duration) time.Duration {
	d := base << min(attempt, 6)
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}
