// Package replicate ships a city's write-ahead log from a primary server
// to follower replicas over HTTP, turning the single-process engine into
// a primary/standby pair: a follower tails `GET /cities/{city}/wal?from=
// {seq}` and applies the framed records through the same store.Applier
// the restart path replays with, so a replica is — by construction — a
// restart that never stops happening.
//
// # Wire format
//
// A stream response reuses the WAL's CRC-framed record format verbatim
// (little-endian payload length, CRC32-Castagnoli, JSON payload): a
// follower could cat the body's frames onto a .wal file and recovery
// would replay it. The body is
//
//	<8-byte magic "GTREPv1\n">
//	[snapshot section, iff the X-GT-Snapshot-Seq header is present:
//	  <uint32 LE CRC32-Castagnoli(snapshot)> <uint64 LE length> <snapshot JSON>]
//	repeated WAL frames, exactly as they sit in the primary's log
//
// The snapshot section is the compaction handoff: when the follower's
// resume sequence has fallen behind the primary's compaction horizon (the
// records it needs now live only in the snapshot), the primary sends its
// sealed snapshot first and the log suffix after it. Response headers
// carry the primary's position for lag accounting:
//
//	X-GT-Primary-Seq:       last committed sequence at serve time
//	X-GT-Primary-Wal-Bytes: primary log bytes since its last compaction
//	X-GT-Lag-Bytes:         wire bytes of the frames in this response
//	X-GT-Snapshot-Seq:      watermark of the snapshot section, if present
//
// Delivery is at-least-once: a frame may arrive twice (a retry after a
// cut stream re-fetches from the last durable sequence), and sequence
// numbers — not delivery counts — are what make apply idempotent.
package replicate

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"grouptravel/internal/store"
)

// Stream magic: versions the body independently of the WAL file format.
var streamMagic = [8]byte{'G', 'T', 'R', 'E', 'P', 'v', '1', '\n'}

// Response headers (canonical MIME casing is applied by net/http).
const (
	HeaderPrimarySeq      = "X-GT-Primary-Seq"
	HeaderPrimaryWALBytes = "X-GT-Primary-Wal-Bytes"
	HeaderLagBytes        = "X-GT-Lag-Bytes"
	HeaderSnapshotSeq     = "X-GT-Snapshot-Seq"
)

// snapshotHeaderLen frames the snapshot section: CRC32 + uint64 length.
const snapshotHeaderLen = 12

// maxSnapshotBytes bounds a snapshot section so a corrupt or hostile
// length prefix cannot force an unbounded allocation on the follower.
const maxSnapshotBytes = int64(1) << 31

// snapshotCRC shares the WAL's Castagnoli polynomial.
var snapshotCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrWireCorrupt reports a frame (or snapshot section) that failed its
// checksum or arrived torn: the bytes before it are intact and usable,
// everything at and after it must be re-fetched. A follower applies the
// valid prefix and retries — a corrupt frame is never partially applied
// because it is never surfaced at all.
var ErrWireCorrupt = errors.New("replicate: corrupt frame on the wire")

// ErrFollowerAhead reports a 409 from the primary: the follower's resume
// sequence is beyond the primary's log head. That is divergence (a
// primary restored from older state, or a promoted follower pointed back
// at a demoted one), not lag; it needs an operator, not a retry.
var ErrFollowerAhead = errors.New("replicate: follower is ahead of the primary")

// Batch is one parsed stream response: an optional snapshot handoff, the
// log frames after it, and the primary's position for lag accounting.
type Batch struct {
	// Snapshot is the raw snapshot JSON of a compaction handoff (nil when
	// the resume point was still inside the primary's log). SnapshotSeq is
	// the WAL watermark it covers: frames at or below it are already
	// folded into the snapshot.
	Snapshot    []byte
	SnapshotSeq int64

	// Frames in log order, each carrying its decoded sequence number.
	Frames []store.WALFrame

	// PrimarySeq is the primary's last committed sequence at serve time;
	// PrimaryWALBytes its log bytes since compaction (the backpressure
	// gauge); LagBytes the wire bytes of Frames — what this follower had
	// not applied when the response was cut.
	PrimarySeq      int64
	PrimaryWALBytes int64
	LagBytes        int64
}

// WriteStream serves one batch as a stream response body plus headers —
// the primary half of the protocol (internal/server's /wal endpoint).
func WriteStream(w http.ResponseWriter, b *Batch) error {
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set(HeaderPrimarySeq, strconv.FormatInt(b.PrimarySeq, 10))
	h.Set(HeaderPrimaryWALBytes, strconv.FormatInt(b.PrimaryWALBytes, 10))
	var lagBytes int64
	for _, fr := range b.Frames {
		lagBytes += fr.WireLen()
	}
	h.Set(HeaderLagBytes, strconv.FormatInt(lagBytes, 10))
	if b.Snapshot != nil {
		h.Set(HeaderSnapshotSeq, strconv.FormatInt(b.SnapshotSeq, 10))
	}
	if _, err := w.Write(streamMagic[:]); err != nil {
		return err
	}
	if b.Snapshot != nil {
		var head [snapshotHeaderLen]byte
		binary.LittleEndian.PutUint32(head[0:4], crc32.Checksum(b.Snapshot, snapshotCRC))
		binary.LittleEndian.PutUint64(head[4:12], uint64(len(b.Snapshot)))
		if _, err := w.Write(head[:]); err != nil {
			return err
		}
		if _, err := w.Write(b.Snapshot); err != nil {
			return err
		}
	}
	for _, fr := range b.Frames {
		if _, err := w.Write(store.EncodeFrame(fr.Payload)); err != nil {
			return err
		}
	}
	return nil
}

// parseStream decodes a response body. On a torn or corrupt frame it
// returns the valid prefix together with ErrWireCorrupt — the caller
// applies what survived and re-fetches the rest.
func parseStream(body []byte, snapshotSeq int64, hasSnapshot bool) (*Batch, error) {
	if len(body) < len(streamMagic) || [8]byte(body[:len(streamMagic)]) != streamMagic {
		return nil, fmt.Errorf("replicate: response is not a GTREPv1 stream")
	}
	b := &Batch{SnapshotSeq: snapshotSeq}
	buf := body[len(streamMagic):]
	if hasSnapshot {
		if len(buf) < snapshotHeaderLen {
			return nil, fmt.Errorf("%w: torn snapshot header", ErrWireCorrupt)
		}
		sum := binary.LittleEndian.Uint32(buf[0:4])
		n := int64(binary.LittleEndian.Uint64(buf[4:12]))
		if n < 0 || n > maxSnapshotBytes {
			return nil, fmt.Errorf("%w: snapshot length %d", ErrWireCorrupt, n)
		}
		if int64(len(buf)) < snapshotHeaderLen+n {
			return nil, fmt.Errorf("%w: torn snapshot", ErrWireCorrupt)
		}
		snap := buf[snapshotHeaderLen : snapshotHeaderLen+n]
		if crc32.Checksum(snap, snapshotCRC) != sum {
			return nil, fmt.Errorf("%w: snapshot CRC mismatch", ErrWireCorrupt)
		}
		b.Snapshot = snap
		buf = buf[snapshotHeaderLen+n:]
	}
	for len(buf) > 0 {
		payload, n, err := store.DecodeFrame(buf)
		if err != nil {
			return b, fmt.Errorf("%w: %v", ErrWireCorrupt, err)
		}
		fr := store.WALFrame{Payload: payload}
		if fr.Seq, err = store.FrameSeq(payload); err != nil {
			return b, fmt.Errorf("%w: %v", ErrWireCorrupt, err)
		}
		if fr.Seq < 1 {
			// A shipped record always carries the primary's stamp; a
			// seq-less frame cannot be resumed past and must not apply.
			return b, fmt.Errorf("%w: frame without a sequence number", ErrWireCorrupt)
		}
		b.Frames = append(b.Frames, fr)
		buf = buf[n:]
	}
	return b, nil
}

// defaultFetchClient bounds every fetch. Without a deadline, a primary
// lost to a partition (no RST, the connection just hangs) would block a
// tailer forever — and Promote waits out in-flight syncs, so the hang
// would reach exactly the code path that exists for a dead primary.
var defaultFetchClient = &http.Client{Timeout: 30 * time.Second}

// Client fetches stream batches from a primary's base URL.
type Client struct {
	// Base is the primary's base URL, e.g. "http://primary:8080".
	Base string
	// HTTP overrides the transport; a 30s-timeout client when nil.
	HTTP *http.Client
}

// Fetch pulls every committed record after `from` for one city. It may
// return a non-nil partial Batch together with ErrWireCorrupt (apply the
// prefix, retry), or ErrFollowerAhead on divergence.
func (c *Client) Fetch(city string, from int64) (*Batch, error) {
	hc := c.HTTP
	if hc == nil {
		hc = defaultFetchClient
	}
	u := fmt.Sprintf("%s/cities/%s/wal?from=%d", c.Base, url.PathEscape(city), from)
	resp, err := hc.Get(u)
	if err != nil {
		return nil, fmt.Errorf("replicate: fetch %s: %w", city, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		return nil, fmt.Errorf("%w (city %s, from %d)", ErrFollowerAhead, city, from)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("replicate: fetch %s: %s: %s", city, resp.Status, msg)
	}
	intHeader := func(name string) int64 {
		v, _ := strconv.ParseInt(resp.Header.Get(name), 10, 64)
		return v
	}
	// A connection cut mid-body surfaces as a read error here; the bytes
	// already received still parse as a valid prefix, so treat it like a
	// torn frame rather than losing the whole batch.
	body, readErr := io.ReadAll(resp.Body)
	b, parseErr := parseStream(body, intHeader(HeaderSnapshotSeq), resp.Header.Get(HeaderSnapshotSeq) != "")
	if b != nil {
		b.PrimarySeq = intHeader(HeaderPrimarySeq)
		b.PrimaryWALBytes = intHeader(HeaderPrimaryWALBytes)
		b.LagBytes = intHeader(HeaderLagBytes)
	}
	if parseErr != nil {
		return b, parseErr
	}
	if readErr != nil {
		return b, fmt.Errorf("%w: %v", ErrWireCorrupt, readErr)
	}
	return b, nil
}

// retryBackoff bounds how fast a failing tailer hammers the primary.
func retryBackoff(attempt int, base time.Duration) time.Duration {
	d := base << min(attempt, 6)
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}
