package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
)

// The byte-cache correctness suite. The cache's one invariant — a reader
// can never observe bytes older than the last acknowledged mutation —
// is exercised three ways: repeated identical reads must come back
// byte-identical and counted as hits, a hammering concurrent reader pool
// must never let a just-acknowledged op read back stale (run under
// `make race`), and a follower applying shipped frames must invalidate
// its own cache exactly like a primary commit does.

// getBody fetches url and returns the raw bytes, demanding status 200
// and a Content-Length header that matches the body (the zero-copy path
// always knows its length up front).
func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	if resp.ContentLength != int64(len(body)) {
		t.Fatalf("GET %s: Content-Length %d, body %d bytes", url, resp.ContentLength, len(body))
	}
	return body
}

// TestByteCacheHitsAndInvalidation: repeated reads serve identical bytes
// and count as hits; a mutation makes the next read re-render.
func TestByteCacheHitsAndInvalidation(t *testing.T) {
	ts := testServer(t)

	first := getBody(t, ts.URL+"/api/city")
	second := getBody(t, ts.URL+"/api/city")
	if !bytes.Equal(first, second) {
		t.Fatal("cached /api/city bytes differ from the first render")
	}

	var health healthResponse
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, &health)
	var hits int64
	for _, ch := range health.Cities {
		hits += ch.ByteCache.Hits
	}
	if hits == 0 {
		t.Fatal("second /api/city read did not count as a byte-cache hit")
	}

	gid := createGroup(t, ts, 3)
	groupURL := fmt.Sprintf("%s/api/groups/%d", ts.URL, gid)
	before := getBody(t, groupURL)
	if !bytes.Equal(before, getBody(t, groupURL)) {
		t.Fatal("cached group bytes differ from the first render")
	}
	// A mutation anywhere in the city bumps the version: the group read
	// still re-renders to the same JSON (the group itself is unchanged),
	// which is exactly the point — staleness is impossible, equal bytes
	// are merely re-derived.
	createPackage(t, ts, gid)
	if !bytes.Equal(before, getBody(t, groupURL)) {
		t.Fatal("group response changed across an unrelated mutation")
	}
}

// itemCount totals the POIs across a package's days.
func itemCount(p packageResponse) int {
	n := 0
	for _, d := range p.Days {
		n += len(d.Items)
	}
	return n
}

// TestByteCacheReadAfterWriteNeverStale alternates remove/add ops on one
// package while a pool of concurrent readers hammers the same read URL,
// and after every acknowledged op demands the next read reflect it. The
// readers keep racing cache fills against the mutations; under -race
// (`make race`) this is also the cache's data-race proof.
func TestByteCacheReadAfterWriteNeverStale(t *testing.T) {
	ts := testServer(t)
	gid := createGroup(t, ts, 3)
	pkg := createPackage(t, ts, gid)
	pkgURL := fmt.Sprintf("%s/api/packages/%d", ts.URL, pkg.ID)
	opsURL := pkgURL + "/ops"
	victim := pkg.Days[0].Items[0].ID
	base := itemCount(pkg)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(pkgURL)
				if err != nil {
					return // server shutting down
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}

	for i := 0; i < 24; i++ {
		op, want := "remove", base-1
		if i%2 == 1 {
			op, want = "add", base
		}
		doJSON(t, "POST", opsURL, opRequest{Member: 0, Op: op, CI: 0, POI: victim}, http.StatusOK, nil)
		var cur packageResponse
		doJSON(t, "GET", pkgURL, nil, http.StatusOK, &cur)
		if got := itemCount(cur); got != want {
			t.Fatalf("op %d (%s): read %d items immediately after the ack, want %d — stale cached bytes", i, op, got, want)
		}
	}
	close(stop)
	wg.Wait()
}

// TestByteCacheFollowerInvalidation: a follower fills its byte cache
// serving a replicated package, then applies further shipped frames —
// the next read on the follower must reflect them, exactly as a local
// commit would have invalidated.
func TestByteCacheFollowerInvalidation(t *testing.T) {
	_, pts, f, fts := replicationPair(t,
		Options{SnapshotDir: t.TempDir()},
		Options{SnapshotDir: t.TempDir()})

	city, key := mcCities[0], mcKeys[0]
	gid, err := mcCreateGroup(pts, city, key)
	if err != nil {
		t.Fatal(err)
	}
	var pkg packageResponse
	if err := tryJSON(pts, "POST", pts.URL+"/cities/"+key+"/packages", createPackageRequest{
		GroupID: gid, Consensus: "pairwise", K: 2,
	}, http.StatusCreated, &pkg); err != nil {
		t.Fatal(err)
	}
	if err := f.Follower().CatchUp(testTimeout()); err != nil {
		t.Fatal(err)
	}

	pkgPath := fmt.Sprintf("/cities/%s/packages/%d", key, pkg.ID)
	before := getBody(t, fts.URL+pkgPath)
	if !bytes.Equal(before, getBody(t, fts.URL+pkgPath)) {
		t.Fatal("follower cache served different bytes for identical reads")
	}

	victim := pkg.Days[0].Items[0].ID
	if err := tryJSON(pts, "POST", pts.URL+pkgPath+"/ops", opRequest{
		Member: 0, Op: "remove", CI: 0, POI: victim,
	}, http.StatusOK, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Follower().CatchUp(testTimeout()); err != nil {
		t.Fatal(err)
	}

	var got packageResponse
	if err := tryJSON(fts, "GET", fts.URL+pkgPath, nil, http.StatusOK, &got); err != nil {
		t.Fatal(err)
	}
	if want := itemCount(pkg) - 1; itemCount(got) != want {
		t.Fatalf("follower read %d items after applying the remove, want %d — its byte cache kept stale bytes", itemCount(got), want)
	}
}
