package server

// Version-keyed rendered-byte caches — the zero-copy hot path.
//
// Every hot read endpoint used to re-encode its JSON response on every
// request. But a city's serving state only changes when a mutation
// commits (or, on a follower, when a shipped frame applies), and the
// city already numbers those events: appliedSeq moves on every commit.
// The byte cache exploits that invariant: rendered response bytes are
// stored keyed by (route, cacheVersion), where cacheVersion is a per-city
// counter seeded from appliedSeq at load and bumped after every applied
// mutation. Serving a cached entry is a map hit plus one Write with
// Content-Length set — zero re-encoding, zero re-marshaling.
//
// Invalidation is free and race-safe by construction:
//
//   - the version is captured BEFORE rendering. If a mutation lands
//     while a response renders, the bump (which happens strictly AFTER
//     the in-memory state change) makes the stored entry unservable —
//     a racing fill can therefore only waste an entry, never serve
//     post-mutation bytes under a pre-mutation key or vice versa;
//   - an entry is served only while its version equals the current one,
//     so a reader can never observe bytes older than the last
//     acknowledged mutation (the bump precedes the mutation's response).
//
// The counter never reuses a value, so entries from superseded versions
// simply miss until they are swept.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"

	"grouptravel/internal/telemetry"
)

const (
	// respCacheCap bounds a city's cache entries; overflow sweeps stale
	// versions, then drops an arbitrary entry. Hot reads (cities list,
	// package/group/POI reads) fit in a handful of entries per version.
	respCacheCap = 256
	// maxCachedBody keeps giant renders (huge ?k= POI listings) from
	// pinning memory; they are served from the pooled buffer instead.
	maxCachedBody = 1 << 20
	// maxPooledBuf drops oversized scratch buffers instead of pooling
	// them, so one large response does not pin its buffer forever.
	maxPooledBuf = 1 << 20
	// maxCacheKeyQuery bounds the query-string part of a cache key; a
	// longer query is served uncached rather than let arbitrary query
	// strings grow the key space.
	maxCacheKeyQuery = 200
)

// respEntry is one cached rendered response.
type respEntry struct {
	version int64
	status  int
	body    []byte
}

// respCache is a per-city byte cache. Entries are only served at their
// exact version; put sweeps stale versions on overflow. The counters are
// registry-backed (telemetry.go) so /healthz and /metrics report the same
// values; they are nil-safe for caches constructed outside a Server.
type respCache struct {
	mu        sync.Mutex
	entries   map[string]respEntry
	hits      *telemetry.Counter
	misses    *telemetry.Counter
	fillRaces *telemetry.Counter
}

// get returns the cached body for key at exactly this version.
func (rc *respCache) get(key string, version int64) ([]byte, int, bool) {
	rc.mu.Lock()
	e, ok := rc.entries[key]
	rc.mu.Unlock()
	if ok && e.version == version {
		rc.hits.Inc()
		return e.body, e.status, true
	}
	rc.misses.Inc()
	return nil, 0, false
}

// put stores a rendered body under (key, version). The cache takes
// ownership of body.
func (rc *respCache) put(key string, version int64, status int, body []byte) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.entries == nil {
		rc.entries = make(map[string]respEntry)
	}
	if _, exists := rc.entries[key]; !exists && len(rc.entries) >= respCacheCap {
		for k, e := range rc.entries {
			if e.version != version {
				delete(rc.entries, k)
			}
		}
		if len(rc.entries) >= respCacheCap {
			for k := range rc.entries {
				delete(rc.entries, k)
				break
			}
		}
	}
	rc.entries[key] = respEntry{version: version, status: status, body: body}
}

// size returns the current entry count.
func (rc *respCache) size() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return len(rc.entries)
}

// byteCacheHealth is the byte cache's slice of a city's health report.
type byteCacheHealth struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	FillRaces int64 `json:"fillRaces"` // fills a concurrent mutation made unservable
	Entries   int   `json:"entries"`
}

// jsonBufPool recycles the scratch buffers every JSON response renders
// into, so the uncached path stops allocating an encoder buffer per
// request.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// writeRawJSON writes pre-rendered JSON bytes with Content-Length set.
func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// renderJSON encodes v exactly as writeJSON does (json.Encoder, trailing
// newline) into a pooled buffer and returns an owned copy of the bytes.
func renderJSON(v any) []byte {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	_ = json.NewEncoder(buf).Encode(v)
	body := append([]byte(nil), buf.Bytes()...)
	if buf.Cap() <= maxPooledBuf {
		jsonBufPool.Put(buf)
	}
	return body
}

// serveCached answers from the city's byte cache when the rendered bytes
// for key are current, and renders-then-fills otherwise. The version is
// captured before render runs — see the package comment above for why
// that ordering is what makes a racing mutation safe. Only 2xx responses
// are cached; error renders depend on transient state.
func (cs *cityState) serveCached(w http.ResponseWriter, key string, status int, render func() any) {
	v := cs.cacheVersion.Load()
	if cs.serveHit(w, key, v) {
		return
	}
	cs.fillAndServe(w, key, v, status, render)
}

// serveHit writes the cached bytes for (key, v) if present. Handlers with
// per-request validation call it before parsing anything: a cached 200
// proves an identical request already validated, so a hit skips the
// whole parse (handlePOIs' hot path).
func (cs *cityState) serveHit(w http.ResponseWriter, key string, v int64) bool {
	if body, st, ok := cs.rcache.get(key, v); ok {
		writeRawJSON(w, st, body)
		return true
	}
	return false
}

// fillAndServe renders, caches under the version v the caller captured
// BEFORE rendering (never a freshly loaded one — a mutation landing
// between capture and render must keep the fill unservable), and writes.
func (cs *cityState) fillAndServe(w http.ResponseWriter, key string, v int64, status int, render func() any) {
	body := renderJSON(render())
	if status < 300 && len(body) <= maxCachedBody {
		cs.rcache.put(key, v, status, body)
		if cs.cacheVersion.Load() != v {
			// A mutation landed mid-render: the entry just stored can never
			// be served. Counted, not corrected — the next reader refills.
			cs.rcache.fillRaces.Inc()
		}
	}
	writeRawJSON(w, status, body)
}

// bumpCacheVersion invalidates the city's byte cache (and the server's
// fleet-level /cities cache). Called strictly AFTER an in-memory state
// change is complete and strictly BEFORE the mutation is acknowledged to
// its client.
func (cs *cityState) bumpCacheVersion() {
	cs.cacheVersion.Add(1)
	if cs.fleetVersion != nil {
		cs.fleetVersion.Add(1)
	}
}

// fleetCache is the server-level cache for GET /cities, keyed by the
// fleet version — bumped by every city's mutations, compactions, loads,
// evictions and cold-head refreshes, since the cities listing aggregates
// all of those.
type fleetCache struct {
	mu      sync.Mutex
	version int64
	body    []byte
}

// get returns the cached listing if it is current.
func (fc *fleetCache) get(version int64) ([]byte, bool) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if fc.body != nil && fc.version == version {
		return fc.body, true
	}
	return nil, false
}

// put stores the listing rendered at version.
func (fc *fleetCache) put(version int64, body []byte) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	fc.version, fc.body = version, body
}
