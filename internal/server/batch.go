package server

import (
	"encoding/binary"
	"math"
	"sync"

	"grouptravel/internal/core"
	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/query"
	"grouptravel/internal/telemetry"
)

// Build-request batching: concurrent Build calls with an identical
// (profile, query, params) triple collapse into one engine run whose
// result every caller shares. The engine's cluster cache already dedups
// the clustering phase; this dedups the CI-construction phase the same
// way, at the server layer, where identical requests actually collide
// (many members of one group pressing "generate" at once).
//
// Only in-flight calls coalesce — nothing is cached after the last caller
// returns, so the dedup can never serve stale results and needs no
// eviction policy. Sharing the built *core.TravelPackage is safe because
// every consumer wraps it in interact.NewSession, which deep-copies at
// the CI level before any mutation.

// buildCall is one in-flight build; done closes when tp/err are final.
type buildCall struct {
	done chan struct{}
	tp   *core.TravelPackage
	err  error
}

// buildGroup is a singleflight keyed on the exact build inputs. dedups is
// registry-backed (telemetry.go) and nil-safe for standalone groups.
type buildGroup struct {
	mu     sync.Mutex
	calls  map[string]*buildCall
	dedups *telemetry.Counter // calls served from another call's flight
}

// do runs build once per key among concurrent callers; late arrivals
// block on the first flight and share its result.
func (g *buildGroup) do(key string, build func() (*core.TravelPackage, error)) (*core.TravelPackage, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*buildCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		g.dedups.Inc()
		<-c.done
		return c.tp, c.err
	}
	c := &buildCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.tp, c.err = build()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.tp, c.err
}

// build runs an engine build deduplicated against identical concurrent
// requests. Callers must treat the result as shared and immutable.
func (cs *cityState) build(gp *profile.Profile, q query.Query, params core.Params) (*core.TravelPackage, error) {
	return cs.builds.do(buildKey(gp, q, params), func() (*core.TravelPackage, error) {
		return cs.engine.Build(gp, q, params)
	})
}

// buildKey serializes the build-identifying inputs byte-exactly — float
// bit patterns, not formatted text — so two requests dedup iff the engine
// would see identical inputs. Profile dimensions are schema-fixed, so the
// concatenation is unambiguous.
func buildKey(gp *profile.Profile, q query.Query, params core.Params) string {
	b := make([]byte, 0, 256)
	putF := func(f float64) { b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f)) }
	putI := func(i int) { b = binary.LittleEndian.AppendUint64(b, uint64(i)) }
	if gp == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		for _, c := range poi.Categories {
			for _, v := range gp.Vector(c) {
				putF(v)
			}
		}
	}
	for _, n := range q.Counts {
		putI(n)
	}
	putF(q.Budget)
	putI(params.K)
	putF(params.Alpha)
	putF(params.Beta)
	putF(params.Gamma)
	putF(params.F)
	putF(params.M)
	putI(params.ClusterIters)
	putI(params.RefineRounds)
	putI(int(params.Seed))
	if params.DistinctItems {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return string(b)
}
