package server

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"grouptravel/internal/dataset"
	"grouptravel/internal/store"
)

// captureState collects a city's full in-memory serving state through the
// same collector compaction uses, normalized for comparison: memoized
// consensus profiles are a derivable cache (rebuilt on demand, not logged
// per mutation), so they are cleared on both sides.
func captureState(t *testing.T, s *Server, key string) *store.ServerState {
	t.Helper()
	c, release, err := s.Registry().Acquire(key)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	st := c.State.collectState()
	for i := range st.Groups {
		st.Groups[i].Profiles = nil
	}
	return st
}

// TestCrashEquivalence is the WAL acceptance test: run every mutation
// kind, kill the server mid-log (records appended, no compaction ever),
// restart over the same directories, and the recovered city must be
// deep-equal to the in-memory state at the last appended record — groups,
// the id allocator, every package, and every package's customization op
// log (which /refine reads).
func TestCrashEquivalence(t *testing.T) {
	city, err := dataset.Generate(dataset.TestSpec("CrashCity", 91))
	if err != nil {
		t.Fatal(err)
	}
	snapDir := t.TempDir()
	// The same *dataset.City backs both servers, so recovered POI and
	// schema pointers must be identical, making reflect.DeepEqual exact.
	opts := Options{Cities: []*dataset.City{city}, SnapshotDir: snapDir}
	s1, err := NewMultiCity(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s1.Handler())
	defer ts.Close()
	const key = "crashcity"
	base := ts.URL + "/cities/" + key

	// One of everything the WAL logs: groupCreate, packageBuild, all four
	// customOp kinds, and a refine rebuild.
	greq := createGroupRequest{}
	for i := 0; i < 3; i++ {
		greq.Members = append(greq.Members, mcRatings(city, i))
	}
	var group groupResponse
	if err := tryJSON(ts, "POST", base+"/groups", greq, 201, &group); err != nil {
		t.Fatal(err)
	}
	var pkg packageResponse
	if err := tryJSON(ts, "POST", base+"/packages", createPackageRequest{
		GroupID: group.ID, Consensus: "pairwise", K: 3,
	}, 201, &pkg); err != nil {
		t.Fatal(err)
	}
	victim := pkg.Days[0].Items[0].ID
	bounds := city.POIs.Bounds()
	for i, op := range []opRequest{
		{Member: 0, Op: "remove", CI: 0, POI: victim},
		{Member: 1, Op: "add", CI: 0, POI: victim},
		{Member: 2, Op: "replace", CI: 1, POI: pkg.Days[1].Items[0].ID},
		{Member: 0, Op: "generate", Rect: &bounds},
	} {
		if err := tryJSON(ts, "POST", fmt.Sprintf("%s/packages/%d/ops", base, pkg.ID), op, 200, nil); err != nil {
			t.Fatalf("op %d (%s): %v", i, op.Op, err)
		}
	}
	var ref refineResponse
	if err := tryJSON(ts, "POST", fmt.Sprintf("%s/packages/%d/refine", base, pkg.ID), refineRequest{
		Strategy: "individual", Rebuild: true, K: 2,
	}, 200, &ref); err != nil {
		t.Fatal(err)
	}
	if ref.Operations != 4 || ref.NewPackage == nil {
		t.Fatalf("refine saw %+v", ref)
	}

	want := captureState(t, s1, key)

	// The whole history must still be log-only: no compaction ran, so the
	// restart below exercises pure WAL replay, not a snapshot read.
	if _, err := os.Stat(filepath.Join(snapDir, key+".state.json")); !os.IsNotExist(err) {
		t.Fatalf("compaction ran mid-test (err=%v); crash test needs a log-only history", err)
	}

	// "Crash": s1 gets no shutdown, no eviction, no compaction — a fresh
	// server simply opens the same directories.
	s2, err := NewMultiCity(opts)
	if err != nil {
		t.Fatal(err)
	}
	got := captureState(t, s2, key)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("recovered state differs from pre-crash state:\nwant: %+v\ngot:  %+v", want, got)
	}

	// And the recovery was clean: every record replayed, nothing cut.
	c, release, err := s2.Registry().Acquire(key)
	if err != nil {
		t.Fatal(err)
	}
	h := c.State.health()
	release()
	if h.WAL == nil || h.WAL.ReplayTruncated != "" || h.WAL.Replayed != 7 {
		t.Fatalf("replay health = %+v, want 7 clean records", h.WAL)
	}

	// The op log is live, not just equal: refining on the restarted
	// server still sees all four pre-crash ops.
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	var ref2 refineResponse
	if err := tryJSON(ts2, "POST", fmt.Sprintf("%s/cities/%s/packages/%d/refine", ts2.URL, key, pkg.ID),
		refineRequest{Strategy: "batch"}, 200, &ref2); err != nil {
		t.Fatal(err)
	}
	if ref2.Operations != 4 {
		t.Fatalf("restarted refine saw %d ops, want 4", ref2.Operations)
	}
}

// TestPreloadCities: -preload-cities warms cities at boot through the
// registry's singleflight path and reports their load latency.
func TestPreloadCities(t *testing.T) {
	s, _ := multiCityServerOpts(t, Options{
		SnapshotDir:   t.TempDir(),
		PreloadCities: []string{"alpha", "gamma"},
	})
	reg := s.Registry()
	if !reg.Loaded("alpha") || !reg.Loaded("gamma") {
		t.Fatalf("preloaded cities not resident: %+v", reg.Stats())
	}
	if reg.Loaded("beta") {
		t.Fatal("beta loaded without being preloaded or requested")
	}
	st := reg.Stats()
	if st.Loads != 2 {
		t.Fatalf("preload ran %d load pipelines, want 2", st.Loads)
	}
	for _, c := range st.Cities {
		if c.LoadMillis <= 0 {
			t.Fatalf("city %s has no load latency: %+v", c.Key, c)
		}
	}
	// A preload key outside the served set is a config error, caught at
	// construction.
	if _, err := NewMultiCity(Options{
		DataDir:       multiCityDataDir(t),
		PreloadCities: []string{"atlantis"},
	}); err == nil {
		t.Fatal("unknown preload city accepted")
	}
}
