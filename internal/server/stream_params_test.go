package server

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestParseStreamParams pins the /wal query contract, in particular that
// non-positive durations are rejected outright: ?wait=0s used to slip
// through the old `d < 0` check and behave like an accidental one-shot.
func TestParseStreamParams(t *testing.T) {
	cases := []struct {
		name  string
		query string
		ok    bool
		want  walStreamParams
	}{
		{name: "defaults", query: "", ok: true,
			want: walStreamParams{hb: defaultHeartbeat}},
		{name: "wait", query: "wait=50ms", ok: true,
			want: walStreamParams{wait: 50 * time.Millisecond, hb: defaultHeartbeat}},
		{name: "wait clamped to cap", query: "wait=10m", ok: true,
			want: walStreamParams{wait: maxWALWait, hb: defaultHeartbeat}},
		{name: "wait zero rejected", query: "wait=0s", ok: false},
		{name: "wait negative rejected", query: "wait=-5s", ok: false},
		{name: "wait garbage rejected", query: "wait=soon", ok: false},
		{name: "stream on", query: "stream=1", ok: true,
			want: walStreamParams{stream: true, hb: defaultHeartbeat}},
		{name: "stream true", query: "stream=true", ok: true,
			want: walStreamParams{stream: true, hb: defaultHeartbeat}},
		{name: "stream off", query: "stream=0", ok: true,
			want: walStreamParams{hb: defaultHeartbeat}},
		{name: "stream garbage rejected", query: "stream=yes", ok: false},
		{name: "hb", query: "hb=1s", ok: true,
			want: walStreamParams{hb: time.Second}},
		{name: "hb clamped up", query: "hb=1ms", ok: true,
			want: walStreamParams{hb: minHeartbeat}},
		{name: "hb clamped down", query: "hb=5m", ok: true,
			want: walStreamParams{hb: maxHeartbeat}},
		{name: "hb zero rejected", query: "hb=0s", ok: false},
		{name: "hb negative rejected", query: "hb=-100ms", ok: false},
		{name: "hb garbage rejected", query: "hb=fast", ok: false},
		{name: "fid", query: "stream=1&fid=follower-b", ok: true,
			want: walStreamParams{stream: true, hb: defaultHeartbeat, fid: "follower-b"}},
		{name: "fid too long rejected",
			query: "fid=" + strings.Repeat("x", maxFollowerIDLen+1), ok: false},
		{name: "fid at cap", query: "fid=" + strings.Repeat("x", maxFollowerIDLen), ok: true,
			want: walStreamParams{hb: defaultHeartbeat, fid: strings.Repeat("x", maxFollowerIDLen)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := httptest.NewRecorder()
			r := httptest.NewRequest("GET", "/cities/x/wal?"+tc.query, nil)
			p, ok := parseStreamParams(w, r)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v (status %d, body %s)", ok, tc.ok, w.Code, w.Body)
			}
			if !tc.ok {
				if w.Code != 400 {
					t.Fatalf("status = %d, want 400", w.Code)
				}
				return
			}
			if p != tc.want {
				t.Fatalf("params = %+v, want %+v", p, tc.want)
			}
		})
	}
}
