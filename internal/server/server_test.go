package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"grouptravel/internal/dataset"
	"grouptravel/internal/poi"
)

var (
	srvOnce sync.Once
	srvCity *dataset.City
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srvOnce.Do(func() {
		c, err := dataset.Generate(dataset.TestSpec("ServerCity", 91))
		if err != nil {
			panic(err)
		}
		srvCity = c
	})
	s, err := New(srvCity)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e apiError
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, wantStatus, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
}

// ratings builds a valid ratings map over the test city's schema.
func ratings(t *testing.T, shift int) map[string][]float64 {
	t.Helper()
	out := map[string][]float64{}
	for _, c := range poi.Categories {
		dim := srvCity.Schema.Dim(c)
		v := make([]float64, dim)
		for j := range v {
			v[j] = float64((j + shift) % 6)
		}
		out[c.String()] = v
	}
	return out
}

func createGroup(t *testing.T, ts *httptest.Server, members int) int {
	t.Helper()
	req := createGroupRequest{}
	for i := 0; i < members; i++ {
		req.Members = append(req.Members, ratings(t, i))
	}
	var resp groupResponse
	doJSON(t, "POST", ts.URL+"/api/groups", req, http.StatusCreated, &resp)
	if resp.Size != members {
		t.Fatalf("group size = %d", resp.Size)
	}
	return resp.ID
}

func createPackage(t *testing.T, ts *httptest.Server, groupID int) packageResponse {
	t.Helper()
	var resp packageResponse
	doJSON(t, "POST", ts.URL+"/api/packages", createPackageRequest{
		GroupID: groupID, Consensus: "pairwise", K: 3,
	}, http.StatusCreated, &resp)
	return resp
}

func TestHealthAndCity(t *testing.T) {
	ts := testServer(t)
	var health healthResponse
	doJSON(t, "GET", ts.URL+"/api/healthz", nil, http.StatusOK, &health)
	if health.Status != "ok" || health.DefaultCity != "servercity" {
		t.Fatalf("health = %+v", health)
	}
	// The legacy "city" field survives: the key before the lazy load...
	if health.City != "servercity" {
		t.Fatalf("health city = %q", health.City)
	}
	if health.Registry.Known != 1 {
		t.Fatalf("registry stats = %+v", health.Registry)
	}
	// /healthz is an alias and must agree.
	var alias healthResponse
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, &alias)
	if alias.Status != "ok" {
		t.Fatalf("alias health = %+v", alias)
	}
	var city cityResponse
	doJSON(t, "GET", ts.URL+"/api/city", nil, http.StatusOK, &city)
	if city.Name != "ServerCity" || city.Key != "servercity" {
		t.Fatalf("city = %q (key %q)", city.Name, city.Key)
	}
	if city.Counts["attr"] == 0 || len(city.Schema["rest"]) == 0 {
		t.Fatalf("city response incomplete: %+v", city)
	}
	// The same city is served under its /cities key.
	var scoped cityResponse
	doJSON(t, "GET", ts.URL+"/cities/servercity", nil, http.StatusOK, &scoped)
	if scoped.Name != city.Name {
		t.Fatalf("scoped city = %+v", scoped)
	}
	doJSON(t, "GET", ts.URL+"/cities/atlantis", nil, http.StatusNotFound, nil)
	// GET /cities lists the only city as loaded default.
	var cities []citySummary
	doJSON(t, "GET", ts.URL+"/cities", nil, http.StatusOK, &cities)
	if len(cities) != 1 || cities[0].Key != "servercity" || !cities[0].Default || !cities[0].Loaded {
		t.Fatalf("cities = %+v", cities)
	}
	// After a build, the health report carries engine cache metrics.
	gid := createGroup(t, ts, 2)
	createPackage(t, ts, gid)
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, &health)
	ch, ok := health.Cities["servercity"]
	if !ok {
		t.Fatalf("loaded city missing from health: %+v", health)
	}
	if ch.Cache.Misses < 1 || ch.Cache.Cap != 64 || ch.Groups < 1 || ch.Packages < 1 {
		t.Fatalf("city health = %+v", ch)
	}
	// ...and the dataset name once the default city is resident.
	if health.City != "ServerCity" {
		t.Fatalf("resident health city = %q", health.City)
	}
}

func TestPOIQueries(t *testing.T) {
	ts := testServer(t)
	var pois []poiResponse
	doJSON(t, "GET", ts.URL+"/api/pois?cat=rest&k=5", nil, http.StatusOK, &pois)
	if len(pois) != 5 {
		t.Fatalf("got %d POIs", len(pois))
	}
	for _, p := range pois {
		if p.Cat != "rest" {
			t.Fatalf("category filter violated: %+v", p)
		}
	}
	// Nearest query.
	doJSON(t, "GET", ts.URL+"/api/pois?near=48.8566,2.3522&k=3", nil, http.StatusOK, &pois)
	if len(pois) != 3 {
		t.Fatalf("nearest returned %d", len(pois))
	}
	// Bad inputs.
	doJSON(t, "GET", ts.URL+"/api/pois?cat=volcano", nil, http.StatusBadRequest, nil)
	doJSON(t, "GET", ts.URL+"/api/pois?near=oops", nil, http.StatusBadRequest, nil)
	doJSON(t, "GET", ts.URL+"/api/pois?k=-1", nil, http.StatusBadRequest, nil)
}

func TestGroupLifecycle(t *testing.T) {
	ts := testServer(t)
	id := createGroup(t, ts, 3)
	var got groupResponse
	doJSON(t, "GET", fmt.Sprintf("%s/api/groups/%d", ts.URL, id), nil, http.StatusOK, &got)
	if got.ID != id || got.Size != 3 {
		t.Fatalf("group = %+v", got)
	}
	if got.Uniformity < 0 || got.Uniformity > 1 {
		t.Fatalf("uniformity = %v", got.Uniformity)
	}
	doJSON(t, "GET", ts.URL+"/api/groups/999", nil, http.StatusNotFound, nil)
	doJSON(t, "GET", ts.URL+"/api/groups/abc", nil, http.StatusNotFound, nil)
	// Empty group rejected.
	doJSON(t, "POST", ts.URL+"/api/groups", createGroupRequest{}, http.StatusBadRequest, nil)
	// Bad ratings rejected.
	doJSON(t, "POST", ts.URL+"/api/groups", createGroupRequest{
		Members: []map[string][]float64{{"rest": {9, 9}}},
	}, http.StatusBadRequest, nil)
}

func TestPackageLifecycle(t *testing.T) {
	ts := testServer(t)
	gid := createGroup(t, ts, 3)
	pkg := createPackage(t, ts, gid)
	if len(pkg.Days) != 3 || !pkg.Valid {
		t.Fatalf("package = %+v", pkg)
	}
	// Every day satisfies the default query: 6 items.
	for _, d := range pkg.Days {
		if len(d.Items) != 6 {
			t.Fatalf("day has %d items", len(d.Items))
		}
	}
	// GET with routes: walking distances appear and days reorder to start
	// at the accommodation.
	var routed packageResponse
	doJSON(t, "GET", fmt.Sprintf("%s/api/packages/%d?routes=1", ts.URL, pkg.ID), nil, http.StatusOK, &routed)
	for _, d := range routed.Days {
		if d.WalkKm <= 0 {
			t.Fatalf("routed day missing walk distance: %+v", d)
		}
		if d.Items[0].Cat != "acco" {
			t.Fatalf("routed day does not start at accommodation: %+v", d.Items[0])
		}
	}
	// Unknown group and bad consensus.
	doJSON(t, "POST", ts.URL+"/api/packages", createPackageRequest{GroupID: 999}, http.StatusNotFound, nil)
	doJSON(t, "POST", ts.URL+"/api/packages", createPackageRequest{GroupID: gid, Consensus: "nope"}, http.StatusBadRequest, nil)
	doJSON(t, "POST", ts.URL+"/api/packages", createPackageRequest{GroupID: gid, K: 5000}, http.StatusBadRequest, nil)
	doJSON(t, "GET", ts.URL+"/api/packages/424242", nil, http.StatusNotFound, nil)
}

func TestCustomizationOps(t *testing.T) {
	ts := testServer(t)
	gid := createGroup(t, ts, 3)
	pkg := createPackage(t, ts, gid)
	url := fmt.Sprintf("%s/api/packages/%d/ops", ts.URL, pkg.ID)

	// REMOVE the first item of day 1.
	target := pkg.Days[0].Items[0].ID
	var op opResponse
	doJSON(t, "POST", url, opRequest{Member: 0, Op: "remove", CI: 0, POI: target}, http.StatusOK, &op)
	if !op.Applied {
		t.Fatal("remove not applied")
	}
	// Removing again fails cleanly.
	doJSON(t, "POST", url, opRequest{Member: 0, Op: "remove", CI: 0, POI: target}, http.StatusUnprocessableEntity, nil)

	// REPLACE returns the recommendation.
	target2 := pkg.Days[0].Items[1].ID
	doJSON(t, "POST", url, opRequest{Member: 1, Op: "replace", CI: 0, POI: target2}, http.StatusOK, &op)
	if op.Replacement == nil || op.Replacement.Cat != pkg.Days[0].Items[1].Cat {
		t.Fatalf("replace response = %+v", op)
	}

	// ADD a nearby restaurant found via the POI API.
	var cands []poiResponse
	doJSON(t, "GET", fmt.Sprintf("%s/api/pois?cat=rest&near=%f,%f&k=8", ts.URL,
		pkg.Days[0].Centroid.Lat, pkg.Days[0].Centroid.Lon), nil, http.StatusOK, &cands)
	added := false
	for _, c := range cands {
		var addResp opResponse
		var buf bytes.Buffer
		_ = json.NewEncoder(&buf).Encode(opRequest{Member: 2, Op: "add", CI: 0, POI: c.ID})
		resp, err := http.Post(url, "application/json", &buf)
		if err != nil {
			t.Fatal(err)
		}
		_ = json.NewDecoder(resp.Body).Decode(&addResp)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && addResp.Applied {
			added = true
			break
		}
	}
	if !added {
		t.Fatal("no candidate could be added")
	}

	// GENERATE with a rectangle over the city.
	var city cityResponse
	doJSON(t, "GET", ts.URL+"/api/city", nil, http.StatusOK, &city)
	rect := map[string]float64{
		"Lat":    city.Bounds["lat"] - city.Bounds["height"]*0.25,
		"Lon":    city.Bounds["lon"] + city.Bounds["width"]*0.25,
		"Width":  city.Bounds["width"] * 0.5,
		"Height": city.Bounds["height"] * 0.5,
	}
	body := map[string]any{"member": 0, "op": "generate", "rect": rect}
	doJSON(t, "POST", url, body, http.StatusOK, &op)
	if op.NewCI == nil || len(op.NewCI.Items) == 0 {
		t.Fatalf("generate response = %+v", op)
	}

	// Bad ops.
	doJSON(t, "POST", url, opRequest{Member: 0, Op: "fly", CI: 0, POI: 1}, http.StatusBadRequest, nil)
	doJSON(t, "POST", url, opRequest{Member: 99, Op: "remove", CI: 0, POI: 1}, http.StatusBadRequest, nil)
	doJSON(t, "POST", url, opRequest{Member: 0, Op: "generate"}, http.StatusBadRequest, nil)
}

func TestRefineEndpoint(t *testing.T) {
	ts := testServer(t)
	gid := createGroup(t, ts, 3)
	pkg := createPackage(t, ts, gid)
	opsURL := fmt.Sprintf("%s/api/packages/%d/ops", ts.URL, pkg.ID)
	doJSON(t, "POST", opsURL, opRequest{Member: 0, Op: "remove", CI: 0, POI: pkg.Days[0].Items[0].ID}, http.StatusOK, nil)

	refineURL := fmt.Sprintf("%s/api/packages/%d/refine", ts.URL, pkg.ID)
	var ref refineResponse
	doJSON(t, "POST", refineURL, refineRequest{Strategy: "batch", Rebuild: true}, http.StatusOK, &ref)
	if ref.Operations != 1 || ref.NewPackage == nil {
		t.Fatalf("refine = %+v", ref)
	}
	if !ref.NewPackage.Valid || len(ref.NewPackage.Days) != len(pkg.Days) {
		t.Fatalf("rebuilt package = %+v", ref.NewPackage)
	}
	// Individual strategy without rebuild (fresh decode target: JSON
	// decoding does not reset absent fields).
	var ref2 refineResponse
	doJSON(t, "POST", refineURL, refineRequest{Strategy: "individual"}, http.StatusOK, &ref2)
	if ref2.Strategy != "individual" || ref2.NewPackage != nil {
		t.Fatalf("refine = %+v", ref2)
	}
	doJSON(t, "POST", refineURL, refineRequest{Strategy: "quantum"}, http.StatusBadRequest, nil)
	// Rebuild k is bounded like package creation.
	doJSON(t, "POST", refineURL, refineRequest{Strategy: "batch", Rebuild: true, K: 10000}, http.StatusBadRequest, nil)
}

func TestConcurrentRequests(t *testing.T) {
	// The server must survive concurrent package builds and reads (the
	// shared engine is concurrency-safe; builds run outside the registry
	// lock and proceed in parallel).
	ts := testServer(t)
	gid := createGroup(t, ts, 3)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			_ = json.NewEncoder(&buf).Encode(createPackageRequest{GroupID: gid, K: 2})
			resp, err := http.Post(ts.URL+"/api/packages", "application/json", &buf)
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestWeightedPackage(t *testing.T) {
	ts := testServer(t)
	gid := createGroup(t, ts, 3)
	var resp packageResponse
	doJSON(t, "POST", ts.URL+"/api/packages", createPackageRequest{
		GroupID: gid, Consensus: "avg", K: 2, Weights: []float64{5, 1, 1},
	}, http.StatusCreated, &resp)
	if !resp.Valid {
		t.Fatal("weighted package invalid")
	}
	// Wrong weight count.
	doJSON(t, "POST", ts.URL+"/api/packages", createPackageRequest{
		GroupID: gid, Consensus: "avg", K: 2, Weights: []float64{1},
	}, http.StatusBadRequest, nil)
}
