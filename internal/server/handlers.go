package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"grouptravel/internal/ci"
	"grouptravel/internal/consensus"
	"grouptravel/internal/core"
	"grouptravel/internal/geo"
	"grouptravel/internal/interact"
	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/query"
	"grouptravel/internal/route"
	"grouptravel/internal/store"
)

// Commit-token and replica-routing headers. Every mutation response
// carries its committed (city, seq) token: X-GT-City names the city the
// record landed in, X-GT-Seq its write-ahead-log sequence. A client (or
// a front-tier router on its behalf) that holds the token can demand
// reads from replicas at or past that sequence — read-your-writes over
// eventually-consistent followers. X-GT-Primary is the pointer a
// read-only replica answers mutations with (403).
const (
	HeaderSeq     = "X-GT-Seq"
	HeaderCity    = "X-GT-City"
	HeaderPrimary = "X-GT-Primary"
	// HeaderAppliedSeq is stamped on every city-scoped GET response: the
	// city's applied WAL sequence at the moment the response was prepared
	// — a lower bound on the state the body reflects (state only moves
	// forward between the stamp and the render, never back). Any client —
	// a router's edge cache, a CDN, a test — can validate read freshness
	// against a commit token without a second round trip. Absent when the
	// city runs without persistence: no sequence space exists then.
	HeaderAppliedSeq = "X-GT-Applied-Seq"
)

// seqToken stamps a mutation's commit token onto the response headers;
// it must run before the status line is written. A zero sequence (no
// persistence configured — and therefore no replicas to outrun) stamps
// nothing.
func (cs *cityState) seqToken(w http.ResponseWriter, seq int64) {
	if seq > 0 {
		w.Header().Set(HeaderCity, cs.key)
		w.Header().Set(HeaderSeq, strconv.FormatInt(seq, 10))
	}
}

// --- city & POIs ---

type cityResponse struct {
	Key    string              `json:"key"`
	Name   string              `json:"name"`
	Counts map[string]int      `json:"poiCounts"`
	Schema map[string][]string `json:"schema"`
	Bounds map[string]float64  `json:"bounds"`
}

func (cs *cityState) handleCity(w http.ResponseWriter, _ *http.Request) {
	cs.serveCached(w, "city", http.StatusOK, func() any {
		counts := cs.city.POIs.CategoryCounts()
		resp := cityResponse{
			Key:    cs.key,
			Name:   cs.city.Name,
			Counts: map[string]int{},
			Schema: map[string][]string{},
		}
		for _, c := range poi.Categories {
			resp.Counts[c.String()] = counts[c]
			resp.Schema[c.String()] = cs.city.Schema.Labels(c)
		}
		b := cs.city.POIs.Bounds()
		resp.Bounds = map[string]float64{"lat": b.Lat, "lon": b.Lon, "width": b.Width, "height": b.Height}
		return resp
	})
}

type poiResponse struct {
	ID   int     `json:"id"`
	Name string  `json:"name"`
	Cat  string  `json:"category"`
	Lat  float64 `json:"lat"`
	Lon  float64 `json:"lon"`
	Type string  `json:"type"`
	Cost float64 `json:"cost"`
}

func toPOIResponse(p *poi.POI) poiResponse {
	return poiResponse{
		ID: p.ID, Name: p.Name, Cat: p.Cat.String(),
		Lat: p.Coord.Lat, Lon: p.Coord.Lon, Type: p.Type, Cost: p.Cost,
	}
}

// handlePOIs lists POIs, optionally filtered by category and/or nearest to
// a point: .../pois?cat=rest&near=48.85,2.35&k=10
func (cs *cityState) handlePOIs(w http.ResponseWriter, r *http.Request) {
	// Cache check before any parsing: a current cached 200 for this exact
	// query string proves an identical request already validated, so the
	// hot path is a map hit plus one Write — no url.Values, no strconv.
	// An unbounded query string would let clients mint cache keys at
	// will; long queries are answered but never cached.
	cacheable := len(r.URL.RawQuery) <= maxCacheKeyQuery
	var key string
	v := cs.cacheVersion.Load()
	if cacheable {
		key = "pois?" + r.URL.RawQuery
		if cs.serveHit(w, key, v) {
			return
		}
	}
	q := r.URL.Query()
	var cat *poi.Category
	if cString := q.Get("cat"); cString != "" {
		c, err := poi.ParseCategory(cString)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad cat: %v", err)
			return
		}
		cat = &c
	}
	k := 20
	if ks := q.Get("k"); ks != "" {
		n, err := strconv.Atoi(ks)
		if err != nil || n < 1 || n > 500 {
			writeErr(w, http.StatusBadRequest, "bad k %q", ks)
			return
		}
		k = n
	}
	var lat, lon float64
	hasNear := false
	if near := q.Get("near"); near != "" {
		parts := strings.Split(near, ",")
		if len(parts) != 2 {
			writeErr(w, http.StatusBadRequest, "near must be lat,lon")
			return
		}
		var err1, err2 error
		lat, err1 = strconv.ParseFloat(parts[0], 64)
		lon, err2 = strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil {
			writeErr(w, http.StatusBadRequest, "near must be lat,lon")
			return
		}
		hasNear = true
	}
	render := func() any {
		var out []poiResponse
		if hasNear {
			for _, p := range cs.city.POIs.Nearest(geo.Point{Lat: lat, Lon: lon}, k, cat, nil) {
				out = append(out, toPOIResponse(p))
			}
		} else {
			pois := cs.city.POIs.All()
			if cat != nil {
				pois = cs.city.POIs.ByCategory(*cat)
			}
			for i, p := range pois {
				if i >= k {
					break
				}
				out = append(out, toPOIResponse(p))
			}
		}
		return out
	}
	if !cacheable {
		writeJSON(w, http.StatusOK, render())
		return
	}
	cs.fillAndServe(w, key, v, http.StatusOK, render)
}

// --- groups ---

type createGroupRequest struct {
	// Members' ratings per category: 0-5 per type/topic, dimensions per
	// the city's schema (GET /cities/{city}).
	Members []map[string][]float64 `json:"members"`
}

type groupResponse struct {
	ID         int     `json:"id"`
	Size       int     `json:"size"`
	Uniformity float64 `json:"uniformity"`
	MedianUser int     `json:"medianUser"`
	// Seq is the creating mutation's committed WAL sequence (the commit
	// token, mirrored in X-GT-Seq); 0 on reads and without persistence.
	Seq int64 `json:"seq,omitempty"`
}

func (cs *cityState) handleCreateGroup(w http.ResponseWriter, r *http.Request) {
	var req createGroupRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	if len(req.Members) == 0 {
		writeErr(w, http.StatusBadRequest, "a group needs at least one member")
		return
	}
	members := make([]*profile.Profile, 0, len(req.Members))
	for i, m := range req.Members {
		ratings := map[poi.Category][]float64{}
		for cString, vals := range m {
			c, err := poi.ParseCategory(cString)
			if err != nil {
				writeErr(w, http.StatusBadRequest, "member %d: %v", i, err)
				return
			}
			ratings[c] = vals
		}
		p, err := profile.FromRatings(cs.city.Schema, ratings)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "member %d: %v", i, err)
			return
		}
		members = append(members, p)
	}
	g, err := profile.NewGroup(cs.city.Schema, members)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	var id int
	seq := cs.commit(func(logRec func(store.WALRecord)) {
		cs.mu.Lock()
		id = cs.nextID
		cs.nextID++
		cs.groups[id] = &groupState{group: g, profiles: map[string]*profile.Profile{}}
		cs.mu.Unlock()
		logRec(store.GroupCreateRecord(id, g))
	})
	cs.seqToken(w, seq)
	writeJSON(w, http.StatusCreated, groupResponse{
		ID: id, Size: g.Size(), Uniformity: g.Uniformity(), MedianUser: g.MedianUser(), Seq: seq,
	})
}

func (cs *cityState) lookupGroup(id int) (*groupState, error) {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	gs, ok := cs.groups[id]
	if !ok {
		return nil, fmt.Errorf("group %d not found", id)
	}
	return gs, nil
}

func (cs *cityState) groupByID(idStr string) (*groupState, int, error) {
	id, err := strconv.Atoi(idStr)
	if err != nil {
		return nil, 0, fmt.Errorf("bad group id %q", idStr)
	}
	gs, err := cs.lookupGroup(id)
	if err != nil {
		return nil, 0, err
	}
	return gs, id, nil
}

func (cs *cityState) handleGetGroup(w http.ResponseWriter, r *http.Request) {
	gs, id, err := cs.groupByID(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	cs.serveCached(w, "grp/"+r.PathValue("id"), http.StatusOK, func() any {
		return groupResponse{
			ID: id, Size: gs.group.Size(), Uniformity: gs.group.Uniformity(), MedianUser: gs.group.MedianUser(),
		}
	})
}

// --- packages ---

type createPackageRequest struct {
	GroupID   int       `json:"group"`
	Consensus string    `json:"consensus"` // avg | leastmisery | pairwise | variance
	K         int       `json:"k"`
	Query     *queryReq `json:"query,omitempty"`
	Weights   []float64 `json:"weights,omitempty"` // optional per-member weights
}

type queryReq struct {
	Acco, Trans, Rest, Attr int
	Budget                  float64 // <= 0 means unlimited
}

type packageResponse struct {
	ID    int       `json:"id"`
	City  string    `json:"city"`
	Query string    `json:"query"`
	Days  []dayJSON `json:"days"`
	Dims  dimsJSON  `json:"dimensions"`
	Valid bool      `json:"valid"`
	// Seq is the creating mutation's committed WAL sequence (the commit
	// token, mirrored in X-GT-Seq); 0 on reads and without persistence.
	Seq int64 `json:"seq,omitempty"`
}

type dayJSON struct {
	Centroid geo.Point     `json:"centroid"`
	Cost     float64       `json:"cost"`
	WalkKm   float64       `json:"walkKm,omitempty"`
	Items    []poiResponse `json:"items"`
}

type dimsJSON struct {
	Representativity float64 `json:"representativity"`
	WithinCIKm       float64 `json:"withinCIKm"`
	Personalization  float64 `json:"personalization"`
}

// methodByName resolves a consensus name (with aliases) to the method and
// its canonical name. The canonical name — not the raw request string — is
// what the profile memo and persisted package records key on, so "avg" and
// "average" share one memoized aggregation.
func methodByName(name string) (consensus.Method, string, error) {
	switch strings.ToLower(name) {
	case "", "pairwise":
		return consensus.PairwiseDis, "pairwise", nil
	case "avg", "average":
		return consensus.AveragePref, "avg", nil
	case "leastmisery", "lm":
		return consensus.LeastMisery, "leastmisery", nil
	case "variance":
		return consensus.VarianceDis, "variance", nil
	case "mostpleasure":
		return consensus.MostPleasure, "mostpleasure", nil
	case "avgnomisery":
		return consensus.AvgNoMisery, "avgnomisery", nil
	default:
		return consensus.Method{}, "", fmt.Errorf("unknown consensus %q", name)
	}
}

func (cs *cityState) handleCreatePackage(w http.ResponseWriter, r *http.Request) {
	var req createPackageRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	gs, err := cs.lookupGroup(req.GroupID)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	method, canon, err := methodByName(req.Consensus)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	q := query.Default()
	if req.Query != nil {
		budget := req.Query.Budget
		if budget <= 0 {
			budget = query.Default().Budget
		}
		q, err = query.New(req.Query.Acco, req.Query.Trans, req.Query.Rest, req.Query.Attr, budget)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	k := req.K
	if k == 0 {
		k = 5
	}
	if k < 1 || k > 30 {
		writeErr(w, http.StatusBadRequest, "k = %d out of range [1,30]", k)
		return
	}

	gp, err := gs.profileFor(canon, method, req.Weights)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}

	// The build runs outside every lock: the engine is concurrency-safe,
	// so packages for different groups (or different queries, or different
	// cities) construct in parallel — and identical concurrent requests
	// collapse into one engine run (see batch.go).
	tp, err := cs.build(gp, q, core.DefaultParams(k))
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	sess, err := interact.NewSession(cs.city, tp)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	ps := &packageState{groupID: req.GroupID, method: canon, session: sess}
	var id int
	seq := cs.commit(func(logRec func(store.WALRecord)) {
		id = cs.register(ps)
		logRec(store.PackageBuildRecord(id, req.GroupID, canon, tp))
	})
	ps.mu.Lock()
	resp := cs.renderPackage(id, ps, false)
	ps.mu.Unlock()
	resp.Seq = seq
	cs.seqToken(w, seq)
	writeJSON(w, http.StatusCreated, resp)
}

// renderPackage renders a package; the caller holds ps.mu.
func (cs *cityState) renderPackage(id int, ps *packageState, routes bool) packageResponse {
	tp := ps.session.Package()
	resp := packageResponse{ID: id, City: tp.City, Query: tp.Query.String(), Valid: tp.Valid()}
	d := tp.Measure()
	resp.Dims = dimsJSON{
		Representativity: d.Representativity,
		WithinCIKm:       d.RawDistance,
		Personalization:  d.Personalization,
	}
	for _, c := range tp.CIs {
		day := dayJSON{Centroid: c.Centroid, Cost: c.Cost()}
		items := c.Items
		if routes {
			if plan, err := route.PlanDay(c); err == nil {
				ordered := make([]*poi.POI, len(plan.Order))
				for i, idx := range plan.Order {
					ordered[i] = c.Items[idx]
				}
				items = ordered
				day.WalkKm = plan.LengthKm
			}
		}
		for _, it := range items {
			day.Items = append(day.Items, toPOIResponse(it))
		}
		resp.Days = append(resp.Days, day)
	}
	return resp
}

func (cs *cityState) packageByID(idStr string) (*packageState, int, error) {
	id, err := strconv.Atoi(idStr)
	if err != nil {
		return nil, 0, fmt.Errorf("bad package id %q", idStr)
	}
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	ps, ok := cs.packages[id]
	if !ok {
		return nil, 0, fmt.Errorf("package %d not found", id)
	}
	return ps, id, nil
}

func (cs *cityState) handleGetPackage(w http.ResponseWriter, r *http.Request) {
	ps, id, err := cs.packageByID(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	routes := r.URL.Query().Get("routes") == "1"
	key := "pkg/" + r.PathValue("id")
	if routes {
		key += "/r"
	}
	cs.serveCached(w, key, http.StatusOK, func() any {
		ps.mu.Lock()
		defer ps.mu.Unlock()
		return cs.renderPackage(id, ps, routes)
	})
}

// --- customization operators ---

type opRequest struct {
	Member int       `json:"member"`
	Op     string    `json:"op"` // remove | add | replace | generate
	CI     int       `json:"ci"`
	POI    int       `json:"poi"`
	Rect   *geo.Rect `json:"rect,omitempty"`
}

type opResponse struct {
	Applied     bool         `json:"applied"`
	Replacement *poiResponse `json:"replacement,omitempty"`
	NewCI       *dayJSON     `json:"newCI,omitempty"`
	// Seq is the op's committed WAL sequence (the commit token, mirrored
	// in X-GT-Seq); 0 without persistence.
	Seq int64 `json:"seq,omitempty"`
}

func (cs *cityState) handleOps(w http.ResponseWriter, r *http.Request) {
	ps, pid, err := cs.packageByID(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	var req opRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	cs.mu.RLock()
	gs := cs.groups[ps.groupID]
	cs.mu.RUnlock()
	if req.Member < 0 || (gs != nil && req.Member >= gs.group.Size()) {
		writeErr(w, http.StatusBadRequest, "member %d outside the group", req.Member)
		return
	}
	// Validate the op shape before taking the package lock, so the
	// critical section below has a single exit.
	op := strings.ToLower(req.Op)
	switch op {
	case "remove", "add", "replace", "generate":
	default:
		writeErr(w, http.StatusBadRequest, "unknown op %q", req.Op)
		return
	}
	if op == "generate" && req.Rect == nil {
		writeErr(w, http.StatusBadRequest, "generate requires rect")
		return
	}
	// Session mutations serialize on the package's own lock; operations on
	// other packages proceed concurrently. The WAL record is captured AND
	// appended in the same critical section as the op: the logged post-op
	// CI state must be exactly what this op produced, and the log order
	// must match the application order — a record landing behind a later
	// op's record would replay the older CI state on top of the newer.
	resp := opResponse{}
	seq := cs.commit(func(logRec func(store.WALRecord)) {
		ps.mu.Lock()
		defer ps.mu.Unlock()
		switch op {
		case "remove":
			err = ps.session.Remove(req.Member, req.CI, req.POI)
		case "add":
			err = ps.session.Add(req.Member, req.CI, req.POI)
		case "replace":
			var repl *poi.POI
			repl, err = ps.session.Replace(req.Member, req.CI, req.POI)
			if err == nil {
				pr := toPOIResponse(repl)
				resp.Replacement = &pr
			}
		case "generate":
			var newCI *ci.CI
			newCI, err = ps.session.Generate(req.Member, *req.Rect)
			if err == nil {
				day := dayJSON{Centroid: newCI.Centroid, Cost: newCI.Cost()}
				for _, it := range newCI.Items {
					day.Items = append(day.Items, toPOIResponse(it))
				}
				resp.NewCI = &day
			}
		}
		if err != nil {
			return
		}
		log := ps.session.Log()
		applied := log[len(log)-1]
		logRec(store.CustomOpRecord(pid, applied, ps.session.Package().CIs[applied.CIIndex]))
	})
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp.Applied = true
	resp.Seq = seq
	cs.seqToken(w, seq)
	writeJSON(w, http.StatusOK, resp)
}

// --- refinement ---

type refineRequest struct {
	Strategy string `json:"strategy"` // batch | individual
	Rebuild  bool   `json:"rebuild"`  // also build a new package from the refined profile
	K        int    `json:"k"`
}

type refineResponse struct {
	Strategy   string           `json:"strategy"`
	Operations int              `json:"operations"`
	NewPackage *packageResponse `json:"newPackage,omitempty"`
	// Seq is the rebuild's committed WAL sequence (the commit token,
	// mirrored in X-GT-Seq); 0 when nothing was rebuilt — a refine
	// without rebuild mutates nothing.
	Seq int64 `json:"seq,omitempty"`
}

func (cs *cityState) handleRefine(w http.ResponseWriter, r *http.Request) {
	ps, pid, err := cs.packageByID(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	var req refineRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	cs.mu.RLock()
	gs, ok := cs.groups[ps.groupID]
	cs.mu.RUnlock()
	if !ok {
		writeErr(w, http.StatusConflict, "group %d no longer exists", ps.groupID)
		return
	}
	method, _, err := methodByName(ps.method)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// Snapshot the session and compute the refined profile under the
	// package lock (the log is shared mutable state); the rebuild below
	// runs on the engine without any lock.
	ps.mu.Lock()
	tp := ps.session.Package()
	base := tp.Group
	if base == nil {
		ps.mu.Unlock()
		writeErr(w, http.StatusUnprocessableEntity, "package was not personalized")
		return
	}
	ops := ps.session.Log()

	var refined *profile.Profile
	switch strings.ToLower(req.Strategy) {
	case "", "batch":
		refined, err = interact.RefineBatch(base, ops)
		req.Strategy = "batch"
	case "individual":
		_, refined, err = interact.RefineIndividual(gs.group, method, ops)
	default:
		ps.mu.Unlock()
		writeErr(w, http.StatusBadRequest, "unknown strategy %q", req.Strategy)
		return
	}
	nOps := len(ops)
	kFallback := len(tp.CIs)
	q := tp.Query
	ps.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp := refineResponse{Strategy: strings.ToLower(req.Strategy), Operations: nOps}
	if req.Rebuild {
		k := req.K
		if k == 0 {
			k = kFallback
		}
		// Same bound as package creation: an unchecked K here would let
		// one request run an arbitrarily large clustering.
		if k < 1 || k > 30 {
			writeErr(w, http.StatusBadRequest, "k = %d out of range [1,30]", k)
			return
		}
		newTP, err := cs.build(refined, q, core.DefaultParams(k))
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		sess, err := interact.NewSession(cs.city, newTP)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		nps := &packageState{groupID: ps.groupID, method: ps.method, session: sess}
		var id int
		resp.Seq = cs.commit(func(logRec func(store.WALRecord)) {
			id = cs.register(nps)
			logRec(store.RefineRecord(id, ps.groupID, ps.method, newTP, pid, resp.Strategy))
		})
		nps.mu.Lock()
		pr := cs.renderPackage(id, nps, false)
		nps.mu.Unlock()
		resp.NewPackage = &pr
	}
	cs.seqToken(w, resp.Seq)
	writeJSON(w, http.StatusOK, resp)
}
