package server

import "sync"

// commitNotify is a per-city versioned broadcast: writers announce "the
// applied sequence reached seq", waiters block until the announced head
// passes the sequence they have already seen. It is the wakeup primitive
// behind the /wal long-poll and push stream — and deliberately generic
// (nothing replication-specific in it) so the same notifier can later
// drive SSE collaboration streams for a city's groups.
//
// The broadcast is a swapped channel: every wake closes the current
// channel (releasing all waiters at once) and installs a fresh one.
// Waiters re-check the head after every release, so a wake whose seq
// does not advance the head (promotion sealing, a failed commit) still
// forces a re-check without lying about the position.
type commitNotify struct {
	mu   sync.Mutex
	head int64         // highest announced applied sequence
	ch   chan struct{} // closed on every wake; never nil
}

func newCommitNotify() *commitNotify {
	return &commitNotify{ch: make(chan struct{})}
}

// wake announces that the city's applied sequence reached seq (0 or a
// regressing seq still releases waiters — a generation tick — but never
// moves the head backwards).
func (n *commitNotify) wake(seq int64) {
	n.mu.Lock()
	if seq > n.head {
		n.head = seq
	}
	close(n.ch)
	n.ch = make(chan struct{})
	n.mu.Unlock()
}

// await returns the announced head and the channel the next wake will
// close. The caller pattern:
//
//	head, ch := n.await()
//	if head > cursor { ...collect and serve... }
//	select { case <-ch: recheck; case <-timeout: ... }
//
// The head and channel are read under one lock acquisition, so a wake
// cannot slip between "head is stale" and "start waiting".
func (n *commitNotify) await() (int64, <-chan struct{}) {
	n.mu.Lock()
	head, ch := n.head, n.ch
	n.mu.Unlock()
	return head, ch
}
