package server

import (
	"sync"
	"sync/atomic"
	"testing"

	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
	"grouptravel/internal/profile"
	"grouptravel/internal/query"
	"grouptravel/internal/rng"
	"grouptravel/internal/telemetry"
)

// TestBuildSingleflight: concurrent calls with the same key share one
// build; different keys run independently; nothing is cached once the
// flight lands.
func TestBuildSingleflight(t *testing.T) {
	g := buildGroup{dedups: &telemetry.Counter{}}
	release := make(chan struct{})
	var calls atomic.Int32
	slow := func() (*core.TravelPackage, error) {
		calls.Add(1)
		<-release
		return &core.TravelPackage{City: "slow"}, nil
	}

	const followers = 8
	results := make(chan *core.TravelPackage, followers+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tp, err := g.do("k", slow)
		if err != nil {
			t.Error(err)
		}
		results <- tp
	}()
	// Wait for the leader to be in flight so the followers provably join
	// it rather than racing to start their own.
	for calls.Load() == 0 {
	}
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tp, err := g.do("k", slow)
			if err != nil {
				t.Error(err)
			}
			results <- tp
		}()
	}
	// A different key is not blocked behind the in-flight "k".
	other, err := g.do("other", func() (*core.TravelPackage, error) {
		return &core.TravelPackage{City: "other"}, nil
	})
	if err != nil || other.City != "other" {
		t.Fatalf("independent key blocked or failed: %v %v", other, err)
	}

	// Release only after every follower has provably joined the flight —
	// otherwise a late follower would start its own build.
	for g.dedups.Value() < followers {
	}
	close(release)
	wg.Wait()
	close(results)
	var first *core.TravelPackage
	for tp := range results {
		if first == nil {
			first = tp
		} else if tp != first {
			t.Fatal("followers did not share the leader's result")
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("build ran %d times for one key, want 1", n)
	}
	if d := g.dedups.Value(); d != followers {
		t.Fatalf("dedups = %d, want %d", d, followers)
	}

	// After the flight lands, the key is forgotten: a new call builds
	// fresh (no stale caching).
	fresh, err := g.do("k", func() (*core.TravelPackage, error) {
		return &core.TravelPackage{City: "fresh"}, nil
	})
	if err != nil || fresh.City != "fresh" {
		t.Fatalf("post-flight call did not rebuild: %v %v", fresh, err)
	}
}

// TestBuildKey: the key must separate everything the engine's output
// depends on and nothing else.
func TestBuildKey(t *testing.T) {
	c, err := dataset.Generate(dataset.TestSpec("KeyCity", 93))
	if err != nil {
		t.Fatal(err)
	}
	p1 := profile.GenerateRandomProfile(c.Schema, rng.New(1))
	p1b := profile.GenerateRandomProfile(c.Schema, rng.New(1)) // same seed: equal values, distinct pointer
	p2 := profile.GenerateRandomProfile(c.Schema, rng.New(2))
	q := query.Default()
	params := core.DefaultParams(3)

	base := buildKey(p1, q, params)
	if buildKey(p1b, q, params) != base {
		t.Fatal("value-equal profiles keyed differently")
	}
	distinct := map[string]string{
		"profile": buildKey(p2, q, params),
		"nil":     buildKey(nil, q, params),
		"query":   buildKey(p1, query.MustNew(1, 1, 1, 1, 5), params),
		"k":       buildKey(p1, q, core.DefaultParams(4)),
	}
	seed := params
	seed.Seed = 7
	distinct["seed"] = buildKey(p1, q, seed)
	dist := params
	dist.DistinctItems = true
	distinct["distinct"] = buildKey(p1, q, dist)
	for name, k := range distinct {
		if k == base {
			t.Fatalf("case %q collided with the base key", name)
		}
	}
}
