package server

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"grouptravel/internal/dataset"
)

// The replication correctness harness: a primary and an in-process
// follower, driven over HTTP exactly like production, with the follower's
// tailers under manual control (FollowPoll < 0) so every test can
// interleave syncs, kills, compactions and corruption deterministically —
// and still run the whole thing under -race via `make race`.

// replicationPair builds a primary over the shared multi-city data
// directory and a follower replicating from it. Both servers are handed
// the same *dataset.City objects, so POI and schema pointers coincide and
// reflect.DeepEqual between their states is exact (the same trick
// TestCrashEquivalence uses).
func replicationPair(t *testing.T, primaryOpts, followerOpts Options) (primary *Server, pts *httptest.Server, follower *Server, fts *httptest.Server) {
	t.Helper()
	multiCityDataDir(t) // ensure mcCities exist
	primaryOpts.Cities = mcCities
	p, err := NewMultiCity(primaryOpts)
	if err != nil {
		t.Fatal(err)
	}
	pts = httptest.NewServer(p.Handler())
	t.Cleanup(pts.Close)
	f, fts := followerFor(t, pts.URL, followerOpts)
	return p, pts, f, fts
}

// followerFor builds (or restarts) a follower against a primary URL.
func followerFor(t *testing.T, primaryURL string, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	opts.Cities = mcCities
	opts.Follow = primaryURL
	if opts.FollowPoll == 0 {
		opts.FollowPoll = -1 // manual syncs unless a test wants tailers
	}
	f, err := NewMultiCity(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	fts := httptest.NewServer(f.Handler())
	t.Cleanup(fts.Close)
	return f, fts
}

// mutator drives one city's randomized workload over HTTP: group
// creations, package builds, all four customization ops, and refine
// rebuilds, with the ids it has created so far as the op targets.
type mutator struct {
	ts   *httptest.Server
	city *dataset.City
	key  string
	rng  *rand.Rand

	groups   []int
	packages []int
}

func (m *mutator) base() string { return m.ts.URL + "/cities/" + m.key }

func (m *mutator) step(t *testing.T) {
	switch k := m.rng.Intn(10); {
	case k < 2 || len(m.groups) == 0: // create a group
		gid, err := mcCreateGroup(m.ts, m.city, m.key)
		if err != nil {
			t.Error(err)
			return
		}
		m.groups = append(m.groups, gid)
	case k < 5 || len(m.packages) == 0: // build a package
		gid := m.groups[m.rng.Intn(len(m.groups))]
		var pkg packageResponse
		if err := tryJSON(m.ts, "POST", m.base()+"/packages", createPackageRequest{
			GroupID: gid, Consensus: []string{"pairwise", "avg", "leastmisery"}[m.rng.Intn(3)], K: 2 + m.rng.Intn(2),
		}, 201, &pkg); err != nil {
			t.Error(err)
			return
		}
		m.packages = append(m.packages, pkg.ID)
	case k < 9: // customization op
		pid := m.packages[m.rng.Intn(len(m.packages))]
		var cur packageResponse
		if err := tryJSON(m.ts, "GET", fmt.Sprintf("%s/packages/%d", m.base(), pid), nil, 200, &cur); err != nil {
			t.Error(err)
			return
		}
		ci := m.rng.Intn(len(cur.Days))
		op := opRequest{Member: m.rng.Intn(3), CI: ci}
		switch m.rng.Intn(4) {
		case 0:
			op.Op = "remove"
			if len(cur.Days[ci].Items) == 0 {
				return
			}
			op.POI = cur.Days[ci].Items[m.rng.Intn(len(cur.Days[ci].Items))].ID
		case 1:
			op.Op = "add"
			op.POI = m.city.POIs.All()[m.rng.Intn(m.city.POIs.Len())].ID
		case 2:
			op.Op = "replace"
			if len(cur.Days[ci].Items) == 0 {
				return
			}
			op.POI = cur.Days[ci].Items[m.rng.Intn(len(cur.Days[ci].Items))].ID
		case 3:
			op.Op = "generate"
			bounds := m.city.POIs.Bounds()
			op.Rect = &bounds
		}
		// Ops can legitimately fail (422: removing from a 1-item CI, adding
		// a duplicate); anything else is a test failure.
		url := fmt.Sprintf("%s/packages/%d/ops", m.base(), pid)
		if err := tryJSON(m.ts, "POST", url, op, 200, nil); err != nil && !strings.Contains(err.Error(), "status 422") {
			t.Error(err)
		}
	default: // refine with rebuild
		pid := m.packages[m.rng.Intn(len(m.packages))]
		var ref refineResponse
		if err := tryJSON(m.ts, "POST", fmt.Sprintf("%s/packages/%d/refine", m.base(), pid), refineRequest{
			Strategy: []string{"batch", "individual"}[m.rng.Intn(2)], Rebuild: true,
		}, 200, &ref); err != nil {
			t.Error(err)
			return
		}
		if ref.NewPackage != nil {
			m.packages = append(m.packages, ref.NewPackage.ID)
		}
	}
}

// assertConverged deep-equals the follower's full state against the
// primary's for every city — groups, id allocator, packages, and each
// package's customization op log.
func assertConverged(t *testing.T, primary, follower *Server, keys []string) {
	t.Helper()
	for _, key := range keys {
		want := captureState(t, primary, key)
		got := captureState(t, follower, key)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: follower state differs from primary:\nprimary: %+v\nfollower: %+v", key, want, got)
		}
	}
}

// TestReplicationConvergence is the acceptance test: a randomized,
// concurrent mutation workload across several cities on the primary,
// with the follower tailing mid-workload, must leave the follower — after
// catch-up — deep-equal to the primary in every city.
func TestReplicationConvergence(t *testing.T) {
	p, pts, f, _ := replicationPair(t,
		Options{SnapshotDir: t.TempDir()},
		Options{SnapshotDir: t.TempDir()})

	// Tail concurrently with the workload: shipping must never depend on
	// the log being quiescent.
	done := make(chan struct{})
	var tailers sync.WaitGroup
	for _, key := range mcKeys {
		tailers.Add(1)
		go func(key string) {
			defer tailers.Done()
			for {
				select {
				case <-done:
					return
				default:
					_ = f.Follower().Sync(key) // transient rotation races retry next round
					time.Sleep(time.Millisecond)
				}
			}
		}(key)
	}

	var wg sync.WaitGroup
	for ci, key := range mcKeys {
		wg.Add(1)
		go func(ci int, key string) {
			defer wg.Done()
			m := &mutator{ts: pts, city: mcCities[ci], key: key, rng: rand.New(rand.NewSource(int64(1000 + ci)))}
			for i := 0; i < 12; i++ {
				m.step(t)
			}
		}(ci, key)
	}
	wg.Wait()
	close(done)
	tailers.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if err := f.Follower().CatchUp(testTimeout()); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, p, f, mcKeys)

	// Lag reports clean convergence on every city.
	for _, key := range mcKeys {
		lag, ok := f.Follower().Lag(key)
		if !ok || lag.Records != 0 || lag.Err != "" {
			t.Fatalf("%s lag after catch-up: %+v", key, lag)
		}
		if lag.AppliedSeq == 0 || lag.AppliedSeq != lag.PrimarySeq {
			t.Fatalf("%s applied %d vs primary %d", key, lag.AppliedSeq, lag.PrimarySeq)
		}
	}
}

// TestFollowerReadsAndRejectsWrites: the follower serves the replicated
// read surface and 403s every mutation with a pointer at the primary.
func TestFollowerReadsAndRejectsWrites(t *testing.T) {
	_, pts, f, fts := replicationPair(t,
		Options{SnapshotDir: t.TempDir()},
		Options{SnapshotDir: t.TempDir()})
	gid, err := mcCreateGroup(pts, mcCities[0], "alpha")
	if err != nil {
		t.Fatal(err)
	}
	var pkg packageResponse
	if err := tryJSON(pts, "POST", pts.URL+"/cities/alpha/packages", createPackageRequest{
		GroupID: gid, Consensus: "pairwise", K: 2,
	}, 201, &pkg); err != nil {
		t.Fatal(err)
	}
	if err := f.Follower().CatchUp(testTimeout()); err != nil {
		t.Fatal(err)
	}

	// Reads serve the replicated copy.
	var group groupResponse
	if err := tryJSON(fts, "GET", fmt.Sprintf("%s/cities/alpha/groups/%d", fts.URL, gid), nil, 200, &group); err != nil {
		t.Fatal(err)
	}
	var read packageResponse
	if err := tryJSON(fts, "GET", fmt.Sprintf("%s/cities/alpha/packages/%d", fts.URL, pkg.ID), nil, 200, &read); err != nil {
		t.Fatal(err)
	}
	if pkgFingerprint(t, read) != pkgFingerprint(t, pkg) {
		t.Fatal("follower serves a different package than the primary built")
	}

	// Mutations are refused with the primary's address.
	resp, err := http.Post(fts.URL+"/cities/alpha/groups", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden || !strings.Contains(string(body), pts.URL) {
		t.Fatalf("follower mutation: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-GT-Primary"); got != pts.URL {
		t.Fatalf("X-GT-Primary = %q", got)
	}

	// The follower's healthz reports its role and per-city replication.
	var health healthResponse
	if err := tryJSON(fts, "GET", fts.URL+"/healthz", nil, 200, &health); err != nil {
		t.Fatal(err)
	}
	if health.Role != "follower" || health.Primary != pts.URL {
		t.Fatalf("health role=%q primary=%q", health.Role, health.Primary)
	}
	ch := health.Cities["alpha"]
	if ch.Replication == nil || ch.Replication.Records != 0 || ch.Replication.AppliedSeq == 0 {
		t.Fatalf("replication health: %+v", ch.Replication)
	}
}

// TestFollowerKilledMidStreamResumes is the resume chaos test: a follower
// dies mid-replication; a fresh process over the same state directory
// must resume from its last durable sequence — no gap, no double-apply —
// and converge without ever needing a snapshot handoff.
func TestFollowerKilledMidStreamResumes(t *testing.T) {
	followerDir := t.TempDir()
	p, pts, f1, _ := replicationPair(t,
		Options{SnapshotDir: t.TempDir()},
		Options{SnapshotDir: followerDir})

	m := &mutator{ts: pts, city: mcCities[0], key: "alpha", rng: rand.New(rand.NewSource(7))}
	for i := 0; i < 8; i++ {
		m.step(t)
	}
	if err := f1.Follower().CatchUp(testTimeout()); err != nil {
		t.Fatal(err)
	}
	lag1, _ := f1.Follower().Lag("alpha")
	if lag1.AppliedSeq == 0 {
		t.Fatal("follower applied nothing before the kill")
	}
	// "Kill": f1 gets no shutdown beyond stopping its tailers; its state
	// lives only in followerDir now.
	f1.Close()

	// The primary keeps mutating while the follower is down.
	for i := 0; i < 6; i++ {
		m.step(t)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Restart: a fresh follower over the same directory.
	f2, _ := followerFor(t, pts.URL, Options{SnapshotDir: followerDir})
	if err := f2.Follower().CatchUp(testTimeout()); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, p, f2, []string{"alpha"})

	lag2, _ := f2.Follower().Lag("alpha")
	if lag2.SnapshotHandoffs != 0 {
		t.Fatalf("resume took a snapshot handoff: %+v", lag2)
	}
	if lag2.AppliedSeq <= lag1.AppliedSeq {
		t.Fatalf("no progress after restart: %d -> %d", lag1.AppliedSeq, lag2.AppliedSeq)
	}
}

// TestCompactionForcesSnapshotHandoff is the compaction chaos test: the
// primary compacts while the follower lags, so the records the follower
// needs exist only in the snapshot — replication must take the handoff
// path and still converge exactly.
func TestCompactionForcesSnapshotHandoff(t *testing.T) {
	p, pts, f, _ := replicationPair(t,
		Options{SnapshotDir: t.TempDir()},
		Options{SnapshotDir: t.TempDir()})

	m := &mutator{ts: pts, city: mcCities[1], key: "beta", rng: rand.New(rand.NewSource(11))}
	for i := 0; i < 5; i++ {
		m.step(t)
	}
	// Partial sync: the follower applies the current log mid-tail.
	if err := f.Follower().Sync("beta"); err != nil {
		t.Fatal(err)
	}
	before, _ := f.Follower().Lag("beta")
	if before.AppliedSeq == 0 {
		t.Fatal("mid-tail sync applied nothing")
	}

	// More mutations, then a compaction: the log resets, and everything
	// the follower has not applied yet moves into the snapshot.
	for i := 0; i < 5; i++ {
		m.step(t)
	}
	if t.Failed() {
		t.FailNow()
	}
	compactCity(t, p, "beta")

	if err := f.Follower().CatchUp(testTimeout()); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, p, f, []string{"beta"})
	after, _ := f.Follower().Lag("beta")
	if after.SnapshotHandoffs == 0 {
		t.Fatalf("compaction did not force the handoff path: %+v", after)
	}

	// The follower keeps replicating normally past the handoff.
	for i := 0; i < 3; i++ {
		m.step(t)
	}
	if t.Failed() {
		t.FailNow()
	}
	if err := f.Follower().CatchUp(testTimeout()); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, p, f, []string{"beta"})
}

// TestWireCorruptionNeverPartiallyApplies is the torn-wire chaos test: a
// proxy flips one byte inside a streamed frame. The CRC must catch it,
// the valid prefix applies, the poisoned frame does not, and the next
// sync re-fetches it intact — converging with a recorded retry.
func TestWireCorruptionNeverPartiallyApplies(t *testing.T) {
	multiCityDataDir(t)
	p, err := NewMultiCity(Options{Cities: mcCities, SnapshotDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(p.Handler())
	t.Cleanup(pts.Close)

	// A corrupting proxy in front of the primary: the first /wal response
	// that carries frames gets one payload byte flipped.
	var corrupted atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp, err := http.Get(pts.URL + r.URL.String())
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if strings.Contains(r.URL.Path, "/wal") && len(body) > 48 && corrupted.CompareAndSwap(false, true) {
			body[len(body)-10] ^= 0x20 // inside the last frame's payload
		}
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(body)
	}))
	t.Cleanup(proxy.Close)

	f, _ := followerFor(t, proxy.URL, Options{SnapshotDir: t.TempDir()})

	m := &mutator{ts: pts, city: mcCities[2], key: "gamma", rng: rand.New(rand.NewSource(13))}
	for i := 0; i < 8; i++ {
		m.step(t)
	}
	if t.Failed() {
		t.FailNow()
	}

	// The first sync hits the corrupt frame: it must surface the error,
	// apply only the intact prefix, and leave the state consistent.
	err = f.Follower().Sync("gamma")
	if err == nil {
		t.Fatal("corrupt frame not detected")
	}
	if !corrupted.Load() {
		t.Fatal("proxy never corrupted a response")
	}

	if err := f.Follower().CatchUp(testTimeout()); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, p, f, []string{"gamma"})
	lag, _ := f.Follower().Lag("gamma")
	if lag.WireRetries == 0 || lag.Err != "" {
		t.Fatalf("wire retry not recorded: %+v", lag)
	}
}

// TestPromotion: a lagging follower is promoted; it must start serving
// writes, its log must continue from the replicated sequence, and a
// restart of the promoted node must recover everything — replicated and
// post-promotion state alike.
func TestPromotion(t *testing.T) {
	followerDir := t.TempDir()
	_, pts, f, fts := replicationPair(t,
		Options{SnapshotDir: t.TempDir()},
		Options{SnapshotDir: followerDir})

	gid, err := mcCreateGroup(pts, mcCities[0], "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Follower().CatchUp(testTimeout()); err != nil {
		t.Fatal(err)
	}
	// Make the follower lag: mutations it will never see (the primary
	// "fails" now from the follower's point of view).
	var lost packageResponse
	if err := tryJSON(pts, "POST", pts.URL+"/cities/alpha/packages", createPackageRequest{
		GroupID: gid, Consensus: "pairwise", K: 2,
	}, 201, &lost); err != nil {
		t.Fatal(err)
	}

	// /promote on a primary is refused; on the follower it flips the role.
	if err := tryJSON(pts, "POST", pts.URL+"/promote", nil, 409, nil); err != nil {
		t.Fatal(err)
	}
	if err := tryJSON(fts, "POST", fts.URL+"/promote", nil, 200, nil); err != nil {
		t.Fatal(err)
	}
	var health healthResponse
	if err := tryJSON(fts, "GET", fts.URL+"/healthz", nil, 200, &health); err != nil {
		t.Fatal(err)
	}
	if health.Role != "promoted" {
		t.Fatalf("role after promote = %q", health.Role)
	}

	// The promoted node serves writes: a package build against the
	// replicated group, and a customization op on it.
	var pkg packageResponse
	if err := tryJSON(fts, "POST", fts.URL+"/cities/alpha/packages", createPackageRequest{
		GroupID: gid, Consensus: "avg", K: 2,
	}, 201, &pkg); err != nil {
		t.Fatalf("promoted node refused a write: %v", err)
	}
	// Allocation continues from the *replicated* id space. The primary's
	// unreplicated package is gone — promotion of a lagging follower loses
	// exactly the un-shipped suffix, and the promoted node is free to
	// reuse its ids (from its history they were never allocated).
	if pkg.ID <= gid {
		t.Fatalf("promoted node allocated id %d inside the replicated space (group %d)", pkg.ID, gid)
	}
	if pkg.ID != lost.ID {
		t.Fatalf("promoted node skipped the unreplicated id %d (got %d) — where did it learn it?", lost.ID, pkg.ID)
	}
	if err := tryJSON(fts, "POST", fmt.Sprintf("%s/cities/alpha/packages/%d/ops", fts.URL, pkg.ID),
		opRequest{Member: 0, Op: "remove", CI: 0, POI: pkg.Days[0].Items[0].ID}, 200, nil); err != nil {
		t.Fatal(err)
	}
	want := captureState(t, f, "alpha")

	// Restart the promoted node as an ordinary primary over its own state
	// directory: the sealed log must recover cleanly — replicated history
	// and post-promotion writes in one unbroken sequence.
	multiCityDataDir(t)
	r, err := NewMultiCity(Options{Cities: mcCities, SnapshotDir: followerDir})
	if err != nil {
		t.Fatal(err)
	}
	got := captureState(t, r, "alpha")
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("promoted node's restart lost state:\nwant %+v\ngot  %+v", want, got)
	}
	c, release, err := r.Registry().Acquire("alpha")
	if err != nil {
		t.Fatal(err)
	}
	h := c.State.health()
	release()
	if h.WAL == nil || h.WAL.ReplayTruncated != "" {
		t.Fatalf("promoted node's log did not recover cleanly: %+v", h.WAL)
	}

	// Late syncs on the promoted node must not resurrect replication.
	if err := f.Follower().Sync("alpha"); err == nil {
		t.Fatal("promoted follower still replicating")
	}
}

// TestWALStreamServesColdCities: the stream endpoint must never force a
// city load — tailing followers poll every city every interval, which
// would otherwise defeat the LRU cap. An unloaded city serves its sealed
// on-disk state directly and stays unloaded.
func TestWALStreamServesColdCities(t *testing.T) {
	snapDir := t.TempDir()
	multiCityDataDir(t)
	p1, err := NewMultiCity(Options{Cities: mcCities, SnapshotDir: snapDir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(p1.Handler())
	gid, err := mcCreateGroup(ts1, mcCities[0], "alpha")
	if err != nil {
		t.Fatal(err)
	}
	_ = gid
	ts1.Close()

	// A fresh primary over the same state: alpha exists on disk only.
	p2, err := NewMultiCity(Options{Cities: mcCities, SnapshotDir: snapDir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(p2.Handler())
	t.Cleanup(ts2.Close)
	resp, err := http.Get(ts2.URL + "/cities/alpha/wal?from=0")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(body) <= 8 {
		t.Fatalf("cold stream: %d (%d bytes)", resp.StatusCode, len(body))
	}
	if p2.Registry().Loaded("alpha") {
		t.Fatal("serving /wal loaded the city")
	}
	// Ahead-of-head detection works cold too.
	resp, err = http.Get(ts2.URL + "/cities/alpha/wal?from=99")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cold ahead check: %d", resp.StatusCode)
	}
	if p2.Registry().Loaded("alpha") {
		t.Fatal("ahead check loaded the city")
	}

	// And a follower can replicate entirely from the cold stream.
	f, _ := followerFor(t, ts2.URL, Options{SnapshotDir: t.TempDir()})
	if err := f.Follower().CatchUp(testTimeout()); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, p2, f, []string{"alpha"})
}

// --- push streaming ---

// waitApplied polls a follower's lag until the city's applied sequence
// reaches want, returning how long it took.
func waitApplied(t *testing.T, f *Server, key string, want int64, within time.Duration) time.Duration {
	t.Helper()
	start := time.Now()
	deadline := start.Add(within)
	for {
		if l, ok := f.Follower().Lag(key); ok && l.AppliedSeq >= want {
			return time.Since(start)
		}
		if time.Now().After(deadline) {
			l, _ := f.Follower().Lag(key)
			t.Fatalf("%s: applied seq never reached %d within %v (lag %+v)", key, want, within, l)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// primaryHead reads a city's committed head off the primary.
func primaryHead(t *testing.T, p *Server, key string) int64 {
	t.Helper()
	c, release, err := p.Registry().Acquire(key)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	return c.State.appliedSeq()
}

// TestPushStreamingAppliesOnCommitWakeup pins the push-replication
// guarantee: steady-state replica apply is driven by commit wakeups, not
// the poll interval. The follower's interval is an hour — if any
// poll-paced sleep sat on the caught-up hot path, nothing would
// replicate before the deadlines below.
func TestPushStreamingAppliesOnCommitWakeup(t *testing.T) {
	p, pts, f, _ := replicationPair(t,
		Options{SnapshotDir: t.TempDir()},
		Options{SnapshotDir: t.TempDir(), FollowPoll: time.Hour})

	m := &mutator{ts: pts, city: mcCities[0], key: "alpha", rng: rand.New(rand.NewSource(21))}
	for i := 0; i < 5; i++ {
		m.step(t)
	}
	if t.Failed() {
		t.FailNow()
	}
	waitApplied(t, f, "alpha", primaryHead(t, p, "alpha"), 10*time.Second)

	// Steady state: each commit must land on the follower promptly — five
	// orders of magnitude inside the poll interval.
	for i := 0; i < 3; i++ {
		m.step(t)
		if t.Failed() {
			t.FailNow()
		}
		took := waitApplied(t, f, "alpha", primaryHead(t, p, "alpha"), 10*time.Second)
		if took > 5*time.Second {
			t.Fatalf("commit %d took %v to replicate — the wakeup path is not engaged", i, took)
		}
	}
	assertConverged(t, p, f, []string{"alpha"})
}

// TestPushStreamHeldOpenThroughMiddleware pins the transport contract
// the push design rests on: a ?stream=1 response through the REAL
// handler stack (telemetry middleware included) stays open and flushes —
// heartbeats arrive while the connection lives, and a commit's frame is
// pushed down the same response without a reconnect. This is exactly
// what silently broke when a middleware wrapper hid http.Flusher: every
// "stream" became a buffered one-shot, the convergence tests still
// passed, and the follower degenerated into a hot reconnect loop.
func TestPushStreamHeldOpenThroughMiddleware(t *testing.T) {
	multiCityDataDir(t)
	p, err := NewMultiCity(Options{Cities: mcCities, SnapshotDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	pts := httptest.NewServer(p.Handler())
	t.Cleanup(pts.Close)

	m := &mutator{ts: pts, city: mcCities[0], key: "alpha", rng: rand.New(rand.NewSource(29))}
	m.step(t)
	if t.Failed() {
		t.FailNow()
	}

	resp, err := http.Get(pts.URL + "/cities/alpha/wal?from=0&stream=1&hb=150ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.ContentLength >= 0 {
		t.Fatalf("push stream answered with Content-Length %d — a buffered one-shot, not a held stream", resp.ContentLength)
	}
	watchdog := time.AfterFunc(10*time.Second, func() { resp.Body.Close() })
	defer watchdog.Stop()

	var magic [8]byte
	if _, err := io.ReadFull(resp.Body, magic[:]); err != nil {
		t.Fatal(err)
	}
	readFrame := func() (n, sum uint32) {
		t.Helper()
		var hdr [8]byte
		if _, err := io.ReadFull(resp.Body, hdr[:]); err != nil {
			t.Fatalf("stream ended instead of staying open: %v", err)
		}
		n = binary.LittleEndian.Uint32(hdr[0:4])
		sum = binary.LittleEndian.Uint32(hdr[4:8])
		if n > 0 {
			if _, err := io.ReadFull(resp.Body, make([]byte, n)); err != nil {
				t.Fatalf("torn frame payload: %v", err)
			}
		}
		return n, sum
	}
	// Drain the initial batch until a heartbeat (zero length, zero CRC)
	// proves the response is being flushed while held open.
	for {
		if n, sum := readFrame(); n == 0 && sum == 0 {
			break
		}
	}
	// A commit now must be pushed down this same response.
	m.step(t)
	if t.Failed() {
		t.FailNow()
	}
	for {
		if n, sum := readFrame(); n != 0 || sum != 0 {
			return // the commit's frame arrived mid-stream
		}
	}
}

// TestPushStreamKillMidStreamResumes: the kill chaos test on the
// streaming path. A streaming follower dies mid-replication; a fresh
// process over the same state directory must reconnect its streams from
// the last durable sequence and converge without a snapshot handoff.
func TestPushStreamKillMidStreamResumes(t *testing.T) {
	followerDir := t.TempDir()
	p, pts, f1, _ := replicationPair(t,
		Options{SnapshotDir: t.TempDir()},
		Options{SnapshotDir: followerDir, FollowPoll: 20 * time.Millisecond})

	m := &mutator{ts: pts, city: mcCities[0], key: "alpha", rng: rand.New(rand.NewSource(23))}
	for i := 0; i < 8; i++ {
		m.step(t)
	}
	if t.Failed() {
		t.FailNow()
	}
	waitApplied(t, f1, "alpha", primaryHead(t, p, "alpha"), 10*time.Second)
	lag1, _ := f1.Follower().Lag("alpha")
	// "Kill": the streams cut mid-flight; state survives only on disk.
	f1.Close()

	for i := 0; i < 6; i++ {
		m.step(t)
	}
	if t.Failed() {
		t.FailNow()
	}

	f2, _ := followerFor(t, pts.URL, Options{SnapshotDir: followerDir, FollowPoll: 20 * time.Millisecond})
	waitApplied(t, f2, "alpha", primaryHead(t, p, "alpha"), 10*time.Second)
	assertConverged(t, p, f2, []string{"alpha"})
	lag2, _ := f2.Follower().Lag("alpha")
	if lag2.SnapshotHandoffs != 0 {
		t.Fatalf("streaming resume took a snapshot handoff: %+v", lag2)
	}
	if lag2.AppliedSeq <= lag1.AppliedSeq {
		t.Fatalf("no progress after restart: %d -> %d", lag1.AppliedSeq, lag2.AppliedSeq)
	}
}

// TestPushStreamCompactionHandoff: the compaction chaos test on the
// streaming path. A follower resuming behind the compaction horizon gets
// the snapshot handoff in its first stream response; a compaction landing
// mid-stream ends the stream cleanly and the reconnect keeps delivering.
func TestPushStreamCompactionHandoff(t *testing.T) {
	multiCityDataDir(t)
	p, err := NewMultiCity(Options{Cities: mcCities, SnapshotDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(p.Handler())
	t.Cleanup(pts.Close)

	m := &mutator{ts: pts, city: mcCities[1], key: "beta", rng: rand.New(rand.NewSource(25))}
	for i := 0; i < 8; i++ {
		m.step(t)
	}
	if t.Failed() {
		t.FailNow()
	}
	compactCity(t, p, "beta")

	// A fresh streaming follower resumes from 0 — behind the horizon.
	f, _ := followerFor(t, pts.URL, Options{SnapshotDir: t.TempDir(), FollowPoll: 20 * time.Millisecond})
	waitApplied(t, f, "beta", primaryHead(t, p, "beta"), 10*time.Second)
	assertConverged(t, p, f, []string{"beta"})
	lag, _ := f.Follower().Lag("beta")
	if lag.SnapshotHandoffs == 0 {
		t.Fatalf("handoff not taken on the streaming path: %+v", lag)
	}

	// Mid-stream compaction: the log rotates under the open stream.
	for i := 0; i < 4; i++ {
		m.step(t)
	}
	if t.Failed() {
		t.FailNow()
	}
	compactCity(t, p, "beta")
	for i := 0; i < 3; i++ {
		m.step(t)
	}
	if t.Failed() {
		t.FailNow()
	}
	waitApplied(t, f, "beta", primaryHead(t, p, "beta"), 10*time.Second)
	assertConverged(t, p, f, []string{"beta"})
}

// TestPushStreamWireCorruption: the torn-wire chaos test on the streaming
// path. A chunk-relaying proxy flips one byte inside the city's stream;
// the CRC catches it, the intact prefix applies, and the reconnect
// re-fetches the poisoned frame — converging with a recorded retry.
func TestPushStreamWireCorruption(t *testing.T) {
	multiCityDataDir(t)
	p, err := NewMultiCity(Options{Cities: mcCities, SnapshotDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(p.Handler())
	t.Cleanup(pts.Close)

	m := &mutator{ts: pts, city: mcCities[2], key: "gamma", rng: rand.New(rand.NewSource(27))}
	for i := 0; i < 8; i++ {
		m.step(t)
	}
	if t.Failed() {
		t.FailNow()
	}

	// The proxy relays chunk-by-chunk with flushes (streams pass through
	// live) and corrupts one byte of gamma's stream once past the magic.
	var corrupted atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp, err := http.Get(pts.URL + r.URL.String())
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		fl, _ := w.(http.Flusher)
		target := strings.Contains(r.URL.Path, "/gamma/") && strings.Contains(r.URL.Path, "/wal")
		buf := make([]byte, 4096)
		total := 0
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				chunk := buf[:n]
				total += n
				if target && total > 64 && corrupted.CompareAndSwap(false, true) {
					chunk[n-1] ^= 0x20
				}
				if _, werr := w.Write(chunk); werr != nil {
					return
				}
				if fl != nil {
					fl.Flush()
				}
			}
			if rerr != nil {
				return
			}
		}
	}))
	t.Cleanup(proxy.Close)

	f, _ := followerFor(t, proxy.URL, Options{SnapshotDir: t.TempDir(), FollowPoll: 20 * time.Millisecond})
	waitApplied(t, f, "gamma", primaryHead(t, p, "gamma"), 15*time.Second)
	assertConverged(t, p, f, []string{"gamma"})
	if !corrupted.Load() {
		t.Fatal("proxy never corrupted the stream")
	}
	lag, _ := f.Follower().Lag("gamma")
	if lag.WireRetries == 0 {
		t.Fatalf("wire retry not recorded: %+v", lag)
	}
}

// TestWALLongPoll: ?wait= blocks a caught-up request until a commit
// wakes it — answering promptly, not at the wait mark — and returns an
// empty batch when the wait elapses with nothing new.
func TestWALLongPoll(t *testing.T) {
	multiCityDataDir(t)
	p, err := NewMultiCity(Options{Cities: mcCities, SnapshotDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(p.Handler())
	t.Cleanup(pts.Close)
	if _, err := mcCreateGroup(pts, mcCities[0], "alpha"); err != nil {
		t.Fatal(err)
	}
	head := primaryHead(t, p, "alpha")

	// A commit lands mid-wait: the poll must answer with it promptly.
	done := make(chan error, 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		_, err := mcCreateGroup(pts, mcCities[0], "alpha")
		done <- err
	}()
	start := time.Now()
	resp, err := http.Get(fmt.Sprintf("%s/cities/alpha/wal?from=%d&wait=10s", pts.URL, head))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	took := time.Since(start)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || len(body) <= 8 {
		t.Fatalf("long-poll answer: %d (%d bytes)", resp.StatusCode, len(body))
	}
	if took > 5*time.Second {
		t.Fatalf("long-poll took %v despite the commit at 150ms — no wakeup", took)
	}

	// Nothing commits: the wait elapses and the answer is headers + magic.
	head = primaryHead(t, p, "alpha")
	start = time.Now()
	resp, err = http.Get(fmt.Sprintf("%s/cities/alpha/wal?from=%d&wait=200ms", pts.URL, head))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(body) != 8 {
		t.Fatalf("timed-out long-poll: %d (%d bytes)", resp.StatusCode, len(body))
	}
	if e := time.Since(start); e < 180*time.Millisecond {
		t.Fatalf("timed-out long-poll returned in %v — it never waited", e)
	}
}
