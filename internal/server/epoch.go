package server

import (
	"net/http"
	"strconv"

	"grouptravel/internal/replicate"
	"grouptravel/internal/store"
)

// The replication epoch is what makes promotion safe: a monotonic term,
// persisted beside every city's WAL, bumped exactly once per promotion
// and stamped into every GTREPv1 exchange (X-GT-Epoch / X-GT-Epoch-
// Primary, on /wal responses, health polls, and relayed mutations). A
// writable node that observes a term higher than its own — from any of
// those surfaces — knows the fleet promoted someone else while it wasn't
// looking: it latches read-only ("fenced") and answers every mutation
// with 403 plus the new primary's URL, so a deposed primary can never
// accept a write the fleet won't see. Fencing is durable: the adopted
// term is persisted immediately, and a fenced node that restarts comes
// back fenced.

// Epoch returns the node's current replication term and its owner's
// advertised URL (0, "" before any promotion anywhere).
func (s *Server) Epoch() (int64, string) {
	owner, _ := s.epochOwner.Load().(string)
	return s.epochVal.Load(), owner
}

// observeEpoch adopts a peer-reported term. Terms at or below the
// current one are ignored (the fast path — one atomic load). A strictly
// higher term is persisted for every city, then installed; if this node
// was writable and is not the term's owner, it fences. All commit
// notifiers get a generation tick so open push streams re-check the term
// and end, forcing their consumers through a fresh (fenced) handshake.
func (s *Server) observeEpoch(term int64, owner string) {
	if term <= 0 || term <= s.epochVal.Load() {
		return
	}
	s.epochMu.Lock()
	if term <= s.epochVal.Load() {
		s.epochMu.Unlock()
		return
	}
	s.persistEpochLocked(term, owner)
	wasWritable := !s.isReadOnly()
	s.epochOwner.Store(owner)
	s.epochVal.Store(term)
	if wasWritable && owner != s.topo.Advertise() {
		s.fenced.Store(true)
	}
	s.epochMu.Unlock()
	s.tickNotifiers()
}

// bumpEpoch mints the next term with this node as owner — the promote
// path. The new term is persisted before it is visible, so a crash
// between promotion and the first replicated write still leaves a
// durable record of who owns the term. Promotion supersedes any fence.
func (s *Server) bumpEpoch() (int64, string) {
	s.epochMu.Lock()
	term := s.epochVal.Load() + 1
	owner := s.topo.Advertise()
	s.persistEpochLocked(term, owner)
	s.epochOwner.Store(owner)
	s.epochVal.Store(term)
	s.fenced.Store(false)
	s.epochMu.Unlock()
	s.tickNotifiers()
	return term, owner
}

// persistEpochLocked writes the term beside every city's WAL. Callers
// hold epochMu. Persistence failures surface like any other (the node
// still fences in memory — an unfenced split-brain is strictly worse
// than a fence that forgets across restart).
func (s *Server) persistEpochLocked(term int64, owner string) {
	if s.snapshotDir == "" {
		return
	}
	for _, key := range s.reg.Keys() {
		if err := store.WriteEpoch(s.snapshotDir, key, store.Epoch{Epoch: term, Primary: owner}); err != nil {
			if c, release, ok := s.reg.AcquireIfLoaded(key); ok {
				c.State.persistErr.Store(err.Error())
				release()
			}
		}
	}
}

// loadEpochs recovers the node's term at boot: the highest persisted
// term across its cities wins (they are written together; a crash can
// leave a short prefix behind by one term). A node that boots believing
// itself primary but finds a term owned by someone else comes back
// fenced; a node that finds its own advertise as the owner was promoted
// before the restart and comes back promoted.
func (s *Server) loadEpochs(keys []string) error {
	if s.snapshotDir == "" {
		return nil
	}
	var term int64
	var owner string
	for _, key := range keys {
		e, err := store.ReadEpoch(s.snapshotDir, key)
		if err != nil {
			return err
		}
		if e.Epoch > term {
			term, owner = e.Epoch, e.Primary
		}
	}
	if term == 0 {
		return nil
	}
	s.epochOwner.Store(owner)
	s.epochVal.Store(term)
	advertise := s.topo.Advertise()
	switch {
	case owner != "" && owner == advertise:
		// This node owns the term: it was promoted before the restart.
		// Replication must not resume against the (deposed) upstream.
		s.promoted.Store(true)
	case s.topo.Upstream() == "" && owner != advertise:
		// Booted as a primary, but the fleet's term belongs to someone
		// else: the fence survives the restart.
		s.fenced.Store(true)
	}
	return nil
}

// tickNotifiers wakes every city's commit broadcast as a generation tick
// (no position change): push streams re-check the term and end.
func (s *Server) tickNotifiers() {
	s.notifiers.Range(func(_, v any) bool {
		v.(*commitNotify).wake(0)
		return true
	})
}

// stampBatch adds the node's term to an outgoing stream batch.
func (s *Server) stampBatch(b *replicate.Batch) {
	b.Epoch, b.EpochPrimary = s.Epoch()
}

// noteEpochHeader is the outermost HTTP wrapper: it reads the peer's
// term off every request (health polls, mutation relays, /wal pulls all
// carry it) before the handler runs — so a relayed write that proves
// this node deposed is fenced by the very request that proves it — and
// stamps the node's own term on every response, which is how routers
// and followers learn of a promotion without a dedicated exchange.
func (s *Server) noteEpochHeader(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if v := r.Header.Get(replicate.HeaderEpoch); v != "" {
			if term, err := strconv.ParseInt(v, 10, 64); err == nil {
				s.observeEpoch(term, r.Header.Get(replicate.HeaderEpochPrimary))
			}
		}
		if term, owner := s.Epoch(); term > 0 {
			h := w.Header()
			h.Set(replicate.HeaderEpoch, strconv.FormatInt(term, 10))
			if owner != "" {
				h.Set(replicate.HeaderEpochPrimary, owner)
			}
		}
		next.ServeHTTP(w, r)
	})
}
