package server

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"grouptravel/internal/dataset"
	"grouptravel/internal/poi"
)

// testTimeout bounds waits on registry idling.
func testTimeout() time.Duration { return 5 * time.Second }

// Three small cities, generated once and written as a data directory that
// every multi-city test mounts.
var (
	mcOnce   sync.Once
	mcCities []*dataset.City
	mcDir    string
)

var mcNames = []string{"Alpha", "Beta", "Gamma"}
var mcKeys = []string{"alpha", "beta", "gamma"}

func multiCityDataDir(t *testing.T) string {
	t.Helper()
	mcOnce.Do(func() {
		dir, err := os.MkdirTemp("", "grouptravel-cities-*")
		if err != nil {
			panic(err)
		}
		for i, name := range mcNames {
			c, err := dataset.Generate(dataset.TestSpec(name, int64(71+i)))
			if err != nil {
				panic(err)
			}
			mcCities = append(mcCities, c)
			f, err := os.Create(filepath.Join(dir, mcKeys[i]+".json"))
			if err != nil {
				panic(err)
			}
			if err := c.SaveJSON(f); err != nil {
				panic(err)
			}
			f.Close()
		}
		mcDir = dir
	})
	return mcDir
}

// mcRatings builds a ratings map over a specific city's schema.
func mcRatings(c *dataset.City, shift int) map[string][]float64 {
	out := map[string][]float64{}
	for _, cat := range poi.Categories {
		dim := c.Schema.Dim(cat)
		v := make([]float64, dim)
		for j := range v {
			v[j] = float64((j + shift) % 6)
		}
		out[cat.String()] = v
	}
	return out
}

func multiCityServer(t *testing.T, snapDir string, maxCities int) (*Server, *httptest.Server) {
	t.Helper()
	return multiCityServerOpts(t, Options{SnapshotDir: snapDir, MaxCities: maxCities})
}

// multiCityServerOpts mounts the shared data directory with caller-chosen
// persistence options.
func multiCityServerOpts(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	opts.DataDir = multiCityDataDir(t)
	s, err := NewMultiCity(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// compactCity forces a synchronous compaction of one city — tests use it
// where the asynchronous threshold trigger would race the assertion.
func compactCity(t *testing.T, s *Server, key string) {
	t.Helper()
	c, release, err := s.Registry().Acquire(key)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if err := c.State.compact(); err != nil {
		t.Fatal(err)
	}
}

// mcCreateGroup registers a 3-member group in a city and returns its id.
func mcCreateGroup(ts *httptest.Server, city *dataset.City, key string) (int, error) {
	req := createGroupRequest{}
	for i := 0; i < 3; i++ {
		req.Members = append(req.Members, mcRatings(city, i))
	}
	var resp groupResponse
	if err := tryJSON(ts, "POST", ts.URL+"/cities/"+key+"/groups", req, 201, &resp); err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// TestMultiCityConcurrentBuilds is the acceptance scenario: a server over a
// data directory of three cities serves package builds for all of them
// concurrently (run under -race via `make race`), with a city cap of 2 —
// so eviction happens mid-test without failing any in-flight request, and
// snapshots carry each city's groups across its evictions.
func TestMultiCityConcurrentBuilds(t *testing.T) {
	s, ts := multiCityServer(t, t.TempDir(), 2)
	const perCity = 3
	var wg sync.WaitGroup
	errs := make(chan error, len(mcKeys)*perCity)
	for ci, key := range mcKeys {
		for g := 0; g < perCity; g++ {
			wg.Add(1)
			go func(ci int, key string) {
				defer wg.Done()
				gid, err := mcCreateGroup(ts, mcCities[ci], key)
				if err != nil {
					errs <- fmt.Errorf("%s: %w", key, err)
					return
				}
				var pkg packageResponse
				if err := tryJSON(ts, "POST", ts.URL+"/cities/"+key+"/packages", createPackageRequest{
					GroupID: gid, Consensus: "pairwise", K: 2,
				}, 201, &pkg); err != nil {
					errs <- fmt.Errorf("%s: %w", key, err)
					return
				}
				if pkg.City != mcCities[ci].Name || !pkg.Valid {
					errs <- fmt.Errorf("%s: package = %+v", key, pkg)
					return
				}
				var read packageResponse
				if err := tryJSON(ts, "GET", fmt.Sprintf("%s/cities/%s/packages/%d", ts.URL, key, pkg.ID), nil, 200, &read); err != nil {
					errs <- fmt.Errorf("%s: %w", key, err)
				}
			}(ci, key)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Once requests drain, the registry sheds back under its cap; three
	// cities through a cap of two must have evicted at least once.
	if !s.Registry().WaitIdle(testTimeout()) {
		t.Fatal("registry never went idle")
	}
	st := s.Registry().Stats()
	if st.Loaded > 2 {
		t.Fatalf("idle registry holds %d cities, cap 2 (stats %+v)", st.Loaded, st)
	}
	if st.Evictions == 0 {
		t.Fatalf("3 cities through cap 2 with no evictions: %+v", st)
	}
}

// TestMultiCityRestartPersistence is the durability half of the acceptance
// scenario: groups, memoized profiles and packages — including one mutated
// by a customization op — survive a server restart byte-for-byte, in every
// city, because each mutation snapshotted through the store.
func TestMultiCityRestartPersistence(t *testing.T) {
	snapDir := t.TempDir()
	_, ts := multiCityServer(t, snapDir, 0)

	type cityFacts struct {
		gid, pid int
		group    groupResponse
		pkg      packageResponse
	}
	facts := map[string]*cityFacts{}
	for ci, key := range mcKeys {
		gid, err := mcCreateGroup(ts, mcCities[ci], key)
		if err != nil {
			t.Fatal(err)
		}
		var pkg packageResponse
		if err := tryJSON(ts, "POST", ts.URL+"/cities/"+key+"/packages", createPackageRequest{
			GroupID: gid, Consensus: "pairwise", K: 2,
		}, 201, &pkg); err != nil {
			t.Fatal(err)
		}
		facts[key] = &cityFacts{gid: gid, pid: pkg.ID}
	}
	// Mutate one package through an op so the snapshot is not just the
	// freshly built state.
	alpha := facts["alpha"]
	var cur packageResponse
	if err := tryJSON(ts, "GET", fmt.Sprintf("%s/cities/alpha/packages/%d", ts.URL, alpha.pid), nil, 200, &cur); err != nil {
		t.Fatal(err)
	}
	if err := tryJSON(ts, "POST", fmt.Sprintf("%s/cities/alpha/packages/%d/ops", ts.URL, alpha.pid),
		opRequest{Member: 0, Op: "remove", CI: 0, POI: cur.Days[0].Items[0].ID}, 200, nil); err != nil {
		t.Fatal(err)
	}
	// Record the pre-restart ground truth.
	for _, key := range mcKeys {
		f := facts[key]
		if err := tryJSON(ts, "GET", fmt.Sprintf("%s/cities/%s/groups/%d", ts.URL, key, f.gid), nil, 200, &f.group); err != nil {
			t.Fatal(err)
		}
		if err := tryJSON(ts, "GET", fmt.Sprintf("%s/cities/%s/packages/%d", ts.URL, key, f.pid), nil, 200, &f.pkg); err != nil {
			t.Fatal(err)
		}
	}

	// "Restart": a brand-new server over the same data + snapshot dirs.
	_, ts2 := multiCityServer(t, snapDir, 0)
	for _, key := range mcKeys {
		f := facts[key]
		var group groupResponse
		if err := tryJSON(ts2, "GET", fmt.Sprintf("%s/cities/%s/groups/%d", ts2.URL, key, f.gid), nil, 200, &group); err != nil {
			t.Fatalf("%s group lost in restart: %v", key, err)
		}
		if group != f.group {
			t.Fatalf("%s group changed in restart: %+v -> %+v", key, f.group, group)
		}
		var pkg packageResponse
		if err := tryJSON(ts2, "GET", fmt.Sprintf("%s/cities/%s/packages/%d", ts2.URL, key, f.pid), nil, 200, &pkg); err != nil {
			t.Fatalf("%s package lost in restart: %v", key, err)
		}
		if pkgFingerprint(t, pkg) != pkgFingerprint(t, f.pkg) {
			t.Fatalf("%s package changed in restart:\n%s\nvs\n%s", key, pkgFingerprint(t, pkg), pkgFingerprint(t, f.pkg))
		}
	}
	// The customization log survived too: refining alpha's package after
	// the restart still sees the pre-restart remove op.
	var ref refineResponse
	if err := tryJSON(ts2, "POST", fmt.Sprintf("%s/cities/alpha/packages/%d/refine", ts2.URL, alpha.pid),
		refineRequest{Strategy: "batch"}, 200, &ref); err != nil {
		t.Fatal(err)
	}
	if ref.Operations != 1 {
		t.Fatalf("restarted refine saw %d ops, want 1", ref.Operations)
	}
	// New mutations keep allocating past the restored id space.
	gid, err := mcCreateGroup(ts2, mcCities[0], "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if gid <= alpha.pid {
		t.Fatalf("restarted id allocation collided: new group id %d", gid)
	}
}

// TestEmptyDataDirWithPreloadedCity: an empty -data-dir is valid as long
// as preloaded cities make the server servable.
func TestEmptyDataDirWithPreloadedCity(t *testing.T) {
	multiCityDataDir(t) // ensure mcCities exist
	s, err := NewMultiCity(Options{DataDir: t.TempDir(), Cities: []*dataset.City{mcCities[0]}})
	if err != nil {
		t.Fatal(err)
	}
	if keys := s.Registry().Keys(); len(keys) != 1 || keys[0] != "alpha" {
		t.Fatalf("keys = %v", keys)
	}
	// Fully empty configuration still fails.
	if _, err := NewMultiCity(Options{DataDir: t.TempDir()}); err == nil {
		t.Fatal("empty data dir with no preloaded cities accepted")
	}
	// And a city cap still requires persistence.
	if _, err := NewMultiCity(Options{Cities: []*dataset.City{mcCities[0]}, MaxCities: 1}); err == nil {
		t.Fatal("MaxCities without SnapshotDir accepted")
	}
}

// TestCorruptSnapshotSurfacesOnHealth: a tampered compaction snapshot must
// not brick the city — it starts empty, the error lands on /healthz, and
// (because the state is now memory-only) the registry refuses to evict it.
// The write-ahead log is quarantined along with the snapshot: it is a
// suffix over that exact base and cannot replay without it.
func TestCorruptSnapshotSurfacesOnHealth(t *testing.T) {
	snapDir := t.TempDir()
	s, ts := multiCityServer(t, snapDir, 0)
	gid, err := mcCreateGroup(ts, mcCities[0], "alpha")
	if err != nil {
		t.Fatal(err)
	}
	var pkg packageResponse
	if err := tryJSON(ts, "POST", ts.URL+"/cities/alpha/packages", createPackageRequest{
		GroupID: gid, Consensus: "pairwise", K: 2,
	}, 201, &pkg); err != nil {
		t.Fatal(err)
	}
	// Compact deterministically (threshold compaction is asynchronous) so
	// the snapshot file — the tamper target — exists.
	compactCity(t, s, "alpha")
	// Tamper: an unknown consensus method in the persisted package.
	path := filepath.Join(snapDir, "alpha.state.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(raw), `"method": "pairwise"`, `"method": "bogus"`, 1)
	if tampered == string(raw) {
		t.Fatal("tamper target not found in snapshot")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	// Restart: the city serves (empty) instead of failing, and healthz
	// reports the ignored state.
	_, ts2 := multiCityServer(t, snapDir, 0)
	if err := tryJSON(ts2, "GET", fmt.Sprintf("%s/cities/alpha/groups/%d", ts2.URL, gid), nil, 404, nil); err != nil {
		t.Fatal(err)
	}
	var health healthResponse
	if err := tryJSON(ts2, "GET", ts2.URL+"/healthz", nil, 200, &health); err != nil {
		t.Fatal(err)
	}
	ch, ok := health.Cities["alpha"]
	if !ok || !strings.Contains(ch.PersistErr, "bogus") {
		t.Fatalf("persistence error not surfaced: %+v", health.Cities)
	}
	// Both files were quarantined, not left to be overwritten by the next
	// compaction: the committed state stays recoverable. (A fresh, empty
	// log is opened at the wal path afterwards — only the snapshot path
	// must stay vacant until the next compaction.)
	for _, p := range []string{path, filepath.Join(snapDir, "alpha.wal")} {
		if _, err := os.Stat(p + ".corrupt"); err != nil {
			t.Fatalf("%s not quarantined: %v", p, err)
		}
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("tampered snapshot still in place (err=%v)", err)
	}
}

// TestTornWALTailSurfacesOnHealth: a crash can tear the last record of a
// city's log. Recovery must serve the surviving prefix — never fail the
// city — truncate the tail in place, and report the cut on /healthz.
func TestTornWALTailSurfacesOnHealth(t *testing.T) {
	snapDir := t.TempDir()
	_, ts := multiCityServer(t, snapDir, 0)
	gid, err := mcCreateGroup(ts, mcCities[0], "alpha")
	if err != nil {
		t.Fatal(err)
	}
	var pkg packageResponse
	if err := tryJSON(ts, "POST", ts.URL+"/cities/alpha/packages", createPackageRequest{
		GroupID: gid, Consensus: "pairwise", K: 2,
	}, 201, &pkg); err != nil {
		t.Fatal(err)
	}
	// No compaction ran (default thresholds): the log holds both records
	// and no snapshot exists. Tear the tail of the last record.
	walPath := filepath.Join(snapDir, "alpha.wal")
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, fi.Size()-9); err != nil {
		t.Fatal(err)
	}

	// Restart: the group (record 1) survives; the package (torn record 2)
	// is gone; the cut is on /healthz; nothing is fatal.
	_, ts2 := multiCityServer(t, snapDir, 0)
	var group groupResponse
	if err := tryJSON(ts2, "GET", fmt.Sprintf("%s/cities/alpha/groups/%d", ts2.URL, gid), nil, 200, &group); err != nil {
		t.Fatalf("surviving prefix not served: %v", err)
	}
	if err := tryJSON(ts2, "GET", fmt.Sprintf("%s/cities/alpha/packages/%d", ts2.URL, pkg.ID), nil, 404, nil); err != nil {
		t.Fatal(err)
	}
	var health healthResponse
	if err := tryJSON(ts2, "GET", ts2.URL+"/healthz", nil, 200, &health); err != nil {
		t.Fatal(err)
	}
	ch := health.Cities["alpha"]
	if ch.WAL == nil || ch.WAL.ReplayTruncated == "" || ch.WAL.Replayed != 1 {
		t.Fatalf("torn tail not surfaced: %+v", ch.WAL)
	}
	if ch.PersistErr != "" {
		t.Fatalf("torn tail must not be a persistence error (city is consistent): %q", ch.PersistErr)
	}
	// The repaired log accepts new mutations, and they survive another
	// restart together with the surviving prefix.
	gid2, err := mcCreateGroup(ts2, mcCities[0], "alpha")
	if err != nil {
		t.Fatal(err)
	}
	_, ts3 := multiCityServer(t, snapDir, 0)
	for _, id := range []int{gid, gid2} {
		if err := tryJSON(ts3, "GET", fmt.Sprintf("%s/cities/alpha/groups/%d", ts3.URL, id), nil, 200, nil); err != nil {
			t.Fatalf("group %d lost after repair+restart: %v", id, err)
		}
	}
}

// TestCommitTokenPinsPrimaryOnWALFailure: a mutation whose WAL append
// fails still commits in memory and still answers 2xx — but its commit
// token must be pinPrimarySeq, a sequence no replica will ever report,
// so a front tier keeps routing the session's reads to the primary (the
// only node holding the write) instead of silently losing
// read-your-writes. The failure also lands on /healthz.
func TestCommitTokenPinsPrimaryOnWALFailure(t *testing.T) {
	s, ts := multiCityServerOpts(t, Options{SnapshotDir: t.TempDir()})
	// Break alpha's log under the server: every later append fails.
	c, release, err := s.Registry().Acquire("alpha")
	if err != nil {
		t.Fatal(err)
	}
	_ = c.State.wal.Close()
	release()

	gid, err := mcCreateGroup(ts, mcCities[0], "alpha")
	if err != nil {
		t.Fatalf("append failure must not fail the request: %v", err)
	}
	var g groupResponse
	if err := tryJSON(ts, "GET", fmt.Sprintf("%s/cities/alpha/groups/%d", ts.URL, gid), nil, 200, &g); err != nil {
		t.Fatalf("in-memory commit lost: %v", err)
	}
	// Re-create to inspect the token (mcCreateGroup discards the body).
	req := createGroupRequest{}
	for i := 0; i < 3; i++ {
		req.Members = append(req.Members, mcRatings(mcCities[0], i))
	}
	var resp groupResponse
	if err := tryJSON(ts, "POST", ts.URL+"/cities/alpha/groups", req, 201, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Seq != pinPrimarySeq {
		t.Fatalf("commit token after append failure = %d, want pinPrimarySeq", resp.Seq)
	}
	var health healthResponse
	if err := tryJSON(ts, "GET", ts.URL+"/healthz", nil, 200, &health); err != nil {
		t.Fatal(err)
	}
	if health.Cities["alpha"].PersistErr == "" {
		t.Fatal("append failure not surfaced on /healthz")
	}
}

// TestMultiCityEvictionReloadsState verifies the cap + persistence
// interplay: a city evicted under MaxCities=1 comes back with its state
// intact on the next request.
func TestMultiCityEvictionReloadsState(t *testing.T) {
	snapDir := t.TempDir()
	s, ts := multiCityServer(t, snapDir, 1)
	gids := map[string]int{}
	for ci, key := range mcKeys {
		gid, err := mcCreateGroup(ts, mcCities[ci], key)
		if err != nil {
			t.Fatal(err)
		}
		gids[key] = gid
	}
	if !s.Registry().WaitIdle(testTimeout()) {
		t.Fatal("registry never went idle")
	}
	st := s.Registry().Stats()
	if st.Loaded != 1 || st.Evictions < 2 {
		t.Fatalf("cap 1 registry stats = %+v", st)
	}
	// Every city — two of which were evicted — still serves its group.
	for _, key := range mcKeys {
		var group groupResponse
		if err := tryJSON(ts, "GET", fmt.Sprintf("%s/cities/%s/groups/%d", ts.URL, key, gids[key]), nil, 200, &group); err != nil {
			t.Fatalf("%s lost its group to eviction: %v", key, err)
		}
		if group.Size != 3 {
			t.Fatalf("%s group = %+v", key, group)
		}
	}
}
