package server

// Telemetry wiring for the shard daemon. One Registry per Server (so
// embedded servers and tests stay isolated), per-class HTTP metrics via
// the shared middleware, real counters on the mutation/caching hot paths,
// and scrape-time GaugeFunc/CounterFunc rows for values the system
// already tracks (WAL stats, replication lag, registry residency) — the
// same values /healthz reports, so the two surfaces can never disagree.

import (
	"grouptravel/internal/replicate"
	"grouptravel/internal/telemetry"
)

// serverMetrics is the Server's instrument set: the registry behind
// GET /metrics plus the process-wide instruments handed to each city.
type serverMetrics struct {
	reg  *telemetry.Registry
	http *telemetry.HTTPMetrics

	// WAL latencies are process-wide histograms (per-city histograms
	// would multiply the exposition by the city count for little signal;
	// per-city WAL *stats* are exposed as scrape-time gauges instead).
	// The fsync histogram is additionally partitioned by log-file size at
	// sync time (fsyncSmall/Med/Large): fsync latency tracks the size of
	// the file being synced — ext4 journals metadata proportional to it —
	// which is what makes appends on a 100k-record log read ~6x slower
	// than on a fresh one while bytes/op stay flat. The size label makes
	// that visible on /metrics instead of looking like an append
	// regression.
	walAppend  *telemetry.Histogram
	walFsync   *telemetry.Histogram
	fsyncSmall *telemetry.Histogram // log < 1 MiB at sync
	fsyncMed   *telemetry.Histogram // 1–16 MiB
	fsyncLarge *telemetry.Histogram // >= 16 MiB
	compaction *telemetry.Histogram

	// streams are the push-replication instruments (stream.go): open
	// streams, frames flushed to streams, commit wakeups consumed, and
	// heartbeats written. Process-wide, like the WAL histograms.
	streams streamMetrics
}

// streamMetrics instruments the /wal push streams.
type streamMetrics struct {
	open       *telemetry.Gauge
	frames     *telemetry.Counter
	wakeups    *telemetry.Counter
	heartbeats *telemetry.Counter
}

func newServerMetrics() *serverMetrics {
	reg := telemetry.NewRegistry()
	m := &serverMetrics{
		reg:  reg,
		http: telemetry.NewHTTPMetrics(reg),
		walAppend: reg.Histogram("gt_wal_append_seconds",
			"WAL append latency: marshal, frame, write, and the sync policy's share.", nil),
		walFsync: reg.Histogram("gt_wal_fsync_seconds",
			"WAL fsync latency (group commits and background flushes).", nil),
		fsyncSmall: reg.Histogram("gt_wal_fsync_seconds",
			"WAL fsync latency (group commits and background flushes).", nil, "size", "lt1MiB"),
		fsyncMed: reg.Histogram("gt_wal_fsync_seconds",
			"WAL fsync latency (group commits and background flushes).", nil, "size", "1-16MiB"),
		fsyncLarge: reg.Histogram("gt_wal_fsync_seconds",
			"WAL fsync latency (group commits and background flushes).", nil, "size", "ge16MiB"),
		compaction: reg.Histogram("gt_wal_compaction_seconds",
			"Snapshot compaction duration, log rotation to pending-segment removal.", nil),
	}
	m.streams = streamMetrics{
		open: reg.Gauge("gt_replication_stream_open",
			"Push replication streams currently held open."),
		frames: reg.Counter("gt_replication_stream_frames_total",
			"WAL frames flushed to push streams."),
		wakeups: reg.Counter("gt_replication_stream_wakeups_total",
			"Commit wakeups consumed by push streams and long-polls."),
		heartbeats: reg.Counter("gt_replication_stream_heartbeats_total",
			"Heartbeat frames written to idle push streams."),
	}
	return m
}

// fsyncBySize selects the fsync histogram for the log size being synced —
// the WAL.InstrumentSizedFsync hook.
func (m *serverMetrics) fsyncBySize(sizeBytes int64) *telemetry.Histogram {
	switch {
	case sizeBytes < 1<<20:
		return m.fsyncSmall
	case sizeBytes < 16<<20:
		return m.fsyncMed
	default:
		return m.fsyncLarge
	}
}

// cityMetrics are one city's hot-path counters. Registration is
// idempotent on (name, city), so a city's counters survive its
// eviction/reload cycle.
type cityMetrics struct {
	byteHits      *telemetry.Counter
	byteMisses    *telemetry.Counter
	byteFillRaces *telemetry.Counter
	buildDedups   *telemetry.Counter
	compactions   *telemetry.Counter
	framesApplied *telemetry.Counter
}

func (m *serverMetrics) city(key string) cityMetrics {
	return cityMetrics{
		byteHits: m.reg.Counter("gt_bytecache_hits_total",
			"Rendered-byte cache hits.", "city", key),
		byteMisses: m.reg.Counter("gt_bytecache_misses_total",
			"Rendered-byte cache misses.", "city", key),
		byteFillRaces: m.reg.Counter("gt_bytecache_fill_races_total",
			"Cache fills whose version went stale mid-render (wasted, never wrong).", "city", key),
		buildDedups: m.reg.Counter("gt_build_dedups_total",
			"Builds served from an identical in-flight request.", "city", key),
		compactions: m.reg.Counter("gt_wal_compactions_total",
			"Snapshot compactions completed.", "city", key),
		framesApplied: m.reg.Counter("gt_replication_frames_applied_total",
			"Replicated WAL frames applied to the serving state.", "city", key),
	}
}

// registerScrapeFuncs wires the scrape-time rows: registry residency,
// per-city WAL stats and applied sequence, and — on followers — the
// replication lag this node's tailer reports. Closures sample loaded
// cities only (AcquireIfLoaded never forces a load, so scraping cannot
// defeat the LRU cap); non-resident cities read 0.
func (s *Server) registerScrapeFuncs(keys []string) {
	reg := s.metrics.reg
	reg.GaugeFunc("gt_cities_known", "Cities this server can serve.",
		func() float64 { return float64(len(keys)) })
	reg.GaugeFunc("gt_cities_resident", "Cities currently loaded.",
		func() float64 { return float64(s.reg.Stats().Loaded) })

	for _, key := range keys {
		key := key
		reg.GaugeFunc("gt_wal_records", "WAL records since the last compaction (replay debt).",
			func() float64 {
				return s.sampleCity(key, func(cs *cityState) float64 {
					if cs.wal == nil {
						return 0
					}
					return float64(cs.wal.Stats().Records)
				})
			}, "city", key)
		reg.GaugeFunc("gt_wal_bytes", "WAL bytes since the last compaction (backpressure gauge).",
			func() float64 {
				return s.sampleCity(key, func(cs *cityState) float64 {
					if cs.wal == nil {
						return 0
					}
					return float64(cs.wal.Stats().Bytes)
				})
			}, "city", key)
		reg.CounterFunc("gt_wal_fsyncs_total", "WAL fsyncs performed.",
			func() float64 {
				return s.sampleCity(key, func(cs *cityState) float64 {
					if cs.wal == nil {
						return 0
					}
					return float64(cs.wal.Stats().Fsyncs)
				})
			}, "city", key)
		reg.GaugeFunc("gt_applied_seq", "Last committed (primary) or applied (follower) WAL sequence.",
			func() float64 {
				return s.sampleCity(key, func(cs *cityState) float64 { return float64(cs.appliedSeq()) })
			}, "city", key)
	}

	if s.follower == nil {
		return
	}
	for _, key := range keys {
		key := key
		lagField := func(f func(l replicate.Lag) float64) func() float64 {
			return func() float64 {
				if l, ok := s.follower.Lag(key); ok {
					return f(l)
				}
				return 0
			}
		}
		reg.GaugeFunc("gt_replication_lag_records", "Records behind the primary at the last sync.",
			lagField(func(l replicate.Lag) float64 { return float64(l.Records) }), "city", key)
		reg.GaugeFunc("gt_replication_lag_bytes", "Wire bytes behind the primary at the last sync.",
			lagField(func(l replicate.Lag) float64 { return float64(l.Bytes) }), "city", key)
		reg.CounterFunc("gt_replication_snapshot_handoffs_total", "Compaction handoffs installed.",
			lagField(func(l replicate.Lag) float64 { return float64(l.SnapshotHandoffs) }), "city", key)
		reg.CounterFunc("gt_replication_wire_retries_total", "Torn/corrupt wire responses that forced a re-fetch.",
			lagField(func(l replicate.Lag) float64 { return float64(l.WireRetries) }), "city", key)
		reg.CounterFunc("gt_replication_syncs_total", "Completed replication sync cycles.",
			lagField(func(l replicate.Lag) float64 { return float64(l.Syncs) }), "city", key)
	}
}

// sampleCity reads one gauge off a loaded city, 0 when not resident.
func (s *Server) sampleCity(key string, f func(cs *cityState) float64) float64 {
	c, release, ok := s.reg.AcquireIfLoaded(key)
	if !ok {
		return 0
	}
	defer release()
	return f(c.State)
}

// Metrics exposes the server's telemetry registry (the /metrics source)
// for embedders, daemons and tests.
func (s *Server) Metrics() *telemetry.Registry { return s.metrics.reg }

// HTTPMetrics exposes the per-class HTTP instruments (SLO assertions).
func (s *Server) HTTPMetrics() *telemetry.HTTPMetrics { return s.metrics.http }
