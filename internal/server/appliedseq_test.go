package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"grouptravel/internal/dataset"
)

// newPersistentServer boots the shared test city with persistence on, so
// mutations allocate real WAL sequences.
func newPersistentServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	testServer(t) // ensures srvCity is generated
	s, err := NewMultiCity(Options{Cities: []*dataset.City{srvCity}, SnapshotDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// groupRequest builds a valid 3-member group-create body.
func groupRequest(t *testing.T) map[string]any {
	t.Helper()
	var members []map[string][]float64
	for m := 0; m < 3; m++ {
		members = append(members, ratings(t, m))
	}
	return map[string]any{"members": members}
}

// TestAppliedSeqStampedOnCityGETs pins the freshness-validation header:
// every city-scoped GET — byte-cache hit or miss alike — carries
// X-GT-Applied-Seq naming the city's applied WAL position, and the stamp
// advances with each committed mutation. Any client (a router's edge
// cache in particular) can therefore validate what state a cached body
// reflects without a second round trip.
func TestAppliedSeqStampedOnCityGETs(t *testing.T) {
	srv, ts := newPersistentServer(t)
	key := srv.DefaultCity()

	getHdr := func(path string, wantStatus int) http.Header {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantStatus)
		}
		return resp.Header
	}

	// Before any mutation the sequence space is empty: no stamp.
	if got := getHdr("/cities/"+key, http.StatusOK).Get(HeaderAppliedSeq); got != "" {
		t.Fatalf("pre-mutation GET stamped X-GT-Applied-Seq = %q, want none", got)
	}

	var g struct {
		ID  int   `json:"id"`
		Seq int64 `json:"seq"`
	}
	doJSON(t, "POST", ts.URL+"/cities/"+key+"/groups", groupRequest(t), http.StatusCreated, &g)
	if g.Seq != 1 {
		t.Fatalf("first mutation committed at seq %d, want 1", g.Seq)
	}

	// Uncached (first) and cached (second) renders carry the same stamp.
	for i, path := range []string{
		"/cities/" + key,
		"/cities/" + key, // byte-cache hit
		"/cities/" + key + "/pois?k=3",
		fmt.Sprintf("/cities/%s/groups/%d", key, g.ID),
	} {
		if got := getHdr(path, http.StatusOK).Get(HeaderAppliedSeq); got != "1" {
			t.Fatalf("GET %d %s: X-GT-Applied-Seq = %q, want \"1\"", i, path, got)
		}
	}

	// Even a 404 carries the stamp: the *absence* of an entity is state
	// at a sequence too.
	if got := getHdr("/cities/"+key+"/groups/999", http.StatusNotFound).Get(HeaderAppliedSeq); got != "1" {
		t.Fatalf("404 GET: X-GT-Applied-Seq = %q, want \"1\"", got)
	}

	// A second commit advances the stamp.
	doJSON(t, "POST", ts.URL+"/cities/"+key+"/groups", groupRequest(t), http.StatusCreated, &g)
	if got := getHdr("/cities/"+key, http.StatusOK).Get(HeaderAppliedSeq); got != "2" {
		t.Fatalf("post-second-mutation GET: X-GT-Applied-Seq = %q, want \"2\"", got)
	}

	// A persistence-less server has no sequence space to stamp.
	bare := testServer(t)
	resp, err := http.Get(bare.URL + "/api/city")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(HeaderAppliedSeq); got != "" {
		t.Fatalf("persistence-less GET stamped X-GT-Applied-Seq = %q, want none", got)
	}
}
