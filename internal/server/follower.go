package server

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"
	"time"

	"grouptravel/internal/interact"
	"grouptravel/internal/profile"
	"grouptravel/internal/replicate"
	"grouptravel/internal/store"
)

// This file is the follower half of log shipping. A server constructed
// with Options.Follow tails the primary's per-city logs (internal/
// replicate) and keeps a warm, read-only copy of every city's serving
// state: each shipped frame is validated and applied through the same
// store.Applier restart replay uses, materialized into the live
// group/package registries, and appended verbatim to the follower's own
// write-ahead log — so a follower restart recovers its position from its
// own disk and resumes where it left off. Mutating routes answer 403
// with a pointer at the primary until Promote flips the process into a
// full read-write server.

// replicaMirror is a follower city's apply state: the persistent-form
// mirror the applier validates against, applied in lockstep with the
// serving registries. mu serializes replication applies (syncs for one
// city are single-flighted by sequence anyway; the lock makes overlap
// harmless). st/ap become nil at promotion: the mirror is dead weight
// once local mutations — which bypass it — are allowed. fault latches a
// materialization failure that left the mirror ahead of the serving
// state: retrying would skip the frame the mirror already consumed, so
// the city stops replicating (and keeps reporting the fault) instead of
// silently losing a record.
type replicaMirror struct {
	mu    sync.Mutex
	st    *store.ServerState
	ap    *store.Applier
	fault error
}

// replicaResume is the city's resume point: the last applied sequence.
func (cs *cityState) replicaResume() (int64, error) {
	m := cs.replica
	if m == nil {
		return 0, fmt.Errorf("server: %q is not replicating", cs.key)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ap == nil {
		return 0, fmt.Errorf("server: %q was promoted; replication stopped", cs.key)
	}
	return m.ap.LastSeq(), nil
}

// applyFrames applies shipped records in order: validate against the
// mirror, materialize into the serving registries, persist to the local
// log — all under the read side of persistMu, exactly like a primary
// mutation commit, so a follower compaction can never snapshot a state
// whose record it then truncates. Frames at or below the current
// position are skipped (at-least-once delivery). An error means the
// stream and the local state disagree; the city stops advancing rather
// than guessing.
//
// Persistence is batched: each applied frame materializes immediately,
// but the verbatim re-append to the follower's own log happens once for
// the whole batch through WAL.AppendFrames — one write, one group-commit
// fsync — instead of the per-frame AppendFrame (and per-frame fsync under
// WALSyncAlways) this loop used to pay. The read lock spans the batch so
// the [materialize + append] pair stays atomic against compaction, and
// the append still runs strictly after materialization, preserving the
// invariant that the local log head never leads the serving state.
func (cs *cityState) applyFrames(frames []store.WALFrame) (int64, error) {
	m := cs.replica
	if m == nil {
		return 0, fmt.Errorf("server: %q is not replicating", cs.key)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ap == nil {
		return 0, fmt.Errorf("server: %q was promoted; replication stopped", cs.key)
	}
	if m.fault != nil {
		return m.ap.LastSeq(), m.fault
	}
	logged := false
	var applyErr error
	var toAppend []store.WALFrame
	cs.persistMu.RLock()
	for _, fr := range frames {
		if fr.Seq <= m.ap.LastSeq() {
			continue
		}
		res, err := m.ap.ApplyPayload(fr.Payload)
		if err == nil && !res.Skipped {
			if merr := cs.materializeRecord(res); merr != nil {
				// The mirror already consumed this sequence; a retry
				// would skip it and silently lose the record. Latch.
				err = merr
				m.fault = fmt.Errorf("server: %q replication fault at seq %d: %w", cs.key, fr.Seq, merr)
			} else {
				// The serving registries changed: invalidate rendered
				// bytes before the next frame (or reader) arrives, per
				// frame — a reader racing the batch must never fill a
				// pre-frame render under a post-frame version.
				cs.bumpCacheVersion()
				cs.met.framesApplied.Inc()
				toAppend = append(toAppend, fr)
			}
		}
		if err != nil {
			applyErr = fmt.Errorf("seq %d: %w", fr.Seq, err)
			break
		}
	}
	if cs.wal != nil && len(toAppend) > 0 {
		// Persistence failures never stall replication — the in-memory
		// copy is committed; they surface on /healthz and veto eviction
		// like any primary append failure. A fault mid-batch still
		// persists the frames applied before it.
		if werr := cs.wal.AppendFrames(toAppend); werr != nil {
			cs.persistErr.Store(werr.Error())
		} else {
			logged = true
		}
	}
	cs.persistMu.RUnlock()
	m.ap.Finish()
	cs.mu.Lock()
	cs.nextID = m.st.NextID
	cs.mu.Unlock()
	last := m.ap.LastSeq()
	if len(toAppend) > 0 && cs.notify != nil {
		// One wake per batch: cascading replicas tailing this follower
		// resume with the whole batch in one read.
		cs.notify.wake(cs.appliedSeq())
	}
	if logged {
		cs.maybeCompact()
	}
	return last, applyErr
}

// materializeRecord updates the serving registries for one applied
// record — the incremental form of the full materializeState a restart
// runs, touching only the entity the record touched.
func (cs *cityState) materializeRecord(res store.Applied) error {
	m := cs.replica
	switch res.Kind {
	case store.RecordGroupCreate:
		gr := m.ap.Group(res.ID)
		if gr == nil {
			return fmt.Errorf("applied group %d missing from mirror", res.ID)
		}
		profiles := gr.Profiles
		if profiles == nil {
			profiles = map[string]*profile.Profile{}
		}
		cs.mu.Lock()
		cs.groups[res.ID] = &groupState{group: gr.Group, profiles: profiles}
		cs.mu.Unlock()

	case store.RecordPackageBuild, store.RecordRefine:
		pr := m.ap.Package(res.ID)
		if pr == nil {
			return fmt.Errorf("applied package %d missing from mirror", res.ID)
		}
		sess, err := interact.NewSession(cs.city, pr.Package) // deep-copies CIs
		if err != nil {
			return fmt.Errorf("materialize package %d: %w", res.ID, err)
		}
		sess.SetLog(pr.Ops)
		cs.mu.Lock()
		cs.packages[res.ID] = &packageState{groupID: pr.GroupID, method: pr.Method, session: sess}
		cs.mu.Unlock()

	case store.RecordCustomOp:
		pr := m.ap.Package(res.PackageID)
		cs.mu.RLock()
		ps := cs.packages[res.PackageID]
		cs.mu.RUnlock()
		if pr == nil || ps == nil || len(pr.Ops) == 0 {
			return fmt.Errorf("customOp package %d not materialized", res.PackageID)
		}
		// The applier already validated the op and installed the post-op
		// CI in the mirror; graft a clone of exactly that CI into the
		// serving session, so this path and restart replay produce
		// identical sessions.
		op := pr.Ops[len(pr.Ops)-1]
		after := pr.Package.CIs[op.CIIndex].Clone()
		ps.mu.Lock()
		tp := ps.session.Package()
		switch {
		case op.CIIndex == len(tp.CIs):
			tp.CIs = append(tp.CIs, after) // GENERATE
		case op.CIIndex < len(tp.CIs):
			tp.CIs[op.CIIndex] = after
		default:
			ps.mu.Unlock()
			return fmt.Errorf("customOp CI %d beyond package %d", op.CIIndex, res.PackageID)
		}
		ps.session.SetLog(pr.Ops)
		ps.mu.Unlock()

	default:
		return fmt.Errorf("unknown record kind %q", res.Kind)
	}
	return nil
}

// applySnapshot installs a compaction handoff: full validation, then the
// on-disk state (raw snapshot + emptied log) and the in-memory state
// (registries + mirror) swap together. Claiming the compaction slot and
// the write side of persistMu excludes a follower compaction from
// overwriting the handoff with the state it replaces.
func (cs *cityState) applySnapshot(raw []byte) (int64, error) {
	m := cs.replica
	if m == nil {
		return 0, fmt.Errorf("server: %q is not replicating", cs.key)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ap == nil {
		return 0, fmt.Errorf("server: %q was promoted; replication stopped", cs.key)
	}
	// A latched fault does not block a handoff: the snapshot replaces the
	// state wholesale, so installing it is the one way the city can heal.
	st, err := store.LoadServerState(bytes.NewReader(raw), cs.city)
	if err != nil {
		return 0, fmt.Errorf("server: handoff snapshot: %w", err)
	}
	if st.WALSeq <= m.ap.LastSeq() {
		return m.ap.LastSeq(), nil // stale handoff; frames will cover the rest
	}
	for _, pr := range st.Packages {
		if _, _, err := methodByName(pr.Method); err != nil {
			return 0, fmt.Errorf("server: handoff package %d: %w", pr.ID, err)
		}
	}
	groups, packages, err := materializeState(cs.city, st)
	if err != nil {
		return 0, fmt.Errorf("server: handoff: %w", err)
	}
	ap, mst, err := store.NewApplier(st, cs.city)
	if err != nil {
		return 0, err
	}
	ap.Seed(st.WALSeq)

	for !cs.compacting.CompareAndSwap(false, true) {
		time.Sleep(time.Millisecond)
	}
	defer cs.compacting.Store(false)
	cs.persistMu.Lock()
	if cs.wal != nil {
		if err := store.WriteSnapshotRaw(cs.snapDir, cs.key, raw); err != nil {
			cs.persistErr.Store(err.Error())
		} else if err := store.RemovePendingWAL(cs.snapDir, cs.key); err != nil {
			cs.persistErr.Store(err.Error())
		} else if err := cs.wal.Reset(); err != nil {
			cs.persistErr.Store(err.Error())
		} else {
			cs.wal.Seed(0, st.WALSeq)
			cs.snapTime.Store(time.Now().UnixNano())
			cs.persistErr.Store("")
		}
	}
	cs.mu.Lock()
	cs.groups, cs.packages, cs.nextID = groups, packages, st.NextID
	cs.mu.Unlock()
	// The whole serving state just swapped — every rendered byte is void.
	cs.bumpCacheVersion()
	cs.persistMu.Unlock()
	m.st, m.ap = mst, ap
	m.fault = nil // the installed snapshot supersedes whatever was lost
	if cs.notify != nil {
		cs.notify.wake(st.WALSeq)
	}
	return st.WALSeq, nil
}

// sealPromoted flips one city out of replica mode: fsync the log tail and
// drop the mirror — local mutations commit through the WAL appender and
// never touch it again.
func (cs *cityState) sealPromoted() {
	if m := cs.replica; m != nil {
		m.mu.Lock()
		m.st, m.ap = nil, nil
		m.mu.Unlock()
	}
	if cs.wal != nil {
		_ = cs.wal.Sync()
	}
	// A generation tick, not a position change: push streams re-check and
	// notice the role flip on their next read.
	if cs.notify != nil {
		cs.notify.wake(cs.appliedSeq())
	}
}

// followerTarget adapts the Server to replicate.Target, pinning the city
// in the registry for each call — so replication coexists with LRU
// eviction: between polls a cold follower city can be evicted (its state
// compacts to its own disk) and the next poll reloads and resumes it.
type followerTarget struct{ s *Server }

func (t followerTarget) withCity(city string, fn func(cs *cityState) (int64, error)) (int64, error) {
	c, release, err := t.s.reg.Acquire(city)
	if err != nil {
		return 0, err
	}
	defer release()
	return fn(c.State)
}

func (t followerTarget) Resume(city string) (int64, error) {
	return t.withCity(city, (*cityState).replicaResume)
}

func (t followerTarget) ApplySnapshot(city string, raw []byte) (int64, error) {
	return t.withCity(city, func(cs *cityState) (int64, error) { return cs.applySnapshot(raw) })
}

func (t followerTarget) ApplyFrames(city string, frames []store.WALFrame) (int64, error) {
	return t.withCity(city, func(cs *cityState) (int64, error) { return cs.applyFrames(frames) })
}

// --- server surface ---

// Role reports the server's replication role. Fenced wins over every
// other state: whatever this node used to be, it observed a term owned
// by someone else and is read-only until an operator re-points it.
func (s *Server) Role() string {
	switch {
	case s.fenced.Load():
		return "fenced"
	case s.topo.Upstream() == "":
		return "primary"
	case s.promoted.Load():
		return "promoted"
	default:
		return "follower"
	}
}

// Topology exposes the node-metadata source (health reports, embedders).
func (s *Server) Topology() Topology { return s.topo }

// isReadOnly: a follower that has not been promoted rejects mutations,
// and so does any node fenced by a higher replication epoch.
func (s *Server) isReadOnly() bool {
	return s.fenced.Load() || (s.topo.Upstream() != "" && !s.promoted.Load())
}

// Follower exposes the replication tailer (nil on primaries) — tests and
// embedders drive Sync/CatchUp and read lag through it.
func (s *Server) Follower() *replicate.Follower { return s.follower }

// Close stops background replication tailers and waits for in-flight
// syncs. Primaries have nothing to stop. City logs are closed by
// eviction, not here — the process may keep serving.
func (s *Server) Close() {
	if s.follower != nil {
		s.follower.Stop()
	}
}

// Promote flips a follower into a full read-write server: stop the
// tailers (waiting out in-flight applies), seal every resident city's
// log, and only then open the mutation routes — writes must never race
// an in-flight replication apply for the same sequence numbers. The
// follower's own WAL simply continues: the promoted node's first local
// mutation appends at the sequence after the last replicated record,
// and a restart recovers through the ordinary snapshot+log path.
// Idempotent; concurrent callers all return after the flip completed.
func (s *Server) Promote() error {
	if s.topo.Upstream() == "" {
		return fmt.Errorf("server: not a follower")
	}
	s.promoteOnce.Do(func() {
		if s.follower != nil {
			s.follower.Stop()
		}
		// Mint the new term after the tailers stopped (no apply is
		// mid-flight) and before the seal: each city's seal wakes its
		// notifier, and any push stream this node is serving observes the
		// term change on that wake and ends — so no inbound consumer
		// outlives the promotion, and the bumped term rides the very next
		// exchange to fence the deposed primary.
		s.bumpEpoch()
		for _, key := range s.reg.Keys() {
			// Never force-load: an unloaded city is already cleanly
			// sealed on its own disk (eviction compacted and closed its
			// log).
			c, release, ok := s.reg.AcquireIfLoaded(key)
			if !ok {
				continue
			}
			c.State.sealPromoted()
			release()
		}
		s.promoted.Store(true)
	})
	return nil
}

// replicaDenied is the 403 body a follower answers mutations with.
type replicaDenied struct {
	Error   string `json:"error"`
	Primary string `json:"primary"`
}

// writable gates a mutating route on the server's role. The 403 names
// the best-known primary: the epoch owner when a term has been observed
// (a fenced node's upstream is stale by definition — the owner is who
// deposed it), the configured upstream otherwise.
func (s *Server) writable(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.isReadOnly() {
			primary := s.topo.Upstream()
			if _, owner := s.Epoch(); owner != "" {
				primary = owner
			}
			w.Header().Set(HeaderPrimary, primary)
			writeJSON(w, http.StatusForbidden, replicaDenied{
				Error:   fmt.Sprintf("read-only replica; send mutations to the primary at %s", primary),
				Primary: primary,
			})
			return
		}
		h(w, r)
	}
}

// handlePromote is POST /promote.
func (s *Server) handlePromote(w http.ResponseWriter, _ *http.Request) {
	if s.topo.Upstream() == "" {
		writeErr(w, http.StatusConflict, "already a primary")
		return
	}
	if err := s.Promote(); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"role": s.Role(), "formerPrimary": s.topo.Upstream()})
}
