package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// pkgFingerprint is everything a package build decides, minus the
// registry-assigned id.
func pkgFingerprint(t *testing.T, p packageResponse) string {
	t.Helper()
	p.ID = 0
	p.Seq = 0 // the commit token is per-mutation, not package content
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestConcurrentPackageBuildsMatchSequential hammers the group/package
// endpoints from many goroutines and asserts every response is identical
// to the sequential run of the same request on a fresh server. Under
// -race this also certifies the lock-sharded handler paths.
func TestConcurrentPackageBuildsMatchSequential(t *testing.T) {
	// Sequential ground truth.
	seqTS := testServer(t)
	seqGID := createGroup(t, seqTS, 4)
	type workload struct {
		consensus string
		k         int
	}
	workloads := []workload{
		{"pairwise", 2}, {"avg", 2}, {"leastmisery", 3}, {"variance", 3},
	}
	want := make([]string, len(workloads))
	for i, wl := range workloads {
		var resp packageResponse
		doJSON(t, "POST", seqTS.URL+"/api/packages", createPackageRequest{
			GroupID: seqGID, Consensus: wl.consensus, K: wl.k,
		}, 201, &resp)
		want[i] = pkgFingerprint(t, resp)
	}

	// Concurrent run on a fresh server over the same city.
	ts := testServer(t)
	gid := createGroup(t, ts, 4)
	const goroutines = 8
	const rounds = 2
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds*len(workloads))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for off := 0; off < len(workloads); off++ {
					i := (g + off) % len(workloads)
					wl := workloads[i]
					var resp packageResponse
					if err := tryJSON(ts, "POST", ts.URL+"/api/packages", createPackageRequest{
						GroupID: gid, Consensus: wl.consensus, K: wl.k,
					}, 201, &resp); err != nil {
						errs <- err
						return
					}
					if got := pkgFingerprint(t, resp); got != want[i] {
						errs <- fmt.Errorf("workload %d: concurrent response differs from sequential:\n%s\nvs\n%s", i, got, want[i])
						return
					}
					// Re-read the package concurrently with other builds.
					var read packageResponse
					if err := tryJSON(ts, "GET", fmt.Sprintf("%s/api/packages/%d", ts.URL, resp.ID), nil, 200, &read); err != nil {
						errs <- err
						return
					}
					if got := pkgFingerprint(t, read); got != want[i] {
						errs <- fmt.Errorf("workload %d: GET differs from POST response", i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentOpsAndRefine exercises the per-package locks: each
// goroutine owns one package and customizes + refines it while the others
// do the same. Mutations on distinct packages must proceed independently.
func TestConcurrentOpsAndRefine(t *testing.T) {
	ts := testServer(t)
	gid := createGroup(t, ts, 3)
	const goroutines = 8
	ids := make([]int, goroutines)
	firstItems := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		pkg := createPackage(t, ts, gid)
		ids[g] = pkg.ID
		firstItems[g] = pkg.Days[0].Items[0].ID
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			opsURL := fmt.Sprintf("%s/api/packages/%d/ops", ts.URL, ids[g])
			if err := tryJSON(ts, "POST", opsURL, opRequest{Member: 0, Op: "remove", CI: 0, POI: firstItems[g]}, 200, nil); err != nil {
				errs <- fmt.Errorf("package %d remove: %w", ids[g], err)
				return
			}
			refineURL := fmt.Sprintf("%s/api/packages/%d/refine", ts.URL, ids[g])
			var ref refineResponse
			if err := tryJSON(ts, "POST", refineURL, refineRequest{Strategy: "batch", Rebuild: true}, 200, &ref); err != nil {
				errs <- fmt.Errorf("package %d refine: %w", ids[g], err)
				return
			}
			if ref.Operations != 1 || ref.NewPackage == nil {
				errs <- fmt.Errorf("package %d refine = %+v", ids[g], ref)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// tryJSON is doJSON returning errors instead of failing the test, for use
// on non-test goroutines (t.Fatal must only run on the test goroutine).
func tryJSON(_ *httptest.Server, method, url string, body any, wantStatus int, out any) error {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return err
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e apiError
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, wantStatus, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("decode response: %w", err)
		}
	}
	return nil
}
