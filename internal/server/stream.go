package server

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"grouptravel/internal/replicate"
	"grouptravel/internal/store"
)

// This file is the primary half of log shipping: GET /cities/{city}/wal
// ?from={seq} serves every committed record after the follower's resume
// point, straight from the city's log files — and, when the resume point
// has fallen behind the compaction horizon (the records now live only in
// the snapshot), the sealed snapshot plus the log suffix. The frames go
// out byte-for-byte as they sit in the log. A follower's own /wal
// endpoint serves the same way, so replicas can cascade.
//
// The stream deliberately never forces a city load: a resident city
// serves live (its appender's sequence counter is the authoritative
// head), an unloaded one serves cold from its sealed on-disk state —
// tailing followers polling every city must not defeat the LRU cap by
// faulting everything in.

// errStreamAhead: the requested resume point is beyond this log's head —
// the caller has records this server never wrote. Divergence, not lag.
var errStreamAhead = errors.New("ahead of log head")

// errStreamBusy: compaction kept moving the files under the reader for
// every retry. Transient; the follower's next poll retries.
var errStreamBusy = errors.New("log rotating; retry")

// handleWAL routes one stream request: live when the city is resident,
// cold (disk-only) when it is not. "No WAL configured" is 501, never
// 409 — a follower must be able to tell a misconfigured primary apart
// from real divergence.
func (s *Server) handleWAL(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("city")
	if key == "" {
		key = s.defaultCity
	}
	if !s.reg.Has(key) {
		writeErr(w, http.StatusNotFound, "unknown city %q", key)
		return
	}
	if c, release, ok := s.reg.AcquireIfLoaded(key); ok {
		defer release()
		c.State.handleWALStream(w, r)
		return
	}
	if s.snapshotDir == "" {
		writeErr(w, http.StatusNotImplemented,
			"city %q has no write-ahead log (replication requires -snapshot-dir)", key)
		return
	}
	// Cold: the city's state is sealed on disk (eviction compacted and
	// closed it, or it was never touched). A load racing this read only
	// appends past what we serve; the density checks catch rotations.
	from, ok := parseFrom(w, r)
	if !ok {
		return
	}
	// Caught-up cold polls answer from three stats: re-reading (and
	// JSON-parsing) a large sealed snapshot 4x/sec per follower just to
	// say "nothing new" would make cold cities more expensive than live
	// ones.
	sig := coldSig(s.snapshotDir, key)
	if h, hit := s.coldHeads.Load(key); hit {
		if ch := h.(coldHead); ch.sig == sig && from == ch.last {
			_ = replicate.WriteStream(w, &replicate.Batch{PrimarySeq: ch.last, PrimaryWALBytes: ch.walBytes})
			return
		}
	}
	batch, err := streamFrom(s.snapshotDir, key, from, nil)
	if !writeStreamResult(w, from, batch, err) {
		return
	}
	// The signature was taken before the read: if the files changed in
	// between, the stale signature just misses the cache next poll.
	s.coldHeads.Store(key, coldHead{sig: sig, last: batch.PrimarySeq, walBytes: batch.PrimaryWALBytes})
	// The /cities listing reports cold heads; refresh its cache.
	s.fleetVersion.Add(1)
}

// coldHead caches the last-served head of a non-resident city, keyed by
// its files' stat signature.
type coldHead struct {
	sig            coldSignature
	last, walBytes int64
}

// coldSignature fingerprints the three on-disk files cheaply (mtime +
// size; -1/-1 when absent).
type coldSignature struct {
	snapMod, snapSize, walMod, walSize, pendMod, pendSize int64
}

func coldSig(dir, key string) coldSignature {
	stat := func(path string) (int64, int64) {
		fi, err := os.Stat(path)
		if err != nil {
			return -1, -1
		}
		return fi.ModTime().UnixNano(), fi.Size()
	}
	var sig coldSignature
	sig.snapMod, sig.snapSize = stat(store.SnapshotPath(dir, key))
	sig.walMod, sig.walSize = stat(store.WALPath(dir, key))
	sig.pendMod, sig.pendSize = stat(store.PendingWALPath(dir, key))
	return sig
}

// handleWALStream serves the stream for a resident city.
func (cs *cityState) handleWALStream(w http.ResponseWriter, r *http.Request) {
	if cs.wal == nil {
		writeErr(w, http.StatusNotImplemented,
			"city %q has no write-ahead log (replication requires -snapshot-dir)", cs.key)
		return
	}
	from, ok := parseFrom(w, r)
	if !ok {
		return
	}
	batch, err := streamFrom(cs.snapDir, cs.key, from, func() (int64, int64) {
		return cs.wal.LastSeq(), cs.wal.Stats().Bytes
	})
	writeStreamResult(w, from, batch, err)
}

// parseFrom reads the resume-point query parameter; on a bad value it
// writes the 400 and reports !ok.
func parseFrom(w http.ResponseWriter, r *http.Request) (int64, bool) {
	v := r.URL.Query().Get("from")
	if v == "" {
		return 0, true
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 {
		writeErr(w, http.StatusBadRequest, "bad from %q", v)
		return 0, false
	}
	return n, true
}

// writeStreamResult maps a streamFrom result onto the response; true
// means a batch was written.
func writeStreamResult(w http.ResponseWriter, from int64, batch *replicate.Batch, err error) bool {
	switch {
	case errors.Is(err, errStreamAhead):
		writeErr(w, http.StatusConflict, "follower at seq %d is ahead of this log", from)
		return false
	case errors.Is(err, errStreamBusy):
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return false
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return false
	}
	_ = replicate.WriteStream(w, batch) // a cut connection is the client's retry
	return true
}

// streamFrom assembles one stream batch: all committed records with
// sequence > from. The log files are read without locks while the
// appender, and possibly a compaction, keep running — a torn tail just
// ends the committed prefix, and the races that matter (a rotation or
// compaction landing between two file reads) all surface as a sequence
// gap, which is detected and retried rather than ever shipped.
func streamFrom(dir, key string, from int64, head func() (int64, int64)) (*replicate.Batch, error) {
	for attempt := 0; ; attempt++ {
		batch, err := tryCollect(dir, key, from, head)
		if err != nil {
			return nil, err
		}
		if batch != nil {
			return batch, nil
		}
		if attempt >= 5 {
			return nil, errStreamBusy
		}
		time.Sleep(time.Duration(1<<attempt) * time.Millisecond)
	}
}

// tryCollect makes one read pass; nil batch with nil error means "raced
// a rotation, retry".
func tryCollect(dir, key string, from int64, head func() (int64, int64)) (*replicate.Batch, error) {
	var (
		frames         []store.WALFrame
		raw            []byte
		snapSeq        int64
		snapRead       bool
		last, walBytes int64
	)
	readSnap := func() error {
		if snapRead {
			return nil
		}
		var err error
		raw, snapSeq, err = store.ReadSnapshotRaw(dir, key)
		if err != nil {
			return fmt.Errorf("snapshot handoff: %w", err)
		}
		snapRead = true
		return nil
	}
	if head != nil {
		last, walBytes = head()
		if from > last {
			return nil, errStreamAhead
		}
		if from == last {
			// Caught up: the steady-state poll answers from the sequence
			// counter alone, without reading (or parsing) a byte of log.
			return &replicate.Batch{PrimarySeq: last, PrimaryWALBytes: walBytes}, nil
		}
	}
	frames, err := store.CollectWALFrames(dir, key)
	if err != nil {
		return nil, err
	}
	if !strictlyAscending(frames) {
		return nil, nil // two reads straddled a rotation
	}
	if head == nil {
		// Cold head: the snapshot watermark and the last frame on disk.
		if err := readSnap(); err != nil {
			return nil, err
		}
		last = snapSeq
		for _, fr := range frames {
			walBytes += fr.WireLen()
			if fr.Seq > last {
				last = fr.Seq
			}
		}
		if from > last {
			return nil, errStreamAhead
		}
		if from == last {
			return &replicate.Batch{PrimarySeq: last, PrimaryWALBytes: walBytes}, nil
		}
	}
	batch := &replicate.Batch{PrimarySeq: last, PrimaryWALBytes: walBytes}
	lo := last + 1 // an empty log: everything lives in the snapshot
	if len(frames) > 0 {
		lo = frames[0].Seq
	}
	if from+1 >= lo {
		out := framesAfter(frames, from)
		if !denseFrom(out, from+1) {
			return nil, nil
		}
		batch.Frames = out
		return batch, nil
	}
	// The records right after `from` are no longer in the log: they were
	// folded into the snapshot by a compaction. Hand the snapshot off and
	// ship the suffix beyond its watermark.
	if err := readSnap(); err != nil {
		return nil, err
	}
	if raw == nil || snapSeq < from || snapSeq+1 < lo {
		// No snapshot (or one too old to bridge the gap): a compaction is
		// mid-flight — its rotation already sealed the log but its
		// snapshot has not landed. Retry.
		return nil, nil
	}
	out := framesAfter(frames, snapSeq)
	if !denseFrom(out, snapSeq+1) {
		return nil, nil
	}
	batch.Snapshot, batch.SnapshotSeq = raw, snapSeq
	batch.Frames = out
	return batch, nil
}

// framesAfter returns the suffix with sequence > from.
func framesAfter(frames []store.WALFrame, from int64) []store.WALFrame {
	for i, fr := range frames {
		if fr.Seq > from {
			return frames[i:]
		}
	}
	return nil
}

func strictlyAscending(frames []store.WALFrame) bool {
	for i := 1; i < len(frames); i++ {
		if frames[i].Seq <= frames[i-1].Seq {
			return false
		}
	}
	return true
}

// denseFrom: the frames are exactly start, start+1, ... — primaries issue
// dense sequences, so a hole means the read raced a rotation and the
// batch would skip committed records.
func denseFrom(frames []store.WALFrame, start int64) bool {
	for i, fr := range frames {
		if fr.Seq != start+int64(i) {
			return false
		}
	}
	return true
}
